# Build/test entry points. `make tier1` is the repo's tier-1 verification
# (referenced from ROADMAP.md); `make race` exercises the concurrent
# serving + dynamic-update paths under the race detector; `make vet` runs
# static checks.

GO ?= go

.PHONY: tier1 build test race vet bench serve-bench all

all: tier1 vet

tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with real concurrency: the lock-free serving store under
# query-during-hot-swap load, and the incremental embedder feeding it.
race:
	$(GO) test -race ./internal/serve ./internal/dynamic

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Quick serving throughput/latency check (closed-loop load generator).
serve-bench:
	$(GO) test -run xxx -bench BenchmarkServing -benchtime 2000x .
