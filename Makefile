# Build/test entry points. `make tier1` is the repo's tier-1 verification
# (referenced from ROADMAP.md); `make race` exercises the concurrent
# serving + dynamic-update paths under the race detector; `make vet` runs
# static checks.

GO ?= go

.PHONY: tier1 build test race vet fuzz bench bench-drain bench-sample bench-ann bench-factorize serve-bench smoke-replication check all

all: tier1 vet

tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with real concurrency: the lock-free serving store under
# query-during-hot-swap load, the incremental embedder feeding it, the
# lock-free aggregation path (hash table + sharded aggregators + par
# primitives) under Add/grow/Get interleaving, the sampler's end-to-end
# sampler → sharded table → grouped drain stress test (undersized tables
# force concurrent grows), the parallel compressed-adjacency builder
# (unsorted-input error reporting races the workers), and the
# fault-injection harness driving the supervised ingest loop and the
# leader→follower replication suite (mid-ship kills, corrupt payloads,
# leader-death degradation). The second line runs the root package's
# crash-safe checkpoint, fault-injection, and end-to-end replication tests
# (kill-mid-write, CRC fallback, failover smoke, checkpoint-rewrite racing
# hot-swap) under the detector without dragging the full factorization test
# suite through -race.
race:
	$(GO) test -race ./internal/serve ./internal/ann ./internal/dynamic ./internal/hashtable ./internal/aggregate ./internal/par ./internal/sampler ./internal/compress ./internal/faultinject ./internal/svd
	$(GO) test -race -run 'Checkpoint|Embedding|Replication' .

# Short runs of every fuzz target: the text/binary embedding readers and the
# public graph loader (root), the edge-list/binary graph loaders (graph),
# the COO builder (sparse), and the compressed-adjacency decoders
# (compress). Each target gets a few seconds — enough to replay the corpus
# and catch regressions in the checked decode paths; leave a target running
# longer with e.g. `go test -fuzz FuzzDecode -fuzztime 5m ./internal/compress`.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run xxx -fuzz FuzzReadEmbeddingText -fuzztime $(FUZZTIME) .
	$(GO) test -run xxx -fuzz FuzzReadEmbeddingBinary -fuzztime $(FUZZTIME) .
	$(GO) test -run xxx -fuzz 'FuzzReadEmbedding$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run xxx -fuzz FuzzReadCheckpointFrom -fuzztime $(FUZZTIME) .
	$(GO) test -run xxx -fuzz FuzzLoadGraphPublic -fuzztime $(FUZZTIME) .
	$(GO) test -run xxx -fuzz FuzzLoadEdgeList -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run xxx -fuzz FuzzReadBinary -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run xxx -fuzz FuzzAliasBuild -fuzztime $(FUZZTIME) ./internal/graph
	$(GO) test -run xxx -fuzz FuzzFromCOO -fuzztime $(FUZZTIME) ./internal/sparse
	$(GO) test -run xxx -fuzz FuzzDecode -fuzztime $(FUZZTIME) ./internal/compress

# One verification entry point: build + tests + static checks + race.
check: tier1 vet race

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Drain-path benchmarks (benchstat-friendly: -count=5 gives enough runs to
# compare BenchmarkDrain vs BenchmarkDrainSequential, the aggregation
# strategies, full vs partition-only radix grouping, and the radix vs
# sort-merge COO build; pipe two runs into `benchstat old.txt new.txt`).
bench-drain:
	$(GO) test -run xxx -bench 'BenchmarkDrain|BenchmarkAggregate|BenchmarkGroupCSR|BenchmarkFromCOO' -benchmem -count=5 ./internal/hashtable ./internal/aggregate ./internal/radix ./internal/sparse

# Sampler pipeline benchmarks: the per-arc sampler, the test-only
# serial-flush reference, the wave pipeline (single-table and sharded), and
# the pipeline walking the compressed adjacency natively, then the
# wall-clock runner that records ns/op, heads/s, the table's memory
# high-water mark and the raw-vs-compressed pair into BENCH_sampler.json.
bench-sample:
	$(GO) test -run xxx -bench 'BenchmarkSample$$|BenchmarkSampleSerialFlush|BenchmarkSampleBatched$$|BenchmarkSamplePipelined|BenchmarkSampleBatchedCompressed|BenchmarkSampleBatchedWeighted' -benchmem -count=3 ./internal/sampler
	$(GO) run ./cmd/lightne-sampler-bench -out BENCH_sampler.json

# Factorization benchmark: multi-pass rSVD vs the single-pass sketched
# range finder (sign and gaussian test matrices) on an RMAT graph — wall
# time, the planner's predicted peak, the measured heap high-water mark,
# and spectrum agreement, recorded to BENCH_factorize.json.
bench-factorize:
	$(GO) run ./cmd/lightne-bench -exp e14 -factorize-out BENCH_factorize.json

# Quick serving throughput/latency check (closed-loop load generator).
serve-bench:
	$(GO) test -run xxx -bench BenchmarkServing -benchtime 2000x .

# Failover drill: boot a leader and two followers on loopback, publish two
# generations, kill the leader, and assert both followers keep answering
# /v1/neighbors from their replicated snapshots (see TestReplicationSmoke).
smoke-replication:
	$(GO) test -race -run TestReplicationSmoke -v -count=1 .

# ANN benchmarks: exact scan vs IVF at several probe widths plus index
# build cost (internal/ann), then the HTTP recall/qps frontier sweep that
# writes BENCH_serving.json (exact baseline + one point per nprobe).
bench-ann:
	$(GO) test -run xxx -bench 'BenchmarkANN' -benchmem ./internal/ann
	$(GO) test -run xxx -bench 'BenchmarkServing/frontier' -benchtime 2000x .
