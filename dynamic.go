package lightne

import "lightne/internal/dynamic"

// DynamicEmbedder maintains a LightNE embedding over a growing graph — the
// streaming/dynamic setting the paper names as future work (§6). Edge
// batches are sampled incrementally (cost proportional to the batch, not
// the graph) and the cheap factorization + propagation re-runs on demand.
type DynamicEmbedder = dynamic.Embedder

// NewDynamicEmbedder builds a dynamic embedder over an initial graph,
// performing the full LightNE sampling pass once. Subsequent AddEdges calls
// sample only the new edges; Embed() recomputes the embedding from the
// accumulated sparsifier; Staleness() tracks how much of the sample mass
// predates the current graph, and Refresh() resamples from scratch.
func NewDynamicEmbedder(g *Graph, cfg Config) (*DynamicEmbedder, error) {
	return dynamic.New(g, cfg)
}
