// Command lightne-stats prints structural statistics of an edge-list
// graph: size, degree distribution, connected components, and the Ligra+
// compression ratio — the quantities that determine LightNE's memory
// behaviour (paper §4.1, §5.3).
//
//	lightne-stats -input graph.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"lightne"
	"lightne/internal/graph"
)

func main() {
	var (
		input    = flag.String("input", "", "edge-list file (required; '-' for stdin)")
		vertices = flag.Int("n", 0, "vertex count (0 = infer)")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "lightne-stats: -input is required")
		os.Exit(2)
	}
	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	g, err := lightne.LoadGraph(bufio.NewReader(in), *vertices)
	if err != nil {
		fatal(err)
	}
	n := g.NumVertices()
	m := g.NumEdges() / 2
	fmt.Printf("vertices:        %d\n", n)
	fmt.Printf("edges:           %d\n", m)
	if n > 0 {
		fmt.Printf("average degree:  %.2f\n", float64(g.NumEdges())/float64(n))
	}

	hist := g.DegreeHistogram()
	maxDeg := len(hist) - 1
	fmt.Printf("max degree:      %d\n", maxDeg)
	fmt.Printf("isolated:        %d\n", hist[0])
	// Degree percentiles.
	degrees := make([]int, 0, n)
	for d, c := range hist {
		for k := int64(0); k < c; k++ {
			degrees = append(degrees, d)
		}
	}
	sort.Ints(degrees)
	pick := func(p float64) int {
		if len(degrees) == 0 {
			return 0
		}
		i := int(p * float64(len(degrees)-1))
		return degrees[i]
	}
	fmt.Printf("degree p50/p90/p99: %d / %d / %d\n", pick(0.50), pick(0.90), pick(0.99))

	_, comps := g.ConnectedComponents()
	fmt.Printf("components:      %d\n", comps)

	plainBytes := g.SizeBytes()
	// Rebuild compressed to measure the parallel-byte ratio.
	var arcs []lightne.Edge
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(uint32(u), nil) {
			if uint32(u) < v {
				arcs = append(arcs, lightne.Edge{U: uint32(u), V: v})
			}
		}
	}
	copt := graph.DefaultOptions()
	copt.Compress = true
	cg, err := graph.FromEdges(n, arcs, copt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("CSR bytes:       %d\n", plainBytes)
	fmt.Printf("compressed:      %d (%.1f%% of CSR, parallel-byte block %d)\n",
		cg.SizeBytes(), 100*float64(cg.SizeBytes())/float64(plainBytes), 64)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightne-stats:", err)
	os.Exit(1)
}
