// Command lightne-serve answers top-k nearest-neighbor and vector-lookup
// queries over an embedding artifact produced by cmd/lightne, exposing a
// JSON API:
//
//	GET  /healthz                       liveness + snapshot info
//	GET  /metrics                       request counters, latency p50/p95/p99
//	GET  /v1/neighbors?vertex=V&k=K     top-k cosine neighbors of V
//	POST /v1/neighbors                  {"vertex": V, "k": K}
//	POST /v1/batch                      {"queries": [{"vertex": V, "k": K}, ...]}
//	GET  /v1/embedding/V                V's embedding vector
//
// Typical session:
//
//	lightne -input graph.txt -output emb.bin -binary -dim 128
//	lightne-serve -artifact emb.bin -addr :7475 &
//	curl 'localhost:7475/v1/neighbors?vertex=42&k=10'
//
// The artifact may be the versioned binary format (fastest) or text rows;
// both are auto-detected. -precision int8 serves from 8x-smaller quantized
// codes. The loaded snapshot is hot-swappable: SIGHUP (or -watch) reloads
// the artifact and publishes it atomically with zero query downtime.
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lightne"
	"lightne/internal/serve"
)

func main() {
	var (
		artifact  = flag.String("artifact", "", "embedding artifact from cmd/lightne, binary or text (required)")
		addr      = flag.String("addr", ":7475", "listen address")
		precision = flag.String("precision", "float32", "index precision: float32 (2x smaller than training output) or int8 (8x)")
		watch     = flag.Duration("watch", 0, "poll the artifact at this interval and hot-swap on change (0 = SIGHUP only)")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("lightne-serve: ")
	if *artifact == "" {
		fmt.Fprintln(os.Stderr, "lightne-serve: -artifact is required")
		flag.Usage()
		os.Exit(2)
	}

	store := serve.NewStore()
	mtime, err := publishArtifact(store, *artifact, *precision)
	if err != nil {
		log.Fatal(err)
	}
	snap := store.Snapshot()
	log.Printf("loaded %s: %d vertices x %d dims, %s index (%.1f MB)",
		*artifact, snap.Index.Rows(), snap.Index.Dims(), *precision,
		float64(snap.Index.MemoryBytes())/1e6)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Hot-swap: SIGHUP reloads immediately; -watch polls the file's mtime.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		var tick <-chan time.Time
		if *watch > 0 {
			t := time.NewTicker(*watch)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
			case <-tick:
				st, err := os.Stat(*artifact)
				if err != nil || !st.ModTime().After(mtime) {
					continue
				}
			}
			m, err := publishArtifact(store, *artifact, *precision)
			if err != nil {
				log.Printf("reload failed, keeping current snapshot: %v", err)
				continue
			}
			mtime = m
			s := store.Snapshot()
			log.Printf("hot-swapped snapshot v%d: %d vertices x %d dims",
				s.Version, s.Index.Rows(), s.Index.Dims())
		}
	}()

	srv := serve.New(store)
	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}

// publishArtifact loads the artifact and atomically publishes it, returning
// the file's mtime for change detection.
func publishArtifact(store *serve.Store, path, precision string) (time.Time, error) {
	f, err := os.Open(path)
	if err != nil {
		return time.Time{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return time.Time{}, err
	}
	x, err := lightne.ReadEmbedding(f)
	if err != nil {
		return time.Time{}, fmt.Errorf("loading %s: %w", path, err)
	}
	ix, err := serve.NewIndex(x, precision)
	if err != nil {
		return time.Time{}, err
	}
	store.Publish(ix, 0)
	return st.ModTime(), nil
}
