// Command lightne-serve answers top-k nearest-neighbor and vector-lookup
// queries over an embedding artifact produced by cmd/lightne, exposing a
// JSON API:
//
//	GET  /healthz                       liveness + snapshot info (ok/degraded/loading)
//	GET  /readyz                        readiness: 200 once a snapshot is loaded, 503 before
//	GET  /metrics                       request counters, latency p50/p95/p99, replica lag
//	GET  /v1/neighbors?vertex=V&k=K     top-k cosine neighbors of V
//	POST /v1/neighbors                  {"vertex": V, "k": K}
//	POST /v1/batch                      {"queries": [{"vertex": V, "k": K}, ...]}
//	GET  /v1/embedding/V                V's embedding vector
//	GET  /v1/snapshot                   current snapshot as a CRC-trailed checkpoint stream
//	GET  /v1/snapshot/meta              generation/ETag of the shipped snapshot (JSON)
//
// Typical session:
//
//	lightne -input graph.txt -output emb.bin -binary -dim 128
//	lightne-serve -artifact emb.bin -checkpoint emb.ckpt -addr :7475 &
//	curl 'localhost:7475/v1/neighbors?vertex=42&k=10'
//
// The artifact may be the versioned binary format (fastest) or text rows;
// both are auto-detected. -precision int8 serves from 8x-smaller quantized
// codes. The loaded snapshot is hot-swappable: SIGHUP (or -watch) reloads
// the artifact and publishes it atomically with zero query downtime.
// SIGINT/SIGTERM drain in-flight requests before exiting.
//
// Replication: every artifact-serving instance is a leader — each published
// generation is also encoded once as a checkpoint payload and offered on
// /v1/snapshot (+ /v1/snapshot/meta for cheap polling). A follower runs
// with -follow instead of -artifact:
//
//	lightne-serve -follow http://leader:7475 -checkpoint replica.ckpt -addr :7476
//
// and tails the leader: it polls the meta endpoint, downloads new
// generations (capped exponential backoff + jitter on failure, per-request
// deadlines), CRC- and shape-validates each payload before atomically
// hot-swapping it live, and rebuilds its ANN index locally (so replicas
// may run different -nlist/-nprobe than their leader). A follower with
// -checkpoint persists each applied payload for warm restarts, and
// re-ships applied snapshots on its own /v1/snapshot so followers can be
// chained. When the leader stays unreachable past -stale-after the
// follower keeps serving its last good snapshot and reports "degraded
// (stale)" on /healthz with lag metrics on /metrics; /readyz stays 503
// until the first snapshot (warm restart or first ship) so load balancers
// never route to an empty replica.
//
// -ann builds an IVF index (internal/ann) for each published snapshot, so
// neighbor queries probe -nprobe of -nlist posting lists instead of
// scanning every vertex; the index is constructed before the publish and
// swapped in the same atomic pointer store as its embedding, on the cold
// start, the checkpoint warm restart, every hot-swap reload, and every
// replicated generation alike. Snapshots smaller than -ann-min-rows keep
// the exact scan (it is already microseconds at that size).
//
// Failure hardening: -checkpoint persists each served snapshot to a
// crash-safe CRC-checked file (temp + fsync + atomic rename). On restart
// the checkpoint warm-starts the server even when the artifact (or leader)
// is missing or corrupt; a checkpoint torn by a kill mid-write fails its
// CRC check and the server falls back to a cold start. -max-inflight
// sheds excess concurrent queries with 503 + Retry-After (health,
// readiness, metrics, and snapshot-shipping endpoints are never shed), and
// -request-timeout attaches a deadline to each query's context; handler
// panics answer 500 and increment lightne_panics_total instead of dropping
// the connection.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lightne"
	"lightne/internal/ann"
	"lightne/internal/serve"
)

func main() {
	var (
		artifact    = flag.String("artifact", "", "embedding artifact from cmd/lightne, binary or text (leader mode; mutually exclusive with -follow)")
		follow      = flag.String("follow", "", "leader base URL, e.g. http://10.0.0.1:7475 (follower mode: tail the leader's published snapshots)")
		addr        = flag.String("addr", ":7475", "listen address")
		precision   = flag.String("precision", "float32", "index precision: float32 (2x smaller than training output) or int8 (8x)")
		watch       = flag.Duration("watch", 0, "poll the artifact at this interval and hot-swap on change (0 = SIGHUP only; leader mode)")
		checkpoint  = flag.String("checkpoint", "", "crash-safe snapshot checkpoint path: written after each publish (or applied replica generation), loaded (CRC-checked) for warm restart")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrently executing queries before shedding with 503 (0 = unlimited)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request context deadline (0 = none)")
		annOn       = flag.Bool("ann", false, "build an IVF index per published snapshot for sub-linear queries (snapshots under -ann-min-rows keep the exact scan)")
		nlist       = flag.Int("nlist", 0, "IVF posting-list count (0 = sqrt of the vertex count)")
		nprobe      = flag.Int("nprobe", 0, "IVF lists probed per query; higher = better recall, slower (0 = nlist/16)")
		annMinRows  = flag.Int("ann-min-rows", 0, "smallest snapshot that gets an IVF index (0 = default 4096); smaller ones serve exact scans")
		pollEvery   = flag.Duration("replica-poll", serve.DefaultReplicaPoll, "follower: leader meta poll interval")
		backoffMax  = flag.Duration("replica-backoff-max", serve.DefaultReplicaBackoffMax, "follower: cap for the exponential failure backoff")
		fetchTO     = flag.Duration("replica-fetch-timeout", serve.DefaultFetchTimeout, "follower: per-request deadline for meta polls and snapshot downloads")
		staleAfter  = flag.Duration("stale-after", serve.DefaultStaleAfter, "follower: report degraded (stale) on /healthz after this long without leader contact")
	)
	flag.Parse()
	annCfg := ann.Config{Enabled: *annOn, NList: *nlist, NProbe: *nprobe, MinRows: *annMinRows}
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("lightne-serve: ")
	switch {
	case *artifact == "" && *follow == "":
		fmt.Fprintln(os.Stderr, "lightne-serve: one of -artifact (leader) or -follow (follower) is required")
		flag.Usage()
		os.Exit(2)
	case *artifact != "" && *follow != "":
		fmt.Fprintln(os.Stderr, "lightne-serve: -artifact and -follow are mutually exclusive (a process is a leader or a follower, not both)")
		os.Exit(2)
	}

	store := serve.NewStore()
	shipper := serve.NewShipper()
	pub := &publisher{
		store:      store,
		shipper:    shipper,
		annCfg:     annCfg,
		precision:  *precision,
		checkpoint: *checkpoint,
	}

	// Warm restart (both modes): a CRC-valid checkpoint serves immediately,
	// before (and independent of) the artifact load or the first leader
	// contact. Corruption — including a file torn by a crash mid-write —
	// fails the checksum and falls through to the cold path.
	warm := false
	if *checkpoint != "" {
		if x, err := lightne.ReadCheckpoint(*checkpoint); err == nil {
			if _, pubErr := pub.publish(x, false); pubErr == nil {
				warm = true
				log.Printf("warm restart from checkpoint %s: %d vertices x %d dims", *checkpoint, x.Rows, x.Cols)
			} else {
				log.Printf("checkpoint index build failed, cold starting: %v", pubErr)
			}
		} else if !os.IsNotExist(err) {
			log.Printf("checkpoint unusable, cold starting: %v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opts := []serve.Option{serve.WithLimits(serve.Limits{
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
	}), serve.WithShipper(shipper)}

	if *follow != "" {
		rep, err := serve.NewReplicator(store, serve.ReplicaConfig{
			Leader:       *follow,
			Poll:         *pollEvery,
			BackoffMax:   *backoffMax,
			FetchTimeout: *fetchTO,
			StaleAfter:   *staleAfter,
			ANN:          annCfg,
			Logf:         log.Printf,
			Decode: func(r io.Reader, size int64) (serve.Index, error) {
				x, err := lightne.ReadCheckpointFrom(r, size)
				if err != nil {
					return nil, err
				}
				return serve.NewIndex(x, *precision)
			},
			// Each applied generation becomes this follower's warm-restart
			// checkpoint and is re-shipped on its own /v1/snapshot, so
			// followers chain into trees without extra configuration.
			OnApply: func(gen uint64, payload []byte, rows, dims int) {
				shipper.Publish(serve.NewShipment(payload, gen, rows, dims))
				if *checkpoint == "" {
					return
				}
				if err := lightne.WriteCheckpointBytes(*checkpoint, payload); err != nil {
					log.Printf("checkpoint write failed: %v", err)
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			if err := rep.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("replication loop exited: %v", err)
			}
		}()
		log.Printf("following %s (poll %s, stale after %s)", *follow, *pollEvery, *staleAfter)
		opts = append(opts, serve.WithReplicator(rep))
	} else {
		// Leader mode: load the artifact. With a warm snapshot already
		// published, an artifact failure only means serving the
		// checkpointed generation.
		mtime, err := publishArtifact(pub, *artifact)
		switch {
		case err == nil:
			snap := store.Snapshot()
			log.Printf("loaded %s: %d vertices x %d dims, %s index (%.1f MB)",
				*artifact, snap.Index.Rows(), snap.Index.Dims(), *precision,
				float64(snap.Index.MemoryBytes())/1e6)
		case warm:
			log.Printf("artifact load failed, serving checkpoint snapshot: %v", err)
		default:
			log.Fatal(err)
		}

		// Hot-swap: SIGHUP reloads immediately; -watch polls the file's mtime.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			var tick <-chan time.Time
			if *watch > 0 {
				t := time.NewTicker(*watch)
				defer t.Stop()
				tick = t.C
			}
			for {
				select {
				case <-ctx.Done():
					return
				case <-hup:
				case <-tick:
					st, err := os.Stat(*artifact)
					if err != nil || !st.ModTime().After(mtime) {
						continue
					}
				}
				m, err := publishArtifact(pub, *artifact)
				if err != nil {
					log.Printf("reload failed, keeping current snapshot: %v", err)
					continue
				}
				mtime = m
				s := store.Snapshot()
				log.Printf("hot-swapped snapshot v%d: %d vertices x %d dims",
					s.Version, s.Index.Rows(), s.Index.Dims())
			}
		}()
	}

	srv := serve.New(store, opts...)
	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}

// publisher owns everything that happens when a new embedding generation
// goes live on a leader: quantize to the serving index, build the IVF
// index, atomically publish, encode the checkpoint payload once, offer it
// to followers, and persist it as the warm-restart checkpoint — the
// encoded bytes are shared between shipping and checkpointing, so the
// artifact is read exactly once per generation.
type publisher struct {
	store      *serve.Store
	shipper    *serve.Shipper
	annCfg     ann.Config
	precision  string
	checkpoint string
}

// publish makes x the live generation. rewriteCheckpoint gates the
// checkpoint write (false on the warm-restart path, where the checkpoint
// file is the source and rewriting it would be a no-op with extra fsyncs).
// A failed index build fails the publish; a failed ANN build, encode,
// ship, or checkpoint write degrades (logged) rather than blocking — a
// served snapshot always beats a perfectly persisted one that never lands.
func (p *publisher) publish(x *lightne.Matrix, rewriteCheckpoint bool) (*serve.Snapshot, error) {
	ix, err := serve.NewIndex(x, p.precision)
	if err != nil {
		return nil, err
	}
	ivf, err := serve.BuildANN(ix, p.annCfg)
	if err != nil {
		log.Printf("ANN index build failed, serving exact scans: %v", err)
		ivf = nil
	}
	snap := p.store.PublishWithANN(ix, ivf, 0)
	if ivf != nil {
		st := ivf.Stats()
		log.Printf("IVF index: %d lists (probe %d), %d empty, %.1f MB",
			st.NList, st.NProbe, st.EmptyLists, float64(st.MemoryBytes)/1e6)
	}
	payload, err := lightne.EncodeCheckpoint(x)
	if err != nil {
		log.Printf("snapshot encode failed; generation %d will not ship or checkpoint: %v", snap.Version, err)
		return snap, nil
	}
	p.shipper.Publish(serve.NewShipment(payload, snap.Version, x.Rows, x.Cols))
	if rewriteCheckpoint && p.checkpoint != "" {
		if err := lightne.WriteCheckpointBytes(p.checkpoint, payload); err != nil {
			log.Printf("checkpoint write failed: %v", err)
		} else {
			log.Printf("checkpointed snapshot to %s", p.checkpoint)
		}
	}
	return snap, nil
}

// publishArtifact loads the artifact and publishes it as the live (and
// shipped) generation, returning the file's mtime for change detection.
func publishArtifact(p *publisher, path string) (time.Time, error) {
	f, err := os.Open(path)
	if err != nil {
		return time.Time{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return time.Time{}, err
	}
	x, err := lightne.ReadEmbedding(f)
	if err != nil {
		return time.Time{}, fmt.Errorf("loading %s: %w", path, err)
	}
	if _, err := p.publish(x, true); err != nil {
		return time.Time{}, err
	}
	return st.ModTime(), nil
}
