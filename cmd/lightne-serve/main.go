// Command lightne-serve answers top-k nearest-neighbor and vector-lookup
// queries over an embedding artifact produced by cmd/lightne, exposing a
// JSON API:
//
//	GET  /healthz                       liveness + snapshot info (ok/degraded/loading)
//	GET  /metrics                       request counters, latency p50/p95/p99
//	GET  /v1/neighbors?vertex=V&k=K     top-k cosine neighbors of V
//	POST /v1/neighbors                  {"vertex": V, "k": K}
//	POST /v1/batch                      {"queries": [{"vertex": V, "k": K}, ...]}
//	GET  /v1/embedding/V                V's embedding vector
//
// Typical session:
//
//	lightne -input graph.txt -output emb.bin -binary -dim 128
//	lightne-serve -artifact emb.bin -checkpoint emb.ckpt -addr :7475 &
//	curl 'localhost:7475/v1/neighbors?vertex=42&k=10'
//
// The artifact may be the versioned binary format (fastest) or text rows;
// both are auto-detected. -precision int8 serves from 8x-smaller quantized
// codes. The loaded snapshot is hot-swappable: SIGHUP (or -watch) reloads
// the artifact and publishes it atomically with zero query downtime.
// SIGINT/SIGTERM drain in-flight requests before exiting.
//
// -ann builds an IVF index (internal/ann) for each published snapshot, so
// neighbor queries probe -nprobe of -nlist posting lists instead of
// scanning every vertex; the index is constructed before the publish and
// swapped in the same atomic pointer store as its embedding, on the cold
// start, the checkpoint warm restart, and every hot-swap reload alike.
// Snapshots smaller than -ann-min-rows keep the exact scan (it is already
// microseconds at that size).
//
// Failure hardening: -checkpoint persists each served snapshot to a
// crash-safe CRC-checked file (temp + fsync + atomic rename). On restart
// the checkpoint warm-starts the server even when the artifact is missing
// or corrupt; a checkpoint torn by a kill mid-write fails its CRC check
// and the server falls back to a cold start from the artifact. -max-inflight
// sheds excess concurrent queries with 503 + Retry-After, and
// -request-timeout attaches a deadline to each query's context; handler
// panics answer 500 and increment lightne_panics_total instead of dropping
// the connection.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lightne"
	"lightne/internal/ann"
	"lightne/internal/serve"
)

func main() {
	var (
		artifact    = flag.String("artifact", "", "embedding artifact from cmd/lightne, binary or text (required)")
		addr        = flag.String("addr", ":7475", "listen address")
		precision   = flag.String("precision", "float32", "index precision: float32 (2x smaller than training output) or int8 (8x)")
		watch       = flag.Duration("watch", 0, "poll the artifact at this interval and hot-swap on change (0 = SIGHUP only)")
		checkpoint  = flag.String("checkpoint", "", "crash-safe snapshot checkpoint path: written after each publish, loaded (CRC-checked) for warm restart")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrently executing queries before shedding with 503 (0 = unlimited)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request context deadline (0 = none)")
		annOn       = flag.Bool("ann", false, "build an IVF index per published snapshot for sub-linear queries (snapshots under -ann-min-rows keep the exact scan)")
		nlist       = flag.Int("nlist", 0, "IVF posting-list count (0 = sqrt of the vertex count)")
		nprobe      = flag.Int("nprobe", 0, "IVF lists probed per query; higher = better recall, slower (0 = nlist/16)")
		annMinRows  = flag.Int("ann-min-rows", 0, "smallest snapshot that gets an IVF index (0 = default 4096); smaller ones serve exact scans")
	)
	flag.Parse()
	annCfg := ann.Config{Enabled: *annOn, NList: *nlist, NProbe: *nprobe, MinRows: *annMinRows}
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("lightne-serve: ")
	if *artifact == "" {
		fmt.Fprintln(os.Stderr, "lightne-serve: -artifact is required")
		flag.Usage()
		os.Exit(2)
	}

	store := serve.NewStore()

	// Warm restart: a CRC-valid checkpoint serves immediately, before (and
	// independent of) the artifact load. Corruption — including a file torn
	// by a crash mid-write — fails the checksum and falls through to the
	// cold path.
	warm := false
	if *checkpoint != "" {
		if x, err := lightne.ReadCheckpoint(*checkpoint); err == nil {
			if ix, ixErr := serve.NewIndex(x, *precision); ixErr == nil {
				publishIndexed(store, ix, annCfg)
				warm = true
				log.Printf("warm restart from checkpoint %s: %d vertices x %d dims", *checkpoint, x.Rows, x.Cols)
			} else {
				log.Printf("checkpoint index build failed, cold starting: %v", ixErr)
			}
		} else if !os.IsNotExist(err) {
			log.Printf("checkpoint unusable, cold starting from artifact: %v", err)
		}
	}

	// Cold path: load the artifact. With a warm snapshot already published,
	// an artifact failure only means serving the checkpointed generation.
	mtime, err := publishArtifact(store, *artifact, *precision, annCfg)
	switch {
	case err == nil:
		snap := store.Snapshot()
		log.Printf("loaded %s: %d vertices x %d dims, %s index (%.1f MB)",
			*artifact, snap.Index.Rows(), snap.Index.Dims(), *precision,
			float64(snap.Index.MemoryBytes())/1e6)
		writeCheckpoint(*checkpoint, *artifact)
	case warm:
		log.Printf("artifact load failed, serving checkpoint snapshot: %v", err)
	default:
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Hot-swap: SIGHUP reloads immediately; -watch polls the file's mtime.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		var tick <-chan time.Time
		if *watch > 0 {
			t := time.NewTicker(*watch)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
			case <-tick:
				st, err := os.Stat(*artifact)
				if err != nil || !st.ModTime().After(mtime) {
					continue
				}
			}
			m, err := publishArtifact(store, *artifact, *precision, annCfg)
			if err != nil {
				log.Printf("reload failed, keeping current snapshot: %v", err)
				continue
			}
			mtime = m
			s := store.Snapshot()
			log.Printf("hot-swapped snapshot v%d: %d vertices x %d dims",
				s.Version, s.Index.Rows(), s.Index.Dims())
			writeCheckpoint(*checkpoint, *artifact)
		}
	}()

	srv := serve.New(store, serve.WithLimits(serve.Limits{
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *reqTimeout,
	}))
	log.Printf("serving on %s", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}

// publishArtifact loads the artifact and atomically publishes it (together
// with its IVF index when ANN is configured), returning the file's mtime
// for change detection.
func publishArtifact(store *serve.Store, path, precision string, annCfg ann.Config) (time.Time, error) {
	f, err := os.Open(path)
	if err != nil {
		return time.Time{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return time.Time{}, err
	}
	x, err := lightne.ReadEmbedding(f)
	if err != nil {
		return time.Time{}, fmt.Errorf("loading %s: %w", path, err)
	}
	ix, err := serve.NewIndex(x, precision)
	if err != nil {
		return time.Time{}, err
	}
	publishIndexed(store, ix, annCfg)
	return st.ModTime(), nil
}

// publishIndexed builds the snapshot's IVF index per annCfg and swaps the
// (embedding, index) pair in atomically. A failed index build degrades to
// the exact scan rather than blocking the publish — a served snapshot
// always beats a perfectly indexed one that never lands.
func publishIndexed(store *serve.Store, ix serve.Index, annCfg ann.Config) {
	ivf, err := serve.BuildANN(ix, annCfg)
	if err != nil {
		log.Printf("ANN index build failed, serving exact scans: %v", err)
		ivf = nil
	}
	store.PublishWithANN(ix, ivf, 0)
	if ivf != nil {
		st := ivf.Stats()
		log.Printf("IVF index: %d lists (probe %d), %d empty, %.1f MB",
			st.NList, st.NProbe, st.EmptyLists, float64(st.MemoryBytes)/1e6)
	}
}

// writeCheckpoint persists the just-published artifact to the checkpoint
// path (crash-safe). Failures are logged, never fatal: a checkpoint is an
// optimization for the next restart, not a serving dependency.
func writeCheckpoint(checkpointPath, artifactPath string) {
	if checkpointPath == "" {
		return
	}
	f, err := os.Open(artifactPath)
	if err != nil {
		log.Printf("checkpoint skipped, cannot reopen artifact: %v", err)
		return
	}
	defer f.Close()
	x, err := lightne.ReadEmbedding(f)
	if err != nil {
		log.Printf("checkpoint skipped, artifact unreadable: %v", err)
		return
	}
	if err := lightne.WriteCheckpoint(checkpointPath, x); err != nil {
		log.Printf("checkpoint write failed: %v", err)
		return
	}
	log.Printf("checkpointed snapshot to %s", checkpointPath)
}
