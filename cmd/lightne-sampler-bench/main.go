// Command lightne-sampler-bench measures the sampling pipeline variants on a
// synthetic RMAT graph and writes the results as JSON (BENCH_sampler.json):
// wall-clock ns per full sampling pass, head throughput, the hash-table
// memory high-water mark, and the adjacency storage each variant walks, for
//
//   - sample:                the per-arc reference sampler (walks interleaved
//     with inserts), the baseline,
//   - batched:               the wave pipeline on a single shared table,
//   - pipelined:             the wave pipeline draining into a sharded sink
//     through radix-partitioned batch inserts,
//   - pipelined-compressed:  the same pipeline walking the parallel-byte
//     compressed adjacency natively (wave-local block decoding; no
//     uncompressed edge array exists at any point),
//   - pipelined-weighted:    the same pipeline on a weighted twin of the
//     graph (deterministic per-edge weights), every walk step resolving a
//     Vose alias table from its keyed draw.
//
// The pipelined/pipelined-compressed pair isolates the cost of walking
// compressed, and pipelined/pipelined-weighted the cost of weighted draws:
// identical config, only the adjacency representation differs.
//
// Usage:
//
//	lightne-sampler-bench -out BENCH_sampler.json
//	lightne-sampler-bench -scale 14 -m 4000000 -reps 5 -procs 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"lightne/internal/gen"
	"lightne/internal/graph"
	"lightne/internal/rng"
	"lightne/internal/sampler"
)

type result struct {
	Name           string  `json:"name"`
	NsPerOp        int64   `json:"ns_per_op"`
	HeadsPerSec    float64 `json:"heads_per_sec"`
	Heads          int64   `json:"heads"`
	PeakTableBytes int64   `json:"peak_table_bytes"`
	TableBytes     int64   `json:"table_bytes"`
	GraphBytes     int64   `json:"graph_bytes"`
}

type report struct {
	GoMaxProcs      int      `json:"gomaxprocs"`
	HardwareThreads int      `json:"hardware_threads"`
	Vertices        int      `json:"vertices"`
	Arcs            int64    `json:"arcs"`
	T               int      `json:"t"`
	M               int64    `json:"m"`
	WaveSize        int      `json:"wave_size"`
	Shards          int      `json:"shards"`
	BlockSize       int      `json:"block_size"`
	Reps            int      `json:"reps"`
	Results         []result `json:"results"`
	// Speedups are the sample baseline's ns/op divided by the variant's
	// ns/op (higher is better; > 1 means the variant wins). The compressed
	// ratio compares pipelined-compressed against pipelined — the slowdown
	// paid for walking the compressed adjacency natively.
	SpeedupBatched       float64 `json:"speedup_batched_vs_sample"`
	SpeedupPipelined     float64 `json:"speedup_pipelined_vs_sample"`
	CompressedVsRaw      float64 `json:"compressed_ns_over_raw_ns"`
	GraphCompressionRate float64 `json:"graph_bytes_raw_over_compressed"`
	// WeightedVsRaw compares pipelined-weighted against pipelined — the
	// slowdown paid for alias-table walk steps and the weighted budget.
	WeightedVsRaw float64 `json:"weighted_ns_over_raw_ns"`
	Note                 string  `json:"note,omitempty"`
}

func main() {
	var (
		scale     = flag.Int("scale", 12, "RMAT scale (2^scale vertices)")
		edgeFac   = flag.Int("edge-factor", 8, "RMAT edges per vertex")
		t         = flag.Int("t", 10, "window size T")
		m         = flag.Int64("m", 2_000_000, "sample budget M")
		waveSize  = flag.Int("wave-size", 0, "wave size (0 = default)")
		shards    = flag.Int("shards", 4, "shard count for the pipelined variants")
		blockSize = flag.Int("block-size", 0, "compressed block size (0 = default)")
		reps      = flag.Int("reps", 3, "runs per variant (best is reported)")
		procs     = flag.Int("procs", 4, "GOMAXPROCS for the measurement")
		seed      = flag.Uint64("seed", 1, "random seed")
		out       = flag.String("out", "BENCH_sampler.json", "output path ('-' for stdout)")
	)
	flag.Parse()
	runtime.GOMAXPROCS(*procs)

	g, err := gen.RMAT(gen.RMATConfig{Scale: *scale, EdgeFactor: *edgeFac, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	cg, err := g.ToCompressed(*blockSize)
	if err != nil {
		fatal(err)
	}
	wg, err := weightedTwin(g, *seed)
	if err != nil {
		fatal(err)
	}
	cfg := sampler.Config{T: *t, M: *m, Downsample: true, Seed: *seed}
	shardedCfg := cfg
	shardedCfg.Shards = *shards

	variants := []struct {
		name string
		g    *graph.Graph
		run  func() (sampler.Stats, error)
	}{
		{"sample", g, func() (sampler.Stats, error) {
			_, stats, err := sampler.Sample(g, cfg)
			return stats, err
		}},
		{"batched", g, func() (sampler.Stats, error) {
			_, stats, err := sampler.SampleBatched(g, cfg, *waveSize)
			return stats, err
		}},
		{"pipelined", g, func() (sampler.Stats, error) {
			_, stats, err := sampler.SampleBatched(g, shardedCfg, *waveSize)
			return stats, err
		}},
		{"pipelined-compressed", cg, func() (sampler.Stats, error) {
			_, stats, err := sampler.SampleBatched(cg, shardedCfg, *waveSize)
			return stats, err
		}},
		{"pipelined-weighted", wg, func() (sampler.Stats, error) {
			_, stats, err := sampler.SampleBatched(wg, shardedCfg, *waveSize)
			return stats, err
		}},
	}

	rep := report{
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		HardwareThreads: runtime.NumCPU(),
		Vertices:        g.NumVertices(),
		Arcs:            g.NumEdges(),
		T:               *t,
		M:               *m,
		WaveSize:        *waveSize,
		Shards:          *shards,
		BlockSize:       cg.BlockSize(),
		Reps:            *reps,
	}
	for _, v := range variants {
		r, err := measure(v.name, v.run, *reps)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", v.name, err))
		}
		r.GraphBytes = v.g.SizeBytes()
		fmt.Fprintf(os.Stderr, "%-21s %12d ns/op  %12.0f heads/s  peak %d B  graph %d B\n",
			r.Name, r.NsPerOp, r.HeadsPerSec, r.PeakTableBytes, r.GraphBytes)
		rep.Results = append(rep.Results, r)
	}
	base := rep.Results[0].NsPerOp // sample
	rep.SpeedupBatched = float64(base) / float64(rep.Results[1].NsPerOp)
	rep.SpeedupPipelined = float64(base) / float64(rep.Results[2].NsPerOp)
	rep.CompressedVsRaw = float64(rep.Results[3].NsPerOp) / float64(rep.Results[2].NsPerOp)
	rep.GraphCompressionRate = float64(rep.Results[2].GraphBytes) / float64(rep.Results[3].GraphBytes)
	rep.WeightedVsRaw = float64(rep.Results[4].NsPerOp) / float64(rep.Results[2].NsPerOp)
	if rep.HardwareThreads < rep.GoMaxProcs {
		rep.Note = fmt.Sprintf("GOMAXPROCS=%d exceeds the host's %d hardware thread(s): "+
			"worker-parallel stages time-slice one core, so recorded speedups are a floor, "+
			"not the multi-core figure", rep.GoMaxProcs, rep.HardwareThreads)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// weightedTwin rebuilds g with a deterministic positive weight per
// undirected edge (keyed hash of the endpoint pair, spread over
// [0.25, 5)), so the weighted variant walks the same topology and the run
// is reproducible for a fixed seed.
func weightedTwin(g *graph.Graph, seed uint64) (*graph.Graph, error) {
	n := g.NumVertices()
	var arcs []graph.WeightedEdge
	for ui := 0; ui < n; ui++ {
		u := uint32(ui)
		d := g.Degree(u)
		for i := 0; i < d; i++ {
			v := g.Neighbor(u, i)
			if u >= v {
				continue // one direction per edge; Symmetrize restores the other
			}
			h := rng.Hash64(seed, uint64(u)<<32|uint64(v))
			w := 0.25 + 4.75*float64(h>>11)/(1<<53)
			arcs = append(arcs, graph.WeightedEdge{U: u, V: v, W: w})
		}
	}
	return graph.FromWeightedEdges(n, arcs, graph.Options{Symmetrize: true})
}

// measure runs fn reps times and keeps the fastest pass — the run least
// disturbed by scheduler noise; stats are identical across runs (the sampler
// is deterministic for a fixed config).
func measure(name string, fn func() (sampler.Stats, error), reps int) (result, error) {
	var best time.Duration
	var stats sampler.Stats
	for i := 0; i < reps; i++ {
		start := time.Now()
		s, err := fn()
		el := time.Since(start)
		if err != nil {
			return result{}, err
		}
		if i == 0 || el < best {
			best, stats = el, s
		}
	}
	return result{
		Name:           name,
		NsPerOp:        best.Nanoseconds(),
		HeadsPerSec:    float64(stats.Heads) / best.Seconds(),
		Heads:          stats.Heads,
		PeakTableBytes: stats.PeakTableBytes,
		TableBytes:     stats.TableBytes,
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightne-sampler-bench:", err)
	os.Exit(1)
}
