// Command lightne-bench regenerates the paper's evaluation tables and
// figures (§5) on the synthetic dataset replicas. Each experiment prints a
// text table mirroring the corresponding paper artifact; EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// Usage:
//
//	lightne-bench                 # run everything (e1-e10 paper artifacts,
//	                              # e11-e14 extension experiments)
//	lightne-bench -exp e4,e5      # only Table 4 and Figure 2
//	lightne-bench -quick          # ~10x cheaper smoke run
//	lightne-bench -exp e14 -factorize-out BENCH_factorize.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lightne/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment IDs (e1..e14) or 'all'")
		quick   = flag.Bool("quick", false, "shrink sweeps and sample budgets for a fast smoke run")
		seed    = flag.Uint64("seed", 1, "random seed")
		factOut = flag.String("factorize-out", "", "path for E14's machine-readable record (e.g. BENCH_factorize.json); empty writes nothing")
	)
	flag.Parse()

	ids := experiments.Order()
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.ToLower(strings.TrimSpace(id)))
		}
	}
	runners := experiments.All()
	opt := experiments.Options{Seed: *seed, Quick: *quick, FactorizeOut: *factOut}
	start := time.Now()
	failed := 0
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "lightne-bench: unknown experiment %q (valid: %s)\n",
				id, strings.Join(experiments.Order(), ", "))
			failed++
			continue
		}
		rep, err := run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightne-bench: %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(rep.String())
	}
	fmt.Fprintf(os.Stderr, "lightne-bench: %d experiment(s) in %s\n", len(ids)-failed, time.Since(start).Round(time.Second))
	if failed > 0 {
		os.Exit(1)
	}
}
