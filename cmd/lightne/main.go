// Command lightne embeds a graph from an edge-list file using the LightNE
// pipeline and writes the embedding as text (one whitespace-separated row
// per vertex) or, with -binary, in the versioned binary artifact format
// that lightne-serve and lightne-eval load directly.
//
// Usage:
//
//	lightne -input graph.txt -output emb.txt -dim 128 -T 10 -samples 1.0
//	lightne -input graph.txt -output emb.bin -binary   # serving artifact
//
// The input format is one "u v" pair per line; lines starting with '#' or
// '%' are ignored. Per-stage timings are reported on stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"lightne"
)

func main() {
	var (
		input      = flag.String("input", "", "edge-list file (required; '-' for stdin)")
		output     = flag.String("output", "-", "output file for the embedding ('-' for stdout)")
		dim        = flag.Int("dim", 128, "embedding dimension d")
		window     = flag.Int("T", 10, "context window size T")
		samples    = flag.Float64("samples", 1.0, "sample multiple: M = samples*T*m (0.1 = LightNE-Small, 20 = LightNE-Large)")
		budgetMB   = flag.Int64("budget-mb", 0, "pick the largest M whose predicted memory fits this many MB (overrides -samples)")
		seed       = flag.Uint64("seed", 1, "random seed")
		skipProp   = flag.Bool("skip-propagation", false, "omit the spectral-propagation step (paper's very-large-graph mode)")
		noDown     = flag.Bool("no-downsample", false, "disable edge downsampling (plain NetSMF sampling)")
		compress   = flag.Bool("compress", false, "store the graph in Ligra+ parallel-byte compressed form")
		weighted   = flag.Bool("weighted", false, "parse a third column as edge weight (\"u v w\" lines)")
		binaryIn   = flag.Bool("binary-input", false, "read the LNG1/LNGC binary format instead of text")
		mmapIn     = flag.Bool("mmap", false, "memory-map -input as an LNGC compressed graph file (O(1) load, adjacency served from the page cache)")
		validate   = flag.Bool("validate", false, "deep-check graph consistency after loading (recommended for untrusted -mmap files)")
		binaryOut  = flag.Bool("binary", false, "write the embedding in the versioned binary format (what lightne-serve loads fastest)")
		vertices   = flag.Int("n", 0, "vertex count (0 = infer from max ID)")
		propOrder  = flag.Int("prop-order", 10, "spectral propagation polynomial order k")
		oversample = flag.Int("oversample", 0, "extra randomized-SVD sketch columns")
		powerIters = flag.Int("power-iters", 0, "randomized-SVD subspace iterations")
		shards     = flag.Int("shards", 1, "split the sample-aggregation table across this many shards (rounded up to a power of two; output is bit-identical for any value)")
		batched    = flag.Bool("batched", false, "use the radix-batched wave-pipelined walker (weighted graphs walk via alias tables; output is bit-identical for any wave size, shard count or worker count)")
		waveSize   = flag.Int("wave-size", 0, "in-flight heads per wave of the batched walker (0 = maximum, 2^22); implies nothing without -batched")
		sketch     = flag.Bool("sketch", false, "factorize with the single-pass sketch: the sparsifier streams out of the hash table straight into the range finder, never materializing the scaled matrix (lower peak memory; -power-iters is ignored)")
		sketchKind = flag.String("sketch-kind", "sign", "test-matrix family for -sketch: \"sign\" (sparse ±1, memory-optimal) or \"gaussian\" (dense cross-check)")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "lightne: -input is required")
		flag.Usage()
		os.Exit(2)
	}

	var g *lightne.Graph
	var err error
	if *mmapIn {
		if *input == "-" {
			fatal(fmt.Errorf("-mmap needs a file path, not stdin"))
		}
		if *weighted {
			fatal(fmt.Errorf("-mmap and -weighted are mutually exclusive (LNGC graphs are unweighted)"))
		}
		g, err = lightne.MmapGraph(*input)
		if err != nil {
			fatal(err)
		}
		defer g.Munmap()
	} else {
		in := os.Stdin
		if *input != "-" {
			f, err := os.Open(*input)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			in = f
		}
		opts := lightne.DefaultGraphOptions()
		opts.Compress = *compress
		switch {
		case *binaryIn:
			g, err = lightne.LoadGraphBinary(bufio.NewReader(in), opts)
		case *weighted:
			if *compress {
				fatal(fmt.Errorf("-weighted and -compress are mutually exclusive"))
			}
			g, err = lightne.LoadWeightedGraph(bufio.NewReader(in), *vertices)
		default:
			g, err = lightne.LoadGraphWithOptions(bufio.NewReader(in), *vertices, opts)
		}
		if err != nil {
			fatal(err)
		}
	}
	if *validate {
		if err := g.Validate(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "loaded graph: %d vertices, %d undirected edges (adjacency %.1f MB%s)\n",
		g.NumVertices(), g.NumEdges()/2, float64(g.SizeBytes())/1e6, compressedTag(g.Compressed()))

	cfg := lightne.DefaultConfig(*dim)
	cfg.T = *window
	cfg.SampleMultiple = *samples
	cfg.Seed = *seed
	cfg.SkipPropagation = *skipProp
	cfg.NoDownsample = *noDown
	cfg.Propagation.Order = *propOrder
	cfg.Oversample = *oversample
	cfg.PowerIters = *powerIters
	cfg.Shards = *shards
	cfg.BatchedWalks = *batched
	cfg.WaveSize = *waveSize
	cfg.StreamedSVD = *sketch
	switch *sketchKind {
	case "sign":
		cfg.Sketch = lightne.SketchSparseSign
	case "gaussian":
		cfg.Sketch = lightne.SketchGaussian
	default:
		fatal(fmt.Errorf("unknown -sketch-kind %q (want \"sign\" or \"gaussian\")", *sketchKind))
	}

	if *budgetMB > 0 {
		m, err := lightne.MaxAffordableSamples(g, cfg, *budgetMB<<20)
		if err != nil {
			fatal(err)
		}
		cfg.M = m
		fmt.Fprintf(os.Stderr, "budget %d MB affords M = %d samples (%.2f x T x m)\n",
			*budgetMB, m, float64(m)/(float64(*window)*float64(g.NumEdges())/2))
	}

	res, err := lightne.Embed(g, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"embedded: sparsifier %s (nnz %d, %d trials, %d heads), factorization %s, propagation %s, total %s\n",
		res.Timing.Sparsifier.Round(1e6), res.SparsifierNNZ,
		res.SampleStats.Trials, res.SampleStats.Heads,
		res.Timing.SVD.Round(1e6), res.Timing.Propagation.Round(1e6),
		res.Timing.Total().Round(1e6))

	out := os.Stdout
	if *output != "-" {
		f, err := os.Create(*output)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if *binaryOut {
		err = lightne.WriteEmbeddingBinary(out, res.Embedding)
	} else {
		err = lightne.WriteEmbeddingText(out, res.Embedding)
	}
	if err != nil {
		fatal(err)
	}
}

func compressedTag(c bool) string {
	if c {
		return ", parallel-byte compressed"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightne:", err)
	os.Exit(1)
}
