// Command lightne-gen writes one of the synthetic dataset replicas to disk
// as an edge list (and a labels file when the replica has planted labels),
// completing the generate → embed → evaluate CLI workflow:
//
//	lightne-gen -dataset oag-like -out graph.txt -labels labels.txt
//	lightne -input graph.txt -output emb.txt -dim 32
//	lightne-eval -task classify -embedding emb.txt -labels labels.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"lightne"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "replica name (required); -list shows options")
		out      = flag.String("out", "-", "edge-list output file ('-' for stdout)")
		binary   = flag.Bool("binary", false, "write the LNG1 binary CSR format instead of text")
		compress = flag.Bool("compress", false, "with -binary: write the LNGC compressed format (what lightne -mmap loads)")
		labels   = flag.String("labels", "", "labels output file (optional; only for labeled replicas)")
		seed     = flag.Uint64("seed", 1, "random seed")
		list     = flag.Bool("list", false, "list available replicas and exit")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(lightne.DatasetNames(), "\n"))
		return
	}
	if *dataset == "" {
		fmt.Fprintln(os.Stderr, "lightne-gen: -dataset is required (try -list)")
		os.Exit(2)
	}
	ds, err := lightne.GenerateDataset(*dataset, *seed)
	if err != nil {
		fatal(err)
	}
	g := ds.Graph
	fmt.Fprintf(os.Stderr, "lightne-gen: %s: %d vertices, %d edges (paper scale %d / %d)\n",
		ds.Name, g.NumVertices(), g.NumEdges()/2, ds.PaperN, ds.PaperM)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *binary {
		if *compress {
			cg, err := lightne.CompressGraph(g, 0)
			if err != nil {
				fatal(err)
			}
			g = cg
		}
		if err := g.WriteBinary(w); err != nil {
			fatal(err)
		}
	} else {
		if *compress {
			fatal(fmt.Errorf("-compress requires -binary (the text format is uncompressed)"))
		}
		bw := bufio.NewWriter(w)
		for u := 0; u < g.NumVertices(); u++ {
			for _, v := range g.Neighbors(uint32(u), nil) {
				if uint32(u) < v {
					if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
						fatal(err)
					}
				}
			}
		}
		if err := bw.Flush(); err != nil {
			fatal(err)
		}
	}

	if *labels != "" {
		if ds.Labels == nil {
			fatal(fmt.Errorf("dataset %s has no labels", ds.Name))
		}
		f, err := os.Create(*labels)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		lw := bufio.NewWriter(f)
		for v, ls := range ds.Labels.Of {
			if len(ls) == 0 {
				continue
			}
			if _, err := fmt.Fprintf(lw, "%d", v); err != nil {
				fatal(err)
			}
			for _, c := range ls {
				if _, err := fmt.Fprintf(lw, " %d", c); err != nil {
					fatal(err)
				}
			}
			if err := lw.WriteByte('\n'); err != nil {
				fatal(err)
			}
		}
		if err := lw.Flush(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightne-gen:", err)
	os.Exit(1)
}
