// Command lightne-eval evaluates a saved embedding on one of the paper's
// downstream tasks.
//
// Node classification (labels file: "vertex class1 class2 ..." per line):
//
//	lightne-eval -task classify -embedding emb.txt -labels labels.txt -ratio 0.5
//
// Link prediction (edges file: held-out "u v" pairs):
//
//	lightne-eval -task linkpred -embedding emb.txt -test held_out.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lightne"
)

func main() {
	var (
		task      = flag.String("task", "classify", "evaluation task: classify or linkpred")
		embFile   = flag.String("embedding", "", "embedding file, text rows or binary artifact (required)")
		labels    = flag.String("labels", "", "labels file for -task classify")
		testFile  = flag.String("test", "", "held-out edges file for -task linkpred")
		ratio     = flag.Float64("ratio", 0.5, "training ratio for classification")
		seed      = flag.Uint64("seed", 1, "random seed")
		negatives = flag.Int("negatives", 100, "corrupted candidates per positive (linkpred)")
		exact     = flag.Bool("exact", false, "rank against every vertex instead of sampled candidates (linkpred; O(n) per edge)")
	)
	flag.Parse()
	if *embFile == "" {
		fmt.Fprintln(os.Stderr, "lightne-eval: -embedding is required")
		os.Exit(2)
	}
	x, err := loadMatrix(*embFile)
	if err != nil {
		fatal(err)
	}
	switch *task {
	case "classify":
		if *labels == "" {
			fatal(fmt.Errorf("-labels is required for classification"))
		}
		ls, numClasses, err := loadLabels(*labels, x.Rows)
		if err != nil {
			fatal(err)
		}
		res, err := lightne.NodeClassification(x, ls, numClasses, *ratio, *seed, lightne.DefaultTrainConfig())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("train=%d test=%d Micro-F1=%.4f Macro-F1=%.4f\n",
			res.TrainSize, res.TestSize, res.MicroF1, res.MacroF1)
	case "linkpred":
		if *testFile == "" {
			fatal(fmt.Errorf("-test is required for link prediction"))
		}
		test, err := loadEdges(*testFile)
		if err != nil {
			fatal(err)
		}
		auc := lightne.AUC(x, test, *negatives, *seed)
		var rank lightne.RankingResult
		if *exact {
			rank = lightne.ExactRanking(x, test, []int{1, 10, 50})
		} else {
			rank = lightne.Ranking(x, test, *negatives, []int{1, 10, 50}, *seed)
		}
		fmt.Printf("edges=%d AUC=%.4f MR=%.2f MRR=%.4f HITS@1=%.4f HITS@10=%.4f HITS@50=%.4f\n",
			len(test), auc, rank.MR, rank.MRR, rank.Hits[1], rank.Hits[10], rank.Hits[50])
	default:
		fatal(fmt.Errorf("unknown task %q", *task))
	}
}

func loadMatrix(path string) (*lightne.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Auto-detects the binary artifact format vs. text rows.
	return lightne.ReadEmbedding(f)
}

func loadLabels(path string, n int) ([][]int, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	labels := make([][]int, n)
	numClasses := 0
	if err := scanLines(f, func(fields []string) error {
		v, err := strconv.Atoi(fields[0])
		if err != nil || v < 0 || v >= n {
			return fmt.Errorf("bad vertex %q", fields[0])
		}
		for _, cf := range fields[1:] {
			c, err := strconv.Atoi(cf)
			if err != nil || c < 0 {
				return fmt.Errorf("bad class %q", cf)
			}
			labels[v] = append(labels[v], c)
			if c+1 > numClasses {
				numClasses = c + 1
			}
		}
		return nil
	}); err != nil {
		return nil, 0, err
	}
	return labels, numClasses, nil
}

func loadEdges(path string) ([]lightne.Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var edges []lightne.Edge
	if err := scanLines(f, func(fields []string) error {
		if len(fields) < 2 {
			return fmt.Errorf("need two fields, got %v", fields)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return err
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return err
		}
		edges = append(edges, lightne.Edge{U: uint32(u), V: uint32(v)})
		return nil
	}); err != nil {
		return nil, err
	}
	return edges, nil
}

func scanLines(r io.Reader, fn func(fields []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		if err := fn(strings.Fields(text)); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	return sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lightne-eval:", err)
	os.Exit(1)
}
