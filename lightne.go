// Package lightne is a pure-Go implementation of LightNE (Qiu, Dhulipala,
// Tang, Peng, Wang — SIGMOD 2021), a lightweight CPU-only shared-memory
// system for network embedding. It combines NetSMF-style spectral
// sparsification of the DeepWalk matrix (with LightNE's degree-based edge
// downsampling) and ProNE-style spectral propagation, on top of a
// from-scratch parallel graph-processing and linear-algebra stack.
//
// Basic usage:
//
//	g, err := lightne.LoadGraph(file, 0)        // edge list "u v" per line
//	res, err := lightne.Embed(g, lightne.DefaultConfig(128))
//	vec := res.Embedding.Row(42)                // 128-dim vector of vertex 42
//
// The package also exposes the individual building blocks (NetSMF, ProNE,
// the SGD baselines), the paper's evaluation protocols (multi-label node
// classification, link-prediction ranking) and deterministic synthetic
// dataset replicas, so the paper's experiments can be reproduced end to
// end; see cmd/lightne-bench and EXPERIMENTS.md.
package lightne

import (
	"io"

	"lightne/internal/baselines"
	"lightne/internal/core"
	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/netsmf"
	"lightne/internal/prone"
	"lightne/internal/quant"
	"lightne/internal/svd"
)

// Graph is an immutable CSR graph (optionally Ligra+ compressed).
type Graph = graph.Graph

// Edge is a directed arc used when constructing graphs.
type Edge = graph.Edge

// GraphOptions controls graph construction (symmetrization, dedup,
// compression).
type GraphOptions = graph.Options

// Matrix is a row-major dense matrix; embeddings are returned as matrices
// whose i-th row is vertex i's vector.
type Matrix = dense.Matrix

// Config controls a LightNE embedding run.
type Config = core.Config

// Result bundles an embedding with per-stage timings and diagnostics.
type Result = core.Result

// Timing is the sparsifier/SVD/propagation wall-clock breakdown.
type Timing = core.Timing

// PropagationConfig parameterizes the spectral-propagation step.
type PropagationConfig = prone.PropagationConfig

// SketchKind selects the test-matrix family of the single-pass sketched
// factorization (Config.StreamedSVD).
type SketchKind = svd.SketchKind

const (
	// SketchSparseSign is the memory-optimal default: a handful of ±1
	// entries per row of each test matrix.
	SketchSparseSign = svd.SketchSparseSign
	// SketchGaussian is the dense accuracy cross-check; it costs two extra
	// n-row dense matrices.
	SketchGaussian = svd.SketchGaussian
)

// DefaultGraphOptions returns the embedding pipelines' graph options:
// symmetrized, self-loop-free, deduplicated.
func DefaultGraphOptions() GraphOptions { return graph.DefaultOptions() }

// NewGraph builds a graph with n vertices from an arc list.
func NewGraph(n int, arcs []Edge, opt GraphOptions) (*Graph, error) {
	return graph.FromEdges(n, arcs, opt)
}

// WeightedEdge is a directed arc with a positive weight.
type WeightedEdge = graph.WeightedEdge

// NewWeightedGraph builds a weighted graph; the pipeline then uses weighted
// degrees, weight-proportional sampling and weighted random walks, per the
// paper's A_uv-carrying formulas (§3.2).
func NewWeightedGraph(n int, arcs []WeightedEdge, opt GraphOptions) (*Graph, error) {
	return graph.FromWeightedEdges(n, arcs, opt)
}

// LoadWeightedGraph parses "u v w" lines into a weighted graph (weight
// defaults to 1 when the third column is absent).
func LoadWeightedGraph(r io.Reader, n int) (*Graph, error) {
	return graph.LoadWeightedEdgeList(r, n, graph.DefaultOptions())
}

// LoadGraph parses a whitespace-separated edge list. If n <= 0 the vertex
// count is inferred from the maximum ID.
func LoadGraph(r io.Reader, n int) (*Graph, error) {
	return graph.LoadEdgeList(r, n, graph.DefaultOptions())
}

// LoadGraphWithOptions parses a whitespace-separated edge list under
// explicit graph options — in particular Compress, which builds the
// parallel-byte adjacency directly instead of forcing callers to rebuild
// the graph from its own neighbor lists.
func LoadGraphWithOptions(r io.Reader, n int, opt GraphOptions) (*Graph, error) {
	return graph.LoadEdgeList(r, n, opt)
}

// CompressGraph returns a structurally identical graph whose adjacency is
// stored in Ligra+ parallel-byte form (sharing the offsets array, dropping
// the uncompressed edge array). blockSize <= 0 selects the default; returns
// g unchanged if already compressed. Weighted graphs are not compressible.
func CompressGraph(g *Graph, blockSize int) (*Graph, error) {
	return g.ToCompressed(blockSize)
}

// MmapGraph memory-maps an LNGC compressed graph file (written by
// Graph.WriteBinary on a compressed graph). The adjacency is served
// straight from the page cache — load time and resident memory are O(1)
// regardless of graph size, and no CSR edge array is ever built. Call
// (*Graph).Munmap to release the mapping, and (*Graph).Validate once if the
// file is untrusted.
func MmapGraph(path string) (*Graph, error) {
	return graph.Mmap(path)
}

// DefaultConfig returns the paper's default configuration at dimension d
// (T=10, M=T·m, downsampling and propagation on).
func DefaultConfig(d int) Config { return core.DefaultConfig(d) }

// SmallConfig is the LightNE-Small preset (M = 0.1·T·m).
func SmallConfig(d int) Config { return core.SmallConfig(d) }

// LargeConfig is the LightNE-Large preset (M = 20·T·m).
func LargeConfig(d int) Config { return core.LargeConfig(d) }

// Embed runs the LightNE pipeline on g.
func Embed(g *Graph, cfg Config) (*Result, error) { return core.Embed(g, cfg) }

// NetSMFConfig configures the standalone NetSMF baseline/stage.
type NetSMFConfig = netsmf.Config

// NetSMF runs the NetSMF stage alone (the paper's NetSMF baseline when
// Downsample is false).
func NetSMF(g *Graph, cfg NetSMFConfig) (*netsmf.Result, error) { return netsmf.Run(g, cfg) }

// ProNEConfig configures the ProNE+ baseline.
type ProNEConfig = prone.Config

// DefaultProNEConfig returns ProNE's published defaults at dimension d.
func DefaultProNEConfig(d int) ProNEConfig { return prone.DefaultConfig(d) }

// ProNE runs the ProNE+ baseline (factorization + propagation).
func ProNE(g *Graph, cfg ProNEConfig) (*prone.Result, error) { return prone.Run(g, cfg) }

// Propagate applies spectral propagation to an existing embedding.
func Propagate(g *Graph, x *Matrix, cfg PropagationConfig) (*Matrix, error) {
	return prone.Propagate(g, x, cfg)
}

// DefaultPropagation returns the ProNE propagation defaults.
func DefaultPropagation() PropagationConfig { return prone.DefaultPropagation() }

// DeepWalkConfig configures the DeepWalk SGD baseline (GraphVite stand-in).
type DeepWalkConfig = baselines.DeepWalkConfig

// DefaultDeepWalkConfig returns conventional DeepWalk hyper-parameters.
func DefaultDeepWalkConfig(d int) DeepWalkConfig { return baselines.DefaultDeepWalk(d) }

// DeepWalk trains the DeepWalk baseline.
func DeepWalk(g *Graph, cfg DeepWalkConfig) (*Matrix, error) { return baselines.DeepWalk(g, cfg) }

// LINEConfig configures the LINE SGD baseline (PBG stand-in).
type LINEConfig = baselines.LINEConfig

// DefaultLINEConfig returns conventional LINE hyper-parameters.
func DefaultLINEConfig(d int) LINEConfig { return baselines.DefaultLINE(d) }

// LINE trains the LINE(2nd) baseline.
func LINE(g *Graph, cfg LINEConfig) (*Matrix, error) { return baselines.LINE(g, cfg) }

// NetMFConfig configures the exact dense NetMF baseline.
type NetMFConfig = baselines.NetMFConfig

// NetMFExact runs the exact dense NetMF factorization (small graphs only).
func NetMFExact(g *Graph, cfg NetMFConfig) (*Matrix, error) { return baselines.NetMFExact(g, cfg) }

// Node2VecConfig configures the node2vec baseline (biased 2nd-order walks).
type Node2VecConfig = baselines.Node2VecConfig

// DefaultNode2VecConfig returns conventional node2vec hyper-parameters.
func DefaultNode2VecConfig(d int) Node2VecConfig { return baselines.DefaultNode2Vec(d) }

// Node2Vec trains the node2vec baseline: DeepWalk's trainer over
// second-order (p, q)-biased walks.
func Node2Vec(g *Graph, cfg Node2VecConfig) (*Matrix, error) { return baselines.Node2Vec(g, cfg) }

// Float32Embedding is a half-size (single-precision) embedding for serving.
type Float32Embedding = quant.Float32Embedding

// Int8Embedding is an 8x-smaller quantized embedding supporting cosine
// queries directly on the codes.
type Int8Embedding = quant.Int8Embedding

// QuantizeFloat32 converts an embedding to single precision (2x smaller,
// ~1e-7 relative error).
func QuantizeFloat32(x *Matrix) *Float32Embedding { return quant.ToFloat32(x) }

// QuantizeInt8 converts an embedding to per-row symmetric int8 codes
// (8x smaller; cosine similarities preserved to ~1e-2).
func QuantizeInt8(x *Matrix) *Int8Embedding { return quant.ToInt8(x) }

// MemoryEstimate predicts an Embed run's peak memory (the paper's
// sample-budget-vs-RAM planning arithmetic, §5.2.4/§5.3).
type MemoryEstimate = core.MemoryEstimate

// EstimateMemory predicts peak memory for running cfg on g without
// executing the pipeline.
func EstimateMemory(g *Graph, cfg Config) (MemoryEstimate, error) {
	return core.EstimateMemory(g, cfg)
}

// MaxAffordableSamples returns the largest sample count M whose predicted
// memory fits the byte budget — how the paper picks M under 1.5 TB.
func MaxAffordableSamples(g *Graph, cfg Config, budgetBytes int64) (int64, error) {
	return core.MaxAffordableSamples(g, cfg, budgetBytes)
}

// LoadGraphBinary reads a graph in the LNG1 binary CSR format (written by
// Graph.WriteBinary or lightne-gen -binary); only the compression options
// are honored.
func LoadGraphBinary(r io.Reader, opt GraphOptions) (*Graph, error) {
	return graph.ReadBinary(r, opt)
}
