package lightne_test

import (
	"strings"
	"testing"

	"lightne"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	// A user's first contact with the library: load an edge list, embed,
	// evaluate link prediction — exercised entirely through the public API.
	edges := strings.NewReader(`
# toy barbell
0 1
0 2
1 2
2 3
3 4
3 5
4 5
`)
	g, err := lightne.LoadGraph(edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	cfg := lightne.DefaultConfig(4)
	cfg.T = 3
	res, err := lightne.Embed(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding.Rows != 6 || res.Embedding.Cols != 4 {
		t.Fatalf("embedding %dx%d", res.Embedding.Rows, res.Embedding.Cols)
	}
}

func TestPublicDatasetAndClassification(t *testing.T) {
	ds, err := lightne.GenerateDataset("blogcatalog-like", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lightne.SmallConfig(16)
	cfg.T = 5
	res, err := lightne.Embed(ds.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := lightne.NodeClassification(res.Embedding, ds.Labels.Of, ds.Labels.NumClasses,
		0.5, 3, lightne.DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / float64(ds.Labels.NumClasses)
	if cr.MicroF1 < 2*chance {
		t.Fatalf("public-API pipeline micro-F1 %.3f not above chance", cr.MicroF1)
	}
}

func TestPublicLinkPrediction(t *testing.T) {
	ds, err := lightne.GenerateDataset("livejournal-like", 2)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := lightne.SplitEdges(ds.Graph, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lightne.DefaultConfig(32)
	cfg.T = 5
	cfg.SampleMultiple = 2
	res, err := lightne.Embed(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	auc := lightne.AUC(res.Embedding, test, 20, 7)
	if auc < 0.7 {
		t.Fatalf("link-prediction AUC %.3f too low", auc)
	}
	rk := lightne.Ranking(res.Embedding, test, 100, []int{1, 10, 50}, 9)
	if rk.Hits[50] < rk.Hits[10] {
		t.Fatal("HITS@K not monotone")
	}
	if rk.MR < 1 {
		t.Fatalf("MR=%.2f below 1", rk.MR)
	}
}

func TestDatasetNamesComplete(t *testing.T) {
	names := lightne.DatasetNames()
	if len(names) != 9 {
		t.Fatalf("expected 9 dataset replicas (Table 3), got %d", len(names))
	}
}

func TestBaselinesThroughPublicAPI(t *testing.T) {
	ds, err := lightne.GenerateDataset("blogcatalog-like", 3)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := lightne.ProNE(ds.Graph, lightne.DefaultProNEConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Embedding.Cols != 8 {
		t.Fatal("ProNE dim wrong")
	}
	dw := lightne.DefaultDeepWalkConfig(8)
	dw.WalksPerNode = 1
	dw.WalkLength = 10
	x, err := lightne.DeepWalk(ds.Graph, dw)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != ds.Graph.NumVertices() {
		t.Fatal("DeepWalk rows wrong")
	}
	ln := lightne.DefaultLINEConfig(8)
	ln.Samples = 10000
	if _, err := lightne.LINE(ds.Graph, ln); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedGraphThroughPublicAPI(t *testing.T) {
	input := strings.NewReader("0 1 2.5\n1 2 1\n2 0\n")
	g, err := lightne.LoadWeightedGraph(input, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	if g.TotalWeight() != 2*(2.5+1+1) {
		t.Fatalf("TotalWeight=%g", g.TotalWeight())
	}
	cfg := lightne.DefaultConfig(4)
	cfg.T = 3
	res, err := lightne.Embed(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding.Rows != 3 {
		t.Fatal("bad shape")
	}
	// ProNE also accepts weighted graphs.
	if _, err := lightne.ProNE(g, lightne.DefaultProNEConfig(2)); err != nil {
		t.Fatal(err)
	}
}
