package lightne_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lightne"
	"lightne/internal/dense"
	"lightne/internal/serve"
)

// End-to-end replication: these tests exercise the whole stack — the root
// package's CRC-checked checkpoint codec as the wire format, the serve
// layer's leader endpoints and follower replicator, and real HTTP over
// loopback listeners.

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func fetchJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: decoding %q: %v", url, body, err)
	}
	return resp.StatusCode
}

// replicaDecode is the production follower codec.
func replicaDecode(r io.Reader, size int64) (serve.Index, error) {
	x, err := lightne.ReadCheckpointFrom(r, size)
	if err != nil {
		return nil, err
	}
	return serve.NewIndex(x, "float32")
}

// TestReplicationSmoke boots a leader and two followers on loopback,
// publishes two generations, kills the leader, and asserts both followers
// keep answering /v1/neighbors from their replicated snapshots while
// reporting degraded (stale) health. This is the scripted failover drill
// behind `make smoke-replication`.
func TestReplicationSmoke(t *testing.T) {
	// Leader: store + shipper behind a real loopback listener.
	leaderStore := serve.NewStore()
	shipper := serve.NewShipper()
	leaderTS := httptest.NewServer(serve.New(leaderStore, serve.WithShipper(shipper)).Handler())
	defer leaderTS.Close()

	publish := func(n, d int, seed uint64) {
		t.Helper()
		x := dense.NewMatrix(n, d)
		x.FillGaussian(seed)
		ix, err := serve.NewIndex(x, "float32")
		if err != nil {
			t.Fatal(err)
		}
		snap := leaderStore.Publish(ix, 0)
		payload, err := lightne.EncodeCheckpoint(x)
		if err != nil {
			t.Fatal(err)
		}
		shipper.Publish(serve.NewShipment(payload, snap.Version, n, d))
	}
	publish(60, 8, 1)

	// Two followers, each with its own store, replicator, and listener.
	type follower struct {
		store *serve.Store
		rep   *serve.Replicator
		ts    *httptest.Server
	}
	var followers []*follower
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() {
		cancel()
		wg.Wait()
	}()
	for i := 0; i < 2; i++ {
		store := serve.NewStore()
		rep, err := serve.NewReplicator(store, serve.ReplicaConfig{
			Leader:     leaderTS.URL,
			Decode:     replicaDecode,
			Poll:       3 * time.Millisecond,
			BackoffMax: 30 * time.Millisecond,
			StaleAfter: 40 * time.Millisecond,
			Logf:       t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = rep.Run(ctx)
		}()
		ts := httptest.NewServer(serve.New(store, serve.WithReplicator(rep)).Handler())
		defer ts.Close()
		followers = append(followers, &follower{store: store, rep: rep, ts: ts})
	}

	// Both followers sync generation 1 and flip ready.
	for i, fo := range followers {
		fo := fo
		waitUntil(t, fmt.Sprintf("follower %d generation 1", i), func() bool {
			return fo.rep.Status().Generation == 1
		})
		var ready struct {
			Status          string `json:"status"`
			SnapshotVersion uint64 `json:"snapshot_version"`
		}
		if code := fetchJSON(t, fo.ts.URL+"/readyz", &ready); code != http.StatusOK || ready.Status != "ready" {
			t.Fatalf("follower %d readyz: %d %+v", i, code, ready)
		}
	}

	// Second generation propagates to both.
	publish(80, 8, 2)
	for i, fo := range followers {
		fo := fo
		waitUntil(t, fmt.Sprintf("follower %d generation 2", i), func() bool {
			return fo.rep.Status().Generation == 2
		})
	}

	// Kill the leader.
	leaderTS.Close()

	for i, fo := range followers {
		fo := fo
		waitUntil(t, fmt.Sprintf("follower %d degraded", i), func() bool {
			return fo.rep.Status().State == "degraded"
		})
		// Reads still answer from the last good generation.
		var nr serve.NeighborsResponse
		if code := fetchJSON(t, fo.ts.URL+"/v1/neighbors?vertex=3&k=5", &nr); code != http.StatusOK {
			t.Fatalf("follower %d query after leader death: %d", i, code)
		}
		if len(nr.Neighbors) != 5 {
			t.Fatalf("follower %d returned %d neighbors, want 5", i, len(nr.Neighbors))
		}
		var h serve.HealthResponse
		if code := fetchJSON(t, fo.ts.URL+"/healthz", &h); code != http.StatusOK {
			t.Fatalf("follower %d healthz after leader death: %d", i, code)
		}
		if h.Status != "degraded (stale)" || h.ReplicaGeneration != 2 {
			t.Fatalf("follower %d health = %q gen %d, want degraded (stale) gen 2", i, h.Status, h.ReplicaGeneration)
		}
	}
}

// TestCheckpointRewriteRacingHotSwap runs the three actors of a live
// replica concurrently under the race detector: a publisher hot-swapping
// generations into the store and rewriting the checkpoint, and a
// warm-restart reader re-loading that checkpoint the whole time. Every
// generation fills the matrix with a single constant, so any torn read —
// a checkpoint mixing two generations, or a snapshot observed mid-swap —
// shows up as a matrix with unequal elements.
func TestCheckpointRewriteRacingHotSwap(t *testing.T) {
	const (
		rows, cols  = 32, 4
		generations = 60
	)
	path := filepath.Join(t.TempDir(), "replica.ckpt")
	store := serve.NewStore()

	constant := func(v float64) *dense.Matrix {
		x := dense.NewMatrix(rows, cols)
		for i := range x.Data {
			x.Data[i] = v
		}
		return x
	}

	var wg sync.WaitGroup
	writerDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		for g := 1; g <= generations; g++ {
			x := constant(float64(g))
			ix, err := serve.NewIndex(x, "float32")
			if err != nil {
				t.Error(err)
				return
			}
			store.Publish(ix, 0)
			if err := lightne.WriteCheckpoint(path, x); err != nil {
				t.Errorf("generation %d: %v", g, err)
				return
			}
		}
	}()

	checkUniform := func(label string, vals []float64) {
		v := vals[0]
		for i, e := range vals {
			if e != v {
				t.Errorf("%s torn: element %d = %g, element 0 = %g", label, i, e, v)
				return
			}
		}
		if v < 1 || v > generations || v != float64(int(v)) {
			t.Errorf("%s holds impossible generation value %g", label, v)
		}
	}

	// Warm-restart reader: re-load the checkpoint continuously; every load
	// must be a complete single generation (the CRC plus atomic rename
	// guarantee), which it then publishes into its own store like a
	// restarting follower would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		restart := serve.NewStore()
		for {
			select {
			case <-writerDone:
				return
			default:
			}
			x, err := lightne.ReadCheckpoint(path)
			if err != nil {
				if os.IsNotExist(err) {
					continue // before the first rename lands
				}
				t.Errorf("warm-restart read: %v", err)
				return
			}
			checkUniform("checkpoint", x.Data)
			ix, err := serve.NewIndex(x, "float32")
			if err != nil {
				t.Error(err)
				return
			}
			restart.Publish(ix, 0)
		}
	}()

	// Live reader: the snapshot observed between hot-swaps is always one
	// complete generation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-writerDone:
				return
			default:
			}
			snap := store.Snapshot()
			if snap == nil {
				continue
			}
			vec := snap.Index.Vector(7)
			vals := make([]float64, len(vec))
			for i, f := range vec {
				vals[i] = float64(f)
			}
			checkUniform("snapshot", vals)
		}
	}()

	wg.Wait()

	// The surviving checkpoint is the final generation, bit-complete.
	x, err := lightne.ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x.Data {
		if v != generations {
			t.Fatalf("final checkpoint element %d = %g, want %d", i, v, generations)
		}
	}
}
