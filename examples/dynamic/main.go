// Dynamic embedding workflow (the paper's §6 future-work setting, and its
// §1 motivation: Alibaba/LinkedIn graphs that must be re-embedded as edges
// stream in). The example holds back 30% of a community graph's edges,
// embeds the rest, then delivers the held-back edges in batches — sampling
// only each batch — and tracks classification quality and staleness after
// every batch, finishing with a full refresh.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"time"

	"lightne"
)

func main() {
	ds, err := lightne.GenerateDataset("friendster-small-like", 31)
	if err != nil {
		log.Fatal(err)
	}
	full, labels := ds.Graph, ds.Labels

	// Split edges: 70% initial, 30% streaming in 3 batches.
	var all []lightne.Edge
	for u := 0; u < full.NumVertices(); u++ {
		for _, v := range full.Neighbors(uint32(u), nil) {
			if uint32(u) < v {
				all = append(all, lightne.Edge{U: uint32(u), V: v})
			}
		}
	}
	cut := len(all) * 7 / 10
	initial, err := lightne.NewGraph(full.NumVertices(), all[:cut], lightne.DefaultGraphOptions())
	if err != nil {
		log.Fatal(err)
	}

	cfg := lightne.DefaultConfig(32)
	cfg.T = 5
	cfg.SampleMultiple = 3
	cfg.Seed = 7
	t0 := time.Now()
	emb, err := lightne.NewDynamicEmbedder(initial, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial graph: %d edges, full sampling pass %v\n",
		emb.NumEdges(), time.Since(t0).Round(time.Millisecond))

	report := func(stage string) {
		x, err := emb.Embed()
		if err != nil {
			log.Fatal(err)
		}
		cr, err := lightne.NodeClassification(x, labels.Of, labels.NumClasses,
			0.1, 3, lightne.DefaultTrainConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s edges=%-6d staleness=%.2f Micro-F1=%.2f%%\n",
			stage, emb.NumEdges(), emb.Staleness(), 100*cr.MicroF1)
	}
	report("after initial embed")

	stream := all[cut:]
	third := len(stream) / 3
	for i := 0; i < 3; i++ {
		lo, hi := i*third, (i+1)*third
		if i == 2 {
			hi = len(stream)
		}
		t0 = time.Now()
		if err := emb.AddEdges(stream[lo:hi]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: +%d edges sampled in %v\n",
			i+1, hi-lo, time.Since(t0).Round(time.Millisecond))
		report(fmt.Sprintf("after batch %d", i+1))
	}

	t0 = time.Now()
	if err := emb.Refresh(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full refresh in %v\n", time.Since(t0).Round(time.Millisecond))
	report("after refresh")
}
