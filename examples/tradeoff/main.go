// Efficiency-effectiveness trade-off (the paper's Figure 2): sweep
// LightNE's sample budget M from 0.1·Tm to 20·Tm and print the (time, F1)
// curve, demonstrating that a user can dial cost against quality — and that
// per-stage timings shift from SVD-bound to sampling-bound as M grows
// (Table 5's story).
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"time"

	"lightne"
)

func main() {
	ds, err := lightne.GenerateDataset("oag-like", 21)
	if err != nil {
		log.Fatal(err)
	}
	g, labels := ds.Graph, ds.Labels
	fmt.Printf("dataset %s: %d vertices, %d edges\n", ds.Name, g.NumVertices(), g.NumEdges()/2)
	fmt.Printf("%-8s %12s %12s %12s %12s %10s %10s\n",
		"M/Tm", "sparsifier", "rSVD", "propagation", "total", "Micro-F1", "Macro-F1")

	for _, mult := range []float64{0.1, 0.5, 1, 2, 5, 10, 20} {
		cfg := lightne.DefaultConfig(32)
		cfg.SampleMultiple = mult
		cfg.Seed = 23
		start := time.Now()
		res, err := lightne.Embed(g, cfg)
		if err != nil {
			log.Fatal(err)
		}
		total := time.Since(start)
		cr, err := lightne.NodeClassification(res.Embedding, labels.Of, labels.NumClasses,
			0.10, 5, lightne.DefaultTrainConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8g %12v %12v %12v %12v %9.2f%% %9.2f%%\n",
			mult,
			res.Timing.Sparsifier.Round(time.Millisecond),
			res.Timing.SVD.Round(time.Millisecond),
			res.Timing.Propagation.Round(time.Millisecond),
			total.Round(time.Millisecond),
			100*cr.MicroF1, 100*cr.MacroF1)
	}
}
