// Link prediction workflow (the paper's PBG comparison, §5.2.1): hold out a
// fraction of edges, embed the remaining graph with LightNE and with the
// LINE-SGD baseline (the algorithm inside PyTorch-BigGraph's LiveJournal
// configuration), and compare MR / MRR / HITS@10 and wall-clock time.
//
//	go run ./examples/linkprediction
package main

import (
	"fmt"
	"log"
	"time"

	"lightne"
)

func main() {
	ds, err := lightne.GenerateDataset("livejournal-like", 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d vertices, %d edges (paper scale: %d vertices, %d edges)\n",
		ds.Name, ds.Graph.NumVertices(), ds.Graph.NumEdges()/2, ds.PaperN, ds.PaperM)

	train, test, err := lightne.SplitEdges(ds.Graph, 0.005, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held out %d edges for evaluation\n", len(test))

	const dim = 64
	// LINE(2nd) with edge-sampling SGD — the PBG stand-in.
	lineCfg := lightne.DefaultLINEConfig(dim)
	lineCfg.Samples = 40 * train.NumEdges()
	lineCfg.Seed = 17
	t0 := time.Now()
	lineX, err := lightne.LINE(train, lineCfg)
	if err != nil {
		log.Fatal(err)
	}
	lineTime := time.Since(t0)

	// LightNE with the paper's LiveJournal configuration (T = 5).
	cfg := lightne.DefaultConfig(dim)
	cfg.T = 5
	cfg.SampleMultiple = 2
	cfg.Seed = 19
	t0 = time.Now()
	res, err := lightne.Embed(train, cfg)
	if err != nil {
		log.Fatal(err)
	}
	lightneTime := time.Since(t0)

	fmt.Printf("%-22s %10s %8s %8s %8s\n", "system", "time", "MR", "MRR", "HITS@10")
	for _, sys := range []struct {
		name string
		x    *lightne.Matrix
		t    time.Duration
	}{
		{"LINE-SGD (PBG-style)", lineX, lineTime},
		{"LightNE", res.Embedding, lightneTime},
	} {
		rank := lightne.Ranking(sys.x, test, 100, []int{10}, 23)
		fmt.Printf("%-22s %10v %8.2f %8.4f %8.4f\n",
			sys.name, sys.t.Round(time.Millisecond), rank.MR, rank.MRR, rank.Hits[10])
	}
}
