// Serving workflow (the paper's §1 motivation: embeddings "easily consumed
// in downstream machine learning and recommendation algorithms"): embed a
// community graph, quantize the embedding to int8 (8x smaller — the memory
// that matters when millions of vectors stay resident for queries), and
// compare top-k neighbor retrieval on the full-precision and quantized
// forms.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"

	"lightne"
)

func main() {
	ds, err := lightne.GenerateDataset("blogcatalog-like", 5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := lightne.DefaultConfig(32)
	cfg.SampleMultiple = 5
	cfg.Seed = 5
	res, err := lightne.Embed(ds.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}
	x := res.Embedding

	f32 := lightne.QuantizeFloat32(x)
	i8 := lightne.QuantizeInt8(x)
	raw := int64(len(x.Data) * 8)
	fmt.Printf("embedding storage: float64 %.1f KB, float32 %.1f KB (%.1fx), int8 %.1f KB (%.1fx)\n",
		float64(raw)/1e3,
		float64(f32.MemoryBytes())/1e3, float64(raw)/float64(f32.MemoryBytes()),
		float64(i8.MemoryBytes())/1e3, float64(raw)/float64(i8.MemoryBytes()))

	// Compare top-5 retrieval between exact and int8 for a few queries.
	const k = 5
	agree := 0
	total := 0
	for _, q := range []uint32{0, 100, 500, 1000, 1500} {
		exact, err := lightne.NearestNeighbors(x, q, k)
		if err != nil {
			log.Fatal(err)
		}
		approx, _, err := i8.TopK(int(q), k)
		if err != nil {
			log.Fatal(err)
		}
		exactSet := map[uint32]bool{}
		for _, nb := range exact {
			exactSet[nb.Vertex] = true
		}
		overlap := 0
		for _, v := range approx {
			if exactSet[uint32(v)] {
				overlap++
			}
		}
		agree += overlap
		total += k
		fmt.Printf("query %4d: top-%d overlap %d/%d (best exact neighbor %d, cosine %.3f)\n",
			q, k, overlap, k, exact[0].Vertex, exact[0].Cosine)
	}
	fmt.Printf("overall top-%d agreement between float64 and int8: %d/%d\n", k, agree, total)
}
