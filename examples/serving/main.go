// Serving workflow (the paper's §1 motivation: embeddings "easily consumed
// in downstream machine learning and recommendation algorithms"): embed a
// community graph, publish it to the serving subsystem, and exercise the
// real HTTP API end to end — neighbor queries, a hot snapshot swap fed by
// the dynamic-update layer, a closed-loop load run, and the metrics the
// server collected about all of it.
//
//	go run ./examples/serving
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"lightne"
	"lightne/internal/serve"
)

func main() {
	// 1. Train: embed a synthetic community graph.
	ds, err := lightne.GenerateDataset("blogcatalog-like", 5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := lightne.DefaultConfig(32)
	cfg.SampleMultiple = 5
	cfg.Seed = 5
	emb, err := lightne.NewDynamicEmbedder(ds.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Publish: quantize to float32 and install as snapshot v1. The
	// ingester bridges the dynamic embedder and the store.
	store := serve.NewStore()
	ing := serve.NewIngester(emb, store, serve.IngestConfig{MaxStaleness: 0.3})
	if err := ing.PublishNow(); err != nil {
		log.Fatal(err)
	}
	snap := store.Snapshot()
	fmt.Printf("published snapshot v%d: %d vertices x %d dims (%.1f MB float32 index)\n",
		snap.Version, snap.Index.Rows(), snap.Index.Dims(), float64(snap.Index.MemoryBytes())/1e6)

	// 3. Serve: real HTTP server on a loopback port.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(store)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	go func() { _ = ing.Run(ctx) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// 4. Query over HTTP, as a downstream recommender would.
	var nbrs serve.NeighborsResponse
	mustGet(base+"/v1/neighbors?vertex=100&k=5", &nbrs)
	fmt.Println("top-5 neighbors of vertex 100:")
	for _, nb := range nbrs.Neighbors {
		fmt.Printf("  vertex %4d  cosine %.3f\n", nb.Vertex, nb.Score)
	}

	// 5. Hot swap: stream an edge batch through the dynamic layer; the
	// refreshed embedding publishes atomically while queries continue.
	n := uint32(ds.Graph.NumVertices())
	batch := []lightne.Edge{{U: 100, V: n}, {U: n, V: 101}, {U: n, V: 102}}
	if err := ing.Submit(ctx, batch); err != nil {
		log.Fatal(err)
	}
	var health serve.HealthResponse
	for health.SnapshotVersion < 2 {
		mustGet(base+"/healthz", &health)
	}
	fmt.Printf("hot-swapped to snapshot v%d after edge batch (staleness %.3f, %d vertices)\n",
		health.SnapshotVersion, health.Staleness, health.Vertices)
	mustGet(base+fmt.Sprintf("/v1/neighbors?vertex=%d&k=3", n), &nbrs)
	fmt.Printf("new vertex %d's neighbors: ", n)
	for _, nb := range nbrs.Neighbors {
		fmt.Printf("%d ", nb.Vertex)
	}
	fmt.Println()

	// 6. Load: closed-loop throughput/latency measurement.
	rep, err := serve.RunLoad(ctx, base, serve.LoadConfig{
		Workers:  8,
		Requests: 2000,
		Vertices: int(n),
		K:        10,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("load run:", rep)

	// 7. Observability: what the server recorded about all of the above.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("server metrics:\n%s", metrics)

	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}

func mustGet(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatalf("decoding %s: %v", url, err)
	}
}
