// Quickstart: build a small graph in memory, embed it with LightNE, and
// inspect nearest neighbors in embedding space.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lightne"
)

func main() {
	// Two triangle communities bridged by a single edge:
	//   0-1-2 (triangle)   3-4-5 (triangle)   2-3 (bridge)
	arcs := []lightne.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3},
		{U: 2, V: 3},
	}
	g, err := lightne.NewGraph(6, arcs, lightne.DefaultGraphOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d undirected edges\n", g.NumVertices(), g.NumEdges()/2)

	cfg := lightne.DefaultConfig(4) // 4-dimensional embedding
	cfg.T = 3                       // short context window for a tiny graph
	cfg.Seed = 42
	res, err := lightne.Embed(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: sparsifier %v (nnz=%d), rSVD %v, propagation %v\n",
		res.Timing.Sparsifier.Round(1e6), res.SparsifierNNZ,
		res.Timing.SVD.Round(1e6), res.Timing.Propagation.Round(1e6))

	// Rank every other vertex by cosine similarity to vertex 0. Its triangle
	// partners (1, 2) should come first, the far triangle (4, 5) last.
	nbrs, err := lightne.NearestNeighbors(res.Embedding, 0, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("neighbors of vertex 0 by embedding similarity:")
	for _, nb := range nbrs {
		fmt.Printf("  vertex %d: cosine %.3f\n", nb.Vertex, nb.Cosine)
	}
}
