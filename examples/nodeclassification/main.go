// Node classification workflow (the paper's OAG / Friendster task): embed a
// multi-label community graph with LightNE, train one-vs-rest logistic
// regression on a labeled fraction, and report Micro/Macro-F1 across label
// ratios — comparing LightNE against the ProNE+ baseline, Figure-2-style.
//
//	go run ./examples/nodeclassification
package main

import (
	"fmt"
	"log"
	"time"

	"lightne"
)

func main() {
	ds, err := lightne.GenerateDataset("oag-like", 7)
	if err != nil {
		log.Fatal(err)
	}
	g, labels := ds.Graph, ds.Labels
	fmt.Printf("dataset %s: %d vertices, %d edges, %d classes (paper scale: %d vertices, %d edges)\n",
		ds.Name, g.NumVertices(), g.NumEdges()/2, labels.NumClasses, ds.PaperN, ds.PaperM)

	// LightNE with a mid-sized sample budget.
	cfg := lightne.DefaultConfig(32)
	cfg.SampleMultiple = 5
	cfg.Oversample, cfg.PowerIters = 8, 2 // sharpen the rank-32 sketch
	cfg.Seed = 7
	t0 := time.Now()
	res, err := lightne.Embed(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	lightneTime := time.Since(t0)

	// ProNE+ baseline on the same machine and kernels.
	t0 = time.Now()
	pcfg := lightne.DefaultProNEConfig(32)
	pcfg.Oversample, pcfg.PowerIters = 8, 2 // same solver settings as LightNE
	pres, err := lightne.ProNE(g, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	proneTime := time.Since(t0)

	fmt.Printf("%-10s %-10s %10s %10s\n", "system", "ratio", "Micro-F1", "Macro-F1")
	for _, ratio := range []float64{0.01, 0.05, 0.10, 0.30} {
		for _, sys := range []struct {
			name string
			x    *lightne.Matrix
		}{{"LightNE", res.Embedding}, {"ProNE+", pres.Embedding}} {
			cr, err := lightne.NodeClassification(sys.x, labels.Of, labels.NumClasses,
				ratio, 3, lightne.DefaultTrainConfig())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %9.0f%% %9.2f%% %9.2f%%\n",
				sys.name, 100*ratio, 100*cr.MicroF1, 100*cr.MacroF1)
		}
	}
	fmt.Printf("training time: LightNE %v, ProNE+ %v\n",
		lightneTime.Round(time.Millisecond), proneTime.Round(time.Millisecond))
}
