package lightne

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"lightne/internal/faultinject"
)

// Crash-safe snapshot checkpoints. A checkpoint is the last served
// embedding persisted in the CRC-trailed LNEB v3 framing, written with the
// classic atomic-replace protocol:
//
//	write <path>.tmp → fsync file → rename over <path> → fsync directory
//
// so the checkpoint path always holds either the previous complete
// checkpoint or the new complete checkpoint, never a torn write. A crash
// mid-write leaves at worst a partial <path>.tmp, which recovery ignores
// and the next successful write replaces. If the filesystem still manages
// to tear the final file (lost dir sync, disk corruption), the v3 CRC
// trailer catches it: ReadCheckpoint fails loudly and the caller falls
// back to a cold start instead of serving corrupt vectors.

// WriteCheckpoint atomically persists x to path in the LNEB v3 format.
func WriteCheckpoint(path string, x *Matrix) error {
	return WriteCheckpointHooked(path, x, nil)
}

// WriteCheckpointHooked is WriteCheckpoint with fault-injection hooks
// (faultinject.CheckpointData / CheckpointSync / CheckpointRename) for
// crash-recovery tests; nil hooks means no injection.
func WriteCheckpointHooked(path string, x *Matrix, h faultinject.Hooks) error {
	hooks := faultinject.OrNop(h)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lightne: creating checkpoint temp file: %w", err)
	}
	// An injected mid-write failure simulates a kill: return without
	// cleanup, leaving the torn temp file exactly as a crash would. The
	// final path is untouched either way.
	mid := func() error { return hooks.Fire(faultinject.CheckpointData) }
	if err := writeEmbeddingV3(f, x, mid); err != nil {
		f.Close()
		return fmt.Errorf("lightne: writing checkpoint %s: %w", tmp, err)
	}
	if err := hooks.Fire(faultinject.CheckpointSync); err != nil {
		f.Close()
		return fmt.Errorf("lightne: syncing checkpoint %s: %w", tmp, err)
	}
	return commitCheckpointHooked(f, tmp, path, hooks)
}

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint, verifying
// its CRC-32C trailer. It rejects embeddings in the older v1/v2 framings —
// a checkpoint without a checksum cannot distinguish a torn write from
// good data, which defeats its purpose; point artifact loading at those
// files instead (ReadEmbedding). The declared shape is bounded by the
// file's actual size before any allocation, so a checkpoint with an
// adversarial (or merely torn) header errors out instead of sizing memory.
func ReadCheckpoint(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	size := int64(-1)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	x, err := ReadCheckpointFrom(f, size)
	if err != nil {
		return nil, fmt.Errorf("lightne: checkpoint %s: %w", path, err)
	}
	return x, nil
}

// ReadCheckpointFrom reads one checkpoint from an arbitrary stream — the
// replication wire format is exactly the on-disk checkpoint format, so a
// follower decodes a shipped snapshot with the same CRC-verified path a
// warm restart uses. size, when >= 0, is the total stream length (an HTTP
// Content-Length, a stat'ed file) and bounds the rows×cols allocation a
// header may demand; size < 0 means unknown (incremental growth bound
// only). Like ReadCheckpoint it rejects the checksum-less v1/v2 framings.
func ReadCheckpointFrom(r io.Reader, size int64) (*Matrix, error) {
	x, version, err := readEmbeddingBinarySized(r, size)
	if err != nil {
		return nil, err
	}
	if version < 3 {
		return nil, fmt.Errorf("lightne: stream is format v%d, which has no checksum; checkpoints require v3 (rewrite it with WriteCheckpoint)", version)
	}
	return x, nil
}

// WriteCheckpointTo streams x in the checkpoint (LNEB v3, CRC-trailed)
// framing to w, without any of the atomic-replace file protocol — this is
// the serialization half a leader uses to ship snapshots over HTTP.
func WriteCheckpointTo(w io.Writer, x *Matrix) error {
	return writeEmbeddingV3(w, x, nil)
}

// EncodeCheckpoint serializes x to one in-memory checkpoint payload. A
// replication leader encodes each published generation once and then
// serves the same bytes to every follower.
func EncodeCheckpoint(x *Matrix) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(20 + 8*len(x.Data))
	if err := writeEmbeddingV3(&buf, x, nil); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ValidateCheckpointPayload cheaply verifies that payload is one complete
// LNEB v3 checkpoint: magic, version, a shape consistent with the payload
// length, and a matching CRC-32C trailer. It does not materialize the
// matrix — callers that need the data use ReadCheckpointFrom.
func ValidateCheckpointPayload(payload []byte) error {
	if len(payload) < 24 { // header + at least one element + trailer
		return fmt.Errorf("lightne: checkpoint payload of %d bytes is too short", len(payload))
	}
	if m := binary.LittleEndian.Uint32(payload[0:]); m != embMagic {
		return fmt.Errorf("lightne: checkpoint payload has bad magic %08x", m)
	}
	if v := binary.LittleEndian.Uint32(payload[4:]); v != embVersion {
		return fmt.Errorf("lightne: checkpoint payload is format v%d, want v%d", v, embVersion)
	}
	rows := int64(binary.LittleEndian.Uint32(payload[8:]))
	cols := int64(binary.LittleEndian.Uint32(payload[12:]))
	if rows <= 0 || cols <= 0 || cols > maxEmbedDims || rows > maxEmbedElements/max64(cols, 1) {
		return fmt.Errorf("lightne: checkpoint payload declares implausible shape %dx%d", rows, cols)
	}
	if want := 20 + 8*rows*cols; int64(len(payload)) != want {
		return fmt.Errorf("lightne: checkpoint payload is %d bytes, want %d for shape %dx%d", len(payload), want, rows, cols)
	}
	body := payload[:len(payload)-4]
	stored := binary.LittleEndian.Uint32(payload[len(payload)-4:])
	if sum := crc32.Checksum(body, crcTable); sum != stored {
		return fmt.Errorf("lightne: checkpoint payload checksum mismatch (stored %08x, computed %08x)", stored, sum)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// WriteCheckpointBytes atomically persists an already-encoded checkpoint
// payload (the bytes a follower just fetched and decoded) to path with the
// same temp-file + fsync + rename protocol as WriteCheckpoint, after
// validating the payload so a corrupt buffer can never become the recovery
// point.
func WriteCheckpointBytes(path string, payload []byte) error {
	if err := ValidateCheckpointPayload(payload); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lightne: creating checkpoint temp file: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return fmt.Errorf("lightne: writing checkpoint %s: %w", tmp, err)
	}
	return commitCheckpointHooked(f, tmp, path, faultinject.Nop)
}

// commitCheckpointHooked finishes the atomic-replace protocol for a fully
// written temp file: fsync file, rename over path, best-effort fsync of
// the directory. hooks fires CheckpointRename before the rename.
func commitCheckpointHooked(f *os.File, tmp, path string, hooks faultinject.Hooks) error {
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lightne: syncing checkpoint %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lightne: closing checkpoint %s: %w", tmp, err)
	}
	if err := hooks.Fire(faultinject.CheckpointRename); err != nil {
		return fmt.Errorf("lightne: publishing checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("lightne: publishing checkpoint %s: %w", path, err)
	}
	// Persist the rename itself. Best effort: some filesystems refuse
	// directory fsync, and the data file is already durable.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}
