package lightne

import (
	"fmt"
	"os"
	"path/filepath"

	"lightne/internal/faultinject"
)

// Crash-safe snapshot checkpoints. A checkpoint is the last served
// embedding persisted in the CRC-trailed LNEB v3 framing, written with the
// classic atomic-replace protocol:
//
//	write <path>.tmp → fsync file → rename over <path> → fsync directory
//
// so the checkpoint path always holds either the previous complete
// checkpoint or the new complete checkpoint, never a torn write. A crash
// mid-write leaves at worst a partial <path>.tmp, which recovery ignores
// and the next successful write replaces. If the filesystem still manages
// to tear the final file (lost dir sync, disk corruption), the v3 CRC
// trailer catches it: ReadCheckpoint fails loudly and the caller falls
// back to a cold start instead of serving corrupt vectors.

// WriteCheckpoint atomically persists x to path in the LNEB v3 format.
func WriteCheckpoint(path string, x *Matrix) error {
	return WriteCheckpointHooked(path, x, nil)
}

// WriteCheckpointHooked is WriteCheckpoint with fault-injection hooks
// (faultinject.CheckpointData / CheckpointSync / CheckpointRename) for
// crash-recovery tests; nil hooks means no injection.
func WriteCheckpointHooked(path string, x *Matrix, h faultinject.Hooks) error {
	hooks := faultinject.OrNop(h)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("lightne: creating checkpoint temp file: %w", err)
	}
	// An injected mid-write failure simulates a kill: return without
	// cleanup, leaving the torn temp file exactly as a crash would. The
	// final path is untouched either way.
	mid := func() error { return hooks.Fire(faultinject.CheckpointData) }
	if err := writeEmbeddingV3(f, x, mid); err != nil {
		f.Close()
		return fmt.Errorf("lightne: writing checkpoint %s: %w", tmp, err)
	}
	if err := hooks.Fire(faultinject.CheckpointSync); err != nil {
		f.Close()
		return fmt.Errorf("lightne: syncing checkpoint %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lightne: syncing checkpoint %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lightne: closing checkpoint %s: %w", tmp, err)
	}
	if err := hooks.Fire(faultinject.CheckpointRename); err != nil {
		return fmt.Errorf("lightne: publishing checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("lightne: publishing checkpoint %s: %w", path, err)
	}
	// Persist the rename itself. Best effort: some filesystems refuse
	// directory fsync, and the data file is already durable.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// ReadCheckpoint loads a checkpoint written by WriteCheckpoint, verifying
// its CRC-32C trailer. It rejects embeddings in the older v1/v2 framings —
// a checkpoint without a checksum cannot distinguish a torn write from
// good data, which defeats its purpose; point artifact loading at those
// files instead (ReadEmbedding).
func ReadCheckpoint(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	x, version, err := readEmbeddingBinary(f)
	if err != nil {
		return nil, fmt.Errorf("lightne: checkpoint %s: %w", path, err)
	}
	if version < 3 {
		return nil, fmt.Errorf("lightne: checkpoint %s is format v%d, which has no checksum; checkpoints require v3 (rewrite it with WriteCheckpoint)", path, version)
	}
	return x, nil
}
