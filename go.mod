module lightne

go 1.22
