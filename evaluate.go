package lightne

import (
	"io"

	"lightne/internal/eval"
	"lightne/internal/gen"
	"lightne/internal/graph"
)

// Evaluation re-exports: the paper's downstream protocols (§5.1).

// TrainConfig controls the one-vs-rest logistic regression used for node
// classification.
type TrainConfig = eval.TrainConfig

// ClassificationResult reports Micro/Macro-F1 and split sizes.
type ClassificationResult = eval.ClassificationResult

// RankingResult reports MR, MRR and HITS@K for link prediction.
type RankingResult = eval.RankingResult

// DefaultTrainConfig returns the logistic-regression defaults.
func DefaultTrainConfig() TrainConfig { return eval.DefaultTrain() }

// NodeClassification evaluates an embedding on multi-label node
// classification: it trains one-vs-rest logistic regression on a trainRatio
// fraction of the labeled vertices and reports Micro/Macro-F1 on the rest
// using the top-k prediction rule.
func NodeClassification(x *Matrix, labels [][]int, numClasses int, trainRatio float64, seed uint64, cfg TrainConfig) (ClassificationResult, error) {
	return eval.NodeClassification(x, labels, numClasses, trainRatio, seed, cfg)
}

// SplitEdges removes a random testFrac of undirected edges for link
// prediction, returning the training graph and held-out edges.
func SplitEdges(g *Graph, testFrac float64, seed uint64) (*Graph, []Edge, error) {
	return eval.SplitEdges(g, testFrac, seed)
}

// AUC estimates link-prediction ROC-AUC of embedding x on held-out edges.
func AUC(x *Matrix, test []Edge, negatives int, seed uint64) float64 {
	return eval.AUC(x, test, negatives, seed)
}

// Ranking computes PBG-style filtered ranking metrics (MR, MRR, HITS@K).
func Ranking(x *Matrix, test []Edge, negatives int, ks []int, seed uint64) RankingResult {
	return eval.Ranking(x, test, negatives, ks, seed)
}

// Dataset generators: deterministic synthetic replicas of the paper's nine
// evaluation graphs (see DESIGN.md for the substitution rationale).

// Labels is a multi-label assignment over vertices.
type Labels = gen.Labels

// Dataset is a named synthetic replica with optional planted labels.
type Dataset = gen.Dataset

// GenerateDataset builds the named replica ("blogcatalog-like",
// "oag-like", …); DatasetNames lists the options.
func GenerateDataset(name string, seed uint64) (*Dataset, error) {
	return gen.ByName(name, seed)
}

// DatasetNames lists every synthetic replica name.
func DatasetNames() []string { return gen.AllNames() }

// Neighbor is one nearest-neighbor query result.
type Neighbor = eval.Neighbor

// NearestNeighbors returns the k vertices most cosine-similar to v in
// embedding x — the recommendation-style query embeddings serve downstream.
func NearestNeighbors(x *Matrix, v, k int) ([]Neighbor, error) {
	return eval.NearestNeighbors(x, v, k)
}

// ProcrustesDistance compares two embeddings of the same vertex set up to
// orthogonal rotation (SVD embeddings are only defined modulo one):
// 0 = identical, values near sqrt(2) = unrelated.
func ProcrustesDistance(a, b *Matrix) (float64, error) {
	return eval.ProcrustesDistance(a, b)
}

// ExactRanking ranks each held-out edge against every vertex (filtered),
// giving exact MR/MRR/HITS@K at O(n·d) per edge — feasible for small
// graphs and useful for validating the sampled Ranking.
func ExactRanking(x *Matrix, test []Edge, ks []int) RankingResult {
	return eval.ExactRanking(x, test, ks, nil)
}

// LoadGraphParallel parses an edge list with data-parallel chunked parsing
// (same semantics as LoadGraph, faster on multi-core machines).
func LoadGraphParallel(r io.Reader, n int) (*Graph, error) {
	return graph.LoadEdgeListParallel(r, n, graph.DefaultOptions())
}
