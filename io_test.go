package lightne_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"lightne"
	"lightne/internal/dense"
)

func TestEmbeddingTextRoundtrip(t *testing.T) {
	x := dense.NewMatrix(7, 3)
	x.FillGaussian(5)
	var buf bytes.Buffer
	if err := lightne.WriteEmbeddingText(&buf, x); err != nil {
		t.Fatal(err)
	}
	y, err := lightne.ReadEmbeddingText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows != 7 || y.Cols != 3 {
		t.Fatalf("shape %dx%d", y.Rows, y.Cols)
	}
	for i := range x.Data {
		// Text format rounds to 6 significant digits.
		if math.Abs(x.Data[i]-y.Data[i]) > 1e-5*math.Max(1, math.Abs(x.Data[i])) {
			t.Fatalf("index %d: %g vs %g", i, x.Data[i], y.Data[i])
		}
	}
}

func TestEmbeddingBinaryRoundtripExact(t *testing.T) {
	x := dense.NewMatrix(13, 5)
	x.FillGaussian(9)
	x.Set(0, 0, math.Inf(1)) // binary must preserve special values
	x.Set(1, 1, -0.0)
	var buf bytes.Buffer
	if err := lightne.WriteEmbeddingBinary(&buf, x); err != nil {
		t.Fatal(err)
	}
	y, err := lightne.ReadEmbeddingBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows != x.Rows || y.Cols != x.Cols {
		t.Fatalf("shape %dx%d", y.Rows, y.Cols)
	}
	for i := range x.Data {
		if math.Float64bits(x.Data[i]) != math.Float64bits(y.Data[i]) {
			t.Fatalf("index %d not bit-exact", i)
		}
	}
}

func TestEmbeddingBinaryLegacyV1(t *testing.T) {
	// Hand-craft a version-less v1 file ("LNE1": magic, rows, cols, data)
	// as the seed releases wrote them; it must still read.
	var buf bytes.Buffer
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], 0x314e454c)
	binary.LittleEndian.PutUint32(hdr[4:], 2)
	binary.LittleEndian.PutUint32(hdr[8:], 3)
	buf.Write(hdr[:])
	want := []float64{1, 2, 3, 4, 5, 6}
	var w [8]byte
	for _, v := range want {
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		buf.Write(w[:])
	}
	x, err := lightne.ReadEmbeddingBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 2 || x.Cols != 3 {
		t.Fatalf("shape %dx%d", x.Rows, x.Cols)
	}
	for i, v := range want {
		if x.Data[i] != v {
			t.Fatalf("index %d: %g", i, x.Data[i])
		}
	}
}

// TestEmbeddingBinaryLegacyV2 hand-crafts a v2 file (versioned header, no
// CRC trailer) as pre-v3 releases wrote them; it must read back
// byte-identically.
func TestEmbeddingBinaryLegacyV2(t *testing.T) {
	var buf bytes.Buffer
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], 0x42454e4c) // "LNEB"
	binary.LittleEndian.PutUint32(hdr[4:], 2)
	binary.LittleEndian.PutUint32(hdr[8:], 2)
	binary.LittleEndian.PutUint32(hdr[12:], 3)
	buf.Write(hdr[:])
	want := []float64{1.5, -2.25, math.Inf(1), 4, 5e-300, -0.0}
	var w [8]byte
	for _, v := range want {
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		buf.Write(w[:])
	}
	for name, read := range map[string]func() (*lightne.Matrix, error){
		"binary": func() (*lightne.Matrix, error) {
			return lightne.ReadEmbeddingBinary(bytes.NewReader(buf.Bytes()))
		},
		"autodetect": func() (*lightne.Matrix, error) {
			return lightne.ReadEmbedding(bytes.NewReader(buf.Bytes()))
		},
	} {
		x, err := read()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if x.Rows != 2 || x.Cols != 3 {
			t.Fatalf("%s: shape %dx%d", name, x.Rows, x.Cols)
		}
		for i, v := range want {
			if math.Float64bits(x.Data[i]) != math.Float64bits(v) {
				t.Fatalf("%s: index %d not bit-identical", name, i)
			}
		}
	}
}

// TestEmbeddingBinaryV3ChecksumDetectsCorruption flips one data bit of a
// current-format file and expects a checksum error rather than silent
// acceptance.
func TestEmbeddingBinaryV3ChecksumDetectsCorruption(t *testing.T) {
	x := dense.NewMatrix(6, 4)
	x.FillGaussian(33)
	var buf bytes.Buffer
	if err := lightne.WriteEmbeddingBinary(&buf, x); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[20] ^= 0x01 // first data element
	_, err := lightne.ReadEmbeddingBinary(bytes.NewReader(b))
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("want checksum error, got %v", err)
	}
}

// TestEmbeddingBinaryHostileHeaders: implausible shapes are rejected
// before any allocation and short reads carry byte-offset context.
func TestEmbeddingBinaryHostileHeaders(t *testing.T) {
	mkHeader := func(rows, cols uint32) []byte {
		var hdr [16]byte
		binary.LittleEndian.PutUint32(hdr[0:], 0x42454e4c)
		binary.LittleEndian.PutUint32(hdr[4:], 3)
		binary.LittleEndian.PutUint32(hdr[8:], rows)
		binary.LittleEndian.PutUint32(hdr[12:], cols)
		return hdr[:]
	}
	cases := []struct {
		name       string
		rows, cols uint32
		wantSub    string
	}{
		{"huge dims", 2, 1 << 21, "implausible embedding dimension"},
		{"element overflow", 1 << 20, 1 << 13, "more than"},
		{"rows at uint32 max", 1<<32 - 1, 1, "more than"},
	}
	for _, tc := range cases {
		_, err := lightne.ReadEmbeddingBinary(bytes.NewReader(mkHeader(tc.rows, tc.cols)))
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: want %q error, got %v", tc.name, tc.wantSub, err)
		}
	}
	// Truncation mid-data names the element and byte offset.
	payload := append(mkHeader(4, 2), make([]byte, 3*8)...)
	_, err := lightne.ReadEmbeddingBinary(bytes.NewReader(payload))
	if err == nil || !strings.Contains(err.Error(), "element 3 of 8") || !strings.Contains(err.Error(), "byte offset 40") {
		t.Fatalf("want element/offset context, got %v", err)
	}
	// A v3 file missing only its trailer is reported as such.
	x := dense.NewMatrix(2, 2)
	var buf bytes.Buffer
	if err := lightne.WriteEmbeddingBinary(&buf, x); err != nil {
		t.Fatal(err)
	}
	_, err = lightne.ReadEmbeddingBinary(bytes.NewReader(buf.Bytes()[:buf.Len()-4]))
	if err == nil || !strings.Contains(err.Error(), "checksum trailer") {
		t.Fatalf("want trailer error, got %v", err)
	}
}

func TestEmbeddingBinaryUnsupportedVersion(t *testing.T) {
	var buf bytes.Buffer
	x := dense.NewMatrix(2, 2)
	if err := lightne.WriteEmbeddingBinary(&buf, x); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	binary.LittleEndian.PutUint32(b[4:], 99) // future version
	_, err := lightne.ReadEmbeddingBinary(bytes.NewReader(b))
	if err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("want unsupported-version error, got %v", err)
	}
}

func TestReadEmbeddingAutoDetect(t *testing.T) {
	x := dense.NewMatrix(4, 3)
	x.FillGaussian(21)
	var bin, txt bytes.Buffer
	if err := lightne.WriteEmbeddingBinary(&bin, x); err != nil {
		t.Fatal(err)
	}
	if err := lightne.WriteEmbeddingText(&txt, x); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"binary": &bin, "text": &txt} {
		y, err := lightne.ReadEmbedding(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if y.Rows != 4 || y.Cols != 3 {
			t.Fatalf("%s: shape %dx%d", name, y.Rows, y.Cols)
		}
	}
	if _, err := lightne.ReadEmbedding(strings.NewReader("not numbers\n")); err == nil {
		t.Fatal("expected error for unparseable input")
	}
	_, err := lightne.ReadEmbedding(bytes.NewReader([]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3}))
	if err == nil || !strings.Contains(err.Error(), "not a LightNE embedding file") {
		t.Fatalf("binary garbage: want bad-magic rejection, got %v", err)
	}
}

func TestReadEmbeddingErrors(t *testing.T) {
	if _, err := lightne.ReadEmbeddingText(strings.NewReader("")); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := lightne.ReadEmbeddingText(strings.NewReader("1 2\n3\n")); err == nil {
		t.Fatal("expected ragged-row error")
	}
	if _, err := lightne.ReadEmbeddingText(strings.NewReader("1 x\n")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := lightne.ReadEmbeddingBinary(strings.NewReader("garbage")); err == nil {
		t.Fatal("expected bad-magic error")
	}
	var buf bytes.Buffer
	x := dense.NewMatrix(2, 2)
	if err := lightne.WriteEmbeddingBinary(&buf, x); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := lightne.ReadEmbeddingBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestDynamicThroughPublicAPI(t *testing.T) {
	arcs := []lightne.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3}}
	g, err := lightne.NewGraph(6, arcs, lightne.DefaultGraphOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := lightne.DefaultConfig(4)
	cfg.T = 3
	emb, err := lightne.NewDynamicEmbedder(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.AddEdges([]lightne.Edge{{U: 0, V: 5}}); err != nil {
		t.Fatal(err)
	}
	x, err := emb.Embed()
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 6 || x.Cols != 4 {
		t.Fatalf("shape %dx%d", x.Rows, x.Cols)
	}
}
