package lightne_test

import (
	"testing"

	"lightne"
)

func TestCrossValidateT(t *testing.T) {
	ds, err := lightne.GenerateDataset("blogcatalog-like", 7)
	if err != nil {
		t.Fatal(err)
	}
	base := lightne.SmallConfig(16)
	base.Seed = 3
	bestT, scores, err := lightne.CrossValidateT(ds.Graph, ds.Labels.Of, ds.Labels.NumClasses,
		base, []int{1, 5, 10}, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores for %d candidates, want 3", len(scores))
	}
	if _, ok := scores[bestT]; !ok {
		t.Fatalf("best T=%d not among candidates", bestT)
	}
	for tt, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("T=%d score %g out of range", tt, s)
		}
		if s > scores[bestT] {
			t.Fatalf("T=%d scores %g above reported best %g", tt, s, scores[bestT])
		}
	}
}

func TestCrossValidateTErrors(t *testing.T) {
	ds, err := lightne.GenerateDataset("blogcatalog-like", 7)
	if err != nil {
		t.Fatal(err)
	}
	base := lightne.SmallConfig(8)
	if _, _, err := lightne.CrossValidateT(ds.Graph, ds.Labels.Of, ds.Labels.NumClasses, base, nil, 0.3, 1); err == nil {
		t.Fatal("expected empty-candidates error")
	}
	if _, _, err := lightne.CrossValidateT(ds.Graph, ds.Labels.Of, ds.Labels.NumClasses, base, []int{0}, 0.3, 1); err == nil {
		t.Fatal("expected non-positive T error")
	}
}

func TestCrossValidateLinkT(t *testing.T) {
	ds, err := lightne.GenerateDataset("livejournal-like", 3)
	if err != nil {
		t.Fatal(err)
	}
	base := lightne.SmallConfig(16)
	base.Seed = 5
	bestT, scores, err := lightne.CrossValidateLinkT(ds.Graph, base, []int{1, 5}, 0.01, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("scores=%v", scores)
	}
	if scores[bestT] < scores[1] && scores[bestT] < scores[5] {
		t.Fatal("best score not maximal")
	}
}
