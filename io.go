package lightne

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"lightne/internal/dense"
)

// Embedding persistence. Two formats are supported:
//
//   - text: one whitespace-separated row per vertex (interchange with
//     numpy.loadtxt, gensim, etc.)
//   - binary: a little-endian header (magic, rows, cols) followed by
//     float64 data — ~3x smaller and ~20x faster than text for large
//     embeddings.

// embMagic identifies the binary embedding format ("LNE1").
const embMagic = 0x314e454c

// WriteEmbeddingText writes the matrix as one row of "%.6g" values per line.
func WriteEmbeddingText(w io.Writer, x *Matrix) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%.6g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEmbeddingText parses a text embedding (rows of equal-length
// whitespace-separated floats).
func ReadEmbeddingText(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var data []float64
	cols := -1
	rows := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("lightne: row %d has %d columns, want %d", rows, len(fields), cols)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("lightne: row %d: %v", rows, err)
			}
			data = append(data, v)
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rows == 0 {
		return nil, fmt.Errorf("lightne: empty embedding")
	}
	return dense.FromSlice(rows, cols, data), nil
}

// WriteEmbeddingBinary writes the matrix in the LNE1 binary format.
func WriteEmbeddingBinary(w io.Writer, x *Matrix) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], embMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(x.Rows))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(x.Cols))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range x.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEmbeddingBinary reads an LNE1 binary embedding.
func ReadEmbeddingBinary(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("lightne: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != embMagic {
		return nil, fmt.Errorf("lightne: not an LNE1 embedding file")
	}
	rows := int(binary.LittleEndian.Uint32(hdr[4:]))
	cols := int(binary.LittleEndian.Uint32(hdr[8:]))
	if rows < 0 || cols < 0 || (cols != 0 && rows > (1<<31)/cols) {
		return nil, fmt.Errorf("lightne: implausible embedding shape %dx%d", rows, cols)
	}
	// Grow with the data actually present so a corrupt header cannot force
	// a huge allocation.
	total := rows * cols
	capHint := total
	if capHint > 1<<18 {
		capHint = 1 << 18
	}
	data := make([]float64, 0, capHint)
	var buf [8]byte
	for i := 0; i < total; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("lightne: truncated embedding data: %w", err)
		}
		data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
	}
	return dense.FromSlice(rows, cols, data), nil
}
