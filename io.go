package lightne

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strconv"
	"strings"

	"lightne/internal/dense"
)

// Embedding persistence. Two formats are supported:
//
//   - text: one whitespace-separated row per vertex (interchange with
//     numpy.loadtxt, gensim, etc.)
//   - binary: a little-endian header (magic, version, rows, cols) followed
//     by float64 data — ~3x smaller and ~20x faster than text for large
//     embeddings.
//
// Binary format history:
//
//	v1 ("LNE1"): magic, rows, cols — written by seed releases; no version
//	             field, so the format could never evolve. Still readable.
//	v2 ("LNEB"): magic, version, rows, cols. The explicit version lets
//	             readers (notably lightne-serve, which must reject corrupt
//	             or foreign artifacts with a clear error) distinguish
//	             "not an embedding" from "newer format". Still readable.
//	v3 ("LNEB"): v2 framing plus a CRC-32C (Castagnoli) trailer over
//	             everything before it — current. The checksum is what makes
//	             crash-safe checkpoints possible: a file torn by a kill
//	             mid-write is detected on read instead of served. Writing
//	             is done by WriteEmbeddingBinary (plain streams) and
//	             WriteCheckpoint (atomic temp-file + fsync + rename).

// embMagicV1 identifies the original version-less binary format ("LNE1").
const embMagicV1 = 0x314e454c

// embMagic identifies the versioned binary embedding format ("LNEB").
const embMagic = 0x42454e4c

// embVersion is the format version WriteEmbeddingBinary emits.
const embVersion = 3

// maxEmbedDims bounds the column count a binary header may declare
// (embedding dimensions beyond this are implausible — the paper's runs top
// out at a few hundred — and a hostile header must not size allocations).
const maxEmbedDims = 1 << 20

// maxEmbedElements bounds rows*cols from a binary header.
const maxEmbedElements = 1 << 31

// crcTable is the Castagnoli polynomial table shared by the v3 writer and
// reader (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WriteEmbeddingText writes the matrix as one row of "%.6g" values per line.
func WriteEmbeddingText(w io.Writer, x *Matrix) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%.6g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEmbeddingText parses a text embedding (rows of equal-length
// whitespace-separated floats).
func ReadEmbeddingText(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var data []float64
	cols := -1
	rows := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("lightne: row %d has %d columns, want %d", rows, len(fields), cols)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("lightne: row %d: %v", rows, err)
			}
			data = append(data, v)
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rows == 0 {
		return nil, fmt.Errorf("lightne: empty embedding")
	}
	return dense.FromSlice(rows, cols, data), nil
}

// writeEmbeddingV3 streams the matrix in the v3 framing (header, data,
// CRC-32C trailer) to w. mid, when non-nil, runs after roughly half the
// data has been written and flushed — the fault-injection seam the
// checkpoint writer uses to simulate a kill mid-write; its error aborts
// the write, leaving a torn prefix with no trailer behind.
func writeEmbeddingV3(w io.Writer, x *Matrix, mid func() error) error {
	bw := bufio.NewWriter(w)
	crc := crc32.New(crcTable)
	out := io.MultiWriter(bw, crc)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], embMagic)
	binary.LittleEndian.PutUint32(hdr[4:], embVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(x.Rows))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(x.Cols))
	if _, err := out.Write(hdr[:]); err != nil {
		return err
	}
	half := len(x.Data) / 2
	var buf [8]byte
	for i, v := range x.Data {
		if i == half && mid != nil {
			if err := bw.Flush(); err != nil {
				return err
			}
			if err := mid(); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := out.Write(buf[:]); err != nil {
			return err
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := bw.Write(trailer[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteEmbeddingBinary writes the matrix in the current (v3, CRC-trailed)
// binary format.
func WriteEmbeddingBinary(w io.Writer, x *Matrix) error {
	return writeEmbeddingV3(w, x, nil)
}

// ReadEmbeddingBinary reads a binary embedding, accepting the current
// CRC-trailed v3 format, the trailer-less v2, and the version-less v1
// files written by seed releases.
func ReadEmbeddingBinary(r io.Reader) (*Matrix, error) {
	x, _, err := readEmbeddingBinary(r)
	return x, err
}

// readEmbeddingBinary parses any supported binary framing and reports the
// version it found (1, 2, or 3).
func readEmbeddingBinary(r io.Reader) (*Matrix, int, error) {
	return readEmbeddingBinarySized(r, -1)
}

// readEmbeddingBinarySized is readEmbeddingBinary with a known input size:
// remaining, when >= 0, is the total byte length of the stream behind r
// (a stat'ed file, an HTTP Content-Length), and the declared rows×cols is
// rejected before any allocation when the payload it implies cannot fit in
// that many bytes — an adversarial header never sizes memory. remaining < 0
// means the size is unknown and only the incremental-growth bound applies.
func readEmbeddingBinarySized(r io.Reader, remaining int64) (*Matrix, int, error) {
	br := bufio.NewReader(r)
	crc := crc32.New(crcTable)
	offset := int64(0)
	// read pulls exactly len(buf) bytes, feeding the running checksum and
	// tracking the byte offset for error context.
	read := func(buf []byte, what string) error {
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("lightne: reading %s at byte offset %d: %w", what, offset, err)
		}
		crc.Write(buf)
		offset += int64(len(buf))
		return nil
	}
	version := 1
	var word [4]byte
	if err := read(word[:], "header"); err != nil {
		return nil, 0, err
	}
	switch binary.LittleEndian.Uint32(word[:]) {
	case embMagic:
		if err := read(word[:], "version"); err != nil {
			return nil, 0, err
		}
		v := binary.LittleEndian.Uint32(word[:])
		if v != 2 && v != embVersion {
			return nil, 0, fmt.Errorf("lightne: unsupported embedding format version %d (this build reads versions 1-%d; written by a newer tool?)", v, embVersion)
		}
		version = int(v)
	case embMagicV1:
		// Legacy header: rows and cols follow the magic directly.
	default:
		return nil, 0, fmt.Errorf("lightne: not a LightNE embedding file (bad magic %q)", word[:])
	}
	var shape [8]byte
	if err := read(shape[:], "shape"); err != nil {
		return nil, 0, err
	}
	// Validate the declared shape before any allocation: a truncated or
	// hostile header must not size memory.
	rows := int(binary.LittleEndian.Uint32(shape[0:]))
	cols := int(binary.LittleEndian.Uint32(shape[4:]))
	switch {
	case rows <= 0 || cols <= 0:
		return nil, 0, fmt.Errorf("lightne: implausible embedding shape %dx%d", rows, cols)
	case cols > maxEmbedDims:
		return nil, 0, fmt.Errorf("lightne: implausible embedding dimension %d (limit %d)", cols, maxEmbedDims)
	case rows > maxEmbedElements/cols:
		return nil, 0, fmt.Errorf("lightne: implausible embedding shape %dx%d (more than %d elements)", rows, cols, maxEmbedElements)
	}
	// Grow with the data actually present so a corrupt header cannot force
	// a huge allocation.
	total := rows * cols
	if remaining >= 0 {
		need := offset + int64(total)*8
		if version >= 3 {
			need += 4 // CRC trailer
		}
		if need > remaining {
			return nil, 0, fmt.Errorf("lightne: embedding declares shape %dx%d (%d bytes) but input holds only %d bytes: truncated or hostile header", rows, cols, need, remaining)
		}
	}
	capHint := total
	if capHint > 1<<18 {
		capHint = 1 << 18
	}
	data := make([]float64, 0, capHint)
	var buf [8]byte
	for i := 0; i < total; i++ {
		if err := read(buf[:], fmt.Sprintf("element %d of %d", i, total)); err != nil {
			return nil, 0, err
		}
		data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
	}
	if version >= 3 {
		sum := crc.Sum32()
		var trailer [4]byte
		if _, err := io.ReadFull(br, trailer[:]); err != nil {
			return nil, 0, fmt.Errorf("lightne: reading checksum trailer at byte offset %d: %w", offset, err)
		}
		if got := binary.LittleEndian.Uint32(trailer[:]); got != sum {
			return nil, 0, fmt.Errorf("lightne: embedding checksum mismatch (stored %08x, computed %08x): file corrupt or torn by an interrupted write", got, sum)
		}
	}
	return dense.FromSlice(rows, cols, data), version, nil
}

// ReadEmbedding loads an embedding in either supported format, sniffing the
// binary magic (any version) and falling back to the text parser. This is
// what the CLI tools use so an artifact written by `lightne` (text or
// -binary) loads everywhere without format flags.
func ReadEmbedding(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && len(head) == 4 {
		switch binary.LittleEndian.Uint32(head) {
		case embMagic, embMagicV1:
			return ReadEmbeddingBinary(br)
		}
		for _, b := range head {
			if b != '\t' && b != '\n' && b != '\r' && (b < ' ' || b > '~') {
				return nil, fmt.Errorf("lightne: not a LightNE embedding file (binary data with bad magic %q)", head)
			}
		}
	}
	return ReadEmbeddingText(br)
}
