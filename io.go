package lightne

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"lightne/internal/dense"
)

// Embedding persistence. Two formats are supported:
//
//   - text: one whitespace-separated row per vertex (interchange with
//     numpy.loadtxt, gensim, etc.)
//   - binary: a little-endian header (magic, version, rows, cols) followed
//     by float64 data — ~3x smaller and ~20x faster than text for large
//     embeddings.
//
// Binary format history:
//
//	v1 ("LNE1"): magic, rows, cols — written by seed releases; no version
//	             field, so the format could never evolve. Still readable.
//	v2 ("LNEB"): magic, version, rows, cols — current. The explicit
//	             version lets readers (notably lightne-serve, which must
//	             reject corrupt or foreign artifacts with a clear error)
//	             distinguish "not an embedding" from "newer format".

// embMagicV1 identifies the original version-less binary format ("LNE1").
const embMagicV1 = 0x314e454c

// embMagic identifies the versioned binary embedding format ("LNEB").
const embMagic = 0x42454e4c

// embVersion is the format version WriteEmbeddingBinary emits.
const embVersion = 2

// WriteEmbeddingText writes the matrix as one row of "%.6g" values per line.
func WriteEmbeddingText(w io.Writer, x *Matrix) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%.6g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEmbeddingText parses a text embedding (rows of equal-length
// whitespace-separated floats).
func ReadEmbeddingText(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var data []float64
	cols := -1
	rows := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if cols == -1 {
			cols = len(fields)
		} else if len(fields) != cols {
			return nil, fmt.Errorf("lightne: row %d has %d columns, want %d", rows, len(fields), cols)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("lightne: row %d: %v", rows, err)
			}
			data = append(data, v)
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rows == 0 {
		return nil, fmt.Errorf("lightne: empty embedding")
	}
	return dense.FromSlice(rows, cols, data), nil
}

// WriteEmbeddingBinary writes the matrix in the current (v2) binary format.
func WriteEmbeddingBinary(w io.Writer, x *Matrix) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], embMagic)
	binary.LittleEndian.PutUint32(hdr[4:], embVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(x.Rows))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(x.Cols))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range x.Data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEmbeddingBinary reads a binary embedding, accepting the current
// versioned format and the version-less v1 files written by seed releases.
func ReadEmbeddingBinary(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var word [4]byte
	if _, err := io.ReadFull(br, word[:]); err != nil {
		return nil, fmt.Errorf("lightne: reading header: %w", err)
	}
	switch binary.LittleEndian.Uint32(word[:]) {
	case embMagic:
		if _, err := io.ReadFull(br, word[:]); err != nil {
			return nil, fmt.Errorf("lightne: reading version: %w", err)
		}
		if v := binary.LittleEndian.Uint32(word[:]); v != embVersion {
			return nil, fmt.Errorf("lightne: unsupported embedding format version %d (this build reads version %d; written by a newer tool?)", v, embVersion)
		}
	case embMagicV1:
		// Legacy header: rows and cols follow the magic directly.
	default:
		return nil, fmt.Errorf("lightne: not a LightNE embedding file (bad magic %q)", word[:])
	}
	var shape [8]byte
	if _, err := io.ReadFull(br, shape[:]); err != nil {
		return nil, fmt.Errorf("lightne: reading shape: %w", err)
	}
	rows := int(binary.LittleEndian.Uint32(shape[0:]))
	cols := int(binary.LittleEndian.Uint32(shape[4:]))
	if rows < 0 || cols < 0 || (cols != 0 && rows > (1<<31)/cols) {
		return nil, fmt.Errorf("lightne: implausible embedding shape %dx%d", rows, cols)
	}
	// Grow with the data actually present so a corrupt header cannot force
	// a huge allocation.
	total := rows * cols
	capHint := total
	if capHint > 1<<18 {
		capHint = 1 << 18
	}
	data := make([]float64, 0, capHint)
	var buf [8]byte
	for i := 0; i < total; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("lightne: truncated embedding data: %w", err)
		}
		data = append(data, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
	}
	return dense.FromSlice(rows, cols, data), nil
}

// ReadEmbedding loads an embedding in either supported format, sniffing the
// binary magic (any version) and falling back to the text parser. This is
// what the CLI tools use so an artifact written by `lightne` (text or
// -binary) loads everywhere without format flags.
func ReadEmbedding(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && len(head) == 4 {
		switch binary.LittleEndian.Uint32(head) {
		case embMagic, embMagicV1:
			return ReadEmbeddingBinary(br)
		}
		for _, b := range head {
			if b != '\t' && b != '\n' && b != '\r' && (b < ' ' || b > '~') {
				return nil, fmt.Errorf("lightne: not a LightNE embedding file (binary data with bad magic %q)", head)
			}
		}
	}
	return ReadEmbeddingText(br)
}
