package lightne_test

import (
	"fmt"
	"log"

	"lightne"
)

// ExampleEmbed demonstrates the minimal embedding pipeline: construct a
// graph, run LightNE, inspect the result's shape and diagnostics.
func ExampleEmbed() {
	arcs := []lightne.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // triangle
		{U: 2, V: 3},                             // bridge
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3}, // triangle
	}
	g, err := lightne.NewGraph(6, arcs, lightne.DefaultGraphOptions())
	if err != nil {
		log.Fatal(err)
	}
	cfg := lightne.DefaultConfig(4)
	cfg.T = 3
	cfg.Seed = 1
	res, err := lightne.Embed(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedding: %d vertices x %d dims\n", res.Embedding.Rows, res.Embedding.Cols)
	fmt.Printf("stages: sparsifier, rSVD, propagation all ran: %v\n",
		res.Timing.Sparsifier >= 0 && res.Timing.SVD > 0 && res.Timing.Propagation > 0)
	// Output:
	// embedding: 6 vertices x 4 dims
	// stages: sparsifier, rSVD, propagation all ran: true
}

// ExampleNodeClassification evaluates an embedding on a labeled replica.
func ExampleNodeClassification() {
	ds, err := lightne.GenerateDataset("blogcatalog-like", 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := lightne.SmallConfig(16)
	cfg.T = 5
	res, err := lightne.Embed(ds.Graph, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cr, err := lightne.NodeClassification(res.Embedding, ds.Labels.Of,
		ds.Labels.NumClasses, 0.5, 3, lightne.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluated on %d held-out vertices; F1 well above the %.0f%% chance level: %v\n",
		cr.TestSize, 100.0/float64(ds.Labels.NumClasses), cr.MicroF1 > 2.0/float64(ds.Labels.NumClasses))
	// Output:
	// evaluated on 1000 held-out vertices; F1 well above the 8% chance level: true
}
