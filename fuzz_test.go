package lightne_test

import (
	"bytes"
	"strings"
	"testing"

	"lightne"
	"lightne/internal/dense"
)

// FuzzReadEmbeddingText asserts the text embedding parser never panics and
// only accepts rectangular numeric input.
func FuzzReadEmbeddingText(f *testing.F) {
	f.Add("1 2\n3 4\n")
	f.Add("")
	f.Add("1 2\n3\n")
	f.Add("NaN Inf\n-Inf 0\n")
	f.Add("1e308 1e-308\n2 3\n")
	f.Fuzz(func(t *testing.T, input string) {
		x, err := lightne.ReadEmbeddingText(strings.NewReader(input))
		if err != nil {
			return
		}
		if x.Rows <= 0 || x.Cols <= 0 {
			t.Fatal("accepted embedding with non-positive shape")
		}
		if len(x.Data) != x.Rows*x.Cols {
			t.Fatal("data length inconsistent with shape")
		}
	})
}

// FuzzReadEmbeddingBinary asserts the binary reader rejects corruption
// without panicking and roundtrips valid payloads.
func FuzzReadEmbeddingBinary(f *testing.F) {
	x := dense.NewMatrix(3, 2)
	x.FillGaussian(1)
	var buf bytes.Buffer
	if err := lightne.WriteEmbeddingBinary(&buf, x); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("LNE1aaaaaaaaaaaa"))
	f.Fuzz(func(t *testing.T, data []byte) {
		y, err := lightne.ReadEmbeddingBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(y.Data) != y.Rows*y.Cols {
			t.Fatal("data length inconsistent with shape")
		}
	})
}

// FuzzLoadGraphPublic exercises the public loader boundary.
func FuzzLoadGraphPublic(f *testing.F) {
	f.Add("0 1\n2 3\n")
	f.Add("0 1 0.5\n")
	f.Add("99999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		if g, err := lightne.LoadGraph(strings.NewReader(input), 0); err == nil {
			_ = g.NumEdges()
		}
		if g, err := lightne.LoadWeightedGraph(strings.NewReader(input), 0); err == nil {
			_ = g.TotalWeight()
		}
	})
}
