package lightne_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"lightne"
	"lightne/internal/dense"
)

// FuzzReadEmbeddingText asserts the text embedding parser never panics and
// only accepts rectangular numeric input.
func FuzzReadEmbeddingText(f *testing.F) {
	f.Add("1 2\n3 4\n")
	f.Add("")
	f.Add("1 2\n3\n")
	f.Add("NaN Inf\n-Inf 0\n")
	f.Add("1e308 1e-308\n2 3\n")
	f.Fuzz(func(t *testing.T, input string) {
		x, err := lightne.ReadEmbeddingText(strings.NewReader(input))
		if err != nil {
			return
		}
		if x.Rows <= 0 || x.Cols <= 0 {
			t.Fatal("accepted embedding with non-positive shape")
		}
		if len(x.Data) != x.Rows*x.Cols {
			t.Fatal("data length inconsistent with shape")
		}
	})
}

// binarySeedCorpus builds one valid byte stream per binary framing (v1
// version-less, v2 trailer-less, v3 CRC-trailed) over the same 3x2 matrix.
func binarySeedCorpus(f *testing.F) [][]byte {
	f.Helper()
	x := dense.NewMatrix(3, 2)
	x.FillGaussian(1)
	var v3 bytes.Buffer
	if err := lightne.WriteEmbeddingBinary(&v3, x); err != nil {
		f.Fatal(err)
	}
	payload := func(hdr []byte) []byte {
		var buf bytes.Buffer
		buf.Write(hdr)
		var w [8]byte
		for _, v := range x.Data {
			binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
			buf.Write(w[:])
		}
		return buf.Bytes()
	}
	hdr32 := func(words ...uint32) []byte {
		out := make([]byte, 4*len(words))
		for i, v := range words {
			binary.LittleEndian.PutUint32(out[4*i:], v)
		}
		return out
	}
	v1 := payload(hdr32(0x314e454c, 3, 2))    // "LNE1", rows, cols
	v2 := payload(hdr32(0x42454e4c, 2, 3, 2)) // "LNEB", version, rows, cols
	return [][]byte{v1, v2, v3.Bytes()}
}

// FuzzReadEmbeddingBinary asserts the binary reader rejects corruption
// without panicking and roundtrips valid payloads in every framing.
func FuzzReadEmbeddingBinary(f *testing.F) {
	for _, seed := range binarySeedCorpus(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte("LNE1aaaaaaaaaaaa"))
	f.Fuzz(func(t *testing.T, data []byte) {
		y, err := lightne.ReadEmbeddingBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(y.Data) != y.Rows*y.Cols {
			t.Fatal("data length inconsistent with shape")
		}
	})
}

// FuzzReadEmbedding drives the auto-detecting entry point (the one
// lightne-serve loads artifacts through) with every binary framing plus
// text: it must never panic, never accept an inconsistent shape, and — for
// inputs that start with the v3 magic+version — never accept a payload
// whose CRC trailer does not match.
func FuzzReadEmbedding(f *testing.F) {
	for _, seed := range binarySeedCorpus(f) {
		f.Add(seed)
	}
	f.Add([]byte("1 2\n3 4\n"))
	f.Add([]byte{})
	f.Add([]byte("LNEB"))
	f.Fuzz(func(t *testing.T, data []byte) {
		y, err := lightne.ReadEmbedding(bytes.NewReader(data))
		if err != nil {
			return
		}
		if y.Rows <= 0 || y.Cols <= 0 || len(y.Data) != y.Rows*y.Cols {
			t.Fatal("accepted embedding with inconsistent shape")
		}
		if y.Cols > 1<<20 {
			t.Fatal("accepted implausible dimension")
		}
	})
}

// FuzzLoadGraphPublic exercises the public loader boundary.
func FuzzLoadGraphPublic(f *testing.F) {
	f.Add("0 1\n2 3\n")
	f.Add("0 1 0.5\n")
	f.Add("99999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		if g, err := lightne.LoadGraph(strings.NewReader(input), 0); err == nil {
			_ = g.NumEdges()
		}
		if g, err := lightne.LoadWeightedGraph(strings.NewReader(input), 0); err == nil {
			_ = g.TotalWeight()
		}
	})
}
