package lightne_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"lightne"
	"lightne/internal/dense"
)

// FuzzReadEmbeddingText asserts the text embedding parser never panics and
// only accepts rectangular numeric input.
func FuzzReadEmbeddingText(f *testing.F) {
	f.Add("1 2\n3 4\n")
	f.Add("")
	f.Add("1 2\n3\n")
	f.Add("NaN Inf\n-Inf 0\n")
	f.Add("1e308 1e-308\n2 3\n")
	f.Fuzz(func(t *testing.T, input string) {
		x, err := lightne.ReadEmbeddingText(strings.NewReader(input))
		if err != nil {
			return
		}
		if x.Rows <= 0 || x.Cols <= 0 {
			t.Fatal("accepted embedding with non-positive shape")
		}
		if len(x.Data) != x.Rows*x.Cols {
			t.Fatal("data length inconsistent with shape")
		}
	})
}

// binarySeedCorpus builds one valid byte stream per binary framing (v1
// version-less, v2 trailer-less, v3 CRC-trailed) over the same 3x2 matrix.
func binarySeedCorpus(f *testing.F) [][]byte {
	f.Helper()
	x := dense.NewMatrix(3, 2)
	x.FillGaussian(1)
	var v3 bytes.Buffer
	if err := lightne.WriteEmbeddingBinary(&v3, x); err != nil {
		f.Fatal(err)
	}
	payload := func(hdr []byte) []byte {
		var buf bytes.Buffer
		buf.Write(hdr)
		var w [8]byte
		for _, v := range x.Data {
			binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
			buf.Write(w[:])
		}
		return buf.Bytes()
	}
	hdr32 := func(words ...uint32) []byte {
		out := make([]byte, 4*len(words))
		for i, v := range words {
			binary.LittleEndian.PutUint32(out[4*i:], v)
		}
		return out
	}
	v1 := payload(hdr32(0x314e454c, 3, 2))    // "LNE1", rows, cols
	v2 := payload(hdr32(0x42454e4c, 2, 3, 2)) // "LNEB", version, rows, cols
	return [][]byte{v1, v2, v3.Bytes()}
}

// hostileShapeSeed is a v3 header declaring a ~17 GB embedding (2^20 ×
// 2^11 float64) over an 8-byte body — the allocation-bomb input the
// size-bounded readers must reject before reserving any memory.
func hostileShapeSeed() []byte {
	out := make([]byte, 16, 24)
	binary.LittleEndian.PutUint32(out[0:], 0x42454e4c) // "LNEB"
	binary.LittleEndian.PutUint32(out[4:], 3)
	binary.LittleEndian.PutUint32(out[8:], 1<<20)  // rows
	binary.LittleEndian.PutUint32(out[12:], 1<<11) // cols
	return append(out, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04)
}

// FuzzReadEmbeddingBinary asserts the binary reader rejects corruption
// without panicking and roundtrips valid payloads in every framing.
func FuzzReadEmbeddingBinary(f *testing.F) {
	for _, seed := range binarySeedCorpus(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte("LNE1aaaaaaaaaaaa"))
	f.Add(hostileShapeSeed())
	f.Fuzz(func(t *testing.T, data []byte) {
		y, err := lightne.ReadEmbeddingBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(y.Data) != y.Rows*y.Cols {
			t.Fatal("data length inconsistent with shape")
		}
	})
}

// FuzzReadEmbedding drives the auto-detecting entry point (the one
// lightne-serve loads artifacts through) with every binary framing plus
// text: it must never panic, never accept an inconsistent shape, and — for
// inputs that start with the v3 magic+version — never accept a payload
// whose CRC trailer does not match.
func FuzzReadEmbedding(f *testing.F) {
	for _, seed := range binarySeedCorpus(f) {
		f.Add(seed)
	}
	f.Add([]byte("1 2\n3 4\n"))
	f.Add([]byte{})
	f.Add([]byte("LNEB"))
	f.Add(hostileShapeSeed())
	f.Fuzz(func(t *testing.T, data []byte) {
		y, err := lightne.ReadEmbedding(bytes.NewReader(data))
		if err != nil {
			return
		}
		if y.Rows <= 0 || y.Cols <= 0 || len(y.Data) != y.Rows*y.Cols {
			t.Fatal("accepted embedding with inconsistent shape")
		}
		if y.Cols > 1<<20 {
			t.Fatal("accepted implausible dimension")
		}
	})
}

// FuzzReadCheckpointFrom drives the size-bounded checkpoint decoder — the
// path replication followers feed untrusted network bytes through. It must
// never panic or over-allocate, and any stream it accepts must carry a
// canonical v3 payload that ValidateCheckpointPayload also accepts.
func FuzzReadCheckpointFrom(f *testing.F) {
	for _, seed := range binarySeedCorpus(f) {
		f.Add(seed)
	}
	f.Add(hostileShapeSeed())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		y, err := lightne.ReadCheckpointFrom(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return
		}
		if y.Rows <= 0 || y.Cols <= 0 || len(y.Data) != y.Rows*y.Cols {
			t.Fatal("accepted checkpoint with inconsistent shape")
		}
		// The decoder consumes a prefix-complete stream; that canonical
		// prefix must be exactly what the payload validator accepts.
		n := 20 + 8*y.Rows*y.Cols
		if n > len(data) {
			t.Fatalf("accepted %dx%d from only %d bytes", y.Rows, y.Cols, len(data))
		}
		if err := lightne.ValidateCheckpointPayload(data[:n]); err != nil {
			t.Fatalf("decoder accepted a payload the validator rejects: %v", err)
		}
	})
}

// FuzzLoadGraphPublic exercises the public loader boundary.
func FuzzLoadGraphPublic(f *testing.F) {
	f.Add("0 1\n2 3\n")
	f.Add("0 1 0.5\n")
	f.Add("99999999999999999999 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		if g, err := lightne.LoadGraph(strings.NewReader(input), 0); err == nil {
			_ = g.NumEdges()
		}
		if g, err := lightne.LoadWeightedGraph(strings.NewReader(input), 0); err == nil {
			_ = g.TotalWeight()
		}
	})
}
