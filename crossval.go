package lightne

import (
	"fmt"
)

// CrossValidateT selects the context window size T by validation — the
// paper's protocol for per-dataset configuration ("we set T = 5 by
// cross-validation", §5.2.1/§5.2.2): for each candidate T the graph is
// embedded and scored with Micro-F1 node classification on a held-out
// split; the T with the best validation score wins (ties break toward the
// smaller, cheaper T).
//
// The returned scores map records every candidate's Micro-F1 so callers
// can inspect the whole curve.
func CrossValidateT(g *Graph, labels [][]int, numClasses int, base Config, candidates []int, trainRatio float64, seed uint64) (bestT int, scores map[int]float64, err error) {
	if len(candidates) == 0 {
		return 0, nil, fmt.Errorf("lightne: no candidate T values")
	}
	scores = make(map[int]float64, len(candidates))
	bestT = 0
	best := -1.0
	for _, t := range candidates {
		if t <= 0 {
			return 0, nil, fmt.Errorf("lightne: candidate T must be positive, got %d", t)
		}
		cfg := base
		cfg.T = t
		res, err := Embed(g, cfg)
		if err != nil {
			return 0, nil, fmt.Errorf("lightne: cross-validating T=%d: %w", t, err)
		}
		cr, err := NodeClassification(res.Embedding, labels, numClasses, trainRatio, seed, DefaultTrainConfig())
		if err != nil {
			return 0, nil, fmt.Errorf("lightne: scoring T=%d: %w", t, err)
		}
		scores[t] = cr.MicroF1
		if cr.MicroF1 > best || (cr.MicroF1 == best && t < bestT) {
			best = cr.MicroF1
			bestT = t
		}
	}
	return bestT, scores, nil
}

// CrossValidateLinkT is the link-prediction analog of CrossValidateT: each
// candidate T is scored by AUC on held-out edges split from g (the
// training graph excludes them, as in §5.2.1's protocol).
func CrossValidateLinkT(g *Graph, base Config, candidates []int, testFrac float64, negatives int, seed uint64) (bestT int, scores map[int]float64, err error) {
	if len(candidates) == 0 {
		return 0, nil, fmt.Errorf("lightne: no candidate T values")
	}
	train, test, err := SplitEdges(g, testFrac, seed)
	if err != nil {
		return 0, nil, err
	}
	scores = make(map[int]float64, len(candidates))
	best := -1.0
	for _, t := range candidates {
		if t <= 0 {
			return 0, nil, fmt.Errorf("lightne: candidate T must be positive, got %d", t)
		}
		cfg := base
		cfg.T = t
		res, err := Embed(train, cfg)
		if err != nil {
			return 0, nil, fmt.Errorf("lightne: cross-validating T=%d: %w", t, err)
		}
		auc := AUC(res.Embedding, test, negatives, seed+1)
		scores[t] = auc
		if auc > best || (auc == best && t < bestT) {
			best = auc
			bestT = t
		}
	}
	return bestT, scores, nil
}
