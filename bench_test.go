// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per artifact, E1-E10 — see DESIGN.md's experiment index),
// plus ablation benches for the design choices LightNE's system sections
// motivate: compression block size (§4.1), xadd vs CAS aggregation (§4.2),
// edge downsampling (§3.2), and spectral propagation (§3.2).
//
// Experiments run in Quick mode under testing.B so `go test -bench=.`
// completes in minutes; `cmd/lightne-bench` runs the full-budget versions.
package lightne_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"lightne"
	"lightne/internal/aggregate"
	"lightne/internal/ann"
	"lightne/internal/compress"
	"lightne/internal/dense"
	"lightne/internal/eval"
	"lightne/internal/experiments"
	"lightne/internal/gen"
	"lightne/internal/graph"
	"lightne/internal/hashtable"
	"lightne/internal/prone"
	"lightne/internal/rng"
	"lightne/internal/sampler"
	"lightne/internal/serve"
)

// benchExperiment wraps one paper artifact as a benchmark.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run := experiments.All()[id]
	if run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		rep, err := run(experiments.Options{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkE1_PBGComparison(b *testing.B)      { benchExperiment(b, "e1") }
func BenchmarkE2_GraphViteF1(b *testing.B)        { benchExperiment(b, "e2") }
func BenchmarkE3_HyperlinkAUC(b *testing.B)       { benchExperiment(b, "e3") }
func BenchmarkE4_OAGTable4(b *testing.B)          { benchExperiment(b, "e4") }
func BenchmarkE5_TradeoffCurve(b *testing.B)      { benchExperiment(b, "e5") }
func BenchmarkE6_TimeBreakdown(b *testing.B)      { benchExperiment(b, "e6") }
func BenchmarkE7_SampleSizeAblation(b *testing.B) { benchExperiment(b, "e7") }
func BenchmarkE8_VeryLargeHITS(b *testing.B)      { benchExperiment(b, "e8") }
func BenchmarkE9_SmallGraphs(b *testing.B)        { benchExperiment(b, "e9") }
func BenchmarkE10_DatasetStats(b *testing.B)      { benchExperiment(b, "e10") }

// BenchmarkAblation_BlockSize measures the §4.1 trade-off that led the
// paper to block size 64: i-th-neighbor fetch latency on compressed
// adjacency as the block size varies.
func BenchmarkAblation_BlockSize(b *testing.B) {
	ds, err := gen.OAGLike(1)
	if err != nil {
		b.Fatal(err)
	}
	g := ds.Graph
	// Rebuild raw CSR arrays for compression at several block sizes.
	n := g.NumVertices()
	offsets := make([]int64, n+1)
	var edges []uint32
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(uint32(u), nil)
		edges = append(edges, nbrs...)
		offsets[u+1] = offsets[u] + int64(len(nbrs))
	}
	for _, bs := range []int{8, 32, 64, 256} {
		b.Run(sizeName(bs), func(b *testing.B) {
			adj, err := compress.Build(offsets, edges, bs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(adj.SizeBytes()), "bytes")
			src := rng.New(7, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := uint32(src.Intn(n))
				d := int(adj.Degree(u))
				if d == 0 {
					continue
				}
				_ = adj.Nth(u, src.Intn(d))
			}
		})
	}
}

func sizeName(bs int) string {
	switch bs {
	case 8:
		return "block8"
	case 32:
		return "block32"
	case 64:
		return "block64"
	default:
		return "block256"
	}
}

// BenchmarkAblation_XaddVsCAS reproduces the §4.2 claim that the atomic
// fetch-and-add instruction beats a compare-and-swap loop under contention
// on a single counter.
func BenchmarkAblation_XaddVsCAS(b *testing.B) {
	workers := 8
	b.Run("xadd", func(b *testing.B) {
		var counter uint64
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N/workers + 1
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					atomic.AddUint64(&counter, 1)
				}
			}()
		}
		wg.Wait()
	})
	b.Run("cas-loop", func(b *testing.B) {
		var counter uint64
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N/workers + 1
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					for {
						old := atomic.LoadUint64(&counter)
						if atomic.CompareAndSwapUint64(&counter, old, old+1) {
							break
						}
					}
				}
			}()
		}
		wg.Wait()
	})
}

// BenchmarkAblation_Downsampling compares embedding quality and sparsifier
// size with and without LightNE's edge downsampling at the same trial
// budget (§3.2's "negligible effect on quality" claim).
func BenchmarkAblation_Downsampling(b *testing.B) {
	ds, err := gen.OAGLike(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, down := range []bool{true, false} {
		name := "downsample-on"
		if !down {
			name = "downsample-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := lightne.DefaultConfig(32)
				cfg.SampleMultiple = 1
				cfg.NoDownsample = !down
				cfg.Seed = 5
				res, err := lightne.Embed(ds.Graph, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cr, err := eval.NodeClassification(res.Embedding, ds.Labels.Of, ds.Labels.NumClasses, 0.1, 3, eval.DefaultTrain())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*cr.MicroF1, "microF1%")
				b.ReportMetric(float64(res.SparsifierNNZ), "nnz")
			}
		})
	}
}

// BenchmarkAblation_Propagation compares LightNE with and without Step 2
// at a low sample budget, where the paper says propagation matters most.
func BenchmarkAblation_Propagation(b *testing.B) {
	ds, err := gen.OAGLike(1)
	if err != nil {
		b.Fatal(err)
	}
	for _, skip := range []bool{false, true} {
		name := "with-propagation"
		if skip {
			name = "without-propagation"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := lightne.SmallConfig(32)
				cfg.SkipPropagation = skip
				cfg.Seed = 7
				res, err := lightne.Embed(ds.Graph, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cr, err := eval.NodeClassification(res.Embedding, ds.Labels.Of, ds.Labels.NumClasses, 0.1, 3, eval.DefaultTrain())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*cr.MicroF1, "microF1%")
			}
		})
	}
}

// BenchmarkKernel_Sampling measures PathSampling throughput (trials/sec),
// the stage Table 5 shows dominating LightNE-Large.
func BenchmarkKernel_Sampling(b *testing.B) {
	ds, err := gen.OAGLike(1)
	if err != nil {
		b.Fatal(err)
	}
	g := ds.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := lightne.DefaultConfig(32)
		cfg.SampleMultiple = 1
		cfg.SkipPropagation = true
		cfg.Seed = uint64(i)
		res, err := lightne.Embed(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SampleStats.Trials)/res.Timing.Sparsifier.Seconds(), "trials/s")
	}
}

// BenchmarkKernel_RandomWalk measures raw walk-step throughput on plain vs
// compressed adjacency (the cost §4.2 discusses around block decoding).
func BenchmarkKernel_RandomWalk(b *testing.B) {
	ds, err := gen.OAGLike(1)
	if err != nil {
		b.Fatal(err)
	}
	plain := ds.Graph
	// Build a compressed copy.
	var arcs []graph.Edge
	for u := 0; u < plain.NumVertices(); u++ {
		for _, v := range plain.Neighbors(uint32(u), nil) {
			if uint32(u) < v {
				arcs = append(arcs, graph.Edge{U: uint32(u), V: v})
			}
		}
	}
	copt := graph.DefaultOptions()
	copt.Compress = true
	compressed, err := graph.FromEdges(plain.NumVertices(), arcs, copt)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"plain-csr", plain}, {"parallel-byte", compressed}} {
		b.Run(tc.name, func(b *testing.B) {
			src := rng.New(3, 0)
			u := uint32(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u = tc.g.Walk(u, 8, src)
			}
		})
	}
}

// BenchmarkAblation_Aggregation compares the three sample-aggregation
// strategies the paper considered (§4.2): per-worker lists + histogram
// merge, per-worker tables merged at the end, and the shared lock-free
// hash table LightNE selected. Memory is reported per strategy.
func BenchmarkAblation_Aggregation(b *testing.B) {
	const workers, perWorker, distinct = 8, 20000, 50000
	strategies := []struct {
		name string
		mk   func() aggregate.Aggregator
	}{
		{"list-histogram", func() aggregate.Aggregator { return aggregate.NewListHistogram(workers) }},
		{"per-worker-tables", func() aggregate.Aggregator { return aggregate.NewPerWorkerTables(workers) }},
		{"shared-table", func() aggregate.Aggregator { return aggregate.NewSharedTable(distinct * 2) }},
	}
	for _, s := range strategies {
		b.Run(s.name, func(b *testing.B) {
			var mem int64
			for i := 0; i < b.N; i++ {
				agg := s.mk()
				total := aggregate.RunWorkload(agg, workers, perWorker, distinct, uint64(i))
				if total == 0 {
					b.Fatal("no samples aggregated")
				}
				mem = agg.MemoryBytes()
			}
			b.ReportMetric(float64(mem), "bytes")
			b.ReportMetric(float64(workers*perWorker), "samples")
		})
	}
}

// BenchmarkAblation_ArcSampling compares the uniform-arc strategies the
// paper rejected (flat array: O(m) memory; prefix-sum binary search:
// O(log n) per draw) against each other; the per-edge schedule that
// replaced them is measured by BenchmarkKernel_Sampling.
func BenchmarkAblation_ArcSampling(b *testing.B) {
	ds, err := gen.OAGLike(1)
	if err != nil {
		b.Fatal(err)
	}
	g := ds.Graph
	samplers := []struct {
		name string
		s    sampler.ArcSampler
	}{
		{"array-o1", sampler.NewArrayArcSampler(g)},
		{"binary-search", sampler.NewSearchArcSampler(g)},
	}
	for _, tc := range samplers {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportMetric(float64(tc.s.MemoryBytes()), "bytes")
			src := rng.New(7, 0)
			b.ResetTimer()
			var sink uint32
			for i := 0; i < b.N; i++ {
				u, v := tc.s.Arc(src)
				sink ^= u ^ v
			}
			_ = sink
		})
	}
}

// BenchmarkAblation_PropagationFilters compares the three spectral filters
// (Chebyshev-Gaussian, heat kernel, PPR) on quality and cost.
func BenchmarkAblation_PropagationFilters(b *testing.B) {
	ds, err := gen.OAGLike(1)
	if err != nil {
		b.Fatal(err)
	}
	base := lightne.SmallConfig(32)
	base.SkipPropagation = true
	base.Seed = 5
	res, err := lightne.Embed(ds.Graph, base)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []prone.Filter{prone.FilterChebyshevGaussian, prone.FilterHeatKernel, prone.FilterPPR} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := prone.DefaultPropagation()
				cfg.Kind = kind
				y, err := lightne.Propagate(ds.Graph, res.Initial, cfg)
				if err != nil {
					b.Fatal(err)
				}
				cr, err := eval.NodeClassification(y, ds.Labels.Of, ds.Labels.NumClasses, 0.1, 3, eval.DefaultTrain())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*cr.MicroF1, "microF1%")
			}
		})
	}
}

// BenchmarkAblation_CompactTable contrasts the 16-byte-slot table with the
// compressed 12-byte-slot variant (the paper's §6 future work).
func BenchmarkAblation_CompactTable(b *testing.B) {
	const inserts, distinct = 1 << 20, 1 << 16
	b.Run("full-16B", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := hashtable.New(distinct * 2)
			s := rng.New(uint64(i), 0)
			for k := 0; k < inserts; k++ {
				key := uint32(s.Intn(distinct))
				t.Add(key, key^7, 1)
			}
			b.ReportMetric(float64(t.MemoryBytes()), "bytes")
		}
	})
	b.Run("compact-12B", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := hashtable.NewCompact(distinct * 2)
			s := rng.New(uint64(i), 0)
			for k := 0; k < inserts; k++ {
				key := uint32(s.Intn(distinct))
				t.Add(key, key^7, 1)
			}
			b.ReportMetric(float64(t.MemoryBytes()), "bytes")
		}
	})
}

// BenchmarkServing measures the serving subsystem's query path — the §1
// deployments' end product (embeddings consumed by recommendation
// queries). Closed-loop HTTP clients drive /v1/neighbors over a published
// snapshot; qps and exact percentile latencies are reported per precision.
// The frontier sub-benchmark additionally sweeps the IVF index across
// probe widths and writes the measured recall/qps frontier (exact baseline
// plus one point per nprobe) to BENCH_serving.json.
func BenchmarkServing(b *testing.B) {
	const vertices, dims = 5000, 64
	x := dense.NewMatrix(vertices, dims)
	x.FillGaussian(11)
	for _, precision := range serve.Precisions() {
		b.Run(precision, func(b *testing.B) {
			ix, err := serve.NewIndex(x, precision)
			if err != nil {
				b.Fatal(err)
			}
			store := serve.NewStore()
			store.Publish(ix, 0)
			ts := httptest.NewServer(serve.New(store).Handler())
			defer ts.Close()
			b.ReportMetric(float64(ix.MemoryBytes()), "bytes")
			b.ResetTimer()
			rep, err := serve.RunLoad(context.Background(), ts.URL, serve.LoadConfig{
				Workers:  8,
				Requests: b.N,
				Vertices: vertices,
				K:        10,
				Seed:     1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Errors > 0 {
				b.Fatalf("%d load errors", rep.Errors)
			}
			b.ReportMetric(rep.QPS, "qps")
			b.ReportMetric(float64(rep.P50.Microseconds()), "p50-µs")
			b.ReportMetric(float64(rep.P99.Microseconds()), "p99-µs")
		})
	}
	b.Run("frontier", func(b *testing.B) {
		// Clustered rows — the regime trained network embeddings live in
		// (community structure), where the IVF trade-off is representative;
		// iid gaussian rows are the coarse quantizer's worst case.
		xc := dense.NewMatrix(vertices, dims)
		centers := dense.NewMatrix(64, dims)
		centers.FillGaussian(12)
		src := rng.New(13, 0)
		for i := 0; i < vertices; i++ {
			c := centers.Row(src.Intn(64))
			row := xc.Row(i)
			for j := 0; j < dims; j++ {
				row[j] = c[j] + 0.15*src.NormFloat64()
			}
		}
		ix, err := serve.NewIndex(xc, "float32")
		if err != nil {
			b.Fatal(err)
		}
		ivf, err := serve.BuildANN(ix, ann.Config{Enabled: true, MinRows: 1, NList: 64, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		points, err := serve.RunFrontier(context.Background(), ix, ivf, []int{1, 4, 16}, serve.LoadConfig{
			Workers:  8,
			Requests: b.N,
			Vertices: vertices,
			K:        10,
			Seed:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range points {
			b.Log(pt.String())
		}
		last := points[len(points)-1]
		b.ReportMetric(last.QPS, "qps")
		b.ReportMetric(last.Recall, "recall@10")
		report := struct {
			Vertices int                   `json:"vertices"`
			Dims     int                   `json:"dims"`
			K        int                   `json:"k"`
			Points   []serve.FrontierPoint `json:"points"`
		}{Vertices: vertices, Dims: dims, K: 10, Points: points}
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_serving.json", append(raw, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkE11_DynamicEmbedding(b *testing.B)      { benchExperiment(b, "e11") }
func BenchmarkE12_AggregationStrategies(b *testing.B) { benchExperiment(b, "e12") }

func BenchmarkE13_CompressionScaling(b *testing.B) { benchExperiment(b, "e13") }

func BenchmarkE14_FactorizationModes(b *testing.B) { benchExperiment(b, "e14") }

// BenchmarkAblation_BatchedWalks compares the per-edge walking schedule
// (Algorithm 2) against the radix-batched schedule the paper names as
// future work (§4.2): same trial distribution, different memory access
// pattern. At replica scale the adjacency fits in cache, so the sort
// overhead dominates and per-edge wins — precisely the "overhead for
// shuffling the data via a semisort ... vs the overhead for performing
// random reads" trade-off the paper says needs careful analysis; the
// batched schedule only pays off when the graph exceeds LLC.
func BenchmarkAblation_BatchedWalks(b *testing.B) {
	ds, err := gen.OAGLike(1)
	if err != nil {
		b.Fatal(err)
	}
	g := ds.Graph
	m := int64(2_000_000)
	b.Run("per-edge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, stats, err := sampler.Sample(g, sampler.Config{T: 10, M: m, Downsample: true, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(stats.Trials), "trials")
		}
	})
	b.Run("radix-batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, stats, err := sampler.SampleBatched(g, sampler.Config{T: 10, M: m, Downsample: true, Seed: 3}, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(stats.Trials), "trials")
		}
	})
}
