package lightne_test

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lightne"
	"lightne/internal/dense"
	"lightne/internal/faultinject"
)

func gaussian(t *testing.T, rows, cols int, seed uint64) *dense.Matrix {
	t.Helper()
	x := dense.NewMatrix(rows, cols)
	x.FillGaussian(seed)
	return x
}

func bitIdentical(t *testing.T, want, got *dense.Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("element %d not bit-identical", i)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "emb.ckpt")
	x := gaussian(t, 17, 6, 3)
	x.Set(0, 0, math.Inf(-1)) // special values must survive
	if err := lightne.WriteCheckpoint(path, x); err != nil {
		t.Fatal(err)
	}
	y, err := lightne.ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, x, y)
	// No temp file left behind after a clean write.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file still present: %v", err)
	}
}

// TestCheckpointKillMidWritePreservesOld: a write killed halfway through
// its data (simulated crash) must leave the previous checkpoint bit-intact
// at the final path — the atomic-replace guarantee — with the torn bytes
// confined to the temp file.
func TestCheckpointKillMidWritePreservesOld(t *testing.T) {
	path := filepath.Join(t.TempDir(), "emb.ckpt")
	old := gaussian(t, 20, 4, 7)
	if err := lightne.WriteCheckpoint(path, old); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New()
	inj.FailAt(faultinject.CheckpointData, 1, nil)
	next := gaussian(t, 20, 4, 8)
	if err := lightne.WriteCheckpointHooked(path, next, inj); err == nil {
		t.Fatal("killed write must report failure")
	}
	// The torn temp file exists (as after a real crash) and is shorter
	// than a complete checkpoint.
	st, err := os.Stat(path + ".tmp")
	if err != nil {
		t.Fatalf("expected torn temp file: %v", err)
	}
	if want := int64(16 + 20*4*8 + 4); st.Size() >= want {
		t.Fatalf("temp file %d bytes, want < %d (torn)", st.Size(), want)
	}
	// Recovery reads the old checkpoint, untouched.
	y, err := lightne.ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, old, y)
	// The next clean write replaces everything.
	if err := lightne.WriteCheckpoint(path, next); err != nil {
		t.Fatal(err)
	}
	y, err = lightne.ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, next, y)
}

// TestCheckpointKillBeforeRename: a crash between fsync and rename leaves
// the complete temp file but never publishes it; the final path is
// untouched (or absent on first write — the cold-start case).
func TestCheckpointKillBeforeRename(t *testing.T) {
	path := filepath.Join(t.TempDir(), "emb.ckpt")
	inj := faultinject.New()
	inj.FailAt(faultinject.CheckpointRename, 1, nil)
	x := gaussian(t, 9, 3, 11)
	if err := lightne.WriteCheckpointHooked(path, x, inj); err == nil {
		t.Fatal("killed rename must report failure")
	}
	if _, err := lightne.ReadCheckpoint(path); !os.IsNotExist(err) {
		t.Fatalf("final path must not exist, got %v", err)
	}
}

// TestCheckpointTornFinalFileDetectedByCRC: if the final file is torn
// anyway (lost directory sync, disk-level corruption), the CRC trailer
// detects it — truncation and bit flips both fail loudly instead of
// loading garbage vectors.
func TestCheckpointTornFinalFileDetectedByCRC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "emb.ckpt")
	x := gaussian(t, 15, 5, 13)
	if err := lightne.WriteCheckpoint(path, x); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation mid-data: the declared shape no longer fits the file's
	// actual size, so the read is rejected before any data allocation.
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = lightne.ReadCheckpoint(path)
	if err == nil || !strings.Contains(err.Error(), "truncated or hostile header") {
		t.Fatalf("truncated checkpoint: want shape-vs-size error, got %v", err)
	}

	// A single flipped bit mid-data: CRC mismatch.
	flipped := bytes.Clone(raw)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = lightne.ReadCheckpoint(path)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupt checkpoint: want checksum error, got %v", err)
	}

	// Restored bytes read fine again.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lightne.ReadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRejectsUnchecksummedFormats: v1/v2 artifacts load through
// ReadEmbedding but are not acceptable as checkpoints (no integrity).
func TestCheckpointRejectsUnchecksummedFormats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "emb.ckpt")
	var buf bytes.Buffer
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], 0x42454e4c) // "LNEB"
	binary.LittleEndian.PutUint32(hdr[4:], 2)
	binary.LittleEndian.PutUint32(hdr[8:], 1)
	binary.LittleEndian.PutUint32(hdr[12:], 2)
	buf.Write(hdr[:])
	var w [8]byte
	for _, v := range []float64{1, 2} {
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		buf.Write(w[:])
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lightne.ReadEmbedding(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("v2 must stay readable as an artifact: %v", err)
	}
	_, err := lightne.ReadCheckpoint(path)
	if err == nil || !strings.Contains(err.Error(), "no checksum") {
		t.Fatalf("v2 checkpoint: want no-checksum rejection, got %v", err)
	}
}

// TestCheckpointHostileHeaderRejected: a header declaring a multi-gigabyte
// shape over a tiny file must be rejected by the size bound before any
// allocation happens — both from disk (ReadCheckpoint stats the file) and
// from a sized stream (the replication fetch path).
func TestCheckpointHostileHeaderRejected(t *testing.T) {
	hostile := make([]byte, 24)
	binary.LittleEndian.PutUint32(hostile[0:], 0x42454e4c) // "LNEB"
	binary.LittleEndian.PutUint32(hostile[4:], 3)
	binary.LittleEndian.PutUint32(hostile[8:], 1<<20)  // rows
	binary.LittleEndian.PutUint32(hostile[12:], 1<<11) // cols: 2^31 elements, ~17 GB

	path := filepath.Join(t.TempDir(), "hostile.ckpt")
	if err := os.WriteFile(path, hostile, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := lightne.ReadCheckpoint(path)
	if err == nil || !strings.Contains(err.Error(), "truncated or hostile header") {
		t.Fatalf("hostile file header: got %v", err)
	}

	_, err = lightne.ReadCheckpointFrom(bytes.NewReader(hostile), int64(len(hostile)))
	if err == nil || !strings.Contains(err.Error(), "truncated or hostile header") {
		t.Fatalf("hostile stream header: got %v", err)
	}

	if err := lightne.ValidateCheckpointPayload(hostile); err == nil {
		t.Fatal("payload validator accepted a hostile header")
	}
}

// TestCheckpointPayloadRoundTrip: EncodeCheckpoint → validate → persist via
// WriteCheckpointBytes → ReadCheckpoint recovers the matrix bit-identically.
// This is the exact byte path a follower runs on every applied generation.
func TestCheckpointPayloadRoundTrip(t *testing.T) {
	x := gaussian(t, 9, 5, 11)
	payload, err := lightne.EncodeCheckpoint(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := lightne.ValidateCheckpointPayload(payload); err != nil {
		t.Fatal(err)
	}
	// The in-memory encoding is byte-identical to the streaming one.
	var buf bytes.Buffer
	if err := lightne.WriteCheckpointTo(&buf, x); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Fatal("EncodeCheckpoint and WriteCheckpointTo disagree")
	}

	path := filepath.Join(t.TempDir(), "replica.ckpt")
	if err := lightne.WriteCheckpointBytes(path, payload); err != nil {
		t.Fatal(err)
	}
	y, err := lightne.ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, x, y)
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file still present: %v", err)
	}
}

// TestCheckpointPayloadValidation: the cheap validator rejects every
// corruption class a follower can receive — short payloads, bad magic,
// wrong version, shape/length disagreement, flipped bits — and a rejected
// payload never reaches disk through WriteCheckpointBytes.
func TestCheckpointPayloadValidation(t *testing.T) {
	x := gaussian(t, 4, 3, 12)
	good, err := lightne.EncodeCheckpoint(x)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{"short", func(p []byte) []byte { return p[:10] }, "too short"},
		{"bad magic", func(p []byte) []byte { p[0] ^= 0xff; return p }, "bad magic"},
		{"wrong version", func(p []byte) []byte { p[4] = 2; return p }, "format v2"},
		{"truncated body", func(p []byte) []byte { return p[:len(p)-8] }, "want"},
		{"trailing junk", func(p []byte) []byte { return append(p, 0) }, "want"},
		{"flipped bit", func(p []byte) []byte { p[len(p)/2] ^= 0x01; return p }, "checksum mismatch"},
	}
	for _, tc := range cases {
		p := tc.mutate(append([]byte(nil), good...))
		err := lightne.ValidateCheckpointPayload(p)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: got %v, want %q", tc.name, err, tc.wantErr)
		}
		path := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := lightne.WriteCheckpointBytes(path, p); err == nil {
			t.Fatalf("%s: WriteCheckpointBytes accepted a corrupt payload", tc.name)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("%s: corrupt payload reached disk", tc.name)
		}
	}
}
