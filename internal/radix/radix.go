// Package radix implements a parallel least-significant-digit radix sort
// for (uint64 key, float64 payload) pairs — the "partial radix-sort"
// machinery the paper cites (Kiriansky et al. [13], and Gu et al.'s
// semisort [8]) as the alternative to hashing for aggregating samples
// (§4.2). It backs the list-histogram aggregation strategy and is exposed
// for any (key, weight) grouping workload.
//
// The sort is stable, runs ceil(usedBits/8) counting passes, and
// parallelizes both the histogram and the scatter of each pass over
// contiguous chunks (per-chunk digit counts give each chunk a disjoint
// write region, so the scatter is race-free and stability is preserved).
package radix

import (
	"math/bits"
	"sync"

	"lightne/internal/par"
)

// chunkCount controls the histogram/scatter parallel grain.
const chunkCount = 32

// SortPairs sorts keys ascending, permuting vals alongside. len(vals) must
// equal len(keys). The slices are sorted in place (an internal buffer of
// equal size is allocated).
func SortPairs(keys []uint64, vals []float64) {
	if len(keys) != len(vals) {
		panic("radix: keys and vals must have equal length")
	}
	n := len(keys)
	if n < 2 {
		return
	}
	// Only sort the digits that can be nonzero.
	var maxKey uint64
	for _, k := range keys {
		if k > maxKey {
			maxKey = k
		}
	}
	passes := (bits.Len64(maxKey) + 7) / 8
	if passes == 0 {
		return
	}
	bufK := make([]uint64, n)
	bufV := make([]float64, n)
	srcK, srcV := keys, vals
	dstK, dstV := bufK, bufV
	for pass := 0; pass < passes; pass++ {
		shift := uint(8 * pass)
		countingPass(srcK, srcV, dstK, dstV, shift)
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if &srcK[0] != &keys[0] {
		copy(keys, srcK)
		copy(vals, srcV)
	}
}

// countingPass performs one stable 8-bit counting pass from src to dst.
func countingPass(srcK []uint64, srcV []float64, dstK []uint64, dstV []float64, shift uint) {
	n := len(srcK)
	chunks := chunkCount
	if chunks > n {
		chunks = 1
	}
	size := (n + chunks - 1) / chunks
	// counts[c][d]: occurrences of digit d in chunk c.
	counts := make([][256]int64, chunks)
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		go func(c int) {
			defer wg.Done()
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				counts[c][(srcK[i]>>shift)&0xff]++
			}
		}(c)
	}
	wg.Wait()
	// Global stable offsets: digit-major, chunk-minor.
	var total int64
	var offsets [256][]int64
	for d := 0; d < 256; d++ {
		offsets[d] = make([]int64, chunks)
		for c := 0; c < chunks; c++ {
			offsets[d][c] = total
			total += counts[c][d]
		}
	}
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		go func(c int) {
			defer wg.Done()
			var next [256]int64
			for d := 0; d < 256; d++ {
				next[d] = offsets[d][c]
			}
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				d := (srcK[i] >> shift) & 0xff
				p := next[d]
				next[d]++
				dstK[p] = srcK[i]
				dstV[p] = srcV[i]
			}
		}(c)
	}
	wg.Wait()
}

// GroupSum sorts the pairs and sums payloads of equal keys in place,
// returning the compacted length: the semisort-style "histogram" operation
// used to merge per-worker sample lists.
func GroupSum(keys []uint64, vals []float64) int {
	SortPairs(keys, vals)
	out := 0
	for i := 0; i < len(keys); {
		j := i
		var sum float64
		for j < len(keys) && keys[j] == keys[i] {
			sum += vals[j]
			j++
		}
		keys[out] = keys[i]
		vals[out] = sum
		out++
		i = j
	}
	return out
}

// GroupCSR partitions (key, payload) pairs by the key's high 32 bits — the
// source vertex of a packed edge — using the package's parallel LSD sort,
// and returns the CSR row-pointer array over numRows rows. keys and vals are
// sorted ascending in place, so within each row the low 32 bits (the
// destination vertex) come out sorted as well: exactly the row-grouped,
// column-sorted layout sparse.CSR expects, with no per-row comparison sort.
//
// Every key's high 32 bits must be < numRows; GroupCSR panics otherwise
// (the keys are checked after the sort, where the maximum is the last key).
func GroupCSR(keys []uint64, vals []float64, numRows int) []int64 {
	SortPairs(keys, vals)
	n := len(keys)
	rowPtr := make([]int64, numRows+1)
	if n == 0 {
		return rowPtr
	}
	if last := int(keys[n-1] >> 32); last >= numRows {
		panic("radix: GroupCSR key row out of range")
	}
	// Row r starts at the first index whose key's high bits are >= r. Each
	// boundary between consecutive distinct rows is found independently, so
	// the fill parallelizes over positions; total extra writes across all
	// boundaries are O(numRows) for the empty-row runs.
	par.For(n, 4096, func(i int) {
		r := int(keys[i] >> 32)
		prev := -1
		if i > 0 {
			prev = int(keys[i-1] >> 32)
		}
		for row := prev + 1; row <= r; row++ {
			rowPtr[row] = int64(i)
		}
	})
	for row := int(keys[n-1]>>32) + 1; row <= numRows; row++ {
		rowPtr[row] = int64(n)
	}
	return rowPtr
}

// Sort sorts a bare key slice ascending with the same parallel LSD passes
// as SortPairs. Used by the batched walker to group walk states by their
// current vertex between steps.
func Sort(keys []uint64) {
	n := len(keys)
	if n < 2 {
		return
	}
	var maxKey uint64
	for _, k := range keys {
		if k > maxKey {
			maxKey = k
		}
	}
	passes := (bits.Len64(maxKey) + 7) / 8
	if passes == 0 {
		return
	}
	buf := make([]uint64, n)
	src, dst := keys, buf
	for pass := 0; pass < passes; pass++ {
		countingPassKeys(src, dst, uint(8*pass))
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// countingPassKeys is countingPass without a payload.
func countingPassKeys(src, dst []uint64, shift uint) {
	n := len(src)
	chunks := chunkCount
	if chunks > n {
		chunks = 1
	}
	size := (n + chunks - 1) / chunks
	counts := make([][256]int64, chunks)
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		go func(c int) {
			defer wg.Done()
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				counts[c][(src[i]>>shift)&0xff]++
			}
		}(c)
	}
	wg.Wait()
	var total int64
	var offsets [256][]int64
	for d := 0; d < 256; d++ {
		offsets[d] = make([]int64, chunks)
		for c := 0; c < chunks; c++ {
			offsets[d][c] = total
			total += counts[c][d]
		}
	}
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		go func(c int) {
			defer wg.Done()
			var next [256]int64
			for d := 0; d < 256; d++ {
				next[d] = offsets[d][c]
			}
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				d := (src[i] >> shift) & 0xff
				dst[next[d]] = src[i]
				next[d]++
			}
		}(c)
	}
	wg.Wait()
}
