// Package radix implements a parallel least-significant-digit radix sort
// for (uint64 key, float64 payload) pairs — the "partial radix-sort"
// machinery the paper cites (Kiriansky et al. [13], and Gu et al.'s
// semisort [8]) as the alternative to hashing for aggregating samples
// (§4.2). It backs the list-histogram aggregation strategy and is exposed
// for any (key, weight) grouping workload.
//
// The sort is stable, runs one counting pass per byte that can be nonzero,
// and parallelizes both the histogram and the scatter of each pass over
// contiguous chunks (per-chunk digit counts give each chunk a disjoint
// write region, so the scatter is race-free and stability is preserved).
// Chunk geometry comes from par.Blocks, the package-wide single source of
// truth, so the pass parallelism scales with the worker count instead of
// capping at a fixed chunk count.
package radix

import (
	"math/bits"

	"lightne/internal/par"
)

// passGrain is the minimum chunk length of a counting pass. Each chunk pays
// a 2 KB digit-count array per pass, so chunks are kept a few thousand
// elements wide; par.Blocks then targets ~4 chunks per worker above that
// floor.
const passGrain = 4096

// usedBytes returns how many low-order bytes of the keys can be nonzero.
func usedBytes(keys []uint64) int {
	var maxKey uint64
	for _, k := range keys {
		if k > maxKey {
			maxKey = k
		}
	}
	return (bits.Len64(maxKey) + 7) / 8
}

// SortPairs sorts keys ascending, permuting vals alongside. len(vals) must
// equal len(keys). The slices are sorted in place (an internal buffer of
// equal size is allocated). The sort is stable: equal keys keep their input
// order.
func SortPairs(keys []uint64, vals []float64) {
	if len(keys) != len(vals) {
		panic("radix: keys and vals must have equal length")
	}
	sortPairsBytes(keys, vals, 0, usedBytes(keys))
}

// sortPairsBytes runs stable counting passes over key bytes [loByte, hiByte)
// from least to most significant. Passing loByte > 0 yields a partial sort:
// the keys end up ordered by their high bytes only, with equal high bytes
// keeping input order — exactly the "partition, don't sort" step semisort
// needs when within-group order is irrelevant.
func sortPairsBytes(keys []uint64, vals []float64, loByte, hiByte int) {
	n := len(keys)
	if n < 2 || hiByte <= loByte {
		return
	}
	bounds := par.Blocks(n, passGrain)
	bufK := make([]uint64, n)
	bufV := make([]float64, n)
	srcK, srcV := keys, vals
	dstK, dstV := bufK, bufV
	for b := loByte; b < hiByte; b++ {
		countingPass(srcK, srcV, dstK, dstV, uint(8*b), bounds)
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if &srcK[0] != &keys[0] {
		copy(keys, srcK)
		copy(vals, srcV)
	}
}

// countingPass performs one stable 8-bit counting pass from src to dst over
// the chunk geometry in bounds (shared by every pass of a sort so per-chunk
// indices line up).
func countingPass(srcK []uint64, srcV []float64, dstK []uint64, dstV []float64, shift uint, bounds []int) {
	chunks := len(bounds) - 1
	// counts[c][d]: occurrences of digit d in chunk c.
	counts := make([][256]int64, chunks)
	par.ForBlocks(bounds, func(c, lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[c][(srcK[i]>>shift)&0xff]++
		}
	})
	offsets := passOffsets(counts)
	par.ForBlocks(bounds, func(c, lo, hi int) {
		var next [256]int64
		for d := 0; d < 256; d++ {
			next[d] = offsets[d*chunks+c]
		}
		for i := lo; i < hi; i++ {
			d := (srcK[i] >> shift) & 0xff
			p := next[d]
			next[d]++
			dstK[p] = srcK[i]
			dstV[p] = srcV[i]
		}
	})
}

// passOffsets turns per-chunk digit counts into global stable write offsets,
// digit-major and chunk-minor: offsets[d*chunks+c] is where chunk c starts
// writing digit d.
func passOffsets(counts [][256]int64) []int64 {
	chunks := len(counts)
	offsets := make([]int64, 256*chunks)
	var total int64
	for d := 0; d < 256; d++ {
		for c := 0; c < chunks; c++ {
			offsets[d*chunks+c] = total
			total += counts[c][d]
		}
	}
	return offsets
}

// GroupSum sorts the pairs and sums payloads of equal keys in place,
// returning the compacted length: the semisort-style "histogram" operation
// used to merge per-worker sample lists.
func GroupSum(keys []uint64, vals []float64) int {
	SortPairs(keys, vals)
	out := 0
	for i := 0; i < len(keys); {
		j := i
		var sum float64
		for j < len(keys) && keys[j] == keys[i] {
			sum += vals[j]
			j++
		}
		keys[out] = keys[i]
		vals[out] = sum
		out++
		i = j
	}
	return out
}

// GroupCSR partitions (key, payload) pairs by the key's high 32 bits — the
// source vertex of a packed edge — using the package's parallel LSD sort,
// and returns the CSR row-pointer array over numRows rows. keys and vals are
// sorted ascending in place, so within each row the low 32 bits (the
// destination vertex) come out sorted as well: exactly the row-grouped,
// column-sorted layout sparse.CSR expects, with no per-row comparison sort.
// Because the full key is sorted, the output layout is a pure function of
// the input multiset — the deterministic variant to use when reproducible
// artifacts matter or a consumer binary-searches rows (sparse.CSR.At).
//
// Every key's high 32 bits must be < numRows; GroupCSR panics otherwise
// (the keys are checked after the sort, where the maximum is the last key).
func GroupCSR(keys []uint64, vals []float64, numRows int) []int64 {
	SortPairs(keys, vals)
	return rowPtrFromGrouped(keys, numRows)
}

// GroupCSRPartial is the partition-only variant of GroupCSR: it runs
// counting passes over the high 4 key bytes only, stopping as soon as rows
// are grouped. Within a row, entries keep their input order (the passes are
// stable) and columns are NOT sorted — roughly half the sort cost when the
// consumer only streams rows (SpMM) and never binary-searches them.
// Correspondingly, the within-row layout depends on the input order, not
// just the input multiset; use GroupCSR where bit-reproducible output is
// required.
func GroupCSRPartial(keys []uint64, vals []float64, numRows int) []int64 {
	if len(keys) != len(vals) {
		panic("radix: keys and vals must have equal length")
	}
	sortPairsBytes(keys, vals, 4, usedBytes(keys))
	return rowPtrFromGrouped(keys, numRows)
}

// rowPtrFromGrouped builds the CSR row-pointer array over keys already
// grouped by their high 32 bits in ascending order. Row r starts at the
// first index whose key's high bits are >= r. Each boundary between
// consecutive distinct rows is found independently, so the fill parallelizes
// over positions; total extra writes across all boundaries are O(numRows)
// for the empty-row runs.
func rowPtrFromGrouped(keys []uint64, numRows int) []int64 {
	n := len(keys)
	rowPtr := make([]int64, numRows+1)
	if n == 0 {
		return rowPtr
	}
	if last := int(keys[n-1] >> 32); last >= numRows {
		panic("radix: group key row out of range")
	}
	par.For(n, 4096, func(i int) {
		r := int(keys[i] >> 32)
		prev := -1
		if i > 0 {
			prev = int(keys[i-1] >> 32)
		}
		for row := prev + 1; row <= r; row++ {
			rowPtr[row] = int64(i)
		}
	})
	for row := int(keys[n-1]>>32) + 1; row <= numRows; row++ {
		rowPtr[row] = int64(n)
	}
	return rowPtr
}

// Sort sorts a bare key slice ascending with the same parallel LSD passes
// as SortPairs. Used by the batched walker to group walk states by their
// current vertex between steps.
func Sort(keys []uint64) {
	n := len(keys)
	if n < 2 {
		return
	}
	SortBytesBuf(keys, make([]uint64, n), 0, usedBytes(keys))
}

// SortBytesBuf stable-sorts keys by bytes [loByte, hiByte) from least to most
// significant, using buf as scratch space (len(buf) must be >= len(keys)).
// The result always ends up in keys. Bytes outside the range do not
// participate: with loByte > 0 the keys come out ordered by their high bytes
// only, with equal high bytes keeping input order — the partition-only
// grouping the batched walker needs between steps, at half the passes of a
// full sort when the low half of the key is walk metadata rather than sort
// key. The buffer form exists so per-round sorts in a loop can reuse one
// scratch allocation.
func SortBytesBuf(keys, buf []uint64, loByte, hiByte int) {
	n := len(keys)
	if n < 2 || hiByte <= loByte {
		return
	}
	if len(buf) < n {
		panic("radix: scratch buffer shorter than keys")
	}
	bounds := par.Blocks(n, passGrain)
	src, dst := keys, buf[:n]
	for b := loByte; b < hiByte; b++ {
		countingPassKeys(src, dst, uint(8*b), bounds)
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// countingPassKeys is countingPass without a payload.
func countingPassKeys(src, dst []uint64, shift uint, bounds []int) {
	chunks := len(bounds) - 1
	counts := make([][256]int64, chunks)
	par.ForBlocks(bounds, func(c, lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[c][(src[i]>>shift)&0xff]++
		}
	})
	offsets := passOffsets(counts)
	par.ForBlocks(bounds, func(c, lo, hi int) {
		var next [256]int64
		for d := 0; d < 256; d++ {
			next[d] = offsets[d*chunks+c]
		}
		for i := lo; i < hi; i++ {
			d := (src[i] >> shift) & 0xff
			dst[next[d]] = src[i]
			next[d]++
		}
	})
}
