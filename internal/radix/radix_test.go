package radix

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"lightne/internal/rng"
)

func TestSortPairsMatchesStdlib(t *testing.T) {
	s := rng.New(1, 0)
	for _, n := range []int{0, 1, 2, 10, 1000, 100000} {
		keys := make([]uint64, n)
		vals := make([]float64, n)
		for i := range keys {
			keys[i] = s.Uint64() >> uint(s.Intn(60)) // vary magnitudes
			vals[i] = float64(keys[i] % 97)
		}
		type pair struct {
			k uint64
			v float64
		}
		ref := make([]pair, n)
		for i := range ref {
			ref[i] = pair{keys[i], vals[i]}
		}
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].k < ref[j].k })
		SortPairs(keys, vals)
		for i := range keys {
			if keys[i] != ref[i].k || vals[i] != ref[i].v {
				t.Fatalf("n=%d: mismatch at %d: (%d,%g) vs (%d,%g)", n, i, keys[i], vals[i], ref[i].k, ref[i].v)
			}
		}
	}
}

func TestSortPairsStability(t *testing.T) {
	// Equal keys must keep payload order (stability).
	keys := []uint64{5, 1, 5, 1, 5}
	vals := []float64{0, 10, 1, 11, 2}
	SortPairs(keys, vals)
	want := []float64{10, 11, 0, 1, 2}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("stability broken: %v", vals)
		}
	}
}

func TestSortPairsPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SortPairs(make([]uint64, 3), make([]float64, 2))
}

func TestGroupSum(t *testing.T) {
	keys := []uint64{7, 3, 7, 3, 9}
	vals := []float64{1, 2, 0.5, 3, 4}
	n := GroupSum(keys, vals)
	if n != 3 {
		t.Fatalf("groups=%d want 3", n)
	}
	got := map[uint64]float64{}
	for i := 0; i < n; i++ {
		got[keys[i]] = vals[i]
	}
	if math.Abs(got[7]-1.5) > 1e-12 || math.Abs(got[3]-5) > 1e-12 || got[9] != 4 {
		t.Fatalf("GroupSum wrong: %v", got)
	}
	// Sorted output.
	for i := 1; i < n; i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("GroupSum output not sorted")
		}
	}
}

func TestSortPairsProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		keys := make([]uint64, len(raw))
		vals := make([]float64, len(raw))
		var checksum float64
		for i, r := range raw {
			keys[i] = uint64(r)
			vals[i] = float64(r) * 0.5
			checksum += vals[i]
		}
		SortPairs(keys, vals)
		var after float64
		for i := range keys {
			after += vals[i]
			if i > 0 && keys[i-1] > keys[i] {
				return false
			}
			// Payload still matches its key.
			if vals[i] != float64(keys[i])*0.5 {
				return false
			}
		}
		return math.Abs(after-checksum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSortPairs(b *testing.B) {
	s := rng.New(9, 0)
	n := 1 << 20
	base := make([]uint64, n)
	baseV := make([]float64, n)
	for i := range base {
		base[i] = s.Uint64()
		baseV[i] = float64(i)
	}
	keys := make([]uint64, n)
	vals := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, base)
		copy(vals, baseV)
		SortPairs(keys, vals)
	}
	b.SetBytes(int64(n * 16))
}

func BenchmarkStdlibSortPairs(b *testing.B) {
	s := rng.New(9, 0)
	n := 1 << 20
	type pair struct {
		k uint64
		v float64
	}
	base := make([]pair, n)
	for i := range base {
		base[i] = pair{s.Uint64(), float64(i)}
	}
	work := make([]pair, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		sort.Slice(work, func(a, c int) bool { return work[a].k < work[c].k })
	}
	b.SetBytes(int64(n * 16))
}

func TestSortKeysMatchesStdlib(t *testing.T) {
	s := rng.New(21, 0)
	for _, n := range []int{0, 1, 3, 1000, 50000} {
		keys := make([]uint64, n)
		ref := make([]uint64, n)
		for i := range keys {
			keys[i] = s.Uint64() >> uint(s.Intn(56))
			ref[i] = keys[i]
		}
		Sort(keys)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := range keys {
			if keys[i] != ref[i] {
				t.Fatalf("n=%d mismatch at %d", n, i)
			}
		}
	}
}

func TestGroupCSR(t *testing.T) {
	s := rng.New(63, 0)
	const numRows = 300
	for _, n := range []int{0, 1, 5, 1000, 40000} {
		keys := make([]uint64, n)
		vals := make([]float64, n)
		perRow := make([]int64, numRows)
		for i := range keys {
			u := uint64(s.Intn(numRows))
			v := uint64(s.Intn(1 << 20))
			keys[i] = u<<32 | v
			vals[i] = float64(i)
			perRow[u]++
		}
		rowPtr := GroupCSR(keys, vals, numRows)
		if len(rowPtr) != numRows+1 {
			t.Fatalf("n=%d: rowPtr len %d", n, len(rowPtr))
		}
		if rowPtr[0] != 0 || rowPtr[numRows] != int64(n) {
			t.Fatalf("n=%d: endpoints %d..%d", n, rowPtr[0], rowPtr[numRows])
		}
		for r := 0; r < numRows; r++ {
			if rowPtr[r+1]-rowPtr[r] != perRow[r] {
				t.Fatalf("n=%d row %d: %d entries want %d", n, r, rowPtr[r+1]-rowPtr[r], perRow[r])
			}
			for p := rowPtr[r]; p < rowPtr[r+1]; p++ {
				if int(keys[p]>>32) != r {
					t.Fatalf("n=%d: entry %d in wrong row group", n, p)
				}
				if p > rowPtr[r] && keys[p] < keys[p-1] {
					t.Fatalf("n=%d row %d: keys not sorted", n, r)
				}
			}
		}
	}
}

func TestGroupCSREmptyEdgeRows(t *testing.T) {
	// Leading, trailing, and interior empty rows must all get correct
	// (empty) ranges from the parallel boundary fill.
	keys := []uint64{5<<32 | 1, 5<<32 | 9, 9<<32 | 0}
	vals := []float64{1, 2, 3}
	rowPtr := GroupCSR(keys, vals, 12)
	want := []int64{0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 3, 3, 3}
	if len(rowPtr) != len(want) {
		t.Fatalf("rowPtr len %d want %d", len(rowPtr), len(want))
	}
	for i := range want {
		if rowPtr[i] != want[i] {
			t.Fatalf("rowPtr[%d]=%d want %d (%v)", i, rowPtr[i], want[i], rowPtr)
		}
	}
}

func TestGroupCSRPanicsOnRowOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range row")
		}
	}()
	GroupCSR([]uint64{7 << 32}, []float64{1}, 7)
}
