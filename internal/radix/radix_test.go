package radix

import (
	"math"
	"runtime"
	"sort"
	"testing"
	"testing/quick"

	"lightne/internal/rng"
)

func TestSortPairsMatchesStdlib(t *testing.T) {
	s := rng.New(1, 0)
	for _, n := range []int{0, 1, 2, 10, 1000, 100000} {
		keys := make([]uint64, n)
		vals := make([]float64, n)
		for i := range keys {
			keys[i] = s.Uint64() >> uint(s.Intn(60)) // vary magnitudes
			vals[i] = float64(keys[i] % 97)
		}
		type pair struct {
			k uint64
			v float64
		}
		ref := make([]pair, n)
		for i := range ref {
			ref[i] = pair{keys[i], vals[i]}
		}
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].k < ref[j].k })
		SortPairs(keys, vals)
		for i := range keys {
			if keys[i] != ref[i].k || vals[i] != ref[i].v {
				t.Fatalf("n=%d: mismatch at %d: (%d,%g) vs (%d,%g)", n, i, keys[i], vals[i], ref[i].k, ref[i].v)
			}
		}
	}
}

func TestSortPairsStability(t *testing.T) {
	// Equal keys must keep payload order (stability).
	keys := []uint64{5, 1, 5, 1, 5}
	vals := []float64{0, 10, 1, 11, 2}
	SortPairs(keys, vals)
	want := []float64{10, 11, 0, 1, 2}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("stability broken: %v", vals)
		}
	}
}

func TestSortPairsPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SortPairs(make([]uint64, 3), make([]float64, 2))
}

func TestGroupSum(t *testing.T) {
	keys := []uint64{7, 3, 7, 3, 9}
	vals := []float64{1, 2, 0.5, 3, 4}
	n := GroupSum(keys, vals)
	if n != 3 {
		t.Fatalf("groups=%d want 3", n)
	}
	got := map[uint64]float64{}
	for i := 0; i < n; i++ {
		got[keys[i]] = vals[i]
	}
	if math.Abs(got[7]-1.5) > 1e-12 || math.Abs(got[3]-5) > 1e-12 || got[9] != 4 {
		t.Fatalf("GroupSum wrong: %v", got)
	}
	// Sorted output.
	for i := 1; i < n; i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("GroupSum output not sorted")
		}
	}
}

func TestSortPairsProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		keys := make([]uint64, len(raw))
		vals := make([]float64, len(raw))
		var checksum float64
		for i, r := range raw {
			keys[i] = uint64(r)
			vals[i] = float64(r) * 0.5
			checksum += vals[i]
		}
		SortPairs(keys, vals)
		var after float64
		for i := range keys {
			after += vals[i]
			if i > 0 && keys[i-1] > keys[i] {
				return false
			}
			// Payload still matches its key.
			if vals[i] != float64(keys[i])*0.5 {
				return false
			}
		}
		return math.Abs(after-checksum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSortPairs(b *testing.B) {
	s := rng.New(9, 0)
	n := 1 << 20
	base := make([]uint64, n)
	baseV := make([]float64, n)
	for i := range base {
		base[i] = s.Uint64()
		baseV[i] = float64(i)
	}
	keys := make([]uint64, n)
	vals := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(keys, base)
		copy(vals, baseV)
		SortPairs(keys, vals)
	}
	b.SetBytes(int64(n * 16))
}

func BenchmarkStdlibSortPairs(b *testing.B) {
	s := rng.New(9, 0)
	n := 1 << 20
	type pair struct {
		k uint64
		v float64
	}
	base := make([]pair, n)
	for i := range base {
		base[i] = pair{s.Uint64(), float64(i)}
	}
	work := make([]pair, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, base)
		sort.Slice(work, func(a, c int) bool { return work[a].k < work[c].k })
	}
	b.SetBytes(int64(n * 16))
}

func TestSortKeysMatchesStdlib(t *testing.T) {
	s := rng.New(21, 0)
	for _, n := range []int{0, 1, 3, 1000, 50000} {
		keys := make([]uint64, n)
		ref := make([]uint64, n)
		for i := range keys {
			keys[i] = s.Uint64() >> uint(s.Intn(56))
			ref[i] = keys[i]
		}
		Sort(keys)
		sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
		for i := range keys {
			if keys[i] != ref[i] {
				t.Fatalf("n=%d mismatch at %d", n, i)
			}
		}
	}
}

func TestGroupCSR(t *testing.T) {
	s := rng.New(63, 0)
	const numRows = 300
	for _, n := range []int{0, 1, 5, 1000, 40000} {
		keys := make([]uint64, n)
		vals := make([]float64, n)
		perRow := make([]int64, numRows)
		for i := range keys {
			u := uint64(s.Intn(numRows))
			v := uint64(s.Intn(1 << 20))
			keys[i] = u<<32 | v
			vals[i] = float64(i)
			perRow[u]++
		}
		rowPtr := GroupCSR(keys, vals, numRows)
		if len(rowPtr) != numRows+1 {
			t.Fatalf("n=%d: rowPtr len %d", n, len(rowPtr))
		}
		if rowPtr[0] != 0 || rowPtr[numRows] != int64(n) {
			t.Fatalf("n=%d: endpoints %d..%d", n, rowPtr[0], rowPtr[numRows])
		}
		for r := 0; r < numRows; r++ {
			if rowPtr[r+1]-rowPtr[r] != perRow[r] {
				t.Fatalf("n=%d row %d: %d entries want %d", n, r, rowPtr[r+1]-rowPtr[r], perRow[r])
			}
			for p := rowPtr[r]; p < rowPtr[r+1]; p++ {
				if int(keys[p]>>32) != r {
					t.Fatalf("n=%d: entry %d in wrong row group", n, p)
				}
				if p > rowPtr[r] && keys[p] < keys[p-1] {
					t.Fatalf("n=%d row %d: keys not sorted", n, r)
				}
			}
		}
	}
}

func TestGroupCSREmptyEdgeRows(t *testing.T) {
	// Leading, trailing, and interior empty rows must all get correct
	// (empty) ranges from the parallel boundary fill.
	keys := []uint64{5<<32 | 1, 5<<32 | 9, 9<<32 | 0}
	vals := []float64{1, 2, 3}
	rowPtr := GroupCSR(keys, vals, 12)
	want := []int64{0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 3, 3, 3}
	if len(rowPtr) != len(want) {
		t.Fatalf("rowPtr len %d want %d", len(rowPtr), len(want))
	}
	for i := range want {
		if rowPtr[i] != want[i] {
			t.Fatalf("rowPtr[%d]=%d want %d (%v)", i, rowPtr[i], want[i], rowPtr)
		}
	}
}

func TestGroupCSRPanicsOnRowOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range row")
		}
	}()
	GroupCSR([]uint64{7 << 32}, []float64{1}, 7)
}

// randomEdgeKeys builds n packed (row, col) keys over the given row/col
// space, with payloads tied to the key so mismatches are detectable.
func randomEdgeKeys(s *rng.Source, n, rows, cols int) ([]uint64, []float64) {
	keys := make([]uint64, n)
	vals := make([]float64, n)
	for i := range keys {
		keys[i] = uint64(s.Intn(rows))<<32 | uint64(s.Intn(cols))
		vals[i] = float64(i) + float64(keys[i]%31)/7
	}
	return keys, vals
}

// TestGroupCSRPartialMatchesGroupCSR is the differential lockdown for the
// partition-only variant: on identical input, the row pointers must be
// bit-identical to GroupCSR's and every row must hold the same multiset of
// (col, weight) pairs; only the within-row order may differ.
func TestGroupCSRPartialMatchesGroupCSR(t *testing.T) {
	s := rng.New(7, 0)
	cases := []struct{ n, rows, cols int }{
		{0, 1, 1},
		{1, 1, 1},
		{1, 100, 100},
		{5, 2, 1 << 20},
		{1000, 1, 1000},      // single row
		{1000, 317, 511},     // many duplicate keys
		{50000, 64, 1 << 30}, // wide column space: low bytes exercise all 4
		{200000, 5000, 5000},
		{3000, 100000, 3}, // mostly empty rows
	}
	type pair struct {
		col uint64
		w   float64
	}
	for _, tc := range cases {
		keys, vals := randomEdgeKeys(s, tc.n, tc.rows, tc.cols)
		fullK := append([]uint64(nil), keys...)
		fullV := append([]float64(nil), vals...)
		partK := append([]uint64(nil), keys...)
		partV := append([]float64(nil), vals...)
		fullPtr := GroupCSR(fullK, fullV, tc.rows)
		partPtr := GroupCSRPartial(partK, partV, tc.rows)
		if len(fullPtr) != len(partPtr) {
			t.Fatalf("n=%d rows=%d: rowPtr lengths differ", tc.n, tc.rows)
		}
		for r := range fullPtr {
			if fullPtr[r] != partPtr[r] {
				t.Fatalf("n=%d rows=%d: rowPtr[%d]=%d want %d", tc.n, tc.rows, r, partPtr[r], fullPtr[r])
			}
		}
		for r := 0; r < tc.rows; r++ {
			lo, hi := fullPtr[r], fullPtr[r+1]
			a := make([]pair, 0, hi-lo)
			b := make([]pair, 0, hi-lo)
			for p := lo; p < hi; p++ {
				if int(partK[p]>>32) != r {
					t.Fatalf("row %d: partial key %d grouped into wrong row", r, partK[p])
				}
				a = append(a, pair{fullK[p] & 0xffffffff, fullV[p]})
				b = append(b, pair{partK[p] & 0xffffffff, partV[p]})
			}
			less := func(ps []pair) func(i, j int) bool {
				return func(i, j int) bool {
					if ps[i].col != ps[j].col {
						return ps[i].col < ps[j].col
					}
					return ps[i].w < ps[j].w
				}
			}
			sort.Slice(a, less(a))
			sort.Slice(b, less(b))
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("row %d: multiset mismatch at %d: %v vs %v", r, i, a[i], b[i])
				}
			}
		}
	}
}

// TestGroupCSRPartialStability: within a row, entries must keep input order
// (the passes are stable), which is what makes the partial variant safe to
// differentially test and keeps duplicate-merging order well-defined.
func TestGroupCSRPartialStability(t *testing.T) {
	// All in row 3; columns deliberately unsorted with duplicates.
	cols := []uint64{9, 2, 9, 7, 2, 100, 1}
	keys := make([]uint64, len(cols))
	vals := make([]float64, len(cols))
	for i, c := range cols {
		keys[i] = 3<<32 | c
		vals[i] = float64(i)
	}
	rowPtr := GroupCSRPartial(keys, vals, 5)
	if rowPtr[3] != 0 || rowPtr[4] != int64(len(cols)) {
		t.Fatalf("rowPtr wrong: %v", rowPtr)
	}
	for i, c := range cols {
		if keys[i] != 3<<32|c || vals[i] != float64(i) {
			t.Fatalf("within-row order not preserved at %d: key %x val %g", i, keys[i], vals[i])
		}
	}
}

// TestSortGeometryInvariance: the chunk geometry now derives from par.Blocks
// (worker-count dependent), so prove sorted output identical across worker
// counts, including payload order for duplicate keys (stability is geometry
// independent).
func TestSortGeometryInvariance(t *testing.T) {
	s := rng.New(11, 0)
	n := 150000
	keys := make([]uint64, n)
	vals := make([]float64, n)
	for i := range keys {
		keys[i] = uint64(s.Intn(500))<<32 | uint64(s.Intn(500))
		vals[i] = float64(i)
	}
	var refK []uint64
	var refV []float64
	for _, procs := range []int{1, 2, 4, 8} {
		old := runtime.GOMAXPROCS(procs)
		gotK := append([]uint64(nil), keys...)
		gotV := append([]float64(nil), vals...)
		SortPairs(gotK, gotV)
		runtime.GOMAXPROCS(old)
		if refK == nil {
			refK, refV = gotK, gotV
			continue
		}
		for i := range refK {
			if gotK[i] != refK[i] || gotV[i] != refV[i] {
				t.Fatalf("GOMAXPROCS=%d: output differs at %d", procs, i)
			}
		}
	}
}

func BenchmarkGroupCSR(b *testing.B) {
	s := rng.New(3, 0)
	n, rows := 1<<20, 1<<16
	keys, vals := randomEdgeKeys(s, n, rows, 1<<20)
	work := make([]uint64, n)
	workV := make([]float64, n)
	b.SetBytes(int64(n) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, keys)
		copy(workV, vals)
		GroupCSR(work, workV, rows)
	}
}

func BenchmarkGroupCSRPartial(b *testing.B) {
	s := rng.New(3, 0)
	n, rows := 1<<20, 1<<16
	keys, vals := randomEdgeKeys(s, n, rows, 1<<20)
	work := make([]uint64, n)
	workV := make([]float64, n)
	b.SetBytes(int64(n) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, keys)
		copy(workV, vals)
		GroupCSRPartial(work, workV, rows)
	}
}

// TestSortBytesBufPartialRange: restricting the byte range must stably order
// by exactly those bytes — the wave loop sorts only the current-vertex bytes
// of packed walk states to halve the pass count.
func TestSortBytesBufPartialRange(t *testing.T) {
	s := rng.New(77, 0)
	for _, n := range []int{0, 1, 2, 63, 4096, 120000} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = s.Uint64()
		}
		type rec struct {
			k   uint64
			pos int
		}
		ref := make([]rec, n)
		for i := range ref {
			ref[i] = rec{keys[i], i}
		}
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].k>>32 < ref[j].k>>32 })
		buf := make([]uint64, n)
		SortBytesBuf(keys, buf, 4, 8) // order by the high 32 bits only
		for i := range keys {
			if keys[i] != ref[i].k {
				t.Fatalf("n=%d: partial sort mismatch at %d: %x vs %x", n, i, keys[i], ref[i].k)
			}
		}
	}
}

// TestSortBytesBufFullRangeMatchesSort: the full byte range reproduces Sort.
func TestSortBytesBufFullRangeMatchesSort(t *testing.T) {
	s := rng.New(5, 1)
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = s.Uint64() >> uint(s.Intn(40))
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	SortBytesBuf(keys, make([]uint64, len(keys)), 0, 8)
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("mismatch at %d: %x vs %x", i, keys[i], want[i])
		}
	}
}

func TestSortBytesBufPanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short scratch buffer")
		}
	}()
	SortBytesBuf(make([]uint64, 8), make([]uint64, 4), 0, 8)
}
