package ann

import (
	"runtime"
	"testing"

	"lightne/internal/dense"
	"lightne/internal/eval"
	"lightne/internal/quant"
	"lightne/internal/rng"
)

// clusteredMatrix builds an embedding with planted structure — the regime
// real network embeddings live in (community structure → direction
// clusters): nClusters random unit centers, each row a center plus
// gaussian noise of relative scale sigma.
func clusteredMatrix(n, d, nClusters int, sigma float64, seed uint64) *dense.Matrix {
	src := rng.New(seed, 0)
	centers := dense.NewMatrix(nClusters, d)
	centers.FillGaussian(seed + 1)
	x := dense.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c := centers.Row(src.Intn(nClusters))
		row := x.Row(i)
		for j := 0; j < d; j++ {
			row[j] = c[j] + sigma*src.NormFloat64()
		}
	}
	return x
}

// recallAgainstExact averages recall@k of the IVF search against
// eval.NearestNeighbors ground truth over nq evenly spread queries, and
// also returns the mean scanned-candidate count.
func recallAgainstExact(t *testing.T, x *dense.Matrix, v Vectors, ix *Index, nq, k, nprobe int) (recall float64, meanScanned float64) {
	t.Helper()
	n, _ := v.Shape()
	var hits, totalScanned int
	for qi := 0; qi < nq; qi++ {
		q := qi * n / nq
		want, err := eval.NearestNeighbors(x, q, k)
		if err != nil {
			t.Fatal(err)
		}
		truth := make(map[int]bool, len(want))
		for _, nb := range want {
			truth[nb.Vertex] = true
		}
		got, _, scanned, err := ix.Search(v, q, k, nprobe)
		if err != nil {
			t.Fatal(err)
		}
		totalScanned += scanned
		for _, id := range got {
			if truth[id] {
				hits++
			}
		}
	}
	return float64(hits) / float64(nq*k), float64(totalScanned) / float64(nq)
}

// TestIVFRecallClustered is the core differential guarantee on realistic
// (clustered) data: recall@10 >= 0.95 against the exact eval scan while
// touching under a tenth of the rows per query.
func TestIVFRecallClustered(t *testing.T) {
	const n, d, k = 20_000, 16, 10
	x := clusteredMatrix(n, d, 64, 0.15, 7)
	e := quant.ToFloat32(x)
	ix, err := Build(e, Config{NList: 128, NProbe: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	recall, scanned := recallAgainstExact(t, x, e, ix, 50, k, 0)
	t.Logf("clustered: recall@%d = %.3f, scanned %.0f/%d rows/query", k, recall, scanned, n-1)
	if recall < 0.95 {
		t.Fatalf("recall@%d = %.3f, want >= 0.95", k, recall)
	}
	if scanned > float64(n-1)/10 {
		t.Fatalf("scanned %.0f rows/query, want <= %.0f (10x fewer than exact)", scanned, float64(n-1)/10)
	}
}

// TestIVFRecallRandom drives the worst case for a coarse quantizer —
// unclustered iid gaussian rows, where neighbors are weakly correlated with
// any partition — and pins that a wider probe still reaches 0.95 recall.
func TestIVFRecallRandom(t *testing.T) {
	const n, d, k = 4_000, 8, 10
	x := dense.NewMatrix(n, d)
	x.FillGaussian(11)
	e := quant.ToFloat32(x)
	ix, err := Build(e, Config{NList: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	recall, scanned := recallAgainstExact(t, x, e, ix, 50, k, 16)
	t.Logf("random: recall@%d = %.3f, scanned %.0f/%d rows/query", k, recall, scanned, n-1)
	if recall < 0.95 {
		t.Fatalf("recall@%d = %.3f, want >= 0.95", k, recall)
	}
	if scanned >= float64(n-1) {
		t.Fatalf("scanned %.0f rows/query — not sub-linear", scanned)
	}
}

// TestIVFRecall100k is the acceptance-scale run: a >= 100k-vertex snapshot
// where IVF must hold recall@10 >= 0.95 with >= 10x fewer distance
// computations than the exact scan.
func TestIVFRecall100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-row build in -short mode")
	}
	const n, d, k = 100_000, 32, 10
	x := clusteredMatrix(n, d, 200, 0.12, 19)
	e := quant.ToFloat32(x)
	ix, err := Build(e, Config{NList: 256, NProbe: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	recall, scanned := recallAgainstExact(t, x, e, ix, 30, k, 0)
	t.Logf("100k: recall@%d = %.3f, scanned %.0f/%d rows/query (%.1fx fewer)",
		k, recall, scanned, n-1, float64(n-1)/scanned)
	if recall < 0.95 {
		t.Fatalf("recall@%d = %.3f, want >= 0.95", k, recall)
	}
	if scanned > float64(n-1)/10 {
		t.Fatalf("scanned %.0f rows/query, want <= %.0f (>=10x fewer than exact)", scanned, float64(n-1)/10)
	}
}

// TestIVFInt8 verifies the index runs end to end on the int8 codec — build,
// routing and candidate scan all through the quantized store — and stays
// close to the int8 exact scan (measuring IVF loss, not quantization loss).
func TestIVFInt8(t *testing.T) {
	const n, d, k = 10_000, 16, 10
	x := clusteredMatrix(n, d, 32, 0.15, 23)
	e := quant.ToInt8(x)
	ix, err := Build(e, Config{NList: 64, NProbe: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var hits, queries int
	for qi := 0; qi < 40; qi++ {
		q := qi * n / 40
		wantIdx, _, err := e.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		truth := make(map[int]bool, len(wantIdx))
		for _, id := range wantIdx {
			truth[id] = true
		}
		got, sims, scanned, err := ix.Search(e, q, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if scanned >= n-1 {
			t.Fatalf("query %d scanned every row", q)
		}
		for i := 1; i < len(sims); i++ {
			if sims[i] > sims[i-1] {
				t.Fatalf("query %d: similarities not sorted: %v", q, sims)
			}
		}
		for _, id := range got {
			if truth[id] {
				hits++
			}
		}
		queries++
	}
	recall := float64(hits) / float64(queries*k)
	t.Logf("int8: recall@%d = %.3f vs int8 exact scan", k, recall)
	if recall < 0.95 {
		t.Fatalf("int8 recall@%d = %.3f, want >= 0.95", k, recall)
	}
}

// TestIVFPostingListsPartition checks the CSR layout files every row
// exactly once, in ascending order within each list.
func TestIVFPostingListsPartition(t *testing.T) {
	const n, d = 5_000, 8
	x := clusteredMatrix(n, d, 16, 0.2, 31)
	e := quant.ToFloat32(x)
	ix, err := Build(e, Config{NList: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.start[0] != 0 || ix.start[ix.nlist] != int64(n) || len(ix.ids) != n {
		t.Fatalf("CSR shape: start[0]=%d start[nlist]=%d len(ids)=%d", ix.start[0], ix.start[ix.nlist], len(ix.ids))
	}
	seen := make([]bool, n)
	for c := 0; c < ix.nlist; c++ {
		list := ix.ids[ix.start[c]:ix.start[c+1]]
		for i, id := range list {
			if seen[id] {
				t.Fatalf("row %d filed twice", id)
			}
			seen[id] = true
			if i > 0 && list[i-1] >= id {
				t.Fatalf("list %d not in ascending row order", c)
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("row %d missing from every posting list", id)
		}
	}
	st := ix.Stats()
	if st.NList != 32 || st.Rows != n || st.MinList < 0 || st.MaxList < st.MinList {
		t.Fatalf("stats %+v", st)
	}
	if st.MemoryBytes != ix.MemoryBytes() || ix.MemoryBytes() <= 0 {
		t.Fatalf("memory accounting: %d vs %d", st.MemoryBytes, ix.MemoryBytes())
	}
}

// TestIVFDeterministicBuild pins that a fixed (config, GOMAXPROCS) build is
// bit-identical — centroids, offsets and posting lists.
func TestIVFDeterministicBuild(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	x := clusteredMatrix(3_000, 8, 12, 0.2, 41)
	e := quant.ToFloat32(x)
	cfg := Config{NList: 24, Seed: 17}
	a, err := Build(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.centroids {
		if a.centroids[i] != b.centroids[i] {
			t.Fatalf("centroid word %d differs across identical builds", i)
		}
	}
	for i := range a.start {
		if a.start[i] != b.start[i] {
			t.Fatalf("start[%d] differs", i)
		}
	}
	for i := range a.ids {
		if a.ids[i] != b.ids[i] {
			t.Fatalf("ids[%d] differs", i)
		}
	}
}

func TestIVFErrorsAndEdges(t *testing.T) {
	x := clusteredMatrix(200, 4, 4, 0.2, 3)
	e := quant.ToFloat32(x)
	ix, err := Build(e, Config{NList: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ix.Search(e, -1, 3, 0); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, _, _, err := ix.Search(e, 200, 3, 0); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, _, _, err := ix.Search(e, 0, 0, 0); err == nil {
		t.Fatal("expected k error")
	}
	other := quant.ToFloat32(clusteredMatrix(100, 4, 4, 0.2, 3))
	if _, _, _, err := ix.Search(other, 0, 3, 0); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
	// Probing every list is an exact scan: k > rows returns rows-1 results.
	ids, _, scanned, err := ix.Search(e, 0, 500, ix.NList())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 199 || scanned != 200 {
		t.Fatalf("full probe: %d results, %d scanned", len(ids), scanned)
	}
	// WithNProbe clamps and shares data.
	wide := ix.WithNProbe(10_000)
	if wide.NProbe() != ix.NList() {
		t.Fatalf("WithNProbe clamp: %d", wide.NProbe())
	}
	narrow := ix.WithNProbe(-3)
	if narrow.NProbe() != 1 {
		t.Fatalf("WithNProbe floor: %d", narrow.NProbe())
	}
	if ix.NProbe() == narrow.NProbe() && ix.NProbe() != 1 {
		t.Fatal("WithNProbe mutated the receiver")
	}
	// NList larger than rows clamps; single-row embeddings index fine.
	one := quant.ToFloat32(clusteredMatrix(1, 4, 1, 0, 5))
	tiny, err := Build(one, Config{NList: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ids, _, _, err = tiny.Search(one, 0, 3, 0)
	if err != nil || len(ids) != 0 {
		t.Fatalf("single-row search: ids=%v err=%v", ids, err)
	}
	if _, err := Build(e, Config{}); err != nil {
		t.Fatalf("all-default build: %v", err)
	}
}
