// Package ann implements sub-linear approximate nearest-neighbor search for
// the serving layer: an IVF (inverted-file) index in the FAISS/LIGHTNE 2.0
// tradition — a coarse spherical k-means quantizer over the (quantized)
// embedding rows, per-centroid posting lists in a flat CSR layout, and a
// query path that scans only the rows filed under the nprobe centroids
// nearest the query.
//
// The exact scan the server started with is O(n·d) per query; the IVF scan
// is O(nlist·d) routing plus O((nprobe/nlist)·n·d) candidate distances —
// with the default nlist ≈ √n and nprobe ≈ nlist/16 that is a ~16× cut in
// distance computations, at a recall@10 ≥ 0.95 on clustered embeddings
// (pinned by the package's differential tests against eval.NearestNeighbors).
//
// An Index is immutable after Build, so it can sit beside its embedding in
// a serving snapshot behind one atomic pointer: the pair is constructed at
// snapshot-publish time and swapped together, preserving the lock-free read
// path and zero-pause refresh of the serving layer. The index never copies
// the vectors — posting lists hold row ids, and every distance computation
// goes back through the quantized store (quant.Embedding), so the int8
// codec's 8× memory saving survives end to end.
package ann

import (
	"fmt"
	"math"

	"lightne/internal/par"
	"lightne/internal/quant"
	"lightne/internal/rng"
)

// Vectors is the row substrate an index is built over and queried against —
// a structural subset of quant.Embedding, so both serving codecs satisfy it
// without adapters. Implementations must be safe for concurrent readers.
type Vectors interface {
	// Shape returns (rows, cols).
	Shape() (rows, cols int)
	// Cosine is the similarity between stored rows u and v.
	Cosine(u, v int) float64
	// DequantTo writes row v as float32 into dst (len >= cols); used for
	// centroid training and query-to-centroid routing.
	DequantTo(dst []float32, v int)
}

// Defaults for Config fields left zero.
const (
	// DefaultIters is the k-means refinement iteration count. Spherical
	// k-means converges fast on embedding data; 8 Lloyd rounds over the
	// training sample is past the point of diminishing recall returns.
	DefaultIters = 8
	// DefaultTrainPerList is the training-sample budget per centroid.
	// 64 points per centroid is the standard IVF regime: enough to place
	// centroids stably, small enough that training cost stays O(√n · n^½·d).
	DefaultTrainPerList = 64
	// DefaultMinRows is the snapshot size below which serving should prefer
	// the exact scan: under ~4k rows the full scan is already microseconds
	// and IVF routing overhead plus recall loss buys nothing.
	DefaultMinRows = 4096
)

// Config tunes index construction and the default query-time probe width.
type Config struct {
	// Enabled gates ANN at the serving layer; Build itself ignores it
	// (callers that reached Build have already decided to build).
	Enabled bool
	// NList is the number of coarse centroids (posting lists). <= 0 picks
	// ceil(sqrt(rows)), the classical IVF balance point between routing
	// cost (∝ NList) and list-scan cost (∝ rows/NList).
	NList int
	// NProbe is the default number of posting lists scanned per query.
	// <= 0 picks max(1, NList/16). Raising it trades throughput for recall;
	// Search also accepts a per-call override.
	NProbe int
	// Iters is the number of k-means refinement rounds (default DefaultIters).
	Iters int
	// TrainPerList bounds the training sample at TrainPerList·NList rows
	// (default DefaultTrainPerList); the full row set is always assigned to
	// the final centroids regardless.
	TrainPerList int
	// MinRows is the snapshot size below which the serving layer skips ANN
	// and keeps the exact scan (default DefaultMinRows). Like Enabled it is
	// a serving-layer gate, not a Build concern.
	MinRows int
	// Seed makes training deterministic for a fixed worker count.
	Seed uint64
}

// rng stream tags separating the index's draw families from each other and
// from the samplers'.
const (
	initSeedTag   = 0x1f5a11ce
	reseedSeedTag = 0x7e5eeded
)

// Index is an immutable IVF index over the rows of one embedding. All
// methods are safe for concurrent use; an Index holds no pointer to the
// vectors it was built from — pass the same Vectors to Search.
type Index struct {
	rows, dims int
	nlist      int
	nprobe     int       // default probe width
	centroids  []float32 // nlist × dims, rows unit-normalized
	start      []int64   // nlist+1 CSR offsets into ids
	ids        []int32   // row ids grouped by assigned centroid
}

// Build constructs an IVF index over v: spherical k-means on a strided
// training sample (parallel assignment, deterministic per-centroid
// accumulation), then one parallel assignment pass filing every row into
// its centroid's posting list with the count/scan/fill idiom.
func Build(v Vectors, cfg Config) (*Index, error) {
	n, d := v.Shape()
	if n <= 0 || d <= 0 {
		return nil, fmt.Errorf("ann: cannot index a %dx%d embedding", n, d)
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("ann: %d rows exceed the int32 posting-list id space", n)
	}
	nlist := cfg.NList
	if nlist <= 0 {
		nlist = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if nlist > n {
		nlist = n
	}
	nprobe := cfg.NProbe
	if nprobe <= 0 {
		nprobe = nlist / 16
		if nprobe < 1 {
			nprobe = 1
		}
	}
	if nprobe > nlist {
		nprobe = nlist
	}
	iters := cfg.Iters
	if iters <= 0 {
		iters = DefaultIters
	}
	perList := cfg.TrainPerList
	if perList <= 0 {
		perList = DefaultTrainPerList
	}

	centroids := train(v, n, d, nlist, iters, perList, cfg.Seed)

	// File every row: parallel nearest-centroid assignment, then group the
	// assignments into CSR posting lists.
	assign := make([]int32, n)
	assignRows(v, assign, centroids, d, nlist)
	start, ids := groupAssign(assign, nlist)

	return &Index{
		rows: n, dims: d,
		nlist: nlist, nprobe: nprobe,
		centroids: centroids,
		start:     start,
		ids:       ids,
	}, nil
}

// train runs spherical k-means over a strided sample of v's rows and
// returns the unit-normalized centroid matrix (nlist × d).
func train(v Vectors, n, d, nlist, iters, perList int, seed uint64) []float32 {
	m := nlist * perList
	if m > n {
		m = n
	}
	// Materialize the training rows, unit-normalized: sample i is row i·n/m
	// (distinct for m <= n; stride order is irrelevant to k-means).
	train := make([]float32, m*d)
	par.ForRange(m, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := train[i*d : (i+1)*d]
			v.DequantTo(row, i*n/m)
			normalize(row)
		}
	})

	// Init: nlist distinct training rows via a seeded partial Fisher-Yates.
	centroids := make([]float32, nlist*d)
	perm := make([]int32, m)
	for i := range perm {
		perm[i] = int32(i)
	}
	src := rng.New(seed, initSeedTag)
	for i := 0; i < nlist; i++ {
		j := i + src.Intn(m-i)
		perm[i], perm[j] = perm[j], perm[i]
		copy(centroids[i*d:(i+1)*d], train[int(perm[i])*d:(int(perm[i])+1)*d])
	}

	assign := make([]int32, m)
	for it := 0; it < iters; it++ {
		assignDense(train, assign, centroids, d, nlist)
		start, ids := groupAssign(assign, nlist)
		// Per-centroid accumulation: members are visited in ascending row
		// order (groupAssign fills stably), so the float sums — and thus the
		// centroids — are deterministic for a fixed (seed, GOMAXPROCS).
		empty := make([]bool, nlist)
		par.For(nlist, 1, func(c int) {
			members := ids[start[c]:start[c+1]]
			if len(members) == 0 {
				empty[c] = true
				return
			}
			sum := make([]float64, d)
			for _, r := range members {
				row := train[int(r)*d : (int(r)+1)*d]
				for j, x := range row {
					sum[j] += float64(x)
				}
			}
			out := centroids[c*d : (c+1)*d]
			var nn float64
			for _, s := range sum {
				nn += s * s
			}
			if nn == 0 {
				empty[c] = true
				return
			}
			inv := 1 / math.Sqrt(nn)
			for j, s := range sum {
				out[j] = float32(s * inv)
			}
		})
		// Reseed empty centroids from a deterministic training row so no
		// posting list is permanently dead.
		for c := 0; c < nlist; c++ {
			if !empty[c] {
				continue
			}
			r := int(rng.Hash64(seed^reseedSeedTag, uint64(it)<<32|uint64(c)) % uint64(m))
			copy(centroids[c*d:(c+1)*d], train[r*d:(r+1)*d])
		}
	}
	return centroids
}

// assignDense writes each materialized row's nearest centroid (max dot; the
// rows and centroids are unit vectors, so dot = cosine) into assign.
func assignDense(vecs []float32, assign []int32, centroids []float32, d, nlist int) {
	par.ForRange(len(assign), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			assign[i] = nearestCentroid(vecs[i*d:(i+1)*d], centroids, d, nlist)
		}
	})
}

// assignRows is assignDense against rows still in their quantized store:
// each chunk dequantizes through a reused buffer. Normalization is skipped —
// argmax of the dot is scale-invariant, so raw dequantized rows route
// identically to unit rows.
func assignRows(v Vectors, assign []int32, centroids []float32, d, nlist int) {
	par.ForRange(len(assign), 64, func(lo, hi int) {
		buf := make([]float32, d)
		for i := lo; i < hi; i++ {
			v.DequantTo(buf, i)
			assign[i] = nearestCentroid(buf, centroids, d, nlist)
		}
	})
}

// nearestCentroid returns the centroid with the largest dot product against
// row; ties break toward the lower centroid id.
func nearestCentroid(row []float32, centroids []float32, d, nlist int) int32 {
	best, bestDot := int32(0), math.Inf(-1)
	for c := 0; c < nlist; c++ {
		cent := centroids[c*d : (c+1)*d]
		var dot float64
		for j, x := range row {
			dot += float64(x) * float64(cent[j])
		}
		if dot > bestDot {
			best, bestDot = int32(c), dot
		}
	}
	return best
}

// groupAssign builds CSR posting lists from an assignment vector with the
// repo's standard count/scan/fill: per-block centroid counts, block-major
// exclusive offsets, then a stable parallel scatter — row ids within a list
// come out in ascending order.
func groupAssign(assign []int32, nlist int) (start []int64, ids []int32) {
	n := len(assign)
	bounds := par.Blocks(n, 4096)
	nb := len(bounds) - 1
	counts := make([]int64, nb*nlist)
	par.ForBlocks(bounds, func(b, lo, hi int) {
		row := counts[b*nlist : (b+1)*nlist]
		for i := lo; i < hi; i++ {
			row[assign[i]]++
		}
	})
	// start[c] = total of all blocks' counts for centroids < c; the scatter
	// offset for (block b, centroid c) additionally skips blocks < b.
	start = make([]int64, nlist+1)
	offs := make([]int64, nb*nlist)
	var run int64
	for c := 0; c < nlist; c++ {
		start[c] = run
		for b := 0; b < nb; b++ {
			offs[b*nlist+c] = run
			run += counts[b*nlist+c]
		}
	}
	start[nlist] = run
	ids = make([]int32, n)
	par.ForBlocks(bounds, func(b, lo, hi int) {
		row := offs[b*nlist : (b+1)*nlist]
		for i := lo; i < hi; i++ {
			c := assign[i]
			ids[row[c]] = int32(i)
			row[c]++
		}
	})
	return start, ids
}

// normalize scales row to unit L2 norm in place (zero rows stay zero).
func normalize(row []float32) {
	var s float64
	for _, x := range row {
		s += float64(x) * float64(x)
	}
	if s == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(s))
	for j := range row {
		row[j] *= inv
	}
}

// Search returns the ids and cosine similarities of the k rows most similar
// to row q (excluding q), scanning the posting lists of the nprobe
// centroids nearest q; nprobe <= 0 uses the index default. The third result
// is the number of row-distance computations performed — the work an exact
// scan would spend rows-1 on — for observability and the differential
// benchmarks. v must be the embedding the index was built from.
func (ix *Index) Search(v Vectors, q, k, nprobe int) ([]int, []float64, int, error) {
	rows, d := v.Shape()
	if rows != ix.rows || d != ix.dims {
		return nil, nil, 0, fmt.Errorf("ann: index built over %dx%d rows queried with %dx%d embedding", ix.rows, ix.dims, rows, d)
	}
	if q < 0 || q >= ix.rows {
		return nil, nil, 0, fmt.Errorf("ann: row %d out of range", q)
	}
	if k <= 0 {
		return nil, nil, 0, fmt.Errorf("ann: k must be positive")
	}
	if nprobe <= 0 {
		nprobe = ix.nprobe
	}
	if nprobe > ix.nlist {
		nprobe = ix.nlist
	}

	// Route: score every centroid against the query row and keep the top
	// nprobe (the shared top-k heap; centroid count is small, so this is
	// the cheap O(nlist·d) part).
	buf := make([]float32, d)
	v.DequantTo(buf, q)
	cs := make([]float64, ix.nlist)
	par.For(ix.nlist, 64, func(c int) {
		cent := ix.centroids[c*d : (c+1)*d]
		var dot float64
		for j, x := range buf {
			dot += float64(x) * float64(cent[j])
		}
		cs[c] = dot
	})
	probe, _ := quant.SelectTopK(cs, nprobe)

	// Scan: gather the probed lists' candidates and compute similarities in
	// parallel through the quantized store (int8 stays in the integer
	// domain — the same kernel the exact scan uses).
	total := 0
	for _, c := range probe {
		total += int(ix.start[c+1] - ix.start[c])
	}
	cands := make([]int32, 0, total)
	for _, c := range probe {
		cands = append(cands, ix.ids[ix.start[c]:ix.start[c+1]]...)
	}
	sims := make([]float64, len(cands))
	par.For(len(cands), 256, func(i int) {
		id := int(cands[i])
		if id == q {
			sims[i] = math.Inf(-1)
			return
		}
		sims[i] = v.Cosine(q, id)
	})
	pos, vals := quant.SelectTopK(sims, k)
	out := make([]int, len(pos))
	for i, p := range pos {
		out[i] = int(cands[p])
	}
	return out, vals, len(cands), nil
}

// WithNProbe returns a shallow copy whose default probe width is p, sharing
// all index data with the receiver — the way one build is served at several
// points of the recall/throughput frontier.
func (ix *Index) WithNProbe(p int) *Index {
	cp := *ix
	if p < 1 {
		p = 1
	}
	if p > cp.nlist {
		p = cp.nlist
	}
	cp.nprobe = p
	return &cp
}

// NList returns the number of posting lists (coarse centroids).
func (ix *Index) NList() int { return ix.nlist }

// NProbe returns the default probe width.
func (ix *Index) NProbe() int { return ix.nprobe }

// Rows returns the number of indexed rows.
func (ix *Index) Rows() int { return ix.rows }

// Dims returns the embedding dimension the index was built for.
func (ix *Index) Dims() int { return ix.dims }

// MemoryBytes is the index's resident size: centroids, offsets and posting
// lists (the vectors themselves live in the embedding store).
func (ix *Index) MemoryBytes() int64 {
	return int64(len(ix.centroids))*4 + int64(len(ix.start))*8 + int64(len(ix.ids))*4
}

// Stats describes an index's layout for logs and health endpoints.
type Stats struct {
	Rows, Dims    int
	NList, NProbe int
	MinList       int // smallest posting list
	MaxList       int // largest posting list
	EmptyLists    int
	MemoryBytes   int64
}

// Stats summarizes the index layout.
func (ix *Index) Stats() Stats {
	st := Stats{
		Rows: ix.rows, Dims: ix.dims,
		NList: ix.nlist, NProbe: ix.nprobe,
		MinList:     math.MaxInt,
		MemoryBytes: ix.MemoryBytes(),
	}
	for c := 0; c < ix.nlist; c++ {
		l := int(ix.start[c+1] - ix.start[c])
		if l == 0 {
			st.EmptyLists++
		}
		if l < st.MinList {
			st.MinList = l
		}
		if l > st.MaxList {
			st.MaxList = l
		}
	}
	if ix.nlist == 0 {
		st.MinList = 0
	}
	return st
}
