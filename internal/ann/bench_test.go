package ann

import (
	"fmt"
	"testing"

	"lightne/internal/quant"
)

// BenchmarkANN compares the exact scan against IVF search at several probe
// widths on a clustered snapshot — the recall/latency frontier `make
// bench-ann` reports. Query rows rotate so the benchmark is not a cache
// microbenchmark of one posting list.
func BenchmarkANN(b *testing.B) {
	const n, d, k = 50_000, 32, 10
	x := clusteredMatrix(n, d, 128, 0.15, 7)
	e := quant.ToFloat32(x)
	ix, err := Build(e, Config{NList: 256, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := e.TopK(i%n, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, nprobe := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("ivf/nprobe=%d", nprobe), func(b *testing.B) {
			var scanned int
			for i := 0; i < b.N; i++ {
				_, _, s, err := ix.Search(e, i%n, k, nprobe)
				if err != nil {
					b.Fatal(err)
				}
				scanned += s
			}
			b.ReportMetric(float64(scanned)/float64(b.N), "rows/query")
		})
	}
}

// BenchmarkANNBuild measures index construction — the cost added to every
// snapshot publish when -ann is on.
func BenchmarkANNBuild(b *testing.B) {
	const n, d = 50_000, 32
	x := clusteredMatrix(n, d, 128, 0.15, 7)
	e := quant.ToFloat32(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(e, Config{NList: 256, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}
