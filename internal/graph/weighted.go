package graph

import (
	"fmt"
	"math/bits"
	"sort"

	"lightne/internal/par"
	"lightne/internal/rng"
)

// Weighted graphs. The paper's formulas are stated for weighted adjacency
// throughout — the downsampling probability is p_e = min(1, C·A_uv·(1/d_u +
// 1/d_v)) with weighted degrees, and vol(G) is the total weight — so the
// substrate supports edge weights natively: weights ride alongside the CSR
// edge array, weighted degrees (strengths) replace counts where the math
// says so, and random-walk steps draw neighbors proportionally to weight in
// O(1) via per-vertex alias tables (Vose's method), preserving the paper's
// "one random draw per walk step" cost model.
//
// Weighted adjacency is not combinable with parallel-byte compression (the
// weights would dominate memory anyway); FromWeightedEdges rejects the
// combination.

// WeightedEdge is a directed arc with a positive weight.
type WeightedEdge struct {
	U, V uint32
	W    float64
}

// aliasTables holds per-edge alias data aligned with the CSR edge array:
// for vertex u's slot i, prob[off+i] is the acceptance probability and
// alias[off+i] the fallback local index.
type aliasTables struct {
	prob  []float64
	alias []uint32
}

// FromWeightedEdges builds a weighted graph. Duplicate arcs (after optional
// symmetrization) have their weights summed; non-positive weights are
// rejected.
func FromWeightedEdges(n int, arcs []WeightedEdge, opt Options) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if opt.Compress {
		return nil, fmt.Errorf("graph: weighted graphs do not support parallel-byte compression")
	}
	work := make([]WeightedEdge, 0, len(arcs)*2)
	for _, e := range arcs {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: arc (%d,%d) exceeds vertex count %d", e.U, e.V, n)
		}
		if e.W <= 0 {
			return nil, fmt.Errorf("graph: arc (%d,%d) has non-positive weight %g", e.U, e.V, e.W)
		}
		if opt.RemoveSelfLoops && e.U == e.V {
			continue
		}
		work = append(work, e)
		if opt.Symmetrize && e.U != e.V {
			work = append(work, WeightedEdge{e.V, e.U, e.W})
		}
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].U != work[j].U {
			return work[i].U < work[j].U
		}
		return work[i].V < work[j].V
	})
	// Merge duplicates by summing weights (always, regardless of Dedup:
	// a weighted multigraph is equivalent to its weight-summed simple form).
	merged := work[:0]
	for _, e := range work {
		if len(merged) > 0 && merged[len(merged)-1].U == e.U && merged[len(merged)-1].V == e.V {
			merged[len(merged)-1].W += e.W
			continue
		}
		merged = append(merged, e)
	}
	offsets := make([]int64, n+1)
	edges := make([]uint32, len(merged))
	weights := make([]float64, len(merged))
	for i, e := range merged {
		offsets[e.U+1]++
		edges[i] = e.V
		weights[i] = e.W
	}
	for u := 0; u < n; u++ {
		offsets[u+1] += offsets[u]
	}
	g := &Graph{n: n, offsets: offsets, edges: edges, weights: weights}
	g.buildAlias()
	return g, nil
}

// aliasScratch is the per-worker workspace of buildAlias: the scaled
// probabilities and the small/large worklists of Vose's construction. One
// vertex at a time borrows it; buildAlias sizes it to the maximum degree up
// front, so construction allocates a constant number of times regardless of
// vertex count (pinned by TestBuildAliasAllocs).
type aliasScratch struct {
	scaled []float64
	small  []uint32
	large  []uint32
}

// grow ensures capacity for a vertex of degree d.
func (sc *aliasScratch) grow(d int) {
	if cap(sc.scaled) < d {
		sc.scaled = make([]float64, d)
		sc.small = make([]uint32, 0, d)
		sc.large = make([]uint32, 0, d)
	}
}

// buildAlias constructs per-vertex alias tables (Vose's method) in parallel.
// Workers reuse one aliasScratch each (par.WorkerFor hands out dense worker
// indices), pre-sized to the maximum degree, so the loop allocates nothing
// per vertex.
func (g *Graph) buildAlias() {
	m := len(g.edges)
	g.alias = &aliasTables{
		prob:  make([]float64, m),
		alias: make([]uint32, m),
	}
	maxD := 0
	for u := 0; u < g.n; u++ {
		if d := int(g.offsets[u+1] - g.offsets[u]); d > maxD {
			maxD = d
		}
	}
	scratch := make([]aliasScratch, par.Workers())
	par.WorkerFor(g.n, 64, func(worker, lo, hi int) {
		sc := &scratch[worker]
		sc.grow(maxD)
		for ui := lo; ui < hi; ui++ {
			g.buildAliasRow(ui, sc)
		}
	})
}

// buildAliasRow fills vertex ui's alias-table row using the worker scratch.
func (g *Graph) buildAliasRow(ui int, sc *aliasScratch) {
	lo, hi := g.offsets[ui], g.offsets[ui+1]
	d := int(hi - lo)
	if d == 0 {
		return
	}
	w := g.weights[lo:hi]
	var total float64
	for _, x := range w {
		total += x
	}
	prob := g.alias.prob[lo:hi]
	alias := g.alias.alias[lo:hi]
	sc.grow(d)
	scaled := sc.scaled[:d]
	small := sc.small[:0]
	large := sc.large[:0]
	for i, x := range w {
		scaled[i] = x * float64(d) / total
		if scaled[i] < 1 {
			small = append(small, uint32(i))
		} else {
			large = append(large, uint32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	for _, l := range large {
		prob[l] = 1
	}
	for _, s := range small {
		prob[s] = 1
	}
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// EdgeWeight returns the weight of u's i-th edge (1 for unweighted graphs).
func (g *Graph) EdgeWeight(u uint32, i int) float64 {
	if g.weights == nil {
		return 1
	}
	return g.weights[g.offsets[u]+int64(i)]
}

// Strength returns the weighted degree Σ_v A_uv of u (equal to Degree for
// unweighted graphs).
func (g *Graph) Strength(u uint32) float64 {
	if g.weights == nil {
		return float64(g.Degree(u))
	}
	var s float64
	for p := g.offsets[u]; p < g.offsets[u+1]; p++ {
		s += g.weights[p]
	}
	return s
}

// Strengths returns all weighted degrees. For unweighted graphs this is
// identical to Degrees.
func (g *Graph) Strengths() []float64 {
	if g.weights == nil {
		return g.Degrees()
	}
	out := make([]float64, g.n)
	par.For(g.n, 256, func(u int) {
		out[u] = g.Strength(uint32(u))
	})
	return out
}

// TotalWeight returns vol(G): the sum of all arc weights (NumEdges for
// unweighted graphs). The weighted sum uses the deterministic fixed-geometry
// reduction so the volume — which scales every sparsifier entry — is
// bit-identical across worker counts, keeping the weighted pipeline's
// determinism contract intact end to end.
func (g *Graph) TotalWeight() float64 {
	if g.weights == nil {
		return float64(g.NumEdges())
	}
	return par.ReduceFloat64Det(len(g.weights), func(i int) float64 { return g.weights[i] })
}

// weightedRandomNeighbor draws a neighbor of u proportionally to edge
// weight in O(1) using the alias table.
func (g *Graph) weightedRandomNeighbor(u uint32, r *rng.Source) (uint32, bool) {
	lo, hi := g.offsets[u], g.offsets[u+1]
	d := int(hi - lo)
	if d == 0 {
		return 0, false
	}
	i := r.Intn(d)
	if r.Float64() >= g.alias.prob[lo+int64(i)] {
		i = int(g.alias.alias[lo+int64(i)])
	}
	return g.edges[lo+int64(i)], true
}

// aliasCoinScale converts the low 32 bits of a keyed draw into a uniform
// fixed-point fraction in [0, 1): coin = low32 / 2^32.
const aliasCoinScale = 1.0 / (1 << 32)

// aliasPick resolves one alias-table draw from a single 64-bit uniform
// value: the slot comes from the high bits via the multiply-shift reduction
// ⌊draw·d/2^64⌋ and the acceptance coin from the low 32 bits as a
// fixed-point fraction. prob[i] == 1 slots always accept because the coin
// is strictly below 1.
func aliasPick(prob []float64, alias []uint32, draw uint64) int {
	hi, _ := bits.Mul64(draw, uint64(len(prob)))
	i := int(hi)
	if float64(uint32(draw))*aliasCoinScale >= prob[i] {
		i = int(alias[i])
	}
	return i
}

// AliasNeighbor draws a neighbor of u proportionally to edge weight from a
// SINGLE 64-bit uniform value (typically rng.Hash64 keyed by the caller's
// draw identity): the slot is the multiply-shift reduction of the high bits
// and the Vose acceptance coin is the low 32 bits as a fixed-point fraction.
// The draw is stateless — the result is a pure function of (graph, draw) —
// which is what lets the batched walker keep its bit-identical-across-
// geometry guarantee on weighted graphs: one keyed hash per walk step, no
// RNG stream to advance. Slot selection reuses the low bits only through the
// 128-bit product's carry, so slot/coin correlation is bounded by d/2^32 —
// far below the sampler's statistical noise, same argument as the unweighted
// multiply-shift bias (see sampler/wave.go). Returns (0, false) for
// isolated vertices. Panics if the graph is unweighted (no alias tables).
func (g *Graph) AliasNeighbor(u uint32, draw uint64) (uint32, bool) {
	lo, hi := g.offsets[u], g.offsets[u+1]
	if lo == hi {
		return 0, false
	}
	i := aliasPick(g.alias.prob[lo:hi], g.alias.alias[lo:hi], draw)
	return g.edges[lo+int64(i)], true
}

// AliasBytes reports the alias-table footprint: 12 bytes per stored arc
// (8 B acceptance probability + 4 B alias slot), zero for unweighted
// graphs. It is the alias share of SizeBytes, split out so the planner can
// account weighted batched walking explicitly.
func (g *Graph) AliasBytes() int64 {
	if g.alias == nil {
		return 0
	}
	return int64(len(g.alias.prob))*8 + int64(len(g.alias.alias))*4
}
