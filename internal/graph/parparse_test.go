package graph

import (
	"fmt"
	"strings"
	"testing"

	"lightne/internal/rng"
)

func TestParallelParserMatchesSequential(t *testing.T) {
	s := rng.New(17, 0)
	var sb strings.Builder
	sb.WriteString("# header comment\n")
	n := 500
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "%d %d\n", s.Intn(n), s.Intn(n))
		if i%97 == 0 {
			sb.WriteString("% interleaved comment\n")
		}
		if i%131 == 0 {
			sb.WriteString("\n") // blank lines
		}
	}
	input := sb.String()
	seq, err := LoadEdgeList(strings.NewReader(input), 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	parl, err := LoadEdgeListParallel(strings.NewReader(input), 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumVertices() != parl.NumVertices() || seq.NumEdges() != parl.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			seq.NumVertices(), seq.NumEdges(), parl.NumVertices(), parl.NumEdges())
	}
	for u := uint32(0); int(u) < seq.NumVertices(); u++ {
		a, b := seq.Neighbors(u, nil), parl.Neighbors(u, nil)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree mismatch", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d neighbors differ", u)
			}
		}
	}
}

func TestParallelParserEdgeCases(t *testing.T) {
	cases := []struct {
		input string
		edges int64 // expected arcs, -1 for error
	}{
		{"", 0},
		{"0 1", 2},     // no trailing newline
		{"0 1\r\n", 2}, // CRLF
		{"  0\t1  \n", 2},
		{"0 1 extra ignored\n", 2},
		{"a b\n", -1},
		{"0\n", -1},
		{"99999999999 0\n", -1}, // uint32 overflow
	}
	for _, tc := range cases {
		g, err := LoadEdgeListParallel(strings.NewReader(tc.input), 4, DefaultOptions())
		if tc.edges < 0 {
			if err == nil {
				t.Fatalf("input %q: expected error", tc.input)
			}
			continue
		}
		if err != nil {
			t.Fatalf("input %q: %v", tc.input, err)
		}
		if g.NumEdges() != tc.edges {
			t.Fatalf("input %q: arcs %d want %d", tc.input, g.NumEdges(), tc.edges)
		}
	}
}

func TestParseUint32Field(t *testing.T) {
	v, rest, ok := parseUint32Field([]byte("  42 rest"))
	if !ok || v != 42 || string(rest) != " rest" {
		t.Fatalf("got %d %q %v", v, rest, ok)
	}
	if _, _, ok := parseUint32Field([]byte("x")); ok {
		t.Fatal("non-digit should fail")
	}
	if _, _, ok := parseUint32Field([]byte("4294967296")); ok {
		t.Fatal("overflow should fail")
	}
	v, _, ok = parseUint32Field([]byte("4294967295"))
	if !ok || v != 4294967295 {
		t.Fatal("max uint32 should parse")
	}
}

func BenchmarkParseSequential(b *testing.B) {
	input := syntheticEdgeText(200000)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadEdgeList(strings.NewReader(input), 0, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseParallel(b *testing.B) {
	input := syntheticEdgeText(200000)
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadEdgeListParallel(strings.NewReader(input), 0, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func syntheticEdgeText(m int) string {
	s := rng.New(3, 0)
	var sb strings.Builder
	for i := 0; i < m; i++ {
		fmt.Fprintf(&sb, "%d %d\n", s.Intn(50000), s.Intn(50000))
	}
	return sb.String()
}
