//go:build !unix

package graph

import "fmt"

// Mmap is unavailable on this platform; load LNGC files with ReadBinary,
// which streams the sections into memory without building a CSR edge array.
func Mmap(path string) (*Graph, error) {
	return nil, fmt.Errorf("graph: mmap loading is not supported on this platform; use ReadBinary")
}

// Munmap is a no-op on platforms without Mmap.
func (g *Graph) Munmap() error { return nil }
