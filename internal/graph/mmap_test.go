package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"lightne/internal/rng"
)

// testCompressedGraph builds a compressed random graph with some hubs.
func testCompressedGraph(t testing.TB, n, blockSize int) *Graph {
	t.Helper()
	s := rng.New(3, 1)
	var arcs []Edge
	for i := 0; i < n; i++ {
		arcs = append(arcs, Edge{uint32(i), uint32((i + 1) % n)})
		for k := 0; k < 4; k++ {
			arcs = append(arcs, Edge{uint32(i), uint32(s.Intn(n))})
		}
		// Hubs: everything also attaches to vertex 0 and 1.
		arcs = append(arcs, Edge{uint32(i), uint32(s.Intn(2))})
	}
	opt := DefaultOptions()
	opt.Compress = true
	opt.BlockSize = blockSize
	g, err := FromEdges(n, arcs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sameAdjacency fails unless a and b expose identical vertices, degrees and
// neighbor sequences through both Decode (Neighbors) and Nth (Neighbor).
func sameAdjacency(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for u := uint32(0); int(u) < a.NumVertices(); u++ {
		na, nb := a.Neighbors(u, nil), b.Neighbors(u, nil)
		if len(na) != len(nb) {
			t.Fatalf("vertex %d: degree %d vs %d", u, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d idx %d: Decode %d vs %d", u, i, na[i], nb[i])
			}
			if bv := b.Neighbor(u, i); bv != na[i] {
				t.Fatalf("vertex %d idx %d: Nth %d want %d", u, i, bv, na[i])
			}
		}
	}
}

func TestLNGCStreamRoundtrip(t *testing.T) {
	g := testCompressedGraph(t, 300, 4)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Compressed() {
		t.Fatal("LNGC load lost compression")
	}
	if g2.edges != nil {
		t.Fatal("LNGC load materialized a CSR edge array")
	}
	sameAdjacency(t, g, g2)
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMmapRoundtrip(t *testing.T) {
	g := testCompressedGraph(t, 500, 8)
	path := filepath.Join(t.TempDir(), "graph.lngc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := Mmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Munmap()
	if !m.Compressed() {
		t.Fatal("mmap load lost compression")
	}
	// The whole point: cold start never builds the uncompressed edge array.
	if m.edges != nil {
		t.Fatal("mmap load materialized a CSR edge array")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("mapped graph fails validation: %v", err)
	}
	sameAdjacency(t, g, m)

	// Cursor lookups against the mapped graph match direct access.
	c := m.NewNeighborCursor()
	for u := uint32(0); int(u) < m.NumVertices(); u += 7 {
		d := m.Degree(u)
		c.Begin(u, d)
		for i := 0; i < d; i++ {
			if got, want := c.Neighbor(i), g.Neighbor(u, i); got != want {
				t.Fatalf("vertex %d idx %d: cursor %d want %d", u, i, got, want)
			}
		}
	}

	if err := m.Munmap(); err != nil {
		t.Fatal(err)
	}
	if err := m.Munmap(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestMmapRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := Mmap(write("short", []byte("LNGC"))); err == nil {
		t.Fatal("expected short-file error")
	}
	if _, err := Mmap(write("garbage", bytes.Repeat([]byte{0xab}, 8192))); err == nil {
		t.Fatal("expected header error")
	}
	// A plain CSR file must be refused with a helpful error, not misparsed.
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Mmap(write("csr", buf.Bytes())); err == nil {
		t.Fatal("expected LNG1 rejection")
	}
	// Truncating the payload must be caught by section bounds or Validate.
	cg := testCompressedGraph(t, 100, 4)
	var cbuf bytes.Buffer
	if err := cg.WriteBinary(&cbuf); err != nil {
		t.Fatal(err)
	}
	whole := cbuf.Bytes()
	m, err := Mmap(write("trunc", whole[:len(whole)-len(whole)/4]))
	if err == nil {
		defer m.Munmap()
		if err := m.Validate(); err == nil {
			t.Fatal("truncated LNGC file both mapped and validated")
		}
	}
}

func TestToCompressedSharesStructure(t *testing.T) {
	s := rng.New(9, 0)
	var arcs []Edge
	for i := 0; i < 2000; i++ {
		arcs = append(arcs, Edge{uint32(s.Intn(400)), uint32(s.Intn(400))})
	}
	g, err := FromEdges(400, arcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cg, err := g.ToCompressed(0)
	if err != nil {
		t.Fatal(err)
	}
	if !cg.Compressed() || cg.edges != nil {
		t.Fatal("ToCompressed kept the edge array")
	}
	sameAdjacency(t, g, cg)
	if cg2, err := cg.ToCompressed(0); err != nil || cg2 != cg {
		t.Fatal("ToCompressed on a compressed graph must be the identity")
	}
	wg, err := FromWeightedEdges(3, []WeightedEdge{{U: 0, V: 1, W: 2}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wg.ToCompressed(0); err == nil {
		t.Fatal("expected weighted rejection")
	}
}

// TestValidateHighDegreeCompressed pins the satellite fix: Validate on a
// compressed graph with a hub vertex is one sequential decode per vertex,
// not a per-index Nth loop that re-decodes block prefixes (O(degree ×
// blockSize) — ~200ms for a single 50k-degree hub before the fix).
func TestValidateHighDegreeCompressed(t *testing.T) {
	n := 50_000
	arcs := make([]Edge, 0, n-1)
	for v := 1; v < n; v++ {
		arcs = append(arcs, Edge{0, uint32(v)}) // star: vertex 0 has degree n-1
	}
	opt := DefaultOptions()
	opt.Compress = true
	g, err := FromEdges(n, arcs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborCursorUncompressed(t *testing.T) {
	g, err := FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {3, 4}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := g.NewNeighborCursor()
	for u := uint32(0); int(u) < g.NumVertices(); u++ {
		d := g.Degree(u)
		c.Begin(u, d)
		for i := 0; i < d; i++ {
			if c.Neighbor(i) != g.Neighbor(u, i) {
				t.Fatalf("cursor mismatch at vertex %d idx %d", u, i)
			}
		}
	}
}
