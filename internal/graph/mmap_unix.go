//go:build unix

package graph

import (
	"encoding/binary"
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// Mmap maps an LNGC file (written by WriteBinary on a compressed graph)
// and wraps the graph around the mapped sections in place: no decompression,
// no copying, no CSR edge array — cold start parses the fixed-size header
// and touches O(1) bytes, with adjacency pages faulted in on first access.
// The mapping is read-only and shared, so many processes serving the same
// graph share one physical copy.
//
// The sections are trusted the way an in-process build is: corrupt payload
// bytes make the fast decode paths panic. For untrusted files, run
// (*Graph).Validate() once after mapping — it uses the bounds-checked
// decoder and certifies the fast paths in-bounds.
//
// Call Munmap when done; the Graph must not be used afterwards.
func Mmap(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < lngcHeaderLen {
		return nil, fmt.Errorf("graph: %s: too small for an LNGC header (%d bytes)", path, size)
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("graph: %s: file size %d overflows the address space", path, size)
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	g, err := fromMapped(m)
	if err != nil {
		syscall.Munmap(m)
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return g, nil
}

// fromMapped parses the header and casts the mapped sections in place.
func fromMapped(m []byte) (*Graph, error) {
	if binary.LittleEndian.Uint32(m) == graphMagic {
		return nil, fmt.Errorf("plain LNG1 CSR files are not mmap-able; use ReadBinary, or rewrite compressed (LNGC)")
	}
	h, err := parseLNGCHeader(m)
	if err != nil {
		return nil, err
	}
	for i, s := range h.sections {
		if s.off+s.len < s.off || s.off+s.len > uint64(len(m)) {
			return nil, fmt.Errorf("LNGC section %d [%d,%d) exceeds the %d-byte file", i, s.off, s.off+s.len, len(m))
		}
	}
	// The header probe was verified little-endian by parseLNGCHeader; the
	// casts below read native-endian, so re-check through the same cast the
	// sections use to refuse byte-order mismatches on big-endian hosts.
	if *(*uint32)(unsafe.Pointer(&m[8])) != lngcProbe {
		return nil, fmt.Errorf("LNGC file byte order does not match this host")
	}
	offsets := mappedSlice[int64](m, h.sections[0], 8)
	degrees := mappedSlice[uint32](m, h.sections[1], 4)
	vtxOffsets := mappedSlice[uint64](m, h.sections[2], 8)
	data := m[h.sections[3].off : h.sections[3].off+h.sections[3].len]
	g, err := assembleLNGC(h, offsets, degrees, vtxOffsets, data)
	if err != nil {
		return nil, err
	}
	g.mapped = m
	return g, nil
}

// mappedSlice reinterprets a page-aligned section of the mapping as a typed
// slice without copying. Alignment holds because section offsets are
// page-aligned (enforced by parseLNGCHeader) and the mapping itself is
// page-aligned.
func mappedSlice[T int64 | uint32 | uint64](m []byte, s lngcSection, elemSize uint64) []T {
	if s.len == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&m[s.off])), s.len/elemSize)
}

// Munmap releases the mapping backing a graph loaded with Mmap. No-op for
// graphs not backed by a mapping. The graph (and any cursors or subgraphs
// sharing its arrays) must not be used afterwards.
func (g *Graph) Munmap() error {
	if g.mapped == nil {
		return nil
	}
	m := g.mapped
	g.mapped = nil
	return syscall.Munmap(m)
}
