package graph

import (
	"sync/atomic"

	"lightne/internal/par"
)

// atomicStoreChanged flags a propagation round as non-converged.
func atomicStoreChanged(p *int64) { atomic.StoreInt64(p, 1) }

// ConnectedComponents labels each vertex with a component ID (the smallest
// vertex ID in its component) using parallel label propagation — the
// standard GBBS-style pointer-free variant: repeatedly sweep edges, lowering
// each endpoint's label to the minimum of the pair, until a fixed point.
// Returns the labels and the number of components.
func (g *Graph) ConnectedComponents() ([]uint32, int) {
	n := g.n
	labels := make([]uint32, n)
	next := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	for {
		var changed int64
		par.ForRange(n, 256, func(lo, hi int) {
			var localChanged int64
			for ui := lo; ui < hi; ui++ {
				u := uint32(ui)
				best := labels[u]
				d := g.Degree(u)
				for i := 0; i < d; i++ {
					if l := labels[g.Neighbor(u, i)]; l < best {
						best = l
					}
				}
				next[ui] = best
				if best != labels[u] {
					localChanged = 1
				}
			}
			if localChanged != 0 {
				atomicStoreChanged(&changed)
			}
		})
		labels, next = next, labels
		if changed == 0 {
			break
		}
	}
	// Count distinct roots.
	count := 0
	for i, l := range labels {
		if uint32(i) == l {
			count++
		}
	}
	return labels, count
}

// BFS returns the hop distance from src to every vertex (-1 if
// unreachable).
func (g *Graph) BFS(src uint32) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if int(src) >= g.n {
		return dist
	}
	dist[src] = 0
	frontier := []uint32{src}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []uint32
		for _, u := range frontier {
			d := g.Degree(u)
			for i := 0; i < d; i++ {
				v := g.Neighbor(u, i)
				if dist[v] == -1 {
					dist[v] = depth
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// DegreeHistogram returns counts[d] = number of vertices with degree d,
// up to the maximum degree.
func (g *Graph) DegreeHistogram() []int64 {
	maxDeg := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(uint32(u)); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int64, maxDeg+1)
	for u := 0; u < g.n; u++ {
		counts[g.Degree(uint32(u))]++
	}
	return counts
}
