package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadEdgeList asserts the text parser never panics and that any graph
// it accepts is internally consistent.
func FuzzLoadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n5 5\n")
	f.Add("")
	f.Add("0 1 extra fields\n")
	f.Add("4294967295 0\n")
	f.Add("-1 2\n")
	f.Add("0\t1\r\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := LoadEdgeList(strings.NewReader(input), 0, DefaultOptions())
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}

// FuzzReadBinary asserts the binary loader rejects corrupt input without
// panicking and that accepted graphs are consistent.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid serialization.
	g, err := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}, DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// And a valid LNGC (compressed) serialization.
	cg, err := g.ToCompressed(2)
	if err != nil {
		f.Fatal(err)
	}
	var cbuf bytes.Buffer
	if err := cg.WriteBinary(&cbuf); err != nil {
		f.Fatal(err)
	}
	f.Add(cbuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("LNG1garbage"))
	f.Add([]byte("LNGCgarbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data), Options{})
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			// Binary graphs are trusted CSR: out-of-range neighbors pass
			// loading but must be caught by Validate — both outcomes are
			// acceptable, a panic is not.
			t.Logf("loaded graph fails validation (acceptable): %v", err)
		}
	})
}
