package graph

import "testing"

func TestLargestComponent(t *testing.T) {
	// Component A: 0-1-2-3 (size 4); component B: 4-5 (size 2); 6 isolated.
	arcs := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 4, V: 5}}
	g, err := FromEdges(7, arcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sub, oldToNew, newToOld, err := g.LargestComponent()
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 4 {
		t.Fatalf("LCC size %d want 4", sub.NumVertices())
	}
	if sub.NumEdges() != 6 {
		t.Fatalf("LCC arcs %d want 6", sub.NumEdges())
	}
	for old := 0; old < 4; old++ {
		if oldToNew[old] < 0 {
			t.Fatalf("vertex %d should be in LCC", old)
		}
		if int(newToOld[oldToNew[old]]) != old {
			t.Fatal("mappings not inverse")
		}
	}
	for old := 4; old < 7; old++ {
		if oldToNew[old] != -1 {
			t.Fatalf("vertex %d should be outside LCC", old)
		}
	}
	// Adjacency preserved under renumbering.
	u, v := oldToNew[1], oldToNew[2]
	found := false
	for _, nb := range sub.Neighbors(uint32(u), nil) {
		if nb == uint32(v) {
			found = true
		}
	}
	if !found {
		t.Fatal("edge (1,2) lost in subgraph")
	}
}

func TestLargestComponentWeighted(t *testing.T) {
	warcs := []WeightedEdge{{U: 0, V: 1, W: 2.5}, {U: 1, V: 2, W: 1}, {U: 3, V: 4, W: 9}}
	g, err := FromWeightedEdges(5, warcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sub, oldToNew, _, err := g.LargestComponent()
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || !sub.Weighted() {
		t.Fatalf("weighted LCC wrong: n=%d weighted=%v", sub.NumVertices(), sub.Weighted())
	}
	u := uint32(oldToNew[0])
	if got := sub.EdgeWeight(u, 0); got != 2.5 {
		t.Fatalf("weight lost: %g", got)
	}
}

func TestLargestComponentWholeGraph(t *testing.T) {
	arcs := []Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	g, err := FromEdges(3, arcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sub, _, _, err := g.LargestComponent()
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != g.NumEdges() {
		t.Fatal("connected graph should come back whole")
	}
}
