package graph

import (
	"math"
	"runtime"
	"testing"

	"lightne/internal/rng"
)

// Tests for the keyed alias draw API (AliasNeighbor / aliasPick) and the
// scratch-based alias construction: a chi-square goodness-of-fit harness
// over keyed-hash draws, a fuzzer pitting buildAlias against the naive
// normalized-weight reference, and an allocation regression for the
// per-worker scratch.

// chiSquareCrit01 returns the upper 0.01 critical value of the chi-square
// distribution with df degrees of freedom via the Wilson–Hilferty cube
// approximation (z_{0.99} = 2.326).
func chiSquareCrit01(df int) float64 {
	const z = 2.326
	d := float64(df)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// TestAliasNeighborChiSquare: draws resolved from single keyed-hash values
// (slot from the high bits via multiply-shift, coin from the low 32 bits)
// must follow the edge weights. Pearson's chi-square against the normalized
// weights must accept at p > 0.01 for each profile. Profiles keep every
// expected cell count comfortably large so the chi-square approximation is
// valid; extreme dynamic ranges are covered analytically by FuzzAliasBuild.
func TestAliasNeighborChiSquare(t *testing.T) {
	profiles := [][]float64{
		{1, 1, 1, 1},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{0.5, 1, 2, 4, 8, 16},
		{1, 1 + 1e-9, 1 - 1e-9},
		{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 30},
	}
	const draws = 100_000
	for pi, weights := range profiles {
		arcs := make([]WeightedEdge, len(weights))
		var total float64
		for i, w := range weights {
			arcs[i] = WeightedEdge{U: 0, V: uint32(i + 1), W: w}
			total += w
		}
		g, err := FromWeightedEdges(len(weights)+1, arcs, Options{Symmetrize: true})
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int64, len(weights)+1)
		for k := 0; k < draws; k++ {
			v, ok := g.AliasNeighbor(0, rng.Hash64(uint64(pi)*7919+3, uint64(k)))
			if !ok {
				t.Fatalf("profile %d: hub reported isolated", pi)
			}
			if v == 0 || int(v) > len(weights) {
				t.Fatalf("profile %d: draw returned non-neighbor %d", pi, v)
			}
			counts[v]++
		}
		var chi2 float64
		for i, w := range weights {
			exp := float64(draws) * w / total
			d := float64(counts[i+1]) - exp
			chi2 += d * d / exp
		}
		if crit := chiSquareCrit01(len(weights) - 1); chi2 > crit {
			t.Fatalf("profile %d: chi-square %.2f exceeds 0.01 critical value %.2f (df=%d, counts=%v)",
				pi, chi2, crit, len(weights)-1, counts[1:])
		}
	}
}

// TestAliasNeighborEdgeCases pins the degenerate shapes: a single-edge
// vertex always returns its only neighbor, and an isolated vertex reports
// ok=false for any draw.
func TestAliasNeighborEdgeCases(t *testing.T) {
	g, err := FromWeightedEdges(3, []WeightedEdge{{U: 0, V: 1, W: 42}}, Options{Symmetrize: true})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 64; k++ {
		draw := rng.Hash64(17, k)
		if v, ok := g.AliasNeighbor(0, draw); !ok || v != 1 {
			t.Fatalf("single-edge vertex: got (%d, %v)", v, ok)
		}
		if _, ok := g.AliasNeighbor(2, draw); ok {
			t.Fatal("isolated vertex must report ok=false")
		}
	}
}

// FuzzAliasBuild pits buildAlias against the naive reference: for any
// positive weight vector, the implied per-slot draw probability
// (prob_i + Σ_{j: alias_j = i} (1 − prob_j)) / d must equal w_i / Σw to
// float tolerance, every alias entry must stay in range, and keyed draws
// must never index out of bounds. Weights decode from byte pairs with a
// wide exponent range (2^-20 .. 2^20) so tiny/huge/near-equal mixtures,
// single edges, and hub-sized rows all appear.
func FuzzAliasBuild(f *testing.F) {
	f.Add([]byte{0, 20})                                     // single edge, weight 1
	f.Add([]byte{0, 0, 0, 40, 128, 20})                      // tiny + huge + mid
	f.Add([]byte{1, 20, 1, 20, 2, 20, 1, 20})                // near-equal
	f.Add([]byte{255, 40, 255, 40, 0, 0})                    // two huge + one tiny
	hub := make([]byte, 128)                                 // 64-slot hub, varied
	for i := range hub {
		hub[i] = byte(i * 37)
	}
	f.Add(hub)
	f.Fuzz(func(t *testing.T, data []byte) {
		d := len(data) / 2
		if d == 0 {
			return
		}
		if d > 256 {
			d = 256
		}
		arcs := make([]WeightedEdge, d)
		var total float64
		for i := 0; i < d; i++ {
			mant := 1 + float64(data[2*i])/256
			exp := int(data[2*i+1]%41) - 20
			w := math.Ldexp(mant, exp)
			arcs[i] = WeightedEdge{U: 0, V: uint32(i + 1), W: w}
			total += w
		}
		g, err := FromWeightedEdges(d+1, arcs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lo := g.offsets[0]
		prob := g.alias.prob[lo : lo+int64(d)]
		alias := g.alias.alias[lo : lo+int64(d)]
		mass := make([]float64, d)
		for i := 0; i < d; i++ {
			if prob[i] < 0 || prob[i] > 1 {
				t.Fatalf("slot %d: prob %g out of [0,1]", i, prob[i])
			}
			mass[i] += prob[i]
			if prob[i] < 1 {
				if int(alias[i]) >= d {
					t.Fatalf("slot %d: alias %d out of range (d=%d)", i, alias[i], d)
				}
				mass[alias[i]] += 1 - prob[i]
			}
		}
		for i := 0; i < d; i++ {
			got := mass[i] / float64(d)
			want := g.weights[lo+int64(i)] / total
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("slot %d: implied draw probability %g, reference %g (d=%d)", i, got, want, d)
			}
		}
		// Keyed draws must always land on a stored neighbor.
		for k := uint64(0); k < 32; k++ {
			v, ok := g.AliasNeighbor(0, rng.Hash64(1, k))
			if !ok || v == 0 || int(v) > d {
				t.Fatalf("draw %d: got (%d, %v)", k, v, ok)
			}
		}
	})
}

// TestBuildAliasAllocs is the regression test for the per-worker scratch:
// alias construction must allocate a small constant number of times — the
// output tables plus one scratch set per worker — independent of vertex
// count. Run single-threaded so par.WorkerFor stays inline and the count is
// deterministic.
func TestBuildAliasAllocs(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	build := func(n int) *Graph {
		s := rng.New(7, 0)
		arcs := make([]WeightedEdge, 0, 3*n)
		for i := 0; i < n; i++ {
			for k := 0; k < 3; k++ {
				v := uint32(s.Intn(n))
				if v == uint32(i) {
					continue
				}
				arcs = append(arcs, WeightedEdge{U: uint32(i), V: v, W: 1 + s.Float64()})
			}
		}
		g, err := FromWeightedEdges(n, arcs, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	allocs := func(g *Graph) float64 {
		return testing.AllocsPerRun(10, func() { g.buildAlias() })
	}
	small, large := allocs(build(100)), allocs(build(4000))
	if small != large {
		t.Fatalf("buildAlias allocations scale with graph size: %v (n=100) vs %v (n=4000)", small, large)
	}
	if small > 16 {
		t.Fatalf("buildAlias allocates %v times per call, want a small constant", small)
	}
}
