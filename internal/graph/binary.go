package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary CSR graph format ("LNG1"): a little-endian header (magic, n,
// arcs), the n+1 offsets as int64, then the arcs as uint32. Loading a
// billion-arc graph from this format is memory-bandwidth bound instead of
// parse bound — the same reason GBBS ships binary graph loaders.

// graphMagic identifies the binary graph format.
const graphMagic = 0x31474e4c // "LNG1"

// WriteBinary serializes the graph's CSR arrays. Compressed graphs are
// written in plain CSR (they re-compress on load if requested).
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], graphMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, off := range g.offsets {
		binary.LittleEndian.PutUint64(buf[:], uint64(off))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	for u := 0; u < g.n; u++ {
		d := g.Degree(uint32(u))
		for i := 0; i < d; i++ {
			binary.LittleEndian.PutUint32(buf[:4], g.Neighbor(uint32(u), i))
			if _, err := bw.Write(buf[:4]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary loads a graph written by WriteBinary. Only the compression
// options are honored (the CSR structure is taken as stored).
func ReadBinary(r io.Reader, opt Options) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != graphMagic {
		return nil, fmt.Errorf("graph: not an LNG1 graph file")
	}
	n := int(binary.LittleEndian.Uint64(hdr[4:]))
	arcs := int64(binary.LittleEndian.Uint64(hdr[12:]))
	if n < 0 || arcs < 0 {
		return nil, fmt.Errorf("graph: implausible binary header (n=%d, arcs=%d)", n, arcs)
	}
	// Grow the arrays as data actually arrives rather than trusting the
	// header's sizes, so a corrupt header cannot force a huge allocation.
	var buf [8]byte
	offsets := make([]int64, 0, minInt64(int64(n)+1, 1<<16))
	for i := 0; i <= n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("graph: truncated offsets: %w", err)
		}
		offsets = append(offsets, int64(binary.LittleEndian.Uint64(buf[:])))
	}
	if offsets[n] != arcs {
		return nil, fmt.Errorf("graph: offsets end at %d but header declares %d arcs", offsets[n], arcs)
	}
	edges := make([]uint32, 0, minInt64(arcs, 1<<18))
	for i := int64(0); i < arcs; i++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: truncated edges: %w", err)
		}
		edges = append(edges, binary.LittleEndian.Uint32(buf[:4]))
	}
	return FromCSR(offsets, edges, opt)
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
