package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"lightne/internal/compress"
)

// Binary graph formats.
//
// "LNG1" is the plain CSR format: a little-endian header (magic, n, arcs),
// the n+1 offsets as int64, then the arcs as uint32. Loading a billion-arc
// graph from this format is memory-bandwidth bound instead of parse bound —
// the same reason GBBS ships binary graph loaders.
//
// "LNGC" is the compressed counterpart: the Ligra+ parallel-byte adjacency
// (compress.Adjacency) serialized verbatim — degrees, per-vertex byte
// offsets, and the encoded payload — alongside the CSR degree-prefix
// offsets, each section padded to a page boundary. Because the sections are
// the in-memory arrays bit for bit, a reader never re-encodes (ReadBinary)
// and Mmap maps them in place: cold start on a pre-compressed graph parses
// a fixed-size header and never materializes the uncompressed edge array.
//
// LNGC layout (all little-endian):
//
//	[0:4)   magic "LNGC"
//	[4:8)   format version (1)
//	[8:12)  endianness probe 0x01020304 (Mmap refuses foreign byte order)
//	[12:16) compression block size
//	[16:24) n
//	[24:32) arcs
//	[32:96) section table: 4 × {byte offset u64, byte length u64} for the
//	        CSR offsets (int64[n+1]), degrees (uint32[n]), vertex byte
//	        offsets (uint64[n+1]) and payload (byte[...]) sections
//
// plus zero padding so every section starts lngcAlign-aligned.

const (
	// graphMagic identifies the plain binary CSR format ("LNG1").
	graphMagic = 0x31474e4c
	// lngcMagic identifies the compressed format ("LNGC").
	lngcMagic = 0x43474e4c
	// lngcVersion is the current LNGC format version.
	lngcVersion = 1
	// lngcProbe is stored in the header and re-read through the same
	// unsafe cast Mmap uses for the sections, so a byte-order mismatch
	// between writer and mapper fails loudly instead of corrupting silently.
	lngcProbe = 0x01020304
	// lngcAlign is the section alignment: one page, so mmap'd sections are
	// safely castable to any element type and fault in page-granular.
	lngcAlign = 4096
	// lngcHeaderLen is the fixed header size (before padding).
	lngcHeaderLen = 96
)

// lngcSection locates one section inside an LNGC file.
type lngcSection struct {
	off, len uint64
}

// lngcHeader is the parsed fixed-size LNGC header.
type lngcHeader struct {
	version   uint32
	blockSize int
	n         int
	arcs      int64
	// offsets, degrees, vtxOffsets, data
	sections [4]lngcSection
}

// WriteBinary serializes the graph: compressed graphs write the LNGC format
// (adjacency sections verbatim, mmap-able), uncompressed graphs write plain
// LNG1 CSR. Weighted graphs are rejected: neither format carries a weights
// section yet, and silently writing the structure-only CSR would drop the
// weights on the floor — a reload would embed a different graph.
func (g *Graph) WriteBinary(w io.Writer) error {
	if g.weights != nil {
		return fmt.Errorf("graph: WriteBinary does not support weighted graphs (LNG1/LNGC carry no weights section; writing would silently drop them)")
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if g.comp != nil {
		if err := g.writeLNGC(bw); err != nil {
			return err
		}
		return bw.Flush()
	}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], graphMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, off := range g.offsets {
		binary.LittleEndian.PutUint64(buf[:], uint64(off))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	for _, v := range g.edges {
		binary.LittleEndian.PutUint32(buf[:4], v)
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// alignUp rounds x up to the next lngcAlign boundary.
func alignUp(x uint64) uint64 {
	return (x + lngcAlign - 1) &^ uint64(lngcAlign-1)
}

// writeLNGC lays out the header and the four page-aligned sections.
func (g *Graph) writeLNGC(bw *bufio.Writer) error {
	degrees, vtxOffsets, data := g.comp.Sections()
	var secs [4]lngcSection
	lens := [4]uint64{
		uint64(len(g.offsets)) * 8,
		uint64(len(degrees)) * 4,
		uint64(len(vtxOffsets)) * 8,
		uint64(len(data)),
	}
	pos := alignUp(lngcHeaderLen)
	for i, l := range lens {
		secs[i] = lngcSection{off: pos, len: l}
		pos = alignUp(pos + l)
	}

	var hdr [lngcHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], lngcMagic)
	binary.LittleEndian.PutUint32(hdr[4:], lngcVersion)
	binary.LittleEndian.PutUint32(hdr[8:], lngcProbe)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(g.comp.BlockSize()))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(g.NumEdges()))
	for i, s := range secs {
		binary.LittleEndian.PutUint64(hdr[32+16*i:], s.off)
		binary.LittleEndian.PutUint64(hdr[40+16*i:], s.len)
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	written := uint64(lngcHeaderLen)
	pad := func(to uint64) error {
		for written < to {
			if err := bw.WriteByte(0); err != nil {
				return err
			}
			written++
		}
		return nil
	}

	var buf [8]byte
	if err := pad(secs[0].off); err != nil {
		return err
	}
	for _, off := range g.offsets {
		binary.LittleEndian.PutUint64(buf[:], uint64(off))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	written += lens[0]
	if err := pad(secs[1].off); err != nil {
		return err
	}
	for _, d := range degrees {
		binary.LittleEndian.PutUint32(buf[:4], d)
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	written += lens[1]
	if err := pad(secs[2].off); err != nil {
		return err
	}
	for _, off := range vtxOffsets {
		binary.LittleEndian.PutUint64(buf[:], off)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	written += lens[2]
	if err := pad(secs[3].off); err != nil {
		return err
	}
	if _, err := bw.Write(data); err != nil {
		return err
	}
	return nil
}

// parseLNGCHeader validates the fixed header fields shared by the streaming
// reader and Mmap. It checks internal consistency only — section bounds
// against the actual file size are the caller's job.
func parseLNGCHeader(hdr []byte) (lngcHeader, error) {
	var h lngcHeader
	if len(hdr) < lngcHeaderLen {
		return h, fmt.Errorf("graph: LNGC header truncated (%d bytes)", len(hdr))
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != lngcMagic {
		return h, fmt.Errorf("graph: not an LNGC graph file")
	}
	h.version = binary.LittleEndian.Uint32(hdr[4:])
	if h.version != lngcVersion {
		return h, fmt.Errorf("graph: unsupported LNGC version %d (supported: %d)", h.version, lngcVersion)
	}
	if probe := binary.LittleEndian.Uint32(hdr[8:]); probe != lngcProbe {
		return h, fmt.Errorf("graph: LNGC endianness probe mismatch (got %#x)", probe)
	}
	h.blockSize = int(binary.LittleEndian.Uint32(hdr[12:]))
	n := binary.LittleEndian.Uint64(hdr[16:])
	arcs := binary.LittleEndian.Uint64(hdr[24:])
	if h.blockSize <= 0 || n > 1<<40 || arcs > 1<<48 {
		return h, fmt.Errorf("graph: implausible LNGC header (n=%d, arcs=%d, blockSize=%d)", n, arcs, h.blockSize)
	}
	h.n = int(n)
	h.arcs = int64(arcs)
	for i := range h.sections {
		h.sections[i].off = binary.LittleEndian.Uint64(hdr[32+16*i:])
		h.sections[i].len = binary.LittleEndian.Uint64(hdr[40+16*i:])
		if h.sections[i].off > 1<<60 || h.sections[i].len > 1<<60 {
			return h, fmt.Errorf("graph: implausible LNGC section %d (off=%d, len=%d)", i, h.sections[i].off, h.sections[i].len)
		}
		if h.sections[i].off%lngcAlign != 0 {
			return h, fmt.Errorf("graph: LNGC section %d not page-aligned (offset %d)", i, h.sections[i].off)
		}
		if i > 0 && h.sections[i].off < h.sections[i-1].off+h.sections[i-1].len {
			return h, fmt.Errorf("graph: LNGC sections out of order")
		}
	}
	if h.sections[0].off < lngcHeaderLen {
		return h, fmt.Errorf("graph: LNGC first section overlaps the header")
	}
	if h.sections[0].len != uint64(h.n+1)*8 ||
		h.sections[1].len != uint64(h.n)*4 ||
		h.sections[2].len != uint64(h.n+1)*8 {
		return h, fmt.Errorf("graph: LNGC section lengths inconsistent with n=%d", h.n)
	}
	return h, nil
}

// ReadBinary loads a graph written by WriteBinary, detecting the format
// from the magic. LNG1 honors the compression options (the CSR structure is
// taken as stored); LNGC is already compressed, so the options are ignored
// and no CSR edge array is ever allocated.
func ReadBinary(r io.Reader, opt Options) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("graph: reading binary magic: %w", err)
	}
	if binary.LittleEndian.Uint32(magic) == lngcMagic {
		return readLNGC(br)
	}
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != graphMagic {
		return nil, fmt.Errorf("graph: not an LNG1 graph file")
	}
	n := int(binary.LittleEndian.Uint64(hdr[4:]))
	arcs := int64(binary.LittleEndian.Uint64(hdr[12:]))
	if n < 0 || arcs < 0 {
		return nil, fmt.Errorf("graph: implausible binary header (n=%d, arcs=%d)", n, arcs)
	}
	// Grow the arrays as data actually arrives rather than trusting the
	// header's sizes, so a corrupt header cannot force a huge allocation.
	var buf [8]byte
	offsets := make([]int64, 0, minInt64(int64(n)+1, 1<<16))
	for i := 0; i <= n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("graph: truncated offsets: %w", err)
		}
		offsets = append(offsets, int64(binary.LittleEndian.Uint64(buf[:])))
	}
	if offsets[n] != arcs {
		return nil, fmt.Errorf("graph: offsets end at %d but header declares %d arcs", offsets[n], arcs)
	}
	edges := make([]uint32, 0, minInt64(arcs, 1<<18))
	for i := int64(0); i < arcs; i++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: truncated edges: %w", err)
		}
		edges = append(edges, binary.LittleEndian.Uint32(buf[:4]))
	}
	return FromCSR(offsets, edges, opt)
}

// readLNGC streams an LNGC file into freshly allocated section arrays —
// the portable fallback when Mmap is unavailable (reading from a pipe, a
// network stream, or a non-unix platform). Still never builds a CSR edge
// array: the payload loads verbatim.
func readLNGC(br *bufio.Reader) (*Graph, error) {
	var hdr [lngcHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading LNGC header: %w", err)
	}
	h, err := parseLNGCHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	pos := uint64(lngcHeaderLen)
	skipTo := func(off uint64) error {
		if off < pos {
			return fmt.Errorf("graph: LNGC section at %d overlaps previous data", off)
		}
		if _, err := io.CopyN(io.Discard, br, int64(off-pos)); err != nil {
			return fmt.Errorf("graph: skipping LNGC padding: %w", err)
		}
		pos = off
		return nil
	}

	var buf [8]byte
	if err := skipTo(h.sections[0].off); err != nil {
		return nil, err
	}
	offsets := make([]int64, 0, minInt64(int64(h.n)+1, 1<<16))
	for i := 0; i <= h.n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("graph: truncated LNGC offsets: %w", err)
		}
		offsets = append(offsets, int64(binary.LittleEndian.Uint64(buf[:])))
	}
	pos += h.sections[0].len
	if offsets[h.n] != h.arcs {
		return nil, fmt.Errorf("graph: LNGC offsets end at %d but header declares %d arcs", offsets[h.n], h.arcs)
	}

	if err := skipTo(h.sections[1].off); err != nil {
		return nil, err
	}
	degrees := make([]uint32, 0, minInt64(int64(h.n), 1<<17))
	for i := 0; i < h.n; i++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: truncated LNGC degrees: %w", err)
		}
		degrees = append(degrees, binary.LittleEndian.Uint32(buf[:4]))
	}
	pos += h.sections[1].len

	if err := skipTo(h.sections[2].off); err != nil {
		return nil, err
	}
	vtxOffsets := make([]uint64, 0, minInt64(int64(h.n)+1, 1<<16))
	for i := 0; i <= h.n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("graph: truncated LNGC vertex offsets: %w", err)
		}
		vtxOffsets = append(vtxOffsets, binary.LittleEndian.Uint64(buf[:]))
	}
	pos += h.sections[2].len

	if err := skipTo(h.sections[3].off); err != nil {
		return nil, err
	}
	data := make([]byte, 0, minInt64(int64(h.sections[3].len), 1<<20))
	remaining := h.sections[3].len
	chunk := make([]byte, 1<<20)
	for remaining > 0 {
		c := uint64(len(chunk))
		if c > remaining {
			c = remaining
		}
		if _, err := io.ReadFull(br, chunk[:c]); err != nil {
			return nil, fmt.Errorf("graph: truncated LNGC payload: %w", err)
		}
		data = append(data, chunk[:c]...)
		remaining -= c
	}

	return assembleLNGC(h, offsets, degrees, vtxOffsets, data)
}

// assembleLNGC builds the Graph around loaded (or mapped) LNGC sections.
func assembleLNGC(h lngcHeader, offsets []int64, degrees []uint32, vtxOffsets []uint64, data []byte) (*Graph, error) {
	a, err := compress.FromSections(degrees, vtxOffsets, data, h.blockSize)
	if err != nil {
		return nil, err
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: LNGC offsets start at %d, want 0", offsets[0])
	}
	if offsets[h.n] != h.arcs {
		return nil, fmt.Errorf("graph: LNGC offsets end at %d but header declares %d arcs", offsets[h.n], h.arcs)
	}
	return &Graph{n: h.n, offsets: offsets, comp: a}, nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
