package graph

import (
	"math"
	"testing"

	"lightne/internal/rng"
)

func weightedTriangle(t *testing.T) *Graph {
	t.Helper()
	g, err := FromWeightedEdges(3, []WeightedEdge{
		{0, 1, 1}, {1, 2, 2}, {2, 0, 3},
	}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWeightedBasics(t *testing.T) {
	g := weightedTriangle(t)
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	if g.NumEdges() != 6 {
		t.Fatalf("arcs=%d", g.NumEdges())
	}
	// Strengths: s0 = 1+3 = 4, s1 = 1+2 = 3, s2 = 2+3 = 5.
	want := []float64{4, 3, 5}
	s := g.Strengths()
	for i, w := range want {
		if math.Abs(s[i]-w) > 1e-12 {
			t.Fatalf("strength[%d]=%g want %g", i, s[i], w)
		}
		if math.Abs(g.Strength(uint32(i))-w) > 1e-12 {
			t.Fatalf("Strength(%d) mismatch", i)
		}
	}
	if math.Abs(g.TotalWeight()-12) > 1e-12 {
		t.Fatalf("TotalWeight=%g want 12", g.TotalWeight())
	}
	if g.Volume() != g.TotalWeight() {
		t.Fatal("Volume must equal TotalWeight for weighted graphs")
	}
}

func TestWeightedDuplicateMerging(t *testing.T) {
	g, err := FromWeightedEdges(2, []WeightedEdge{
		{0, 1, 1}, {0, 1, 2.5}, {1, 0, 0.5},
	}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Symmetrize produces (0,1) with 1+2.5+0.5 = 4 in each direction.
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees %d %d", g.Degree(0), g.Degree(1))
	}
	if math.Abs(g.EdgeWeight(0, 0)-4) > 1e-12 {
		t.Fatalf("merged weight %g want 4", g.EdgeWeight(0, 0))
	}
}

func TestWeightedErrors(t *testing.T) {
	if _, err := FromWeightedEdges(2, []WeightedEdge{{0, 1, 0}}, DefaultOptions()); err == nil {
		t.Fatal("expected non-positive weight error")
	}
	if _, err := FromWeightedEdges(2, []WeightedEdge{{0, 1, -1}}, DefaultOptions()); err == nil {
		t.Fatal("expected negative weight error")
	}
	if _, err := FromWeightedEdges(1, []WeightedEdge{{0, 5, 1}}, DefaultOptions()); err == nil {
		t.Fatal("expected out-of-range error")
	}
	opt := DefaultOptions()
	opt.Compress = true
	if _, err := FromWeightedEdges(2, []WeightedEdge{{0, 1, 1}}, opt); err == nil {
		t.Fatal("expected compression rejection")
	}
}

func TestWeightedRandomNeighborDistribution(t *testing.T) {
	// Star from center 0 with weights 1, 2, 7: draws must follow weights.
	g, err := FromWeightedEdges(4, []WeightedEdge{
		{0, 1, 1}, {0, 2, 2}, {0, 3, 7},
	}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5, 0)
	counts := make([]int, 4)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v, ok := g.RandomNeighbor(0, r)
		if !ok {
			t.Fatal("center is not isolated")
		}
		counts[v]++
	}
	wantP := []float64{0, 0.1, 0.2, 0.7}
	for v := 1; v < 4; v++ {
		got := float64(counts[v]) / draws
		if math.Abs(got-wantP[v]) > 0.01 {
			t.Fatalf("neighbor %d frequency %.3f want %.3f", v, got, wantP[v])
		}
	}
}

func TestAliasTableExactMatch(t *testing.T) {
	// The alias table must reproduce exact weight proportions for many
	// random weight vectors: verify by accumulating acceptance masses.
	s := rng.New(11, 0)
	for trial := 0; trial < 20; trial++ {
		d := 1 + s.Intn(20)
		arcs := make([]WeightedEdge, d)
		var total float64
		for i := range arcs {
			w := 0.1 + 5*s.Float64()
			arcs[i] = WeightedEdge{0, uint32(i + 1), w}
			total += w
		}
		g, err := FromWeightedEdges(d+1, arcs, Options{Symmetrize: true})
		if err != nil {
			t.Fatal(err)
		}
		// Analytic draw probability per slot: (1/d)·(prob_i + Σ_j alias_j→i (1-prob_j)).
		lo, hi := g.offsets[0], g.offsets[1]
		mass := make([]float64, d)
		for i := 0; i < d; i++ {
			mass[i] += g.alias.prob[lo+int64(i)]
			if g.alias.prob[lo+int64(i)] < 1 {
				mass[g.alias.alias[lo+int64(i)]] += 1 - g.alias.prob[lo+int64(i)]
			}
		}
		_ = hi
		for i := 0; i < d; i++ {
			got := mass[i] / float64(d)
			want := g.weights[lo+int64(i)] / total
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d slot %d: alias mass %.6f want %.6f", trial, i, got, want)
			}
		}
	}
}

func TestUnweightedEdgeWeightIsOne(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.Weighted() {
		t.Fatal("unweighted graph reports Weighted")
	}
	if g.EdgeWeight(0, 0) != 1 {
		t.Fatal("unweighted EdgeWeight must be 1")
	}
	s := g.Strengths()
	d := g.Degrees()
	for i := range s {
		if s[i] != d[i] {
			t.Fatal("Strengths must equal Degrees when unweighted")
		}
	}
}

func TestWeightedWalkPrefersHeavyEdges(t *testing.T) {
	// Path 0-1-2 where (1,2) is 9x heavier than (1,0): a 1-step walk from 1
	// should land on 2 ~90% of the time.
	g, err := FromWeightedEdges(3, []WeightedEdge{
		{0, 1, 1}, {1, 2, 9},
	}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13, 0)
	hit2 := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if g.Walk(1, 1, r) == 2 {
			hit2++
		}
	}
	if p := float64(hit2) / draws; math.Abs(p-0.9) > 0.01 {
		t.Fatalf("heavy edge taken %.3f want 0.9", p)
	}
}
