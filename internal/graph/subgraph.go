package graph

// LargestComponent extracts the largest connected component as a new graph
// with vertices renumbered densely. It returns the subgraph, a mapping
// old→new vertex IDs (-1 for vertices outside the component), and the
// inverse mapping new→old. Embedding pipelines conventionally run on the
// largest component — isolated fragments only add factorization noise —
// and the paper's web-graph datasets are distributed as "-Sym" largest
// components for the same reason.
func (g *Graph) LargestComponent() (*Graph, []int32, []uint32, error) {
	labels, _ := g.ConnectedComponents()
	// Find the most frequent label.
	counts := map[uint32]int{}
	for _, l := range labels {
		counts[l]++
	}
	var best uint32
	bestCount := -1
	for l, c := range counts {
		if c > bestCount || (c == bestCount && l < best) {
			best, bestCount = l, c
		}
	}
	oldToNew := make([]int32, g.n)
	var newToOld []uint32
	for v := 0; v < g.n; v++ {
		if labels[v] == best {
			oldToNew[v] = int32(len(newToOld))
			newToOld = append(newToOld, uint32(v))
		} else {
			oldToNew[v] = -1
		}
	}
	var arcs []Edge
	var warcs []WeightedEdge
	weighted := g.Weighted()
	for newU, oldU := range newToOld {
		d := g.Degree(oldU)
		for i := 0; i < d; i++ {
			oldV := g.Neighbor(oldU, i)
			newV := oldToNew[oldV]
			if newV < 0 || uint32(newU) >= uint32(newV) {
				continue // keep one orientation; symmetrize below
			}
			if weighted {
				warcs = append(warcs, WeightedEdge{U: uint32(newU), V: uint32(newV), W: g.EdgeWeight(oldU, i)})
			} else {
				arcs = append(arcs, Edge{U: uint32(newU), V: uint32(newV)})
			}
		}
	}
	opt := DefaultOptions()
	var sub *Graph
	var err error
	if weighted {
		sub, err = FromWeightedEdges(len(newToOld), warcs, opt)
	} else {
		sub, err = FromEdges(len(newToOld), arcs, opt)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	return sub, oldToNew, newToOld, nil
}
