package graph

import (
	"sync/atomic"
	"testing"

	"lightne/internal/rng"
)

func benchGraph(b *testing.B, compressed bool) *Graph {
	b.Helper()
	s := rng.New(1, 0)
	n := 20000
	arcs := make([]Edge, 0, n*10)
	for i := 0; i < n*10; i++ {
		arcs = append(arcs, Edge{uint32(s.Intn(n)), uint32(s.Intn(n))})
	}
	opt := DefaultOptions()
	opt.Compress = compressed
	g, err := FromEdges(n, arcs, opt)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkMapEdgesPlain(b *testing.B) {
	g := benchGraph(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		g.MapEdges(func(u, v uint32) { atomic.AddInt64(&sum, int64(v)) })
	}
	b.SetBytes(g.NumEdges() * 4)
}

func BenchmarkMapEdgesCompressed(b *testing.B) {
	g := benchGraph(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		g.MapEdges(func(u, v uint32) { atomic.AddInt64(&sum, int64(v)) })
	}
	b.SetBytes(g.NumEdges() * 4)
}

func BenchmarkWalkPlain(b *testing.B) {
	g := benchGraph(b, false)
	s := rng.New(3, 0)
	u := uint32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u = g.Walk(u, 10, s)
	}
}

func BenchmarkWalkCompressed(b *testing.B) {
	g := benchGraph(b, true)
	s := rng.New(3, 0)
	u := uint32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u = g.Walk(u, 10, s)
	}
}
