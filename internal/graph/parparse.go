package graph

import (
	"fmt"
	"io"

	"lightne/internal/par"
)

// LoadEdgeListParallel parses a whitespace-separated edge list with
// data-parallel chunked parsing: the input is read fully into memory, split
// at line boundaries into one chunk per worker, and parsed concurrently.
// On multi-core machines this makes loading I/O-bound rather than
// parse-bound — the same motivation as GBBS's binary loaders, for the
// common case where the input is text. Semantics are identical to
// LoadEdgeList.
func LoadEdgeListParallel(r io.Reader, n int, opt Options) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	workers := par.Workers()
	if workers < 1 {
		workers = 1
	}
	// Chunk boundaries snapped forward to the next newline.
	bounds := make([]int, workers+1)
	for w := 1; w < workers; w++ {
		pos := len(data) * w / workers
		for pos < len(data) && data[pos] != '\n' {
			pos++
		}
		if pos < len(data) {
			pos++ // start after the newline
		}
		bounds[w] = pos
	}
	bounds[workers] = len(data)
	// Enforce monotonicity (tiny inputs can snap past later bounds).
	for w := 1; w <= workers; w++ {
		if bounds[w] < bounds[w-1] {
			bounds[w] = bounds[w-1]
		}
	}

	type chunkResult struct {
		arcs  []Edge
		maxID int64
		err   error
	}
	results := make([]chunkResult, workers)
	par.For(workers, 1, func(w int) {
		results[w] = parseChunk(data[bounds[w]:bounds[w+1]], bounds[w])
	})

	var arcs []Edge
	maxID := int64(-1)
	for _, res := range results {
		if res.err != nil {
			return nil, res.err
		}
		arcs = append(arcs, res.arcs...)
		if res.maxID > maxID {
			maxID = res.maxID
		}
	}
	if n <= 0 {
		n, err = inferVertexCount(maxID, len(arcs))
		if err != nil {
			return nil, err
		}
	}
	return FromEdges(n, arcs, opt)
}

// parseChunk parses complete lines within one byte chunk. offset is the
// chunk's position in the whole input, used only for error messages.
func parseChunk(data []byte, offset int) (res struct {
	arcs  []Edge
	maxID int64
	err   error
}) {
	res.maxID = -1
	pos := 0
	for pos < len(data) {
		// Find the line end.
		end := pos
		for end < len(data) && data[end] != '\n' {
			end++
		}
		line := data[pos:end]
		nextPos := end + 1
		// Trim \r and leading spaces.
		for len(line) > 0 && (line[len(line)-1] == '\r' || line[len(line)-1] == ' ' || line[len(line)-1] == '\t') {
			line = line[:len(line)-1]
		}
		i := 0
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		line = line[i:]
		if len(line) == 0 || line[0] == '#' || line[0] == '%' {
			pos = nextPos
			continue
		}
		u, rest, ok := parseUint32Field(line)
		if !ok {
			res.err = fmt.Errorf("graph: byte offset %d: bad source field in %q", offset+pos, string(line))
			return
		}
		v, _, ok := parseUint32Field(rest)
		if !ok {
			res.err = fmt.Errorf("graph: byte offset %d: bad target field in %q", offset+pos, string(line))
			return
		}
		if int64(u) > res.maxID {
			res.maxID = int64(u)
		}
		if int64(v) > res.maxID {
			res.maxID = int64(v)
		}
		res.arcs = append(res.arcs, Edge{U: u, V: v})
		pos = nextPos
	}
	return
}

// parseUint32Field parses a decimal uint32 at the start of line (after
// optional whitespace) and returns the value and the remainder.
func parseUint32Field(line []byte) (uint32, []byte, bool) {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
		i++
	}
	start := i
	var v uint64
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		v = v*10 + uint64(line[i]-'0')
		if v > 1<<32-1 {
			return 0, nil, false
		}
		i++
	}
	if i == start {
		return 0, nil, false
	}
	return uint32(v), line[i:], true
}
