package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadEdgeList parses a whitespace-separated edge list ("u v" per line,
// comments starting with '#' or '%' ignored) and builds a graph. If n <= 0,
// the vertex count is inferred as max ID + 1.
func LoadEdgeList(r io.Reader, n int, opt Options) (*Graph, error) {
	var arcs []Edge
	maxID := int64(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected at least two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %v", lineNo, fields[1], err)
		}
		if int64(u) > maxID {
			maxID = int64(u)
		}
		if int64(v) > maxID {
			maxID = int64(v)
		}
		arcs = append(arcs, Edge{uint32(u), uint32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if n <= 0 {
		var err error
		n, err = inferVertexCount(maxID, len(arcs))
		if err != nil {
			return nil, err
		}
	}
	return FromEdges(n, arcs, opt)
}

// inferVertexCount turns the maximum observed ID into a vertex count,
// rejecting ID spaces absurdly larger than the edge list: a lone line like
// "4294967295 0" would otherwise allocate gigabytes of offsets. Callers
// with genuinely sparse ID spaces should pass n explicitly.
func inferVertexCount(maxID int64, arcs int) (int, error) {
	n := maxID + 1
	limit := int64(arcs)*100 + 1024
	if n > limit {
		return 0, fmt.Errorf("graph: inferred vertex count %d is implausible for %d edges; pass the vertex count explicitly", n, arcs)
	}
	return int(n), nil
}

// LoadWeightedEdgeList parses "u v w" lines (comments with '#'/'%'
// ignored; a missing third column defaults the weight to 1) and builds a
// weighted graph. If n <= 0 the vertex count is inferred.
func LoadWeightedEdgeList(r io.Reader, n int, opt Options) (*Graph, error) {
	var arcs []WeightedEdge
	maxID := int64(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected at least two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %v", lineNo, fields[1], err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
		}
		if int64(u) > maxID {
			maxID = int64(u)
		}
		if int64(v) > maxID {
			maxID = int64(v)
		}
		arcs = append(arcs, WeightedEdge{U: uint32(u), V: uint32(v), W: w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading weighted edge list: %w", err)
	}
	if n <= 0 {
		var err error
		n, err = inferVertexCount(maxID, len(arcs))
		if err != nil {
			return nil, err
		}
	}
	return FromWeightedEdges(n, arcs, opt)
}

// WriteEdgeList writes each directed arc as a "u v" line. For a symmetrized
// graph this writes both directions; consumers that re-load with
// Symmetrize+Dedup recover the identical graph.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	for u := 0; u < g.n && err == nil; u++ {
		d := g.Degree(uint32(u))
		for i := 0; i < d; i++ {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, g.Neighbor(uint32(u), i))
			if err != nil {
				break
			}
		}
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}
