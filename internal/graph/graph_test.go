package graph

import (
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"lightne/internal/rng"
)

func triangle(t *testing.T, opt Options) *Graph {
	t.Helper()
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}, {2, 0}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesSymmetrize(t *testing.T) {
	g := triangle(t, DefaultOptions())
	if g.NumVertices() != 3 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("arcs=%d want 6", g.NumEdges())
	}
	for u := uint32(0); u < 3; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("deg(%d)=%d want 2", u, g.Degree(u))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoopsAndDuplicates(t *testing.T) {
	arcs := []Edge{{0, 0}, {0, 1}, {0, 1}, {1, 0}}
	g, err := FromEdges(2, arcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("arcs=%d want 2 (one undirected edge)", g.NumEdges())
	}
	// Without loop removal/dedup, loops and duplicates persist.
	g2, err := FromEdges(2, arcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 4 {
		t.Fatalf("arcs=%d want 4", g2.NumEdges())
	}
}

func TestOutOfRangeVertexRejected(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}, DefaultOptions()); err == nil {
		t.Fatal("expected error for out-of-range vertex")
	}
	if _, err := FromEdges(-1, nil, DefaultOptions()); err == nil {
		t.Fatal("expected error for negative n")
	}
}

func TestEmptyAndSingleVertex(t *testing.T) {
	g, err := FromEdges(0, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph mismatch")
	}
	g, err = FromEdges(1, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 0 {
		t.Fatal("single vertex should be isolated")
	}
	r := rng.New(1, 0)
	if got := g.Walk(0, 5, r); got != 0 {
		t.Fatalf("walk from isolated vertex moved to %d", got)
	}
}

func TestCompressedEquivalence(t *testing.T) {
	arcs := []Edge{}
	n := 500
	s := rng.New(9, 0)
	for i := 0; i < 3000; i++ {
		arcs = append(arcs, Edge{uint32(s.Intn(n)), uint32(s.Intn(n))})
	}
	plain, err := FromEdges(n, arcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	copt := DefaultOptions()
	copt.Compress = true
	copt.BlockSize = 7
	comp, err := FromEdges(n, arcs, copt)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Compressed() || plain.Compressed() {
		t.Fatal("compression flags wrong")
	}
	if plain.NumEdges() != comp.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", plain.NumEdges(), comp.NumEdges())
	}
	for u := uint32(0); int(u) < n; u++ {
		a := plain.Neighbors(u, nil)
		b := comp.Neighbors(u, nil)
		if len(a) != len(b) {
			t.Fatalf("vertex %d: degree %d vs %d", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d neighbor %d: %d vs %d", u, i, a[i], b[i])
			}
			if comp.Neighbor(u, i) != a[i] {
				t.Fatalf("compressed Neighbor(%d,%d) mismatch", u, i)
			}
		}
	}
	if err := comp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMapEdgesVisitsEveryArc(t *testing.T) {
	g := triangle(t, DefaultOptions())
	var count int64
	sum := int64(0)
	g.MapEdges(func(u, v uint32) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&sum, int64(u)+int64(v))
	})
	if count != 6 {
		t.Fatalf("visited %d arcs want 6", count)
	}
	// Each undirected edge {u,v} contributes (u+v) twice: (0+1+1+2+2+0)*2 = 12.
	if sum != 12 {
		t.Fatalf("sum=%d want 12", sum)
	}
}

func TestMapEdgesWorker(t *testing.T) {
	n := 2000
	arcs := make([]Edge, 0, n)
	for i := 0; i < n-1; i++ {
		arcs = append(arcs, Edge{uint32(i), uint32(i + 1)})
	}
	g, err := FromEdges(n, arcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var visited int64
	g.MapEdgesWorker(func(worker int, u, v uint32) {
		if worker < 0 {
			t.Errorf("bad worker %d", worker)
		}
		atomic.AddInt64(&visited, 1)
	})
	if visited != g.NumEdges() {
		t.Fatalf("visited %d want %d", visited, g.NumEdges())
	}
}

func TestRandomNeighborDistribution(t *testing.T) {
	// Star graph: center 0 with leaves 1..4. Random neighbor of 0 must be
	// roughly uniform over leaves.
	arcs := []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
	g, err := FromEdges(5, arcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(123, 0)
	counts := make([]int, 5)
	const draws = 40000
	for i := 0; i < draws; i++ {
		v, ok := g.RandomNeighbor(0, r)
		if !ok {
			t.Fatal("center has neighbors")
		}
		counts[v]++
	}
	for v := 1; v <= 4; v++ {
		p := float64(counts[v]) / draws
		if math.Abs(p-0.25) > 0.02 {
			t.Fatalf("leaf %d probability %.3f", v, p)
		}
	}
}

func TestWalkStaysInGraph(t *testing.T) {
	arcs := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	g, err := FromEdges(4, arcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77, 0)
	for i := 0; i < 1000; i++ {
		end := g.Walk(uint32(i%4), 1+i%10, r)
		if int(end) >= 4 {
			t.Fatalf("walk escaped: %d", end)
		}
	}
	// Walk parity on a 4-cycle (bipartite): even steps stay on same side.
	for i := 0; i < 200; i++ {
		end := g.Walk(0, 2, r)
		if end != 0 && end != 2 {
			t.Fatalf("2-step walk on 4-cycle ended at %d", end)
		}
	}
}

func TestLoadEdgeList(t *testing.T) {
	input := "# comment\n0 1\n1 2\n% another\n2 0\n"
	g, err := LoadEdgeList(strings.NewReader(input), 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 6 {
		t.Fatalf("n=%d arcs=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []string{"0\n", "a b\n", "0 x\n"}
	for _, in := range cases {
		if _, err := LoadEdgeList(strings.NewReader(in), 0, DefaultOptions()); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestWriteEdgeListRoundtrip(t *testing.T) {
	g := triangle(t, DefaultOptions())
	var sb strings.Builder
	if err := g.WriteEdgeList(&sb); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(strings.NewReader(sb.String()), g.NumVertices(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip arcs %d want %d", g2.NumEdges(), g.NumEdges())
	}
	for u := uint32(0); int(u) < g.NumVertices(); u++ {
		a, b := g.Neighbors(u, nil), g2.Neighbors(u, nil)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree mismatch", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d neighbors differ", u)
			}
		}
	}
}

func TestDegreesAndVolume(t *testing.T) {
	g := triangle(t, DefaultOptions())
	d := g.Degrees()
	want := []float64{2, 2, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Degrees=%v", d)
		}
	}
	if g.Volume() != 6 {
		t.Fatalf("Volume=%v want 6", g.Volume())
	}
}

func TestNeighborsSorted(t *testing.T) {
	s := rng.New(4, 0)
	n := 100
	var arcs []Edge
	for i := 0; i < 500; i++ {
		arcs = append(arcs, Edge{uint32(s.Intn(n)), uint32(s.Intn(n))})
	}
	g, err := FromEdges(n, arcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); int(u) < n; u++ {
		nbrs := g.Neighbors(u, nil)
		if !sort.SliceIsSorted(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] }) {
			t.Fatalf("vertex %d neighbors unsorted: %v", u, nbrs)
		}
	}
}
