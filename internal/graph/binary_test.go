package graph

import (
	"bytes"
	"strings"
	"testing"

	"lightne/internal/rng"
)

func TestBinaryRoundtrip(t *testing.T) {
	s := rng.New(7, 0)
	n := 200
	var arcs []Edge
	for i := 0; i < 1500; i++ {
		arcs = append(arcs, Edge{uint32(s.Intn(n)), uint32(s.Intn(n))})
	}
	g, err := FromEdges(n, arcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != n || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", g2.NumVertices(), g2.NumEdges(), n, g.NumEdges())
	}
	for u := uint32(0); int(u) < n; u++ {
		a, b := g.Neighbors(u, nil), g2.Neighbors(u, nil)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree mismatch", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d neighbors differ", u)
			}
		}
	}
}

func TestBinaryRoundtripCompressedSource(t *testing.T) {
	// A compressed graph serializes to LNGC and reloads compressed without
	// re-encoding (the stored block size wins over the requested one).
	arcs := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}
	opt := DefaultOptions()
	opt.Compress = true
	g, err := FromEdges(4, arcs, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(bytes.NewReader(buf.Bytes()), Options{Compress: true, BlockSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Compressed() {
		t.Fatal("requested compression lost on load")
	}
	for u := uint32(0); u < 4; u++ {
		a, b := g.Neighbors(u, nil), g2.Neighbors(u, nil)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree mismatch", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("neighbors differ after compressed roundtrip")
			}
		}
	}
}

// TestBinaryWeightedRejected pins WriteBinary's behavior per input kind:
// weighted graphs are rejected with a clear error (LNG1/LNGC carry no
// weights section — writing would silently drop them), while an unweighted
// graph built through the same constructor path round-trips losslessly.
func TestBinaryWeightedRejected(t *testing.T) {
	wg, err := FromWeightedEdges(3, []WeightedEdge{
		{0, 1, 2.5}, {1, 2, 0.5},
	}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wg.WriteBinary(&buf); err == nil {
		t.Fatal("WriteBinary accepted a weighted graph (weights would be dropped)")
	} else if !strings.Contains(err.Error(), "weighted") {
		t.Fatalf("rejection should name the weighted cause, got: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected write still emitted %d bytes", buf.Len())
	}

	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Weighted() {
		t.Fatal("round-tripped unweighted graph reports weights")
	}
	if g2.NumVertices() != 3 || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch after roundtrip: %d/%d", g2.NumVertices(), g2.NumEdges())
	}
	for u := uint32(0); u < 3; u++ {
		a, b := g.Neighbors(u, nil), g2.Neighbors(u, nil)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree mismatch", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("neighbors differ after roundtrip")
			}
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("nope")), Options{}); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXXYYYYYYYYZZZZZZZZ")), Options{}); err == nil {
		t.Fatal("expected magic error")
	}
	// Truncated payload.
	g, err := FromEdges(3, []Edge{{0, 1}, {1, 2}}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinary(bytes.NewReader(trunc), Options{}); err == nil {
		t.Fatal("expected truncation error")
	}
}
