package graph

import (
	"testing"

	"lightne/internal/rng"
)

func TestConnectedComponentsTwoIslands(t *testing.T) {
	arcs := []Edge{{0, 1}, {1, 2}, {3, 4}}
	g, err := FromEdges(6, arcs, DefaultOptions()) // vertex 5 isolated
	if err != nil {
		t.Fatal(err)
	}
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("components=%d want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("first island not merged")
	}
	if labels[3] != labels[4] {
		t.Fatal("second island not merged")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("isolated vertex merged incorrectly")
	}
}

func TestConnectedComponentsRandomMatchesBFS(t *testing.T) {
	s := rng.New(7, 0)
	n := 300
	var arcs []Edge
	for i := 0; i < 350; i++ {
		arcs = append(arcs, Edge{uint32(s.Intn(n)), uint32(s.Intn(n))})
	}
	g, err := FromEdges(n, arcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	labels, _ := g.ConnectedComponents()
	// Two vertices share a component iff BFS reaches one from the other.
	for trial := 0; trial < 30; trial++ {
		u := uint32(s.Intn(n))
		dist := g.BFS(u)
		for v := 0; v < n; v++ {
			same := labels[u] == labels[v]
			reach := dist[v] >= 0
			if same != reach {
				t.Fatalf("components disagree with BFS: u=%d v=%d same=%v reach=%v", u, v, same, reach)
			}
		}
	}
}

func TestBFSDistances(t *testing.T) {
	// Path graph 0-1-2-3-4.
	arcs := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	g, err := FromEdges(5, arcs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d]=%d want %d", i, dist[i], want)
		}
	}
	dist = g.BFS(2)
	for i, want := range []int32{2, 1, 0, 1, 2} {
		if dist[i] != want {
			t.Fatalf("from 2: dist[%d]=%d want %d", i, dist[i], want)
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Star with 4 leaves: one vertex of degree 4, four of degree 1.
	arcs := []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
	g, err := FromEdges(6, arcs, DefaultOptions()) // vertex 5 has degree 0
	if err != nil {
		t.Fatal(err)
	}
	h := g.DegreeHistogram()
	if h[0] != 1 || h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram %v", h)
	}
	var total int64
	for _, c := range h {
		total += c
	}
	if total != 6 {
		t.Fatalf("histogram sums to %d", total)
	}
}
