// Package graph implements the shared-memory parallel graph-processing
// substrate LightNE builds on (the paper's GBBS/Ligra layer, §4.1). It
// provides an immutable CSR representation with optional Ligra+ parallel-byte
// compression, bulk-parallel primitives over vertices and edges, constant- or
// near-constant-time i-th-neighbor access (needed by random walk steps), and
// the random walk itself (Algorithm 1's building block).
//
// Graphs here are, for embedding purposes, undirected: the builder
// symmetrizes edge lists so each undirected edge {u,v} is stored as two
// directed arcs. NumEdges reports directed arcs, so vol(G) = NumEdges for a
// symmetrized unweighted graph, matching the paper's vol(G) = 2m convention
// (weighted graphs — weighted.go — generalize it to vol(G) = total weight).
package graph

import (
	"fmt"
	"sort"

	"lightne/internal/compress"
	"lightne/internal/par"
	"lightne/internal/rng"
)

// Edge is a directed arc; builders interpret pairs per their options.
type Edge struct {
	U, V uint32
}

// Graph is an immutable CSR graph. Exactly one of (edges) or (comp) backs
// the adjacency data depending on whether compression was requested.
// Weighted graphs (FromWeightedEdges) additionally carry per-edge weights
// and per-vertex alias tables for O(1) weighted neighbor sampling.
type Graph struct {
	n       int
	offsets []int64 // len n+1; valid in both representations
	edges   []uint32
	comp    *compress.Adjacency
	weights []float64 // nil for unweighted graphs; aligned with edges
	alias   *aliasTables
	mapped  []byte // LNGC mmap backing the arrays above, if Mmap-loaded
}

// Options controls graph construction.
type Options struct {
	// Symmetrize adds the reverse of every input arc (making the graph
	// undirected). Embedding pipelines always set this.
	Symmetrize bool
	// RemoveSelfLoops drops arcs with U == V.
	RemoveSelfLoops bool
	// Dedup removes duplicate arcs after symmetrization.
	Dedup bool
	// Compress stores adjacency in the Ligra+ parallel-byte format.
	Compress bool
	// BlockSize is the compression block size; <= 0 means the default (64).
	BlockSize int
}

// DefaultOptions returns the options used by the embedding pipelines:
// symmetrized, simple (no loops or duplicates), uncompressed.
func DefaultOptions() Options {
	return Options{Symmetrize: true, RemoveSelfLoops: true, Dedup: true}
}

// FromEdges builds a graph with n vertices from an arc list. Vertex IDs must
// be < n. The input slice is not modified.
func FromEdges(n int, arcs []Edge, opt Options) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	work := make([]Edge, 0, len(arcs)*2)
	for _, e := range arcs {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: arc (%d,%d) exceeds vertex count %d", e.U, e.V, n)
		}
		if opt.RemoveSelfLoops && e.U == e.V {
			continue
		}
		work = append(work, e)
		if opt.Symmetrize && e.U != e.V {
			work = append(work, Edge{e.V, e.U})
		}
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].U != work[j].U {
			return work[i].U < work[j].U
		}
		return work[i].V < work[j].V
	})
	if opt.Dedup {
		out := work[:0]
		for i, e := range work {
			if i > 0 && e == work[i-1] {
				continue
			}
			out = append(out, e)
		}
		work = out
	}
	offsets := make([]int64, n+1)
	edges := make([]uint32, len(work))
	for i, e := range work {
		offsets[e.U+1]++
		edges[i] = e.V
	}
	for u := 0; u < n; u++ {
		offsets[u+1] += offsets[u]
	}
	return FromCSR(offsets, edges, opt)
}

// FromCSR wraps existing CSR arrays (offsets len n+1, per-vertex neighbor
// ranges sorted ascending). Only the compression options are honored. The
// arrays are retained; callers must not mutate them afterwards.
func FromCSR(offsets []int64, edges []uint32, opt Options) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: offsets must have at least one element")
	}
	n := len(offsets) - 1
	if offsets[n] != int64(len(edges)) {
		return nil, fmt.Errorf("graph: offsets[n]=%d does not match edge count %d", offsets[n], len(edges))
	}
	g := &Graph{n: n, offsets: offsets}
	if opt.Compress {
		a, err := compress.Build(offsets, edges, opt.BlockSize)
		if err != nil {
			return nil, err
		}
		g.comp = a
	} else {
		g.edges = edges
	}
	return g, nil
}

// NumVertices returns n.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of stored directed arcs (2m for a symmetrized
// simple graph with m undirected edges).
func (g *Graph) NumEdges() int64 { return g.offsets[g.n] }

// Volume returns vol(G): the sum of weighted degrees (= NumEdges for
// unweighted graphs).
func (g *Graph) Volume() float64 { return g.TotalWeight() }

// Compressed reports whether adjacency is stored in parallel-byte form.
func (g *Graph) Compressed() bool { return g.comp != nil }

// BlockSize returns the compressed block size, or 0 for uncompressed graphs.
func (g *Graph) BlockSize() int {
	if g.comp == nil {
		return 0
	}
	return g.comp.BlockSize()
}

// OffsetOf returns the CSR offset of vertex u's neighbor range; OffsetOf(n)
// equals NumEdges. Exposed for samplers that binary-search degree prefix
// sums (paper §4.2).
func (g *Graph) OffsetOf(u int) int64 { return g.offsets[u] }

// Degree returns the out-degree of u.
func (g *Graph) Degree(u uint32) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbor returns the i-th neighbor (ascending order) of u.
func (g *Graph) Neighbor(u uint32, i int) uint32 {
	if g.comp != nil {
		return g.comp.Nth(u, i)
	}
	return g.edges[g.offsets[u]+int64(i)]
}

// Neighbors appends the neighbors of u to dst and returns the result. For
// uncompressed graphs, pass nil dst to receive a view of the underlying
// storage without copying.
func (g *Graph) Neighbors(u uint32, dst []uint32) []uint32 {
	if g.comp != nil {
		return g.comp.Neighbors(u, dst)
	}
	seg := g.edges[g.offsets[u]:g.offsets[u+1]]
	if dst == nil {
		return seg
	}
	return append(dst, seg...)
}

// NeighborCursor serves runs of i-th-neighbor lookups against one vertex at
// a time — the access pattern of the batched walker, whose radix grouping
// makes all lookups at a vertex arrive back to back. On uncompressed graphs
// a lookup is the same slice index Neighbor performs; on compressed graphs
// the cursor decodes each block the run touches once into its own reusable
// buffer (compress.Cursor) instead of paying Nth's per-lookup block
// re-decode. Weighted graphs (never compressed) additionally expose the
// vertex's alias-table row so a run of keyed weighted draws resolves
// without re-slicing per state (AliasNeighbor). Keep one cursor per worker;
// it is not safe for concurrent use.
type NeighborCursor struct {
	g     *Graph
	span  []uint32  // current vertex's neighbor view (uncompressed graphs)
	prob  []float64 // current vertex's alias acceptance row (weighted graphs)
	alias []uint32  // current vertex's alias fallback row (weighted graphs)
	cc    compress.Cursor
}

// NewNeighborCursor returns a cursor over g's adjacency.
func (g *Graph) NewNeighborCursor() NeighborCursor {
	return NeighborCursor{g: g}
}

// Begin positions the cursor at vertex u, expecting roughly k Neighbor
// calls. k only tunes the compressed decode strategy (full-list vs lazy
// per-block); correctness does not depend on it.
func (c *NeighborCursor) Begin(u uint32, k int) {
	if c.g.comp != nil {
		c.cc.Begin(c.g.comp, u, k)
		return
	}
	lo, hi := c.g.offsets[u], c.g.offsets[u+1]
	c.span = c.g.edges[lo:hi]
	if c.g.alias != nil {
		c.prob = c.g.alias.prob[lo:hi]
		c.alias = c.g.alias.alias[lo:hi]
	}
}

// Neighbor returns the i-th neighbor of the vertex passed to Begin.
func (c *NeighborCursor) Neighbor(i int) uint32 {
	if c.g.comp != nil {
		return c.cc.Nth(i)
	}
	return c.span[i]
}

// AliasNeighbor draws a weight-proportional neighbor of the vertex passed
// to Begin from a single 64-bit keyed value (see Graph.AliasNeighbor for
// the slot/coin layout). Only valid on weighted graphs.
func (c *NeighborCursor) AliasNeighbor(draw uint64) uint32 {
	return c.span[aliasPick(c.prob, c.alias, draw)]
}

// ToCompressed returns a graph with the same structure whose adjacency is
// stored in the Ligra+ parallel-byte format, sharing this graph's offsets
// array (the uncompressed edge array is not retained, so the caller
// dropping the original graph drops the CSR footprint with it). Returns g
// unchanged if it is already compressed. blockSize <= 0 selects the
// default. Weighted graphs are not compressible.
func (g *Graph) ToCompressed(blockSize int) (*Graph, error) {
	if g.comp != nil {
		return g, nil
	}
	if g.weights != nil {
		return nil, fmt.Errorf("graph: weighted graphs do not support parallel-byte compression")
	}
	a, err := compress.Build(g.offsets, g.edges, blockSize)
	if err != nil {
		return nil, err
	}
	return &Graph{n: g.n, offsets: g.offsets, comp: a}, nil
}

// MapVertices calls fn(u) for every vertex in parallel.
func (g *Graph) MapVertices(fn func(u uint32)) {
	par.For(g.n, 512, func(i int) { fn(uint32(i)) })
}

// MapEdges calls fn(u, v) for every directed arc in parallel, partitioned by
// source vertex. This is the GBBS MapEdges primitive Algorithm 2 is built on.
func (g *Graph) MapEdges(fn func(u, v uint32)) {
	g.MapVertices(func(u uint32) {
		if g.comp != nil {
			g.comp.Decode(u, func(v uint32) { fn(u, v) })
			return
		}
		for _, v := range g.edges[g.offsets[u]:g.offsets[u+1]] {
			fn(u, v)
		}
	})
}

// MapEdgesWorker calls fn(worker, u, v) for every directed arc in parallel.
// The worker index is dense in [0, par.Workers()) and never used by two
// concurrent chunks, letting callers keep per-worker RNGs and buffers —
// the pattern LightNE's downsampled PathSampling uses (Algorithm 2).
func (g *Graph) MapEdgesWorker(fn func(worker int, u, v uint32)) {
	par.WorkerFor(g.n, 64, func(worker, lo, hi int) {
		for ui := lo; ui < hi; ui++ {
			u := uint32(ui)
			if g.comp != nil {
				g.comp.Decode(u, func(v uint32) { fn(worker, u, v) })
				continue
			}
			for _, v := range g.edges[g.offsets[u]:g.offsets[u+1]] {
				fn(worker, u, v)
			}
		}
	})
}

// RandomNeighbor returns a random neighbor of u, or (0, false) if u is
// isolated. Unweighted graphs draw uniformly (one random 32-bit draw
// reduced modulo the degree, exactly as described in §4.2); weighted graphs
// draw proportionally to edge weight via the alias table, still O(1).
func (g *Graph) RandomNeighbor(u uint32, r *rng.Source) (uint32, bool) {
	if g.weights != nil {
		return g.weightedRandomNeighbor(u, r)
	}
	d := g.Degree(u)
	if d == 0 {
		return 0, false
	}
	return g.Neighbor(u, r.Intn(d)), true
}

// Walk performs a random walk of the given number of steps starting at u and
// returns the final vertex. If the walk reaches an isolated vertex it stays
// there (symmetrized graphs never hit this unless u itself is isolated).
func (g *Graph) Walk(u uint32, steps int, r *rng.Source) uint32 {
	for s := 0; s < steps; s++ {
		v, ok := g.RandomNeighbor(u, r)
		if !ok {
			return u
		}
		u = v
	}
	return u
}

// Degrees returns a freshly allocated slice of all vertex degrees.
func (g *Graph) Degrees() []float64 {
	d := make([]float64, g.n)
	par.For(g.n, 4096, func(i int) {
		d[i] = float64(g.offsets[i+1] - g.offsets[i])
	})
	return d
}

// SizeBytes estimates in-memory adjacency size: CSR arrays, or the
// compressed payload when compression is on.
func (g *Graph) SizeBytes() int64 {
	if g.comp != nil {
		return g.comp.SizeBytes()
	}
	size := int64(len(g.offsets))*8 + int64(len(g.edges))*4
	if g.weights != nil {
		size += int64(len(g.weights)) * 8 // weights plus alias tables
		size += int64(len(g.alias.prob))*8 + int64(len(g.alias.alias))*4
	}
	return size
}

// Validate performs internal consistency checks; useful in tests and after
// loading untrusted inputs — in particular an mmap'd LNGC file, whose
// compressed payload the fast decode paths otherwise trust. Adjacency is
// verified by sequential decode (one O(degree) pass per vertex); the old
// implementation fetched each neighbor through Neighbor(u, i), which on
// compressed graphs re-decoded the block prefix per index — O(degree ×
// blockSize) per vertex, quadratic in degree for hubs. Compressed graphs
// use the bounds-checked decoder, so corrupt or truncated encodings return
// errors instead of panicking, and a nil result certifies the unchecked
// hot paths (Decode, Nth, NeighborCursor) are in-bounds.
func (g *Graph) Validate() error {
	if len(g.offsets) != g.n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), g.n+1)
	}
	for u := 0; u < g.n; u++ {
		if g.offsets[u] > g.offsets[u+1] {
			return fmt.Errorf("graph: offsets decrease at vertex %d", u)
		}
	}
	if g.comp != nil {
		if cn := g.comp.NumVertices(); cn != g.n {
			return fmt.Errorf("graph: compressed adjacency has %d vertices, offsets say %d", cn, g.n)
		}
	} else if int64(len(g.edges)) != g.offsets[g.n] {
		return fmt.Errorf("graph: %d edges stored but offsets end at %d", len(g.edges), g.offsets[g.n])
	}
	for u := 0; u < g.n; u++ {
		prev := int64(-1)
		bad := ""
		check := func(v uint32) {
			if bad != "" {
				return
			}
			if int(v) >= g.n {
				bad = fmt.Sprintf("graph: vertex %d has neighbor %d >= n", u, v)
			} else if int64(v) < prev {
				bad = fmt.Sprintf("graph: vertex %d neighbors not sorted", u)
			}
			prev = int64(v)
		}
		if g.comp != nil {
			if cd := int64(g.comp.Degree(uint32(u))); cd != g.offsets[u+1]-g.offsets[u] {
				return fmt.Errorf("graph: vertex %d compressed degree %d, offsets say %d", u, cd, g.offsets[u+1]-g.offsets[u])
			}
			if err := g.comp.DecodeChecked(uint32(u), check); err != nil {
				return err
			}
		} else {
			for _, v := range g.edges[g.offsets[u]:g.offsets[u+1]] {
				check(v)
			}
		}
		if bad != "" {
			return fmt.Errorf("%s", bad)
		}
	}
	return nil
}
