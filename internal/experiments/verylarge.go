package experiments

import (
	"fmt"
	"time"

	"lightne/internal/core"
	"lightne/internal/eval"
	"lightne/internal/gen"
)

// E8VeryLargeHITS regenerates Figure 3: HITS@{1,10,50} of LightNE on the
// two 100-billion-edge-scale web graph replicas as the sample count grows,
// with the paper's very-large-graph configuration: T = 2, d = 32, spectral
// propagation skipped, link-prediction evaluation on held-out edges.
func E8VeryLargeHITS(opt Options) (*Report, error) {
	start := time.Now()
	mults := []float64{0.25, 0.5, 1, 2, 4}
	if opt.Quick {
		mults = []float64{0.25, 1}
	}
	datasets := []func(uint64) (*gen.Dataset, error){gen.ClueWebLike, gen.Hyperlink2014Like}
	var rows [][]string
	for _, mk := range datasets {
		ds, err := mk(opt.Seed)
		if err != nil {
			return nil, err
		}
		train, test, err := eval.SplitEdges(ds.Graph, 0.001, opt.Seed+1)
		if err != nil {
			return nil, err
		}
		for _, mult := range mults {
			cfg := core.DefaultConfig(32)
			cfg.T = 2
			cfg.SampleMultiple = mult
			cfg.SkipPropagation = true
			cfg.Oversample, cfg.PowerIters = rsvdOversample, rsvdPowerIters
			cfg.Seed = opt.Seed + 2
			t0 := time.Now()
			res, err := core.Embed(train, cfg)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(t0)
			rank := eval.Ranking(res.Embedding, test, 200, []int{1, 10, 50}, opt.Seed+3)
			rows = append(rows, []string{
				ds.Name,
				fmt.Sprintf("%.2g", float64(res.SampleStats.Trials)),
				pct(rank.Hits[1]), pct(rank.Hits[10]), pct(rank.Hits[50]),
				dur(elapsed),
			})
		}
	}
	return &Report{
		ID:       "E8",
		Title:    "Figure 3: HITS@K vs number of samples on very large graph replicas",
		PaperRef: "on ClueWeb-Sym and Hyperlink2014-Sym, all of HITS@1/10/50 rise monotonically with the sample count until the 1.5TB memory bottleneck; each run < 2h",
		Headers:  []string{"dataset", "samples", "HITS@1", "HITS@10", "HITS@50", "time"},
		Rows:     rows,
		Notes: []string{
			"T=2, d=32, propagation skipped (paper §5.3 configuration); 0.1% held-out edges ranked against 200 corrupted candidates",
		},
		Elapsed: time.Since(start),
	}, nil
}
