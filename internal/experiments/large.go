package experiments

import (
	"time"

	"lightne/internal/baselines"
	"lightne/internal/core"
	"lightne/internal/dense"
	"lightne/internal/eval"
	"lightne/internal/gen"
)

// E1PBGComparison regenerates the §5.2.1 table: LightNE vs PyTorch-BigGraph
// on LiveJournal link prediction (Time, MR, MRR, HITS@10). PBG trains a
// LINE-style edge-sampling SGD model, which stands in for it here.
func E1PBGComparison(opt Options) (*Report, error) {
	start := time.Now()
	ds, err := gen.LiveJournalLike(opt.Seed)
	if err != nil {
		return nil, err
	}
	train, test, err := eval.SplitEdges(ds.Graph, 0.005, opt.Seed+1)
	if err != nil {
		return nil, err
	}
	dim := 64
	negatives := 100
	lineSamples := int64(60) * train.NumEdges()
	if opt.Quick {
		lineSamples /= 10
	}

	// PBG stand-in: LINE(2nd) SGD.
	t0 := time.Now()
	lineCfg := baselines.DefaultLINE(dim)
	lineCfg.Samples = lineSamples
	lineCfg.Seed = opt.Seed + 2
	lineX, err := baselines.LINE(train, lineCfg)
	if err != nil {
		return nil, err
	}
	lineTime := time.Since(t0)
	lineRank := eval.Ranking(lineX, test, negatives, []int{10}, opt.Seed+3)

	// LightNE, T = 5 (the paper's cross-validated choice for LiveJournal).
	t0 = time.Now()
	cfg := core.DefaultConfig(dim)
	cfg.T = 5
	cfg.SampleMultiple = 2
	if opt.Quick {
		cfg.SampleMultiple = 0.5
	}
	cfg.Oversample, cfg.PowerIters = rsvdOversample, rsvdPowerIters
	cfg.Seed = opt.Seed + 4
	res, err := core.Embed(train, cfg)
	if err != nil {
		return nil, err
	}
	lnTime := time.Since(t0)
	lnRank := eval.Ranking(res.Embedding, test, negatives, []int{10}, opt.Seed+3)

	return &Report{
		ID:       "E1",
		Title:    "PBG comparison on LiveJournal-like (link prediction)",
		PaperRef: "PBG: 7.25h, MR 4.25, MRR 0.87, HITS@10 0.93 — LightNE: 16min, MR 2.13, MRR 0.91, HITS@10 0.98 (27x faster, better on all metrics)",
		Headers:  []string{"system", "time", "MR", "MRR", "HITS@10"},
		Rows: [][]string{
			{"LINE-SGD (PBG stand-in)", dur(lineTime), f(lineRank.MR), f(lineRank.MRR), f(lineRank.Hits[10])},
			{"LightNE", dur(lnTime), f(lnRank.MR), f(lnRank.MRR), f(lnRank.Hits[10])},
		},
		Notes: []string{
			"livejournal-like replica: n=12000 power-law-community graph, 0.5% held-out edges, 100 corrupted candidates per positive",
		},
		Elapsed: time.Since(start),
	}, nil
}

// E2GraphViteF1 regenerates the §5.2.2 Micro-F1 table: LightNE vs GraphVite
// on Friendster-small and Friendster node classification at 1/5/10% label
// ratios. GraphVite trains DeepWalk with SGD, which stands in for it here.
func E2GraphViteF1(opt Options) (*Report, error) {
	start := time.Now()
	rows := [][]string{}
	datasets := []func(uint64) (*gen.Dataset, error){gen.FriendsterSmallLike, gen.FriendsterLike}
	ratios := []float64{0.01, 0.05, 0.10}
	dim := 32
	for _, mk := range datasets {
		ds, err := mk(opt.Seed)
		if err != nil {
			return nil, err
		}
		// GraphVite stand-in: DeepWalk SGD.
		dwCfg := baselines.DefaultDeepWalk(dim)
		if opt.Quick {
			dwCfg.WalksPerNode, dwCfg.WalkLength, dwCfg.Window, dwCfg.Negatives = 1, 20, 3, 3
		}
		dwCfg.Seed = opt.Seed + 5
		t0 := time.Now()
		dwX, err := baselines.DeepWalk(ds.Graph, dwCfg)
		if err != nil {
			return nil, err
		}
		dwTime := time.Since(t0)

		// LightNE, T = 1 (the paper's cross-validated choice for Friendster).
		cfg := core.DefaultConfig(dim)
		cfg.T = 1
		cfg.SampleMultiple = 40
		if opt.Quick {
			cfg.SampleMultiple = 2
		}
		cfg.Oversample, cfg.PowerIters = rsvdOversample, rsvdPowerIters
		cfg.Seed = opt.Seed + 6
		t0 = time.Now()
		res, err := core.Embed(ds.Graph, cfg)
		if err != nil {
			return nil, err
		}
		lnTime := time.Since(t0)

		systems := []struct {
			name string
			x    *dense.Matrix
			t    time.Duration
		}{
			{"DeepWalk-SGD (GraphVite stand-in)", dwX, dwTime},
			{"LightNE", res.Embedding, lnTime},
		}
		for _, sys := range systems {
			row := []string{ds.Name, sys.name}
			for _, ratio := range ratios {
				cr, err := eval.NodeClassification(sys.x, ds.Labels.Of, ds.Labels.NumClasses, ratio, opt.Seed+7, eval.DefaultTrain())
				if err != nil {
					return nil, err
				}
				row = append(row, pct(cr.MicroF1))
			}
			row = append(row, dur(sys.t))
			rows = append(rows, row)
		}
	}
	return &Report{
		ID:       "E2",
		Title:    "GraphVite comparison: Micro-F1 at 1/5/10% label ratios",
		PaperRef: "Friendster-small: GraphVite 76.9/87.9/89.2 vs LightNE 84.5/93.2/94.0; Friendster: 72.5/86.3/88.4 vs 80.7/91.1/92.3; LightNE 29-32x faster",
		Headers:  []string{"dataset", "system", "Micro-F1@1%", "Micro-F1@5%", "Micro-F1@10%", "time"},
		Rows:     rows,
		Notes:    []string{"friendster replicas: SBM with overlapping communities at 1/1000 scale"},
		Elapsed:  time.Since(start),
	}, nil
}

// E3HyperlinkAUC regenerates the §5.2.2 Hyperlink-PLD comparison: link
// prediction AUC and wall clock, LightNE vs the DeepWalk-SGD stand-in.
func E3HyperlinkAUC(opt Options) (*Report, error) {
	start := time.Now()
	ds, err := gen.HyperlinkPLDLike(opt.Seed)
	if err != nil {
		return nil, err
	}
	train, test, err := eval.SplitEdges(ds.Graph, 0.005, opt.Seed+1)
	if err != nil {
		return nil, err
	}
	dim := 32

	dwCfg := baselines.DefaultDeepWalk(dim)
	if opt.Quick {
		dwCfg.WalksPerNode, dwCfg.WalkLength, dwCfg.Window, dwCfg.Negatives = 1, 20, 3, 3
	}
	dwCfg.Seed = opt.Seed + 2
	t0 := time.Now()
	dwX, err := baselines.DeepWalk(train, dwCfg)
	if err != nil {
		return nil, err
	}
	dwTime := time.Since(t0)
	dwAUC := eval.AUC(dwX, test, 100, opt.Seed+3)

	cfg := core.DefaultConfig(dim)
	cfg.T = 5
	cfg.SampleMultiple = 2
	if opt.Quick {
		cfg.SampleMultiple = 0.5
	}
	cfg.Oversample, cfg.PowerIters = rsvdOversample, rsvdPowerIters
	cfg.Seed = opt.Seed + 4
	t0 = time.Now()
	res, err := core.Embed(train, cfg)
	if err != nil {
		return nil, err
	}
	lnTime := time.Since(t0)
	lnAUC := eval.AUC(res.Embedding, test, 100, opt.Seed+3)

	return &Report{
		ID:       "E3",
		Title:    "GraphVite comparison on Hyperlink-PLD-like (AUC + efficiency)",
		PaperRef: "GraphVite AUC 94.3 in 5.36h vs LightNE AUC 96.7 in 29.8min (11x faster)",
		Headers:  []string{"system", "AUC", "time"},
		Rows: [][]string{
			{"DeepWalk-SGD (GraphVite stand-in)", pct(dwAUC), dur(dwTime)},
			{"LightNE", pct(lnAUC), dur(lnTime)},
		},
		Elapsed: time.Since(start),
	}, nil
}
