package experiments

import (
	"strings"
	"testing"
)

// All experiments run in Quick mode as integration tests: they must
// complete without error and produce well-formed reports. Shape assertions
// for the headline claims live in the dedicated tests below.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped in -short mode")
	}
	opt := Options{Seed: 1, Quick: true}
	runners := All()
	if len(runners) != len(Order()) {
		t.Fatalf("All() has %d entries, Order() %d", len(runners), len(Order()))
	}
	for _, id := range Order() {
		id := id
		t.Run(id, func(t *testing.T) {
			run, ok := runners[id]
			if !ok {
				t.Fatalf("experiment %s missing from All()", id)
			}
			rep, err := run(opt)
			if err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			if rep.ID == "" || rep.Title == "" || rep.PaperRef == "" {
				t.Fatalf("%s: incomplete report metadata: %+v", id, rep)
			}
			if len(rep.Rows) == 0 {
				t.Fatalf("%s: empty report", id)
			}
			for _, row := range rep.Rows {
				if len(row) != len(rep.Headers) {
					t.Fatalf("%s: row width %d != header width %d (%v)", id, len(row), len(rep.Headers), row)
				}
			}
			s := rep.String()
			if !strings.Contains(s, rep.Title) {
				t.Fatalf("%s: String() missing title", id)
			}
		})
	}
}

func TestReportString(t *testing.T) {
	r := &Report{
		ID: "EX", Title: "demo", PaperRef: "ref",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	s := r.String()
	for _, want := range []string{"EX", "demo", "ref", "333", "hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}
