package experiments

import (
	"fmt"
	"time"

	"lightne/internal/core"
	"lightne/internal/dense"
	"lightne/internal/eval"
	"lightne/internal/gen"
	"lightne/internal/graph"
	"lightne/internal/netsmf"
	"lightne/internal/prone"
	"lightne/internal/sampler"
)

// rsvdOversample and rsvdPowerIters are applied uniformly to every system
// in the comparison experiments: at replica scale (thousands of vertices
// instead of tens of millions) the rank-d sketch needs subspace iteration
// to resolve the noisy spectrum, and giving all systems identical SVD
// quality keeps the comparisons about the matrices, not the solver.
const (
	rsvdOversample = 8
	rsvdPowerIters = 2
)

// oagRatios are the label ratios for the Table 4 replica. The paper uses
// 0.001%–1% on 67M vertices; at 1/10000 scale the same *training-set sizes*
// correspond to these ratios on 6000 labeled-ish vertices.
var oagRatios = []float64{0.01, 0.03, 0.10, 0.30}

// oagSystem is one row of Table 4.
type oagSystem struct {
	name  string
	embed func(*graph.Graph, Options) (*dense.Matrix, core.Timing, error)
}

func lightNESystem(name string, mult float64) oagSystem {
	return oagSystem{name: name, embed: func(g *graph.Graph, opt Options) (*dense.Matrix, core.Timing, error) {
		cfg := core.DefaultConfig(32)
		cfg.SampleMultiple = mult
		if opt.Quick {
			cfg.SampleMultiple = mult / 4
		}
		cfg.Oversample, cfg.PowerIters = rsvdOversample, rsvdPowerIters
		cfg.Seed = opt.Seed + 11
		res, err := core.Embed(g, cfg)
		if err != nil {
			return nil, core.Timing{}, err
		}
		return res.Embedding, res.Timing, nil
	}}
}

func netSMFSystem(mult float64) oagSystem {
	return oagSystem{name: fmt.Sprintf("NetSMF (M=%gTm)", mult), embed: func(g *graph.Graph, opt Options) (*dense.Matrix, core.Timing, error) {
		if opt.Quick {
			mult /= 4
		}
		res, err := netsmf.Run(g, netsmf.Config{
			T: 10, M: netsmf.MFromMultiple(g, 10, mult), Dim: 32,
			Downsample: false, Seed: opt.Seed + 12,
			Oversample: rsvdOversample, PowerIters: rsvdPowerIters,
		})
		if err != nil {
			return nil, core.Timing{}, err
		}
		return res.Embedding, core.Timing{Sparsifier: res.Timing.Sparsifier, SVD: res.Timing.SVD}, nil
	}}
}

func proNESystem() oagSystem {
	return oagSystem{name: "ProNE+", embed: func(g *graph.Graph, opt Options) (*dense.Matrix, core.Timing, error) {
		cfg := prone.DefaultConfig(32)
		cfg.Oversample, cfg.PowerIters = rsvdOversample, rsvdPowerIters
		cfg.Seed = opt.Seed + 13
		res, err := prone.Run(g, cfg)
		if err != nil {
			return nil, core.Timing{}, err
		}
		return res.Embedding, core.Timing{SVD: res.Timing.SVD, Propagation: res.Timing.Propagation}, nil
	}}
}

// E4OAGTable4 regenerates Table 4: Micro- and Macro-F1 of NetSMF, ProNE+,
// LightNE-Small and LightNE-Large on the OAG replica across label ratios.
func E4OAGTable4(opt Options) (*Report, error) {
	start := time.Now()
	ds, err := gen.OAGLike(opt.Seed)
	if err != nil {
		return nil, err
	}
	systems := []oagSystem{
		netSMFSystem(8),
		proNESystem(),
		lightNESystem("LightNE-Small", 0.1),
		lightNESystem("LightNE-Large", 20),
	}
	var rows [][]string
	for _, sys := range systems {
		t0 := time.Now()
		x, _, err := sys.embed(ds.Graph, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sys.name, err)
		}
		elapsed := time.Since(t0)
		microRow := []string{sys.name, "Micro-F1", dur(elapsed)}
		macroRow := []string{sys.name, "Macro-F1", ""}
		for _, ratio := range oagRatios {
			cr, err := eval.NodeClassification(x, ds.Labels.Of, ds.Labels.NumClasses, ratio, opt.Seed+14, eval.DefaultTrain())
			if err != nil {
				return nil, err
			}
			microRow = append(microRow, pct(cr.MicroF1))
			macroRow = append(macroRow, pct(cr.MacroF1))
		}
		rows = append(rows, microRow, macroRow)
	}
	headers := []string{"system", "metric", "time"}
	for _, r := range oagRatios {
		headers = append(headers, fmt.Sprintf("@%g%%", 100*r))
	}
	return &Report{
		ID:       "E4",
		Title:    "Table 4: OAG-like node classification (4 systems x label ratios)",
		PaperRef: "Micro@1%: NetSMF(8Tm) 38.9 (22.4h), ProNE+ 31.5 (21min), LightNE-Small 32.4 (20.9min), LightNE-Large 55.2 (1.53h); LightNE-Large dominates",
		Headers:  headers,
		Rows:     rows,
		Notes: []string{
			"oag-like replica at ~1/10000 scale; ratios rescaled so absolute training-set sizes match the paper's regime",
		},
		Elapsed: time.Since(start),
	}, nil
}

// E5TradeoffCurve regenerates Figure 2: the efficiency-effectiveness
// trade-off — F1 vs wall-clock as LightNE's sample budget sweeps 0.1-20·Tm
// and NetSMF's sweeps 1-8·Tm, with ProNE+ as a single point.
func E5TradeoffCurve(opt Options) (*Report, error) {
	start := time.Now()
	ds, err := gen.OAGLike(opt.Seed)
	if err != nil {
		return nil, err
	}
	lightMults := []float64{0.1, 0.5, 1, 2, 5, 10, 20}
	netsmfMults := []float64{1, 2, 4, 8}
	if opt.Quick {
		lightMults = []float64{0.1, 1, 5}
		netsmfMults = []float64{1, 4}
	}
	ratio := 0.10
	var rows [][]string
	evalOne := func(label string, x *dense.Matrix, elapsed time.Duration) error {
		cr, err := eval.NodeClassification(x, ds.Labels.Of, ds.Labels.NumClasses, ratio, opt.Seed+15, eval.DefaultTrain())
		if err != nil {
			return err
		}
		rows = append(rows, []string{label, dur(elapsed), pct(cr.MicroF1), pct(cr.MacroF1)})
		return nil
	}
	for _, mult := range lightMults {
		cfg := core.DefaultConfig(32)
		cfg.SampleMultiple = mult
		cfg.Oversample, cfg.PowerIters = rsvdOversample, rsvdPowerIters
		cfg.Seed = opt.Seed + 16
		t0 := time.Now()
		res, err := core.Embed(ds.Graph, cfg)
		if err != nil {
			return nil, err
		}
		if err := evalOne(fmt.Sprintf("LightNE M=%gTm", mult), res.Embedding, time.Since(t0)); err != nil {
			return nil, err
		}
	}
	for _, mult := range netsmfMults {
		t0 := time.Now()
		res, err := netsmf.Run(ds.Graph, netsmf.Config{
			T: 10, M: netsmf.MFromMultiple(ds.Graph, 10, mult), Dim: 32,
			Downsample: false, Seed: opt.Seed + 17,
			Oversample: rsvdOversample, PowerIters: rsvdPowerIters,
		})
		if err != nil {
			return nil, err
		}
		if err := evalOne(fmt.Sprintf("NetSMF M=%gTm", mult), res.Embedding, time.Since(t0)); err != nil {
			return nil, err
		}
	}
	{
		cfg := prone.DefaultConfig(32)
		cfg.Oversample, cfg.PowerIters = rsvdOversample, rsvdPowerIters
		cfg.Seed = opt.Seed + 18
		t0 := time.Now()
		res, err := prone.Run(ds.Graph, cfg)
		if err != nil {
			return nil, err
		}
		if err := evalOne("ProNE+", res.Embedding, time.Since(t0)); err != nil {
			return nil, err
		}
	}
	return &Report{
		ID:       "E5",
		Title:    "Figure 2: efficiency-effectiveness trade-off on OAG-like",
		PaperRef: "LightNE's curve Pareto-dominates both NetSMF and ProNE+: for each, some LightNE configuration is simultaneously faster and more accurate",
		Headers:  []string{"configuration", "time", "Micro-F1@10%", "Macro-F1@10%"},
		Rows:     rows,
		Elapsed:  time.Since(start),
	}, nil
}

// E6TimeBreakdown regenerates Table 5: per-stage running time of
// LightNE-Large, NetSMF, LightNE-Small and ProNE+.
func E6TimeBreakdown(opt Options) (*Report, error) {
	start := time.Now()
	ds, err := gen.OAGLike(opt.Seed)
	if err != nil {
		return nil, err
	}
	systems := []oagSystem{
		lightNESystem("LightNE-Large", 20),
		netSMFSystem(8),
		lightNESystem("LightNE-Small", 0.1),
		proNESystem(),
	}
	var rows [][]string
	for _, sys := range systems {
		_, timing, err := sys.embed(ds.Graph, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sys.name, err)
		}
		cell := func(d time.Duration, has bool) string {
			if !has {
				return "NA"
			}
			return dur(d)
		}
		rows = append(rows, []string{
			sys.name,
			cell(timing.Sparsifier, timing.Sparsifier > 0),
			cell(timing.SVD, true),
			cell(timing.Propagation, timing.Propagation > 0),
		})
	}
	return &Report{
		ID:       "E6",
		Title:    "Table 5: running-time breakdown (sparsifier / rSVD / propagation)",
		PaperRef: "LightNE-Large 32.8m/49.9m/8.1m; NetSMF(8Tm) 18h/4h/NA (33x and 4.8x slower); LightNE-Small 1.4m/10.5m/8.2m; ProNE+ NA/12m/8.2m",
		Headers:  []string{"system", "sparsifier", "randomized SVD", "spectral propagation"},
		Rows:     rows,
		Notes: []string{
			"the paper's 33x sparsifier gap came from NetSMF's unoptimized stack (OpenMP+Eigen3 vs GBBS+hashing); here both share this repo's substrate, so the remaining contrast is algorithmic: downsampling lets LightNE-Large draw 2.5x more trials (20Tm vs 8Tm) in comparable wall-clock because cold edges skip their walks",
		},
		Elapsed: time.Since(start),
	}, nil
}

// E7SampleSizeAblation regenerates the §5.2.4 sample-size ablation: how
// much the downsampling and the shared hash table raise the affordable
// sample count under a fixed memory budget.
func E7SampleSizeAblation(opt Options) (*Report, error) {
	start := time.Now()
	ds, err := gen.OAGLike(opt.Seed)
	if err != nil {
		return nil, err
	}
	g := ds.Graph
	mult := 4.0
	if opt.Quick {
		mult = 1
	}
	m := netsmf.MFromMultiple(g, 10, mult)

	run := func(downsample bool) (sampler.Stats, error) {
		_, stats, err := sampler.Sample(g, sampler.Config{
			T: 10, M: m, Downsample: downsample, Seed: opt.Seed + 19,
		})
		return stats, err
	}
	on, err := run(true)
	if err != nil {
		return nil, err
	}
	off, err := run(false)
	if err != nil {
		return nil, err
	}
	// Thread-local-list memory model (NetSMF's aggregation): every head
	// occupies a 16-byte (key, weight) record until the final merge. The
	// hash-table figure is load-factor-normalized (16 bytes per slot at 7/8
	// load) so power-of-two capacity rounding doesn't mask the reduction.
	tableBytes := func(distinct int) float64 { return float64(distinct) * 16 * 8 / 7 }
	listBytesOn := on.Heads * 16
	listBytesOff := off.Heads * 16
	rows := [][]string{
		{"downsampling ON", f(float64(on.Trials)), f(float64(on.Heads)),
			fmt.Sprintf("%d", on.DistinctEntries), fmt.Sprintf("%.1f MB", tableBytes(on.DistinctEntries)/1e6),
			fmt.Sprintf("%.1f MB", float64(listBytesOn)/1e6)},
		{"downsampling OFF", f(float64(off.Trials)), f(float64(off.Heads)),
			fmt.Sprintf("%d", off.DistinctEntries), fmt.Sprintf("%.1f MB", tableBytes(off.DistinctEntries)/1e6),
			fmt.Sprintf("%.1f MB", float64(listBytesOff)/1e6)},
	}
	notes := []string{
		fmt.Sprintf("downsampling keeps %.1f%% of trials as heads, cutting aggregation memory by %.2fx",
			100*float64(on.Heads)/float64(on.Trials),
			float64(off.Heads)/float64(on.Heads)),
		"hash table stores one slot per distinct edge; per-thread lists store one record per head — the gap is the paper's 56.3% affordable-sample-size gain",
	}
	return &Report{
		ID:       "E7",
		Title:    "Sample-size ablation: downsampling + sparse hashing vs memory",
		PaperRef: "paper: hashing raises affordable samples 56.3% over NetSMF's per-thread sparsifiers; downsampling adds another 60% (8Tm -> 12.5Tm -> 20Tm)",
		Headers:  []string{"configuration", "trials", "heads", "distinct edges", "hash-table mem", "per-thread-list mem"},
		Rows:     rows,
		Notes:    notes,
		Elapsed:  time.Since(start),
	}, nil
}
