// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on this repository's substrate: synthetic dataset
// replicas, from-scratch kernels, and the SGD baselines standing in for
// GraphVite and PyTorch-BigGraph. Each experiment returns a Report that
// cmd/lightne-bench prints and bench_test.go wraps as a testing.B target.
//
// Absolute numbers differ from the paper (different hardware, different
// data); the claims under test are the *shapes*: who wins, by roughly what
// factor, and how metrics move along each sweep. EXPERIMENTS.md records
// paper-vs-measured for every experiment.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Report is one regenerated table or figure.
type Report struct {
	ID       string   // e.g. "E4"
	Title    string   // e.g. "Table 4: OAG node classification"
	PaperRef string   // one-line summary of what the paper reports
	Headers  []string // table header
	Rows     [][]string
	Notes    []string // scaling caveats, substitutions
	Elapsed  time.Duration
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.PaperRef != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperRef)
	}
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if r.Elapsed > 0 {
		fmt.Fprintf(&b, "(experiment wall clock: %s)\n", r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// pct formats a fraction as a percentage with two decimals.
func pct(v float64) string { return fmt.Sprintf("%.2f", 100*v) }

// dur formats a duration rounded to milliseconds.
func dur(d time.Duration) string { return d.Round(time.Millisecond).String() }

// Options tunes experiment cost globally.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Quick shrinks sweeps and sample budgets (~10× cheaper) for smoke
	// runs and testing.B integration.
	Quick bool
	// FactorizeOut, when non-empty, makes E14 write its machine-readable
	// benchmark record (BENCH_factorize.json) to this path. Empty (the
	// default, and what the test harness uses) writes nothing.
	FactorizeOut string
}

// Runner maps experiment IDs to their functions.
type Runner func(Options) (*Report, error)

// All returns every experiment keyed by lower-case ID, in presentation
// order via Order.
func All() map[string]Runner {
	return map[string]Runner{
		"e1":  E1PBGComparison,
		"e2":  E2GraphViteF1,
		"e3":  E3HyperlinkAUC,
		"e4":  E4OAGTable4,
		"e5":  E5TradeoffCurve,
		"e6":  E6TimeBreakdown,
		"e7":  E7SampleSizeAblation,
		"e8":  E8VeryLargeHITS,
		"e9":  E9SmallGraphs,
		"e10": E10DatasetStats,
		"e11": E11DynamicEmbedding,
		"e12": E12AggregationStrategies,
		"e13": E13CompressionScaling,
		"e14": E14FactorizationModes,
	}
}

// Order lists experiment IDs in presentation order. E1-E10 regenerate the
// paper's artifacts; E11-E14 are extension experiments (future work and
// design-space tables).
func Order() []string {
	return []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14"}
}
