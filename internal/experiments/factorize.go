package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"lightne/internal/core"
	"lightne/internal/gen"
	"lightne/internal/svd"
)

// factorizeVariant is one row of the E14 comparison and one entry of
// BENCH_factorize.json.
type factorizeVariant struct {
	Name string `json:"name"`
	// SparsifierNs and SVDNs are the Timing breakdown; in sketch mode the
	// sparsifier stage already includes streaming into the accumulators,
	// so the split shifts but the pair stays comparable via TotalNs.
	SparsifierNs int64 `json:"sparsifier_ns"`
	SVDNs        int64 `json:"svd_ns"`
	TotalNs      int64 `json:"total_ns"`
	// PlannerTotalBytes is core.EstimateMemory's predicted peak;
	// PlannerFactorizeBytes isolates the part the single-pass refactor
	// changes (sparsifier/stream CSR + dense working set).
	PlannerTotalBytes     int64 `json:"planner_total_bytes"`
	PlannerFactorizeBytes int64 `json:"planner_factorize_bytes"`
	// MeasuredHeapHighWaterBytes is the polled runtime.ReadMemStats
	// HeapAlloc high-water mark over the run, minus the post-GC baseline
	// before it started.
	MeasuredHeapHighWaterBytes int64 `json:"measured_heap_high_water_bytes"`
	// SigmaMaxRelErr is max_j |sigma_j - rsvd sigma_j| / rsvd sigma_0 over
	// the leading third of the spectrum (zero for the rSVD baseline).
	SigmaMaxRelErr float64 `json:"sigma_max_rel_err_vs_rsvd"`
}

type factorizeRecord struct {
	GoMaxProcs      int                `json:"gomaxprocs"`
	HardwareThreads int                `json:"hardware_threads"`
	Vertices        int                `json:"vertices"`
	Arcs            int64              `json:"arcs"`
	Dim             int                `json:"dim"`
	T               int                `json:"t"`
	M               int64              `json:"m"`
	Oversample      int                `json:"oversample"`
	Variants        []factorizeVariant `json:"variants"`
	Note            string             `json:"note"`
}

// factorizeFloorNote is the hardware caveat carried from ROADMAP: wall-clock
// ratios recorded on this container are a floor, not the headline.
const factorizeFloorNote = "measured on a 1-hardware-thread container (GOMAXPROCS inflates goroutines, not cores): " +
	"wall-clock ratios are a floor — the sketch path's fused drain+transform+absorb and the rSVD's " +
	"multiplies both scale with real cores; memory columns are hardware-independent"

// measureHeapHighWater runs fn while polling the heap allocation high-water
// mark, returning (high water − post-GC baseline). Polling undershoots
// slightly between samples, which is fine: the comparison is rSVD vs sketch
// under identical sampling.
func measureHeapHighWater(fn func() error) (int64, error) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc

	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		var pms runtime.MemStats
		for {
			select {
			case <-done:
				return
			default:
			}
			runtime.ReadMemStats(&pms)
			for {
				cur := peak.Load()
				if pms.HeapAlloc <= cur || peak.CompareAndSwap(cur, pms.HeapAlloc) {
					break
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()
	err := fn()
	close(done)
	hw := int64(peak.Load()) - int64(base)
	if hw < 0 {
		hw = 0
	}
	return hw, err
}

// E14FactorizationModes benchmarks the single-pass sketched factorization
// against the multi-pass randomized SVD on an RMAT graph: wall time, the
// planner's predicted peak (total and the factorization slice the refactor
// changes), the measured heap high-water mark, and spectrum agreement. The
// sparse-sign sketch is the production default; the Gaussian kind is the
// accuracy cross-check that deliberately spends the memory back.
func E14FactorizationModes(opt Options) (*Report, error) {
	start := time.Now()
	scale, edgeFactor, dim, mult := 12, 16, 32, 4.0
	if opt.Quick {
		scale, edgeFactor, dim, mult = 10, 8, 16, 2.0
	}
	g, err := gen.RMAT(gen.RMATConfig{Scale: scale, EdgeFactor: edgeFactor, Seed: opt.Seed + 41})
	if err != nil {
		return nil, err
	}

	base := core.DefaultConfig(dim)
	base.T = 5
	base.SampleMultiple = mult
	base.Oversample = 8
	base.SkipPropagation = true // isolate sampling + factorization
	base.Seed = opt.Seed + 42

	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"rsvd (multi-pass)", func(c *core.Config) {}},
		{"sketch sign (single-pass)", func(c *core.Config) { c.StreamedSVD = true }},
		{"sketch gaussian (single-pass)", func(c *core.Config) {
			c.StreamedSVD = true
			c.Sketch = svd.SketchGaussian
		}},
	}

	rec := factorizeRecord{
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		HardwareThreads: runtime.NumCPU(),
		Vertices:        g.NumVertices(),
		Arcs:            g.NumEdges(),
		Dim:             dim,
		T:               base.T,
		Oversample:      base.Oversample,
		Note:            factorizeFloorNote,
	}
	var rows [][]string
	var refSigma []float64
	for _, v := range variants {
		cfg := base
		v.mutate(&cfg)
		est, err := core.EstimateMemory(g, cfg)
		if err != nil {
			return nil, err
		}
		rec.M = est.Trials
		var res *core.Result
		heap, err := measureHeapHighWater(func() error {
			var e error
			res, e = core.Embed(g, cfg)
			return e
		})
		if err != nil {
			return nil, err
		}
		relErr := 0.0
		if refSigma == nil {
			refSigma = res.Sigma
		} else {
			lead := len(refSigma) / 3
			if lead < 2 {
				lead = 2
			}
			for j := 0; j < lead && j < len(res.Sigma); j++ {
				if rel := math.Abs(res.Sigma[j]-refSigma[j]) / refSigma[0]; rel > relErr {
					relErr = rel
				}
			}
		}
		fact := est.SparsifierBytes + est.StreamBytes + est.DenseBytes
		rec.Variants = append(rec.Variants, factorizeVariant{
			Name:                       v.name,
			SparsifierNs:               res.Timing.Sparsifier.Nanoseconds(),
			SVDNs:                      res.Timing.SVD.Nanoseconds(),
			TotalNs:                    res.Timing.Total().Nanoseconds(),
			PlannerTotalBytes:          est.Total(),
			PlannerFactorizeBytes:      fact,
			MeasuredHeapHighWaterBytes: heap,
			SigmaMaxRelErr:             relErr,
		})
		rows = append(rows, []string{
			v.name,
			dur(res.Timing.Total()),
			fmt.Sprintf("%.1f MB", float64(est.Total())/1e6),
			fmt.Sprintf("%.1f MB", float64(fact)/1e6),
			fmt.Sprintf("%.1f MB", float64(heap)/1e6),
			f(relErr),
		})
	}

	if opt.FactorizeOut != "" {
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(opt.FactorizeOut, append(buf, '\n'), 0o644); err != nil {
			return nil, err
		}
	}

	return &Report{
		ID:    "E14",
		Title: "Extension: single-pass sketched factorization vs multi-pass rSVD",
		PaperRef: "paper §3.2/§5.3: the factorization's dense working set and the resident sparsifier bound " +
			"the affordable sample count under the memory bottleneck; the single-pass sketch removes the " +
			"scaled CSR and three of the five dense iterates",
		Headers: []string{"factorization", "time", "planner total", "planner factorize", "measured heap HW", "sigma rel err"},
		Rows:    rows,
		Notes: []string{
			fmt.Sprintf("RMAT scale %d (%d vertices, %d arcs), d=%d, M=%d; sigma rel err vs the rSVD baseline over the leading third",
				scale, g.NumVertices(), g.NumEdges(), dim, rec.M),
			factorizeFloorNote,
		},
		Elapsed: time.Since(start),
	}, nil
}
