package experiments

import (
	"fmt"
	"runtime"
	"time"

	"lightne/internal/baselines"
	"lightne/internal/core"
	"lightne/internal/dense"
	"lightne/internal/eval"
	"lightne/internal/gen"
	"lightne/internal/graph"
	"lightne/internal/prone"
)

// E9SmallGraphs regenerates Figure 4: Micro/Macro-F1 vs training ratio on
// the BlogCatalog and YouTube replicas for six methods — LightNE, ProNE+,
// NetSMF, DeepWalk-SGD (GraphVite stand-in), LINE-SGD (PBG stand-in), and
// NetMF-no-log (the NRP stand-in; see DESIGN.md).
func E9SmallGraphs(opt Options) (*Report, error) {
	start := time.Now()
	type task struct {
		mk     func(uint64) (*gen.Dataset, error)
		ratios []float64
	}
	tasks := []task{
		{gen.BlogCatalogLike, []float64{0.1, 0.3, 0.5, 0.7, 0.9}},
		{gen.YouTubeLike, []float64{0.02, 0.04, 0.06, 0.08, 0.10}},
	}
	if opt.Quick {
		tasks[0].ratios = []float64{0.1, 0.5, 0.9}
		tasks[1].ratios = []float64{0.02, 0.10}
	}
	dim := 32
	var rows [][]string
	for _, tk := range tasks {
		ds, err := tk.mk(opt.Seed)
		if err != nil {
			return nil, err
		}
		methods, err := smallGraphEmbeddings(ds.Graph, dim, opt)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			microRow := []string{ds.Name, m.name, "Micro-F1"}
			macroRow := []string{ds.Name, m.name, "Macro-F1"}
			for _, ratio := range tk.ratios {
				cr, err := eval.NodeClassification(m.x, ds.Labels.Of, ds.Labels.NumClasses, ratio, opt.Seed+20, eval.DefaultTrain())
				if err != nil {
					return nil, err
				}
				microRow = append(microRow, pct(cr.MicroF1))
				macroRow = append(macroRow, pct(cr.MacroF1))
			}
			rows = append(rows, microRow, macroRow)
		}
	}
	headers := []string{"dataset", "method", "metric"}
	maxRatios := len(tasks[0].ratios)
	if len(tasks[1].ratios) > maxRatios {
		maxRatios = len(tasks[1].ratios)
	}
	for i := 0; i < maxRatios; i++ {
		headers = append(headers, fmt.Sprintf("ratio%d", i+1))
	}
	for i, row := range rows {
		for len(row) < len(headers) {
			row = append(row, "-")
		}
		rows[i] = row
	}
	return &Report{
		ID:       "E9",
		Title:    "Figure 4: small-graph predictive performance vs training ratio",
		PaperRef: "BlogCatalog: LightNE best Macro-F1 throughout, Micro-F1 comparable to GraphVite; YouTube: LightNE/GraphVite lead, LightNE ahead at 1-6%; ProNE+ consistently below LightNE",
		Headers:  headers,
		Rows:     rows,
		Notes: []string{
			"blogcatalog-like ratios 10-90%, youtube-like ratios 2-10% (as in Figure 4)",
			"NetMF-no-log stands in for NRP: it factorizes the same matrix without the truncated logarithm, the omission the paper identifies in NRP (§2)",
		},
		Elapsed: time.Since(start),
	}, nil
}

type namedEmbedding struct {
	name string
	x    *dense.Matrix
}

// smallGraphEmbeddings trains all six Figure-4 methods on one graph.
func smallGraphEmbeddings(g *graph.Graph, dim int, opt Options) ([]namedEmbedding, error) {
	var out []namedEmbedding

	cfg := core.DefaultConfig(dim)
	cfg.SampleMultiple = 5
	if opt.Quick {
		cfg.SampleMultiple = 1
	}
	cfg.Oversample, cfg.PowerIters = rsvdOversample, rsvdPowerIters
	cfg.Seed = opt.Seed + 21
	res, err := core.Embed(g, cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, namedEmbedding{"LightNE", res.Embedding})

	pcfg := prone.DefaultConfig(dim)
	pcfg.Oversample, pcfg.PowerIters = rsvdOversample, rsvdPowerIters
	pcfg.Seed = opt.Seed + 22
	pres, err := prone.Run(g, pcfg)
	if err != nil {
		return nil, err
	}
	out = append(out, namedEmbedding{"ProNE+", pres.Embedding})

	ncfg := cfg
	ncfg.NoDownsample = true
	ncfg.SkipPropagation = true
	nres, err := core.Embed(g, ncfg)
	if err != nil {
		return nil, err
	}
	out = append(out, namedEmbedding{"NetSMF", nres.Embedding})

	dwCfg := baselines.DefaultDeepWalk(dim)
	dwCfg.WalksPerNode, dwCfg.WalkLength, dwCfg.Window, dwCfg.Negatives = 6, 30, 4, 4
	if opt.Quick {
		dwCfg.WalksPerNode = 2
	}
	dwCfg.Seed = opt.Seed + 23
	dwX, err := baselines.DeepWalk(g, dwCfg)
	if err != nil {
		return nil, err
	}
	out = append(out, namedEmbedding{"DeepWalk-SGD (GraphVite)", dwX})

	lnCfg := baselines.DefaultLINE(dim)
	lnCfg.Seed = opt.Seed + 24
	if opt.Quick {
		lnCfg.Samples = 10 * g.NumEdges()
	}
	lnX, err := baselines.LINE(g, lnCfg)
	if err != nil {
		return nil, err
	}
	out = append(out, namedEmbedding{"LINE-SGD (PBG)", lnX})

	n2vCfg := baselines.DefaultNode2Vec(dim)
	n2vCfg.WalksPerNode, n2vCfg.WalkLength, n2vCfg.Window, n2vCfg.Negatives = 6, 30, 4, 4
	if opt.Quick {
		n2vCfg.WalksPerNode = 2
	}
	n2vCfg.Seed = opt.Seed + 26
	n2vX, err := baselines.Node2Vec(g, n2vCfg)
	if err != nil {
		return nil, err
	}
	out = append(out, namedEmbedding{"node2vec-SGD", n2vX})

	if g.NumVertices() <= 4000 {
		nrpX, err := baselines.NetMFExact(g, baselines.NetMFConfig{
			T: 10, Dim: dim, Seed: opt.Seed + 25, SkipLog: true,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, namedEmbedding{"NetMF-no-log (NRP)", nrpX})
	}
	return out, nil
}

// E10DatasetStats regenerates the Table 2/3 analogs: the replica inventory
// with paper-scale metadata, plus the machine configuration in place of the
// paper's hardware table.
func E10DatasetStats(opt Options) (*Report, error) {
	start := time.Now()
	var rows [][]string
	names := gen.AllNames()
	if opt.Quick {
		names = names[:3]
	}
	for _, name := range names {
		ds, err := gen.ByName(name, opt.Seed)
		if err != nil {
			return nil, err
		}
		st := gen.Describe(ds.Name, ds.Graph)
		labels := "-"
		if ds.Labels != nil {
			labeled := 0
			for _, ls := range ds.Labels.Of {
				if len(ls) > 0 {
					labeled++
				}
			}
			labels = fmt.Sprintf("%d classes / %d labeled", ds.Labels.NumClasses, labeled)
		}
		rows = append(rows, []string{
			st.Name,
			fmt.Sprintf("%d", st.N),
			fmt.Sprintf("%d", st.Arcs/2),
			fmt.Sprintf("%.1f", st.AvgDegree),
			fmt.Sprintf("%d", st.MaxDegree),
			labels,
			fmt.Sprintf("%d / %d", ds.PaperN, ds.PaperM),
		})
	}
	return &Report{
		ID:       "E10",
		Title:    "Tables 2-3: dataset replica inventory and machine configuration",
		PaperRef: "paper hardware: 2x Xeon E5-2699 v4 (88 vCores), 1.5TB RAM; datasets: BlogCatalog 10K/334K ... Hyperlink2014-Sym 1.7B/124B",
		Headers:  []string{"replica", "|V|", "|E|", "avg deg", "max deg", "labels", "paper |V| / |E|"},
		Rows:     rows,
		Notes: []string{
			fmt.Sprintf("this machine: %d logical CPUs (GOMAXPROCS=%d), %s/%s",
				runtime.NumCPU(), runtime.GOMAXPROCS(0), runtime.GOOS, runtime.GOARCH),
		},
		Elapsed: time.Since(start),
	}, nil
}
