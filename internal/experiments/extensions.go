package experiments

import (
	"fmt"
	"time"

	"lightne/internal/aggregate"
	"lightne/internal/core"
	"lightne/internal/dynamic"
	"lightne/internal/eval"
	"lightne/internal/gen"
	"lightne/internal/graph"
)

// E11DynamicEmbedding goes beyond the paper's tables into its §6 future
// work: streaming re-embedding. 30% of a community graph's edges are held
// back and delivered in three batches; the incremental embedder samples
// only each batch, and its quality is compared against a full rebuild of
// the final graph — quantifying the incremental-vs-refresh trade the §1
// deployments (Alibaba/LinkedIn) navigate.
func E11DynamicEmbedding(opt Options) (*Report, error) {
	start := time.Now()
	ds, err := gen.FriendsterSmallLike(opt.Seed)
	if err != nil {
		return nil, err
	}
	full, labels := ds.Graph, ds.Labels
	var all []graph.Edge
	for u := 0; u < full.NumVertices(); u++ {
		for _, v := range full.Neighbors(uint32(u), nil) {
			if uint32(u) < v {
				all = append(all, graph.Edge{U: uint32(u), V: v})
			}
		}
	}
	cut := len(all) * 7 / 10
	initial, err := graph.FromEdges(full.NumVertices(), all[:cut], graph.DefaultOptions())
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(32)
	cfg.T = 5
	cfg.SampleMultiple = 3
	if opt.Quick {
		cfg.SampleMultiple = 1
	}
	cfg.Oversample, cfg.PowerIters = rsvdOversample, rsvdPowerIters
	cfg.Seed = opt.Seed + 31

	t0 := time.Now()
	emb, err := dynamic.New(initial, cfg)
	if err != nil {
		return nil, err
	}
	initTime := time.Since(t0)

	evalNow := func() (float64, error) {
		x, err := emb.Embed()
		if err != nil {
			return 0, err
		}
		cr, err := eval.NodeClassification(x, labels.Of, labels.NumClasses, 0.1, opt.Seed+32, eval.DefaultTrain())
		if err != nil {
			return 0, err
		}
		return cr.MicroF1, nil
	}

	var rows [][]string
	f1, err := evalNow()
	if err != nil {
		return nil, err
	}
	rows = append(rows, []string{"initial (70% of edges)", dur(initTime), fmt.Sprintf("%d", emb.NumEdges()), "0.00", pct(f1)})

	stream := all[cut:]
	batches := 3
	per := len(stream) / batches
	for b := 0; b < batches; b++ {
		lo, hi := b*per, (b+1)*per
		if b == batches-1 {
			hi = len(stream)
		}
		t0 = time.Now()
		if err := emb.AddEdges(stream[lo:hi]); err != nil {
			return nil, err
		}
		batchTime := time.Since(t0)
		f1, err = evalNow()
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			fmt.Sprintf("after batch %d (+%d edges)", b+1, hi-lo),
			dur(batchTime),
			fmt.Sprintf("%d", emb.NumEdges()),
			fmt.Sprintf("%.2f", emb.Staleness()),
			pct(f1),
		})
	}
	t0 = time.Now()
	if err := emb.Refresh(); err != nil {
		return nil, err
	}
	refreshTime := time.Since(t0)
	f1, err = evalNow()
	if err != nil {
		return nil, err
	}
	rows = append(rows, []string{"full refresh", dur(refreshTime), fmt.Sprintf("%d", emb.NumEdges()), "0.00", pct(f1)})

	return &Report{
		ID:       "E11",
		Title:    "Extension: streaming/dynamic re-embedding (paper §6 future work)",
		PaperRef: "not in the paper's evaluation; §6 names streaming/dynamic embedding as future work and §1 motivates it via Alibaba/LinkedIn periodic re-embedding",
		Headers:  []string{"state", "sampling time", "edges", "staleness", "Micro-F1@10%"},
		Rows:     rows,
		Notes: []string{
			"incremental batches sample only the new edges; the full refresh resamples everything — compare the sampling-time column",
		},
		Elapsed: time.Since(start),
	}, nil
}

// E12AggregationStrategies tabulates the §4.2 design space: the three
// aggregation strategies on an identical concurrent sample stream.
func E12AggregationStrategies(opt Options) (*Report, error) {
	start := time.Now()
	workers := 8
	perWorker, distinct := 100_000, 200_000
	if opt.Quick {
		perWorker, distinct = 20_000, 50_000
	}
	strategies := []struct {
		name string
		mk   func() aggregate.Aggregator
	}{
		{"per-worker lists + histogram merge", func() aggregate.Aggregator { return aggregate.NewListHistogram(workers) }},
		{"per-worker tables, merged at end (NetSMF)", func() aggregate.Aggregator { return aggregate.NewPerWorkerTables(workers) }},
		{"shared lock-free table, xadd (LightNE)", func() aggregate.Aggregator { return aggregate.NewSharedTable(distinct * 2) }},
	}
	var rows [][]string
	for _, s := range strategies {
		agg := s.mk()
		t0 := time.Now()
		total := aggregate.RunWorkload(agg, workers, perWorker, distinct, opt.Seed)
		elapsed := time.Since(t0)
		if total != float64(workers*perWorker) {
			return nil, fmt.Errorf("%s lost samples: %.0f of %d", s.name, total, workers*perWorker)
		}
		rows = append(rows, []string{
			s.name, dur(elapsed), fmt.Sprintf("%.1f MB", float64(agg.MemoryBytes())/1e6),
		})
	}
	return &Report{
		ID:       "E12",
		Title:    "Extension: §4.2 aggregation design space on one sample stream",
		PaperRef: "paper §4.2: \"Ultimately, we found that the fastest and most memory-efficient method across all of our inputs was to use sparse parallel hashing\"",
		Headers:  []string{"strategy", "time", "memory"},
		Rows:     rows,
		Notes: []string{
			fmt.Sprintf("%d workers x %d samples over %d distinct edges; every sample accounted for exactly in all strategies", workers, perWorker, distinct),
		},
		Elapsed: time.Since(start),
	}, nil
}

// E13CompressionScaling quantifies the §4.1/§5.3 claim that parallel-byte
// compression is what lets very large graphs fit in memory: adjacency
// footprint and end-to-end sampling time with compression off and on, on
// the two web-graph replicas.
func E13CompressionScaling(opt Options) (*Report, error) {
	start := time.Now()
	datasets := []func(uint64) (*gen.Dataset, error){gen.ClueWebLike, gen.Hyperlink2014Like}
	if opt.Quick {
		datasets = datasets[:1]
	}
	var rows [][]string
	for _, mk := range datasets {
		ds, err := mk(opt.Seed)
		if err != nil {
			return nil, err
		}
		plain := ds.Graph
		// Rebuild with parallel-byte compression.
		var arcs []graph.Edge
		for u := 0; u < plain.NumVertices(); u++ {
			for _, v := range plain.Neighbors(uint32(u), nil) {
				if uint32(u) < v {
					arcs = append(arcs, graph.Edge{U: uint32(u), V: v})
				}
			}
		}
		copt := graph.DefaultOptions()
		copt.Compress = true
		compressed, err := graph.FromEdges(plain.NumVertices(), arcs, copt)
		if err != nil {
			return nil, err
		}
		for _, tc := range []struct {
			name string
			g    *graph.Graph
		}{{"plain CSR", plain}, {"parallel-byte", compressed}} {
			cfg := core.DefaultConfig(32)
			cfg.T = 2
			cfg.SampleMultiple = 0.5
			cfg.SkipPropagation = true
			cfg.Oversample, cfg.PowerIters = rsvdOversample, rsvdPowerIters
			cfg.Seed = opt.Seed + 37
			t0 := time.Now()
			res, err := core.Embed(tc.g, cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, []string{
				ds.Name, tc.name,
				fmt.Sprintf("%.1f MB", float64(tc.g.SizeBytes())/1e6),
				dur(res.Timing.Sparsifier),
				dur(time.Since(t0)),
			})
		}
	}
	return &Report{
		ID:       "E13",
		Title:    "Extension: parallel-byte compression footprint vs walk cost (§4.1, §5.3)",
		PaperRef: "paper §5.3: compression shrinks ClueWeb-Sym from 564GB to 107GB (5.3x), the difference between fitting in 1.5TB or not; §4.2: block decoding makes arbitrary-edge fetches costlier",
		Headers:  []string{"dataset", "adjacency", "memory", "sparsifier time", "total time"},
		Rows:     rows,
		Notes: []string{
			"same embedding configuration on the same graph; compression trades sampling speed for the memory that §5.3 shows is the binding constraint",
		},
		Elapsed: time.Since(start),
	}, nil
}
