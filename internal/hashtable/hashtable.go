// Package hashtable implements the sparse parallel hash table LightNE uses
// to aggregate PathSampling results into the sparsifier (paper §4.2,
// "Sparse Parallel Hashing"). It is the folklore concurrent open-addressing
// table: linear probing, no deletions, lock-free inserts via compare-and-swap
// on the key slot, and weight accumulation via atomic fetch-and-add — Go's
// atomic.AddUint64 compiles to the LOCK XADD instruction the paper singles
// out as decisively faster than a CAS loop under contention.
//
// Weights are stored in 44.20 fixed point (2^-20 resolution) so that
// accumulation is a single integer xadd rather than a CAS loop on float
// bits; exactness of *counts* is preserved (each sample adds the identical
// fixed-point increment), matching the paper's "exact count of each edge"
// guarantee.
//
// Growth is handled with a readers-writer lock: inserts hold the read side
// (uncontended in steady state), and a full table triggers a single-writer
// rehash to double capacity. Callers that can estimate the number of
// distinct keys should presize via New's capacity hint to avoid growth
// entirely, as LightNE's sampler does.
package hashtable

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"lightne/internal/par"
)

const (
	emptyKey = ^uint64(0)
	// FixedPointShift is the number of fractional bits in stored weights.
	FixedPointShift = 20
	// fixedOne is 1.0 in fixed point.
	fixedOne = 1 << FixedPointShift
	// maxLoadNum/maxLoadDen is the load factor at which the table grows.
	maxLoadNum, maxLoadDen = 7, 8
)

// Key packs a directed edge (u, v) into the table's key space.
// The pair (0xffffffff, 0xffffffff) is reserved.
func Key(u, v uint32) uint64 { return uint64(u)<<32 | uint64(v) }

// UnpackKey splits a packed key back into (u, v).
func UnpackKey(k uint64) (u, v uint32) { return uint32(k >> 32), uint32(k) }

// ToFixed converts a weight to fixed point, rounding to nearest.
func ToFixed(w float64) uint64 { return uint64(w*fixedOne + 0.5) }

// FromFixed converts a fixed-point weight back to float64.
func FromFixed(f uint64) float64 { return float64(f) / fixedOne }

// Table is a concurrent weighted-count hash table keyed by packed edges.
type Table struct {
	mu    sync.RWMutex
	keys  []uint64
	vals  []uint64
	mask  uint64
	count int64 // distinct keys, updated atomically
}

// New returns a table presized to hold capacityHint distinct keys without
// growing. A hint <= 0 selects a small default.
func New(capacityHint int) *Table {
	if capacityHint < 16 {
		capacityHint = 16
	}
	// Size so that capacityHint keys sit below the max load factor.
	need := uint64(capacityHint) * maxLoadDen / maxLoadNum
	cap64 := uint64(1) << bits.Len64(need)
	t := &Table{}
	t.init(cap64)
	return t
}

func (t *Table) init(capacity uint64) {
	t.keys = make([]uint64, capacity)
	for i := range t.keys {
		t.keys[i] = emptyKey
	}
	t.vals = make([]uint64, capacity)
	t.mask = capacity - 1
}

// hash mixes a packed key (SplitMix64 finalizer).
func hash(k uint64) uint64 {
	k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9
	k = (k ^ (k >> 27)) * 0x94d049bb133111eb
	return k ^ (k >> 31)
}

// Add accumulates weight w onto key (u, v), inserting it if absent.
// Safe for concurrent use.
func (t *Table) Add(u, v uint32, w float64) {
	t.AddFixed(Key(u, v), ToFixed(w))
}

// AddFixed accumulates a fixed-point weight onto a packed key.
func (t *Table) AddFixed(key, fixed uint64) {
	for {
		t.mu.RLock()
		ok := t.tryAdd(key, fixed)
		t.mu.RUnlock()
		if ok {
			return
		}
		t.grow()
	}
}

// tryAdd attempts a lock-free insert-or-accumulate. It reports false if the
// table is at its load limit (the caller must grow and retry).
func (t *Table) tryAdd(key, fixed uint64) bool {
	i := hash(key) & t.mask
	for {
		k := atomic.LoadUint64(&t.keys[i])
		if k == key {
			atomic.AddUint64(&t.vals[i], fixed)
			return true
		}
		if k == emptyKey {
			// Respect the load factor before claiming a new slot.
			if atomic.LoadInt64(&t.count)*maxLoadDen >= int64(t.mask+1)*maxLoadNum {
				return false
			}
			if atomic.CompareAndSwapUint64(&t.keys[i], emptyKey, key) {
				atomic.AddInt64(&t.count, 1)
				atomic.AddUint64(&t.vals[i], fixed)
				return true
			}
			// Lost the race; reinspect this slot (it may now hold our key).
			continue
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles capacity. Only one writer rehashes; concurrent Adds wait.
func (t *Table) grow() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if atomic.LoadInt64(&t.count)*maxLoadDen < int64(t.mask+1)*maxLoadNum {
		return // another goroutine already grew
	}
	oldKeys, oldVals := t.keys, t.vals
	t.init((t.mask + 1) * 2)
	for i, k := range oldKeys {
		if k == emptyKey {
			continue
		}
		j := hash(k) & t.mask
		for t.keys[j] != emptyKey {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
	}
}

// Len returns the number of distinct keys.
func (t *Table) Len() int { return int(atomic.LoadInt64(&t.count)) }

// Capacity returns the current slot count.
func (t *Table) Capacity() int { return len(t.keys) }

// MemoryBytes returns the table's slot storage footprint.
func (t *Table) MemoryBytes() int64 { return int64(len(t.keys)) * 16 }

// Get returns the accumulated weight for (u, v) and whether it is present.
// Safe for concurrent use with Add.
func (t *Table) Get(u, v uint32) (float64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	key := Key(u, v)
	i := hash(key) & t.mask
	for {
		k := atomic.LoadUint64(&t.keys[i])
		if k == key {
			return FromFixed(atomic.LoadUint64(&t.vals[i])), true
		}
		if k == emptyKey {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// ForEach calls fn for every (key, weight) pair, in parallel over slots.
// Must not run concurrently with Add.
func (t *Table) ForEach(fn func(u, v uint32, w float64)) {
	par.For(len(t.keys), 4096, func(i int) {
		k := t.keys[i]
		if k == emptyKey {
			return
		}
		u, v := UnpackKey(k)
		fn(u, v, FromFixed(t.vals[i]))
	})
}

// Drain returns all entries as parallel slices (unordered) and keeps the
// table intact. Must not run concurrently with Add.
func (t *Table) Drain() (us, vs []uint32, ws []float64) {
	n := t.Len()
	us = make([]uint32, 0, n)
	vs = make([]uint32, 0, n)
	ws = make([]float64, 0, n)
	for i, k := range t.keys {
		if k == emptyKey {
			continue
		}
		u, v := UnpackKey(k)
		us = append(us, u)
		vs = append(vs, v)
		ws = append(ws, FromFixed(t.vals[i]))
	}
	return us, vs, ws
}
