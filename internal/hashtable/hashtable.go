// Package hashtable implements the sparse parallel hash table LightNE uses
// to aggregate PathSampling results into the sparsifier (paper §4.2,
// "Sparse Parallel Hashing"). It is the folklore concurrent open-addressing
// table: linear probing, no deletions, lock-free inserts via compare-and-swap
// on the key slot, and weight accumulation via atomic fetch-and-add — Go's
// atomic.AddUint64 compiles to the LOCK XADD instruction the paper singles
// out as decisively faster than a CAS loop under contention.
//
// Weights are stored in 44.20 fixed point (2^-20 resolution) so that
// accumulation is a single integer xadd rather than a CAS loop on float
// bits; exactness of *counts* is preserved (each sample adds the identical
// fixed-point increment), matching the paper's "exact count of each edge"
// guarantee.
//
// Growth is handled with a readers-writer lock: inserts hold the read side
// (uncontended in steady state), and a full table triggers a single-writer
// rehash to double capacity. Callers that can estimate the number of
// distinct keys should presize via New's capacity hint to avoid growth
// entirely, as LightNE's sampler does.
package hashtable

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"lightne/internal/par"
	"lightne/internal/radix"
)

const (
	emptyKey = ^uint64(0)
	// FixedPointShift is the number of fractional bits in stored weights.
	FixedPointShift = 20
	// fixedOne is 1.0 in fixed point.
	fixedOne = 1 << FixedPointShift
	// maxLoadNum/maxLoadDen is the load factor at which the table grows.
	maxLoadNum, maxLoadDen = 7, 8
)

// Key packs a directed edge (u, v) into the table's key space.
// The pair (0xffffffff, 0xffffffff) is reserved.
func Key(u, v uint32) uint64 { return uint64(u)<<32 | uint64(v) }

// UnpackKey splits a packed key back into (u, v).
func UnpackKey(k uint64) (u, v uint32) { return uint32(k >> 32), uint32(k) }

// MaxWeight is the largest single weight ToFixed can represent: the 44.20
// layout tops out just below 2^44. Larger weights saturate rather than wrap.
const MaxWeight = float64(math.MaxUint64) / fixedOne

// ToFixed converts a weight to fixed point, rounding to nearest. The valid
// domain is [0, MaxWeight]: negative weights and NaN clamp to 0, and weights
// at or above 2^44 saturate to the maximum representable value. Without the
// clamps the float→uint64 conversion of an out-of-range value is
// platform-dependent in Go (wrap on amd64, saturate-ish on arm64), which
// would silently corrupt aggregates.
//
// Note the clamp bounds a single conversion only; the table's accumulation
// (atomic add of fixed-point increments) can still wrap if per-edge totals
// approach 2^44, which the sampler's O(max_degree/C) importance weights and
// realistic sample counts stay far below.
func ToFixed(w float64) uint64 {
	if !(w > 0) { // negative, zero, or NaN
		return 0
	}
	f := w*fixedOne + 0.5
	if f >= 1<<64 {
		return math.MaxUint64
	}
	return uint64(f)
}

// FromFixed converts a fixed-point weight back to float64.
func FromFixed(f uint64) float64 { return float64(f) / fixedOne }

// Table is a concurrent weighted-count hash table keyed by packed edges.
type Table struct {
	mu    sync.RWMutex
	keys  []uint64
	vals  []uint64
	mask  uint64
	count int64 // distinct keys, updated atomically
	peak  int64 // high-water mark of transient slot storage, updated atomically
}

// New returns a table presized to hold capacityHint distinct keys without
// growing. A hint <= 0 selects a small default.
func New(capacityHint int) *Table {
	t := &Table{}
	t.init(presize(capacityHint))
	t.notePeak(t.MemoryBytes())
	return t
}

// presize returns the smallest power-of-two capacity that admits
// capacityHint distinct keys under the load-factor check in tryAdd: the k-th
// insert requires (k-1)*maxLoadDen < cap*maxLoadNum. The earlier formula had
// two off-by-one flavors — bits.Len64 doubled exact powers of two, and the
// truncating *maxLoadDen/maxLoadNum division could undersize by one slot —
// either of which made a "presized" table grow once anyway.
func presize(capacityHint int) uint64 {
	if capacityHint < 1 {
		capacityHint = 1
	}
	need := uint64(capacityHint-1)*maxLoadDen/maxLoadNum + 1
	c := uint64(1) << bits.Len64(need-1)
	if c < 16 {
		c = 16
	}
	return c
}

func (t *Table) init(capacity uint64) {
	t.keys = make([]uint64, capacity)
	for i := range t.keys {
		t.keys[i] = emptyKey
	}
	t.vals = make([]uint64, capacity)
	t.mask = capacity - 1
}

// hash mixes a packed key (SplitMix64 finalizer).
func hash(k uint64) uint64 {
	k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9
	k = (k ^ (k >> 27)) * 0x94d049bb133111eb
	return k ^ (k >> 31)
}

// Add accumulates weight w onto key (u, v), inserting it if absent.
// Safe for concurrent use.
func (t *Table) Add(u, v uint32, w float64) {
	t.AddFixed(Key(u, v), ToFixed(w))
}

// AddFixed accumulates a fixed-point weight onto a packed key.
func (t *Table) AddFixed(key, fixed uint64) {
	for {
		t.mu.RLock()
		ok := t.tryAdd(key, fixed)
		t.mu.RUnlock()
		if ok {
			return
		}
		t.grow()
	}
}

// batchGrain is the per-chunk insert count for AddFixedBatch. Inserts are
// memory-bound random probes, so chunks stay small enough to keep all
// workers busy on modest batches.
const batchGrain = 2048

// AddFixedBatch accumulates every (key, fixed-point weight) pair,
// parallelizing the inserts over chunks of the batch. Equivalent to calling
// AddFixed for each pair — accumulation is commutative, so the result is
// independent of chunk geometry. Safe for concurrent use with AddFixed
// (inserts are lock-free; a grow triggered mid-batch stalls and retries
// exactly as single inserts do). len(keys) must equal len(fixed).
func (t *Table) AddFixedBatch(keys, fixed []uint64) {
	if len(keys) != len(fixed) {
		panic("hashtable: keys and fixed must have equal length")
	}
	par.ForRange(len(keys), batchGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.AddFixed(keys[i], fixed[i])
		}
	})
}

// tryAdd attempts a lock-free insert-or-accumulate. It reports false if the
// table is at its load limit (the caller must grow and retry).
func (t *Table) tryAdd(key, fixed uint64) bool {
	i := hash(key) & t.mask
	for {
		k := atomic.LoadUint64(&t.keys[i])
		if k == key {
			atomic.AddUint64(&t.vals[i], fixed)
			return true
		}
		if k == emptyKey {
			// Respect the load factor before claiming a new slot.
			if atomic.LoadInt64(&t.count)*maxLoadDen >= int64(t.mask+1)*maxLoadNum {
				return false
			}
			if atomic.CompareAndSwapUint64(&t.keys[i], emptyKey, key) {
				atomic.AddInt64(&t.count, 1)
				atomic.AddUint64(&t.vals[i], fixed)
				return true
			}
			// Lost the race; reinspect this slot (it may now hold our key).
			continue
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles capacity. Only one writer rehashes; concurrent Adds wait.
func (t *Table) grow() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if atomic.LoadInt64(&t.count)*maxLoadDen < int64(t.mask+1)*maxLoadNum {
		return // another goroutine already grew
	}
	oldKeys, oldVals := t.keys, t.vals
	t.init((t.mask + 1) * 2)
	// While rehashing, old and new slot arrays coexist: the true peak is
	// their sum (1.5x the post-grow footprint), which MemoryBytes alone
	// never shows — exactly the transient a capacity planner must budget.
	t.notePeak(int64(len(oldKeys))*16 + t.MemoryBytes())
	for i, k := range oldKeys {
		if k == emptyKey {
			continue
		}
		j := hash(k) & t.mask
		for t.keys[j] != emptyKey {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
	}
}

// Len returns the number of distinct keys.
func (t *Table) Len() int { return int(atomic.LoadInt64(&t.count)) }

// Capacity returns the current slot count.
func (t *Table) Capacity() int { return len(t.keys) }

// MemoryBytes returns the table's slot storage footprint.
func (t *Table) MemoryBytes() int64 { return int64(len(t.keys)) * 16 }

// PeakMemoryBytes returns the high-water mark of slot storage over the
// table's lifetime, including the grow transient where the old and new
// slot arrays coexist. Equals MemoryBytes for a table that never grew.
func (t *Table) PeakMemoryBytes() int64 { return atomic.LoadInt64(&t.peak) }

// notePeak raises the recorded high-water mark to bytes if it is larger.
func (t *Table) notePeak(bytes int64) {
	for {
		cur := atomic.LoadInt64(&t.peak)
		if bytes <= cur || atomic.CompareAndSwapInt64(&t.peak, cur, bytes) {
			return
		}
	}
}

// Get returns the accumulated weight for (u, v) and whether it is present.
// Safe for concurrent use with Add.
func (t *Table) Get(u, v uint32) (float64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	key := Key(u, v)
	i := hash(key) & t.mask
	for {
		k := atomic.LoadUint64(&t.keys[i])
		if k == key {
			return FromFixed(atomic.LoadUint64(&t.vals[i])), true
		}
		if k == emptyKey {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// ForEach calls fn for every (key, weight) pair, in parallel over slots.
// Must not run concurrently with Add.
func (t *Table) ForEach(fn func(u, v uint32, w float64)) {
	par.For(len(t.keys), 4096, func(i int) {
		k := t.keys[i]
		if k == emptyKey {
			return
		}
		u, v := UnpackKey(k)
		fn(u, v, FromFixed(t.vals[i]))
	})
}

// drainGrain is the slot-array chunk size for the parallel drain passes.
const drainGrain = 4096

// occupancy counts occupied slots per block of the slot array and returns
// the block boundaries plus per-block counts: the first pass of the
// two-pass (count, scan, fill) drain. The same bounds must be reused for
// the fill pass so block indices line up.
func (t *Table) occupancy() (bounds []int, counts []int64) {
	bounds = par.Blocks(len(t.keys), drainGrain)
	counts = make([]int64, len(bounds)-1)
	if len(bounds) == 2 {
		// Single block: the maintained key count already is the occupancy,
		// so skip the counting pass entirely.
		counts[0] = int64(t.Len())
		return bounds, counts
	}
	par.ForBlocks(bounds, func(b, lo, hi int) {
		var c int64
		for i := lo; i < hi; i++ {
			if t.keys[i] != emptyKey {
				c++
			}
		}
		counts[b] = c
	})
	return bounds, counts
}

// Drain returns all entries as parallel slices (unordered by key, stable in
// slot order) and keeps the table intact. Must not run concurrently with
// Add. The drain is fully parallel: a per-block occupancy count, an
// exclusive scan over block counts, and a parallel fill into exactly-sized
// output slices — no append, no lock (paper §4.2: the sparsifier hand-off
// is part of the parallel pipeline, not a sequential epilogue).
func (t *Table) Drain() (us, vs []uint32, ws []float64) {
	bounds, counts := t.occupancy()
	total := par.ExclusiveScan(counts)
	us = make([]uint32, total)
	vs = make([]uint32, total)
	ws = make([]float64, total)
	t.fill(bounds, counts, us, vs, ws)
	return us, vs, ws
}

// DrainInto writes every entry into the given slices starting at index 0
// and returns the number written (== Len()). The slices must have length at
// least Len(). It is the allocation-free form of Drain, used by sharded
// aggregators to drain shards in parallel into disjoint regions of one
// output. Must not run concurrently with Add.
func (t *Table) DrainInto(us, vs []uint32, ws []float64) int {
	bounds, counts := t.occupancy()
	total := par.ExclusiveScan(counts)
	t.fill(bounds, counts, us[:total], vs[:total], ws[:total])
	return int(total)
}

// fill is the second drain pass: counts must hold the exclusive scan of the
// per-block occupancy for the same bounds.
func (t *Table) fill(bounds []int, counts []int64, us, vs []uint32, ws []float64) {
	keys, vals := t.keys, t.vals
	par.ForBlocks(bounds, func(b, lo, hi int) {
		w := int(counts[b])
		for i := lo; i < hi; i++ {
			k := keys[i]
			if k == emptyKey {
				continue
			}
			us[w], vs[w] = UnpackKey(k)
			ws[w] = FromFixed(vals[i])
			w++
		}
	})
}

// DrainKeys returns all entries as (packed key, weight) pairs in slot order,
// keeping the table intact — the raw form of Drain used by the CSR builders
// and by sharded aggregators that group across shards. Must not run
// concurrently with Add.
func (t *Table) DrainKeys() (keys []uint64, ws []float64) {
	bounds, counts := t.occupancy()
	total := par.ExclusiveScan(counts)
	keys = make([]uint64, total)
	ws = make([]float64, total)
	t.fillKeys(bounds, counts, keys, ws)
	return keys, ws
}

// DrainKeysInto writes every entry as (packed key, weight) into the given
// slices starting at index 0 and returns the number written (== Len()). The
// slices must have length at least Len(). It is the allocation-free form of
// DrainKeys, used to drain shards in parallel into disjoint regions of one
// output. Must not run concurrently with Add.
func (t *Table) DrainKeysInto(keys []uint64, ws []float64) int {
	bounds, counts := t.occupancy()
	total := par.ExclusiveScan(counts)
	t.fillKeys(bounds, counts, keys[:total], ws[:total])
	return int(total)
}

// fillKeys is the packed-key fill pass: counts must hold the exclusive scan
// of the per-block occupancy for the same bounds.
func (t *Table) fillKeys(bounds []int, counts []int64, keys []uint64, ws []float64) {
	par.ForBlocks(bounds, func(b, lo, hi int) {
		w := counts[b]
		for i := lo; i < hi; i++ {
			k := t.keys[i]
			if k == emptyKey {
				continue
			}
			keys[w] = k
			ws[w] = FromFixed(t.vals[i])
			w++
		}
	})
}

// DrainCSR returns the table's entries grouped by source vertex as CSR
// arrays: rowPtr has numRows+1 entries, and cols/ws hold each row's
// destination vertices (sorted ascending) and weights. Keys in the table
// already being distinct, no merge is needed — the result plugs directly
// into sparse.FromCSRParts, skipping the COO scatter + per-row comparison
// sort entirely. The full-key sort makes the layout a pure function of the
// stored entries, independent of slot order, so repeated runs with the same
// samples produce bit-identical CSR arrays. Every source vertex stored in
// the table must be < numRows. The table is left intact. Must not run
// concurrently with Add.
func (t *Table) DrainCSR(numRows int) (rowPtr []int64, cols []uint32, ws []float64) {
	keys, ws := t.DrainKeys()
	return GroupKeysCSR(keys, ws, numRows)
}

// DrainCSRPartial is DrainCSR with partition-only grouping: rows are grouped
// but columns within a row stay in slot order (unsorted, and therefore not
// reproducible across runs). Safe when the consumer only streams rows —
// SpMM — and never binary-searches them; see radix.GroupCSRPartial.
func (t *Table) DrainCSRPartial(numRows int) (rowPtr []int64, cols []uint32, ws []float64) {
	keys, ws := t.DrainKeys()
	return GroupKeysCSRPartial(keys, ws, numRows)
}

// GroupKeysCSR turns drained (packed key, weight) pairs into CSR arrays with
// the fully-sorted radix grouping. The key slice is consumed (sorted in
// place and reused for the column extraction).
func GroupKeysCSR(keys []uint64, ws []float64, numRows int) (rowPtr []int64, cols []uint32, outWs []float64) {
	rowPtr = radix.GroupCSR(keys, ws, numRows)
	return rowPtr, colsFromKeys(keys), ws
}

// GroupKeysCSRPartial is GroupKeysCSR with partition-only grouping (columns
// within a row keep input order).
func GroupKeysCSRPartial(keys []uint64, ws []float64, numRows int) (rowPtr []int64, cols []uint32, outWs []float64) {
	rowPtr = radix.GroupCSRPartial(keys, ws, numRows)
	return rowPtr, colsFromKeys(keys), ws
}

// colsFromKeys extracts the low 32 bits (destination vertex) of each key.
func colsFromKeys(keys []uint64) []uint32 {
	cols := make([]uint32, len(keys))
	par.For(len(keys), drainGrain, func(i int) {
		cols[i] = uint32(keys[i])
	})
	return cols
}

// ShardOf routes a packed key to one of 1<<bits shards using the high bits
// of the table hash, so shard routing and in-shard probing (which uses the
// low bits via the capacity mask) draw on disjoint parts of the same mix.
// bits == 0 maps every key to shard 0.
func ShardOf(key uint64, bits uint) int {
	return int(hash(key) >> (64 - bits))
}
