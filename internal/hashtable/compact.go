package hashtable

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"lightne/internal/par"
)

// CompactTable is the compressed variant of Table that the paper sketches
// as future work (§6: "designing efficient compression techniques for
// these data structures"): weights are stored as 22.10 fixed-point uint32
// instead of 44.20 uint64, shrinking each slot from 16 to 12 bytes — a 25%
// reduction in the structure that bounds LightNE's affordable sample count.
//
// The trade-offs, quantified in the tests and benchmarks:
//   - per-edge accumulated weight must stay below 2^22 (≈4.2M); the
//     sampler's importance weights are O(max_degree/C), far below that;
//   - weight resolution drops to 2^-10 ≈ 0.001, still far below sampling
//     noise at any realistic M.
//
// Concurrency is identical to Table: CAS-claimed keys, xadd-accumulated
// weights, reader-writer-guarded growth.
type CompactTable struct {
	mu    sync.RWMutex
	keys  []uint64
	vals  []uint32
	mask  uint64
	count int64
}

// CompactFixedPointShift is the fractional bit count of CompactTable
// weights.
const CompactFixedPointShift = 10

// ToCompactFixed converts a weight to 22.10 fixed point.
func ToCompactFixed(w float64) uint32 {
	return uint32(w*(1<<CompactFixedPointShift) + 0.5)
}

// FromCompactFixed converts a 22.10 fixed-point weight back to float64.
func FromCompactFixed(f uint32) float64 {
	return float64(f) / (1 << CompactFixedPointShift)
}

// NewCompact returns a compact table presized for capacityHint keys.
func NewCompact(capacityHint int) *CompactTable {
	if capacityHint < 16 {
		capacityHint = 16
	}
	need := uint64(capacityHint) * maxLoadDen / maxLoadNum
	t := &CompactTable{}
	t.init(uint64(1) << bits.Len64(need))
	return t
}

func (t *CompactTable) init(capacity uint64) {
	t.keys = make([]uint64, capacity)
	for i := range t.keys {
		t.keys[i] = emptyKey
	}
	t.vals = make([]uint32, capacity)
	t.mask = capacity - 1
}

// Add accumulates weight w onto key (u, v).
func (t *CompactTable) Add(u, v uint32, w float64) {
	t.AddFixed(Key(u, v), ToCompactFixed(w))
}

// AddFixed accumulates a fixed-point weight onto a packed key.
func (t *CompactTable) AddFixed(key uint64, fixed uint32) {
	for {
		t.mu.RLock()
		ok := t.tryAdd(key, fixed)
		t.mu.RUnlock()
		if ok {
			return
		}
		t.grow()
	}
}

func (t *CompactTable) tryAdd(key uint64, fixed uint32) bool {
	i := hash(key) & t.mask
	for {
		k := atomic.LoadUint64(&t.keys[i])
		if k == key {
			atomic.AddUint32(&t.vals[i], fixed)
			return true
		}
		if k == emptyKey {
			if atomic.LoadInt64(&t.count)*maxLoadDen >= int64(t.mask+1)*maxLoadNum {
				return false
			}
			if atomic.CompareAndSwapUint64(&t.keys[i], emptyKey, key) {
				atomic.AddInt64(&t.count, 1)
				atomic.AddUint32(&t.vals[i], fixed)
				return true
			}
			continue
		}
		i = (i + 1) & t.mask
	}
}

func (t *CompactTable) grow() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if atomic.LoadInt64(&t.count)*maxLoadDen < int64(t.mask+1)*maxLoadNum {
		return
	}
	oldKeys, oldVals := t.keys, t.vals
	t.init((t.mask + 1) * 2)
	for i, k := range oldKeys {
		if k == emptyKey {
			continue
		}
		j := hash(k) & t.mask
		for t.keys[j] != emptyKey {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
	}
}

// Len returns the number of distinct keys.
func (t *CompactTable) Len() int { return int(atomic.LoadInt64(&t.count)) }

// Capacity returns the slot count.
func (t *CompactTable) Capacity() int { return len(t.keys) }

// MemoryBytes returns the slot storage footprint (12 bytes per slot).
func (t *CompactTable) MemoryBytes() int64 {
	return int64(len(t.keys))*8 + int64(len(t.vals))*4
}

// Get returns the accumulated weight for (u, v).
func (t *CompactTable) Get(u, v uint32) (float64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	key := Key(u, v)
	i := hash(key) & t.mask
	for {
		k := atomic.LoadUint64(&t.keys[i])
		if k == key {
			return FromCompactFixed(atomic.LoadUint32(&t.vals[i])), true
		}
		if k == emptyKey {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// ForEach calls fn for every entry in parallel. Must not race with Add.
func (t *CompactTable) ForEach(fn func(u, v uint32, w float64)) {
	par.For(len(t.keys), 4096, func(i int) {
		k := t.keys[i]
		if k == emptyKey {
			return
		}
		u, v := UnpackKey(k)
		fn(u, v, FromCompactFixed(t.vals[i]))
	})
}

// Drain returns all entries as parallel slices. Must not race with Add.
func (t *CompactTable) Drain() (us, vs []uint32, ws []float64) {
	n := t.Len()
	us = make([]uint32, 0, n)
	vs = make([]uint32, 0, n)
	ws = make([]float64, 0, n)
	for i, k := range t.keys {
		if k == emptyKey {
			continue
		}
		u, v := UnpackKey(k)
		us = append(us, u)
		vs = append(vs, v)
		ws = append(ws, FromCompactFixed(t.vals[i]))
	}
	return us, vs, ws
}
