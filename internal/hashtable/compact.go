package hashtable

import (
	"math"
	"sync"
	"sync/atomic"

	"lightne/internal/par"
)

// CompactTable is the compressed variant of Table that the paper sketches
// as future work (§6: "designing efficient compression techniques for
// these data structures"): weights are stored as 22.10 fixed-point uint32
// instead of 44.20 uint64, shrinking each slot from 16 to 12 bytes — a 25%
// reduction in the structure that bounds LightNE's affordable sample count.
//
// The trade-offs, quantified in the tests and benchmarks:
//   - per-edge accumulated weight must stay below 2^22 (≈4.2M); the
//     sampler's importance weights are O(max_degree/C), far below that;
//   - weight resolution drops to 2^-10 ≈ 0.001, still far below sampling
//     noise at any realistic M.
//
// Concurrency is identical to Table: CAS-claimed keys, xadd-accumulated
// weights, reader-writer-guarded growth.
type CompactTable struct {
	mu    sync.RWMutex
	keys  []uint64
	vals  []uint32
	mask  uint64
	count int64
}

// CompactFixedPointShift is the fractional bit count of CompactTable
// weights.
const CompactFixedPointShift = 10

// MaxCompactWeight is the largest single weight ToCompactFixed can
// represent (just below 2^22); larger weights saturate rather than wrap.
const MaxCompactWeight = float64(math.MaxUint32) / (1 << CompactFixedPointShift)

// ToCompactFixed converts a weight to 22.10 fixed point. Like ToFixed, the
// domain is clamped: negative weights and NaN map to 0, weights at or above
// 2^22 saturate to the maximum, avoiding the platform-dependent behaviour
// of an out-of-range float→uint32 conversion.
func ToCompactFixed(w float64) uint32 {
	if !(w > 0) {
		return 0
	}
	f := w*(1<<CompactFixedPointShift) + 0.5
	if f >= 1<<32 {
		return math.MaxUint32
	}
	return uint32(f)
}

// FromCompactFixed converts a 22.10 fixed-point weight back to float64.
func FromCompactFixed(f uint32) float64 {
	return float64(f) / (1 << CompactFixedPointShift)
}

// NewCompact returns a compact table presized for capacityHint keys (same
// exact-fit sizing as New; see presize).
func NewCompact(capacityHint int) *CompactTable {
	t := &CompactTable{}
	t.init(presize(capacityHint))
	return t
}

func (t *CompactTable) init(capacity uint64) {
	t.keys = make([]uint64, capacity)
	for i := range t.keys {
		t.keys[i] = emptyKey
	}
	t.vals = make([]uint32, capacity)
	t.mask = capacity - 1
}

// Add accumulates weight w onto key (u, v).
func (t *CompactTable) Add(u, v uint32, w float64) {
	t.AddFixed(Key(u, v), ToCompactFixed(w))
}

// AddFixed accumulates a fixed-point weight onto a packed key.
func (t *CompactTable) AddFixed(key uint64, fixed uint32) {
	for {
		t.mu.RLock()
		ok := t.tryAdd(key, fixed)
		t.mu.RUnlock()
		if ok {
			return
		}
		t.grow()
	}
}

func (t *CompactTable) tryAdd(key uint64, fixed uint32) bool {
	i := hash(key) & t.mask
	for {
		k := atomic.LoadUint64(&t.keys[i])
		if k == key {
			atomic.AddUint32(&t.vals[i], fixed)
			return true
		}
		if k == emptyKey {
			if atomic.LoadInt64(&t.count)*maxLoadDen >= int64(t.mask+1)*maxLoadNum {
				return false
			}
			if atomic.CompareAndSwapUint64(&t.keys[i], emptyKey, key) {
				atomic.AddInt64(&t.count, 1)
				atomic.AddUint32(&t.vals[i], fixed)
				return true
			}
			continue
		}
		i = (i + 1) & t.mask
	}
}

func (t *CompactTable) grow() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if atomic.LoadInt64(&t.count)*maxLoadDen < int64(t.mask+1)*maxLoadNum {
		return
	}
	oldKeys, oldVals := t.keys, t.vals
	t.init((t.mask + 1) * 2)
	for i, k := range oldKeys {
		if k == emptyKey {
			continue
		}
		j := hash(k) & t.mask
		for t.keys[j] != emptyKey {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
	}
}

// Len returns the number of distinct keys.
func (t *CompactTable) Len() int { return int(atomic.LoadInt64(&t.count)) }

// Capacity returns the slot count.
func (t *CompactTable) Capacity() int { return len(t.keys) }

// MemoryBytes returns the slot storage footprint (12 bytes per slot).
func (t *CompactTable) MemoryBytes() int64 {
	return int64(len(t.keys))*8 + int64(len(t.vals))*4
}

// Get returns the accumulated weight for (u, v).
func (t *CompactTable) Get(u, v uint32) (float64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	key := Key(u, v)
	i := hash(key) & t.mask
	for {
		k := atomic.LoadUint64(&t.keys[i])
		if k == key {
			return FromCompactFixed(atomic.LoadUint32(&t.vals[i])), true
		}
		if k == emptyKey {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// ForEach calls fn for every entry in parallel. Must not race with Add.
func (t *CompactTable) ForEach(fn func(u, v uint32, w float64)) {
	par.For(len(t.keys), 4096, func(i int) {
		k := t.keys[i]
		if k == emptyKey {
			return
		}
		u, v := UnpackKey(k)
		fn(u, v, FromCompactFixed(t.vals[i]))
	})
}

// occupancy counts occupied slots per block of the slot array, mirroring
// Table.occupancy: the shared first pass of the two-pass drains.
func (t *CompactTable) occupancy() (bounds []int, counts []int64) {
	bounds = par.Blocks(len(t.keys), drainGrain)
	counts = make([]int64, len(bounds)-1)
	if len(bounds) == 2 {
		counts[0] = int64(t.Len())
		return bounds, counts
	}
	par.ForBlocks(bounds, func(b, lo, hi int) {
		var c int64
		for i := lo; i < hi; i++ {
			if t.keys[i] != emptyKey {
				c++
			}
		}
		counts[b] = c
	})
	return bounds, counts
}

// Drain returns all entries as parallel slices using the same two-pass
// parallel count/scan/fill as Table.Drain. Must not race with Add.
func (t *CompactTable) Drain() (us, vs []uint32, ws []float64) {
	bounds, counts := t.occupancy()
	total := par.ExclusiveScan(counts)
	us = make([]uint32, total)
	vs = make([]uint32, total)
	ws = make([]float64, total)
	par.ForBlocks(bounds, func(b, lo, hi int) {
		w := counts[b]
		for i := lo; i < hi; i++ {
			k := t.keys[i]
			if k == emptyKey {
				continue
			}
			us[w], vs[w] = UnpackKey(k)
			ws[w] = FromCompactFixed(t.vals[i])
			w++
		}
	})
	return us, vs, ws
}

// DrainKeys returns all entries as (packed key, weight) pairs in slot order,
// keeping the table intact. Must not race with Add.
func (t *CompactTable) DrainKeys() (keys []uint64, ws []float64) {
	bounds, counts := t.occupancy()
	total := par.ExclusiveScan(counts)
	keys = make([]uint64, total)
	ws = make([]float64, total)
	par.ForBlocks(bounds, func(b, lo, hi int) {
		w := counts[b]
		for i := lo; i < hi; i++ {
			k := t.keys[i]
			if k == emptyKey {
				continue
			}
			keys[w] = k
			ws[w] = FromCompactFixed(t.vals[i])
			w++
		}
	})
	return keys, ws
}

// DrainCSR returns the table's entries grouped by source vertex as CSR
// arrays, exactly like Table.DrainCSR (rows radix-grouped, columns sorted,
// layout a pure function of the stored entries). It lets the compact table
// feed the sparsifier hand-off directly. Must not race with Add.
func (t *CompactTable) DrainCSR(numRows int) (rowPtr []int64, cols []uint32, ws []float64) {
	keys, ws := t.DrainKeys()
	return GroupKeysCSR(keys, ws, numRows)
}

// DrainCSRPartial is DrainCSR with partition-only row grouping (columns stay
// in slot order); safe for SpMM-only consumers. Must not race with Add.
func (t *CompactTable) DrainCSRPartial(numRows int) (rowPtr []int64, cols []uint32, ws []float64) {
	keys, ws := t.DrainKeys()
	return GroupKeysCSRPartial(keys, ws, numRows)
}
