package hashtable

import (
	"sync"
	"testing"

	"lightne/internal/rng"
)

func BenchmarkAddSingleWorker(b *testing.B) {
	t := New(1 << 20)
	s := rng.New(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint32(s.Intn(1 << 18))
		t.Add(k, k^0x5555, 1)
	}
}

func BenchmarkAddContended(b *testing.B) {
	// All workers hammer a small key set: stresses the atomic-add path.
	t := New(1 << 12)
	workers := 8
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			s := rng.New(9, uint64(id))
			for i := 0; i < per; i++ {
				k := uint32(s.Intn(64))
				t.Add(k, k, 1)
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkDrain(b *testing.B) {
	t := New(1 << 18)
	for i := 0; i < 1<<17; i++ {
		t.Add(uint32(i), uint32(i), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		us, _, _ := t.Drain()
		if len(us) == 0 {
			b.Fatal("empty drain")
		}
	}
}
