package hashtable

import (
	"sync"
	"testing"

	"lightne/internal/rng"
)

func BenchmarkAddSingleWorker(b *testing.B) {
	t := New(1 << 20)
	s := rng.New(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint32(s.Intn(1 << 18))
		t.Add(k, k^0x5555, 1)
	}
}

func BenchmarkAddContended(b *testing.B) {
	// All workers hammer a small key set: stresses the atomic-add path.
	t := New(1 << 12)
	workers := 8
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			s := rng.New(9, uint64(id))
			for i := 0; i < per; i++ {
				k := uint32(s.Intn(64))
				t.Add(k, k, 1)
			}
		}(w)
	}
	wg.Wait()
}

// benchTable builds a table with the given number of distinct keys, shared
// across drain benchmarks so parallel and sequential variants see identical
// slot layouts.
func benchTable(b *testing.B, distinct int) *Table {
	b.Helper()
	t := New(distinct)
	for i := 0; i < distinct; i++ {
		t.Add(uint32(i), uint32(i*7), 1)
	}
	if t.Len() != distinct {
		b.Fatalf("built %d keys want %d", t.Len(), distinct)
	}
	return t
}

// drainSequential is the pre-parallelization single-threaded append loop,
// kept as the benchmark baseline: compare BenchmarkDrain against
// BenchmarkDrainSequential with benchstat to measure the drain speedup.
func drainSequential(t *Table) (us, vs []uint32, ws []float64) {
	n := t.Len()
	us = make([]uint32, 0, n)
	vs = make([]uint32, 0, n)
	ws = make([]float64, 0, n)
	for i, k := range t.keys {
		if k == emptyKey {
			continue
		}
		u, v := UnpackKey(k)
		us = append(us, u)
		vs = append(vs, v)
		ws = append(ws, FromFixed(t.vals[i]))
	}
	return us, vs, ws
}

// BenchmarkDrain drains a table with 2^20 (≈1M) distinct keys through the
// parallel two-pass path.
func BenchmarkDrain(b *testing.B) {
	t := benchTable(b, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		us, _, _ := t.Drain()
		if len(us) != 1<<20 {
			b.Fatal("bad drain")
		}
	}
}

// BenchmarkDrainSequential is the single-threaded baseline on the same table.
func BenchmarkDrainSequential(b *testing.B) {
	t := benchTable(b, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		us, _, _ := drainSequential(t)
		if len(us) != 1<<20 {
			b.Fatal("bad drain")
		}
	}
}

// BenchmarkDrainCSR measures the grouped drain feeding the sparsifier CSR.
func BenchmarkDrainCSR(b *testing.B) {
	const n = 1 << 20
	t := benchTable(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rowPtr, _, _ := t.DrainCSR(n)
		if rowPtr[n] != n {
			b.Fatal("bad drain")
		}
	}
}
