package hashtable

import (
	"math"
	"sort"
	"sync"
	"testing"

	"lightne/internal/rng"
)

func TestCompactMatchesFullTable(t *testing.T) {
	s := rng.New(17, 0)
	full := New(64)
	compact := NewCompact(64)
	for i := 0; i < 30000; i++ {
		u := uint32(s.Intn(200))
		v := uint32(s.Intn(200))
		w := 0.25 * float64(1+s.Intn(8))
		full.Add(u, v, w)
		compact.Add(u, v, w)
	}
	if full.Len() != compact.Len() {
		t.Fatalf("Len %d vs %d", full.Len(), compact.Len())
	}
	us, vs, ws := full.Drain()
	for i := range us {
		got, ok := compact.Get(us[i], vs[i])
		if !ok {
			t.Fatalf("compact missing (%d,%d)", us[i], vs[i])
		}
		// Compact has coarser resolution (2^-10 per increment, accumulated).
		if math.Abs(got-ws[i]) > 1e-2*math.Max(1, ws[i]) {
			t.Fatalf("(%d,%d): compact %g vs full %g", us[i], vs[i], got, ws[i])
		}
	}
}

func TestCompactMemorySavings(t *testing.T) {
	full := New(1 << 16)
	compact := NewCompact(1 << 16)
	if compact.Capacity() != full.Capacity() {
		t.Fatalf("capacities differ: %d vs %d", compact.Capacity(), full.Capacity())
	}
	ratio := float64(compact.MemoryBytes()) / float64(full.MemoryBytes())
	if math.Abs(ratio-0.75) > 1e-9 {
		t.Fatalf("memory ratio %.3f, want 0.75 (12B vs 16B slots)", ratio)
	}
}

func TestCompactFixedPointRoundtrip(t *testing.T) {
	for _, w := range []float64{0, 1, 0.5, 1000.25, 4e6} {
		got := FromCompactFixed(ToCompactFixed(w))
		if math.Abs(got-w) > 1.0/(1<<CompactFixedPointShift) {
			t.Fatalf("roundtrip %g -> %g", w, got)
		}
	}
}

func TestCompactConcurrentExactCounts(t *testing.T) {
	tab := NewCompact(1024)
	const workers, perWorker, distinct = 8, 30000, 300
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			s := rng.New(3, uint64(id))
			for i := 0; i < perWorker; i++ {
				k := s.Intn(distinct)
				tab.Add(uint32(k), uint32(k%13), 1)
			}
		}(w)
	}
	wg.Wait()
	_, _, ws := tab.Drain()
	var total float64
	for _, w := range ws {
		total += w
	}
	if math.Abs(total-workers*perWorker) > 1 {
		t.Fatalf("total %.1f want %d", total, workers*perWorker)
	}
}

func TestCompactGrowth(t *testing.T) {
	tab := NewCompact(0)
	n := 5000
	for i := 0; i < n; i++ {
		tab.Add(uint32(i), uint32(i), 2)
	}
	if tab.Len() != n {
		t.Fatalf("Len=%d want %d", tab.Len(), n)
	}
	for _, i := range []int{0, n / 2, n - 1} {
		w, ok := tab.Get(uint32(i), uint32(i))
		if !ok || math.Abs(w-2) > 1e-3 {
			t.Fatalf("key %d: (%g,%v)", i, w, ok)
		}
	}
}

func TestCompactForEach(t *testing.T) {
	tab := NewCompact(16)
	tab.Add(1, 2, 3)
	tab.Add(4, 5, 6)
	var mu sync.Mutex
	seen := map[uint64]float64{}
	tab.ForEach(func(u, v uint32, w float64) {
		mu.Lock()
		seen[Key(u, v)] = w
		mu.Unlock()
	})
	if len(seen) != 2 || math.Abs(seen[Key(1, 2)]-3) > 1e-3 {
		t.Fatalf("ForEach saw %v", seen)
	}
}

// TestCompactDrainCSRMatchesTable: CompactTable.DrainCSR must produce the
// same CSR layout as the full table fed identical samples (weights compared
// at compact resolution).
func TestCompactDrainCSRMatchesTable(t *testing.T) {
	s := rng.New(29, 0)
	full := New(512)
	compact := NewCompact(512)
	const n = 300
	for i := 0; i < 30000; i++ {
		u, v := uint32(s.Intn(n)), uint32(s.Intn(n))
		full.Add(u, v, 0.25)
		compact.Add(u, v, 0.25)
	}
	fullPtr, fullCols, fullWs := full.DrainCSR(n)
	cPtr, cCols, cWs := compact.DrainCSR(n)
	if len(fullPtr) != len(cPtr) {
		t.Fatal("rowPtr length mismatch")
	}
	for r := range fullPtr {
		if fullPtr[r] != cPtr[r] {
			t.Fatalf("rowPtr[%d]=%d want %d", r, cPtr[r], fullPtr[r])
		}
	}
	for p := range fullCols {
		if fullCols[p] != cCols[p] {
			t.Fatalf("col[%d]=%d want %d", p, cCols[p], fullCols[p])
		}
		// 0.25 is exactly representable in both 44.20 and 22.10 fixed point.
		if fullWs[p] != cWs[p] {
			t.Fatalf("weight[%d]=%g want %g", p, cWs[p], fullWs[p])
		}
	}
	if compact.Len() != len(cCols) {
		t.Fatal("DrainCSR consumed the compact table")
	}
}

// TestCompactDrainCSRPartial: partial drain agrees with full drain on row
// grouping and per-row multisets.
func TestCompactDrainCSRPartial(t *testing.T) {
	s := rng.New(31, 0)
	compact := NewCompact(256)
	const n = 120
	for i := 0; i < 20000; i++ {
		compact.Add(uint32(s.Intn(n)), uint32(s.Intn(n)), 0.5)
	}
	fullPtr, fullCols, fullWs := compact.DrainCSR(n)
	partPtr, partCols, partWs := compact.DrainCSRPartial(n)
	for r := range fullPtr {
		if fullPtr[r] != partPtr[r] {
			t.Fatalf("rowPtr[%d] mismatch", r)
		}
	}
	type cw struct {
		c uint32
		w float64
	}
	for r := 0; r < n; r++ {
		lo, hi := fullPtr[r], fullPtr[r+1]
		got := make([]cw, 0, hi-lo)
		for p := lo; p < hi; p++ {
			got = append(got, cw{partCols[p], partWs[p]})
		}
		sort.Slice(got, func(i, j int) bool { return got[i].c < got[j].c })
		for i, p := 0, lo; p < hi; i, p = i+1, p+1 {
			if got[i].c != fullCols[p] || got[i].w != fullWs[p] {
				t.Fatalf("row %d entry %d mismatch", r, i)
			}
		}
	}
}
