package hashtable

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"lightne/internal/rng"
)

func TestKeyPackUnpack(t *testing.T) {
	f := func(u, v uint32) bool {
		gu, gv := UnpackKey(Key(u, v))
		return gu == u && gv == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedPointRoundtrip(t *testing.T) {
	for _, w := range []float64{0, 1, 0.5, 3.25, 1000.125, 1e6} {
		got := FromFixed(ToFixed(w))
		if math.Abs(got-w) > 1.0/(1<<FixedPointShift) {
			t.Fatalf("fixed roundtrip %g -> %g", w, got)
		}
	}
}

func TestToFixedClampsDomain(t *testing.T) {
	cases := []struct {
		w    float64
		want uint64
	}{
		{0, 0},
		{-1, 0},
		{-1e300, 0},
		{math.Inf(-1), 0},
		{math.NaN(), 0},
		{1, fixedOne},
		{MaxWeight, math.MaxUint64},
		{MaxWeight * 2, math.MaxUint64},
		{1 << 50, math.MaxUint64},
		{math.Inf(1), math.MaxUint64},
	}
	for _, c := range cases {
		if got := ToFixed(c.w); got != c.want {
			t.Fatalf("ToFixed(%g)=%d want %d", c.w, got, c.want)
		}
	}
	// Just below the saturation point the conversion must stay exact.
	w := float64(uint64(1) << 43)
	if got := ToFixed(w); got != uint64(1)<<63 {
		t.Fatalf("ToFixed(2^43)=%d want %d", got, uint64(1)<<63)
	}
}

func TestToCompactFixedClampsDomain(t *testing.T) {
	cases := []struct {
		w    float64
		want uint32
	}{
		{0, 0},
		{-3.5, 0},
		{math.NaN(), 0},
		{1, 1 << CompactFixedPointShift},
		{MaxCompactWeight, math.MaxUint32},
		{1e18, math.MaxUint32},
		{math.Inf(1), math.MaxUint32},
	}
	for _, c := range cases {
		if got := ToCompactFixed(c.w); got != c.want {
			t.Fatalf("ToCompactFixed(%g)=%d want %d", c.w, got, c.want)
		}
	}
}

func TestPresizedTableNeverGrows(t *testing.T) {
	// Sweep hints across power-of-two boundaries (where bits.Len64 used to
	// double) and load-factor truncation edges (where the table used to come
	// out one slot short and grow once anyway).
	hints := []int{1, 7, 8, 14, 15, 16, 17, 56, 57, 63, 64, 100, 127, 128,
		255, 256, 896, 897, 1 << 12, 1<<12 + 1, 1 << 16}
	for _, k := range hints {
		tab := New(k)
		before := tab.Capacity()
		for i := 0; i < k; i++ {
			tab.Add(uint32(i), uint32(i>>2), 1)
		}
		if tab.Capacity() != before {
			t.Fatalf("hint %d: table grew %d -> %d", k, before, tab.Capacity())
		}
		if tab.Len() != k {
			t.Fatalf("hint %d: Len=%d", k, tab.Len())
		}
		ct := NewCompact(k)
		cbefore := ct.Capacity()
		for i := 0; i < k; i++ {
			ct.Add(uint32(i), uint32(i>>2), 1)
		}
		if ct.Capacity() != cbefore {
			t.Fatalf("hint %d: compact table grew %d -> %d", k, cbefore, ct.Capacity())
		}
	}
}

func TestPresizeTightAtExactPowers(t *testing.T) {
	// A hint of 14 keys fits capacity 16 under the 7/8 load factor; the old
	// bits.Len64 formula allocated 32.
	if got := New(14).Capacity(); got != 16 {
		t.Fatalf("New(14).Capacity()=%d want 16", got)
	}
	// 7·64 keys exactly fill capacity 512 at load 7/8.
	if got := New(7 << 6).Capacity(); got != 512 {
		t.Fatalf("New(7<<6).Capacity()=%d want 512", got)
	}
	// 7·2^10 keys exactly fill capacity 2^13 at load 7/8.
	if got := New(7 << 10).Capacity(); got != 1<<13 {
		t.Fatalf("New(7<<10).Capacity()=%d want %d", got, 1<<13)
	}
}

func TestAddGet(t *testing.T) {
	tab := New(8)
	tab.Add(1, 2, 1.5)
	tab.Add(1, 2, 2.5)
	tab.Add(3, 4, 1)
	if tab.Len() != 2 {
		t.Fatalf("Len=%d want 2", tab.Len())
	}
	w, ok := tab.Get(1, 2)
	if !ok || math.Abs(w-4) > 1e-5 {
		t.Fatalf("Get(1,2)=(%g,%v)", w, ok)
	}
	if _, ok := tab.Get(9, 9); ok {
		t.Fatal("Get of absent key returned ok")
	}
}

func TestAgainstMapOracle(t *testing.T) {
	s := rng.New(31, 0)
	tab := New(64)
	oracle := map[uint64]float64{}
	for i := 0; i < 20000; i++ {
		u := uint32(s.Intn(100))
		v := uint32(s.Intn(100))
		w := float64(s.Intn(8)) * 0.25
		tab.Add(u, v, w)
		oracle[Key(u, v)] += w
	}
	if tab.Len() != len(oracle) {
		t.Fatalf("Len=%d oracle=%d", tab.Len(), len(oracle))
	}
	for k, want := range oracle {
		u, v := UnpackKey(k)
		got, ok := tab.Get(u, v)
		if !ok {
			t.Fatalf("missing key (%d,%d)", u, v)
		}
		if math.Abs(got-want) > 1e-3 {
			t.Fatalf("key (%d,%d): got %g want %g", u, v, got, want)
		}
	}
}

func TestGrowthFromTiny(t *testing.T) {
	tab := New(0)
	n := 10000
	for i := 0; i < n; i++ {
		tab.Add(uint32(i), uint32(i), 1)
	}
	if tab.Len() != n {
		t.Fatalf("Len=%d want %d", tab.Len(), n)
	}
	for i := 0; i < n; i++ {
		w, ok := tab.Get(uint32(i), uint32(i))
		if !ok || w != 1 {
			t.Fatalf("key %d: (%g,%v)", i, w, ok)
		}
	}
}

func TestConcurrentExactCounts(t *testing.T) {
	// The paper's key guarantee: every sample is accounted for exactly.
	tab := New(1024)
	const workers = 8
	const perWorker = 50000
	const distinct = 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			s := rng.New(7, uint64(id))
			for i := 0; i < perWorker; i++ {
				k := s.Intn(distinct)
				tab.Add(uint32(k), uint32(k%17), 1)
			}
		}(w)
	}
	wg.Wait()
	var total float64
	tab.ForEach(func(u, v uint32, w float64) {
		// fn may run in parallel; accumulate via channel-free trick below.
	})
	_, _, ws := tab.Drain()
	for _, w := range ws {
		total += w
	}
	if math.Abs(total-workers*perWorker) > 1e-3 {
		t.Fatalf("total weight %.3f want %d (lost or duplicated samples)", total, workers*perWorker)
	}
}

func TestConcurrentGrowth(t *testing.T) {
	// Force growth races: tiny initial table, many concurrent distinct keys.
	tab := New(0)
	const workers = 8
	const perWorker = 20000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := uint32(id*perWorker + i)
				tab.Add(key, key+1, 0.5)
			}
		}(w)
	}
	wg.Wait()
	if tab.Len() != workers*perWorker {
		t.Fatalf("Len=%d want %d", tab.Len(), workers*perWorker)
	}
	// Spot-check a sample of keys.
	for id := 0; id < workers; id++ {
		for _, i := range []int{0, perWorker / 2, perWorker - 1} {
			key := uint32(id*perWorker + i)
			w, ok := tab.Get(key, key+1)
			if !ok || math.Abs(w-0.5) > 1e-5 {
				t.Fatalf("key %d: (%g,%v)", key, w, ok)
			}
		}
	}
}

func TestForEachVisitsAll(t *testing.T) {
	tab := New(16)
	want := map[uint64]float64{}
	for i := 0; i < 100; i++ {
		tab.Add(uint32(i), uint32(2*i), float64(i))
		want[Key(uint32(i), uint32(2*i))] = float64(i)
	}
	var mu sync.Mutex
	got := map[uint64]float64{}
	tab.ForEach(func(u, v uint32, w float64) {
		mu.Lock()
		got[Key(u, v)] = w
		mu.Unlock()
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d keys want %d", len(got), len(want))
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-5 {
			t.Fatalf("key %d: got %g want %g", k, got[k], w)
		}
	}
}

func TestDrain(t *testing.T) {
	tab := New(16)
	tab.Add(5, 6, 2)
	tab.Add(7, 8, 3)
	us, vs, ws := tab.Drain()
	if len(us) != 2 || len(vs) != 2 || len(ws) != 2 {
		t.Fatalf("Drain lengths %d %d %d", len(us), len(vs), len(ws))
	}
	sum := ws[0] + ws[1]
	if math.Abs(sum-5) > 1e-5 {
		t.Fatalf("weights %v", ws)
	}
}

func TestDrainMatchesSequentialReference(t *testing.T) {
	s := rng.New(41, 0)
	tab := New(256)
	for i := 0; i < 50000; i++ {
		tab.Add(uint32(s.Intn(3000)), uint32(s.Intn(3000)), 0.5)
	}
	want := map[uint64]float64{}
	for i, k := range tab.keys {
		if k != emptyKey {
			want[k] = FromFixed(tab.vals[i])
		}
	}
	us, vs, ws := tab.Drain()
	if len(us) != len(want) || len(vs) != len(want) || len(ws) != len(want) {
		t.Fatalf("Drain lengths %d/%d/%d want %d", len(us), len(vs), len(ws), len(want))
	}
	for i := range us {
		k := Key(us[i], vs[i])
		w, ok := want[k]
		if !ok {
			t.Fatalf("Drain invented key (%d,%d)", us[i], vs[i])
		}
		if w != ws[i] {
			t.Fatalf("key (%d,%d): drained %g want %g", us[i], vs[i], ws[i], w)
		}
		delete(want, k)
	}
}

func TestDrainInto(t *testing.T) {
	tab := New(64)
	for i := 0; i < 100; i++ {
		tab.Add(uint32(i), uint32(i+1), float64(i))
	}
	us := make([]uint32, tab.Len())
	vs := make([]uint32, tab.Len())
	ws := make([]float64, tab.Len())
	if n := tab.DrainInto(us, vs, ws); n != tab.Len() {
		t.Fatalf("DrainInto wrote %d want %d", n, tab.Len())
	}
	seen := map[uint64]float64{}
	for i := range us {
		seen[Key(us[i], vs[i])] = ws[i]
	}
	for i := 0; i < 100; i++ {
		if w := seen[Key(uint32(i), uint32(i+1))]; math.Abs(w-float64(i)) > 1e-5 {
			t.Fatalf("key %d: %g", i, w)
		}
	}
}

func TestDrainCSR(t *testing.T) {
	tab := New(64)
	type entry struct {
		u, v uint32
		w    float64
	}
	entries := []entry{
		{0, 3, 1}, {0, 1, 2}, {2, 2, 3}, {2, 0, 4}, {2, 7, 5}, {5, 5, 6},
	}
	for _, e := range entries {
		tab.Add(e.u, e.v, e.w)
	}
	const numRows = 7
	rowPtr, cols, ws := tab.DrainCSR(numRows)
	if len(rowPtr) != numRows+1 {
		t.Fatalf("rowPtr len %d want %d", len(rowPtr), numRows+1)
	}
	if rowPtr[0] != 0 || rowPtr[numRows] != int64(len(entries)) {
		t.Fatalf("rowPtr endpoints %d..%d", rowPtr[0], rowPtr[numRows])
	}
	want := map[uint32]map[uint32]float64{
		0: {3: 1, 1: 2}, 2: {2: 3, 0: 4, 7: 5}, 5: {5: 6},
	}
	for r := 0; r < numRows; r++ {
		lo, hi := rowPtr[r], rowPtr[r+1]
		if int(hi-lo) != len(want[uint32(r)]) {
			t.Fatalf("row %d has %d entries want %d", r, hi-lo, len(want[uint32(r)]))
		}
		for p := lo; p < hi; p++ {
			if p > lo && cols[p] <= cols[p-1] {
				t.Fatalf("row %d columns not strictly ascending: %v", r, cols[lo:hi])
			}
			if w := want[uint32(r)][cols[p]]; math.Abs(w-ws[p]) > 1e-5 {
				t.Fatalf("entry (%d,%d): %g want %g", r, cols[p], ws[p], w)
			}
		}
	}
	// The table must survive the drain untouched.
	if tab.Len() != len(entries) {
		t.Fatalf("DrainCSR consumed the table: Len=%d", tab.Len())
	}
}

func TestDrainCSRLarge(t *testing.T) {
	s := rng.New(77, 0)
	tab := New(1024)
	oracle := map[uint64]float64{}
	const n = 500
	for i := 0; i < 40000; i++ {
		u, v := uint32(s.Intn(n)), uint32(s.Intn(n))
		tab.Add(u, v, 0.25)
		oracle[Key(u, v)] += 0.25
	}
	rowPtr, cols, ws := tab.DrainCSR(n)
	if rowPtr[n] != int64(len(oracle)) {
		t.Fatalf("nnz %d want %d", rowPtr[n], len(oracle))
	}
	for r := 0; r < n; r++ {
		for p := rowPtr[r]; p < rowPtr[r+1]; p++ {
			want := oracle[Key(uint32(r), cols[p])]
			if math.Abs(want-ws[p]) > 1e-3 {
				t.Fatalf("(%d,%d): %g want %g", r, cols[p], ws[p], want)
			}
		}
	}
}

// TestRaceStress interleaves AddFixed, growth from a tiny initial capacity,
// and concurrent Gets under -race, then asserts the final aggregate is
// exact in fixed point: every sample accounted for, none duplicated.
func TestRaceStress(t *testing.T) {
	tab := New(0) // tiny: forces repeated grows under contention
	const workers = 8
	const perWorker = 30000
	const distinct = 20000
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Two reader goroutines hammer Get while writers insert and force grows.
	readers.Add(2)
	for r := 0; r < 2; r++ {
		go func(id int) {
			defer readers.Done()
			s := rng.New(101, uint64(id))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint32(s.Intn(distinct))
				if w, ok := tab.Get(k, k^1); ok && w <= 0 {
					t.Error("Get returned non-positive weight for present key")
					return
				}
			}
		}(r)
	}
	writers.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer writers.Done()
			s := rng.New(55, uint64(id))
			for i := 0; i < perWorker; i++ {
				k := uint32(s.Intn(distinct))
				tab.AddFixed(Key(k, k^1), ToFixed(1))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	var total uint64
	for i := range tab.keys {
		if tab.keys[i] != emptyKey {
			total += tab.vals[i]
		}
	}
	if want := uint64(workers) * perWorker * fixedOne; total != want {
		t.Fatalf("fixed-point total %d want %d (lost or duplicated samples)", total, want)
	}
}

func TestMemoryBytes(t *testing.T) {
	tab := New(1000)
	if tab.MemoryBytes() != int64(tab.Capacity())*16 {
		t.Fatalf("MemoryBytes=%d capacity=%d", tab.MemoryBytes(), tab.Capacity())
	}
}

// TestDrainCSRPartialMatchesDrainCSR: the partial drain must agree with the
// fully-sorted drain on row pointers and per-row (col, weight) multisets;
// only within-row order may differ. Differential lockdown for the
// partition-only fast path.
func TestDrainCSRPartialMatchesDrainCSR(t *testing.T) {
	s := rng.New(21, 0)
	tab := New(1024)
	const n = 700
	for i := 0; i < 60000; i++ {
		tab.Add(uint32(s.Intn(n)), uint32(s.Intn(n)), 0.5)
	}
	fullPtr, fullCols, fullWs := tab.DrainCSR(n)
	partPtr, partCols, partWs := tab.DrainCSRPartial(n)
	if len(fullPtr) != len(partPtr) {
		t.Fatal("rowPtr length mismatch")
	}
	for r := range fullPtr {
		if fullPtr[r] != partPtr[r] {
			t.Fatalf("rowPtr[%d]=%d want %d", r, partPtr[r], fullPtr[r])
		}
	}
	type cw struct {
		c uint32
		w float64
	}
	for r := 0; r < n; r++ {
		lo, hi := fullPtr[r], fullPtr[r+1]
		a := make([]cw, 0, hi-lo)
		b := make([]cw, 0, hi-lo)
		for p := lo; p < hi; p++ {
			a = append(a, cw{fullCols[p], fullWs[p]})
			b = append(b, cw{partCols[p], partWs[p]})
		}
		sort.Slice(b, func(i, j int) bool { return b[i].c < b[j].c })
		// Table keys are distinct, so the sorted partial row must equal the
		// fully-sorted row exactly (weights are exact fixed-point sums).
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d mismatch at %d: %v vs %v", r, i, a[i], b[i])
			}
		}
	}
}

// TestDrainKeysInto checks the allocation-free packed drain against Drain.
func TestDrainKeysInto(t *testing.T) {
	s := rng.New(23, 0)
	tab := New(256)
	for i := 0; i < 5000; i++ {
		tab.Add(uint32(s.Intn(100)), uint32(s.Intn(100)), 1)
	}
	keys := make([]uint64, tab.Len())
	ws := make([]float64, tab.Len())
	if got := tab.DrainKeysInto(keys, ws); got != tab.Len() {
		t.Fatalf("DrainKeysInto wrote %d want %d", got, tab.Len())
	}
	oracle := map[uint64]float64{}
	us, vs, dws := tab.Drain()
	for i := range us {
		oracle[Key(us[i], vs[i])] = dws[i]
	}
	for i, k := range keys {
		if w, ok := oracle[k]; !ok || w != ws[i] {
			t.Fatalf("key %x weight %g not in Drain oracle (%g, %v)", k, ws[i], w, ok)
		}
	}
}

// TestPeakMemoryBytesTracksGrowth forces the table through several doublings
// and checks the recorded high-water mark includes the grow transient, where
// the old and new slot arrays coexist (old = half of new, so the peak is
// 1.5x the post-grow footprint).
func TestPeakMemoryBytesTracksGrowth(t *testing.T) {
	tbl := New(1)
	if got, want := tbl.PeakMemoryBytes(), tbl.MemoryBytes(); got != want {
		t.Fatalf("fresh table peak %d, want %d", got, want)
	}
	start := tbl.MemoryBytes()
	for i := 0; i < 1000; i++ {
		tbl.Add(uint32(i), uint32(i+1), 1)
	}
	if tbl.MemoryBytes() <= start {
		t.Fatal("test did not force growth")
	}
	if got, want := tbl.PeakMemoryBytes(), tbl.MemoryBytes()*3/2; got != want {
		t.Fatalf("peak %d after growth, want old+new = %d", got, want)
	}
}

// TestPeakMemoryBytesConcurrent: the peak stays coherent when growth happens
// under concurrent inserts (exercised under -race by the race target).
func TestPeakMemoryBytesConcurrent(t *testing.T) {
	tbl := New(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tbl.Add(uint32(w*500+i), uint32(i), 1)
			}
		}(w)
	}
	wg.Wait()
	if peak, cur := tbl.PeakMemoryBytes(), tbl.MemoryBytes(); peak < cur*3/2 {
		t.Fatalf("peak %d, want at least 1.5x current %d after growth", peak, cur)
	}
}

// TestAddFixedBatchMatchesSerial: the parallel batch insert must accumulate
// exactly what the equivalent AddFixed loop does, including when a tiny
// initial table forces grows mid-batch.
func TestAddFixedBatchMatchesSerial(t *testing.T) {
	s := rng.New(123, 0)
	const n = 50000
	keys := make([]uint64, n)
	fixed := make([]uint64, n)
	for i := range keys {
		keys[i] = Key(uint32(s.Intn(800)), uint32(s.Intn(800)))
		fixed[i] = uint64(1 + s.Intn(1<<20))
	}
	for _, hint := range []int{2 * n, 4} { // presized and grow-forcing
		ref := New(2 * n)
		for i := range keys {
			ref.AddFixed(keys[i], fixed[i])
		}
		batch := New(hint)
		batch.AddFixedBatch(keys, fixed)
		if batch.Len() != ref.Len() {
			t.Fatalf("hint=%d: distinct %d want %d", hint, batch.Len(), ref.Len())
		}
		us, vs, ws := ref.Drain()
		for i := range us {
			got, ok := batch.Get(us[i], vs[i])
			if !ok || got != ws[i] { // fixed-point accumulation is exact
				t.Fatalf("hint=%d: key (%d,%d): batch %v want %v", hint, us[i], vs[i], got, ws[i])
			}
		}
	}
}

func TestAddFixedBatchPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	New(8).AddFixedBatch(make([]uint64, 3), make([]uint64, 2))
}
