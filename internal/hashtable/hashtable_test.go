package hashtable

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"lightne/internal/rng"
)

func TestKeyPackUnpack(t *testing.T) {
	f := func(u, v uint32) bool {
		gu, gv := UnpackKey(Key(u, v))
		return gu == u && gv == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedPointRoundtrip(t *testing.T) {
	for _, w := range []float64{0, 1, 0.5, 3.25, 1000.125, 1e6} {
		got := FromFixed(ToFixed(w))
		if math.Abs(got-w) > 1.0/(1<<FixedPointShift) {
			t.Fatalf("fixed roundtrip %g -> %g", w, got)
		}
	}
}

func TestAddGet(t *testing.T) {
	tab := New(8)
	tab.Add(1, 2, 1.5)
	tab.Add(1, 2, 2.5)
	tab.Add(3, 4, 1)
	if tab.Len() != 2 {
		t.Fatalf("Len=%d want 2", tab.Len())
	}
	w, ok := tab.Get(1, 2)
	if !ok || math.Abs(w-4) > 1e-5 {
		t.Fatalf("Get(1,2)=(%g,%v)", w, ok)
	}
	if _, ok := tab.Get(9, 9); ok {
		t.Fatal("Get of absent key returned ok")
	}
}

func TestAgainstMapOracle(t *testing.T) {
	s := rng.New(31, 0)
	tab := New(64)
	oracle := map[uint64]float64{}
	for i := 0; i < 20000; i++ {
		u := uint32(s.Intn(100))
		v := uint32(s.Intn(100))
		w := float64(s.Intn(8)) * 0.25
		tab.Add(u, v, w)
		oracle[Key(u, v)] += w
	}
	if tab.Len() != len(oracle) {
		t.Fatalf("Len=%d oracle=%d", tab.Len(), len(oracle))
	}
	for k, want := range oracle {
		u, v := UnpackKey(k)
		got, ok := tab.Get(u, v)
		if !ok {
			t.Fatalf("missing key (%d,%d)", u, v)
		}
		if math.Abs(got-want) > 1e-3 {
			t.Fatalf("key (%d,%d): got %g want %g", u, v, got, want)
		}
	}
}

func TestGrowthFromTiny(t *testing.T) {
	tab := New(0)
	n := 10000
	for i := 0; i < n; i++ {
		tab.Add(uint32(i), uint32(i), 1)
	}
	if tab.Len() != n {
		t.Fatalf("Len=%d want %d", tab.Len(), n)
	}
	for i := 0; i < n; i++ {
		w, ok := tab.Get(uint32(i), uint32(i))
		if !ok || w != 1 {
			t.Fatalf("key %d: (%g,%v)", i, w, ok)
		}
	}
}

func TestConcurrentExactCounts(t *testing.T) {
	// The paper's key guarantee: every sample is accounted for exactly.
	tab := New(1024)
	const workers = 8
	const perWorker = 50000
	const distinct = 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			s := rng.New(7, uint64(id))
			for i := 0; i < perWorker; i++ {
				k := s.Intn(distinct)
				tab.Add(uint32(k), uint32(k%17), 1)
			}
		}(w)
	}
	wg.Wait()
	var total float64
	tab.ForEach(func(u, v uint32, w float64) {
		// fn may run in parallel; accumulate via channel-free trick below.
	})
	_, _, ws := tab.Drain()
	for _, w := range ws {
		total += w
	}
	if math.Abs(total-workers*perWorker) > 1e-3 {
		t.Fatalf("total weight %.3f want %d (lost or duplicated samples)", total, workers*perWorker)
	}
}

func TestConcurrentGrowth(t *testing.T) {
	// Force growth races: tiny initial table, many concurrent distinct keys.
	tab := New(0)
	const workers = 8
	const perWorker = 20000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := uint32(id*perWorker + i)
				tab.Add(key, key+1, 0.5)
			}
		}(w)
	}
	wg.Wait()
	if tab.Len() != workers*perWorker {
		t.Fatalf("Len=%d want %d", tab.Len(), workers*perWorker)
	}
	// Spot-check a sample of keys.
	for id := 0; id < workers; id++ {
		for _, i := range []int{0, perWorker / 2, perWorker - 1} {
			key := uint32(id*perWorker + i)
			w, ok := tab.Get(key, key+1)
			if !ok || math.Abs(w-0.5) > 1e-5 {
				t.Fatalf("key %d: (%g,%v)", key, w, ok)
			}
		}
	}
}

func TestForEachVisitsAll(t *testing.T) {
	tab := New(16)
	want := map[uint64]float64{}
	for i := 0; i < 100; i++ {
		tab.Add(uint32(i), uint32(2*i), float64(i))
		want[Key(uint32(i), uint32(2*i))] = float64(i)
	}
	var mu sync.Mutex
	got := map[uint64]float64{}
	tab.ForEach(func(u, v uint32, w float64) {
		mu.Lock()
		got[Key(u, v)] = w
		mu.Unlock()
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d keys want %d", len(got), len(want))
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-5 {
			t.Fatalf("key %d: got %g want %g", k, got[k], w)
		}
	}
}

func TestDrain(t *testing.T) {
	tab := New(16)
	tab.Add(5, 6, 2)
	tab.Add(7, 8, 3)
	us, vs, ws := tab.Drain()
	if len(us) != 2 || len(vs) != 2 || len(ws) != 2 {
		t.Fatalf("Drain lengths %d %d %d", len(us), len(vs), len(ws))
	}
	sum := ws[0] + ws[1]
	if math.Abs(sum-5) > 1e-5 {
		t.Fatalf("weights %v", ws)
	}
}

func TestMemoryBytes(t *testing.T) {
	tab := New(1000)
	if tab.MemoryBytes() != int64(tab.Capacity())*16 {
		t.Fatalf("MemoryBytes=%d capacity=%d", tab.MemoryBytes(), tab.Capacity())
	}
}
