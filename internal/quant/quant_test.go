package quant

import (
	"math"
	"testing"

	"lightne/internal/dense"
	"lightne/internal/eval"
)

func testEmbedding(rows, cols int, seed uint64) *dense.Matrix {
	x := dense.NewMatrix(rows, cols)
	x.FillGaussian(seed)
	return x
}

func TestFloat32Roundtrip(t *testing.T) {
	x := testEmbedding(50, 16, 1)
	q := ToFloat32(x)
	if q.MemoryBytes() != int64(50*16*4) {
		t.Fatalf("memory %d", q.MemoryBytes())
	}
	back := q.ToDense()
	for i := range x.Data {
		if math.Abs(back.Data[i]-x.Data[i]) > 1e-6*math.Max(1, math.Abs(x.Data[i])) {
			t.Fatalf("float32 roundtrip error at %d: %g vs %g", i, back.Data[i], x.Data[i])
		}
	}
}

func TestFloat32CosinePreserved(t *testing.T) {
	x := testEmbedding(40, 32, 3)
	q := ToFloat32(x)
	for _, pair := range [][2]int{{0, 1}, {5, 17}, {39, 0}} {
		var dot, na, nb float64
		for k := 0; k < x.Cols; k++ {
			dot += x.At(pair[0], k) * x.At(pair[1], k)
			na += x.At(pair[0], k) * x.At(pair[0], k)
			nb += x.At(pair[1], k) * x.At(pair[1], k)
		}
		exact := dot / math.Sqrt(na*nb)
		if got := q.Cosine(pair[0], pair[1]); math.Abs(got-exact) > 1e-6 {
			t.Fatalf("pair %v: cosine %g vs %g", pair, got, exact)
		}
	}
}

func TestInt8CompressionRatioAndError(t *testing.T) {
	x := testEmbedding(100, 64, 5)
	q := ToInt8(x)
	raw := int64(len(x.Data) * 8)
	if ratio := float64(raw) / float64(q.MemoryBytes()); ratio < 7 {
		t.Fatalf("int8 compression ratio %.1f < 7", ratio)
	}
	back := q.ToDense()
	// Per-row relative error bounded by the quantization step.
	for i := 0; i < x.Rows; i++ {
		var maxAbs, maxErr float64
		for j := 0; j < x.Cols; j++ {
			if a := math.Abs(x.At(i, j)); a > maxAbs {
				maxAbs = a
			}
			if e := math.Abs(back.At(i, j) - x.At(i, j)); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > maxAbs/127+1e-12 {
			t.Fatalf("row %d: error %g exceeds step %g", i, maxErr, maxAbs/127)
		}
	}
}

func TestInt8CosineApproximation(t *testing.T) {
	x := testEmbedding(60, 32, 7)
	q := ToInt8(x)
	var worst float64
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			var dot, na, nb float64
			for k := 0; k < x.Cols; k++ {
				dot += x.At(u, k) * x.At(v, k)
				na += x.At(u, k) * x.At(u, k)
				nb += x.At(v, k) * x.At(v, k)
			}
			exact := dot / math.Sqrt(na*nb)
			if d := math.Abs(q.Cosine(u, v) - exact); d > worst {
				worst = d
			}
		}
	}
	if worst > 0.02 {
		t.Fatalf("int8 cosine error %.4f too high", worst)
	}
}

func TestInt8TopKMatchesExact(t *testing.T) {
	// Build an embedding with clear cluster structure so top-k is stable.
	x := dense.NewMatrix(60, 8)
	src := testEmbedding(60, 8, 9)
	for i := 0; i < 60; i++ {
		for j := 0; j < 8; j++ {
			x.Set(i, j, 0.2*src.At(i, j))
		}
		x.Set(i, i%4, x.At(i, i%4)+2)
	}
	q := ToInt8(x)
	idx, vals, err := q.TopK(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 5 || len(vals) != 5 {
		t.Fatalf("TopK sizes %d %d", len(idx), len(vals))
	}
	exact, err := eval.NearestNeighbors(x, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The quantized top-5 must heavily overlap the exact top-5.
	exactSet := map[int]bool{}
	for _, nb := range exact {
		exactSet[nb.Vertex] = true
	}
	overlap := 0
	for _, i := range idx {
		if exactSet[i] {
			overlap++
		}
	}
	if overlap < 4 {
		t.Fatalf("quantized top-5 overlaps exact top-5 only %d/5", overlap)
	}
	// Results sorted descending.
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatal("TopK not sorted")
		}
	}
}

func TestFloat32TopKMatchesExact(t *testing.T) {
	x := testEmbedding(80, 16, 13)
	q := ToFloat32(x)
	for _, query := range []int{0, 17, 79} {
		idx, vals, err := q.TopK(query, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(idx) != 7 || len(vals) != 7 {
			t.Fatalf("TopK sizes %d %d", len(idx), len(vals))
		}
		exact, err := eval.NearestNeighbors(x, query, 7)
		if err != nil {
			t.Fatal(err)
		}
		// float32 truncation is ~1e-7: order must match exactly here.
		for i, nb := range exact {
			if idx[i] != nb.Vertex {
				t.Fatalf("query %d rank %d: got %d want %d", query, i, idx[i], nb.Vertex)
			}
			if math.Abs(vals[i]-nb.Cosine) > 1e-5 {
				t.Fatalf("query %d rank %d: cosine %g vs %g", query, i, vals[i], nb.Cosine)
			}
		}
		for _, i := range idx {
			if i == query {
				t.Fatal("query row returned as its own neighbor")
			}
		}
	}
}

func TestFloat32TopKErrorsAndClamp(t *testing.T) {
	q := ToFloat32(testEmbedding(5, 3, 15))
	if _, _, err := q.TopK(5, 1); err == nil {
		t.Fatal("expected range error")
	}
	if _, _, err := q.TopK(-1, 1); err == nil {
		t.Fatal("expected range error")
	}
	if _, _, err := q.TopK(0, 0); err == nil {
		t.Fatal("expected k error")
	}
	idx, _, err := q.TopK(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 4 {
		t.Fatalf("clamped k: got %d results", len(idx))
	}
}

func TestInt8Errors(t *testing.T) {
	q := ToInt8(testEmbedding(4, 2, 11))
	if _, _, err := q.TopK(9, 1); err == nil {
		t.Fatal("expected range error")
	}
	if _, _, err := q.TopK(0, 0); err == nil {
		t.Fatal("expected k error")
	}
}

func TestZeroRows(t *testing.T) {
	x := dense.NewMatrix(3, 4) // all zeros
	q := ToInt8(x)
	if q.Cosine(0, 1) != 0 {
		t.Fatal("zero rows should have zero cosine")
	}
	back := q.ToDense()
	for _, v := range back.Data {
		if v != 0 {
			t.Fatal("zero embedding should roundtrip to zero")
		}
	}
}

// TestEmbeddingInterface pins the codec-independent API both codecs expose:
// Shape agrees with the fields, DequantTo reproduces the values the codec
// serves, and both types satisfy quant.Embedding (compile-time below).
func TestEmbeddingInterface(t *testing.T) {
	x := dense.NewMatrix(6, 4)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, float64(i+1)*0.25-float64(j)*0.1)
		}
	}
	for _, e := range []Embedding{ToFloat32(x), ToInt8(x)} {
		rows, cols := e.Shape()
		if rows != 6 || cols != 4 {
			t.Fatalf("%T shape %dx%d", e, rows, cols)
		}
		// Values up to 1.5 with int8's per-row scale put the quantization
		// half-step well under 0.01.
		buf := make([]float32, cols)
		for i := 0; i < rows; i++ {
			e.DequantTo(buf, i)
			for j := 0; j < cols; j++ {
				if math.Abs(float64(buf[j])-x.At(i, j)) > 0.01 {
					t.Fatalf("%T DequantTo(%d)[%d] = %v, want %v", e, i, j, buf[j], x.At(i, j))
				}
			}
		}
	}
}

var (
	_ Embedding = (*Float32Embedding)(nil)
	_ Embedding = (*Int8Embedding)(nil)
)

// TestSelectTopK pins the exported selection kernel: k largest finite
// values, sorted descending, ties toward lower indices, -Inf skipped.
func TestSelectTopK(t *testing.T) {
	neg := math.Inf(-1)
	idx, vals := SelectTopK([]float64{0.5, neg, 0.9, 0.5, -0.2}, 3)
	wantIdx := []int{2, 0, 3}
	wantVal := []float64{0.9, 0.5, 0.5}
	if len(idx) != 3 {
		t.Fatalf("got %d results", len(idx))
	}
	for i := range wantIdx {
		if idx[i] != wantIdx[i] || vals[i] != wantVal[i] {
			t.Fatalf("rank %d: (%d, %v), want (%d, %v)", i, idx[i], vals[i], wantIdx[i], wantVal[i])
		}
	}
	// k larger than the finite count returns only the finite entries.
	idx, _ = SelectTopK([]float64{neg, 1, neg}, 5)
	if len(idx) != 1 || idx[0] != 1 {
		t.Fatalf("overlong k: %v", idx)
	}
	if idx, _ := SelectTopK(nil, 3); len(idx) != 0 {
		t.Fatalf("empty input: %v", idx)
	}
}
