// Package quant provides embedding quantization for serving: the paper's
// motivating deployments (§1) keep embeddings of millions to billions of
// vertices resident for recommendation queries, where memory per vector —
// not training cost — is the binding constraint. Two codecs are provided:
//
//   - Float32: straight truncation, 2× smaller, error ~1e-7 relative — the
//     precision the paper's MKL pipeline computes in anyway;
//   - Int8: per-row symmetric linear quantization, 8× smaller; cosine
//     similarities survive to ~1e-2, plenty for top-k retrieval (verified
//     by the package tests).
//
// Both codecs support similarity queries directly on the compressed form.
package quant

import (
	"fmt"
	"math"

	"lightne/internal/dense"
	"lightne/internal/par"
)

// Float32Embedding stores an embedding in single precision.
type Float32Embedding struct {
	Rows, Cols int
	Data       []float32
}

// ToFloat32 converts a float64 embedding.
func ToFloat32(x *dense.Matrix) *Float32Embedding {
	out := &Float32Embedding{Rows: x.Rows, Cols: x.Cols, Data: make([]float32, len(x.Data))}
	par.For(len(x.Data), 1<<15, func(i int) {
		out.Data[i] = float32(x.Data[i])
	})
	return out
}

// ToDense converts back to float64.
func (e *Float32Embedding) ToDense() *dense.Matrix {
	m := dense.NewMatrix(e.Rows, e.Cols)
	for i, v := range e.Data {
		m.Data[i] = float64(v)
	}
	return m
}

// MemoryBytes returns the storage footprint.
func (e *Float32Embedding) MemoryBytes() int64 { return int64(len(e.Data)) * 4 }

// Row returns row i.
func (e *Float32Embedding) Row(i int) []float32 {
	return e.Data[i*e.Cols : (i+1)*e.Cols]
}

// Cosine computes the cosine similarity between rows u and v.
func (e *Float32Embedding) Cosine(u, v int) float64 {
	a, b := e.Row(u), e.Row(v)
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Int8Embedding stores an embedding with one int8 per coordinate and one
// float32 scale per row: value ≈ scale · code.
type Int8Embedding struct {
	Rows, Cols int
	Codes      []int8
	Scales     []float32
}

// ToInt8 quantizes a float64 embedding with per-row symmetric scaling.
func ToInt8(x *dense.Matrix) *Int8Embedding {
	out := &Int8Embedding{
		Rows: x.Rows, Cols: x.Cols,
		Codes:  make([]int8, len(x.Data)),
		Scales: make([]float32, x.Rows),
	}
	par.For(x.Rows, 256, func(i int) {
		row := x.Row(i)
		var maxAbs float64
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			return
		}
		scale := maxAbs / 127
		out.Scales[i] = float32(scale)
		for j, v := range row {
			c := math.Round(v / scale)
			if c > 127 {
				c = 127
			}
			if c < -127 {
				c = -127
			}
			out.Codes[i*x.Cols+j] = int8(c)
		}
	})
	return out
}

// ToDense dequantizes back to float64 (lossy).
func (e *Int8Embedding) ToDense() *dense.Matrix {
	m := dense.NewMatrix(e.Rows, e.Cols)
	for i := 0; i < e.Rows; i++ {
		s := float64(e.Scales[i])
		for j := 0; j < e.Cols; j++ {
			m.Set(i, j, s*float64(e.Codes[i*e.Cols+j]))
		}
	}
	return m
}

// MemoryBytes returns the storage footprint (codes + scales).
func (e *Int8Embedding) MemoryBytes() int64 {
	return int64(len(e.Codes)) + int64(len(e.Scales))*4
}

// Cosine computes the cosine similarity between rows u and v directly on
// the integer codes (the per-row scales cancel in the normalization).
func (e *Int8Embedding) Cosine(u, v int) float64 {
	au := e.Codes[u*e.Cols : (u+1)*e.Cols]
	av := e.Codes[v*e.Cols : (v+1)*e.Cols]
	var dot, na, nb int64
	for i := range au {
		dot += int64(au[i]) * int64(av[i])
		na += int64(au[i]) * int64(au[i])
		nb += int64(av[i]) * int64(av[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return float64(dot) / math.Sqrt(float64(na)*float64(nb))
}

// TopK returns the k rows most cosine-similar to row v (excluding v),
// computed entirely on the quantized codes.
func (e *Int8Embedding) TopK(v, k int) ([]int, []float64, error) {
	if v < 0 || v >= e.Rows {
		return nil, nil, fmt.Errorf("quant: row %d out of range", v)
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("quant: k must be positive")
	}
	sims := make([]float64, e.Rows)
	par.For(e.Rows, 128, func(i int) {
		if i == v {
			sims[i] = math.Inf(-1)
			return
		}
		sims[i] = e.Cosine(v, i)
	})
	if k > e.Rows-1 {
		k = e.Rows - 1
	}
	idx := make([]int, 0, k)
	taken := make([]bool, e.Rows)
	vals := make([]float64, 0, k)
	for len(idx) < k {
		best, bestSim := -1, math.Inf(-1)
		for i, s := range sims {
			if !taken[i] && s > bestSim {
				best, bestSim = i, s
			}
		}
		if best < 0 || math.IsInf(bestSim, -1) {
			break
		}
		taken[best] = true
		idx = append(idx, best)
		vals = append(vals, bestSim)
	}
	return idx, vals, nil
}
