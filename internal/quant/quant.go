// Package quant provides embedding quantization for serving: the paper's
// motivating deployments (§1) keep embeddings of millions to billions of
// vertices resident for recommendation queries, where memory per vector —
// not training cost — is the binding constraint. Two codecs are provided:
//
//   - Float32: straight truncation, 2× smaller, error ~1e-7 relative — the
//     precision the paper's MKL pipeline computes in anyway;
//   - Int8: per-row symmetric linear quantization, 8× smaller; cosine
//     similarities survive to ~1e-2, plenty for top-k retrieval (verified
//     by the package tests).
//
// Both codecs support similarity queries directly on the compressed form.
package quant

import (
	"fmt"
	"math"
	"sort"

	"lightne/internal/dense"
	"lightne/internal/par"
)

// Embedding is the codec-independent view of a quantized embedding — the
// API shared by Float32Embedding and Int8Embedding. Serving builds exactly
// one index implementation over this interface (and the ANN layer exactly
// one coarse quantizer), so a new codec plugs into both by implementing it.
// All methods must be safe for concurrent readers.
type Embedding interface {
	// Shape returns (rows, cols) — named methods rather than fields so both
	// codecs (which expose Rows/Cols as struct fields) can satisfy it.
	Shape() (rows, cols int)
	// TopK returns the k rows most cosine-similar to row v (excluding v),
	// sorted by decreasing similarity, computed on the compressed form.
	TopK(v, k int) ([]int, []float64, error)
	// Cosine is the cosine similarity between stored rows u and v.
	Cosine(u, v int) float64
	// DequantTo writes row v, dequantized to float32, into dst (which must
	// have length >= cols). Used where a float view of a row is required:
	// vector lookups, centroid training, and query-to-centroid routing.
	DequantTo(dst []float32, v int)
	// MemoryBytes is the resident size of the compressed store.
	MemoryBytes() int64
}

// Float32Embedding stores an embedding in single precision.
type Float32Embedding struct {
	Rows, Cols int
	Data       []float32
}

// Shape returns the embedding dimensions.
func (e *Float32Embedding) Shape() (int, int) { return e.Rows, e.Cols }

// DequantTo copies row v into dst (float32 is already the stored form).
func (e *Float32Embedding) DequantTo(dst []float32, v int) {
	copy(dst, e.Row(v))
}

// ToFloat32 converts a float64 embedding.
func ToFloat32(x *dense.Matrix) *Float32Embedding {
	out := &Float32Embedding{Rows: x.Rows, Cols: x.Cols, Data: make([]float32, len(x.Data))}
	par.For(len(x.Data), 1<<15, func(i int) {
		out.Data[i] = float32(x.Data[i])
	})
	return out
}

// ToDense converts back to float64.
func (e *Float32Embedding) ToDense() *dense.Matrix {
	m := dense.NewMatrix(e.Rows, e.Cols)
	for i, v := range e.Data {
		m.Data[i] = float64(v)
	}
	return m
}

// MemoryBytes returns the storage footprint.
func (e *Float32Embedding) MemoryBytes() int64 { return int64(len(e.Data)) * 4 }

// Row returns row i.
func (e *Float32Embedding) Row(i int) []float32 {
	return e.Data[i*e.Cols : (i+1)*e.Cols]
}

// TopK returns the k rows most cosine-similar to row v (excluding v),
// computed directly on the single-precision data — no dequantization to
// float64 on the query path. Similarities are computed in parallel across
// rows; selection is a single O(n log k) heap pass. Ties break toward
// lower row IDs.
func (e *Float32Embedding) TopK(v, k int) ([]int, []float64, error) {
	if v < 0 || v >= e.Rows {
		return nil, nil, fmt.Errorf("quant: row %d out of range", v)
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("quant: k must be positive")
	}
	q := e.Row(v)
	var qn float64
	for _, x := range q {
		qn += float64(x) * float64(x)
	}
	qn = math.Sqrt(qn)
	sims := make([]float64, e.Rows)
	par.For(e.Rows, 128, func(i int) {
		if i == v || qn == 0 {
			sims[i] = math.Inf(-1)
			return
		}
		row := e.Row(i)
		var dot, nn float64
		for j, x := range row {
			dot += float64(x) * float64(q[j])
			nn += float64(x) * float64(x)
		}
		if nn == 0 {
			sims[i] = math.Inf(-1)
			return
		}
		sims[i] = dot / (math.Sqrt(nn) * qn)
	})
	idx, vals := SelectTopK(sims, k)
	return idx, vals, nil
}

// Cosine computes the cosine similarity between rows u and v.
func (e *Float32Embedding) Cosine(u, v int) float64 {
	a, b := e.Row(u), e.Row(v)
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Int8Embedding stores an embedding with one int8 per coordinate and one
// float32 scale per row: value ≈ scale · code.
type Int8Embedding struct {
	Rows, Cols int
	Codes      []int8
	Scales     []float32
}

// ToInt8 quantizes a float64 embedding with per-row symmetric scaling.
func ToInt8(x *dense.Matrix) *Int8Embedding {
	out := &Int8Embedding{
		Rows: x.Rows, Cols: x.Cols,
		Codes:  make([]int8, len(x.Data)),
		Scales: make([]float32, x.Rows),
	}
	par.For(x.Rows, 256, func(i int) {
		row := x.Row(i)
		var maxAbs float64
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			return
		}
		scale := maxAbs / 127
		out.Scales[i] = float32(scale)
		for j, v := range row {
			c := math.Round(v / scale)
			if c > 127 {
				c = 127
			}
			if c < -127 {
				c = -127
			}
			out.Codes[i*x.Cols+j] = int8(c)
		}
	})
	return out
}

// Shape returns the embedding dimensions.
func (e *Int8Embedding) Shape() (int, int) { return e.Rows, e.Cols }

// DequantTo writes row v's dequantized values (scale · code) into dst.
func (e *Int8Embedding) DequantTo(dst []float32, v int) {
	s := e.Scales[v]
	codes := e.Codes[v*e.Cols : (v+1)*e.Cols]
	for j, c := range codes {
		dst[j] = s * float32(c)
	}
}

// ToDense dequantizes back to float64 (lossy).
func (e *Int8Embedding) ToDense() *dense.Matrix {
	m := dense.NewMatrix(e.Rows, e.Cols)
	for i := 0; i < e.Rows; i++ {
		s := float64(e.Scales[i])
		for j := 0; j < e.Cols; j++ {
			m.Set(i, j, s*float64(e.Codes[i*e.Cols+j]))
		}
	}
	return m
}

// MemoryBytes returns the storage footprint (codes + scales).
func (e *Int8Embedding) MemoryBytes() int64 {
	return int64(len(e.Codes)) + int64(len(e.Scales))*4
}

// Cosine computes the cosine similarity between rows u and v directly on
// the integer codes (the per-row scales cancel in the normalization).
func (e *Int8Embedding) Cosine(u, v int) float64 {
	au := e.Codes[u*e.Cols : (u+1)*e.Cols]
	av := e.Codes[v*e.Cols : (v+1)*e.Cols]
	var dot, na, nb int64
	for i := range au {
		dot += int64(au[i]) * int64(av[i])
		na += int64(au[i]) * int64(au[i])
		nb += int64(av[i]) * int64(av[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return float64(dot) / math.Sqrt(float64(na)*float64(nb))
}

// TopK returns the k rows most cosine-similar to row v (excluding v),
// computed entirely on the quantized codes.
func (e *Int8Embedding) TopK(v, k int) ([]int, []float64, error) {
	if v < 0 || v >= e.Rows {
		return nil, nil, fmt.Errorf("quant: row %d out of range", v)
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("quant: k must be positive")
	}
	sims := make([]float64, e.Rows)
	par.For(e.Rows, 128, func(i int) {
		if i == v {
			sims[i] = math.Inf(-1)
			return
		}
		sims[i] = e.Cosine(v, i)
	})
	idx, vals := SelectTopK(sims, k)
	return idx, vals, nil
}

// SelectTopK picks the k largest finite similarities in one pass with a
// size-k min-heap (O(n log k)), returning indices and values sorted by
// decreasing similarity, ties toward lower indices. Entries equal to -Inf
// (the self row and excluded rows) are skipped. Exported because it is the
// shared selection kernel of every top-k consumer: both codecs' exact scans
// here, and the ANN probe path (centroid routing and candidate selection)
// in internal/ann.
func SelectTopK(sims []float64, k int) ([]int, []float64) {
	if k > len(sims) {
		k = len(sims)
	}
	// heap[0] is the current worst of the kept set; "less" prefers lower
	// similarity, then higher index, so the entry evicted first is the one
	// that must lose ties.
	type entry struct {
		sim float64
		idx int
	}
	h := make([]entry, 0, k)
	less := func(a, b entry) bool {
		if a.sim != b.sim {
			return a.sim < b.sim
		}
		return a.idx > b.idx
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h) && less(h[l], h[small]) {
				small = l
			}
			if r < len(h) && less(h[r], h[small]) {
				small = r
			}
			if small == i {
				return
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
	}
	for i, s := range sims {
		if math.IsInf(s, -1) {
			continue
		}
		e := entry{sim: s, idx: i}
		if len(h) < k {
			h = append(h, e)
			// Sift up.
			for c := len(h) - 1; c > 0; {
				p := (c - 1) / 2
				if !less(h[c], h[p]) {
					break
				}
				h[c], h[p] = h[p], h[c]
				c = p
			}
			continue
		}
		if k > 0 && less(h[0], e) {
			h[0] = e
			siftDown(0)
		}
	}
	sort.Slice(h, func(a, b int) bool {
		if h[a].sim != h[b].sim {
			return h[a].sim > h[b].sim
		}
		return h[a].idx < h[b].idx
	})
	idx := make([]int, len(h))
	vals := make([]float64, len(h))
	for i, e := range h {
		idx[i] = e.idx
		vals[i] = e.sim
	}
	return idx, vals
}
