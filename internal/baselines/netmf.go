package baselines

import (
	"fmt"
	"math"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/sparse"
	"lightne/internal/svd"
)

// NetMFConfig controls the exact (dense) NetMF baseline and the no-log
// NRP stand-in.
type NetMFConfig struct {
	T          int     // context window (default 10)
	Dim        int     // embedding dimension
	NegSamples float64 // b (default 1)
	Seed       uint64
	// SkipLog omits the truncated logarithm, yielding the PPR-style
	// factorization the paper attributes to NRP (§2). Quality suffers —
	// that is the point of the comparison.
	SkipLog bool
}

// NetMFExact materializes the full NetMF matrix (paper Eq. 1) densely and
// factorizes it. O(n²·T) time and O(n²) memory: only feasible for small
// graphs, which is exactly why NetSMF/LightNE exist.
func NetMFExact(g *graph.Graph, cfg NetMFConfig) (*dense.Matrix, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("baselines: dimension must be positive")
	}
	if cfg.T <= 0 {
		cfg.T = 10
	}
	b := cfg.NegSamples
	if b <= 0 {
		b = 1
	}
	n := g.NumVertices()
	if n == 0 || g.NumEdges() == 0 {
		return nil, fmt.Errorf("baselines: graph has no edges")
	}
	if g.Weighted() {
		return nil, fmt.Errorf("baselines: NetMF-exact materializes A as 0/1 and requires an unweighted graph")
	}
	if n > 20000 {
		return nil, fmt.Errorf("baselines: NetMF-exact needs O(n²) memory; n=%d is too large", n)
	}
	deg := g.Degrees()
	p := dense.NewMatrix(n, n)
	g.MapEdges(func(u, v uint32) {
		p.Set(int(u), int(v), 1/deg[u])
	})
	sum := dense.NewMatrix(n, n)
	cur := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cur.Set(i, i, 1)
	}
	for r := 1; r <= cfg.T; r++ {
		next := dense.NewMatrix(n, n)
		dense.MatMul(next, cur, p)
		cur = next
		for i := range sum.Data {
			sum.Data[i] += cur.Data[i]
		}
	}
	vol := g.Volume()
	// Entry (i, j) of the pre-log matrix: vol/(bT)·Σ_r (P^r)_{ij} / d_j.
	var us, vs []uint32
	var ws []float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := vol / (b * float64(cfg.T)) * sum.At(i, j) / deg[j]
			if cfg.SkipLog {
				if v > 0 {
					us = append(us, uint32(i))
					vs = append(vs, uint32(j))
					ws = append(ws, v)
				}
				continue
			}
			if v > 1 {
				us = append(us, uint32(i))
				vs = append(vs, uint32(j))
				ws = append(ws, math.Log(v))
			}
		}
	}
	mat, err := sparse.FromCOO(n, n, us, vs, ws)
	if err != nil {
		return nil, err
	}
	res, err := svd.RandomizedSVD(mat, cfg.Dim, svd.Options{Seed: cfg.Seed, Oversample: 8, PowerIters: 2})
	if err != nil {
		return nil, err
	}
	return svd.EmbedFromSVD(res), nil
}
