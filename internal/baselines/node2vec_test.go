package baselines

import (
	"math"
	"testing"

	"lightne/internal/graph"
	"lightne/internal/rng"
)

func TestHasEdge(t *testing.T) {
	g := clusters(t, 6, 1.0, 9) // two complete K6 blocks + bridge
	if !hasEdge(g, 0, 1) {
		t.Fatal("edge (0,1) missing")
	}
	if hasEdge(g, 1, 7) {
		t.Fatal("cross-cluster edge (1,7) should not exist")
	}
	if hasEdge(g, 0, 0) {
		t.Fatal("no self loops")
	}
}

func TestNode2VecStepBiases(t *testing.T) {
	// Path graph 0-1-2 plus triangle edge 0-2: from cur=1 with prev=0,
	// candidate 0 has bias 1/p (return), candidate 2 has bias 1 (neighbor
	// of prev thanks to edge 0-2). With p huge, returns become rare.
	g, err := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3, 0)
	returns := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		nxt, ok := node2vecStep(g, 0, 1, 100, 1, src)
		if !ok {
			t.Fatal("step failed")
		}
		if nxt == 0 {
			returns++
		}
	}
	// Expected return rate ≈ (1/100)/(1/100 + 1) ≈ 0.0099.
	if rate := float64(returns) / draws; rate > 0.03 {
		t.Fatalf("return rate %.4f too high for p=100", rate)
	}
	// With p tiny, returns dominate.
	returns = 0
	for i := 0; i < draws; i++ {
		nxt, _ := node2vecStep(g, 0, 1, 0.01, 1, src)
		if nxt == 0 {
			returns++
		}
	}
	if rate := float64(returns) / draws; rate < 0.9 {
		t.Fatalf("return rate %.4f too low for p=0.01", rate)
	}
}

func TestNode2VecSeparatesClusters(t *testing.T) {
	g := clusters(t, 15, 0.6, 11)
	cfg := DefaultNode2Vec(8)
	cfg.WalksPerNode = 5
	cfg.WalkLength = 20
	cfg.Seed = 13
	x, err := Node2Vec(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 30 || x.Cols != 8 {
		t.Fatalf("shape %dx%d", x.Rows, x.Cols)
	}
	for _, v := range x.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("NaN/Inf in node2vec embedding")
		}
	}
	if sep := clusterSeparation(x, 30, 15, 8); sep < 0.1 {
		t.Fatalf("node2vec separation %.3f too weak", sep)
	}
}

func TestNode2VecErrors(t *testing.T) {
	g := clusters(t, 5, 0.9, 5)
	if _, err := Node2Vec(g, Node2VecConfig{Dim: 0, P: 1, Q: 1}); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := Node2Vec(g, Node2VecConfig{Dim: 4, P: 0, Q: 1}); err == nil {
		t.Fatal("expected p error")
	}
	empty, err := graph.FromEdges(3, nil, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultNode2Vec(4)
	if _, err := Node2Vec(empty, cfg); err == nil {
		t.Fatal("expected empty-graph error")
	}
}
