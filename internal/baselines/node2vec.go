package baselines

import (
	"fmt"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/par"
	"lightne/internal/rng"
)

// Node2VecConfig controls the node2vec baseline: DeepWalk with
// second-order biased walks (Grover & Leskovec, KDD'16) — the third
// skip-gram-family method the paper's related work lists (§2) and that
// NetMF's theory unifies with DeepWalk and LINE.
type Node2VecConfig struct {
	Dim          int
	WalksPerNode int
	WalkLength   int
	Window       int
	Negatives    int
	LearningRate float64
	// P is the return parameter (likelihood of revisiting the previous
	// vertex scales as 1/P); Q is the in-out parameter (BFS-like for Q > 1,
	// DFS-like for Q < 1). P = Q = 1 degenerates to DeepWalk.
	P, Q float64
	Seed uint64
}

// DefaultNode2Vec returns conventional hyper-parameters at dimension d.
func DefaultNode2Vec(d int) Node2VecConfig {
	return Node2VecConfig{Dim: d, WalksPerNode: 10, WalkLength: 40, Window: 5,
		Negatives: 5, LearningRate: 0.025, P: 1, Q: 0.5}
}

// node2vecStep draws the next vertex of a biased walk from cur given prev,
// by rejection sampling (Zhou et al.'s approach): propose a uniform
// neighbor, accept with probability proportional to its bias (1/P for
// returning to prev, 1 for neighbors of prev, 1/Q otherwise). Rejection
// keeps the step O(expected tries) without precomputing O(Σ d_u²) alias
// tables — the memory blow-up that makes exact node2vec impractical at
// LightNE's scales.
func node2vecStep(g *graph.Graph, prev, cur uint32, p, q float64, src *rng.Source) (uint32, bool) {
	d := g.Degree(cur)
	if d == 0 {
		return 0, false
	}
	upper := 1.0
	if 1/p > upper {
		upper = 1 / p
	}
	if 1/q > upper {
		upper = 1 / q
	}
	for try := 0; try < 64; try++ {
		cand := g.Neighbor(cur, src.Intn(d))
		var bias float64
		switch {
		case cand == prev:
			bias = 1 / p
		case hasEdge(g, prev, cand):
			bias = 1
		default:
			bias = 1 / q
		}
		if src.Float64()*upper < bias {
			return cand, true
		}
	}
	// Pathological rejection streak: fall back to an unbiased step.
	return g.Neighbor(cur, src.Intn(d)), true
}

// hasEdge reports whether (u, v) is an arc, by binary search over u's
// sorted neighbor list.
func hasEdge(g *graph.Graph, u, v uint32) bool {
	lo, hi := 0, g.Degree(u)
	for lo < hi {
		mid := (lo + hi) / 2
		w := g.Neighbor(u, mid)
		switch {
		case w == v:
			return true
		case w < v:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false
}

// Node2Vec trains a node2vec embedding: biased second-order walks feeding
// the same skip-gram-with-negative-sampling trainer as DeepWalk.
func Node2Vec(g *graph.Graph, cfg Node2VecConfig) (*dense.Matrix, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("baselines: dimension must be positive")
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("baselines: graph has no edges")
	}
	if cfg.P <= 0 || cfg.Q <= 0 {
		return nil, fmt.Errorf("baselines: p and q must be positive")
	}
	if g.Weighted() {
		return nil, fmt.Errorf("baselines: node2vec's bias rejection assumes uniform proposals and requires an unweighted graph")
	}
	dw := DeepWalkConfig{Dim: cfg.Dim, WalksPerNode: cfg.WalksPerNode,
		WalkLength: cfg.WalkLength, Window: cfg.Window, Negatives: cfg.Negatives,
		LearningRate: cfg.LearningRate}
	applyDeepWalkDefaults(&dw)

	n := g.NumVertices()
	in := dense.NewMatrix(n, dw.Dim)
	out := dense.NewMatrix(n, dw.Dim)
	initEmbedding(in, cfg.Seed)
	nt := newNegTable(g, 1<<20)

	totalWalks := dw.WalksPerNode * n
	done := 0
	for w := 0; w < dw.WalksPerNode; w++ {
		round := uint64(w)
		par.ForRange(n, 64, func(lo, hi int) {
			var src rng.Source
			walk := make([]uint32, dw.WalkLength)
			grad := make([]float64, dw.Dim)
			for start := lo; start < hi; start++ {
				src.Seed(cfg.Seed^0x2042ec, round*uint64(n)+uint64(start))
				if g.Degree(uint32(start)) == 0 {
					continue
				}
				// First step is unbiased; later steps are second-order.
				cur := uint32(start)
				walk[0] = cur
				length := 1
				if nxt, ok := g.RandomNeighbor(cur, &src); ok {
					walk[1] = nxt
					length = 2
					for s := 2; s < dw.WalkLength; s++ {
						nxt, ok := node2vecStep(g, walk[s-2], walk[s-1], cfg.P, cfg.Q, &src)
						if !ok {
							break
						}
						walk[s] = nxt
						length++
					}
				}
				progress := float64(done+start-lo) / float64(totalWalks)
				lr := dw.LearningRate * (1 - progress)
				if lr < dw.LearningRate*0.0001 {
					lr = dw.LearningRate * 0.0001
				}
				for c := 0; c < length; c++ {
					loC, hiC := c-dw.Window, c+dw.Window
					if loC < 0 {
						loC = 0
					}
					if hiC >= length {
						hiC = length - 1
					}
					for t := loC; t <= hiC; t++ {
						if t == c {
							continue
						}
						sgnsUpdate(in, out, walk[c], walk[t], dw.Negatives, lr, nt, &src, grad)
					}
				}
			}
		})
		done += n
	}
	return in, nil
}
