// Package baselines implements the comparison systems of the paper's
// evaluation on this repository's substrate:
//
//   - DeepWalk with Hogwild-style parallel SGD (the algorithm inside
//     GraphVite's CPU-GPU system),
//   - LINE second-order edge-sampling SGD (the algorithm inside
//     PyTorch-BigGraph's configuration for LiveJournal),
//   - NetMF-exact, the dense matrix factorization LightNE approximates, and
//   - NetMF-no-log, a PPR-style factorization that skips the truncated
//     logarithm — the paper's characterization of NRP (§2), used as its
//     stand-in.
//
// These make the paper's cross-system comparisons reproducible on one
// machine: all systems share the same graph substrate and evaluation stack,
// so relative quality and runtime shapes are meaningful.
package baselines

import (
	"fmt"
	"math"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/par"
	"lightne/internal/rng"
)

// DeepWalkConfig controls the DeepWalk baseline.
type DeepWalkConfig struct {
	Dim          int
	WalksPerNode int     // γ (default 10)
	WalkLength   int     // L (default 40)
	Window       int     // T (default 5)
	Negatives    int     // K (default 5)
	Epochs       int     // passes over the walk corpus (default 1)
	LearningRate float64 // initial SGD step (default 0.025)
	Seed         uint64
}

// DefaultDeepWalk returns the conventional hyper-parameters at dimension d.
func DefaultDeepWalk(d int) DeepWalkConfig {
	return DeepWalkConfig{Dim: d, WalksPerNode: 10, WalkLength: 40, Window: 5,
		Negatives: 5, Epochs: 1, LearningRate: 0.025}
}

// negTable is a unigram^{3/4} negative-sampling table (word2vec style).
type negTable struct {
	table []uint32
}

func newNegTable(g *graph.Graph, size int) *negTable {
	n := g.NumVertices()
	if size < n {
		size = n
	}
	weights := make([]float64, n)
	var total float64
	for v := 0; v < n; v++ {
		w := math.Pow(g.Strength(uint32(v)), 0.75) // weighted degree; = Degree when unweighted
		weights[v] = w
		total += w
	}
	t := make([]uint32, size)
	if total == 0 {
		for i := range t {
			t[i] = uint32(i % n)
		}
		return &negTable{t}
	}
	v, acc := 0, weights[0]/total
	for i := range t {
		target := (float64(i) + 0.5) / float64(size)
		for acc < target && v < n-1 {
			v++
			acc += weights[v] / total
		}
		t[i] = uint32(v)
	}
	return &negTable{t}
}

func (nt *negTable) sample(src *rng.Source) uint32 {
	return nt.table[src.Intn(len(nt.table))]
}

// sgnsUpdate applies one skip-gram-negative-sampling step between center u
// and context v with k negatives, Hogwild-style (races tolerated).
func sgnsUpdate(in, out *dense.Matrix, u, v uint32, k int, lr float64, nt *negTable, src *rng.Source, grad []float64) {
	wu := in.Row(int(u))
	for j := range grad {
		grad[j] = 0
	}
	step := func(target uint32, label float64) {
		wv := out.Row(int(target))
		var z float64
		for j := range wu {
			z += wu[j] * wv[j]
		}
		g := lr * (label - sigmoid(z))
		for j := range wu {
			grad[j] += g * wv[j]
			wv[j] += g * wu[j]
		}
	}
	step(v, 1)
	for i := 0; i < k; i++ {
		neg := nt.sample(src)
		if neg == v {
			continue
		}
		step(neg, 0)
	}
	for j := range wu {
		wu[j] += grad[j]
	}
}

func sigmoid(z float64) float64 {
	if z > 8 {
		return 1
	}
	if z < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// DeepWalk trains a DeepWalk embedding with parallel asynchronous SGD and
// returns the input-vector matrix.
func DeepWalk(g *graph.Graph, cfg DeepWalkConfig) (*dense.Matrix, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("baselines: dimension must be positive")
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("baselines: graph has no edges")
	}
	applyDeepWalkDefaults(&cfg)
	n := g.NumVertices()
	in := dense.NewMatrix(n, cfg.Dim)
	out := dense.NewMatrix(n, cfg.Dim)
	initEmbedding(in, cfg.Seed)
	nt := newNegTable(g, 1<<20)

	totalWalks := cfg.Epochs * cfg.WalksPerNode * n
	done := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for w := 0; w < cfg.WalksPerNode; w++ {
			round := uint64(epoch*cfg.WalksPerNode + w)
			par.ForRange(n, 64, func(lo, hi int) {
				var src rng.Source
				walk := make([]uint32, cfg.WalkLength)
				grad := make([]float64, cfg.Dim)
				for start := lo; start < hi; start++ {
					src.Seed(cfg.Seed^0x5ca1ab1e, round*uint64(n)+uint64(start))
					if g.Degree(uint32(start)) == 0 {
						continue
					}
					// Simulate the walk.
					cur := uint32(start)
					for s := 0; s < cfg.WalkLength; s++ {
						walk[s] = cur
						nxt, ok := g.RandomNeighbor(cur, &src)
						if !ok {
							break
						}
						cur = nxt
					}
					// Linear LR decay over the corpus.
					progress := float64(done+start-lo) / float64(totalWalks*1)
					lr := cfg.LearningRate * (1 - progress)
					if lr < cfg.LearningRate*0.0001 {
						lr = cfg.LearningRate * 0.0001
					}
					for c := 0; c < cfg.WalkLength; c++ {
						loC := c - cfg.Window
						hiC := c + cfg.Window
						if loC < 0 {
							loC = 0
						}
						if hiC >= cfg.WalkLength {
							hiC = cfg.WalkLength - 1
						}
						for t := loC; t <= hiC; t++ {
							if t == c {
								continue
							}
							sgnsUpdate(in, out, walk[c], walk[t], cfg.Negatives, lr, nt, &src, grad)
						}
					}
				}
			})
			done += n
		}
	}
	return in, nil
}

func applyDeepWalkDefaults(cfg *DeepWalkConfig) {
	if cfg.WalksPerNode <= 0 {
		cfg.WalksPerNode = 10
	}
	if cfg.WalkLength <= 0 {
		cfg.WalkLength = 40
	}
	if cfg.Window <= 0 {
		cfg.Window = 5
	}
	if cfg.Negatives <= 0 {
		cfg.Negatives = 5
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.025
	}
}

// initEmbedding fills in with small uniform noise (word2vec convention).
func initEmbedding(m *dense.Matrix, seed uint64) {
	par.ForRange(m.Rows, 64, func(lo, hi int) {
		var src rng.Source
		for i := lo; i < hi; i++ {
			src.Seed(seed^0xfeedface, uint64(i))
			row := m.Row(i)
			for j := range row {
				row[j] = (src.Float64() - 0.5) / float64(m.Cols)
			}
		}
	})
}
