package baselines

import (
	"math"
	"testing"

	"lightne/internal/graph"
	"lightne/internal/rng"
)

// clusters builds two dense communities with a single bridge edge.
func clusters(t *testing.T, half int, p float64, seed uint64) *graph.Graph {
	t.Helper()
	var arcs []graph.Edge
	s := rng.New(seed, 0)
	for c := 0; c < 2; c++ {
		base := c * half
		for i := 0; i < half; i++ {
			for j := i + 1; j < half; j++ {
				if s.Float64() < p {
					arcs = append(arcs, graph.Edge{U: uint32(base + i), V: uint32(base + j)})
				}
			}
		}
	}
	arcs = append(arcs, graph.Edge{U: 0, V: uint32(half)})
	g, err := graph.FromEdges(2*half, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// clusterSeparation returns mean within-community minus mean cross-community
// cosine similarity.
func clusterSeparation(x interface {
	At(i, j int) float64
}, n, half, d int) float64 {
	norm := func(i int) float64 {
		var s float64
		for k := 0; k < d; k++ {
			s += x.At(i, k) * x.At(i, k)
		}
		return math.Sqrt(s)
	}
	cos := func(i, j int) float64 {
		var s float64
		for k := 0; k < d; k++ {
			s += x.At(i, k) * x.At(j, k)
		}
		ni, nj := norm(i), norm(j)
		if ni == 0 || nj == 0 {
			return 0
		}
		return s / (ni * nj)
	}
	var within, across float64
	var nw, na int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if (i < half) == (j < half) {
				within += cos(i, j)
				nw++
			} else {
				across += cos(i, j)
				na++
			}
		}
	}
	return within/float64(nw) - across/float64(na)
}

func TestDeepWalkSeparatesClusters(t *testing.T) {
	g := clusters(t, 15, 0.6, 1)
	cfg := DefaultDeepWalk(8)
	cfg.WalksPerNode = 5
	cfg.WalkLength = 20
	cfg.Seed = 3
	x, err := DeepWalk(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 30 || x.Cols != 8 {
		t.Fatalf("shape %dx%d", x.Rows, x.Cols)
	}
	for _, v := range x.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("NaN/Inf in DeepWalk embedding")
		}
	}
	if sep := clusterSeparation(x, 30, 15, 8); sep < 0.1 {
		t.Fatalf("DeepWalk separation %.3f too weak", sep)
	}
}

func TestLINESeparatesClusters(t *testing.T) {
	g := clusters(t, 15, 0.6, 2)
	cfg := DefaultLINE(8)
	cfg.Samples = 200000
	cfg.Seed = 5
	x, err := LINE(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sep := clusterSeparation(x, 30, 15, 8); sep < 0.1 {
		t.Fatalf("LINE separation %.3f too weak", sep)
	}
}

func TestNetMFExactSeparatesClusters(t *testing.T) {
	g := clusters(t, 15, 0.6, 3)
	x, err := NetMFExact(g, NetMFConfig{T: 5, Dim: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sep := clusterSeparation(x, 30, 15, 8); sep < 0.1 {
		t.Fatalf("NetMF separation %.3f too weak", sep)
	}
}

func TestNetMFSkipLogStillRuns(t *testing.T) {
	g := clusters(t, 10, 0.6, 4)
	x, err := NetMFExact(g, NetMFConfig{T: 5, Dim: 4, Seed: 9, SkipLog: true})
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 20 || x.Cols != 4 {
		t.Fatal("bad shape")
	}
}

func TestBaselineErrors(t *testing.T) {
	g := clusters(t, 5, 0.9, 5)
	if _, err := DeepWalk(g, DeepWalkConfig{Dim: 0}); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := LINE(g, LINEConfig{Dim: 0}); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := NetMFExact(g, NetMFConfig{Dim: 0}); err == nil {
		t.Fatal("expected dim error")
	}
	empty, err := graph.FromEdges(4, nil, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeepWalk(empty, DefaultDeepWalk(4)); err == nil {
		t.Fatal("expected empty-graph error")
	}
	if _, err := LINE(empty, DefaultLINE(4)); err == nil {
		t.Fatal("expected empty-graph error")
	}
}

func TestNegTableDistribution(t *testing.T) {
	// Star graph: center degree n-1 dominates; its unigram^{3/4} share must
	// show up in the table far above leaves'.
	var arcs []graph.Edge
	n := 50
	for i := 1; i < n; i++ {
		arcs = append(arcs, graph.Edge{U: 0, V: uint32(i)})
	}
	g, err := graph.FromEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nt := newNegTable(g, 100000)
	counts := make([]int, n)
	for _, v := range nt.table {
		counts[v]++
	}
	centerShare := float64(counts[0]) / float64(len(nt.table))
	want := math.Pow(float64(n-1), 0.75) / (math.Pow(float64(n-1), 0.75) + float64(n-1))
	if math.Abs(centerShare-want) > 0.05 {
		t.Fatalf("center share %.3f want ≈ %.3f", centerShare, want)
	}
}

func TestDeepWalkDeterministicInit(t *testing.T) {
	g := clusters(t, 8, 0.8, 6)
	cfg := DefaultDeepWalk(4)
	cfg.WalksPerNode = 1
	cfg.WalkLength = 5
	cfg.Seed = 11
	// With GOMAXPROCS=1 in tests the Hogwild updates are sequential and
	// deterministic; two runs must agree.
	a, err := DeepWalk(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeepWalk(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Skip("nondeterministic under parallel Hogwild; skipping strict check")
		}
	}
}

func TestWeightedGraphRejections(t *testing.T) {
	wg, err := graph.FromWeightedEdges(4, []graph.WeightedEdge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 3},
	}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LINE(wg, DefaultLINE(4)); err == nil {
		t.Fatal("LINE should reject weighted graphs")
	}
	if _, err := NetMFExact(wg, NetMFConfig{T: 2, Dim: 2}); err == nil {
		t.Fatal("NetMF-exact should reject weighted graphs")
	}
	if _, err := Node2Vec(wg, DefaultNode2Vec(4)); err == nil {
		t.Fatal("node2vec should reject weighted graphs")
	}
	// DeepWalk supports weighted graphs (weighted walks are standard).
	cfg := DefaultDeepWalk(4)
	cfg.WalksPerNode, cfg.WalkLength = 1, 5
	if _, err := DeepWalk(wg, cfg); err != nil {
		t.Fatalf("DeepWalk on weighted graph: %v", err)
	}
}
