package baselines

import (
	"fmt"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/par"
	"lightne/internal/rng"
)

// LINEConfig controls the LINE (second-order proximity) baseline.
type LINEConfig struct {
	Dim          int
	Samples      int64   // total edge samples (default 100·m)
	Negatives    int     // K (default 5)
	LearningRate float64 // initial SGD step (default 0.025)
	Seed         uint64
}

// DefaultLINE returns conventional hyper-parameters at dimension d.
func DefaultLINE(d int) LINEConfig {
	return LINEConfig{Dim: d, Negatives: 5, LearningRate: 0.025}
}

// LINE trains a LINE(2nd) embedding by edge-sampling SGD: repeatedly pick a
// random arc (u,v) and apply a skip-gram-with-negatives update treating v
// as u's context. It captures 1-hop structure only — the paper's point
// about LINE-class systems (§1).
func LINE(g *graph.Graph, cfg LINEConfig) (*dense.Matrix, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("baselines: dimension must be positive")
	}
	arcs := g.NumEdges()
	if arcs == 0 {
		return nil, fmt.Errorf("baselines: graph has no edges")
	}
	if g.Weighted() {
		return nil, fmt.Errorf("baselines: LINE samples arcs uniformly and requires an unweighted graph")
	}
	if cfg.Negatives <= 0 {
		cfg.Negatives = 5
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.025
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 50 * arcs
	}
	n := g.NumVertices()
	in := dense.NewMatrix(n, cfg.Dim)
	out := dense.NewMatrix(n, cfg.Dim)
	initEmbedding(in, cfg.Seed)
	nt := newNegTable(g, 1<<20)

	// Arc sampling needs a flat arc list; build source-per-arc once. This is
	// the "prohibitive memory" approach LightNE avoids (§4.2) — acceptable
	// for a baseline at benchmark scale.
	srcOf := make([]uint32, arcs)
	dstOf := make([]uint32, arcs)
	var w int64
	for u := 0; u < n; u++ {
		d := g.Degree(uint32(u))
		for i := 0; i < d; i++ {
			srcOf[w] = uint32(u)
			dstOf[w] = g.Neighbor(uint32(u), i)
			w++
		}
	}

	total := cfg.Samples
	par.ForRange(int(total), 1<<12, func(lo, hi int) {
		var src rng.Source
		src.Seed(cfg.Seed^0x11e2, uint64(lo))
		grad := make([]float64, cfg.Dim)
		for s := lo; s < hi; s++ {
			a := src.Intn(int(arcs))
			lr := cfg.LearningRate * (1 - float64(s)/float64(total))
			if lr < cfg.LearningRate*0.0001 {
				lr = cfg.LearningRate * 0.0001
			}
			sgnsUpdate(in, out, srcOf[a], dstOf[a], cfg.Negatives, lr, nt, &src, grad)
		}
	})
	return in, nil
}
