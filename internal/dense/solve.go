package dense

import (
	"fmt"
	"math"
)

// SolveSquare solves A·X = B for a square k×k matrix A and k×q right-hand
// side B, returning X (k×q). Neither input is modified. Gaussian elimination
// with partial pivoting; the elimination is sequential, so the result is
// bit-identical for every worker count. In the embedding pipeline it only
// ever runs on the small k×k core problem of the single-pass sketch
// (k = d + oversample), where O(k³) is negligible next to the streaming
// pass that produced the operands.
//
// Returns an error if A is exactly singular (a zero pivot column);
// near-singular systems solve but amplify rounding like any unpivoted
// factor would.
func SolveSquare(a, b *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("dense: SolveSquare requires a square system, got %dx%d", a.Rows, a.Cols))
	}
	if b.Rows != a.Rows {
		panic(fmt.Sprintf("dense: SolveSquare shape mismatch (%dx%d)·X = (%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	k := a.Rows
	lu := a.Clone()
	x := b.Clone()
	for col := 0; col < k; col++ {
		// Partial pivot: the largest |entry| in the column at or below the
		// diagonal.
		piv, best := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < k; r++ {
			if v := math.Abs(lu.At(r, col)); v > best {
				piv, best = r, v
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("dense: singular system (pivot column %d)", col)
		}
		if piv != col {
			swapRows(lu, piv, col)
			swapRows(x, piv, col)
		}
		inv := 1 / lu.At(col, col)
		pivRow := lu.Row(col)
		pivRHS := x.Row(col)
		for r := col + 1; r < k; r++ {
			f := lu.At(r, col) * inv
			if f == 0 {
				continue
			}
			row := lu.Row(r)
			for j := col; j < k; j++ {
				row[j] -= f * pivRow[j]
			}
			rhs := x.Row(r)
			for j, v := range pivRHS {
				rhs[j] -= f * v
			}
		}
	}
	// Back substitution on the upper-triangular factor.
	for i := k - 1; i >= 0; i-- {
		xi := x.Row(i)
		li := lu.Row(i)
		for r := i + 1; r < k; r++ {
			f := li[r]
			if f == 0 {
				continue
			}
			xr := x.Row(r)
			for j, v := range xr {
				xi[j] -= f * v
			}
		}
		inv := 1 / li[i]
		for j := range xi {
			xi[j] *= inv
		}
	}
	return x, nil
}

// swapRows exchanges rows i and j of m in place.
func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for t, v := range ri {
		ri[t], rj[t] = rj[t], v
	}
}
