package dense

import "testing"

func benchMatMul(b *testing.B, n, k, m int) {
	a := NewMatrix(n, k)
	a.FillGaussian(1)
	x := NewMatrix(k, m)
	x.FillGaussian(2)
	c := NewMatrix(n, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(c, a, x)
	}
	b.SetBytes(int64(8 * (n*k + k*m + n*m)))
}

func BenchmarkMatMulTallSkinny(b *testing.B)  { benchMatMul(b, 4096, 128, 128) }
func BenchmarkMatMulSquareSmall(b *testing.B) { benchMatMul(b, 128, 128, 128) }

func BenchmarkMatMulATB(b *testing.B) {
	n, d := 4096, 128
	x := NewMatrix(n, d)
	x.FillGaussian(1)
	c := NewMatrix(d, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulATB(c, x, x)
	}
}

func BenchmarkQRTallSkinny(b *testing.B) {
	a := NewMatrix(4096, 64)
	a.FillGaussian(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QR(a)
	}
}

func BenchmarkSVDSmall(b *testing.B) {
	a := NewMatrix(128, 128)
	a.FillGaussian(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SVD(a)
	}
}

func BenchmarkFillGaussian(b *testing.B) {
	a := NewMatrix(1024, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.FillGaussian(uint64(i))
	}
	b.SetBytes(int64(8 * len(a.Data)))
}
