package dense

import (
	"fmt"
	"math"
)

// QR computes the thin QR factorization A = Q·R of an n×d matrix with
// n >= d, returning Q (n×d, orthonormal columns) and R (d×d, upper
// triangular). A is not modified. This is the LAPACKE_sgeqrf +
// LAPACKE_sorgqr pair from Algorithm 3 ("Orthonormalize").
//
// Implementation: classic Householder reflections. For each column k a
// reflector H_k = I - tau·v·vᵀ annihilates the subdiagonal; Q is then formed
// explicitly by applying H_0·…·H_{d-1} to the first d columns of the
// identity. Cost is O(n·d²), negligible next to the SPMMs that produce A.
func QR(a *Matrix) (q, r *Matrix) {
	if a.Rows < a.Cols {
		panic(fmt.Sprintf("dense: QR requires rows >= cols, got %dx%d", a.Rows, a.Cols))
	}
	return qrInPlace(a.Clone())
}

// QRInPlace is QR for callers that own a and do not need it afterwards: the
// reflector elimination runs directly on a's storage instead of a clone,
// saving one n×d allocation — the difference between a 4·n·k and a 3·n·k
// dense peak for the single-pass sketch, whose Y accumulator is dead the
// moment its Q factor exists. a is destroyed (it holds elimination debris on
// return); the results are bit-identical to QR(a).
func QRInPlace(a *Matrix) (q, r *Matrix) {
	if a.Rows < a.Cols {
		panic(fmt.Sprintf("dense: QRInPlace requires rows >= cols, got %dx%d", a.Rows, a.Cols))
	}
	return qrInPlace(a)
}

// qrInPlace runs the Householder elimination on work's own storage.
func qrInPlace(work *Matrix) (q, r *Matrix) {
	n, d := work.Rows, work.Cols
	taus := make([]float64, d)
	vs := make([][]float64, d) // reflector k stored over rows k..n-1

	for k := 0; k < d; k++ {
		// Build the reflector from column k, rows k..n-1.
		var normSq float64
		for i := k; i < n; i++ {
			v := work.At(i, k)
			normSq += v * v
		}
		norm := math.Sqrt(normSq)
		akk := work.At(k, k)
		if norm == 0 {
			taus[k] = 0
			vs[k] = make([]float64, n-k)
			continue
		}
		alpha := -norm
		if akk < 0 {
			alpha = norm
		}
		v := make([]float64, n-k)
		v[0] = akk - alpha
		for i := k + 1; i < n; i++ {
			v[i-k] = work.At(i, k)
		}
		var vnormSq float64
		for _, x := range v {
			vnormSq += x * x
		}
		if vnormSq == 0 {
			taus[k] = 0
			vs[k] = v
			continue
		}
		tau := 2 / vnormSq
		taus[k] = tau
		vs[k] = v
		// Apply H_k to the trailing columns of work.
		for j := k; j < d; j++ {
			var dot float64
			for i := k; i < n; i++ {
				dot += v[i-k] * work.At(i, j)
			}
			dot *= tau
			for i := k; i < n; i++ {
				work.Set(i, j, work.At(i, j)-dot*v[i-k])
			}
		}
	}

	r = NewMatrix(d, d)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			r.Set(i, j, work.At(i, j))
		}
	}

	// Form Q explicitly: start from the n×d identity block and apply the
	// reflectors in reverse.
	q = NewMatrix(n, d)
	for j := 0; j < d; j++ {
		q.Set(j, j, 1)
	}
	for k := d - 1; k >= 0; k-- {
		tau := taus[k]
		if tau == 0 {
			continue
		}
		v := vs[k]
		for j := 0; j < d; j++ {
			var dot float64
			for i := k; i < n; i++ {
				dot += v[i-k] * q.At(i, j)
			}
			dot *= tau
			for i := k; i < n; i++ {
				q.Set(i, j, q.At(i, j)-dot*v[i-k])
			}
		}
	}
	return q, r
}

// Orthonormalize returns a matrix with orthonormal columns spanning the
// column space of a (the Q factor of its thin QR). Rank-deficient inputs
// yield columns completing the basis arbitrarily but still orthonormal.
func Orthonormalize(a *Matrix) *Matrix {
	q, _ := QR(a)
	return q
}
