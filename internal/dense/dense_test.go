package dense

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"

	"lightne/internal/rng"
)

func randomMatrix(rows, cols int, seed uint64) *Matrix {
	m := NewMatrix(rows, cols)
	m.FillGaussian(seed)
	return m
}

func naiveMatMul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			for j := 0; j < b.Cols; j++ {
				c.Data[i*c.Cols+j] += a.At(i, k) * b.At(k, j)
			}
		}
	}
	return c
}

func maxDiff(a, b *Matrix) float64 {
	var d float64
	for i := range a.Data {
		if v := math.Abs(a.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

func TestMatMulMatchesNaive(t *testing.T) {
	s := rng.New(5, 0)
	for trial := 0; trial < 10; trial++ {
		m, k, n := 1+s.Intn(40), 1+s.Intn(40), 1+s.Intn(40)
		a := randomMatrix(m, k, uint64(trial))
		b := randomMatrix(k, n, uint64(trial+100))
		c := NewMatrix(m, n)
		MatMul(c, a, b)
		want := naiveMatMul(a, b)
		if d := maxDiff(c, want); d > 1e-10 {
			t.Fatalf("trial %d: max diff %g", trial, d)
		}
	}
}

func TestMatMulATBMatchesNaive(t *testing.T) {
	s := rng.New(6, 0)
	for trial := 0; trial < 10; trial++ {
		n, p, q := 1+s.Intn(200), 1+s.Intn(20), 1+s.Intn(20)
		a := randomMatrix(n, p, uint64(trial))
		b := randomMatrix(n, q, uint64(trial+50))
		c := NewMatrix(p, q)
		MatMulATB(c, a, b)
		want := naiveMatMul(a.Transpose(), b)
		if d := maxDiff(c, want); d > 1e-9 {
			t.Fatalf("trial %d: max diff %g", trial, d)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestTranspose(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("shape %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatal("transpose mismatch")
			}
		}
	}
	att := at.Transpose()
	if maxDiff(a, att) != 0 {
		t.Fatal("double transpose changed matrix")
	}
}

func TestQRProperties(t *testing.T) {
	for _, dims := range [][2]int{{5, 3}, {50, 10}, {128, 32}, {4, 4}, {1, 1}} {
		n, d := dims[0], dims[1]
		a := randomMatrix(n, d, uint64(n*31+d))
		q, r := QR(a)

		// QᵀQ = I
		qtq := NewMatrix(d, d)
		MatMulATB(qtq, q, q)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(qtq.At(i, j)-want) > 1e-10 {
					t.Fatalf("%dx%d: QtQ[%d,%d]=%g", n, d, i, j, qtq.At(i, j))
				}
			}
		}
		// R upper triangular
		for i := 0; i < d; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatalf("R not upper triangular at (%d,%d)", i, j)
				}
			}
		}
		// Q·R = A
		qr := NewMatrix(n, d)
		MatMul(qr, q, r)
		if diff := maxDiff(qr, a); diff > 1e-10*math.Max(1, a.MaxAbs()) {
			t.Fatalf("%dx%d: QR reconstruction diff %g", n, d, diff)
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns: QR must still produce orthonormal Q.
	n, d := 20, 3
	a := NewMatrix(n, d)
	s := rng.New(3, 0)
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		a.Set(i, 0, v)
		a.Set(i, 1, v) // duplicate column
		a.Set(i, 2, s.NormFloat64())
	}
	q, r := QR(a)
	qtq := NewMatrix(d, d)
	MatMulATB(qtq, q, q)
	for i := 0; i < d; i++ {
		if math.Abs(qtq.At(i, i)-1) > 1e-10 {
			t.Fatalf("Q column %d not unit norm", i)
		}
	}
	qr := NewMatrix(n, d)
	MatMul(qr, q, r)
	if diff := maxDiff(qr, a); diff > 1e-10 {
		t.Fatalf("rank-deficient QR reconstruction diff %g", diff)
	}
}

func TestSVDReconstruction(t *testing.T) {
	for _, dims := range [][2]int{{6, 4}, {40, 12}, {64, 64}, {3, 1}} {
		n, d := dims[0], dims[1]
		a := randomMatrix(n, d, uint64(n*17+d))
		u, sigma, v := SVD(a)

		// Singular values sorted descending and non-negative.
		for j := 0; j < d; j++ {
			if sigma[j] < 0 {
				t.Fatalf("negative singular value %g", sigma[j])
			}
			if j > 0 && sigma[j] > sigma[j-1]+1e-12 {
				t.Fatalf("singular values not sorted: %v", sigma)
			}
		}
		// U orthonormal columns, V orthogonal.
		utu := NewMatrix(d, d)
		MatMulATB(utu, u, u)
		vtv := NewMatrix(d, d)
		MatMulATB(vtv, v, v)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(utu.At(i, j)-want) > 1e-9 {
					t.Fatalf("%dx%d UtU[%d,%d]=%g", n, d, i, j, utu.At(i, j))
				}
				if math.Abs(vtv.At(i, j)-want) > 1e-9 {
					t.Fatalf("%dx%d VtV[%d,%d]=%g", n, d, i, j, vtv.At(i, j))
				}
			}
		}
		// U·diag(σ)·Vᵀ = A
		us := u.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				us.Set(i, j, us.At(i, j)*sigma[j])
			}
		}
		recon := NewMatrix(n, d)
		MatMul(recon, us, v.Transpose())
		if diff := maxDiff(recon, a); diff > 1e-9*math.Max(1, a.MaxAbs()) {
			t.Fatalf("%dx%d: SVD reconstruction diff %g", n, d, diff)
		}
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2, 1) has exactly those singular values.
	a := NewMatrix(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, 2)
	a.Set(2, 2, 1)
	_, sigma, _ := SVD(a)
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(sigma[i]-want[i]) > 1e-12 {
			t.Fatalf("sigma=%v want %v", sigma, want)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: exactly one nonzero singular value.
	n, d := 10, 4
	a := NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			a.Set(i, j, float64(i+1)*float64(j+1))
		}
	}
	_, sigma, _ := SVD(a)
	if sigma[0] <= 0 {
		t.Fatal("expected positive leading singular value")
	}
	for j := 1; j < d; j++ {
		if sigma[j] > 1e-8*sigma[0] {
			t.Fatalf("rank-1 matrix has sigma[%d]=%g", j, sigma[j])
		}
	}
}

func TestFillGaussianDeterministic(t *testing.T) {
	a := NewMatrix(10, 10)
	b := NewMatrix(10, 10)
	a.FillGaussian(42)
	b.FillGaussian(42)
	if maxDiff(a, b) != 0 {
		t.Fatal("same seed produced different matrices")
	}
	b.FillGaussian(43)
	if maxDiff(a, b) == 0 {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestFrobeniusAndScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{3, 0, 0, 4})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius=%g want 5", got)
	}
	a.Scale(2)
	if got := a.FrobeniusNorm(); math.Abs(got-10) > 1e-12 {
		t.Fatalf("after scale Frobenius=%g want 10", got)
	}
	if a.MaxAbs() != 8 {
		t.Fatalf("MaxAbs=%g want 8", a.MaxAbs())
	}
}

func TestColumnNorms(t *testing.T) {
	a := FromSlice(2, 2, []float64{3, 1, 4, 1})
	norms := a.ColumnNorms()
	if math.Abs(norms[0]-5) > 1e-12 || math.Abs(norms[1]-math.Sqrt2) > 1e-12 {
		t.Fatalf("norms=%v", norms)
	}
}

// TestMaxAbsMatchesSequential: the parallel block-reduce must return exactly
// the sequential maximum (max is order-independent), for shapes spanning the
// sequential fallback and the multi-block path, at several worker counts.
func TestMaxAbsMatchesSequential(t *testing.T) {
	shapes := [][2]int{{0, 0}, {1, 1}, {3, 7}, {200, 40}, {5000, 17}}
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		for si, sh := range shapes {
			m := randomMatrix(sh[0], sh[1], uint64(100+si))
			var want float64
			for _, v := range m.Data {
				if a := math.Abs(v); a > want {
					want = a
				}
			}
			if got := m.MaxAbs(); got != want {
				t.Errorf("procs=%d %dx%d: MaxAbs=%g want %g", procs, sh[0], sh[1], got, want)
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestColumnNormsMatchesSequential: the parallel block-reduce must agree
// with the straightforward sequential accumulation to float tolerance, for
// shapes spanning the single-block and multi-block paths, at several worker
// counts.
func TestColumnNormsMatchesSequential(t *testing.T) {
	shapes := [][2]int{{1, 1}, {7, 3}, {300, 64}, {5000, 5}}
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		for si, sh := range shapes {
			m := randomMatrix(sh[0], sh[1], uint64(200+si))
			want := make([]float64, sh[1])
			for i := 0; i < sh[0]; i++ {
				row := m.Row(i)
				for j, v := range row {
					want[j] += v * v
				}
			}
			got := m.ColumnNorms()
			for j := range want {
				ref := math.Sqrt(want[j])
				if math.Abs(got[j]-ref) > 1e-12*(1+ref) {
					t.Errorf("procs=%d %dx%d col %d: %g want %g", procs, sh[0], sh[1], j, got[j], ref)
				}
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (A·B)·C == A·(B·C) within floating tolerance, for random small shapes.
	f := func(seed uint16) bool {
		s := rng.New(uint64(seed), 0)
		m, k, l, n := 1+s.Intn(8), 1+s.Intn(8), 1+s.Intn(8), 1+s.Intn(8)
		a := randomMatrix(m, k, uint64(seed))
		b := randomMatrix(k, l, uint64(seed)+1)
		c := randomMatrix(l, n, uint64(seed)+2)
		ab := NewMatrix(m, l)
		MatMul(ab, a, b)
		abc1 := NewMatrix(m, n)
		MatMul(abc1, ab, c)
		bc := NewMatrix(k, n)
		MatMul(bc, b, c)
		abc2 := NewMatrix(m, n)
		MatMul(abc2, a, bc)
		return maxDiff(abc1, abc2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulATBDetMatchesNaive(t *testing.T) {
	s := rng.New(17, 0)
	for trial := 0; trial < 10; trial++ {
		n, p, q := 1+s.Intn(300), 1+s.Intn(20), 1+s.Intn(20)
		a := randomMatrix(n, p, uint64(trial))
		b := randomMatrix(n, q, uint64(trial+500))
		c := NewMatrix(p, q)
		MatMulATBDet(c, a, b)
		want := naiveMatMul(a.Transpose(), b)
		if d := maxDiff(c, want); d > 1e-9 {
			t.Fatalf("trial %d (%dx%d x %dx%d): max diff %g", trial, n, p, n, q, d)
		}
	}
}

// TestMatMulATBDetBitIdenticalAcrossWorkers pins the determinism contract:
// the product is bitwise identical for every GOMAXPROCS, including sizes
// that straddle the fixed block geometry.
func TestMatMulATBDetBitIdenticalAcrossWorkers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, n := range []int{1, 63, 64, 65, 1000, 4097} {
		a := randomMatrix(n, 7, uint64(n))
		b := randomMatrix(n, 5, uint64(n)+99)
		var ref *Matrix
		for _, procs := range []int{1, 2, 4} {
			runtime.GOMAXPROCS(procs)
			c := NewMatrix(7, 5)
			MatMulATBDet(c, a, b)
			if ref == nil {
				ref = c
				continue
			}
			for i := range c.Data {
				if c.Data[i] != ref.Data[i] {
					t.Fatalf("n=%d procs=%d: element %d differs: %v vs %v",
						n, procs, i, c.Data[i], ref.Data[i])
				}
			}
		}
	}
}

func TestQRInPlaceMatchesQR(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {10, 3}, {200, 17}} {
		a := randomMatrix(shape[0], shape[1], uint64(shape[0]))
		q1, r1 := QR(a)
		q2, r2 := QRInPlace(a.Clone())
		if d := maxDiff(q1, q2); d != 0 {
			t.Fatalf("%v: Q differs by %g", shape, d)
		}
		if d := maxDiff(r1, r2); d != 0 {
			t.Fatalf("%v: R differs by %g", shape, d)
		}
	}
}

func TestSolveSquareRoundTrip(t *testing.T) {
	s := rng.New(23, 0)
	for trial := 0; trial < 10; trial++ {
		k, q := 1+s.Intn(30), 1+s.Intn(10)
		a := randomMatrix(k, k, uint64(trial+1))
		// Push the diagonal away from singularity.
		for i := 0; i < k; i++ {
			a.Set(i, i, a.At(i, i)+float64(k))
		}
		want := randomMatrix(k, q, uint64(trial+900))
		b := naiveMatMul(a, want)
		got, err := SolveSquare(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := maxDiff(got, want); d > 1e-8 {
			t.Fatalf("trial %d (k=%d q=%d): max diff %g", trial, k, q, d)
		}
	}
}

func TestSolveSquareNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position: fails without row exchanges.
	a := FromSlice(2, 2, []float64{0, 1, 1, 0})
	b := FromSlice(2, 1, []float64{3, 7})
	x, err := SolveSquare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(0, 0) != 7 || x.At(1, 0) != 3 {
		t.Fatalf("got %v", x.Data)
	}
}

func TestSolveSquareSingular(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 4})
	b := NewMatrix(2, 1)
	if _, err := SolveSquare(a, b); err == nil {
		t.Fatal("expected an error for a singular system")
	}
}
