package dense

import (
	"fmt"
	"math"
	"sort"
)

// SVD computes the thin singular value decomposition A = U·diag(σ)·Vᵀ of an
// n×d matrix with n >= d. It returns U (n×d), the singular values σ in
// descending order, and V (d×d). A is not modified. This is the
// LAPACKE_sgesvd stand-in from Algorithm 3; in the randomized SVD it only
// ever runs on the small d×d projected matrix C.
//
// Implementation: one-sided Jacobi. Column pairs are repeatedly
// orthogonalized by right-rotations until every pair is numerically
// orthogonal; then σ_j = ‖a_j‖ and u_j = a_j/σ_j. One-sided Jacobi is
// unconditionally convergent and delivers high relative accuracy even for
// tiny singular values, which matters because Σ^{1/2} feeds the embedding.
func SVD(a *Matrix) (u *Matrix, sigma []float64, v *Matrix) {
	n, d := a.Rows, a.Cols
	if n < d {
		panic(fmt.Sprintf("dense: SVD requires rows >= cols, got %dx%d", n, d))
	}
	u = a.Clone()
	v = NewMatrix(d, d)
	for j := 0; j < d; j++ {
		v.Set(j, j, 1)
	}
	if d == 0 {
		return u, nil, v
	}

	const (
		eps       = 1e-15
		maxSweeps = 60
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		converged := true
		for p := 0; p < d-1; p++ {
			for q := p + 1; q < d; q++ {
				// Gram entries of the column pair.
				var app, aqq, apq float64
				for i := 0; i < n; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					app += up * up
					aqq += uq * uq
					apq += up * uq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq) || apq == 0 {
					continue
				}
				converged = false
				// Jacobi rotation annihilating the off-diagonal Gram entry.
				zeta := (aqq - app) / (2 * apq)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < n; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					u.Set(i, p, c*up-s*uq)
					u.Set(i, q, s*up+c*uq)
				}
				for i := 0; i < d; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if converged {
			break
		}
	}

	// Extract singular values and normalize U's columns.
	sigma = make([]float64, d)
	for j := 0; j < d; j++ {
		var norm float64
		for i := 0; i < n; i++ {
			x := u.At(i, j)
			norm += x * x
		}
		sigma[j] = math.Sqrt(norm)
		if sigma[j] > 0 {
			inv := 1 / sigma[j]
			for i := 0; i < n; i++ {
				u.Set(i, j, u.At(i, j)*inv)
			}
		}
	}

	// Sort descending by singular value, permuting U and V consistently.
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return sigma[idx[a]] > sigma[idx[b]] })
	us := NewMatrix(n, d)
	vs := NewMatrix(d, d)
	sigmaSorted := make([]float64, d)
	for newJ, oldJ := range idx {
		sigmaSorted[newJ] = sigma[oldJ]
		for i := 0; i < n; i++ {
			us.Set(i, newJ, u.At(i, oldJ))
		}
		for i := 0; i < d; i++ {
			vs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return us, sigmaSorted, vs
}
