// Package dense provides the dense linear-algebra kernels LightNE obtains
// from Intel MKL in the paper (§4.3): parallel matrix-matrix products
// (cblas_sgemm), Householder QR with explicit Q formation (LAPACKE_sgeqrf +
// LAPACKE_sorgqr), a small dense SVD (LAPACKE_sgesvd), and Gaussian random
// matrix generation (vsRngGaussian).
//
// Matrices are row-major float64. The embedding pipelines only ever run
// dense kernels on tall-skinny (n×d) or tiny (d×d) operands with d ≤ a few
// hundred, so the implementations favor clarity and robustness: blocked
// ikj-order GEMM parallelized over rows, classic Householder QR, and
// one-sided Jacobi SVD (unconditionally convergent, high relative accuracy).
package dense

import (
	"fmt"
	"math"

	"lightne/internal/par"
	"lightne/internal/rng"
)

// Matrix is a row-major dense matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row i at Data[i*Cols : (i+1)*Cols]
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps existing data (not copied) as a rows×cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("dense: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	par.For(m.Rows, 64, func(i int) {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	})
	return t
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float64) {
	par.For(len(m.Data), 1<<14, func(i int) { m.Data[i] *= s })
}

// FrobeniusNorm returns sqrt(sum of squares).
func (m *Matrix) FrobeniusNorm() float64 {
	s := par.ReduceFloat64(len(m.Data), 1<<14, func(i int) float64 { return m.Data[i] * m.Data[i] })
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
// Parallel block-reduce; max is order-independent, so the result is exactly
// the sequential answer for every worker count.
func (m *Matrix) MaxAbs() float64 {
	return par.MaxFloat64(len(m.Data), 1<<14, 0, func(i int) float64 {
		return math.Abs(m.Data[i])
	})
}

// FillGaussian fills m with independent N(0,1) draws. Rows use distinct RNG
// streams derived from seed, so the result is deterministic under any
// parallel schedule. This replaces MKL's vsRngGaussian.
func (m *Matrix) FillGaussian(seed uint64) {
	par.ForRange(m.Rows, 16, func(lo, hi int) {
		var src rng.Source
		for i := lo; i < hi; i++ {
			src.Seed(seed, uint64(i))
			src.FillNorm(m.Row(i))
		}
	})
}

// MatMul computes C = A·B. C must be preallocated with shape
// (A.Rows × B.Cols) and is overwritten. Parallel over rows of A with
// ikj loop order (streams rows of B, cache friendly for row-major).
// This is the cblas_sgemm stand-in.
func MatMul(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MatMul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	par.For(a.Rows, 8, func(i int) {
		ci := c.Row(i)
		for j := range ci {
			ci[j] = 0
		}
		ai := a.Row(i)
		for k, aik := range ai {
			if aik == 0 {
				continue
			}
			bk := b.Row(k)
			for j, bkj := range bk {
				ci[j] += aik * bkj
			}
		}
	})
}

// MatMulATB computes C = Aᵀ·B where A is n×p and B is n×q, producing p×q.
// Parallelized over blocks of shared rows with per-worker accumulators,
// then reduced; the accumulation order is deterministic.
func MatMulATB(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MatMulATB shape mismatch (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	p, q := a.Cols, b.Cols
	workers := par.Workers()
	partials := make([][]float64, workers)
	used := make([]bool, workers)
	par.WorkerFor(a.Rows, 32, func(w, lo, hi int) {
		if partials[w] == nil {
			partials[w] = make([]float64, p*q)
		}
		used[w] = true
		acc := partials[w]
		for i := lo; i < hi; i++ {
			ai, bi := a.Row(i), b.Row(i)
			for k, aik := range ai {
				if aik == 0 {
					continue
				}
				row := acc[k*q : (k+1)*q]
				for j, bij := range bi {
					row[j] += aik * bij
				}
			}
		}
	})
	c.Zero()
	for w := 0; w < workers; w++ {
		if !used[w] {
			continue
		}
		for i, v := range partials[w] {
			c.Data[i] += v
		}
	}
}

// atbDetBlocks is the fixed row-partition width target for MatMulATBDet.
// The block count is a pure function of the row count alone — never of
// Workers() — so the partial-product geometry, and therefore the
// floating-point combine order, is identical for every GOMAXPROCS.
const atbDetBlocks = 64

// MatMulATBDet computes C = Aᵀ·B like MatMulATB, but bit-deterministically
// across worker counts: the shared row space is split into a fixed number of
// blocks independent of GOMAXPROCS, each block accumulates its p×q partial
// product sequentially, and the partials are folded by a fixed pairwise tree
// (CombineTree). MatMulATB's dynamic chunk-to-worker assignment makes its
// float summation order schedule-dependent; use this variant wherever the
// product feeds a bit-reproducibility guarantee (the single-pass sketched
// factorization does).
func MatMulATBDet(c, a, b *Matrix) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MatMulATBDet shape mismatch (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	n, p, q := a.Rows, a.Cols, b.Cols
	if n == 0 || p == 0 || q == 0 {
		c.Zero()
		return
	}
	nb := atbDetBlocks
	if nb > n {
		nb = n
	}
	size := (n + nb - 1) / nb
	nb = (n + size - 1) / size
	partials := make([][]float64, nb)
	par.For(nb, 1, func(bi int) {
		lo := bi * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		acc := make([]float64, p*q)
		for i := lo; i < hi; i++ {
			ai, bi := a.Row(i), b.Row(i)
			for k, aik := range ai {
				if aik == 0 {
					continue
				}
				row := acc[k*q : (k+1)*q]
				for j, bij := range bi {
					row[j] += aik * bij
				}
			}
		}
		partials[bi] = acc
	})
	CombineTree(partials)
	copy(c.Data, partials[0])
}

// CombineTree folds equal-length partial-sum vectors pairwise: partials[i]
// absorbs partials[i+stride] for stride = 1, 2, 4, …, leaving the total in
// partials[0]. The pairing depends only on len(partials), so for a fixed
// block geometry the float addition order — hence the result, bitwise — is
// identical for every worker count.
func CombineTree(partials [][]float64) {
	for stride := 1; stride < len(partials); stride *= 2 {
		pairs := make([]int, 0, (len(partials)+2*stride-1)/(2*stride))
		for i := 0; i+stride < len(partials); i += 2 * stride {
			pairs = append(pairs, i)
		}
		par.For(len(pairs), 1, func(pi int) {
			dst, src := partials[pairs[pi]], partials[pairs[pi]+stride]
			for j, v := range src {
				dst[j] += v
			}
		})
	}
}

// ColumnNorms returns the Euclidean norm of every column. Parallel
// block-reduce over row blocks with per-block partial sum vectors combined
// in block order, so the result is deterministic for a fixed geometry (it
// matches the sequential accumulation to float rounding, not bitwise).
func (m *Matrix) ColumnNorms() []float64 {
	sums := make([]float64, m.Cols)
	if m.Cols == 0 {
		return sums
	}
	bounds := par.Blocks(m.Rows, 1<<14/m.Cols+1)
	nb := len(bounds) - 1
	partials := make([][]float64, nb)
	par.ForBlocks(bounds, func(b, lo, hi int) {
		local := make([]float64, m.Cols)
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j, v := range row {
				local[j] += v * v
			}
		}
		partials[b] = local
	})
	for _, local := range partials {
		for j, v := range local {
			sums[j] += v
		}
	}
	for j := range sums {
		sums[j] = math.Sqrt(sums[j])
	}
	return sums
}
