package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lightne/internal/ann"
	"lightne/internal/core"
	"lightne/internal/dense"
	"lightne/internal/dynamic"
	"lightne/internal/graph"
)

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// clusteredEmbedding builds a deterministic embedding with two well
// separated direction clusters: vertices [0, n/2) lie near e1, the rest
// near e2, with per-vertex perturbations so rankings are stable.
func clusteredEmbedding(n, d int) *dense.Matrix {
	x := dense.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		axis := 0
		if i >= n/2 {
			axis = 1
		}
		x.Set(i, axis, 10)
		// Small deterministic perturbation, unique per vertex.
		x.Set(i, 2, 0.01*float64(i%7))
		x.Set(i, 3, 0.005*float64(i%11))
	}
	return x
}

func newTestServer(t *testing.T, n, d int) (*Store, *httptest.Server) {
	t.Helper()
	ix, err := NewIndex(clusteredEmbedding(n, d), "float32")
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	store.Publish(ix, 0)
	ts := httptest.NewServer(New(store).Handler())
	t.Cleanup(ts.Close)
	return store, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response of %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthzBeforeAndAfterPublish(t *testing.T) {
	store := NewStore()
	ts := httptest.NewServer(New(store).Handler())
	defer ts.Close()
	var h HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("before publish: status %d", code)
	}
	if h.Status != "loading" {
		t.Fatalf("status %q", h.Status)
	}
	ix, err := NewIndex(clusteredEmbedding(10, 4), "")
	if err != nil {
		t.Fatal(err)
	}
	store.Publish(ix, 0.25)
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("after publish: status %d", code)
	}
	if h.Status != "ok" || h.Vertices != 10 || h.Dims != 4 || h.SnapshotVersion != 1 || h.Staleness != 0.25 {
		t.Fatalf("health %+v", h)
	}
}

func TestNeighborsGETAndPOST(t *testing.T) {
	_, ts := newTestServer(t, 20, 4)
	var got NeighborsResponse
	if code := getJSON(t, ts.URL+"/v1/neighbors?vertex=0&k=5", &got); code != http.StatusOK {
		t.Fatalf("GET status %d", code)
	}
	if got.Vertex != 0 || got.K != 5 || len(got.Neighbors) != 5 || got.SnapshotVersion != 1 {
		t.Fatalf("GET response %+v", got)
	}
	// Vertex 0 is in the e1 cluster (vertices 0..9): all its nearest
	// neighbors must come from there.
	for _, nb := range got.Neighbors {
		if nb.Vertex >= 10 {
			t.Fatalf("cross-cluster neighbor %d", nb.Vertex)
		}
		if nb.Score < 0.99 {
			t.Fatalf("same-cluster score %g too low", nb.Score)
		}
	}
	var post NeighborsResponse
	if code := postJSON(t, ts.URL+"/v1/neighbors", `{"vertex":0,"k":5}`, &post); code != http.StatusOK {
		t.Fatalf("POST status %d", code)
	}
	if len(post.Neighbors) != len(got.Neighbors) {
		t.Fatalf("GET/POST disagree: %d vs %d", len(got.Neighbors), len(post.Neighbors))
	}
	for i := range post.Neighbors {
		if post.Neighbors[i] != got.Neighbors[i] {
			t.Fatalf("GET/POST rank %d: %+v vs %+v", i, got.Neighbors[i], post.Neighbors[i])
		}
	}
	// Omitted k uses the default.
	if code := postJSON(t, ts.URL+"/v1/neighbors", `{"vertex":3}`, &got); code != http.StatusOK {
		t.Fatalf("default-k status %d", code)
	}
	if got.K != DefaultK {
		t.Fatalf("default k = %d", got.K)
	}
}

func TestNeighborsErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, 20, 4)
	cases := []struct {
		name string
		do   func() int
		want int
	}{
		{"unknown vertex GET", func() int { return getJSON(t, ts.URL+"/v1/neighbors?vertex=99&k=3", nil) }, http.StatusNotFound},
		{"negative vertex", func() int { return getJSON(t, ts.URL+"/v1/neighbors?vertex=-1&k=3", nil) }, http.StatusNotFound},
		{"k zero", func() int { return getJSON(t, ts.URL+"/v1/neighbors?vertex=0&k=0", nil) }, http.StatusBadRequest},
		{"k negative POST", func() int { return postJSON(t, ts.URL+"/v1/neighbors", `{"vertex":0,"k":-2}`, nil) }, http.StatusBadRequest},
		{"non-numeric vertex", func() int { return getJSON(t, ts.URL+"/v1/neighbors?vertex=abc", nil) }, http.StatusBadRequest},
		{"missing vertex", func() int { return getJSON(t, ts.URL+"/v1/neighbors", nil) }, http.StatusBadRequest},
		{"malformed JSON", func() int { return postJSON(t, ts.URL+"/v1/neighbors", `{"vertex":`, nil) }, http.StatusBadRequest},
		{"unknown field", func() int { return postJSON(t, ts.URL+"/v1/neighbors", `{"vertx":3}`, nil) }, http.StatusBadRequest},
		{"unknown vertex POST", func() int { return postJSON(t, ts.URL+"/v1/neighbors", `{"vertex":1000,"k":3}`, nil) }, http.StatusNotFound},
	}
	for _, tc := range cases {
		if got := tc.do(); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}
	// Error bodies carry a JSON error message.
	var e map[string]string
	if code := getJSON(t, ts.URL+"/v1/neighbors?vertex=99&k=3", &e); code != http.StatusNotFound || e["error"] == "" {
		t.Fatalf("error body %v (status %d)", e, code)
	}
}

func TestEmbeddingEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 12, 4)
	var got EmbeddingResponse
	if code := getJSON(t, ts.URL+"/v1/embedding/3", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.Vertex != 3 || got.Dims != 4 || len(got.Vector) != 4 {
		t.Fatalf("response %+v", got)
	}
	// Vertex 3 is in the first cluster: coordinate 0 carries the weight.
	if got.Vector[0] != 10 {
		t.Fatalf("vector %v", got.Vector)
	}
	if code := getJSON(t, ts.URL+"/v1/embedding/99", nil); code != http.StatusNotFound {
		t.Fatalf("unknown vertex: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/embedding/xyz", nil); code != http.StatusBadRequest {
		t.Fatalf("bad vertex: status %d", code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 20, 4)
	var got BatchResponse
	body := `{"queries":[{"vertex":0,"k":3},{"vertex":99,"k":3},{"vertex":15,"k":-1},{"vertex":15,"k":2}]}`
	if code := postJSON(t, ts.URL+"/v1/batch", body, &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(got.Results) != 4 {
		t.Fatalf("%d results", len(got.Results))
	}
	if len(got.Results[0].Neighbors) != 3 || got.Results[0].Error != "" {
		t.Fatalf("result 0: %+v", got.Results[0])
	}
	if got.Results[1].Error == "" {
		t.Fatal("unknown vertex must error per-query")
	}
	if got.Results[2].Error == "" {
		t.Fatal("bad k must error per-query")
	}
	if len(got.Results[3].Neighbors) != 2 {
		t.Fatalf("result 3: %+v", got.Results[3])
	}
	if code := postJSON(t, ts.URL+"/v1/batch", `{"queries":[]}`, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/batch", `garbage`, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed batch: status %d", code)
	}
	huge := `{"queries":[` + strings.Repeat(`{"vertex":0},`, MaxBatch) + `{"vertex":0}]}`
	if code := postJSON(t, ts.URL+"/v1/batch", huge, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", code)
	}
}

func TestQueryBeforePublishIs503(t *testing.T) {
	store := NewStore()
	ts := httptest.NewServer(New(store).Handler())
	defer ts.Close()
	if code := getJSON(t, ts.URL+"/v1/neighbors?vertex=0&k=3", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("neighbors: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/embedding/0", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("embedding: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/batch", `{"queries":[{"vertex":0}]}`, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("batch: status %d", code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 20, 4)
	for i := 0; i < 5; i++ {
		getJSON(t, fmt.Sprintf("%s/v1/neighbors?vertex=%d&k=3", ts.URL, i), nil)
	}
	getJSON(t, ts.URL+"/v1/neighbors?vertex=999", nil) // one error
	getJSON(t, ts.URL+"/healthz", nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`lightne_requests_total{endpoint="neighbors"} 6`,
		`lightne_request_errors_total{endpoint="neighbors"} 1`,
		`lightne_requests_total{endpoint="healthz"} 1`,
		`lightne_request_latency_seconds{endpoint="neighbors",quantile="0.5"}`,
		`lightne_request_latency_seconds{endpoint="neighbors",quantile="0.99"}`,
		`lightne_snapshot_version 1`,
		`lightne_snapshot_vertices 20`,
		`lightne_uptime_seconds`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
}

func TestInt8Index(t *testing.T) {
	x := clusteredEmbedding(16, 4)
	ix, err := NewIndex(x, "int8")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Rows() != 16 || ix.Dims() != 4 {
		t.Fatalf("shape %dx%d", ix.Rows(), ix.Dims())
	}
	idx, _, err := ix.TopK(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range idx {
		if v >= 8 {
			t.Fatalf("cross-cluster neighbor %d from int8 index", v)
		}
	}
	vec := ix.Vector(3)
	if len(vec) != 4 || vec[0] < 9.9 || vec[0] > 10.1 {
		t.Fatalf("dequantized vector %v", vec)
	}
	if _, err := NewIndex(x, "float16"); err == nil {
		t.Fatal("expected unknown-precision error")
	}
}

// TestConcurrentQueriesDuringHotSwap hammers the query path while a
// publisher goroutine swaps snapshots of different sizes. Under -race this
// verifies the read path needs no locking; functionally it verifies every
// response is internally consistent (all results within one snapshot's
// vertex range).
func TestConcurrentQueriesDuringHotSwap(t *testing.T) {
	sizes := []int{20, 40, 60}
	indexes := make([]Index, len(sizes))
	for i, n := range sizes {
		ix, err := NewIndex(clusteredEmbedding(n, 4), "float32")
		if err != nil {
			t.Fatal(err)
		}
		indexes[i] = ix
	}
	store := NewStore()
	store.Publish(indexes[0], 0)
	ts := httptest.NewServer(New(store).Handler())
	defer ts.Close()

	const swaps = 50
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= swaps; i++ {
			store.Publish(indexes[i%len(indexes)], float64(i)/swaps)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				var got NeighborsResponse
				// Vertex 5 exists in every snapshot size.
				resp, err := http.Get(ts.URL + "/v1/neighbors?vertex=5&k=8")
				if err != nil {
					errCh <- err
					return
				}
				code := resp.StatusCode
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if code != http.StatusOK {
					errCh <- fmt.Errorf("worker %d: status %d", worker, code)
					return
				}
				if len(got.Neighbors) != 8 {
					errCh <- fmt.Errorf("worker %d: %d neighbors", worker, len(got.Neighbors))
					return
				}
				if got.SnapshotVersion == 0 || got.SnapshotVersion > swaps+1 {
					errCh <- fmt.Errorf("worker %d: version %d", worker, got.SnapshotVersion)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if v := store.Snapshot().Version; v != swaps+1 {
		t.Fatalf("final version %d, want %d", v, swaps+1)
	}
}

func TestIngesterPublishesSnapshots(t *testing.T) {
	// Ring graph: enough structure for the pipeline at tiny scale.
	var arcs []graph.Edge
	const n = 24
	for i := 0; i < n; i++ {
		arcs = append(arcs, graph.Edge{U: uint32(i), V: uint32((i + 1) % n)})
		arcs = append(arcs, graph.Edge{U: uint32(i), V: uint32((i + 2) % n)})
	}
	g, err := graph.FromEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(4)
	cfg.T = 3
	cfg.Seed = 7
	emb, err := dynamic.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	ing := NewIngester(emb, store, IngestConfig{MaxStaleness: 0.5})
	if err := ing.PublishNow(); err != nil {
		t.Fatal(err)
	}
	snap := store.Snapshot()
	if snap == nil || snap.Version != 1 || snap.Index.Rows() != n {
		t.Fatalf("initial snapshot %+v", snap)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- ing.Run(ctx) }()

	// Grow the graph: new vertices n and n+1 attach to the ring.
	batch := []graph.Edge{{U: 0, V: n}, {U: n, V: 1}, {U: 2, V: n + 1}, {U: n + 1, V: 3}}
	if err := ing.Submit(ctx, batch); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)
	for store.Snapshot().Version < 2 {
		select {
		case <-deadline:
			t.Fatal("timed out waiting for ingested snapshot")
		case err := <-runErr:
			t.Fatalf("ingester stopped: %v", err)
		case <-time.After(10 * time.Millisecond):
		}
	}
	snap = store.Snapshot()
	if snap.Index.Rows() != n+2 {
		t.Fatalf("post-ingest snapshot has %d rows, want %d", snap.Index.Rows(), n+2)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v on cancellation", err)
	}
	if ing.Published() < 2 {
		t.Fatalf("published %d snapshots", ing.Published())
	}
}

func TestGracefulShutdown(t *testing.T) {
	ix, err := NewIndex(clusteredEmbedding(10, 4), "")
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	store.Publish(ix, 0)
	srv := New(store)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	ln := newLocalListener(t)
	go func() { errc <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	if code := getJSON(t, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz %d", code)
	}
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestLoadGenerator(t *testing.T) {
	_, ts := newTestServer(t, 50, 8)
	rep, err := RunLoad(context.Background(), ts.URL, LoadConfig{
		Workers:  4,
		Requests: 80,
		Vertices: 50,
		K:        5,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 80 {
		t.Fatalf("issued %d requests", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors", rep.Errors)
	}
	if rep.QPS <= 0 || rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("implausible report %+v", rep)
	}
	if s := rep.String(); !strings.Contains(s, "qps") {
		t.Fatalf("report string %q", s)
	}
	if _, err := RunLoad(context.Background(), ts.URL, LoadConfig{}); err == nil {
		t.Fatal("expected Vertices validation error")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h latencyHist
	for i := 0; i < 90; i++ {
		h.observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(50 * time.Millisecond)
	}
	p50 := h.quantile(0.5)
	if p50 < 64*time.Microsecond || p50 > 256*time.Microsecond {
		t.Fatalf("p50 %v", p50)
	}
	p99 := h.quantile(0.99)
	if p99 < 32*time.Millisecond || p99 > 128*time.Millisecond {
		t.Fatalf("p99 %v", p99)
	}
	if h.quantile(0.5) < h.quantile(0.1) {
		t.Fatal("quantiles not monotone")
	}
	var empty latencyHist
	if empty.quantile(0.5) != 0 || empty.mean() != 0 {
		t.Fatal("empty histogram must report zero")
	}
}

// annTestSnapshot publishes a snapshot carrying an IVF index over the
// standard two-cluster embedding (MinRows 1 forces indexing at test scale).
func annTestSnapshot(t *testing.T, store *Store, n, d int) *Snapshot {
	t.Helper()
	ix, err := NewIndex(clusteredEmbedding(n, d), "float32")
	if err != nil {
		t.Fatal(err)
	}
	ivf, err := BuildANN(ix, ann.Config{Enabled: true, MinRows: 1, NList: 16, NProbe: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ivf == nil {
		t.Fatal("BuildANN returned no index with Enabled and MinRows 1")
	}
	return store.PublishWithANN(ix, ivf, 0)
}

// TestANNServing runs the HTTP query path against an ANN-carrying snapshot:
// results stay within the query's cluster, health reports the index
// geometry, and the metrics show the ANN path answering with a sub-linear
// scan count.
func TestANNServing(t *testing.T) {
	const n, d = 2000, 8
	store := NewStore()
	annTestSnapshot(t, store, n, d)
	srv := New(store)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var got NeighborsResponse
	if code := getJSON(t, ts.URL+"/v1/neighbors?vertex=0&k=5", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(got.Neighbors) != 5 {
		t.Fatalf("%d neighbors", len(got.Neighbors))
	}
	for _, nb := range got.Neighbors {
		if nb.Vertex >= n/2 {
			t.Fatalf("cross-cluster neighbor %d from ANN path", nb.Vertex)
		}
	}
	var batch BatchResponse
	if code := postJSON(t, ts.URL+"/v1/batch", `{"queries":[{"vertex":1,"k":4},{"vertex":1500,"k":4}]}`, &batch); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	for _, nb := range batch.Results[1].Neighbors {
		if nb.Vertex < n/2 {
			t.Fatalf("cross-cluster neighbor %d for second-cluster query", nb.Vertex)
		}
	}

	var h HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz %d", code)
	}
	if !h.ANN || h.ANNNList != 16 || h.ANNNProbe != 8 {
		t.Fatalf("health ANN fields %+v", h)
	}

	if q := srv.Metrics().ANNQueries(); q != 3 {
		t.Fatalf("ANN answered %d of 3 queries", q)
	}
	if s := srv.Metrics().ScannedRows(); s <= 0 || s >= 3*int64(n-1) {
		t.Fatalf("scanned %d rows over 3 ANN queries", s)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"lightne_snapshot_ann 1",
		"lightne_ann_nlist 16",
		"lightne_ann_queries_total 3",
		"lightne_exact_queries_total 0",
		"lightne_scanned_rows_total",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestSearchFallsBackToExact pins the quality floor: when the probe cannot
// produce k results (k larger than the probed lists' population), Search
// answers from the exact scan instead of returning a short list.
func TestSearchFallsBackToExact(t *testing.T) {
	const n = 40
	ix, err := NewIndex(clusteredEmbedding(n, 4), "float32")
	if err != nil {
		t.Fatal(err)
	}
	ivf, err := BuildANN(ix, ann.Config{Enabled: true, MinRows: 1, NList: 8, NProbe: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap := NewStore().PublishWithANN(ix, ivf, 0)
	ids, _, scanned, approx, err := snap.Search(0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 25 {
		t.Fatalf("fallback returned %d results, want 25", len(ids))
	}
	if approx {
		t.Fatal("short probe must be answered by the exact path")
	}
	if scanned != n-1 {
		t.Fatalf("exact fallback scanned %d, want %d", scanned, n-1)
	}
	// A small k the probe can satisfy stays on the ANN path.
	if _, _, _, approx, err := snap.Search(0, 2); err != nil || !approx {
		t.Fatalf("small-k query: approx=%v err=%v", approx, err)
	}
}

// TestBuildANNGates checks the serving-layer gates: disabled configs and
// sub-MinRows snapshots publish without an index.
func TestBuildANNGates(t *testing.T) {
	ix, err := NewIndex(clusteredEmbedding(100, 4), "int8")
	if err != nil {
		t.Fatal(err)
	}
	if ivf, err := BuildANN(ix, ann.Config{}); err != nil || ivf != nil {
		t.Fatalf("disabled: ivf=%v err=%v", ivf, err)
	}
	if ivf, err := BuildANN(ix, ann.Config{Enabled: true}); err != nil || ivf != nil {
		t.Fatalf("below default MinRows: ivf=%v err=%v", ivf, err)
	}
	ivf, err := BuildANN(ix, ann.Config{Enabled: true, MinRows: 1, NList: 4})
	if err != nil || ivf == nil {
		t.Fatalf("forced build: ivf=%v err=%v", ivf, err)
	}
	if ivf.Rows() != 100 {
		t.Fatalf("index rows %d", ivf.Rows())
	}
}

// TestIngesterPublishesANNSnapshots verifies the publish path builds the
// index when configured: every snapshot the ingester lands carries one.
func TestIngesterPublishesANNSnapshots(t *testing.T) {
	var arcs []graph.Edge
	const n = 24
	for i := 0; i < n; i++ {
		arcs = append(arcs, graph.Edge{U: uint32(i), V: uint32((i + 1) % n)})
		arcs = append(arcs, graph.Edge{U: uint32(i), V: uint32((i + 2) % n)})
	}
	g, err := graph.FromEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(4)
	cfg.T = 3
	cfg.Seed = 7
	emb, err := dynamic.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	ing := NewIngester(emb, store, IngestConfig{
		ANN: ann.Config{Enabled: true, MinRows: 1, NList: 4, Seed: 1},
	})
	if err := ing.PublishNow(); err != nil {
		t.Fatal(err)
	}
	snap := store.Snapshot()
	if snap.ANN == nil {
		t.Fatal("published snapshot has no ANN index")
	}
	if snap.ANN.Rows() != snap.Index.Rows() {
		t.Fatalf("index over %d rows, embedding has %d", snap.ANN.Rows(), snap.Index.Rows())
	}
	ids, _, _, _, err := snap.Search(0, 3)
	if err != nil || len(ids) != 3 {
		t.Fatalf("search on ingested snapshot: ids=%v err=%v", ids, err)
	}
}

// TestConcurrentQueriesDuringANNRebuildSwap is the ISSUE's rebuild/swap
// race check: publisher goroutines repeatedly rebuild IVF indexes and swap
// them in (alternating with exact-only snapshots) while query workers
// hammer the HTTP path. Under -race this proves the index build and the
// atomic pair-swap introduce no shared mutable state into the read path.
func TestConcurrentQueriesDuringANNRebuildSwap(t *testing.T) {
	const n, d = 500, 8
	ix, err := NewIndex(clusteredEmbedding(n, d), "float32")
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	store.Publish(ix, 0)
	ts := httptest.NewServer(New(store).Handler())
	defer ts.Close()

	const swaps = 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= swaps; i++ {
			if i%2 == 0 {
				store.Publish(ix, 0) // exact-only generation
				continue
			}
			ivf, err := BuildANN(ix, ann.Config{Enabled: true, MinRows: 1, NList: 8, NProbe: 4, Seed: uint64(i)})
			if err != nil || ivf == nil {
				t.Errorf("rebuild %d: ivf=%v err=%v", i, ivf, err)
				return
			}
			store.PublishWithANN(ix, ivf, 0)
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				var got NeighborsResponse
				resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/neighbors?vertex=%d&k=5", i%n))
				if err != nil {
					errCh <- err
					return
				}
				code := resp.StatusCode
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil || code != http.StatusOK {
					errCh <- fmt.Errorf("worker %d: status %d err %v", worker, code, err)
					return
				}
				if len(got.Neighbors) != 5 {
					errCh <- fmt.Errorf("worker %d: %d neighbors", worker, len(got.Neighbors))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if v := store.Snapshot().Version; v != swaps+1 {
		t.Fatalf("final version %d, want %d", v, swaps+1)
	}
}

// TestRunFrontier drives the recall/qps frontier sweep end to end at test
// scale: exact baseline plus two probe widths, each against a live server.
func TestRunFrontier(t *testing.T) {
	// Gaussian rows spread across all posting lists, so a 2-of-8 probe is
	// genuinely partial (the two-cluster fixture would collapse into two
	// lists and a single probe would scan everything).
	const n, d = 300, 8
	x := dense.NewMatrix(n, d)
	x.FillGaussian(21)
	ix, err := NewIndex(x, "float32")
	if err != nil {
		t.Fatal(err)
	}
	ivf, err := BuildANN(ix, ann.Config{Enabled: true, MinRows: 1, NList: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	points, err := RunFrontier(context.Background(), ix, ivf, []int{2, 8}, LoadConfig{
		Workers:  2,
		Requests: 60,
		K:        5,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points, want 3", len(points))
	}
	exact := points[0]
	if exact.Mode != "exact" || exact.Recall != 1 || exact.ScannedFrac != 1 {
		t.Fatalf("exact baseline %+v", exact)
	}
	for _, pt := range points[1:] {
		if pt.Mode != "ivf" || pt.NProbe == 0 {
			t.Fatalf("ivf point %+v", pt)
		}
		if pt.QPS <= 0 {
			t.Fatalf("point %+v measured no throughput", pt)
		}
		if pt.Recall < 0 || pt.Recall > 1 {
			t.Fatalf("recall %v out of range", pt.Recall)
		}
	}
	// The partial probe is sub-linear; the balanced 8-list build keeps a
	// 2-list probe near a quarter of the rows.
	if frac := points[1].ScannedFrac; frac <= 0 || frac > 0.5 {
		t.Fatalf("nprobe=2 scanned fraction %v", frac)
	}
	// nprobe=8 probes every list here: recall must be perfect (it scans all
	// rows, so its fraction may exceed 1 by the self-row it skips).
	if full := points[2]; full.Recall != 1 {
		t.Fatalf("full-probe recall %v", full.Recall)
	}
	if s := points[1].String(); !strings.Contains(s, "nprobe=2") {
		t.Fatalf("point string %q", s)
	}
	// No ANN index: only the exact baseline.
	points, err = RunFrontier(context.Background(), ix, nil, []int{2}, LoadConfig{
		Workers: 1, Requests: 10, K: 3, Seed: 1,
	})
	if err != nil || len(points) != 1 {
		t.Fatalf("exact-only frontier: %d points, err %v", len(points), err)
	}
}
