package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lightne/internal/core"
	"lightne/internal/dynamic"
	"lightne/internal/faultinject"
	"lightne/internal/graph"
)

const ringN = 24

// newRingIngester builds a dynamic embedder over a small ring graph, wires
// it to a fresh store, and publishes the initial snapshot.
func newRingIngester(t *testing.T, cfg IngestConfig) (*Ingester, *Store) {
	t.Helper()
	var arcs []graph.Edge
	for i := 0; i < ringN; i++ {
		arcs = append(arcs, graph.Edge{U: uint32(i), V: uint32((i + 1) % ringN)})
		arcs = append(arcs, graph.Edge{U: uint32(i), V: uint32((i + 2) % ringN)})
	}
	g, err := graph.FromEdges(ringN, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ecfg := core.DefaultConfig(4)
	ecfg.T = 3
	ecfg.Seed = 7
	emb, err := dynamic.New(g, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	ing := NewIngester(emb, store, cfg)
	if err := ing.PublishNow(); err != nil {
		t.Fatal(err)
	}
	return ing, store
}

// ringBatch returns the j-th test batch: one new edge between existing ring
// vertices, distinct from the ring arcs and from other batches.
func ringBatch(j int) []graph.Edge {
	return []graph.Edge{{U: uint32(j % ringN), V: uint32((j + 7) % ringN)}}
}

// fastBackoff keeps supervised tests quick without changing the logic.
func fastBackoff(cfg IngestConfig) IngestConfig {
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 4 * time.Millisecond
	return cfg
}

// TestIngesterSurvivesTransientFaults: three consecutive injected apply
// failures must be absorbed by the retry loop (refresh + re-apply), and the
// batch still lands and publishes — no restart, no drop, no degradation.
func TestIngesterSurvivesTransientFaults(t *testing.T) {
	inj := faultinject.New()
	inj.FailN(faultinject.IngestApply, 3, nil)
	ing, store := newRingIngester(t, fastBackoff(IngestConfig{Hooks: inj}))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- ing.Run(ctx) }()

	if err := ing.Submit(ctx, ringBatch(0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)
	for store.Snapshot().Version < 2 {
		select {
		case <-deadline:
			t.Fatalf("no snapshot published; status %+v", ing.Status())
		case err := <-runErr:
			t.Fatalf("ingester stopped early: %v", err)
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v", err)
	}
	st := ing.Status()
	if st.State != "running" || ing.Degraded() {
		t.Fatalf("degraded after transient faults: %+v", st)
	}
	if st.Retries < 3 {
		t.Fatalf("retries %d, want >= 3 (one per injected failure)", st.Retries)
	}
	if st.Restarts != 0 || st.BatchesDropped != 0 {
		t.Fatalf("transient faults escalated: %+v", st)
	}
	if st.BatchesApplied < 1 {
		t.Fatalf("batch never applied: %+v", st)
	}
}

// TestIngesterDegradesAfterMaxRestarts: a persistent apply fault exhausts
// the restart budget; the ingester then reports degraded through Status,
// /healthz, and /metrics, Submit fails fast with ErrDegraded — and the last
// published snapshot keeps answering queries.
func TestIngesterDegradesAfterMaxRestarts(t *testing.T) {
	inj := faultinject.New()
	inj.FailAlways(faultinject.IngestApply, nil)
	ing, store := newRingIngester(t, fastBackoff(IngestConfig{
		MaxRetries:  1,
		MaxRestarts: 2,
		Hooks:       inj,
	}))
	srv := New(store, WithIngester(ing))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- ing.Run(ctx) }()

	// Each submitted batch burns one supervisor restart; keep feeding until
	// the budget (2) is exceeded and degraded mode engages.
	deadline := time.After(30 * time.Second)
	for j := 0; !ing.Degraded(); j++ {
		if err := ing.Submit(ctx, ringBatch(j)); errors.Is(err, ErrDegraded) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		select {
		case <-deadline:
			t.Fatalf("never degraded; status %+v", ing.Status())
		case <-time.After(2 * time.Millisecond):
		}
	}
	for !ing.Degraded() {
		time.Sleep(time.Millisecond)
	}
	if err := ing.Submit(ctx, ringBatch(99)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Submit after degradation returned %v, want ErrDegraded", err)
	}

	st := ing.Status()
	if st.State != "degraded" || st.Reason == "" {
		t.Fatalf("status %+v, want degraded with reason", st)
	}
	if st.Restarts != 3 {
		t.Fatalf("restarts %d, want MaxRestarts+1 = 3", st.Restarts)
	}

	// The read path is untouched: last snapshot serves, health says degraded
	// (but stays 200 so load balancers keep routing reads), metrics export
	// the state.
	var h HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz %d, want 200 while degraded", code)
	}
	if h.Status != "degraded" || h.Reason == "" || h.IngestRestarts != 3 {
		t.Fatalf("health %+v", h)
	}
	var nb NeighborsResponse
	if code := getJSON(t, ts.URL+"/v1/neighbors?vertex=3&k=5", &nb); code != http.StatusOK {
		t.Fatalf("query while degraded: %d", code)
	}
	if len(nb.Neighbors) != 5 || nb.SnapshotVersion != 1 {
		t.Fatalf("degraded query response %+v", nb)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"lightne_ingest_degraded 1", "lightne_ingest_restarts_total 3"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v after degradation", err)
	}
}

// TestIngesterDrainsQueueOnCancel: batches accepted by Submit before
// cancellation are applied and published before Run returns — the delivery
// guarantee documented on Submit.
func TestIngesterDrainsQueueOnCancel(t *testing.T) {
	ing, store := newRingIngester(t, IngestConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	const batches = 3
	for j := 0; j < batches; j++ {
		if err := ing.Submit(ctx, ringBatch(j)); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	if err := ing.Run(ctx); err != nil {
		t.Fatalf("Run returned %v", err)
	}
	st := ing.Status()
	if st.BatchesApplied != batches || st.BatchesDropped != 0 {
		t.Fatalf("drain lost batches: %+v", st)
	}
	if store.Snapshot().Version < 2 {
		t.Fatalf("drained batches not published: version %d", store.Snapshot().Version)
	}
}

// TestConcurrentQueriesDuringSupervisorRestarts: while injected faults force
// retries and a supervisor restart, concurrent readers must only ever see
// complete snapshots with monotonically non-decreasing versions.
func TestConcurrentQueriesDuringSupervisorRestarts(t *testing.T) {
	inj := faultinject.New()
	// Batch 1 escalates past its single retry (calls 1-2 fail) and costs a
	// restart; batch 2 recovers after one retry (call 3 fails, call 4 ok).
	inj.FailN(faultinject.IngestApply, 3, nil)
	ing, store := newRingIngester(t, fastBackoff(IngestConfig{
		MaxRetries: 1,
		Hooks:      inj,
	}))
	srv := New(store, WithIngester(ing))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- ing.Run(ctx) }()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	queryErr := make(chan string, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var lastVersion uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				var nb NeighborsResponse
				if code := getJSON(t, ts.URL+"/v1/neighbors?vertex=1&k=4", &nb); code != http.StatusOK {
					select {
					case queryErr <- http.StatusText(code):
					default:
					}
					return
				}
				if nb.SnapshotVersion < lastVersion {
					select {
					case queryErr <- "snapshot version went backwards":
					default:
					}
					return
				}
				lastVersion = nb.SnapshotVersion
				if len(nb.Neighbors) != 4 {
					select {
					case queryErr <- "short neighbor list":
					default:
					}
					return
				}
			}
		}(w)
	}

	for j := 0; j < 2; j++ {
		if err := ing.Submit(ctx, ringBatch(j)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(30 * time.Second)
	for store.Snapshot().Version < 2 {
		select {
		case <-deadline:
			t.Fatalf("no post-restart snapshot; status %+v", ing.Status())
		case err := <-runErr:
			t.Fatalf("ingester stopped: %v", err)
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-queryErr:
		t.Fatalf("reader observed inconsistency during restarts: %s", msg)
	default:
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v", err)
	}
	st := ing.Status()
	if st.Restarts < 1 {
		t.Fatalf("test never exercised a restart: %+v", st)
	}
	if st.State != "running" {
		t.Fatalf("status %+v, want running", st)
	}
}

// TestPanicRecoveryMiddleware: a panicking handler answers 500 and bumps the
// panic counter instead of unwinding into net/http.
func TestPanicRecoveryMiddleware(t *testing.T) {
	store := NewStore()
	srv := New(store)
	h := srv.instrument(epNeighbors, srv.recovered(func(w http.ResponseWriter, r *http.Request) {
		panic("injected handler bug")
	}))
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/v1/neighbors?vertex=0", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "injected handler bug") {
		t.Fatalf("body %q", rec.Body.String())
	}
	if srv.Metrics().Panics() != 1 {
		t.Fatalf("panics counter %d", srv.Metrics().Panics())
	}
	// The next request is unaffected.
	rec = httptest.NewRecorder()
	ok := srv.instrument(epNeighbors, srv.recovered(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	ok(rec, httptest.NewRequest(http.MethodGet, "/v1/neighbors?vertex=0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-panic request code %d", rec.Code)
	}
}

// TestLoadSheddingMiddleware: beyond MaxInFlight concurrent queries, excess
// requests answer 503 with a Retry-After hint; slots free up as requests
// complete.
func TestLoadSheddingMiddleware(t *testing.T) {
	store := NewStore()
	srv := New(store, WithLimits(Limits{MaxInFlight: 1, RetryAfter: 2 * time.Second}))
	release := make(chan struct{})
	started := make(chan struct{})
	h := srv.shedded(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.WriteHeader(http.StatusOK)
	})

	firstDone := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest(http.MethodGet, "/v1/neighbors?vertex=0", nil))
		firstDone <- rec.Code
	}()
	<-started // the single slot is now held

	rec := httptest.NewRecorder()
	srv.shedded(func(w http.ResponseWriter, r *http.Request) {
		t.Error("shed request must not reach the handler")
	})(rec, httptest.NewRequest(http.MethodGet, "/v1/neighbors?vertex=0", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", got)
	}
	if srv.Metrics().Shed() != 1 {
		t.Fatalf("shed counter %d", srv.Metrics().Shed())
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("in-flight request got %d", code)
	}
	// Slot released: the next request is admitted.
	rec = httptest.NewRecorder()
	srv.shedded(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})(rec, httptest.NewRequest(http.MethodGet, "/v1/neighbors?vertex=0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release request got %d", rec.Code)
	}
}

// TestRequestTimeoutMiddleware: WithLimits attaches a deadline to each query
// request's context.
func TestRequestTimeoutMiddleware(t *testing.T) {
	store := NewStore()
	srv := New(store, WithLimits(Limits{RequestTimeout: 250 * time.Millisecond}))
	var hadDeadline bool
	h := srv.shedded(func(w http.ResponseWriter, r *http.Request) {
		_, hadDeadline = r.Context().Deadline()
		w.WriteHeader(http.StatusOK)
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/v1/neighbors?vertex=0", nil))
	if !hadDeadline {
		t.Fatal("request context carried no deadline")
	}
	// Health endpoints bypass shedding and deadlines entirely: even at the
	// concurrency limit a probe must see the server alive.
	srv2 := New(store, WithLimits(Limits{MaxInFlight: 1}))
	srv2.inflight <- struct{}{} // saturate the limiter
	rec = httptest.NewRecorder()
	srv2.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code == http.StatusServiceUnavailable && strings.Contains(rec.Body.String(), "concurrency limit") {
		t.Fatal("healthz was shed")
	}
}

// TestLoadGeneratorRetriesConnectionRefused: a load run racing a server that
// has not bound its listener yet retries refused connections instead of
// counting them as errors.
func TestLoadGeneratorRetriesConnectionRefused(t *testing.T) {
	store, ts := newTestServer(t, 20, 4)
	defer ts.Close()
	// Reserve a port, release it, and only bring a server up there after the
	// load run has already started issuing requests.
	ln := newLocalListener(t)
	addr := ln.Addr().String()
	ln.Close()

	// With retries disabled every request fails fast.
	rep, err := RunLoad(context.Background(), "http://"+addr, LoadConfig{
		Workers:        2,
		Requests:       4,
		Vertices:       20,
		ConnectRetries: -1,
		Timeout:        2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != rep.Requests {
		t.Fatalf("no listener: %d errors of %d requests", rep.Errors, rep.Requests)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bindErr := make(chan error, 1)
	go func() {
		time.Sleep(60 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			bindErr <- err
			return
		}
		bindErr <- nil
		_ = New(store).Serve(ctx, ln2)
	}()
	rep, err = RunLoad(ctx, "http://"+addr, LoadConfig{
		Workers:        2,
		Requests:       10,
		Vertices:       20,
		ConnectRetries: 30,
		Timeout:        5 * time.Second,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-bindErr; err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors despite connect retries: %+v", rep.Errors, rep)
	}
	if rep.Requests != 10 {
		t.Fatalf("issued %d requests", rep.Requests)
	}
}
