package serve

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// Request-hardening middleware. Three concerns, applied from the outside
// in: panic recovery (a handler bug answers 500 and increments a counter
// instead of killing the connection), per-request deadlines (the request
// context carries a deadline so downstream work can stop early), and
// concurrency-limit load shedding (beyond MaxInFlight concurrent requests,
// excess queries answer 503 with Retry-After instead of queueing without
// bound). Health and metrics endpoints are never shed — a load balancer
// probing /healthz during an overload must see the server alive, not 503.

// Limits configures the request-hardening middleware.
type Limits struct {
	// MaxInFlight caps concurrently executing query requests; excess
	// requests are shed with 503 + Retry-After. <= 0 disables shedding.
	MaxInFlight int
	// RequestTimeout attaches a deadline to each query request's context.
	// Brute-force scans already in progress are not preempted (they don't
	// poll the context), but the deadline bounds any downstream waits and
	// lets future pipelined stages stop early. <= 0 disables.
	RequestTimeout time.Duration
	// RetryAfter is the hint attached to shed responses (default 1s).
	RetryAfter time.Duration
}

// recovered wraps h so a panic answers 500 (when headers are still
// unsent) and bumps the panic counter, instead of unwinding into net/http
// and dropping the connection.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panics.Add(1)
				// If the handler already wrote headers this is a no-op
				// (net/http logs the superfluous write); the connection
				// still completes instead of being torn down.
				writeError(w, http.StatusInternalServerError, "internal error: %v", p)
			}
		}()
		h(w, r)
	}
}

// shedded wraps a query handler with the concurrency limiter and the
// per-request deadline. Shed responses bypass the handler entirely.
func (s *Server) shedded(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.metrics.shed.Add(1)
				retry := s.limits.RetryAfter
				if retry <= 0 {
					retry = time.Second
				}
				secs := int(retry / time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeError(w, http.StatusServiceUnavailable, "server at concurrency limit (%d in flight)", s.limits.MaxInFlight)
				return
			}
		}
		if s.limits.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.limits.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}
