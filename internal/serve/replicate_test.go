package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lightne"
	"lightne/internal/dense"
	"lightne/internal/faultinject"
)

// Replication tests: a real leader Server over loopback HTTP, a real
// Replicator tailing it, and faults injected deterministically at the
// replica.* points. Every test in this file runs under `make race`.

// testLeader is a leader Server plus request counters on the shipping
// endpoints, so tests can assert the ETag protocol actually avoids
// re-downloads.
type testLeader struct {
	store        *Store
	shipper      *Shipper
	ts           *httptest.Server
	snapshotHits atomic.Int64
	metaHits     atomic.Int64
}

func newTestLeader(t *testing.T) *testLeader {
	t.Helper()
	l := &testLeader{store: NewStore(), shipper: NewShipper()}
	inner := New(l.store, WithShipper(l.shipper)).Handler()
	l.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/snapshot":
			l.snapshotHits.Add(1)
		case "/v1/snapshot/meta":
			l.metaHits.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(l.ts.Close)
	return l
}

// ship publishes a fresh n×d generation to the leader's store and offers
// its encoded checkpoint payload to followers, returning the matrix.
func (l *testLeader) ship(t *testing.T, n, d int, seed uint64) *dense.Matrix {
	t.Helper()
	x := dense.NewMatrix(n, d)
	x.FillGaussian(seed)
	ix, err := NewIndex(x, "float32")
	if err != nil {
		t.Fatal(err)
	}
	snap := l.store.Publish(ix, 0)
	payload, err := lightne.EncodeCheckpoint(x)
	if err != nil {
		t.Fatal(err)
	}
	l.shipper.Publish(NewShipment(payload, snap.Version, n, d))
	return x
}

// realDecode is the production follower codec: CRC-verified checkpoint
// stream → float32 index.
func realDecode(r io.Reader, size int64) (Index, error) {
	x, err := lightne.ReadCheckpointFrom(r, size)
	if err != nil {
		return nil, err
	}
	return NewIndex(x, "float32")
}

// startReplicator runs rep until the test ends (cleanup cancels and waits,
// so no goroutine outlives its test).
func startReplicator(t *testing.T, rep *Replicator) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = rep.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// newFollower builds a fast-polling replicator over a fresh store.
func newFollower(t *testing.T, leaderURL string, mutate func(*ReplicaConfig)) (*Store, *Replicator) {
	t.Helper()
	store := NewStore()
	cfg := ReplicaConfig{
		Leader:     leaderURL,
		Decode:     realDecode,
		Poll:       2 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		StaleAfter: time.Hour, // tests that exercise staleness shrink this
		Logf:       t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rep, err := NewReplicator(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return store, rep
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// vectorClose asserts the follower serves (bit-faithfully quantized)
// leader data — generation convergence plus payload integrity.
func vectorClose(t *testing.T, ix Index, x *dense.Matrix, v int) {
	t.Helper()
	got := ix.Vector(v)
	want := x.Row(v)
	if len(got) != len(want) {
		t.Fatalf("vector %d has %d dims, want %d", v, len(got), len(want))
	}
	for j := range want {
		if got[j] != float32(want[j]) {
			t.Fatalf("vector %d dim %d = %v, want %v", v, j, got[j], float32(want[j]))
		}
	}
}

// TestReplicatorTailsLeader: a follower converges to each published
// generation, and steady-state polling costs meta requests only — the
// payload downloads exactly once per generation (ETag protocol).
func TestReplicatorTailsLeader(t *testing.T) {
	leader := newTestLeader(t)
	x1 := leader.ship(t, 40, 6, 1)

	store, rep := newFollower(t, leader.ts.URL, nil)
	startReplicator(t, rep)

	waitFor(t, "generation 1", func() bool { return rep.Status().Generation == 1 })
	snap := store.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot after apply")
	}
	vectorClose(t, snap.Index, x1, 3)

	x2 := leader.ship(t, 50, 6, 2)
	waitFor(t, "generation 2", func() bool { return rep.Status().Generation == 2 })
	vectorClose(t, store.Snapshot().Index, x2, 7)
	if rows := store.Snapshot().Index.Rows(); rows != 50 {
		t.Fatalf("follower rows %d, want 50", rows)
	}

	// Let a stretch of unchanged polls pass: meta traffic only.
	downloads := leader.snapshotHits.Load()
	metaBefore := leader.metaHits.Load()
	waitFor(t, "20 more meta polls", func() bool { return leader.metaHits.Load() >= metaBefore+20 })
	if got := leader.snapshotHits.Load(); got != downloads {
		t.Fatalf("unchanged leader caused %d extra snapshot downloads", got-downloads)
	}
	if got := downloads; got != 2 {
		t.Fatalf("snapshot downloaded %d times, want once per generation (2)", got)
	}

	if st := rep.Status(); st.State != "ok" || st.Applied != 2 || st.LastError != "" {
		t.Fatalf("status = %+v, want ok/2 applies/no error", st)
	}
}

// TestReplicatorKilledMidShip: the transfer of a multi-megabyte payload is
// cut partway through (injected read failure — the wire equivalent of a
// follower killed mid-ship). The failed attempt must leave no snapshot
// behind, and the retry loop must converge to the leader's generation with
// intact data.
func TestReplicatorKilledMidShip(t *testing.T) {
	leader := newTestLeader(t)
	// 16384×16 float64 ≈ 2 MB: large enough that the cut (read #2, i.e.
	// after at most one socket buffer) is always strictly mid-stream.
	x := leader.ship(t, 16384, 16, 3)

	inj := faultinject.New()
	inj.FailAt(faultinject.ReplicaFetch, 2, nil)
	store, rep := newFollower(t, leader.ts.URL, func(cfg *ReplicaConfig) { cfg.Hooks = inj })
	startReplicator(t, rep)

	waitFor(t, "recovery to generation 1", func() bool { return rep.Status().Generation == 1 })
	st := rep.Status()
	if st.FetchFailures == 0 {
		t.Fatal("cut transfer not counted as a fetch failure")
	}
	if inj.Calls(faultinject.ReplicaFetch) < 3 {
		t.Fatalf("transfer finished in %d reads; the injected cut never hit mid-stream", inj.Calls(faultinject.ReplicaFetch))
	}
	vectorClose(t, store.Snapshot().Index, x, 12345)
	if got := store.Snapshot().Index.Rows(); got != 16384 {
		t.Fatalf("rows %d, want 16384", got)
	}
}

// TestReplicatorLeaderDownServesStale: when the leader dies, the follower
// keeps answering queries from its last good snapshot indefinitely,
// reports degraded (stale) on /healthz at HTTP 200, and its lag metric
// advances while fetch failures accumulate.
func TestReplicatorLeaderDownServesStale(t *testing.T) {
	leader := newTestLeader(t)
	x := leader.ship(t, 40, 8, 4)

	store, rep := newFollower(t, leader.ts.URL, func(cfg *ReplicaConfig) {
		cfg.StaleAfter = 30 * time.Millisecond
	})
	startReplicator(t, rep)
	waitFor(t, "initial sync", func() bool { return rep.Status().Generation == 1 })

	follower := httptest.NewServer(New(store, WithReplicator(rep)).Handler())
	defer follower.Close()

	leader.ts.Close() // leader gone

	waitFor(t, "degraded state", func() bool { return rep.Status().State == "degraded" })
	st1 := rep.Status()
	if st1.FetchFailures == 0 {
		t.Fatal("no fetch failures recorded against a dead leader")
	}

	// Reads keep working from the stale snapshot.
	var nr NeighborsResponse
	if code := getJSON(t, follower.URL+"/v1/neighbors?vertex=5&k=3", &nr); code != http.StatusOK {
		t.Fatalf("stale follower answered %d, want 200", code)
	}
	if len(nr.Neighbors) != 3 {
		t.Fatalf("got %d neighbors, want 3", len(nr.Neighbors))
	}
	vectorClose(t, store.Snapshot().Index, x, 0)

	// /healthz: degraded (stale) at 200, replica fields populated.
	var h HealthResponse
	if code := getJSON(t, follower.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz answered %d, want 200 (degraded must keep routing reads)", code)
	}
	if h.Status != "degraded (stale)" {
		t.Fatalf("healthz status %q, want \"degraded (stale)\"", h.Status)
	}
	if h.ReplicaGeneration != 1 || h.ReplicaLagSeconds <= 0 {
		t.Fatalf("healthz replica fields = gen %d lag %g", h.ReplicaGeneration, h.ReplicaLagSeconds)
	}
	if !strings.Contains(h.Reason, "leader unreachable") {
		t.Fatalf("healthz reason %q", h.Reason)
	}

	// Lag advances while the leader stays dead, failures accumulate.
	time.Sleep(30 * time.Millisecond)
	st2 := rep.Status()
	if st2.LagSeconds <= st1.LagSeconds {
		t.Fatalf("lag did not advance: %g then %g", st1.LagSeconds, st2.LagSeconds)
	}
	waitFor(t, "more fetch failures", func() bool { return rep.Status().FetchFailures > st1.FetchFailures })

	// /metrics exports the replica gauges.
	resp, err := http.Get(follower.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"lightne_replica_generation 1",
		"lightne_replica_lag_seconds ",
		"lightne_replica_fetch_failures_total ",
		"lightne_replica_degraded 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestReplicatorRejectsCorruptPayload: a shipped payload with a flipped
// bit must fail the CRC check at the follower and be discarded without
// disturbing the live snapshot; a subsequent good generation is applied.
func TestReplicatorRejectsCorruptPayload(t *testing.T) {
	leader := newTestLeader(t)
	x1 := leader.ship(t, 30, 4, 5)

	store, rep := newFollower(t, leader.ts.URL, nil)
	startReplicator(t, rep)
	waitFor(t, "initial sync", func() bool { return rep.Status().Generation == 1 })
	live := store.Snapshot()

	// Generation 2 ships corrupted: one bit flipped mid-payload.
	x2 := dense.NewMatrix(30, 4)
	x2.FillGaussian(6)
	payload, err := lightne.EncodeCheckpoint(x2)
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)/2] ^= 0x10
	leader.shipper.Publish(NewShipment(payload, 2, 30, 4))

	failures := rep.Status().FetchFailures
	waitFor(t, "corrupt payload rejected", func() bool { return rep.Status().FetchFailures > failures })
	// The rejection leaves the last good snapshot live and the generation
	// unmoved — poll a few more times to prove it never slips through.
	time.Sleep(20 * time.Millisecond)
	if st := rep.Status(); st.Generation != 1 {
		t.Fatalf("corrupt payload applied: generation %d", st.Generation)
	}
	if store.Snapshot() != live {
		t.Fatal("live snapshot was replaced by a corrupt payload")
	}
	if st := rep.Status(); !strings.Contains(st.LastError, "checksum mismatch") {
		t.Fatalf("last error %q, want checksum mismatch", st.LastError)
	}
	vectorClose(t, store.Snapshot().Index, x1, 2)

	// A good generation 3 still lands: the loop is not wedged.
	x3 := dense.NewMatrix(30, 4)
	x3.FillGaussian(7)
	ix3, err := NewIndex(x3, "float32")
	if err != nil {
		t.Fatal(err)
	}
	leader.store.Publish(ix3, 0)
	p3, err := lightne.EncodeCheckpoint(x3)
	if err != nil {
		t.Fatal(err)
	}
	leader.shipper.Publish(NewShipment(p3, 3, 30, 4))
	waitFor(t, "generation 3", func() bool { return rep.Status().Generation == 3 })
	vectorClose(t, store.Snapshot().Index, x3, 2)
}

// TestReplicatorShapeMismatchRejected: a payload whose decoded shape
// disagrees with the leader's advertised rows/dims headers is rejected
// (defense against a mis-published shipment).
func TestReplicatorShapeMismatchRejected(t *testing.T) {
	leader := newTestLeader(t)
	x := dense.NewMatrix(20, 4)
	x.FillGaussian(8)
	payload, err := lightne.EncodeCheckpoint(x)
	if err != nil {
		t.Fatal(err)
	}
	// Advertise the wrong shape.
	leader.shipper.Publish(NewShipment(payload, 1, 21, 4))

	store, rep := newFollower(t, leader.ts.URL, nil)
	startReplicator(t, rep)
	waitFor(t, "rejection", func() bool { return rep.Status().FetchFailures > 0 })
	if store.Snapshot() != nil {
		t.Fatal("mismatched shipment was applied")
	}
	if st := rep.Status(); !strings.Contains(st.LastError, "does not match advertised") {
		t.Fatalf("last error %q", st.LastError)
	}
}

// TestReplicatorWarmRestartCatchesUp: a follower restarted from its own
// checkpoint (store pre-published with an old generation) starts serving
// immediately and converges to the leader's current generation.
func TestReplicatorWarmRestartCatchesUp(t *testing.T) {
	leader := newTestLeader(t)
	xNew := leader.ship(t, 25, 4, 10)

	store := NewStore()
	// Simulate the warm restart: an older local snapshot is already live.
	old := dense.NewMatrix(10, 4)
	old.FillGaussian(9)
	ix, err := NewIndex(old, "float32")
	if err != nil {
		t.Fatal(err)
	}
	store.Publish(ix, 0)

	rep, err := NewReplicator(store, ReplicaConfig{
		Leader: leader.ts.URL,
		Decode: realDecode,
		Poll:   2 * time.Millisecond,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	startReplicator(t, rep)
	waitFor(t, "catch-up", func() bool { return rep.Status().Generation == 1 })
	if got := store.Snapshot().Index.Rows(); got != 25 {
		t.Fatalf("rows %d after catch-up, want 25", got)
	}
	vectorClose(t, store.Snapshot().Index, xNew, 11)
}

// TestReplicatorAppliesANNLocally: a follower configured with ANN rebuilds
// the IVF index for each applied generation — the wire carries only the
// embedding.
func TestReplicatorAppliesANNLocally(t *testing.T) {
	leader := newTestLeader(t)
	leader.ship(t, 600, 8, 12)

	store, rep := newFollower(t, leader.ts.URL, func(cfg *ReplicaConfig) {
		cfg.ANN.Enabled = true
		cfg.ANN.MinRows = 100
		cfg.ANN.NList = 8
		cfg.ANN.NProbe = 2
	})
	startReplicator(t, rep)
	waitFor(t, "sync", func() bool { return rep.Status().Generation == 1 })
	snap := store.Snapshot()
	if snap.ANN == nil {
		t.Fatal("follower snapshot has no locally rebuilt ANN index")
	}
	if got := snap.ANN.Rows(); got != 600 {
		t.Fatalf("ANN index over %d rows, want 600", got)
	}
}

// TestSnapshotEndpoints: the leader's shipping endpoints — 404 without a
// shipper, 503 before the first ship, payload + headers after, 304 on a
// matching If-None-Match.
func TestSnapshotEndpoints(t *testing.T) {
	// No shipper: not a leader.
	plain := httptest.NewServer(New(NewStore()).Handler())
	defer plain.Close()
	resp, err := http.Get(plain.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-shipper snapshot: %d, want 404", resp.StatusCode)
	}

	leader := newTestLeader(t)
	resp, err = http.Get(leader.ts.URL + "/v1/snapshot/meta")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-ship meta: %d, want 503", resp.StatusCode)
	}

	x := leader.ship(t, 12, 3, 13)
	var meta SnapshotMeta
	if code := getJSON(t, leader.ts.URL+"/v1/snapshot/meta", &meta); code != http.StatusOK {
		t.Fatalf("meta: %d", code)
	}
	if meta.Generation != 1 || meta.Rows != 12 || meta.Dims != 3 || meta.ETag == "" {
		t.Fatalf("meta = %+v", meta)
	}

	resp, err = http.Get(leader.ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != meta.ETag {
		t.Fatalf("ETag %q, want %q", got, meta.ETag)
	}
	if got := resp.Header.Get(headerGeneration); got != "1" {
		t.Fatalf("generation header %q", got)
	}
	if int64(len(body)) != meta.Bytes {
		t.Fatalf("payload %d bytes, meta says %d", len(body), meta.Bytes)
	}
	// The payload is a decodable checkpoint for exactly the shipped matrix.
	y, err := lightne.ReadCheckpointFrom(strings.NewReader(string(body)), int64(len(body)))
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows != 12 || y.Cols != 3 || y.Data[5] != x.Data[5] {
		t.Fatalf("decoded payload %dx%d", y.Rows, y.Cols)
	}

	// Conditional fetch: unchanged ETag answers 304 with no body.
	req, _ := http.NewRequest(http.MethodGet, leader.ts.URL+"/v1/snapshot", nil)
	req.Header.Set("If-None-Match", meta.ETag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("conditional fetch: %d with %d body bytes, want 304 empty", resp.StatusCode, len(body))
	}
}

// TestReadyzLifecycle: /readyz answers 503 until the first snapshot is
// live, then 200 with the snapshot version — the signal a load balancer
// uses to admit a follower that has completed its first sync.
func TestReadyzLifecycle(t *testing.T) {
	store := NewStore()
	srv := New(store)

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-snapshot readyz: %d, want 503", rec.Code)
	}
	var rr ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "unready" || rr.Reason == "" {
		t.Fatalf("pre-snapshot ready body %+v", rr)
	}

	ix, err := NewIndex(clusteredEmbedding(10, 4), "float32")
	if err != nil {
		t.Fatal(err)
	}
	store.Publish(ix, 0)

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-snapshot readyz: %d, want 200", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "ready" || rr.SnapshotVersion != 1 {
		t.Fatalf("post-snapshot ready body %+v", rr)
	}
}

// TestReadyzNeverShed: even with the concurrency limiter saturated (query
// traffic answering 503), /readyz — like /healthz — bypasses shedding, so
// an overloaded replica is not yanked from rotation by its probe.
func TestReadyzNeverShed(t *testing.T) {
	store := NewStore()
	ix, err := NewIndex(clusteredEmbedding(10, 4), "float32")
	if err != nil {
		t.Fatal(err)
	}
	store.Publish(ix, 0)
	srv := New(store, WithLimits(Limits{MaxInFlight: 1}))
	srv.inflight <- struct{}{} // saturate the limiter

	// The query path is shed…
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/neighbors?vertex=0", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "concurrency limit") {
		t.Fatalf("saturated query path answered %d %q", rec.Code, rec.Body.String())
	}
	// …but readyz, the snapshot endpoints, and metrics all still answer.
	for _, path := range []string{"/readyz", "/metrics"} {
		rec = httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("saturated %s answered %d, want 200", path, rec.Code)
		}
	}
}

// TestShipmentETagIdentifiesPayload: the ETag's checksum half must vary
// with the payload bytes. Regression: hashing the whole v3 payload — which
// ends with its own CRC-32C trailer — yields the fixed CRC residue
// 0x48674bc7 for EVERY payload, so the ETag must reuse the embedded
// trailer instead.
func TestShipmentETagIdentifiesPayload(t *testing.T) {
	payload := func(seed uint64) []byte {
		x := dense.NewMatrix(6, 3)
		x.FillGaussian(seed)
		p, err := lightne.EncodeCheckpoint(x)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := NewShipment(payload(1), 1, 6, 3)
	b := NewShipment(payload(2), 1, 6, 3)
	if a.ETag == b.ETag {
		t.Fatalf("different payloads share ETag %q", a.ETag)
	}
	if strings.HasPrefix(a.ETag, "48674bc7") && strings.HasPrefix(b.ETag, "48674bc7") {
		t.Fatal("ETags carry the constant CRC-32C residue, not a content hash")
	}
	// Same payload, same generation → stable ETag.
	if c := NewShipment(payload(1), 1, 6, 3); c.ETag != a.ETag {
		t.Fatalf("same payload produced ETags %q and %q", a.ETag, c.ETag)
	}
	// Same payload, new generation → ETag moves (the follower must re-fetch
	// to learn the new generation number even if bytes matched).
	if d := NewShipment(payload(1), 2, 6, 3); d.ETag == a.ETag {
		t.Fatal("generation bump did not move the ETag")
	}
}

// TestReplicaBackoff: the failure delay doubles up to the cap, and jitter
// keeps every draw within [d/2, d].
func TestReplicaBackoff(t *testing.T) {
	d := 10 * time.Millisecond
	max := 70 * time.Millisecond
	var seq []time.Duration
	for i := 0; i < 5; i++ {
		d = backoffNext(d, max)
		seq = append(seq, d)
	}
	want := []time.Duration{20, 40, 70, 70, 70}
	for i, w := range want {
		if seq[i] != w*time.Millisecond {
			t.Fatalf("backoff step %d = %s, want %s", i, seq[i], w*time.Millisecond)
		}
	}
	for i := 0; i < 200; i++ {
		j := jitter(40 * time.Millisecond)
		if j < 20*time.Millisecond || j > 40*time.Millisecond {
			t.Fatalf("jitter %s outside [20ms, 40ms]", j)
		}
	}
}
