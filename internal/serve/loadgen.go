package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lightne/internal/ann"
	"lightne/internal/rng"
)

// Closed-loop load generator: each worker is a synchronous client issuing
// the next query as soon as the previous response lands, the standard way
// to measure a server's latency/throughput curve without coordinated
// omission from an open-loop arrival process.

// LoadConfig parameterizes a load run.
type LoadConfig struct {
	// Workers is the number of concurrent closed-loop clients (default 4).
	Workers int
	// Requests is the total request budget across workers (default 1000).
	Requests int
	// Vertices is the vertex ID space queries draw from uniformly
	// (required, > 0).
	Vertices int
	// K is the neighbor count per query (default DefaultK).
	K int
	// Seed makes the query stream reproducible.
	Seed uint64
	// Timeout bounds each individual request (default 30s; negative
	// disables). The old hard-coded 30s made short-deadline runs against a
	// stalled server impossible to bound.
	Timeout time.Duration
	// ConnectRetries is how many times a connection-refused failure retries
	// (brief backoff between attempts) before counting as an error. Covers
	// racing a server that has not finished binding its listener — the
	// normal state when a load run starts alongside the server under test.
	// Default 3; negative disables.
	ConnectRetries int
}

// LoadReport summarizes a load run.
type LoadReport struct {
	Requests int
	Errors   int // non-200 responses and transport failures
	Elapsed  time.Duration
	QPS      float64
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
}

func (r LoadReport) String() string {
	return fmt.Sprintf("%d requests (%d errors) in %v: %.0f qps, p50 %v, p95 %v, p99 %v, max %v",
		r.Requests, r.Errors, r.Elapsed.Round(time.Millisecond), r.QPS,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
}

// RunLoad drives baseURL's /v1/neighbors endpoint until the request budget
// is spent or ctx is canceled, and reports exact (sample-based, not
// bucketed) latency percentiles.
func RunLoad(ctx context.Context, baseURL string, cfg LoadConfig) (LoadReport, error) {
	if cfg.Vertices <= 0 {
		return LoadReport{}, fmt.Errorf("serve: LoadConfig.Vertices must be positive")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	requests := cfg.Requests
	if requests <= 0 {
		requests = 1000
	}
	k := cfg.K
	if k <= 0 {
		k = DefaultK
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	} else if timeout < 0 {
		timeout = 0
	}
	connRetries := cfg.ConnectRetries
	if connRetries == 0 {
		connRetries = 3
	} else if connRetries < 0 {
		connRetries = 0
	}
	client := &http.Client{Timeout: timeout}
	var remaining atomic.Int64
	remaining.Store(int64(requests))
	var issued, errs atomic.Int64
	latencies := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			src := rng.New(cfg.Seed, uint64(worker))
			local := make([]time.Duration, 0, requests/workers+1)
			for remaining.Add(-1) >= 0 && ctx.Err() == nil {
				v := src.Intn(cfg.Vertices)
				url := fmt.Sprintf("%s/v1/neighbors?vertex=%d&k=%d", baseURL, v, k)
				issued.Add(1)
				t0 := time.Now()
				resp, err := client.Get(url)
				for attempt := 0; err != nil && attempt < connRetries && errors.Is(err, syscall.ECONNREFUSED) && ctx.Err() == nil; attempt++ {
					time.Sleep(time.Duration(attempt+1) * 20 * time.Millisecond)
					resp, err = client.Get(url)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				local = append(local, time.Since(t0))
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
				}
			}
			latencies[worker] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := LoadReport{
		Requests: int(issued.Load()),
		Errors:   int(errs.Load()),
		Elapsed:  elapsed,
	}
	if elapsed > 0 {
		rep.QPS = float64(len(all)) / elapsed.Seconds()
	}
	if len(all) > 0 {
		rep.P50 = percentile(all, 0.50)
		rep.P95 = percentile(all, 0.95)
		rep.P99 = percentile(all, 0.99)
		rep.Max = all[len(all)-1]
	}
	return rep, nil
}

// percentile reads the q-th percentile from sorted samples (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// FrontierPoint is one measured point on the recall/throughput frontier:
// an exact-scan baseline or one IVF probe width, with its end-to-end HTTP
// load numbers and its recall against the exact scan.
type FrontierPoint struct {
	Mode        string  `json:"mode"` // "exact" or "ivf"
	NProbe      int     `json:"nprobe,omitempty"`
	Recall      float64 `json:"recall_at_k"`
	ScannedFrac float64 `json:"scanned_frac"` // distance computations / (rows-1)
	QPS         float64 `json:"qps"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
}

func (p FrontierPoint) String() string {
	label := p.Mode
	if p.Mode == "ivf" {
		label = fmt.Sprintf("ivf nprobe=%d", p.NProbe)
	}
	return fmt.Sprintf("%-14s recall %.3f, scan %4.1f%%, %6.0f qps, p50 %5.0fus, p99 %5.0fus",
		label, p.Recall, 100*p.ScannedFrac, p.QPS, p.P50Micros, p.P99Micros)
}

// frontierSamples is the seeded query-sample size used for recall and
// scanned-fraction measurement at each frontier point.
const frontierSamples = 64

// RunFrontier measures the recall/qps frontier of serving ix: the exact
// scan first, then the IVF index at each probe width in probes. Each point
// publishes its own snapshot (the index re-probed via WithNProbe, the same
// build throughout), stands up a real HTTP server on a loopback listener,
// drives it with RunLoad, and pairs the load numbers with recall@K against
// the exact scan on a seeded vertex sample. ivf nil (or empty probes)
// measures only the exact baseline.
func RunFrontier(ctx context.Context, ix Index, ivf *ann.Index, probes []int, cfg LoadConfig) ([]FrontierPoint, error) {
	if cfg.Vertices <= 0 {
		cfg.Vertices = ix.Rows()
	}
	k := cfg.K
	if k <= 0 {
		k = DefaultK
	}
	type variant struct {
		mode   string
		nprobe int
		index  *ann.Index
	}
	variants := []variant{{mode: "exact"}}
	if ivf != nil {
		for _, p := range probes {
			variants = append(variants, variant{mode: "ivf", nprobe: p, index: ivf.WithNProbe(p)})
		}
	}
	points := make([]FrontierPoint, 0, len(variants))
	for _, vr := range variants {
		store := NewStore()
		snap := store.PublishWithANN(ix, vr.index, 0)

		// Recall + scanned fraction on a seeded sample, measured directly on
		// the snapshot (the load run below measures the HTTP path; mixing the
		// two would let transport noise into the recall numbers).
		src := rng.New(cfg.Seed, 0x5a3b1e)
		var hits, want, scanned int
		for i := 0; i < frontierSamples; i++ {
			q := src.Intn(ix.Rows())
			exactIDs, _, err := ix.TopK(q, k)
			if err != nil {
				return nil, err
			}
			ids, _, sc, _, err := snap.Search(q, k)
			if err != nil {
				return nil, err
			}
			scanned += sc
			truth := make(map[int]bool, len(exactIDs))
			for _, id := range exactIDs {
				truth[id] = true
			}
			want += len(exactIDs)
			for _, id := range ids {
				if truth[id] {
					hits++
				}
			}
		}

		rep, err := loadAgainstSnapshot(ctx, store, cfg)
		if err != nil {
			return nil, err
		}
		pt := FrontierPoint{
			Mode:        vr.mode,
			NProbe:      vr.nprobe,
			ScannedFrac: float64(scanned) / float64(frontierSamples*(ix.Rows()-1)),
			QPS:         rep.QPS,
			P50Micros:   float64(rep.P50.Microseconds()),
			P99Micros:   float64(rep.P99.Microseconds()),
		}
		if want > 0 {
			pt.Recall = float64(hits) / float64(want)
		}
		points = append(points, pt)
	}
	return points, nil
}

// loadAgainstSnapshot stands up a Server over store on an ephemeral
// loopback listener, runs one load pass against it, and tears it down.
func loadAgainstSnapshot(ctx context.Context, store *Store, cfg LoadConfig) (LoadReport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return LoadReport{}, err
	}
	srvCtx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- New(store).Serve(srvCtx, ln) }()
	rep, loadErr := RunLoad(ctx, "http://"+ln.Addr().String(), cfg)
	cancel()
	if err := <-done; loadErr == nil && err != nil {
		return rep, err
	}
	return rep, loadErr
}
