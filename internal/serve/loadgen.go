package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lightne/internal/rng"
)

// Closed-loop load generator: each worker is a synchronous client issuing
// the next query as soon as the previous response lands, the standard way
// to measure a server's latency/throughput curve without coordinated
// omission from an open-loop arrival process.

// LoadConfig parameterizes a load run.
type LoadConfig struct {
	// Workers is the number of concurrent closed-loop clients (default 4).
	Workers int
	// Requests is the total request budget across workers (default 1000).
	Requests int
	// Vertices is the vertex ID space queries draw from uniformly
	// (required, > 0).
	Vertices int
	// K is the neighbor count per query (default DefaultK).
	K int
	// Seed makes the query stream reproducible.
	Seed uint64
}

// LoadReport summarizes a load run.
type LoadReport struct {
	Requests int
	Errors   int // non-200 responses and transport failures
	Elapsed  time.Duration
	QPS      float64
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
}

func (r LoadReport) String() string {
	return fmt.Sprintf("%d requests (%d errors) in %v: %.0f qps, p50 %v, p95 %v, p99 %v, max %v",
		r.Requests, r.Errors, r.Elapsed.Round(time.Millisecond), r.QPS,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
}

// RunLoad drives baseURL's /v1/neighbors endpoint until the request budget
// is spent or ctx is canceled, and reports exact (sample-based, not
// bucketed) latency percentiles.
func RunLoad(ctx context.Context, baseURL string, cfg LoadConfig) (LoadReport, error) {
	if cfg.Vertices <= 0 {
		return LoadReport{}, fmt.Errorf("serve: LoadConfig.Vertices must be positive")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	requests := cfg.Requests
	if requests <= 0 {
		requests = 1000
	}
	k := cfg.K
	if k <= 0 {
		k = DefaultK
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var remaining atomic.Int64
	remaining.Store(int64(requests))
	var issued, errs atomic.Int64
	latencies := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			src := rng.New(cfg.Seed, uint64(worker))
			local := make([]time.Duration, 0, requests/workers+1)
			for remaining.Add(-1) >= 0 && ctx.Err() == nil {
				v := src.Intn(cfg.Vertices)
				url := fmt.Sprintf("%s/v1/neighbors?vertex=%d&k=%d", baseURL, v, k)
				issued.Add(1)
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					errs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				local = append(local, time.Since(t0))
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
				}
			}
			latencies[worker] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := LoadReport{
		Requests: int(issued.Load()),
		Errors:   int(errs.Load()),
		Elapsed:  elapsed,
	}
	if elapsed > 0 {
		rep.QPS = float64(len(all)) / elapsed.Seconds()
	}
	if len(all) > 0 {
		rep.P50 = percentile(all, 0.50)
		rep.P95 = percentile(all, 0.95)
		rep.P99 = percentile(all, 0.99)
		rep.Max = all[len(all)-1]
	}
	return rep, nil
}

// percentile reads the q-th percentile from sorted samples (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
