package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lightne/internal/rng"
)

// Closed-loop load generator: each worker is a synchronous client issuing
// the next query as soon as the previous response lands, the standard way
// to measure a server's latency/throughput curve without coordinated
// omission from an open-loop arrival process.

// LoadConfig parameterizes a load run.
type LoadConfig struct {
	// Workers is the number of concurrent closed-loop clients (default 4).
	Workers int
	// Requests is the total request budget across workers (default 1000).
	Requests int
	// Vertices is the vertex ID space queries draw from uniformly
	// (required, > 0).
	Vertices int
	// K is the neighbor count per query (default DefaultK).
	K int
	// Seed makes the query stream reproducible.
	Seed uint64
	// Timeout bounds each individual request (default 30s; negative
	// disables). The old hard-coded 30s made short-deadline runs against a
	// stalled server impossible to bound.
	Timeout time.Duration
	// ConnectRetries is how many times a connection-refused failure retries
	// (brief backoff between attempts) before counting as an error. Covers
	// racing a server that has not finished binding its listener — the
	// normal state when a load run starts alongside the server under test.
	// Default 3; negative disables.
	ConnectRetries int
}

// LoadReport summarizes a load run.
type LoadReport struct {
	Requests int
	Errors   int // non-200 responses and transport failures
	Elapsed  time.Duration
	QPS      float64
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
}

func (r LoadReport) String() string {
	return fmt.Sprintf("%d requests (%d errors) in %v: %.0f qps, p50 %v, p95 %v, p99 %v, max %v",
		r.Requests, r.Errors, r.Elapsed.Round(time.Millisecond), r.QPS,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
}

// RunLoad drives baseURL's /v1/neighbors endpoint until the request budget
// is spent or ctx is canceled, and reports exact (sample-based, not
// bucketed) latency percentiles.
func RunLoad(ctx context.Context, baseURL string, cfg LoadConfig) (LoadReport, error) {
	if cfg.Vertices <= 0 {
		return LoadReport{}, fmt.Errorf("serve: LoadConfig.Vertices must be positive")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	requests := cfg.Requests
	if requests <= 0 {
		requests = 1000
	}
	k := cfg.K
	if k <= 0 {
		k = DefaultK
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	} else if timeout < 0 {
		timeout = 0
	}
	connRetries := cfg.ConnectRetries
	if connRetries == 0 {
		connRetries = 3
	} else if connRetries < 0 {
		connRetries = 0
	}
	client := &http.Client{Timeout: timeout}
	var remaining atomic.Int64
	remaining.Store(int64(requests))
	var issued, errs atomic.Int64
	latencies := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			src := rng.New(cfg.Seed, uint64(worker))
			local := make([]time.Duration, 0, requests/workers+1)
			for remaining.Add(-1) >= 0 && ctx.Err() == nil {
				v := src.Intn(cfg.Vertices)
				url := fmt.Sprintf("%s/v1/neighbors?vertex=%d&k=%d", baseURL, v, k)
				issued.Add(1)
				t0 := time.Now()
				resp, err := client.Get(url)
				for attempt := 0; err != nil && attempt < connRetries && errors.Is(err, syscall.ECONNREFUSED) && ctx.Err() == nil; attempt++ {
					time.Sleep(time.Duration(attempt+1) * 20 * time.Millisecond)
					resp, err = client.Get(url)
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				local = append(local, time.Since(t0))
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
				}
			}
			latencies[worker] = local
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := LoadReport{
		Requests: int(issued.Load()),
		Errors:   int(errs.Load()),
		Elapsed:  elapsed,
	}
	if elapsed > 0 {
		rep.QPS = float64(len(all)) / elapsed.Seconds()
	}
	if len(all) > 0 {
		rep.P50 = percentile(all, 0.50)
		rep.P95 = percentile(all, 0.95)
		rep.P99 = percentile(all, 0.99)
		rep.Max = all[len(all)-1]
	}
	return rep, nil
}

// percentile reads the q-th percentile from sorted samples (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
