package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lightne/internal/ann"
	"lightne/internal/faultinject"
)

// Follower replication: a Replicator tails a leader's published snapshots
// and keeps a local Store hot-swapped to the latest generation, so a fleet
// of read replicas serves the leader's embedding without sharing any
// state but an HTTP URL.
//
// The loop is poll-based and pull-only: every Poll interval the follower
// GETs /v1/snapshot/meta (cheap JSON); when the ETag moves it GETs
// /v1/snapshot, validates the payload (the decoder checks the CRC-32C
// trailer and bounds the declared shape by the Content-Length before
// allocating), rebuilds the ANN index locally, and publishes through the
// same atomic Store path every other publisher uses — queries in flight
// keep reading the previous snapshot until the swap, exactly as with a
// local hot-swap.
//
// Failure philosophy: a replica exists to keep answering reads, so no
// leader failure is ever allowed to take the follower's snapshot away.
// Fetch errors are retried with capped exponential backoff + jitter; a
// payload that fails validation is discarded without touching the live
// snapshot; and when the leader stays unreachable past StaleAfter the
// follower enters a *degraded (stale)* state — still serving its last
// good generation, reporting the staleness on /healthz and exporting lag
// metrics so operators (and the consistent-hash router the roadmap plans)
// can see exactly how far behind each replica is.
type Replicator struct {
	store  *Store
	cfg    ReplicaConfig
	client *http.Client
	hooks  faultinject.Hooks

	start         time.Time
	generation    atomic.Uint64 // last applied leader generation
	lastContact   atomic.Int64  // unix nanos of the last successful leader exchange
	fetchFailures atomic.Int64
	applied       atomic.Int64

	mu       sync.Mutex
	lastETag string
	lastErr  string
}

// Replication defaults.
const (
	DefaultReplicaPoll       = 2 * time.Second
	DefaultReplicaBackoffMax = 30 * time.Second
	DefaultFetchTimeout      = 30 * time.Second
	DefaultStaleAfter        = 30 * time.Second
)

// ReplicaConfig tunes a follower.
type ReplicaConfig struct {
	// Leader is the leader's base URL (e.g. "http://10.0.0.1:7475").
	Leader string
	// Decode turns a fetched payload into a servable Index. size is the
	// transfer's Content-Length (-1 when unknown) so the decoder can bound
	// allocations; the decoder owns integrity validation (for the standard
	// wire format: lightne.ReadCheckpointFrom, which verifies the CRC-32C
	// trailer, then NewIndex). Required.
	Decode func(r io.Reader, size int64) (Index, error)
	// Poll is the steady-state meta poll interval (default 2s).
	Poll time.Duration
	// BackoffMax caps the exponential failure backoff (default 30s). The
	// backoff starts at Poll, doubles per consecutive failure, and is
	// jittered to [d/2, d] so a follower fleet doesn't stampede a
	// recovering leader.
	BackoffMax time.Duration
	// FetchTimeout is the per-request deadline for both the meta poll and
	// the payload download (default 30s).
	FetchTimeout time.Duration
	// StaleAfter is how long the leader may be unreachable before the
	// follower reports itself degraded/stale (default 30s). Serving is
	// unaffected — degraded means "answers may be stale", not "down".
	StaleAfter time.Duration
	// ANN configures the locally rebuilt IVF index for each applied
	// snapshot (the wire carries only the embedding: replicas may run
	// different nlist/nprobe trade-offs than their leader).
	ANN ann.Config
	// OnApply, when non-nil, runs after each successful hot-swap with the
	// raw shipped payload — the hook lightne-serve uses to persist the
	// bytes as its own warm-restart checkpoint and to re-ship them to
	// downstream followers.
	OnApply func(generation uint64, payload []byte, rows, dims int)
	// Hooks injects faults for testing (nil = none). Fired at
	// faultinject.ReplicaMeta / ReplicaFetch / ReplicaApply.
	Hooks faultinject.Hooks
	// Client overrides the HTTP client (default: a plain client;
	// per-request deadlines come from FetchTimeout contexts).
	Client *http.Client
	// Logf, when non-nil, receives progress and failure lines.
	Logf func(format string, args ...any)
}

// NewReplicator builds a follower over store. Call Run in a goroutine.
func NewReplicator(store *Store, cfg ReplicaConfig) (*Replicator, error) {
	if cfg.Leader == "" {
		return nil, errors.New("serve: replica needs a leader URL")
	}
	if cfg.Decode == nil {
		return nil, errors.New("serve: replica needs a Decode function")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultReplicaPoll
	}
	if cfg.BackoffMax < cfg.Poll {
		cfg.BackoffMax = DefaultReplicaBackoffMax
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = DefaultFetchTimeout
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = DefaultStaleAfter
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Replicator{
		store:  store,
		cfg:    cfg,
		client: client,
		hooks:  faultinject.OrNop(cfg.Hooks),
		start:  time.Now(),
	}, nil
}

// ReplicaStatus is a point-in-time view of replication health.
type ReplicaStatus struct {
	// State is "syncing" (no successful leader contact yet), "ok", or
	// "degraded" (no contact for longer than StaleAfter; the last good
	// snapshot is still served).
	State string
	// Generation is the last applied leader generation (0 before the
	// first apply).
	Generation uint64
	// LagSeconds is the time since the last successful leader exchange
	// (since Run started, before the first one).
	LagSeconds float64
	// FetchFailures counts failed meta polls, downloads, and rejected
	// payloads.
	FetchFailures int64
	// Applied counts snapshots hot-swapped live.
	Applied int64
	// LastError is the most recent failure ("" if none).
	LastError string
}

// Status reports the current replication health. Safe for concurrent use
// with Run.
func (r *Replicator) Status() ReplicaStatus {
	st := ReplicaStatus{
		Generation:    r.generation.Load(),
		FetchFailures: r.fetchFailures.Load(),
		Applied:       r.applied.Load(),
	}
	last := r.lastContact.Load()
	contacted := last != 0
	if !contacted {
		last = r.start.UnixNano()
	}
	st.LagSeconds = time.Since(time.Unix(0, last)).Seconds()
	switch {
	case st.LagSeconds > r.cfg.StaleAfter.Seconds():
		st.State = "degraded"
	case contacted:
		st.State = "ok"
	default:
		st.State = "syncing"
	}
	r.mu.Lock()
	st.LastError = r.lastErr
	r.mu.Unlock()
	return st
}

// Run tails the leader until ctx is canceled (its only return reason; the
// loop survives every fetch failure by design). Typical wiring:
//
//	rep, _ := NewReplicator(store, cfg)
//	go rep.Run(ctx)
//	srv := New(store, WithReplicator(rep))
func (r *Replicator) Run(ctx context.Context) error {
	delay := r.cfg.Poll
	for {
		err := r.syncOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			r.fetchFailures.Add(1)
			r.setErr(err)
			sleepFor := jitter(delay)
			r.logf("replica: %v (next attempt in %s)", err, sleepFor.Round(time.Millisecond))
			if sleep(ctx, sleepFor) != nil {
				return ctx.Err()
			}
			delay = backoffNext(delay, r.cfg.BackoffMax)
			continue
		}
		delay = r.cfg.Poll
		if sleep(ctx, delay) != nil {
			return ctx.Err()
		}
	}
}

// syncOnce performs one meta poll and, when the leader offers a new
// generation, one fetch + validate + hot-swap.
func (r *Replicator) syncOnce(ctx context.Context) error {
	meta, err := r.fetchMeta(ctx)
	if err != nil {
		return err
	}
	r.touch()
	r.mu.Lock()
	seen := r.lastETag
	r.mu.Unlock()
	if meta.ETag == seen {
		return nil // leader unchanged; the poll itself refreshed the lag clock
	}
	gen, payload, rows, dims, err := r.fetchSnapshot(ctx)
	if err != nil {
		return err
	}
	if err := r.hooks.Fire(faultinject.ReplicaApply); err != nil {
		return fmt.Errorf("applying generation %d: %w", gen, err)
	}
	ix, err := r.cfg.Decode(bytes.NewReader(payload), int64(len(payload)))
	if err != nil {
		return fmt.Errorf("rejecting shipped generation %d: %w", gen, err)
	}
	if ix.Rows() <= 0 || ix.Dims() <= 0 {
		return fmt.Errorf("rejecting shipped generation %d: empty index (%dx%d)", gen, ix.Rows(), ix.Dims())
	}
	if rows >= 0 && (ix.Rows() != rows || ix.Dims() != dims) {
		return fmt.Errorf("rejecting shipped generation %d: decoded shape %dx%d does not match advertised %dx%d", gen, ix.Rows(), ix.Dims(), rows, dims)
	}
	ivf, err := BuildANN(ix, r.cfg.ANN)
	if err != nil {
		r.logf("replica: ANN rebuild failed for generation %d, serving exact scans: %v", gen, err)
		ivf = nil
	}
	r.store.PublishWithANN(ix, ivf, 0)
	r.generation.Store(gen)
	r.applied.Add(1)
	r.mu.Lock()
	r.lastETag = meta.ETag
	r.lastErr = ""
	r.mu.Unlock()
	r.touch()
	r.logf("replica: applied leader generation %d (%dx%d, %d bytes)", gen, ix.Rows(), ix.Dims(), len(payload))
	if r.cfg.OnApply != nil {
		r.cfg.OnApply(gen, payload, ix.Rows(), ix.Dims())
	}
	return nil
}

// fetchMeta polls /v1/snapshot/meta with the configured deadline.
func (r *Replicator) fetchMeta(ctx context.Context) (SnapshotMeta, error) {
	var meta SnapshotMeta
	if err := r.hooks.Fire(faultinject.ReplicaMeta); err != nil {
		return meta, fmt.Errorf("polling leader meta: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, r.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.Leader+"/v1/snapshot/meta", nil)
	if err != nil {
		return meta, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return meta, fmt.Errorf("polling leader meta: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return meta, fmt.Errorf("leader meta: %s", resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&meta); err != nil {
		return meta, fmt.Errorf("decoding leader meta: %w", err)
	}
	return meta, nil
}

// fetchSnapshot downloads the current shipment. Every body read fires the
// ReplicaFetch hook, so tests can cut the transfer at an exact byte-stream
// position; the advertised rows/dims come back for cross-checking the
// decode ((-1,-1) when the leader predates the headers).
func (r *Replicator) fetchSnapshot(ctx context.Context) (gen uint64, payload []byte, rows, dims int, err error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.Leader+"/v1/snapshot", nil)
	if err != nil {
		return 0, nil, 0, 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, 0, 0, fmt.Errorf("fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		return 0, nil, 0, 0, fmt.Errorf("fetching snapshot: %s", resp.Status)
	}
	gen, err = strconv.ParseUint(resp.Header.Get(headerGeneration), 10, 64)
	if err != nil {
		return 0, nil, 0, 0, fmt.Errorf("fetching snapshot: bad %s header %q", headerGeneration, resp.Header.Get(headerGeneration))
	}
	rows, dims = -1, -1
	if v := resp.Header.Get(headerRows); v != "" {
		if rows, err = strconv.Atoi(v); err != nil {
			return 0, nil, 0, 0, fmt.Errorf("fetching snapshot: bad %s header %q", headerRows, v)
		}
	}
	if v := resp.Header.Get(headerDims); v != "" {
		if dims, err = strconv.Atoi(v); err != nil {
			return 0, nil, 0, 0, fmt.Errorf("fetching snapshot: bad %s header %q", headerDims, v)
		}
	}
	body := hookedReader{r: resp.Body, hooks: r.hooks}
	payload, err = readAllSized(body, resp.ContentLength)
	if err != nil {
		return 0, nil, 0, 0, fmt.Errorf("downloading generation %d: %w", gen, err)
	}
	return gen, payload, rows, dims, nil
}

func (r *Replicator) touch() { r.lastContact.Store(time.Now().UnixNano()) }

func (r *Replicator) setErr(err error) {
	r.mu.Lock()
	r.lastErr = err.Error()
	r.mu.Unlock()
}

func (r *Replicator) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// backoffNext doubles the failure delay up to max.
func backoffNext(d, max time.Duration) time.Duration {
	d *= 2
	if d > max {
		d = max
	}
	return d
}

// jitter spreads a delay uniformly over [d/2, d] so follower fleets
// desynchronize instead of stampeding a recovering leader.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// hookedReader fires the ReplicaFetch point before every Read — the seam
// that lets tests abort a transfer after an exact number of reads.
type hookedReader struct {
	r     io.Reader
	hooks faultinject.Hooks
}

func (h hookedReader) Read(p []byte) (int, error) {
	if err := h.hooks.Fire(faultinject.ReplicaFetch); err != nil {
		return 0, err
	}
	return h.r.Read(p)
}

// readAllSized is io.ReadAll with the buffer pre-grown to the declared
// Content-Length when it is known and sane, avoiding regrow copies on
// multi-megabyte payloads without trusting an absurd header.
func readAllSized(r io.Reader, size int64) ([]byte, error) {
	if size <= 0 || size >= 1<<31 {
		return io.ReadAll(r)
	}
	buf := bytes.NewBuffer(make([]byte, 0, size))
	_, err := io.Copy(buf, r)
	return buf.Bytes(), err
}
