package serve

import (
	"context"
	"fmt"
	"sync/atomic"

	"lightne/internal/dynamic"
	"lightne/internal/graph"
)

// Ingester connects the dynamic-update layer to the serving layer: edge
// batches are submitted from the write path, sampled incrementally by a
// dynamic.Embedder (cost proportional to the batch, not the graph), and
// each re-embedding is published to the Store as a fresh immutable
// snapshot. Queries never block on ingestion — they keep reading the
// previous snapshot until the atomic swap.
type Ingester struct {
	emb       *dynamic.Embedder
	store     *Store
	cfg       IngestConfig
	batches   chan []graph.Edge
	published atomic.Int64
}

// IngestConfig tunes the background ingestion loop.
type IngestConfig struct {
	// Precision of published indexes ("float32" or "int8"; "" = float32).
	Precision string
	// MaxStaleness triggers a full resample (Embedder.Refresh) when the
	// embedder's staleness ratio exceeds it after a batch. 0 disables
	// automatic refresh.
	MaxStaleness float64
	// QueueSize bounds the submit channel (default 16). Submit blocks when
	// the queue is full, applying back-pressure to the write path.
	QueueSize int
}

// NewIngester wires an embedder to a store. Call Run in a goroutine, then
// Submit edge batches; PublishNow publishes the embedder's current state
// immediately (typically once at startup).
func NewIngester(emb *dynamic.Embedder, store *Store, cfg IngestConfig) *Ingester {
	qs := cfg.QueueSize
	if qs <= 0 {
		qs = 16
	}
	return &Ingester{
		emb:     emb,
		store:   store,
		cfg:     cfg,
		batches: make(chan []graph.Edge, qs),
	}
}

// Submit queues an edge batch for ingestion, blocking when the queue is
// full (back-pressure) or returning ctx's error when canceled first.
func (in *Ingester) Submit(ctx context.Context, batch []graph.Edge) error {
	select {
	case in.batches <- batch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Published reports how many snapshots the ingester has published.
func (in *Ingester) Published() int64 { return in.published.Load() }

// PublishNow embeds the current graph state and publishes it.
func (in *Ingester) PublishNow() error {
	x, err := in.emb.Embed()
	if err != nil {
		return fmt.Errorf("serve: embedding for publish: %w", err)
	}
	ix, err := NewIndex(x, in.cfg.Precision)
	if err != nil {
		return err
	}
	in.store.Publish(ix, in.emb.Staleness())
	in.published.Add(1)
	return nil
}

// Run consumes submitted batches until ctx is canceled. Each iteration
// drains every batch already queued (coalescing bursts into one
// re-embedding), applies them to the embedder, resamples fully when the
// staleness bound is exceeded, and publishes the refreshed snapshot.
// Returns nil on cancellation, or the first ingestion error (the embedder
// may be inconsistent after an error, so the loop stops).
func (in *Ingester) Run(ctx context.Context) error {
	for {
		var batch []graph.Edge
		select {
		case <-ctx.Done():
			return nil
		case batch = <-in.batches:
		}
		if err := in.emb.AddEdges(batch); err != nil {
			return fmt.Errorf("serve: applying batch: %w", err)
		}
		// Coalesce: a burst of submissions becomes one factorization.
	drain:
		for {
			select {
			case more := <-in.batches:
				if err := in.emb.AddEdges(more); err != nil {
					return fmt.Errorf("serve: applying batch: %w", err)
				}
			default:
				break drain
			}
		}
		if in.cfg.MaxStaleness > 0 && in.emb.Staleness() > in.cfg.MaxStaleness {
			if err := in.emb.Refresh(); err != nil {
				return fmt.Errorf("serve: staleness refresh: %w", err)
			}
		}
		if err := in.PublishNow(); err != nil {
			return err
		}
	}
}
