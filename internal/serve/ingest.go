package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lightne/internal/ann"
	"lightne/internal/dynamic"
	"lightne/internal/faultinject"
	"lightne/internal/graph"
)

// Ingester connects the dynamic-update layer to the serving layer: edge
// batches are submitted from the write path, sampled incrementally by a
// dynamic.Embedder (cost proportional to the batch, not the graph), and
// each re-embedding is published to the Store as a fresh immutable
// snapshot. Queries never block on ingestion — they keep reading the
// previous snapshot until the atomic swap.
//
// Run is supervised: a failed batch application is retried with capped
// exponential backoff (a full Refresh rebuild restores the embedder's
// invariants between attempts, since a failed AddEdges may have recorded
// arcs without their samples), and a batch whose retries are exhausted
// escalates to a supervisor restart. After MaxRestarts the ingester enters
// degraded mode: published snapshots stay live and queries keep being
// answered, but new batches are dropped, Submit fails fast with
// ErrDegraded, and Status/healthz/metrics report the degradation and its
// reason. Degraded mode is terminal for the Run invocation (by design — it
// signals a persistent fault that needs operator attention, not another
// blind retry).
type Ingester struct {
	emb     *dynamic.Embedder
	store   *Store
	cfg     IngestConfig
	hooks   faultinject.Hooks
	batches chan []graph.Edge

	published atomic.Int64
	applied   atomic.Int64
	dropped   atomic.Int64
	retries   atomic.Int64
	restarts  atomic.Int64
	degraded  atomic.Bool

	mu     sync.Mutex
	reason string // why the ingester degraded; guarded by mu
}

// ErrDegraded is returned by Submit once the ingester has exceeded
// MaxRestarts and stopped applying batches.
var ErrDegraded = errors.New("serve: ingester degraded, batch not accepted")

// Default supervision parameters (see IngestConfig).
const (
	DefaultMaxRetries  = 3
	DefaultMaxRestarts = 3
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffMax  = 5 * time.Second
)

// IngestConfig tunes the background ingestion loop.
type IngestConfig struct {
	// Precision of published indexes ("float32" or "int8"; "" = float32).
	Precision string
	// ANN configures the IVF index built for each published snapshot (see
	// BuildANN): zero value means exact scans only; with Enabled set, every
	// snapshot of at least MinRows vertices gets an index constructed right
	// before its atomic swap, so queries never see an embedding without its
	// matching index.
	ANN ann.Config
	// MaxStaleness triggers a full resample (Embedder.Refresh) when the
	// embedder's staleness ratio exceeds it after a batch. 0 disables
	// automatic refresh.
	MaxStaleness float64
	// QueueSize bounds the submit channel (default 16). Submit blocks when
	// the queue is full, applying back-pressure to the write path.
	QueueSize int
	// MaxRetries is how many times a failed batch application is retried
	// (refresh + re-apply with capped exponential backoff) before the
	// failure escalates to a supervisor restart. Default DefaultMaxRetries;
	// negative disables retries.
	MaxRetries int
	// MaxRestarts is how many supervisor restarts are tolerated before the
	// ingester enters degraded mode. Default DefaultMaxRestarts; negative
	// degrades on the first escalated failure.
	MaxRestarts int
	// BackoffBase is the first retry delay; each subsequent attempt doubles
	// it, capped at BackoffMax. Defaults DefaultBackoffBase/DefaultBackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Hooks injects faults for testing (nil = none). Fired at
	// faultinject.IngestApply / IngestRefresh / IngestPublish.
	Hooks faultinject.Hooks
}

// NewIngester wires an embedder to a store. Call Run in a goroutine, then
// Submit edge batches; PublishNow publishes the embedder's current state
// immediately (typically once at startup).
func NewIngester(emb *dynamic.Embedder, store *Store, cfg IngestConfig) *Ingester {
	qs := cfg.QueueSize
	if qs <= 0 {
		qs = 16
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = DefaultMaxRestarts
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	return &Ingester{
		emb:     emb,
		store:   store,
		cfg:     cfg,
		hooks:   faultinject.OrNop(cfg.Hooks),
		batches: make(chan []graph.Edge, qs),
	}
}

// Submit queues an edge batch for ingestion, blocking when the queue is
// full (back-pressure) or returning ctx's error when canceled first.
//
// Delivery guarantee: a batch accepted by Submit (nil return) is applied
// and published before Run returns — including batches still queued when
// Run's context is canceled, which are drained, applied, and published as
// one final snapshot — unless applying it fails past the configured
// retries, or the ingester enters degraded mode, in which case the batch
// is counted in Status().BatchesDropped. Once degraded, Submit fails fast
// with ErrDegraded instead of accepting batches that would be dropped.
func (in *Ingester) Submit(ctx context.Context, batch []graph.Edge) error {
	if in.degraded.Load() {
		return ErrDegraded
	}
	select {
	case in.batches <- batch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Published reports how many snapshots the ingester has published.
func (in *Ingester) Published() int64 { return in.published.Load() }

// IngestStatus is a point-in-time view of the supervision state.
type IngestStatus struct {
	// State is "running" or "degraded".
	State string
	// Reason is the failure that forced degraded mode ("" while running).
	Reason string
	// Restarts counts supervisor restarts (escalated batch failures).
	Restarts int64
	// Retries counts per-batch recovery attempts (refresh + re-apply).
	Retries int64
	// Published counts snapshots published.
	Published int64
	// BatchesApplied counts batches successfully applied to the embedder.
	BatchesApplied int64
	// BatchesDropped counts accepted batches that were lost to exhausted
	// retries, degraded mode, or a failing drain at shutdown.
	BatchesDropped int64
}

// Degraded reports whether the ingester has entered degraded mode.
func (in *Ingester) Degraded() bool { return in.degraded.Load() }

// Status returns the current supervision counters.
func (in *Ingester) Status() IngestStatus {
	st := IngestStatus{
		State:          "running",
		Restarts:       in.restarts.Load(),
		Retries:        in.retries.Load(),
		Published:      in.published.Load(),
		BatchesApplied: in.applied.Load(),
		BatchesDropped: in.dropped.Load(),
	}
	if in.degraded.Load() {
		st.State = "degraded"
		in.mu.Lock()
		st.Reason = in.reason
		in.mu.Unlock()
	}
	return st
}

// PublishNow embeds the current graph state and publishes it.
func (in *Ingester) PublishNow() error {
	if err := in.hooks.Fire(faultinject.IngestPublish); err != nil {
		return fmt.Errorf("serve: publishing snapshot: %w", err)
	}
	x, err := in.emb.Embed()
	if err != nil {
		return fmt.Errorf("serve: embedding for publish: %w", err)
	}
	ix, err := NewIndex(x, in.cfg.Precision)
	if err != nil {
		return err
	}
	ivf, err := BuildANN(ix, in.cfg.ANN)
	if err != nil {
		return fmt.Errorf("serve: building ANN index for publish: %w", err)
	}
	in.store.PublishWithANN(ix, ivf, in.emb.Staleness())
	in.published.Add(1)
	return nil
}

// addEdges applies one batch to the embedder (with fault injection).
func (in *Ingester) addEdges(batch []graph.Edge) error {
	if err := in.hooks.Fire(faultinject.IngestApply); err != nil {
		return fmt.Errorf("serve: applying batch: %w", err)
	}
	if err := in.emb.AddEdges(batch); err != nil {
		return fmt.Errorf("serve: applying batch: %w", err)
	}
	return nil
}

// refresh performs a full embedder rebuild (with fault injection).
func (in *Ingester) refresh() error {
	if err := in.hooks.Fire(faultinject.IngestRefresh); err != nil {
		return fmt.Errorf("serve: refresh: %w", err)
	}
	if err := in.emb.Refresh(); err != nil {
		return fmt.Errorf("serve: refresh: %w", err)
	}
	return nil
}

// backoff returns the capped exponential delay for the attempt-th retry
// (attempt counts from 0).
func (in *Ingester) backoff(attempt int) time.Duration {
	d := in.cfg.BackoffBase
	for i := 0; i < attempt && d < in.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > in.cfg.BackoffMax {
		d = in.cfg.BackoffMax
	}
	return d
}

// sleep waits for d or until ctx is canceled, reporting ctx's error when
// canceled first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// applyBatch applies one batch, recovering from transient failures with
// capped exponential backoff. A failed AddEdges may leave the embedder
// inconsistent (arcs recorded without their samples), so every retry first
// runs a full Refresh — which both restores the invariants and, when the
// failed attempt had already recorded the batch's arcs, incorporates them —
// then re-applies the batch (a no-op for arcs the refresh picked up).
// Returns nil once the batch is in, ctx's error on cancellation mid-retry,
// or the last failure when retries are exhausted.
func (in *Ingester) applyBatch(ctx context.Context, batch []graph.Edge) error {
	err := in.addEdges(batch)
	if err == nil {
		in.applied.Add(1)
		return nil
	}
	for attempt := 0; attempt < in.cfg.MaxRetries; attempt++ {
		in.retries.Add(1)
		if serr := sleep(ctx, in.backoff(attempt)); serr != nil {
			return serr
		}
		if rerr := in.refresh(); rerr != nil {
			err = rerr
			continue
		}
		if err = in.addEdges(batch); err == nil {
			in.applied.Add(1)
			return nil
		}
	}
	return fmt.Errorf("serve: batch failed after %d retries: %w", in.cfg.MaxRetries, err)
}

// Run consumes submitted batches until ctx is canceled, supervising the
// ingest loop as documented on Ingester. Each iteration drains every batch
// already queued (coalescing bursts into one re-embedding), applies them,
// resamples fully when the staleness bound is exceeded, and publishes the
// refreshed snapshot. On cancellation the already-accepted queue is
// drained, applied, and published before returning (see Submit for the
// delivery guarantee).
//
// Run returns nil on cancellation — including after entering degraded
// mode, where it keeps draining (and dropping) the queue so producers
// blocked in Submit are released. It never returns a batch error.
func (in *Ingester) Run(ctx context.Context) error {
	for {
		err := in.ingest(ctx)
		if err == nil {
			return nil // ctx canceled, queue drained
		}
		restarts := in.restarts.Add(1)
		if restarts > int64(in.cfg.MaxRestarts) {
			in.enterDegraded(err)
			in.drainDropping(ctx)
			return nil
		}
		// Brief pause so a persistently failing dependency isn't hammered;
		// capped by the restart count.
		if serr := sleep(ctx, in.backoff(int(restarts)-1)); serr != nil {
			return nil
		}
	}
}

// ingest is one supervised incarnation of the consume loop. It returns nil
// when ctx is canceled (after draining the queue) or the escalated error
// when a batch fails past its retries.
func (in *Ingester) ingest(ctx context.Context) error {
	for {
		var batch []graph.Edge
		select {
		case <-ctx.Done():
			in.drainAndPublish()
			return nil
		case batch = <-in.batches:
		}
		if err := in.applyBatch(ctx, batch); err != nil {
			if ctx.Err() != nil {
				in.dropped.Add(1)
				in.drainAndPublish()
				return nil
			}
			in.dropped.Add(1)
			return err
		}
		// Coalesce: a burst of submissions becomes one factorization.
	drain:
		for {
			select {
			case more := <-in.batches:
				if err := in.applyBatch(ctx, more); err != nil {
					if ctx.Err() != nil {
						in.dropped.Add(1)
						in.drainAndPublish()
						return nil
					}
					in.dropped.Add(1)
					return err
				}
			default:
				break drain
			}
		}
		if in.cfg.MaxStaleness > 0 && in.emb.Staleness() > in.cfg.MaxStaleness {
			if err := in.refresh(); err != nil {
				return err
			}
		}
		if err := in.publishWithRetry(ctx); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
	}
}

// publishWithRetry publishes the current state, retrying transient
// failures with the same capped backoff as batch application (no refresh —
// a publish failure does not invalidate the embedder).
func (in *Ingester) publishWithRetry(ctx context.Context) error {
	err := in.PublishNow()
	if err == nil {
		return nil
	}
	for attempt := 0; attempt < in.cfg.MaxRetries; attempt++ {
		in.retries.Add(1)
		if serr := sleep(ctx, in.backoff(attempt)); serr != nil {
			return serr
		}
		if err = in.PublishNow(); err == nil {
			return nil
		}
	}
	return fmt.Errorf("serve: publish failed after %d retries: %w", in.cfg.MaxRetries, err)
}

// drainAndPublish applies every batch already in the queue (best effort,
// no retries — the process is shutting down) and publishes once if any
// applied. Failures drop the remaining queue, counted in BatchesDropped.
func (in *Ingester) drainAndPublish() {
	applied := false
	for {
		select {
		case batch := <-in.batches:
			if err := in.addEdges(batch); err != nil {
				in.dropped.Add(1)
				continue
			}
			in.applied.Add(1)
			applied = true
		default:
			if applied {
				// Best effort: a failed final publish only loses recency,
				// never a served snapshot.
				_ = in.PublishNow()
			}
			return
		}
	}
}

// enterDegraded flips the ingester into degraded mode with the given cause.
func (in *Ingester) enterDegraded(cause error) {
	in.mu.Lock()
	in.reason = cause.Error()
	in.mu.Unlock()
	in.degraded.Store(true)
}

// drainDropping consumes (and drops) queued batches until ctx is canceled,
// so producers already blocked in Submit are released promptly after the
// ingester degrades.
func (in *Ingester) drainDropping(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			// Anything still queued is dropped, not applied: the embedder is
			// in an unknown state once degraded.
			for {
				select {
				case <-in.batches:
					in.dropped.Add(1)
				default:
					return
				}
			}
		case <-in.batches:
			in.dropped.Add(1)
		}
	}
}
