package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"
	"time"
)

// Snapshot shipping, the leader half of replication. A Shipment is one
// published generation in its wire form: the exact CRC-32C-trailed LNEB v3
// checkpoint payload the follower will decode (and may persist verbatim as
// its own warm-restart checkpoint — wire format and disk format are the
// same bytes by design). The leader encodes each generation once at
// publish time and then serves the same immutable buffer to every
// follower; like query snapshots, shipments live behind an atomic pointer
// so /v1/snapshot never blocks a publish and vice versa.
//
// Followers poll /v1/snapshot/meta (a few hundred bytes of JSON) and only
// download /v1/snapshot when the ETag moves, so steady-state replication
// traffic is the meta poll, not the payload.

// Shipment is one encoded snapshot generation offered to followers.
type Shipment struct {
	// Payload is the complete checkpoint encoding (LNEB v3). Immutable
	// after Publish.
	Payload []byte
	// Generation is the publishing store's snapshot version; followers
	// report it back as lightne_replica_generation.
	Generation uint64
	// ETag identifies the payload bytes (CRC-32C, hex). Followers compare
	// it against the meta poll to skip re-downloading, and verify it after
	// a fetch to detect a swap that landed mid-download.
	ETag string
	// Rows, Dims describe the encoded embedding (for meta, logging).
	Rows, Dims int
	// Published is when this generation was shipped.
	Published time.Time
}

// shipCRCTable is the Castagnoli table used when an ETag must be computed
// from scratch (payload too short to carry a v3 trailer).
var shipCRCTable = crc32.MakeTable(crc32.Castagnoli)

// payloadCRC extracts the content checksum identifying a shipment. A v3
// payload already ends with crc32c(header+data), so the trailer bytes ARE
// the content hash — reuse them rather than hashing the whole payload
// again: checksumming a buffer that ends with its own CRC yields the
// fixed CRC-32C residue (0x48674bc7) for every input, which would make
// the ETag's checksum half a constant.
func payloadCRC(payload []byte) uint32 {
	if len(payload) >= 4 {
		return binary.LittleEndian.Uint32(payload[len(payload)-4:])
	}
	return crc32.Checksum(payload, shipCRCTable)
}

// NewShipment wraps an encoded checkpoint payload for publication. The
// caller must not modify payload afterwards.
func NewShipment(payload []byte, generation uint64, rows, dims int) *Shipment {
	return &Shipment{
		Payload:    payload,
		Generation: generation,
		ETag:       fmt.Sprintf("%08x-%d", payloadCRC(payload), generation),
		Rows:       rows,
		Dims:       dims,
		Published:  time.Now(),
	}
}

// Shipper holds the current shipment behind an atomic pointer — the
// shipping analogue of Store. A Server built WithShipper serves it on
// /v1/snapshot and /v1/snapshot/meta.
type Shipper struct {
	cur atomic.Pointer[Shipment]
}

// NewShipper returns an empty shipper; Current is nil until the first
// Publish.
func NewShipper() *Shipper { return &Shipper{} }

// Publish atomically replaces the offered shipment. In-flight downloads of
// the previous shipment finish unharmed (the buffer is immutable).
func (sp *Shipper) Publish(sh *Shipment) { sp.cur.Store(sh) }

// Current returns the offered shipment, or nil before the first Publish.
func (sp *Shipper) Current() *Shipment { return sp.cur.Load() }

// SnapshotMeta answers /v1/snapshot/meta: everything a follower needs to
// decide whether to download, without the payload.
type SnapshotMeta struct {
	Generation uint64 `json:"generation"`
	ETag       string `json:"etag"`
	Rows       int    `json:"rows"`
	Dims       int    `json:"dims"`
	Bytes      int64  `json:"bytes"`
	// PublishedUnixNano is the leader-side publish time (informational;
	// followers compute lag from their own successful-contact clock, not
	// from cross-host timestamps).
	PublishedUnixNano int64 `json:"published_unix_nano"`
}

// Meta summarizes a shipment for the meta endpoint.
func (sh *Shipment) Meta() SnapshotMeta {
	return SnapshotMeta{
		Generation:        sh.Generation,
		ETag:              sh.ETag,
		Rows:              sh.Rows,
		Dims:              sh.Dims,
		Bytes:             int64(len(sh.Payload)),
		PublishedUnixNano: sh.Published.UnixNano(),
	}
}
