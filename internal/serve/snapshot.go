// Package serve implements LightNE's embedding-serving subsystem: the
// paper's §1 motivation is that embeddings be "easily consumed in
// downstream machine learning and recommendation algorithms", and this
// package is the consumption side — a stdlib-only HTTP JSON API answering
// top-k cosine nearest-neighbor queries over an embedding artifact.
//
// The design centers on immutable snapshots behind an atomic pointer:
//
//   - A Snapshot is a read-only vector index plus provenance (version,
//     staleness, publish time). It is never mutated after Publish.
//   - A Store holds the current snapshot in an atomic.Pointer, so the read
//     path (every query) is a single atomic load — no locks, no reader
//     registration, no pauses when a new snapshot lands.
//   - An Ingester connects the dynamic-update layer (internal/dynamic) to
//     serving: edge batches stream in, the embedder resamples only the new
//     arcs, and the refreshed embedding is published as the next snapshot
//     while in-flight queries keep reading the old one.
//
// Queries run on quantized stores (internal/quant): float32 by default
// (half the memory of the training output, ~1e-7 error) or int8 (8x
// smaller) — the serving-memory trade the paper's deployments care about.
package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"lightne/internal/dense"
	"lightne/internal/quant"
)

// Index is the immutable vector store a snapshot answers queries from.
// Implementations must be safe for concurrent readers.
type Index interface {
	// Rows returns the number of vectors (vertices).
	Rows() int
	// Dims returns the embedding dimension.
	Dims() int
	// Vector returns vertex v's embedding as float32 (dequantized if
	// needed). The caller must not modify the returned slice.
	Vector(v int) []float32
	// TopK returns the k vertices most cosine-similar to v (excluding v),
	// sorted by decreasing similarity.
	TopK(v, k int) ([]int, []float64, error)
	// MemoryBytes is the resident size of the store.
	MemoryBytes() int64
}

// Precisions lists the supported index precisions.
func Precisions() []string { return []string{"float32", "int8"} }

// NewIndex quantizes a float64 embedding into a serving index at the given
// precision ("float32" or "int8"; "" defaults to float32).
func NewIndex(x *dense.Matrix, precision string) (Index, error) {
	switch precision {
	case "", "float32":
		return f32Index{quant.ToFloat32(x)}, nil
	case "int8":
		return int8Index{quant.ToInt8(x)}, nil
	default:
		return nil, fmt.Errorf("serve: unknown precision %q (want float32 or int8)", precision)
	}
}

// f32Index serves queries from a single-precision store.
type f32Index struct{ e *quant.Float32Embedding }

func (ix f32Index) Rows() int                              { return ix.e.Rows }
func (ix f32Index) Dims() int                              { return ix.e.Cols }
func (ix f32Index) Vector(v int) []float32                 { return ix.e.Row(v) }
func (ix f32Index) TopK(v, k int) ([]int, []float64, error) { return ix.e.TopK(v, k) }
func (ix f32Index) MemoryBytes() int64                     { return ix.e.MemoryBytes() }

// int8Index serves queries directly on int8 codes (similarities never
// leave the integer domain until normalization).
type int8Index struct{ e *quant.Int8Embedding }

func (ix int8Index) Rows() int { return ix.e.Rows }
func (ix int8Index) Dims() int { return ix.e.Cols }

func (ix int8Index) Vector(v int) []float32 {
	out := make([]float32, ix.e.Cols)
	s := ix.e.Scales[v]
	codes := ix.e.Codes[v*ix.e.Cols : (v+1)*ix.e.Cols]
	for j, c := range codes {
		out[j] = s * float32(c)
	}
	return out
}

func (ix int8Index) TopK(v, k int) ([]int, []float64, error) { return ix.e.TopK(v, k) }
func (ix int8Index) MemoryBytes() int64                      { return ix.e.MemoryBytes() }

// Snapshot is one immutable published embedding generation.
type Snapshot struct {
	Index   Index
	Version uint64
	// Staleness is the embedder's staleness ratio at publish time (fraction
	// of the edge set added since the last full resample); 0 for snapshots
	// loaded from static artifacts.
	Staleness float64
	Published time.Time
}

// Store hands out the current snapshot with a single atomic load and
// accepts new generations with a single atomic swap. Readers holding an
// old snapshot keep using it unharmed — snapshots are immutable, so a
// query that started before a Publish finishes on consistent data.
type Store struct {
	cur     atomic.Pointer[Snapshot]
	version atomic.Uint64
}

// NewStore returns an empty store; Snapshot() is nil until the first
// Publish.
func NewStore() *Store { return &Store{} }

// Snapshot returns the current generation, or nil before the first
// publish. The result must be treated as read-only.
func (s *Store) Snapshot() *Snapshot { return s.cur.Load() }

// Publish installs a new generation built from ix and returns it. The
// version counter increases monotonically across publishes.
func (s *Store) Publish(ix Index, staleness float64) *Snapshot {
	snap := &Snapshot{
		Index:     ix,
		Version:   s.version.Add(1),
		Staleness: staleness,
		Published: time.Now(),
	}
	s.cur.Store(snap)
	return snap
}
