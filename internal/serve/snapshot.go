// Package serve implements LightNE's embedding-serving subsystem: the
// paper's §1 motivation is that embeddings be "easily consumed in
// downstream machine learning and recommendation algorithms", and this
// package is the consumption side — a stdlib-only HTTP JSON API answering
// top-k cosine nearest-neighbor queries over an embedding artifact.
//
// The design centers on immutable snapshots behind an atomic pointer:
//
//   - A Snapshot is a read-only vector index plus provenance (version,
//     staleness, publish time). It is never mutated after Publish.
//   - A Store holds the current snapshot in an atomic.Pointer, so the read
//     path (every query) is a single atomic load — no locks, no reader
//     registration, no pauses when a new snapshot lands.
//   - An Ingester connects the dynamic-update layer (internal/dynamic) to
//     serving: edge batches stream in, the embedder resamples only the new
//     arcs, and the refreshed embedding is published as the next snapshot
//     while in-flight queries keep reading the old one.
//
// Queries run on quantized stores (internal/quant): float32 by default
// (half the memory of the training output, ~1e-7 error) or int8 (8x
// smaller) — the serving-memory trade the paper's deployments care about.
//
// Large snapshots optionally carry an IVF index (internal/ann) built at
// publish time and swapped atomically together with its embedding, so the
// query path drops from an O(n·d) exact scan to a sub-linear probe without
// giving up any of the immutability guarantees above. Snapshot.Search is
// the one query entry point: it takes the ANN path when an index is
// attached and falls back to the exact scan otherwise (and whenever the
// probe comes back short), so handlers never choose.
package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"lightne/internal/ann"
	"lightne/internal/dense"
	"lightne/internal/quant"
)

// Index is the immutable vector store a snapshot answers queries from.
// Implementations must be safe for concurrent readers.
type Index interface {
	// Rows returns the number of vectors (vertices).
	Rows() int
	// Dims returns the embedding dimension.
	Dims() int
	// Vector returns vertex v's embedding as float32 (dequantized if
	// needed). The caller must not modify the returned slice.
	Vector(v int) []float32
	// TopK returns the k vertices most cosine-similar to v (excluding v),
	// sorted by decreasing similarity.
	TopK(v, k int) ([]int, []float64, error)
	// MemoryBytes is the resident size of the store.
	MemoryBytes() int64
}

// Precisions lists the supported index precisions.
func Precisions() []string { return []string{"float32", "int8"} }

// NewIndex quantizes a float64 embedding into a serving index at the given
// precision ("float32" or "int8"; "" defaults to float32).
func NewIndex(x *dense.Matrix, precision string) (Index, error) {
	switch precision {
	case "", "float32":
		return flatIndex{quant.ToFloat32(x)}, nil
	case "int8":
		return flatIndex{quant.ToInt8(x)}, nil
	default:
		return nil, fmt.Errorf("serve: unknown precision %q (want float32 or int8)", precision)
	}
}

// flatIndex adapts any quant.Embedding to the serving Index — one
// implementation for every codec (the per-codec wrappers it replaced were
// method-for-method identical). The codec keeps full control of its query
// kernel: TopK and similarity computations run on the compressed form
// (int8 never leaves the integer domain), and Vector dequantizes into a
// fresh slice so callers can never alias the store.
type flatIndex struct{ e quant.Embedding }

func (ix flatIndex) Rows() int { r, _ := ix.e.Shape(); return r }
func (ix flatIndex) Dims() int { _, c := ix.e.Shape(); return c }

func (ix flatIndex) Vector(v int) []float32 {
	_, c := ix.e.Shape()
	out := make([]float32, c)
	ix.e.DequantTo(out, v)
	return out
}

func (ix flatIndex) TopK(v, k int) ([]int, []float64, error) { return ix.e.TopK(v, k) }
func (ix flatIndex) MemoryBytes() int64                      { return ix.e.MemoryBytes() }

// BuildANN constructs the IVF index for a snapshot about to be published,
// or reports (nil, nil) when the configuration says this snapshot should
// keep the exact scan: ANN disabled, or the snapshot smaller than
// cfg.MinRows (default ann.DefaultMinRows) — under that size the exact
// scan is already microseconds and approximation buys nothing.
func BuildANN(ix Index, cfg ann.Config) (*ann.Index, error) {
	if !cfg.Enabled {
		return nil, nil
	}
	minRows := cfg.MinRows
	if minRows <= 0 {
		minRows = ann.DefaultMinRows
	}
	if ix.Rows() < minRows {
		return nil, nil
	}
	f, ok := ix.(flatIndex)
	if !ok {
		return nil, fmt.Errorf("serve: ANN requires a quantized index, got %T", ix)
	}
	// Every quant.Embedding is an ann.Vectors (Shape/Cosine/DequantTo), so
	// the index is built directly over the compressed store — no copy.
	return ann.Build(f.e, cfg)
}

// Snapshot is one immutable published embedding generation.
type Snapshot struct {
	Index Index
	// ANN is the snapshot's IVF index, or nil when this generation serves
	// exact scans only (small snapshot, ANN disabled, or a non-quantized
	// index). It is built over exactly the rows of Index and published in
	// the same atomic swap, so the pair is always mutually consistent.
	ANN     *ann.Index
	Version uint64
	// Staleness is the embedder's staleness ratio at publish time (fraction
	// of the edge set added since the last full resample); 0 for snapshots
	// loaded from static artifacts.
	Staleness float64
	Published time.Time
}

// Search answers one top-k query against this snapshot: the IVF probe when
// an ANN index is attached, the exact scan otherwise. If the probe returns
// fewer than the requested neighbors (all of them filed in unprobed lists —
// possible on tiny or skewed snapshots), the exact scan answers instead,
// so Search never degrades below the exact path's result quality floor.
//
// scanned is the number of row-distance computations spent (rows-1 for the
// exact scan) and approx reports which path produced the answer — both
// feed the serving metrics.
func (s *Snapshot) Search(v, k int) (ids []int, scores []float64, scanned int, approx bool, err error) {
	if s.ANN != nil {
		if f, ok := s.Index.(flatIndex); ok {
			ids, scores, scanned, err = s.ANN.Search(f.e, v, k, 0)
			want := k
			if max := s.ANN.Rows() - 1; want > max {
				want = max
			}
			if err == nil && len(ids) >= want {
				return ids, scores, scanned, true, nil
			}
			// Short probe or internal error: fall through to the exact scan
			// (its cost is the ceiling the server was sized for anyway).
		}
	}
	ids, scores, err = s.Index.TopK(v, k)
	if err != nil {
		return nil, nil, 0, false, err
	}
	return ids, scores, s.Index.Rows() - 1, false, nil
}

// Store hands out the current snapshot with a single atomic load and
// accepts new generations with a single atomic swap. Readers holding an
// old snapshot keep using it unharmed — snapshots are immutable, so a
// query that started before a Publish finishes on consistent data.
type Store struct {
	cur     atomic.Pointer[Snapshot]
	version atomic.Uint64
}

// NewStore returns an empty store; Snapshot() is nil until the first
// Publish.
func NewStore() *Store { return &Store{} }

// Snapshot returns the current generation, or nil before the first
// publish. The result must be treated as read-only.
func (s *Store) Snapshot() *Snapshot { return s.cur.Load() }

// Publish installs a new exact-scan generation built from ix and returns
// it. The version counter increases monotonically across publishes.
func (s *Store) Publish(ix Index, staleness float64) *Snapshot {
	return s.PublishWithANN(ix, nil, staleness)
}

// PublishWithANN installs a new generation carrying an optional ANN index
// (nil = exact scans). The embedding and its index land in one atomic
// swap: no reader can ever observe a snapshot whose ANN index describes a
// different embedding generation.
func (s *Store) PublishWithANN(ix Index, ivf *ann.Index, staleness float64) *Snapshot {
	snap := &Snapshot{
		Index:     ix,
		ANN:       ivf,
		Version:   s.version.Add(1),
		Staleness: staleness,
		Published: time.Now(),
	}
	s.cur.Store(snap)
	return snap
}
