package serve

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Observability for the serving path. All counters are lock-free atomics so
// instrumentation never serializes the request fan-in; the histogram uses
// power-of-two latency buckets (1µs, 2µs, 4µs, … ~9min), which keeps
// percentile error under 2x — plenty to tell a 100µs scan from a 10ms one.

const histBuckets = 30

// latencyHist is a fixed-bucket exponential histogram.
type latencyHist struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sumNs  atomic.Int64
}

// bucketOf maps a duration to its bucket: index i covers
// (2^(i-1), 2^i] microseconds, with 0 covering everything ≤ 1µs.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	b := bits.Len64(uint64(us - 1)) // ceil(log2(us))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper is the inclusive upper bound of bucket i, used as the
// reported percentile value.
func bucketUpper(i int) time.Duration {
	return time.Duration(int64(1)<<uint(i)) * time.Microsecond
}

func (h *latencyHist) observe(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	h.sumNs.Add(int64(d))
}

// quantile returns the upper bound of the bucket containing the q-th
// quantile observation, or 0 when the histogram is empty.
func (h *latencyHist) quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// mean returns the average observed latency (exact, not bucketed).
func (h *latencyHist) mean() time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / total)
}

// endpointStats aggregates one endpoint's traffic.
type endpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64 // responses with status >= 400
	hist     latencyHist
}

func (e *endpointStats) observe(d time.Duration, status int) {
	e.requests.Add(1)
	if status >= 400 {
		e.errors.Add(1)
	}
	e.hist.observe(d)
}

// Metrics tracks per-endpoint request counters and latency distributions
// plus snapshot gauges, the middleware's panic/shed counters, and (when an
// ingester is attached) ingestion supervision counters. The endpoint set
// is fixed at construction, so the hot path never takes a map-write lock.
type Metrics struct {
	start     time.Time
	store     *Store
	endpoints map[string]*endpointStats
	panics    atomic.Int64
	shed      atomic.Int64
	ingest    func() IngestStatus  // nil unless an ingester is attached
	replica   func() ReplicaStatus // nil unless a replicator is attached

	// Search-path accounting: which path answered (IVF probe vs exact scan)
	// and how many row-distance computations it spent — the live view of
	// the recall/throughput trade the ANN index buys.
	annQueries   atomic.Int64
	exactQueries atomic.Int64
	scannedRows  atomic.Int64
}

// ObserveSearch records one answered top-k query: approx says the ANN
// probe produced the answer, scanned is its row-distance computation count.
func (m *Metrics) ObserveSearch(approx bool, scanned int) {
	if approx {
		m.annQueries.Add(1)
	} else {
		m.exactQueries.Add(1)
	}
	m.scannedRows.Add(int64(scanned))
}

// ANNQueries reports how many queries the ANN probe answered.
func (m *Metrics) ANNQueries() int64 { return m.annQueries.Load() }

// ExactQueries reports how many queries fell to the exact scan.
func (m *Metrics) ExactQueries() int64 { return m.exactQueries.Load() }

// ScannedRows reports the total row-distance computations spent on queries.
func (m *Metrics) ScannedRows() int64 { return m.scannedRows.Load() }

// Panics reports how many handler panics the recovery middleware caught.
func (m *Metrics) Panics() int64 { return m.panics.Load() }

// Shed reports how many requests the concurrency limiter rejected.
func (m *Metrics) Shed() int64 { return m.shed.Load() }

// NewMetrics builds a metrics registry over the given endpoints, reading
// snapshot gauges from store.
func NewMetrics(store *Store, endpoints ...string) *Metrics {
	m := &Metrics{start: time.Now(), store: store, endpoints: make(map[string]*endpointStats, len(endpoints))}
	for _, ep := range endpoints {
		m.endpoints[ep] = &endpointStats{}
	}
	return m
}

// Observe records one request against the named endpoint. Unknown names
// are dropped (the endpoint set is fixed at construction).
func (m *Metrics) Observe(endpoint string, d time.Duration, status int) {
	if e, ok := m.endpoints[endpoint]; ok {
		e.observe(d, status)
	}
}

// Requests returns the request count recorded for an endpoint.
func (m *Metrics) Requests(endpoint string) int64 {
	if e, ok := m.endpoints[endpoint]; ok {
		return e.requests.Load()
	}
	return 0
}

// WriteTo renders the metrics in the Prometheus text exposition format
// (counters, latency quantile gauges, and snapshot gauges).
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	var n int64
	emit := func(format string, args ...any) error {
		k, err := fmt.Fprintf(w, format, args...)
		n += int64(k)
		return err
	}
	names := make([]string, 0, len(m.endpoints))
	for ep := range m.endpoints {
		names = append(names, ep)
	}
	sort.Strings(names)
	for _, ep := range names {
		e := m.endpoints[ep]
		if err := emit("lightne_requests_total{endpoint=%q} %d\n", ep, e.requests.Load()); err != nil {
			return n, err
		}
		if err := emit("lightne_request_errors_total{endpoint=%q} %d\n", ep, e.errors.Load()); err != nil {
			return n, err
		}
		for _, q := range []struct {
			label string
			v     float64
		}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}} {
			if err := emit("lightne_request_latency_seconds{endpoint=%q,quantile=%q} %g\n",
				ep, q.label, e.hist.quantile(q.v).Seconds()); err != nil {
				return n, err
			}
		}
		if err := emit("lightne_request_latency_mean_seconds{endpoint=%q} %g\n", ep, e.hist.mean().Seconds()); err != nil {
			return n, err
		}
	}
	if snap := m.store.Snapshot(); snap != nil {
		if err := emit("lightne_snapshot_version %d\n", snap.Version); err != nil {
			return n, err
		}
		if err := emit("lightne_snapshot_staleness %g\n", snap.Staleness); err != nil {
			return n, err
		}
		if err := emit("lightne_snapshot_age_seconds %g\n", time.Since(snap.Published).Seconds()); err != nil {
			return n, err
		}
		if err := emit("lightne_snapshot_vertices %d\n", snap.Index.Rows()); err != nil {
			return n, err
		}
		if err := emit("lightne_snapshot_dims %d\n", snap.Index.Dims()); err != nil {
			return n, err
		}
		if err := emit("lightne_snapshot_bytes %d\n", snap.Index.MemoryBytes()); err != nil {
			return n, err
		}
		annOn := 0
		if snap.ANN != nil {
			annOn = 1
		}
		if err := emit("lightne_snapshot_ann %d\n", annOn); err != nil {
			return n, err
		}
		if snap.ANN != nil {
			st := snap.ANN.Stats()
			for _, g := range []struct {
				name string
				v    int64
			}{
				{"lightne_ann_nlist", int64(st.NList)},
				{"lightne_ann_nprobe", int64(st.NProbe)},
				{"lightne_ann_empty_lists", int64(st.EmptyLists)},
				{"lightne_ann_bytes", st.MemoryBytes},
			} {
				if err := emit("%s %d\n", g.name, g.v); err != nil {
					return n, err
				}
			}
		}
	}
	for _, g := range []struct {
		name string
		v    int64
	}{
		{"lightne_ann_queries_total", m.annQueries.Load()},
		{"lightne_exact_queries_total", m.exactQueries.Load()},
		{"lightne_scanned_rows_total", m.scannedRows.Load()},
	} {
		if err := emit("%s %d\n", g.name, g.v); err != nil {
			return n, err
		}
	}
	if err := emit("lightne_panics_total %d\n", m.panics.Load()); err != nil {
		return n, err
	}
	if err := emit("lightne_shed_total %d\n", m.shed.Load()); err != nil {
		return n, err
	}
	if m.ingest != nil {
		st := m.ingest()
		degraded := 0
		if st.State == "degraded" {
			degraded = 1
		}
		for _, g := range []struct {
			name string
			v    int64
		}{
			{"lightne_ingest_degraded", int64(degraded)},
			{"lightne_ingest_restarts_total", st.Restarts},
			{"lightne_ingest_retries_total", st.Retries},
			{"lightne_ingest_published_total", st.Published},
			{"lightne_ingest_batches_applied_total", st.BatchesApplied},
			{"lightne_ingest_batches_dropped_total", st.BatchesDropped},
		} {
			if err := emit("%s %d\n", g.name, g.v); err != nil {
				return n, err
			}
		}
	}
	if m.replica != nil {
		st := m.replica()
		degraded := 0
		if st.State == "degraded" {
			degraded = 1
		}
		if err := emit("lightne_replica_generation %d\n", st.Generation); err != nil {
			return n, err
		}
		if err := emit("lightne_replica_lag_seconds %g\n", st.LagSeconds); err != nil {
			return n, err
		}
		for _, g := range []struct {
			name string
			v    int64
		}{
			{"lightne_replica_fetch_failures_total", st.FetchFailures},
			{"lightne_replica_applied_total", st.Applied},
			{"lightne_replica_degraded", int64(degraded)},
		} {
			if err := emit("%s %d\n", g.name, g.v); err != nil {
				return n, err
			}
		}
	}
	err := emit("lightne_uptime_seconds %g\n", time.Since(m.start).Seconds())
	return n, err
}
