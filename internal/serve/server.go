package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Endpoint names used for routing and metrics labels.
const (
	epNeighbors = "neighbors"
	epEmbedding = "embedding"
	epBatch     = "batch"
	epHealth    = "healthz"
	epReady     = "readyz"
	epMetrics   = "metrics"
	epSnapshot  = "snapshot"
	epSnapMeta  = "snapshot_meta"
)

// Replication headers attached to /v1/snapshot responses.
const (
	headerGeneration = "X-Lightne-Generation"
	headerRows       = "X-Lightne-Rows"
	headerDims       = "X-Lightne-Dims"
)

// DefaultK is the neighbor count used when a query omits k.
const DefaultK = 10

// MaxBatch bounds one /v1/batch request; larger batches get a 400 so a
// single client cannot monopolize the scan workers.
const MaxBatch = 1024

// Server is the embedding-serving HTTP front end. All query endpoints read
// the store's current snapshot with one atomic load; none of them lock.
type Server struct {
	store    *Store
	metrics  *Metrics
	mux      *http.ServeMux
	ingester *Ingester
	shipper  *Shipper
	replica  *Replicator
	limits   Limits
	inflight chan struct{}
}

// Option configures optional Server behavior.
type Option func(*Server)

// WithIngester attaches the background ingester so /healthz reflects its
// supervision state (degraded mode + reason) and /metrics exports its
// restart/retry/drop counters.
func WithIngester(in *Ingester) Option {
	return func(s *Server) { s.ingester = in }
}

// WithLimits enables the request-hardening middleware (load shedding and
// per-request deadlines) on the query endpoints.
func WithLimits(l Limits) Option {
	return func(s *Server) { s.limits = l }
}

// WithShipper makes this server a replication leader: the shipper's
// current shipment is served on /v1/snapshot (the raw checkpoint payload)
// and /v1/snapshot/meta (generation/ETag JSON, so followers poll without
// re-downloading). Without it those endpoints answer 404.
func WithShipper(sp *Shipper) Option {
	return func(s *Server) { s.shipper = sp }
}

// WithReplicator attaches the follower's replication loop so /healthz
// reflects its staleness state (degraded when the leader has been
// unreachable past StaleAfter, with the last good snapshot still served)
// and /metrics exports the replica generation/lag/failure counters.
func WithReplicator(r *Replicator) Option {
	return func(s *Server) { s.replica = r }
}

// New builds a server over the given snapshot store.
func New(store *Store, opts ...Option) *Server {
	s := &Server{
		store:   store,
		metrics: NewMetrics(store, epNeighbors, epEmbedding, epBatch, epHealth, epReady, epMetrics, epSnapshot, epSnapMeta),
		mux:     http.NewServeMux(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.ingester != nil {
		s.metrics.ingest = s.ingester.Status
	}
	if s.replica != nil {
		s.metrics.replica = s.replica.Status
	}
	if s.limits.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, s.limits.MaxInFlight)
	}
	// Query endpoints get the full chain (recovery → shedding/deadline →
	// handler); health, readiness, metrics, and the replication control
	// plane get recovery only: probes must see an overloaded server alive
	// (not 503), and a follower must be able to ship a snapshot while the
	// leader sheds query load.
	query := func(name string, h http.HandlerFunc) http.HandlerFunc {
		return s.instrument(name, s.recovered(s.shedded(h)))
	}
	always := func(name string, h http.HandlerFunc) http.HandlerFunc {
		return s.instrument(name, s.recovered(h))
	}
	s.mux.HandleFunc("/v1/neighbors", query(epNeighbors, s.handleNeighbors))
	s.mux.HandleFunc("GET /v1/embedding/{vertex}", query(epEmbedding, s.handleEmbedding))
	s.mux.HandleFunc("POST /v1/batch", query(epBatch, s.handleBatch))
	s.mux.HandleFunc("GET /healthz", always(epHealth, s.handleHealth))
	s.mux.HandleFunc("GET /readyz", always(epReady, s.handleReady))
	s.mux.HandleFunc("GET /metrics", always(epMetrics, s.handleMetrics))
	s.mux.HandleFunc("GET /v1/snapshot", always(epSnapshot, s.handleSnapshot))
	s.mux.HandleFunc("GET /v1/snapshot/meta", always(epSnapMeta, s.handleSnapshotMeta))
	return s
}

// Handler returns the routing handler (useful for httptest and embedding
// the API under a larger mux).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Serve accepts connections on ln until ctx is canceled, then drains
// in-flight requests (graceful shutdown).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-errc:
		return err
	}
}

// ListenAndServe binds addr and runs Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency recording.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.Observe(name, time.Since(start), sw.code)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// NeighborsRequest is one k-NN query. K nil means DefaultK.
type NeighborsRequest struct {
	Vertex int  `json:"vertex"`
	K      *int `json:"k,omitempty"`
}

// NeighborResult is one retrieved neighbor.
type NeighborResult struct {
	Vertex int     `json:"vertex"`
	Score  float64 `json:"score"`
}

// NeighborsResponse answers /v1/neighbors.
type NeighborsResponse struct {
	Vertex          int              `json:"vertex"`
	K               int              `json:"k"`
	Neighbors       []NeighborResult `json:"neighbors"`
	SnapshotVersion uint64           `json:"snapshot_version"`
}

// BatchRequest carries up to MaxBatch queries.
type BatchRequest struct {
	Queries []NeighborsRequest `json:"queries"`
}

// BatchResult is one per-query outcome; exactly one of Neighbors/Error is
// meaningful.
type BatchResult struct {
	Vertex    int              `json:"vertex"`
	Neighbors []NeighborResult `json:"neighbors,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// BatchResponse answers /v1/batch. All queries in a batch run against the
// same snapshot, so results are mutually consistent even if a publish
// lands mid-request.
type BatchResponse struct {
	Results         []BatchResult `json:"results"`
	SnapshotVersion uint64        `json:"snapshot_version"`
}

// EmbeddingResponse answers /v1/embedding/{vertex}.
type EmbeddingResponse struct {
	Vertex          int       `json:"vertex"`
	Dims            int       `json:"dims"`
	Vector          []float32 `json:"vector"`
	SnapshotVersion uint64    `json:"snapshot_version"`
}

// HealthResponse answers /healthz. Status is "loading" (no snapshot yet,
// 503), "ok", "degraded" (the attached ingester exceeded its restart
// budget), or "degraded (stale)" (a follower whose leader has been
// unreachable past StaleAfter). In every degraded form the last snapshot
// is still served, so the response stays 200 — degraded means "stale but
// alive", and a load balancer must not stop routing reads to it. Routing
// decisions belong on /readyz, which is about having anything to serve at
// all.
type HealthResponse struct {
	Status          string  `json:"status"`
	Reason          string  `json:"reason,omitempty"`
	SnapshotVersion uint64  `json:"snapshot_version,omitempty"`
	Vertices        int     `json:"vertices,omitempty"`
	Dims            int     `json:"dims,omitempty"`
	Staleness       float64 `json:"staleness"`
	IngestRestarts  int64   `json:"ingest_restarts,omitempty"`
	// ANN reports whether the current snapshot carries an IVF index (with
	// its list/probe geometry), i.e. whether queries run sub-linear.
	ANN       bool `json:"ann"`
	ANNNList  int  `json:"ann_nlist,omitempty"`
	ANNNProbe int  `json:"ann_nprobe,omitempty"`
	// Replica fields (followers only): the last applied leader generation
	// and how long ago the leader was last reachable.
	ReplicaGeneration uint64  `json:"replica_generation,omitempty"`
	ReplicaLagSeconds float64 `json:"replica_lag_seconds,omitempty"`
}

// ReadyResponse answers /readyz: "ready" (200) once a snapshot is
// published, "unready" (503) before — so a load balancer never routes
// queries to an empty replica that is still tailing its leader (or a
// -watch server still loading its artifact). Distinct from /healthz on
// purpose: a degraded-stale follower is unhealthy but ready (it has data
// to serve); a freshly started follower is healthy but unready.
type ReadyResponse struct {
	Status          string `json:"status"`
	Reason          string `json:"reason,omitempty"`
	SnapshotVersion uint64 `json:"snapshot_version,omitempty"`
}

// snapshotOr503 loads the current snapshot, answering 503 when the store
// has not published yet (server warming up).
func (s *Server) snapshotOr503(w http.ResponseWriter) *Snapshot {
	snap := s.store.Snapshot()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, "no snapshot published yet")
	}
	return snap
}

// resolveQuery validates one query against a snapshot, returning the
// effective k or an HTTP error code.
func resolveQuery(snap *Snapshot, q NeighborsRequest) (k int, status int, err error) {
	if q.Vertex < 0 || q.Vertex >= snap.Index.Rows() {
		return 0, http.StatusNotFound, fmt.Errorf("vertex %d not in snapshot (%d vertices)", q.Vertex, snap.Index.Rows())
	}
	k = DefaultK
	if q.K != nil {
		k = *q.K
	}
	if k <= 0 {
		return 0, http.StatusBadRequest, fmt.Errorf("k must be positive, got %d", k)
	}
	return k, http.StatusOK, nil
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	var q NeighborsRequest
	switch r.Method {
	case http.MethodGet:
		vs := r.URL.Query().Get("vertex")
		v, err := strconv.Atoi(vs)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad vertex %q", vs)
			return
		}
		q.Vertex = v
		if ks := r.URL.Query().Get("k"); ks != "" {
			k, err := strconv.Atoi(ks)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad k %q", ks)
				return
			}
			q.K = &k
		}
	case http.MethodPost:
		if err := decodeJSON(r, &q); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	snap := s.snapshotOr503(w)
	if snap == nil {
		return
	}
	k, status, err := resolveQuery(snap, q)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	idx, scores, scanned, approx, err := snap.Search(q.Vertex, k)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "query failed: %v", err)
		return
	}
	s.metrics.ObserveSearch(approx, scanned)
	writeJSON(w, http.StatusOK, NeighborsResponse{
		Vertex:          q.Vertex,
		K:               k,
		Neighbors:       neighborResults(idx, scores),
		SnapshotVersion: snap.Version,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), MaxBatch)
		return
	}
	snap := s.snapshotOr503(w)
	if snap == nil {
		return
	}
	resp := BatchResponse{Results: make([]BatchResult, len(req.Queries)), SnapshotVersion: snap.Version}
	for i, q := range req.Queries {
		res := BatchResult{Vertex: q.Vertex}
		if k, _, err := resolveQuery(snap, q); err != nil {
			res.Error = err.Error()
		} else if idx, scores, scanned, approx, err := snap.Search(q.Vertex, k); err != nil {
			res.Error = err.Error()
		} else {
			s.metrics.ObserveSearch(approx, scanned)
			res.Neighbors = neighborResults(idx, scores)
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEmbedding(w http.ResponseWriter, r *http.Request) {
	vs := r.PathValue("vertex")
	v, err := strconv.Atoi(vs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad vertex %q", vs)
		return
	}
	snap := s.snapshotOr503(w)
	if snap == nil {
		return
	}
	if v < 0 || v >= snap.Index.Rows() {
		writeError(w, http.StatusNotFound, "vertex %d not in snapshot (%d vertices)", v, snap.Index.Rows())
		return
	}
	writeJSON(w, http.StatusOK, EmbeddingResponse{
		Vertex:          v,
		Dims:            snap.Index.Dims(),
		Vector:          snap.Index.Vector(v),
		SnapshotVersion: snap.Version,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "loading"})
		return
	}
	h := HealthResponse{
		Status:          "ok",
		SnapshotVersion: snap.Version,
		Vertices:        snap.Index.Rows(),
		Dims:            snap.Index.Dims(),
		Staleness:       snap.Staleness,
	}
	if snap.ANN != nil {
		h.ANN = true
		h.ANNNList = snap.ANN.NList()
		h.ANNNProbe = snap.ANN.NProbe()
	}
	if s.ingester != nil {
		if st := s.ingester.Status(); st.State == "degraded" {
			h.Status = "degraded"
			h.Reason = st.Reason
			h.IngestRestarts = st.Restarts
		}
	}
	if s.replica != nil {
		st := s.replica.Status()
		h.ReplicaGeneration = st.Generation
		h.ReplicaLagSeconds = st.LagSeconds
		if st.State == "degraded" {
			h.Status = "degraded (stale)"
			h.Reason = fmt.Sprintf("leader unreachable for %.1fs (stale threshold exceeded); serving last good generation %d", st.LagSeconds, st.Generation)
			if st.LastError != "" {
				h.Reason += ": " + st.LastError
			}
		}
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Status: "unready", Reason: "no snapshot published yet"})
		return
	}
	writeJSON(w, http.StatusOK, ReadyResponse{Status: "ready", SnapshotVersion: snap.Version})
}

// handleSnapshotMeta answers the follower's cheap poll: generation, ETag,
// and shape of the currently offered shipment.
func (s *Server) handleSnapshotMeta(w http.ResponseWriter, r *http.Request) {
	sh, ok := s.currentShipment(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sh.Meta())
}

// handleSnapshot streams the offered shipment — the exact CRC-trailed
// checkpoint payload — with ETag/generation/shape headers. If-None-Match
// lets a follower (or any cache) skip an unchanged body with a 304.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sh, ok := s.currentShipment(w)
	if !ok {
		return
	}
	w.Header().Set("ETag", sh.ETag)
	w.Header().Set(headerGeneration, strconv.FormatUint(sh.Generation, 10))
	w.Header().Set(headerRows, strconv.Itoa(sh.Rows))
	w.Header().Set(headerDims, strconv.Itoa(sh.Dims))
	if r.Header.Get("If-None-Match") == sh.ETag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(sh.Payload)))
	_, _ = w.Write(sh.Payload)
}

// currentShipment loads the offered shipment, answering 404 on a server
// that is not a leader and 503 before the first ship.
func (s *Server) currentShipment(w http.ResponseWriter) (*Shipment, bool) {
	if s.shipper == nil {
		writeError(w, http.StatusNotFound, "this server does not ship snapshots (no shipper attached)")
		return nil, false
	}
	sh := s.shipper.Current()
	if sh == nil {
		writeError(w, http.StatusServiceUnavailable, "no snapshot shipped yet")
		return nil, false
	}
	return sh, true
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = s.metrics.WriteTo(w)
}

func neighborResults(idx []int, scores []float64) []NeighborResult {
	out := make([]NeighborResult, len(idx))
	for i := range idx {
		out[i] = NeighborResult{Vertex: idx[i], Score: scores[i]}
	}
	return out
}

// decodeJSON parses a request body, rejecting trailing garbage and unknown
// fields so malformed clients fail loudly instead of silently querying
// vertex 0.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}
