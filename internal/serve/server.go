package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Endpoint names used for routing and metrics labels.
const (
	epNeighbors = "neighbors"
	epEmbedding = "embedding"
	epBatch     = "batch"
	epHealth    = "healthz"
	epMetrics   = "metrics"
)

// DefaultK is the neighbor count used when a query omits k.
const DefaultK = 10

// MaxBatch bounds one /v1/batch request; larger batches get a 400 so a
// single client cannot monopolize the scan workers.
const MaxBatch = 1024

// Server is the embedding-serving HTTP front end. All query endpoints read
// the store's current snapshot with one atomic load; none of them lock.
type Server struct {
	store    *Store
	metrics  *Metrics
	mux      *http.ServeMux
	ingester *Ingester
	limits   Limits
	inflight chan struct{}
}

// Option configures optional Server behavior.
type Option func(*Server)

// WithIngester attaches the background ingester so /healthz reflects its
// supervision state (degraded mode + reason) and /metrics exports its
// restart/retry/drop counters.
func WithIngester(in *Ingester) Option {
	return func(s *Server) { s.ingester = in }
}

// WithLimits enables the request-hardening middleware (load shedding and
// per-request deadlines) on the query endpoints.
func WithLimits(l Limits) Option {
	return func(s *Server) { s.limits = l }
}

// New builds a server over the given snapshot store.
func New(store *Store, opts ...Option) *Server {
	s := &Server{
		store:   store,
		metrics: NewMetrics(store, epNeighbors, epEmbedding, epBatch, epHealth, epMetrics),
		mux:     http.NewServeMux(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.ingester != nil {
		s.metrics.ingest = s.ingester.Status
	}
	if s.limits.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, s.limits.MaxInFlight)
	}
	// Query endpoints get the full chain (recovery → shedding/deadline →
	// handler); health and metrics get recovery only, so probes are never
	// shed.
	query := func(name string, h http.HandlerFunc) http.HandlerFunc {
		return s.instrument(name, s.recovered(s.shedded(h)))
	}
	always := func(name string, h http.HandlerFunc) http.HandlerFunc {
		return s.instrument(name, s.recovered(h))
	}
	s.mux.HandleFunc("/v1/neighbors", query(epNeighbors, s.handleNeighbors))
	s.mux.HandleFunc("GET /v1/embedding/{vertex}", query(epEmbedding, s.handleEmbedding))
	s.mux.HandleFunc("POST /v1/batch", query(epBatch, s.handleBatch))
	s.mux.HandleFunc("GET /healthz", always(epHealth, s.handleHealth))
	s.mux.HandleFunc("GET /metrics", always(epMetrics, s.handleMetrics))
	return s
}

// Handler returns the routing handler (useful for httptest and embedding
// the API under a larger mux).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Serve accepts connections on ln until ctx is canceled, then drains
// in-flight requests (graceful shutdown).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-errc:
		return err
	}
}

// ListenAndServe binds addr and runs Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency recording.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.Observe(name, time.Since(start), sw.code)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// NeighborsRequest is one k-NN query. K nil means DefaultK.
type NeighborsRequest struct {
	Vertex int  `json:"vertex"`
	K      *int `json:"k,omitempty"`
}

// NeighborResult is one retrieved neighbor.
type NeighborResult struct {
	Vertex int     `json:"vertex"`
	Score  float64 `json:"score"`
}

// NeighborsResponse answers /v1/neighbors.
type NeighborsResponse struct {
	Vertex          int              `json:"vertex"`
	K               int              `json:"k"`
	Neighbors       []NeighborResult `json:"neighbors"`
	SnapshotVersion uint64           `json:"snapshot_version"`
}

// BatchRequest carries up to MaxBatch queries.
type BatchRequest struct {
	Queries []NeighborsRequest `json:"queries"`
}

// BatchResult is one per-query outcome; exactly one of Neighbors/Error is
// meaningful.
type BatchResult struct {
	Vertex    int              `json:"vertex"`
	Neighbors []NeighborResult `json:"neighbors,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// BatchResponse answers /v1/batch. All queries in a batch run against the
// same snapshot, so results are mutually consistent even if a publish
// lands mid-request.
type BatchResponse struct {
	Results         []BatchResult `json:"results"`
	SnapshotVersion uint64        `json:"snapshot_version"`
}

// EmbeddingResponse answers /v1/embedding/{vertex}.
type EmbeddingResponse struct {
	Vertex          int       `json:"vertex"`
	Dims            int       `json:"dims"`
	Vector          []float32 `json:"vector"`
	SnapshotVersion uint64    `json:"snapshot_version"`
}

// HealthResponse answers /healthz. Status is "loading" (no snapshot yet,
// 503), "ok", or "degraded" (the attached ingester exceeded its restart
// budget; the last snapshot is still served, so the response stays 200 —
// degraded means "stale but alive", and a load balancer must not stop
// routing reads to it).
type HealthResponse struct {
	Status          string  `json:"status"`
	Reason          string  `json:"reason,omitempty"`
	SnapshotVersion uint64  `json:"snapshot_version,omitempty"`
	Vertices        int     `json:"vertices,omitempty"`
	Dims            int     `json:"dims,omitempty"`
	Staleness       float64 `json:"staleness"`
	IngestRestarts  int64   `json:"ingest_restarts,omitempty"`
	// ANN reports whether the current snapshot carries an IVF index (with
	// its list/probe geometry), i.e. whether queries run sub-linear.
	ANN       bool `json:"ann"`
	ANNNList  int  `json:"ann_nlist,omitempty"`
	ANNNProbe int  `json:"ann_nprobe,omitempty"`
}

// snapshotOr503 loads the current snapshot, answering 503 when the store
// has not published yet (server warming up).
func (s *Server) snapshotOr503(w http.ResponseWriter) *Snapshot {
	snap := s.store.Snapshot()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, "no snapshot published yet")
	}
	return snap
}

// resolveQuery validates one query against a snapshot, returning the
// effective k or an HTTP error code.
func resolveQuery(snap *Snapshot, q NeighborsRequest) (k int, status int, err error) {
	if q.Vertex < 0 || q.Vertex >= snap.Index.Rows() {
		return 0, http.StatusNotFound, fmt.Errorf("vertex %d not in snapshot (%d vertices)", q.Vertex, snap.Index.Rows())
	}
	k = DefaultK
	if q.K != nil {
		k = *q.K
	}
	if k <= 0 {
		return 0, http.StatusBadRequest, fmt.Errorf("k must be positive, got %d", k)
	}
	return k, http.StatusOK, nil
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	var q NeighborsRequest
	switch r.Method {
	case http.MethodGet:
		vs := r.URL.Query().Get("vertex")
		v, err := strconv.Atoi(vs)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad vertex %q", vs)
			return
		}
		q.Vertex = v
		if ks := r.URL.Query().Get("k"); ks != "" {
			k, err := strconv.Atoi(ks)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad k %q", ks)
				return
			}
			q.K = &k
		}
	case http.MethodPost:
		if err := decodeJSON(r, &q); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	snap := s.snapshotOr503(w)
	if snap == nil {
		return
	}
	k, status, err := resolveQuery(snap, q)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	idx, scores, scanned, approx, err := snap.Search(q.Vertex, k)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "query failed: %v", err)
		return
	}
	s.metrics.ObserveSearch(approx, scanned)
	writeJSON(w, http.StatusOK, NeighborsResponse{
		Vertex:          q.Vertex,
		K:               k,
		Neighbors:       neighborResults(idx, scores),
		SnapshotVersion: snap.Version,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Queries) > MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), MaxBatch)
		return
	}
	snap := s.snapshotOr503(w)
	if snap == nil {
		return
	}
	resp := BatchResponse{Results: make([]BatchResult, len(req.Queries)), SnapshotVersion: snap.Version}
	for i, q := range req.Queries {
		res := BatchResult{Vertex: q.Vertex}
		if k, _, err := resolveQuery(snap, q); err != nil {
			res.Error = err.Error()
		} else if idx, scores, scanned, approx, err := snap.Search(q.Vertex, k); err != nil {
			res.Error = err.Error()
		} else {
			s.metrics.ObserveSearch(approx, scanned)
			res.Neighbors = neighborResults(idx, scores)
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleEmbedding(w http.ResponseWriter, r *http.Request) {
	vs := r.PathValue("vertex")
	v, err := strconv.Atoi(vs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad vertex %q", vs)
		return
	}
	snap := s.snapshotOr503(w)
	if snap == nil {
		return
	}
	if v < 0 || v >= snap.Index.Rows() {
		writeError(w, http.StatusNotFound, "vertex %d not in snapshot (%d vertices)", v, snap.Index.Rows())
		return
	}
	writeJSON(w, http.StatusOK, EmbeddingResponse{
		Vertex:          v,
		Dims:            snap.Index.Dims(),
		Vector:          snap.Index.Vector(v),
		SnapshotVersion: snap.Version,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Snapshot()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "loading"})
		return
	}
	h := HealthResponse{
		Status:          "ok",
		SnapshotVersion: snap.Version,
		Vertices:        snap.Index.Rows(),
		Dims:            snap.Index.Dims(),
		Staleness:       snap.Staleness,
	}
	if snap.ANN != nil {
		h.ANN = true
		h.ANNNList = snap.ANN.NList()
		h.ANNNProbe = snap.ANN.NProbe()
	}
	if s.ingester != nil {
		if st := s.ingester.Status(); st.State == "degraded" {
			h.Status = "degraded"
			h.Reason = st.Reason
			h.IngestRestarts = st.Restarts
		}
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = s.metrics.WriteTo(w)
}

func neighborResults(idx []int, scores []float64) []NeighborResult {
	out := make([]NeighborResult, len(idx))
	for i := range idx {
		out[i] = NeighborResult{Vertex: idx[i], Score: scores[i]}
	}
	return out
}

// decodeJSON parses a request body, rejecting trailing garbage and unknown
// fields so malformed clients fail loudly instead of silently querying
// vertex 0.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}
