package dynamic

import (
	"math"
	"testing"

	"lightne/internal/core"
	"lightne/internal/eval"
	"lightne/internal/gen"
	"lightne/internal/graph"
)

func growingSBM(t *testing.T) (*graph.Graph, []graph.Edge, *gen.Labels) {
	t.Helper()
	g, labels, err := gen.SBM(gen.SBMConfig{
		N: 1500, Communities: 6, PIn: 0.04, POut: 0.003, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Split the edge set: 80% initial graph, 20% arriving later.
	var all []graph.Edge
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(uint32(u), nil) {
			if uint32(u) < v {
				all = append(all, graph.Edge{U: uint32(u), V: v})
			}
		}
	}
	cut := len(all) * 8 / 10
	initial, err := graph.FromEdges(g.NumVertices(), all[:cut], graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return initial, all[cut:], labels
}

func testConfig() core.Config {
	cfg := core.DefaultConfig(16)
	cfg.T = 5
	cfg.SampleMultiple = 2
	cfg.Seed = 11
	return cfg
}

func TestNewAndEmbed(t *testing.T) {
	initial, _, labels := growingSBM(t)
	e, err := New(initial, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.NumVertices() != initial.NumVertices() {
		t.Fatal("vertex count mismatch")
	}
	if e.Staleness() != 0 {
		t.Fatalf("fresh embedder staleness %g", e.Staleness())
	}
	x, err := e.Embed()
	if err != nil {
		t.Fatal(err)
	}
	cr, err := eval.NodeClassification(x, labels.Of, labels.NumClasses, 0.3, 3, eval.DefaultTrain())
	if err != nil {
		t.Fatal(err)
	}
	if cr.MicroF1 < 2.0/float64(labels.NumClasses) {
		t.Fatalf("initial embedding quality %.3f too low", cr.MicroF1)
	}
}

func TestAddEdgesIncremental(t *testing.T) {
	initial, later, labels := growingSBM(t)
	e, err := New(initial, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := e.NumEdges()
	// Deliver the held-back edges in three batches.
	third := len(later) / 3
	for i := 0; i < 3; i++ {
		lo, hi := i*third, (i+1)*third
		if i == 2 {
			hi = len(later)
		}
		if err := e.AddEdges(later[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if e.NumEdges() != before+len(later) {
		t.Fatalf("edges %d want %d", e.NumEdges(), before+len(later))
	}
	if e.Staleness() <= 0 {
		t.Fatal("staleness should be positive after incremental batches")
	}
	x, err := e.Embed()
	if err != nil {
		t.Fatal(err)
	}
	incr, err := eval.NodeClassification(x, labels.Of, labels.NumClasses, 0.3, 3, eval.DefaultTrain())
	if err != nil {
		t.Fatal(err)
	}
	// Compare with a full rebuild on the final graph.
	if err := e.Refresh(); err != nil {
		t.Fatal(err)
	}
	if e.Staleness() != 0 {
		t.Fatal("Refresh must clear staleness")
	}
	xf, err := e.Embed()
	if err != nil {
		t.Fatal(err)
	}
	full, err := eval.NodeClassification(xf, labels.Of, labels.NumClasses, 0.3, 3, eval.DefaultTrain())
	if err != nil {
		t.Fatal(err)
	}
	// Incremental must stay within a few F1 points of the full rebuild.
	if math.Abs(incr.MicroF1-full.MicroF1) > 0.10 {
		t.Fatalf("incremental %.3f vs full %.3f drifted too far", incr.MicroF1, full.MicroF1)
	}
}

func TestAddEdgesGrowsVertexSet(t *testing.T) {
	initial, _, _ := growingSBM(t)
	e, err := New(initial, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := e.NumVertices()
	// Attach two brand-new vertices.
	batch := []graph.Edge{
		{U: uint32(n), V: 0},
		{U: uint32(n + 1), V: uint32(n)},
	}
	if err := e.AddEdges(batch); err != nil {
		t.Fatal(err)
	}
	if e.NumVertices() != n+2 {
		t.Fatalf("vertices %d want %d", e.NumVertices(), n+2)
	}
	x, err := e.Embed()
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != n+2 {
		t.Fatalf("embedding rows %d want %d", x.Rows, n+2)
	}
}

func TestAddEdgesIgnoresDuplicatesAndLoops(t *testing.T) {
	initial, _, _ := growingSBM(t)
	e, err := New(initial, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := e.NumEdges()
	// Re-deliver existing edges plus self loops: nothing should change.
	var dup []graph.Edge
	for u := 0; u < 10; u++ {
		for _, v := range initial.Neighbors(uint32(u), nil) {
			dup = append(dup, graph.Edge{U: uint32(u), V: v})
		}
		dup = append(dup, graph.Edge{U: uint32(u), V: uint32(u)})
	}
	if err := e.AddEdges(dup); err != nil {
		t.Fatal(err)
	}
	if e.NumEdges() != before {
		t.Fatalf("duplicate batch changed edge count %d -> %d", before, e.NumEdges())
	}
	if err := e.AddEdges(nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewErrors(t *testing.T) {
	initial, _, _ := growingSBM(t)
	bad := testConfig()
	bad.Dim = 0
	if _, err := New(initial, bad); err == nil {
		t.Fatal("expected dim error")
	}
	bad = testConfig()
	bad.T = 0
	if _, err := New(initial, bad); err == nil {
		t.Fatal("expected T error")
	}
}

func TestNewRejectsWeightedGraph(t *testing.T) {
	wg, err := graph.FromWeightedEdges(3, []graph.WeightedEdge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 1}}, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(wg, testConfig()); err == nil {
		t.Fatal("expected weighted-graph rejection")
	}
}
