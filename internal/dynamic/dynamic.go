// Package dynamic implements LightNE in a streaming/dynamic setting — the
// extension the paper names as future work (§6: "we also would like to
// study large-scale network embedding in a streaming or dynamic setting").
//
// The key observation is that LightNE's state between samples and embedding
// is just the sparsifier hash table, and the table is additive: when a
// batch of edges arrives, it suffices to (1) rebuild the graph, (2) run the
// downsampled PathSampling for the *new* arcs only, at the same per-arc
// rate as the initial pass, and (3) re-run the cheap randomized SVD +
// propagation on the accumulated table. Sampling cost per batch is
// proportional to the batch, not the graph.
//
// The resulting estimator is slightly stale — samples drawn in earlier
// epochs used the then-current degrees and walk structure — so the embedder
// tracks a staleness ratio and callers refresh (full resample) when it
// exceeds their tolerance. This matches the paper's motivating deployments
// (Alibaba/LinkedIn periodic re-embedding, §1): cheap incremental updates
// between periodic full rebuilds.
package dynamic

import (
	"fmt"
	"math"

	"lightne/internal/core"
	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/hashtable"
	"lightne/internal/netsmf"
	"lightne/internal/prone"
	"lightne/internal/sampler"
	"lightne/internal/svd"
)

// Embedder maintains a LightNE embedding over a growing graph.
type Embedder struct {
	cfg     core.Config
	g       *graph.Graph
	arcs    []graph.Edge // canonical arc list (u < v), current graph
	table   sampler.Sink
	perArc  float64 // expected trials per directed arc, fixed at New
	trials  int64   // total realized trials in the table
	batches int
	// staleArcs counts arcs added since the last full (re)sample; their
	// siblings' samples were drawn under an older graph snapshot.
	staleArcs int64
	seed      uint64
}

// New builds an embedder over the initial graph, performing the full
// LightNE sampling pass.
func New(initial *graph.Graph, cfg core.Config) (*Embedder, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("dynamic: dimension must be positive")
	}
	if cfg.T <= 0 {
		return nil, fmt.Errorf("dynamic: window size T must be positive")
	}
	if initial.Weighted() {
		// The incremental path rebuilds the graph from an unweighted arc
		// list and samples with unit weights; accepting a weighted graph
		// would silently drop its weights.
		return nil, fmt.Errorf("dynamic: weighted graphs are not supported; use core.Embed and full re-runs")
	}
	m := cfg.M
	if m <= 0 {
		mult := cfg.SampleMultiple
		if mult <= 0 {
			mult = 1
		}
		m = netsmf.MFromMultiple(initial, cfg.T, mult)
	}
	arcs := collectArcs(initial)
	e := &Embedder{
		cfg:    cfg,
		g:      initial,
		arcs:   arcs,
		perArc: float64(m) / float64(initial.NumEdges()),
		seed:   cfg.Seed,
	}
	if err := e.resample(); err != nil {
		return nil, err
	}
	return e, nil
}

// collectArcs lists each undirected edge once (u < v).
func collectArcs(g *graph.Graph) []graph.Edge {
	var arcs []graph.Edge
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(uint32(u), nil) {
			if uint32(u) < v {
				arcs = append(arcs, graph.Edge{U: uint32(u), V: v})
			}
		}
	}
	return arcs
}

// downsampleC returns the active downsampling constant for the current
// graph (0 disables).
func (e *Embedder) downsampleC() float64 {
	if e.cfg.NoDownsample {
		return 0
	}
	if e.cfg.C > 0 {
		return e.cfg.C
	}
	c := math.Log(float64(e.g.NumVertices()))
	if c < 1 {
		c = 1
	}
	return c
}

// resample rebuilds the sparsifier table from scratch on the current graph,
// honouring the config's shard count.
func (e *Embedder) resample() error {
	e.table = sampler.NewSink(int(2*e.perArc*float64(len(e.arcs)))+1024, e.cfg.Shards)
	stats, err := sampler.SampleArcsInto(e.g, e.table, e.arcs, 2*e.perArc, e.cfg.T, e.downsampleC(), e.seed+uint64(e.batches)*1000)
	if err != nil {
		return err
	}
	e.trials = stats.Trials
	e.staleArcs = 0
	return nil
}

// NumVertices returns the current vertex count.
func (e *Embedder) NumVertices() int { return e.g.NumVertices() }

// NumEdges returns the current undirected edge count.
func (e *Embedder) NumEdges() int { return len(e.arcs) }

// Staleness reports the fraction of the current edge set added since the
// last full (re)sample — a proxy for how much of the accumulated sample
// mass was drawn under an outdated graph. 0 immediately after New or
// Refresh; callers refresh when it exceeds their drift tolerance.
func (e *Embedder) Staleness() float64 {
	if len(e.arcs) == 0 {
		return 0
	}
	return float64(e.staleArcs) / float64(len(e.arcs))
}

// AddEdges grows the graph by a batch of undirected edges (self loops and
// duplicates are ignored) and samples only the new arcs. n may grow: vertex
// IDs beyond the current count extend the graph.
func (e *Embedder) AddEdges(batch []graph.Edge) error {
	if len(batch) == 0 {
		return nil
	}
	// Determine the new vertex count and dedup against existing arcs.
	n := e.g.NumVertices()
	for _, a := range batch {
		if int(a.U) >= n {
			n = int(a.U) + 1
		}
		if int(a.V) >= n {
			n = int(a.V) + 1
		}
	}
	existing := make(map[uint64]bool, len(e.arcs))
	for _, a := range e.arcs {
		existing[hashtable.Key(a.U, a.V)] = true
	}
	var fresh []graph.Edge
	for _, a := range batch {
		u, v := a.U, a.V
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		k := hashtable.Key(u, v)
		if existing[k] {
			continue
		}
		existing[k] = true
		fresh = append(fresh, graph.Edge{U: u, V: v})
	}
	if len(fresh) == 0 {
		return nil
	}
	e.staleArcs += int64(len(fresh))
	e.arcs = append(e.arcs, fresh...)
	g, err := graph.FromEdges(n, e.arcs, graph.DefaultOptions())
	if err != nil {
		return err
	}
	e.g = g
	e.batches++
	stats, err := sampler.SampleArcsInto(e.g, e.table, fresh, 2*e.perArc, e.cfg.T, e.downsampleC(), e.seed+uint64(e.batches)*1000)
	if err != nil {
		return err
	}
	e.trials += stats.Trials
	return nil
}

// Refresh performs a full resample of the current graph, clearing
// staleness. Cost is proportional to the whole graph, like New.
func (e *Embedder) Refresh() error {
	e.batches++
	return e.resample()
}

// Embed factorizes the accumulated sparsifier and (unless the config skips
// it) applies spectral propagation, returning the current embedding.
func (e *Embedder) Embed() (*dense.Matrix, error) {
	// Partition-only drain: the matrix goes straight into SpMM (randomized
	// SVD + propagation), which never binary-searches within a row, so the
	// within-row column sort is skipped entirely. The table stays intact for
	// the next batch.
	rowPtr, cols, ws := e.table.DrainCSRPartial(e.g.NumVertices())
	b := e.cfg.NegSamples
	if b <= 0 {
		b = 1
	}
	mat, err := netsmf.BuildMatrixCSRGrouped(e.g, rowPtr, cols, ws, b, e.trials)
	if err != nil {
		return nil, err
	}
	res, err := svd.RandomizedSVD(mat, e.cfg.Dim, svd.Options{
		Seed:       e.seed + 1,
		Oversample: e.cfg.Oversample,
		PowerIters: e.cfg.PowerIters,
	})
	if err != nil {
		return nil, err
	}
	x := svd.EmbedFromSVD(res)
	if e.cfg.SkipPropagation {
		return x, nil
	}
	prop := e.cfg.Propagation
	if prop.Order == 0 {
		prop = prone.DefaultPropagation()
	}
	return prone.Propagate(e.g, x, prop)
}
