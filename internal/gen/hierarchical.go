package gen

import (
	"fmt"
	"math"

	"lightne/internal/graph"
	"lightne/internal/rng"
)

// HierarchicalSBMConfig parameterizes a two-level block model: vertices
// belong to micro-communities, micro-communities group into
// super-communities, and the classification labels are the
// super-communities. Direct edges are dominated by the micro level, so
// 1-hop methods see micro structure while the label signal lives at 2+
// hops — the structure of real academic/social graphs (e.g. OAG, where
// field-of-study labels span many venues), and the regime where multi-hop
// matrix methods (NetMF/NetSMF/LightNE) genuinely outperform 1-hop
// factorizations.
type HierarchicalSBMConfig struct {
	N     int
	Super int // number of super-communities (= label classes)
	Micro int // micro-communities per super-community
	// DIn is the expected within-micro degree (dense local signal).
	DIn float64
	// DMid is the expected degree toward *other* micros in the same super
	// (the multi-hop label signal).
	DMid float64
	// DOut is the expected background degree (noise).
	DOut float64
	// OverlapProb gives a vertex a second super-community label (and edges
	// into one of its micros), producing the multi-label structure of the
	// paper's benchmarks.
	OverlapProb float64
	// DegreeSkew, when positive, draws endpoints proportionally to
	// power-law vertex activities (degree-corrected model).
	DegreeSkew float64
	Seed       uint64
}

// HierarchicalSBM samples the model, returning the graph and super-level
// labels.
func HierarchicalSBM(cfg HierarchicalSBMConfig) (*graph.Graph, *Labels, error) {
	if cfg.N <= 0 || cfg.Super <= 0 || cfg.Micro <= 0 {
		return nil, nil, fmt.Errorf("gen: HierarchicalSBM needs positive N, Super, Micro")
	}
	if cfg.DIn < 0 || cfg.DMid < 0 || cfg.DOut < 0 {
		return nil, nil, fmt.Errorf("gen: HierarchicalSBM degrees must be non-negative")
	}
	src := rng.New(cfg.Seed, 9)
	totalMicros := cfg.Super * cfg.Micro

	// Assign each vertex a primary micro (uniform), plus optionally a
	// secondary micro in a different super.
	labels := &Labels{NumClasses: cfg.Super, Of: make([][]int, cfg.N)}
	microMembers := make([][]uint32, totalMicros)
	superMembers := make([][]uint32, cfg.Super)
	addMembership := func(v uint32, micro int) {
		s := micro / cfg.Micro
		microMembers[micro] = append(microMembers[micro], v)
		superMembers[s] = append(superMembers[s], v)
		labels.Of[v] = appendLabel(labels.Of[v], s)
	}
	for v := 0; v < cfg.N; v++ {
		micro := src.Intn(totalMicros)
		addMembership(uint32(v), micro)
		if cfg.OverlapProb > 0 && src.Bernoulli(cfg.OverlapProb) {
			second := src.Intn(totalMicros)
			if second/cfg.Micro != micro/cfg.Micro {
				addMembership(uint32(v), second)
			}
		}
	}

	// Optional power-law activities.
	weight := make([]float64, cfg.N)
	if cfg.DegreeSkew > 0 {
		pow := -1 / (cfg.DegreeSkew - 1)
		rank := make([]int, cfg.N)
		for i := range rank {
			rank[i] = i
		}
		for i := cfg.N - 1; i > 0; i-- {
			j := src.Intn(i + 1)
			rank[i], rank[j] = rank[j], rank[i]
		}
		for v := 0; v < cfg.N; v++ {
			weight[v] = math.Pow(float64(rank[v]+10), pow)
		}
	} else {
		for v := range weight {
			weight[v] = 1
		}
	}

	var arcs []graph.Edge
	// sampleGroup draws enough random endpoint pairs from a member list to
	// hit an expected per-vertex degree of deg within the group.
	sampleGroup := func(members []uint32, deg float64) {
		k := len(members)
		if k < 2 || deg <= 0 {
			return
		}
		cum := make([]float64, k+1)
		for i, v := range members {
			cum[i+1] = cum[i] + weight[v]
		}
		edges := int64(deg * float64(k) / 2)
		for e := int64(0); e < edges; e++ {
			u := members[searchCum(cum, src.Float64()*cum[k])]
			v := members[searchCum(cum, src.Float64()*cum[k])]
			if u != v {
				arcs = append(arcs, graph.Edge{U: u, V: v})
			}
		}
	}
	for _, mem := range microMembers {
		sampleGroup(mem, cfg.DIn)
	}
	for _, mem := range superMembers {
		sampleGroup(mem, cfg.DMid)
	}
	// Background noise over all vertices.
	if cfg.DOut > 0 {
		all := make([]uint32, cfg.N)
		for v := range all {
			all[v] = uint32(v)
		}
		sampleGroup(all, cfg.DOut)
	}

	g, err := graph.FromEdges(cfg.N, arcs, graph.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	return g, labels, nil
}

// appendLabel inserts c into a sorted label slice if absent.
func appendLabel(ls []int, c int) []int {
	for _, x := range ls {
		if x == c {
			return ls
		}
	}
	ls = append(ls, c)
	for i := len(ls) - 1; i > 0 && ls[i] < ls[i-1]; i-- {
		ls[i], ls[i-1] = ls[i-1], ls[i]
	}
	return ls
}
