package gen

import (
	"fmt"
	"math"

	"lightne/internal/graph"
	"lightne/internal/rng"
)

// CommunityPowerLawConfig parameterizes a block model with Zipf-distributed
// community sizes — the structure of real social and web graphs
// (LiveJournal, Hyperlink-PLD): strong local clustering plus a heavy-tailed
// degree distribution induced by heavy-tailed community sizes.
type CommunityPowerLawConfig struct {
	N           int
	Communities int
	// AvgDegree is the target mean degree; ~80% of it comes from
	// within-community edges and the rest from a uniform background.
	AvgDegree float64
	// ZipfExponent shapes community sizes (share_k ∝ (k+2)^-exp, default 1).
	ZipfExponent float64
	Seed         uint64
}

// CommunityPowerLaw samples the model and returns the graph plus the
// community assignment as single-label Labels (useful as weak ground truth).
func CommunityPowerLaw(cfg CommunityPowerLawConfig) (*graph.Graph, *Labels, error) {
	if cfg.N <= 0 || cfg.Communities <= 0 || cfg.AvgDegree <= 0 {
		return nil, nil, fmt.Errorf("gen: CommunityPowerLaw needs positive N, Communities, AvgDegree")
	}
	exp := cfg.ZipfExponent
	if exp == 0 {
		exp = 1
	}
	// Zipf shares.
	shares := make([]float64, cfg.Communities)
	var total float64
	for k := range shares {
		shares[k] = math.Pow(float64(k+2), -exp)
		total += shares[k]
	}
	src := rng.New(cfg.Seed, 7)
	labels := &Labels{NumClasses: cfg.Communities, Of: make([][]int, cfg.N)}
	members := make([][]uint32, cfg.Communities)
	// Assign vertices by cumulative share (deterministic counts, then
	// shuffle assignment so IDs are not block-contiguous).
	perm := make([]int, cfg.N)
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	pos := 0
	for k := 0; k < cfg.Communities; k++ {
		cnt := int(math.Round(shares[k] / total * float64(cfg.N)))
		if k == cfg.Communities-1 {
			cnt = cfg.N - pos
		}
		if cnt <= 0 {
			continue
		}
		if pos+cnt > cfg.N {
			cnt = cfg.N - pos
		}
		for i := 0; i < cnt; i++ {
			v := perm[pos+i]
			labels.Of[v] = []int{k}
			members[k] = append(members[k], uint32(v))
		}
		pos += cnt
	}

	var arcs []graph.Edge
	// Within-community edges: density chosen so that expected within-degree
	// ≈ 0.8·AvgDegree, capped at 0.5 for tiny communities.
	for _, mem := range members {
		kk := len(mem)
		if kk < 2 {
			continue
		}
		pIn := 0.8 * cfg.AvgDegree / float64(kk-1)
		if pIn > 0.5 {
			pIn = 0.5
		}
		totalPairs := int64(kk) * int64(kk-1) / 2
		for idx := skipNext(src, pIn, -1); idx < totalPairs; idx = skipNext(src, pIn, idx) {
			i, j := pairFromIndex(idx)
			arcs = append(arcs, graph.Edge{U: mem[j], V: mem[i]})
		}
	}
	// Background edges: the remaining 20% of degree mass.
	mBg := int64(0.2 * cfg.AvgDegree * float64(cfg.N) / 2)
	for e := int64(0); e < mBg; e++ {
		u := uint32(src.Intn(cfg.N))
		v := uint32(src.Intn(cfg.N))
		if u != v {
			arcs = append(arcs, graph.Edge{U: u, V: v})
		}
	}
	g, err := graph.FromEdges(cfg.N, arcs, graph.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	return g, labels, nil
}
