// Package gen provides deterministic synthetic graph generators that stand
// in for the paper's datasets (which are proprietary-scale web crawls and
// social networks; see DESIGN.md "Substitutions"). Three families cover the
// phenomena the evaluation depends on:
//
//   - SBM: stochastic block model with planted (optionally overlapping)
//     community labels — the node-classification workloads (BlogCatalog,
//     YouTube, Friendster, OAG replicas).
//   - Chung–Lu: power-law expected-degree graphs — the link-prediction and
//     scale workloads (LiveJournal, Hyperlink-PLD replicas).
//   - RMAT: recursive-matrix graphs with heavy skew — the very-large web
//     graph replicas (ClueWeb, Hyperlink2014).
//
// All generators take an explicit seed and produce identical graphs across
// runs and parallel schedules.
package gen

import (
	"fmt"
	"math"
	"sort"

	"lightne/internal/graph"
	"lightne/internal/rng"
)

// Labels assigns every vertex a set of class labels (multi-label, as in the
// paper's node-classification benchmarks).
type Labels struct {
	NumClasses int
	Of         [][]int // Of[v] lists v's classes, sorted ascending
}

// SBMConfig parameterizes a stochastic block model.
type SBMConfig struct {
	N           int     // vertices
	Communities int     // number of blocks
	PIn         float64 // edge probability within a shared community
	POut        float64 // edge probability otherwise
	// OverlapProb is the chance a vertex joins a second community
	// (multi-label structure). 0 = pure partition.
	OverlapProb float64
	// DegreeSkew, when positive, makes the model degree-corrected: vertex
	// activities follow a power law with this exponent (2-3 typical) and
	// edge endpoints are drawn proportionally to activity, producing the
	// hub-dominated degree distributions of real social graphs. 0 keeps
	// the classic (uniform) SBM.
	DegreeSkew float64
	Seed       uint64
}

// SBM samples a stochastic block model and returns the graph plus planted
// labels. Within-community edges are generated per community with geometric
// skipping (O(#edges)), and background edges with global skipping, so dense
// pIn and tiny pOut both run fast.
func SBM(cfg SBMConfig) (*graph.Graph, *Labels, error) {
	if cfg.N <= 0 || cfg.Communities <= 0 {
		return nil, nil, fmt.Errorf("gen: SBM needs positive N and Communities")
	}
	if cfg.PIn < 0 || cfg.PIn > 1 || cfg.POut < 0 || cfg.POut > 1 {
		return nil, nil, fmt.Errorf("gen: SBM probabilities must be in [0,1]")
	}
	src := rng.New(cfg.Seed, 0)
	labels := &Labels{NumClasses: cfg.Communities, Of: make([][]int, cfg.N)}
	members := make([][]uint32, cfg.Communities)
	for v := 0; v < cfg.N; v++ {
		c := src.Intn(cfg.Communities)
		labels.Of[v] = append(labels.Of[v], c)
		members[c] = append(members[c], uint32(v))
		if cfg.OverlapProb > 0 && src.Bernoulli(cfg.OverlapProb) {
			c2 := src.Intn(cfg.Communities)
			if c2 != c {
				labels.Of[v] = append(labels.Of[v], c2)
				members[c2] = append(members[c2], uint32(v))
			}
		}
		sort.Ints(labels.Of[v])
	}

	var arcs []graph.Edge
	if cfg.DegreeSkew > 0 {
		arcs = degreeCorrectedEdges(cfg, members, src)
	} else {
		// Within-community edges: iterate pairs of the member list with
		// geometric skips of parameter pIn.
		for _, mem := range members {
			k := len(mem)
			if k < 2 || cfg.PIn == 0 {
				continue
			}
			total := int64(k) * int64(k-1) / 2
			for idx := skipNext(src, cfg.PIn, -1); idx < total; idx = skipNext(src, cfg.PIn, idx) {
				i, j := pairFromIndex(idx)
				arcs = append(arcs, graph.Edge{U: mem[j], V: mem[i]})
			}
		}
		// Background edges over all pairs with parameter pOut (pairs inside
		// a community may be duplicated; dedup in the builder handles it and
		// the extra rate is negligible for pOut ≪ pIn).
		if cfg.POut > 0 {
			total := int64(cfg.N) * int64(cfg.N-1) / 2
			for idx := skipNext(src, cfg.POut, -1); idx < total; idx = skipNext(src, cfg.POut, idx) {
				i, j := pairFromIndex(idx)
				arcs = append(arcs, graph.Edge{U: uint32(j), V: uint32(i)})
			}
		}
	}
	g, err := graph.FromEdges(cfg.N, arcs, graph.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	return g, labels, nil
}

// degreeCorrectedEdges samples the degree-corrected variant: the *number*
// of edges per community (and of background edges) matches the uniform
// model's expectation, but endpoints are drawn proportionally to power-law
// vertex activities, concentrating degree on hubs.
func degreeCorrectedEdges(cfg SBMConfig, members [][]uint32, src *rng.Source) []graph.Edge {
	// Power-law activities: w_v ∝ (rank_v + 10)^(-1/(skew-1)) with a random
	// rank permutation so hubs are not ID-correlated.
	n := cfg.N
	w := make([]float64, n)
	pow := -1 / (cfg.DegreeSkew - 1)
	rank := make([]int, n)
	for i := range rank {
		rank[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		rank[i], rank[j] = rank[j], rank[i]
	}
	for v := 0; v < n; v++ {
		w[v] = math.Pow(float64(rank[v]+10), pow)
	}
	var arcs []graph.Edge
	// drawFrom samples one endpoint from a member slice proportional to w,
	// via a cumulative table built once per community.
	for _, mem := range members {
		k := len(mem)
		if k < 2 || cfg.PIn == 0 {
			continue
		}
		cum := make([]float64, k+1)
		for i, v := range mem {
			cum[i+1] = cum[i] + w[v]
		}
		mEdges := int64(cfg.PIn * float64(k) * float64(k-1) / 2)
		for e := int64(0); e < mEdges; e++ {
			u := mem[searchCum(cum, src.Float64()*cum[k])]
			v := mem[searchCum(cum, src.Float64()*cum[k])]
			if u != v {
				arcs = append(arcs, graph.Edge{U: u, V: v})
			}
		}
	}
	if cfg.POut > 0 {
		cum := make([]float64, n+1)
		for v := 0; v < n; v++ {
			cum[v+1] = cum[v] + w[v]
		}
		mBg := int64(cfg.POut * float64(n) * float64(n-1) / 2)
		for e := int64(0); e < mBg; e++ {
			u := uint32(searchCum(cum, src.Float64()*cum[n]))
			v := uint32(searchCum(cum, src.Float64()*cum[n]))
			if u != v {
				arcs = append(arcs, graph.Edge{U: u, V: v})
			}
		}
	}
	return arcs
}

// searchCum returns the index i with cum[i] <= x < cum[i+1].
func searchCum(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if cum[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// skipNext returns the next selected index after cur when each index is
// selected independently with probability p, using geometric jumps.
func skipNext(src *rng.Source, p float64, cur int64) int64 {
	if p >= 1 {
		return cur + 1
	}
	u := src.Float64()
	if u == 0 {
		u = 1e-18
	}
	gap := int64(math.Floor(math.Log(u)/math.Log(1-p))) + 1
	if gap < 1 {
		gap = 1
	}
	return cur + gap
}

// pairFromIndex maps a linear index over {(i,j) : 0 <= i < j} to the pair,
// enumerating j = 1,2,… with i < j.
func pairFromIndex(idx int64) (i, j int64) {
	// idx = j(j-1)/2 + i. Solve for j.
	j = int64((math.Sqrt(8*float64(idx)+1) + 1) / 2)
	for j*(j-1)/2 > idx {
		j--
	}
	for (j+1)*j/2 <= idx {
		j++
	}
	i = idx - j*(j-1)/2
	return i, j
}

// ChungLuConfig parameterizes a power-law expected-degree graph.
type ChungLuConfig struct {
	N         int
	AvgDegree float64
	// Exponent is the degree power-law exponent γ (weights ∝ i^{-1/(γ-1)});
	// typical social graphs have γ in [2, 3]. Default 2.5 when 0.
	Exponent float64
	Seed     uint64
}

// ChungLu samples m ≈ N·AvgDegree/2 undirected edges where endpoint u is
// drawn with probability proportional to its weight w_u, giving a power-law
// degree sequence.
func ChungLu(cfg ChungLuConfig) (*graph.Graph, error) {
	if cfg.N <= 0 || cfg.AvgDegree <= 0 {
		return nil, fmt.Errorf("gen: ChungLu needs positive N and AvgDegree")
	}
	gamma := cfg.Exponent
	if gamma == 0 {
		gamma = 2.5
	}
	if gamma <= 1 {
		return nil, fmt.Errorf("gen: ChungLu exponent must exceed 1, got %g", gamma)
	}
	n := cfg.N
	w := make([]float64, n)
	pow := -1 / (gamma - 1)
	for i := 0; i < n; i++ {
		w[i] = math.Pow(float64(i+10), pow)
	}
	// Cumulative table for inverse-CDF endpoint sampling.
	cum := make([]float64, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + w[i]
	}
	total := cum[n]
	src := rng.New(cfg.Seed, 1)
	m := int64(float64(n) * cfg.AvgDegree / 2)
	arcs := make([]graph.Edge, 0, m)
	draw := func() uint32 {
		x := src.Float64() * total
		idx := sort.SearchFloat64s(cum[1:], x)
		if idx >= n {
			idx = n - 1
		}
		return uint32(idx)
	}
	for k := int64(0); k < m; k++ {
		u, v := draw(), draw()
		if u == v {
			continue
		}
		arcs = append(arcs, graph.Edge{U: u, V: v})
	}
	return graph.FromEdges(n, arcs, graph.DefaultOptions())
}

// RMATConfig parameterizes a recursive-matrix generator.
type RMATConfig struct {
	// Scale: the graph has 2^Scale vertices.
	Scale int
	// EdgeFactor: approximately EdgeFactor·2^Scale undirected edges.
	EdgeFactor int
	// A, B, C are the quadrant probabilities (D = 1-A-B-C). Zero values
	// select the Graph500 defaults (0.57, 0.19, 0.19).
	A, B, C float64
	Seed    uint64
}

// RMAT samples a recursive-matrix graph (Chakrabarti et al.), the standard
// model for heavy-tailed web graphs such as ClueWeb and Hyperlink2014.
func RMAT(cfg RMATConfig) (*graph.Graph, error) {
	if cfg.Scale <= 0 || cfg.Scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale must be in [1,30], got %d", cfg.Scale)
	}
	if cfg.EdgeFactor <= 0 {
		return nil, fmt.Errorf("gen: RMAT needs positive EdgeFactor")
	}
	a, b, c := cfg.A, cfg.B, cfg.C
	if a == 0 && b == 0 && c == 0 {
		a, b, c = 0.57, 0.19, 0.19
	}
	if a+b+c >= 1 || a < 0 || b < 0 || c < 0 {
		return nil, fmt.Errorf("gen: RMAT quadrant probabilities invalid (a=%g b=%g c=%g)", a, b, c)
	}
	n := 1 << cfg.Scale
	m := int64(cfg.EdgeFactor) * int64(n)
	src := rng.New(cfg.Seed, 2)
	arcs := make([]graph.Edge, 0, m)
	for k := int64(0); k < m; k++ {
		var u, v uint32
		for level := 0; level < cfg.Scale; level++ {
			r := src.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << level
			case r < a+b+c:
				u |= 1 << level
			default:
				u |= 1 << level
				v |= 1 << level
			}
		}
		if u == v {
			continue
		}
		arcs = append(arcs, graph.Edge{U: u, V: v})
	}
	return graph.FromEdges(n, arcs, graph.DefaultOptions())
}

// PlantLabels assigns multi-label classes correlated with graph communities
// found by simple label propagation from random seeds. It is used to give
// classification structure to generator families that don't plant labels
// (Chung–Lu, RMAT replicas). Returns sparse labels: roughly labelFrac of
// vertices carry at least one label.
func PlantLabels(g *graph.Graph, numClasses int, labelFrac float64, seed uint64) *Labels {
	n := g.NumVertices()
	src := rng.New(seed, 3)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	// Seed classes at random vertices, then BFS-style propagate.
	type qitem struct {
		v uint32
		c int
	}
	var queue []qitem
	for c := 0; c < numClasses; c++ {
		v := uint32(src.Intn(n))
		assign[v] = c
		queue = append(queue, qitem{v, c})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		d := g.Degree(it.v)
		for k := 0; k < d; k++ {
			u := g.Neighbor(it.v, k)
			if assign[u] == -1 {
				assign[u] = it.c
				queue = append(queue, qitem{u, it.c})
			}
		}
	}
	labels := &Labels{NumClasses: numClasses, Of: make([][]int, n)}
	for v := 0; v < n; v++ {
		if assign[v] == -1 || !src.Bernoulli(labelFrac) {
			continue
		}
		labels.Of[v] = append(labels.Of[v], assign[v])
	}
	return labels
}

// Stats summarizes a generated graph for reporting (Table 3 analog).
type Stats struct {
	Name      string
	N         int
	Arcs      int64
	AvgDegree float64
	MaxDegree int
}

// Describe computes summary statistics.
func Describe(name string, g *graph.Graph) Stats {
	maxDeg := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(uint32(v)); d > maxDeg {
			maxDeg = d
		}
	}
	avg := 0.0
	if g.NumVertices() > 0 {
		avg = float64(g.NumEdges()) / float64(g.NumVertices())
	}
	return Stats{Name: name, N: g.NumVertices(), Arcs: g.NumEdges(), AvgDegree: avg, MaxDegree: maxDeg}
}
