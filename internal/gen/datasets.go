package gen

import (
	"fmt"

	"lightne/internal/graph"
	"lightne/internal/rng"
)

// Dataset is a named synthetic replica of one of the paper's nine
// evaluation graphs (Table 3), scaled to laptop size with matched average
// degree and structure family. Label-bearing replicas plant multi-label
// communities for the node-classification tasks; the rest are used for
// link prediction and scaling experiments.
type Dataset struct {
	Name   string
	Graph  *graph.Graph
	Labels *Labels // nil for link-prediction-only datasets
	// PaperN/PaperM record the original dataset's size for reporting.
	PaperN, PaperM int64
}

// BlogCatalogLike replicates BlogCatalog (10,312 vertices, 333,983 edges,
// 39 overlapping classes): small, dense, heavily multi-label.
func BlogCatalogLike(seed uint64) (*Dataset, error) {
	g, labels, err := SBM(SBMConfig{
		N: 2000, Communities: 12, PIn: 0.055, POut: 0.004,
		OverlapProb: 0.35, DegreeSkew: 2.2, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: "blogcatalog-like", Graph: g, Labels: labels,
		PaperN: 10_312, PaperM: 333_983}, nil
}

// YouTubeLike replicates YouTube (1.1M vertices, 3.0M edges, sparse labels):
// low average degree, few labeled vertices.
func YouTubeLike(seed uint64) (*Dataset, error) {
	g, labels, err := SBM(SBMConfig{
		N: 6000, Communities: 15, PIn: 0.01, POut: 0.0006,
		OverlapProb: 0.2, DegreeSkew: 2.1, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	sparsifyLabels(labels, 0.35, seed+1)
	return &Dataset{Name: "youtube-like", Graph: g, Labels: labels,
		PaperN: 1_138_499, PaperM: 2_990_443}, nil
}

// LiveJournalLike replicates LiveJournal (4.8M vertices, 69M edges) for the
// PBG link-prediction comparison: heavy-tailed community sizes plus a
// power-law background, giving both the skew and the local clustering that
// make held-out-edge ranking meaningful.
func LiveJournalLike(seed uint64) (*Dataset, error) {
	g, _, err := CommunityPowerLaw(CommunityPowerLawConfig{
		N: 12000, Communities: 120, AvgDegree: 18, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: "livejournal-like", Graph: g,
		PaperN: 4_847_571, PaperM: 68_993_773}, nil
}

// FriendsterSmallLike replicates Friendster-small (7.9M vertices, 447M
// edges) for the GraphVite classification comparison.
func FriendsterSmallLike(seed uint64) (*Dataset, error) {
	g, labels, err := SBM(SBMConfig{
		N: 5000, Communities: 10, PIn: 0.022, POut: 0.0015,
		OverlapProb: 0.25, DegreeSkew: 2.5, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: "friendster-small-like", Graph: g, Labels: labels,
		PaperN: 7_944_949, PaperM: 447_219_610}, nil
}

// FriendsterLike replicates Friendster (66M vertices, 1.8B edges).
func FriendsterLike(seed uint64) (*Dataset, error) {
	g, labels, err := SBM(SBMConfig{
		N: 10000, Communities: 14, PIn: 0.013, POut: 0.0008,
		OverlapProb: 0.25, DegreeSkew: 2.5, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: "friendster-like", Graph: g, Labels: labels,
		PaperN: 65_608_376, PaperM: 1_806_067_142}, nil
}

// HyperlinkPLDLike replicates Hyperlink-PLD (39M vertices, 623M edges) for
// the GraphVite link-prediction (AUC) comparison: web-graph skew.
func HyperlinkPLDLike(seed uint64) (*Dataset, error) {
	g, _, err := CommunityPowerLaw(CommunityPowerLawConfig{
		N: 9000, Communities: 200, AvgDegree: 16, ZipfExponent: 1.2, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: "hyperlink-pld-like", Graph: g,
		PaperN: 39_497_204, PaperM: 623_056_313}, nil
}

// OAGLike replicates OAG (68M vertices, 895M edges, sparse academic labels):
// the Table 4 / Figure 2 workload.
func OAGLike(seed uint64) (*Dataset, error) {
	// Two-level structure: labels are super-communities whose signal lives
	// at 2+ hops (like OAG's field-of-study labels spanning venues), dense
	// micro-communities dominate direct edges, and degrees are skewed so
	// LightNE's downsampling has the bite it has on the real graph.
	g, labels, err := HierarchicalSBM(HierarchicalSBMConfig{
		N: 6000, Super: 12, Micro: 8,
		DIn: 12, DMid: 4, DOut: 8,
		OverlapProb: 0.3, DegreeSkew: 2.3, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: "oag-like", Graph: g, Labels: labels,
		PaperN: 67_768_244, PaperM: 895_368_962}, nil
}

// ClueWebLike replicates ClueWeb-Sym (978M vertices, 75B edges) for the
// very-large-graph scaling experiment (Figure 3a).
func ClueWebLike(seed uint64) (*Dataset, error) {
	g, err := RMAT(RMATConfig{Scale: 14, EdgeFactor: 20, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: "clueweb-like", Graph: g,
		PaperN: 978_408_098, PaperM: 74_744_358_622}, nil
}

// Hyperlink2014Like replicates Hyperlink2014-Sym (1.7B vertices, 124B
// edges) for Figure 3b.
func Hyperlink2014Like(seed uint64) (*Dataset, error) {
	g, err := RMAT(RMATConfig{Scale: 15, EdgeFactor: 16, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: "hyperlink2014-like", Graph: g,
		PaperN: 1_724_573_718, PaperM: 124_141_874_032}, nil
}

// ByName returns the replica with the given name.
func ByName(name string, seed uint64) (*Dataset, error) {
	switch name {
	case "blogcatalog-like":
		return BlogCatalogLike(seed)
	case "youtube-like":
		return YouTubeLike(seed)
	case "livejournal-like":
		return LiveJournalLike(seed)
	case "friendster-small-like":
		return FriendsterSmallLike(seed)
	case "friendster-like":
		return FriendsterLike(seed)
	case "hyperlink-pld-like":
		return HyperlinkPLDLike(seed)
	case "oag-like":
		return OAGLike(seed)
	case "clueweb-like":
		return ClueWebLike(seed)
	case "hyperlink2014-like":
		return Hyperlink2014Like(seed)
	}
	return nil, fmt.Errorf("gen: unknown dataset %q (see AllNames)", name)
}

// AllNames lists every replica name.
func AllNames() []string {
	return []string{
		"blogcatalog-like", "youtube-like", "livejournal-like",
		"friendster-small-like", "friendster-like", "hyperlink-pld-like",
		"oag-like", "clueweb-like", "hyperlink2014-like",
	}
}

// sparsifyLabels removes labels from a (1-keep) fraction of vertices,
// modeling datasets where most vertices are unlabeled.
func sparsifyLabels(l *Labels, keep float64, seed uint64) {
	src := rng.New(seed, 4)
	for v := range l.Of {
		if !src.Bernoulli(keep) {
			l.Of[v] = nil
		}
	}
}
