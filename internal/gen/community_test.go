package gen

import (
	"math"
	"testing"
)

func TestCommunityPowerLawStructure(t *testing.T) {
	g, labels, err := CommunityPowerLaw(CommunityPowerLawConfig{
		N: 3000, Communities: 30, AvgDegree: 12, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3000 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	st := Describe("cpl", g)
	if math.Abs(st.AvgDegree-12) > 5 {
		t.Fatalf("avg degree %.1f far from 12", st.AvgDegree)
	}
	// Every vertex got exactly one community label.
	sizes := make([]int, 30)
	for v, ls := range labels.Of {
		if len(ls) != 1 {
			t.Fatalf("vertex %d has %d labels", v, len(ls))
		}
		sizes[ls[0]]++
	}
	// Zipf sizes: the largest community far exceeds the smallest nonzero.
	maxSz, minSz := 0, 1<<30
	for _, s := range sizes {
		if s > maxSz {
			maxSz = s
		}
		if s > 0 && s < minSz {
			minSz = s
		}
	}
	if maxSz < 4*minSz {
		t.Fatalf("community sizes not heavy-tailed: max=%d min=%d", maxSz, minSz)
	}
	// Within-community edges dominate.
	var within, across int64
	g.MapEdges(func(u, v uint32) {
		if labels.Of[u][0] == labels.Of[v][0] {
			within++
		} else {
			across++
		}
	})
	if within < 2*across {
		t.Fatalf("clustering weak: within=%d across=%d", within, across)
	}
}

func TestCommunityPowerLawErrors(t *testing.T) {
	if _, _, err := CommunityPowerLaw(CommunityPowerLawConfig{N: 0, Communities: 2, AvgDegree: 3}); err == nil {
		t.Fatal("expected N error")
	}
}

func TestSBMDegreeSkewProducesHubs(t *testing.T) {
	uniform, _, err := SBM(SBMConfig{N: 3000, Communities: 6, PIn: 0.02, POut: 0.002, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	skewed, _, err := SBM(SBMConfig{N: 3000, Communities: 6, PIn: 0.02, POut: 0.002, DegreeSkew: 2.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	su := Describe("u", uniform)
	ss := Describe("s", skewed)
	// Comparable average degree...
	if math.Abs(su.AvgDegree-ss.AvgDegree) > 0.5*su.AvgDegree {
		t.Fatalf("avg degrees diverged: %.1f vs %.1f", su.AvgDegree, ss.AvgDegree)
	}
	// ...but the skewed variant has a much heavier tail.
	if ss.MaxDegree < 2*su.MaxDegree {
		t.Fatalf("skew missing: max degree %d (skewed) vs %d (uniform)", ss.MaxDegree, su.MaxDegree)
	}
}

func TestSBMDegreeSkewKeepsCommunities(t *testing.T) {
	g, labels, err := SBM(SBMConfig{N: 2000, Communities: 4, PIn: 0.03, POut: 0.002, DegreeSkew: 2.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var within, across int64
	g.MapEdges(func(u, v uint32) {
		shared := false
		for _, a := range labels.Of[u] {
			for _, b := range labels.Of[v] {
				if a == b {
					shared = true
				}
			}
		}
		if shared {
			within++
		} else {
			across++
		}
	})
	if within < 2*across {
		t.Fatalf("degree-corrected SBM lost community structure: within=%d across=%d", within, across)
	}
}
