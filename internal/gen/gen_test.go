package gen

import (
	"math"
	"testing"

	"lightne/internal/rng"
)

func TestPairFromIndex(t *testing.T) {
	// Enumerate and verify the inverse mapping for a prefix.
	idx := int64(0)
	for j := int64(1); j < 60; j++ {
		for i := int64(0); i < j; i++ {
			gi, gj := pairFromIndex(idx)
			if gi != i || gj != j {
				t.Fatalf("idx=%d: got (%d,%d) want (%d,%d)", idx, gi, gj, i, j)
			}
			idx++
		}
	}
}

func TestSkipNextMatchesBernoulliRate(t *testing.T) {
	src := rng.New(1, 0)
	for _, p := range []float64{0.01, 0.1, 0.5} {
		total := int64(200000)
		var count int64
		for idx := skipNext(src, p, -1); idx < total; idx = skipNext(src, p, idx) {
			count++
		}
		got := float64(count) / float64(total)
		if math.Abs(got-p) > 0.05*p+0.002 {
			t.Fatalf("p=%g: selection rate %g", p, got)
		}
	}
	// p = 1 selects every index.
	if skipNext(src, 1, 5) != 6 {
		t.Fatal("p=1 must advance by exactly 1")
	}
}

func TestSBMStructure(t *testing.T) {
	g, labels, err := SBM(SBMConfig{N: 600, Communities: 3, PIn: 0.2, POut: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 600 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if len(labels.Of) != 600 || labels.NumClasses != 3 {
		t.Fatal("labels malformed")
	}
	// Every vertex has exactly one community (no overlap requested).
	for v, ls := range labels.Of {
		if len(ls) != 1 {
			t.Fatalf("vertex %d has %d labels", v, len(ls))
		}
	}
	// Count within vs across edges; within-rate must dominate.
	var within, across int64
	g.MapEdges(func(u, v uint32) {
		if labels.Of[u][0] == labels.Of[v][0] {
			within++
		} else {
			across++
		}
	})
	if within < 4*across {
		t.Fatalf("community structure weak: within=%d across=%d", within, across)
	}
	// Empirical within-community density close to PIn.
	perBlock := 200.0
	expWithin := 3 * perBlock * (perBlock - 1) / 2 * 0.2
	if math.Abs(float64(within)/2-expWithin) > 0.25*expWithin {
		t.Fatalf("within edges %d far from expectation %.0f", within/2, expWithin)
	}
}

func TestSBMOverlap(t *testing.T) {
	_, labels, err := SBM(SBMConfig{N: 2000, Communities: 5, PIn: 0.05, POut: 0.005, OverlapProb: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, ls := range labels.Of {
		if len(ls) > 1 {
			multi++
		}
		for i := 1; i < len(ls); i++ {
			if ls[i] <= ls[i-1] {
				t.Fatal("labels not sorted/unique")
			}
		}
	}
	// Roughly overlapProb·(1 - 1/k) of vertices should carry two labels.
	want := 2000 * 0.5 * 0.8
	if math.Abs(float64(multi)-want) > 0.2*want {
		t.Fatalf("multi-label count %d far from %f", multi, want)
	}
}

func TestSBMDeterministic(t *testing.T) {
	a, la, err := SBM(SBMConfig{N: 300, Communities: 4, PIn: 0.1, POut: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, lb, err := SBM(SBMConfig{N: 300, Communities: 4, PIn: 0.1, POut: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed different edge counts")
	}
	for v := range la.Of {
		if len(la.Of[v]) != len(lb.Of[v]) {
			t.Fatal("same seed different labels")
		}
	}
}

func TestSBMErrors(t *testing.T) {
	if _, _, err := SBM(SBMConfig{N: 0, Communities: 2}); err == nil {
		t.Fatal("expected N error")
	}
	if _, _, err := SBM(SBMConfig{N: 10, Communities: 2, PIn: 1.5}); err == nil {
		t.Fatal("expected probability error")
	}
}

func TestChungLuPowerLaw(t *testing.T) {
	g, err := ChungLu(ChungLuConfig{N: 5000, AvgDegree: 12, Exponent: 2.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	st := Describe("cl", g)
	if math.Abs(st.AvgDegree-12) > 4 {
		t.Fatalf("avg degree %.1f far from 12", st.AvgDegree)
	}
	// Heavy tail: max degree far above average.
	if st.MaxDegree < 5*int(st.AvgDegree) {
		t.Fatalf("max degree %d not heavy-tailed (avg %.1f)", st.MaxDegree, st.AvgDegree)
	}
	// Early (high-weight) vertices should out-degree late ones on average.
	var early, late float64
	for v := 0; v < 100; v++ {
		early += float64(g.Degree(uint32(v)))
		late += float64(g.Degree(uint32(4900 + v)))
	}
	if early <= 2*late {
		t.Fatalf("degree skew missing: early=%.0f late=%.0f", early, late)
	}
}

func TestChungLuErrors(t *testing.T) {
	if _, err := ChungLu(ChungLuConfig{N: 0, AvgDegree: 5}); err == nil {
		t.Fatal("expected N error")
	}
	if _, err := ChungLu(ChungLuConfig{N: 10, AvgDegree: 5, Exponent: 0.5}); err == nil {
		t.Fatal("expected exponent error")
	}
}

func TestRMATSkew(t *testing.T) {
	g, err := RMAT(RMATConfig{Scale: 11, EdgeFactor: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2048 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	st := Describe("rmat", g)
	if st.MaxDegree < 4*int(st.AvgDegree) {
		t.Fatalf("RMAT not skewed: max=%d avg=%.1f", st.MaxDegree, st.AvgDegree)
	}
}

func TestRMATErrors(t *testing.T) {
	if _, err := RMAT(RMATConfig{Scale: 0, EdgeFactor: 4}); err == nil {
		t.Fatal("expected scale error")
	}
	if _, err := RMAT(RMATConfig{Scale: 5, EdgeFactor: 4, A: 0.8, B: 0.3, C: 0.1}); err == nil {
		t.Fatal("expected probability error")
	}
}

func TestPlantLabels(t *testing.T) {
	g, err := ChungLu(ChungLuConfig{N: 2000, AvgDegree: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	labels := PlantLabels(g, 6, 0.5, 19)
	if labels.NumClasses != 6 {
		t.Fatal("NumClasses wrong")
	}
	labeled := 0
	for _, ls := range labels.Of {
		if len(ls) > 0 {
			labeled++
			if ls[0] < 0 || ls[0] >= 6 {
				t.Fatalf("label out of range: %v", ls)
			}
		}
	}
	if labeled < 500 || labeled > 1500 {
		t.Fatalf("labeled count %d outside expected band", labeled)
	}
}

func TestAllDatasetsGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow in -short mode")
	}
	for _, name := range AllNames() {
		ds, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Graph.NumVertices() == 0 || ds.Graph.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		if err := ds.Graph.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.PaperN == 0 || ds.PaperM == 0 {
			t.Fatalf("%s: missing paper-scale metadata", name)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("expected unknown dataset error")
	}
}

func TestDescribeEmpty(t *testing.T) {
	g, err := ChungLu(ChungLuConfig{N: 10, AvgDegree: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	st := Describe("x", g)
	if st.Name != "x" || st.N != 10 {
		t.Fatal("Describe basic fields wrong")
	}
}
