package core

import (
	"fmt"
	"math"

	"lightne/internal/graph"
	"lightne/internal/par"
	"lightne/internal/sampler"
	"lightne/internal/svd"
)

// MemoryEstimate predicts the peak memory of an Embed run — the planning
// arithmetic behind the paper's evaluation, where sample counts are pushed
// "until it reaches the 1.5TB memory bottleneck" (§5.3) and the affordable
// M under a budget decides embedding quality (Figure 3, §5.2.4).
type MemoryEstimate struct {
	// Trials is the configured sample count M.
	Trials int64
	// ExpectedHeads is E[# samples surviving the downsampling coin].
	ExpectedHeads int64
	// TableBytes is the steady-state hash-table footprint at 7/8 load
	// (power-of-two slots, 16 bytes each, two oriented keys per head upper
	// bound).
	TableBytes int64
	// PeakTableBytes is the table's high-water mark including the grow
	// transient: while a badly-hinted table rehashes to its final capacity,
	// the old half-size slot arrays coexist with the new ones, so the true
	// peak is 1.5x the post-grow footprint (sampler.Stats.PeakTableBytes
	// reports the realized counterpart). Total budgets this, not
	// TableBytes, so the plan stays honest when the size hint is wrong.
	PeakTableBytes int64
	// WalkBufferBytes is the batched walker's pipeline scratch (head
	// records plus wave state/drain buffers); zero unless BatchedWalks.
	WalkBufferBytes int64
	// DecodeBufferBytes is the transient for walking a compressed graph
	// natively: one NeighborCursor decode buffer per worker, each at most
	// (max degree + block size) uint32s (a full-adjacency decode of the
	// highest-degree vertex, rounded up to a whole block). Zero unless
	// BatchedWalks on a compressed graph — the raw-CSR walker reads
	// adjacency in place.
	DecodeBufferBytes int64
	// SparsifierBytes is the CSR holding the drained, trunc-logged matrix.
	// Zero in sketch mode (StreamedSVD): the scaled matrix is never
	// materialized — see StreamBytes.
	SparsifierBytes int64
	// StreamBytes is the drained raw CSR resident while the streamed
	// factorization consumes it chunk by chunk (StreamedSVD only): the same
	// 12 bytes per entry plus row pointers the sparsifier would occupy, but
	// no scaled copy ever coexists with it. Zero in rSVD mode.
	StreamBytes int64
	// DenseBytes covers the factorization's dense working set (the
	// randomized-SVD iterates, or in sketch mode the two sketch accumulators
	// plus test matrices) and the propagation workspace.
	DenseBytes int64
	// GraphBytes is the adjacency storage (offsets, edges, and weights for
	// weighted graphs), excluding the alias tables accounted separately.
	GraphBytes int64
	// AliasTableBytes is the per-vertex Vose alias-table storage weighted
	// batched walking draws from: 12 B per stored arc (8 B acceptance
	// probability + 4 B alias slot). Zero for unweighted graphs.
	AliasTableBytes int64
}

// Total sums all components. Table and sparsifier coexist briefly during
// the drain, so the sum is the honest peak; the table contributes its
// grow-transient high-water mark (PeakTableBytes), not the steady state,
// so a run whose size hint was wrong still fits the reported budget.
func (m MemoryEstimate) Total() int64 {
	return m.PeakTableBytes + m.WalkBufferBytes + m.DecodeBufferBytes +
		m.SparsifierBytes + m.StreamBytes + m.DenseBytes + m.GraphBytes + m.AliasTableBytes
}

// expectedHeadFraction computes E[p_e] over directed arcs for the config's
// downsampling constant (1 when downsampling is off). O(m).
func expectedHeadFraction(g *graph.Graph, cfg Config) float64 {
	if cfg.NoDownsample {
		return 1
	}
	c := cfg.C
	if c <= 0 {
		c = math.Log(float64(g.NumVertices()))
		if c < 1 {
			c = 1
		}
	}
	strengths := g.Strengths()
	var sum float64
	n := g.NumVertices()
	for ui := 0; ui < n; ui++ {
		u := uint32(ui)
		d := g.Degree(u)
		for i := 0; i < d; i++ {
			v := g.Neighbor(u, i)
			sum += sampler.ProbW(c, g.EdgeWeight(u, i), strengths[ui], strengths[v])
		}
	}
	if arcs := float64(g.NumEdges()); arcs > 0 {
		return sum / arcs
	}
	return 1
}

// EstimateMemory predicts an Embed run's peak memory without running it.
// Estimates are upper-bound-flavored (they treat every head as a distinct
// sparsifier entry); realized usage is typically 2-4x lower on graphs with
// heavy sample collision.
func EstimateMemory(g *graph.Graph, cfg Config) (MemoryEstimate, error) {
	if cfg.Dim <= 0 || cfg.T <= 0 {
		return MemoryEstimate{}, fmt.Errorf("lightne: dimension and T must be positive")
	}
	m := cfg.M
	if m <= 0 {
		mult := cfg.SampleMultiple
		if mult <= 0 {
			mult = 1
		}
		m = int64(mult * float64(cfg.T) * float64(g.NumEdges()) / 2)
	}
	frac := expectedHeadFraction(g, cfg)
	heads := int64(float64(m) * frac)
	// Two oriented keys per head, capped by the number of possible entries.
	entries := 2 * heads
	slots := nextPow2(float64(entries) * 8 / 7)
	est := MemoryEstimate{
		Trials:          m,
		ExpectedHeads:   heads,
		TableBytes:      slots * 16,
		PeakTableBytes:  slots * 16 * 3 / 2,
		SparsifierBytes: entries*12 + int64(g.NumVertices()+1)*8,
		AliasTableBytes: g.AliasBytes(),
	}
	// SizeBytes already includes the alias tables for weighted graphs; split
	// them into their own line item so the plan shows what weighted batched
	// walking costs.
	est.GraphBytes = g.SizeBytes() - est.AliasTableBytes
	if cfg.BatchedWalks {
		// Stage-1 head records (24 B each) plus the per-wave buffers: walk
		// states + compaction scratch (2 x 2w x 8 B) and the drain's oriented
		// key/weight pairs (2 x 2w x 8 B), where w heads are in flight; a
		// sharded sink's partition scratch adds one more pair of 2w arrays.
		wave := int64(cfg.WaveSize)
		if wave <= 0 || wave > 1<<22 {
			wave = 1 << 22
		}
		if wave > heads {
			wave = heads
		}
		est.WalkBufferBytes = 24*heads + 64*wave
		if cfg.Shards > 1 {
			est.WalkBufferBytes += 32 * wave
		}
		if g.Compressed() {
			// Walking compressed never materializes the edge array; the only
			// new transient is one cursor decode buffer per worker, sized for
			// a full decode of the hub vertex (plus one block of slack for
			// the lazy path's cache).
			maxDeg := 0
			for u := 0; u < g.NumVertices(); u++ {
				if d := g.Degree(uint32(u)); d > maxDeg {
					maxDeg = d
				}
			}
			est.DecodeBufferBytes = int64(par.Workers()) * int64(maxDeg+g.BlockSize()) * 4
		}
	}
	n := int64(g.NumVertices())
	if cfg.StreamedSVD {
		// Sketch mode never materializes the scaled sparsifier: the drained
		// raw CSR (StreamBytes, same arrays the sparsifier would occupy)
		// streams through bounded transform buffers into the accumulators,
		// so SparsifierBytes moves to StreamBytes and the dense side is the
		// range sketch Y (n×k), the co-range sketch Z (n×l) and the test
		// matrices: 10·s bytes per row for sparse-sign Ω and Ψ, two more
		// dense matrices for Gaussian. Smaller than the rSVD's five n×k
		// whenever d ≥ 16 with the sign default (the planner's strict-lower
		// guarantee); Gaussian is the accuracy cross-check and prices higher.
		est.StreamBytes = est.SparsifierBytes
		est.SparsifierBytes = 0
		k, l := svd.SketchWidths(g.NumVertices(), cfg.Dim, cfg.Oversample)
		est.DenseBytes = n * int64(k+l) * 8
		if cfg.Sketch == svd.SketchGaussian {
			est.DenseBytes *= 2
		} else {
			est.DenseBytes += n * int64(svd.DefaultSignNNZ) * 10
		}
	} else {
		// Randomized SVD keeps ~5 dense n×k float64 matrices (O, Y, B, Z and
		// a temporary).
		k := cfg.Dim + cfg.Oversample
		est.DenseBytes = n * int64(k) * 8 * 5
	}
	// Propagation keeps ~4 n×d in either mode.
	if !cfg.SkipPropagation {
		est.DenseBytes += n * int64(cfg.Dim) * 8 * 4
	}
	return est, nil
}

// MaxAffordableSamples inverts EstimateMemory: the largest M whose
// predicted Total fits the byte budget — the quantity the paper's §5.2.4
// ablation reports (8Tm for NetSMF, 12.5Tm without downsampling, 20Tm with
// it, under 1.5TB). Returns an error if even M = 1 does not fit.
func MaxAffordableSamples(g *graph.Graph, cfg Config, budgetBytes int64) (int64, error) {
	if budgetBytes <= 0 {
		return 0, fmt.Errorf("lightne: budget must be positive")
	}
	fits := func(m int64) bool {
		c := cfg
		c.M = m
		est, err := EstimateMemory(g, c)
		if err != nil {
			return false
		}
		return est.Total() <= budgetBytes
	}
	if !fits(1) {
		return 0, fmt.Errorf("lightne: fixed costs alone exceed the %d-byte budget", budgetBytes)
	}
	// Exponential search then binary search on M.
	lo, hi := int64(1), int64(2)
	for fits(hi) && hi < 1<<50 {
		lo, hi = hi, hi*2
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// nextPow2 rounds up to a power of two (as the hash table does).
func nextPow2(x float64) int64 {
	p := int64(1)
	for float64(p) < x {
		p <<= 1
	}
	return p
}
