package core

import (
	"testing"

	"lightne/internal/gen"
	"lightne/internal/graph"
	"lightne/internal/netsmf"
	"lightne/internal/sampler"
	"lightne/internal/svd"
)

func TestEstimateMemoryBracketsReality(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMConfig{N: 1500, Communities: 6, PIn: 0.05, POut: 0.003, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(16)
	cfg.T = 5
	cfg.SampleMultiple = 2
	cfg.Seed = 3
	est, err := EstimateMemory(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := netsmf.Run(g, netsmf.Config{
		T: cfg.T, M: est.Trials, Dim: cfg.Dim, Downsample: true, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Heads prediction within 10% (it is an expectation, not a bound).
	gotHeads := float64(res.SampleStats.Heads)
	if gotHeads < 0.9*float64(est.ExpectedHeads) || gotHeads > 1.1*float64(est.ExpectedHeads) {
		t.Fatalf("heads %d outside 10%% of estimate %d", res.SampleStats.Heads, est.ExpectedHeads)
	}
	// Table bytes: estimate must be an upper bound within a small factor.
	if res.SampleStats.TableBytes > est.TableBytes {
		t.Fatalf("realized table %d exceeds estimate %d", res.SampleStats.TableBytes, est.TableBytes)
	}
	if est.TableBytes > 8*res.SampleStats.TableBytes {
		t.Fatalf("estimate %d too loose vs realized %d", est.TableBytes, res.SampleStats.TableBytes)
	}
	if est.Total() <= 0 || est.GraphBytes <= 0 || est.DenseBytes <= 0 {
		t.Fatalf("incomplete estimate: %+v", est)
	}
}

// TestPeakBudgetCoversBadlyHintedRun locks down the planner's grow-transient
// semantics: Total budgets PeakTableBytes (1.5x the steady-state table, the
// old-plus-new slot arrays that coexist mid-rehash), so even a run whose
// table hint is absurdly wrong — forcing a full chain of doubling grows —
// must stay within the reported figure, as measured by the realized
// sampler.Stats.PeakTableBytes high-water mark.
func TestPeakBudgetCoversBadlyHintedRun(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMConfig{N: 1200, Communities: 5, PIn: 0.05, POut: 0.003, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(16)
	cfg.T = 5
	cfg.SampleMultiple = 2
	est, err := EstimateMemory(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.PeakTableBytes != est.TableBytes*3/2 {
		t.Fatalf("peak %d is not 1.5x steady state %d", est.PeakTableBytes, est.TableBytes)
	}
	if est.Total() < est.PeakTableBytes {
		t.Fatal("Total must include the grow transient")
	}
	for _, tc := range []struct {
		name   string
		shards int
		run    func(scfg sampler.Config) (sampler.Stats, error)
	}{
		{"plain/shards=1", 1, func(scfg sampler.Config) (sampler.Stats, error) {
			_, stats, err := sampler.Sample(g, scfg)
			return stats, err
		}},
		{"plain/shards=4", 4, func(scfg sampler.Config) (sampler.Stats, error) {
			_, stats, err := sampler.Sample(g, scfg)
			return stats, err
		}},
		{"batched/shards=4", 4, func(scfg sampler.Config) (sampler.Stats, error) {
			_, stats, err := sampler.SampleBatched(g, scfg, 0)
			return stats, err
		}},
	} {
		scfg := sampler.Config{
			T: cfg.T, M: est.Trials, Downsample: true, Seed: 3,
			TableSizeHint: 16, // absurd: forces a grow chain to the real size
			Shards:        tc.shards,
		}
		stats, err := tc.run(scfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if stats.PeakTableBytes <= stats.TableBytes {
			t.Fatalf("%s: hint did not force a grow (peak %d, steady %d)",
				tc.name, stats.PeakTableBytes, stats.TableBytes)
		}
		if stats.PeakTableBytes > est.PeakTableBytes {
			t.Fatalf("%s: realized peak %d exceeds budgeted peak %d",
				tc.name, stats.PeakTableBytes, est.PeakTableBytes)
		}
	}
}

// TestEstimateMemoryBatchedWalkBuffer checks the batched-mode pipeline
// scratch is budgeted (and only then).
func TestEstimateMemoryBatchedWalkBuffer(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMConfig{N: 600, Communities: 4, PIn: 0.06, POut: 0.004, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(16)
	plain, err := EstimateMemory(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.WalkBufferBytes != 0 {
		t.Fatalf("plain mode budgets walk buffers: %d", plain.WalkBufferBytes)
	}
	cfg.BatchedWalks = true
	batched, err := EstimateMemory(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batched.WalkBufferBytes < 24*batched.ExpectedHeads {
		t.Fatalf("walk buffer %d smaller than the head records alone (%d heads)",
			batched.WalkBufferBytes, batched.ExpectedHeads)
	}
	if batched.Total() <= plain.Total() {
		t.Fatal("batched mode must budget strictly more than plain")
	}
	// A smaller wave caps the per-wave buffers.
	cfg.WaveSize = 1024
	smallWave, err := EstimateMemory(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if smallWave.WalkBufferBytes > batched.WalkBufferBytes {
		t.Fatal("shrinking the wave must not enlarge the buffer budget")
	}
}

// TestEstimateMemoryAliasTableBytes checks the planner's alias accounting:
// weighted graphs carry 12 B/arc of Vose alias tables (what weighted
// batched walking draws from), split out of GraphBytes into their own line
// item so the sum still equals the graph's true footprint; unweighted
// graphs budget zero.
func TestEstimateMemoryAliasTableBytes(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMConfig{N: 400, Communities: 4, PIn: 0.06, POut: 0.004, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(8)
	plain, err := EstimateMemory(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.AliasTableBytes != 0 {
		t.Fatalf("unweighted graph budgets alias tables: %d", plain.AliasTableBytes)
	}
	if plain.GraphBytes != g.SizeBytes() {
		t.Fatalf("unweighted GraphBytes %d != SizeBytes %d", plain.GraphBytes, g.SizeBytes())
	}
	// Weighted twin: same arcs, unit-ish weights.
	var arcs []graph.WeightedEdge
	for u := 0; u < g.NumVertices(); u++ {
		d := g.Degree(uint32(u))
		for i := 0; i < d; i++ {
			v := g.Neighbor(uint32(u), i)
			if uint32(u) < v {
				arcs = append(arcs, graph.WeightedEdge{U: uint32(u), V: v, W: 1 + float64(i%3)})
			}
		}
	}
	wg, err := graph.FromWeightedEdges(g.NumVertices(), arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := EstimateMemory(wg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 12 * wg.NumEdges(); weighted.AliasTableBytes != want {
		t.Fatalf("alias bytes %d, want 12 B/arc = %d", weighted.AliasTableBytes, want)
	}
	if weighted.GraphBytes+weighted.AliasTableBytes != wg.SizeBytes() {
		t.Fatalf("GraphBytes %d + AliasTableBytes %d != SizeBytes %d",
			weighted.GraphBytes, weighted.AliasTableBytes, wg.SizeBytes())
	}
}

func TestEstimateMemoryNoDownsample(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMConfig{N: 500, Communities: 4, PIn: 0.08, POut: 0.005, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(8)
	cfg.SampleMultiple = 1
	with, err := EstimateMemory(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoDownsample = true
	without, err := EstimateMemory(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if without.ExpectedHeads < with.ExpectedHeads {
		t.Fatal("downsampling must not increase expected heads")
	}
	if without.ExpectedHeads != without.Trials {
		t.Fatal("without downsampling every trial is a head")
	}
}

func TestMaxAffordableSamples(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMConfig{N: 800, Communities: 4, PIn: 0.06, POut: 0.004, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(16)
	budget := int64(64 << 20) // 64 MB
	m, err := MaxAffordableSamples(g, cfg, budget)
	if err != nil {
		t.Fatal(err)
	}
	if m < 1 {
		t.Fatalf("affordable samples %d", m)
	}
	// The returned M must fit; M+1... the next power-of-two step must not.
	c := cfg
	c.M = m
	est, err := EstimateMemory(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if est.Total() > budget {
		t.Fatalf("returned M=%d does not fit: %d > %d", m, est.Total(), budget)
	}
	c.M = 2 * m
	est2, err := EstimateMemory(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if est2.Total() <= budget {
		t.Fatalf("doubling M still fits (%d <= %d): search stopped early", est2.Total(), budget)
	}
	// A bigger budget affords at least as many samples.
	m2, err := MaxAffordableSamples(g, cfg, 4*budget)
	if err != nil {
		t.Fatal(err)
	}
	if m2 < m {
		t.Fatalf("larger budget affords fewer samples: %d < %d", m2, m)
	}
	// Paper shape: downsampling raises the affordable sample count.
	noDown := cfg
	noDown.NoDownsample = true
	mNoDown, err := MaxAffordableSamples(g, noDown, budget)
	if err != nil {
		t.Fatal(err)
	}
	if mNoDown > m {
		t.Fatalf("downsampling should raise affordable M: %d (on) vs %d (off)", m, mNoDown)
	}
	// Impossible budget errors.
	if _, err := MaxAffordableSamples(g, cfg, 10); err == nil {
		t.Fatal("expected error for absurd budget")
	}
	if _, err := MaxAffordableSamples(g, cfg, 0); err == nil {
		t.Fatal("expected error for zero budget")
	}
}

// TestEstimateMemorySketchStrictlyLower is an acceptance criterion of the
// single-pass factorization: for the sparse-sign default at practical
// dimensions, the planner must predict a strictly lower peak than the
// multi-pass rSVD on the same graph and sample budget. The dense side drops
// from five n×k iterate matrices to the two sketch accumulators (n×k plus
// n×l) and the scaled sparsifier copy disappears entirely — the drained raw
// CSR simply becomes StreamBytes instead of SparsifierBytes.
func TestEstimateMemorySketchStrictlyLower(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMConfig{N: 2000, Communities: 8, PIn: 0.04, POut: 0.003, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{16, 32, 128} {
		cfg := DefaultConfig(d)
		cfg.T = 5
		cfg.SampleMultiple = 2
		ref, err := EstimateMemory(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.StreamedSVD = true
		sk, err := EstimateMemory(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sk.Total() >= ref.Total() {
			t.Fatalf("d=%d: sketch total %d not strictly below rSVD total %d", d, sk.Total(), ref.Total())
		}
		if sk.SparsifierBytes != 0 {
			t.Fatalf("d=%d: sketch mode must not materialize the sparsifier, got %d bytes", d, sk.SparsifierBytes)
		}
		if sk.StreamBytes != ref.SparsifierBytes {
			t.Fatalf("d=%d: StreamBytes %d should equal the raw CSR the rSVD plan calls SparsifierBytes (%d)",
				d, sk.StreamBytes, ref.SparsifierBytes)
		}
		if sk.DenseBytes >= ref.DenseBytes {
			t.Fatalf("d=%d: sketch dense %d not below rSVD dense %d", d, sk.DenseBytes, ref.DenseBytes)
		}
	}
}

// TestMaxAffordableSamplesGrowsInSketchMode: the planning payoff — under the
// same byte budget, the smaller sketch-mode footprint affords strictly more
// PathSampling trials, which is what buys embedding quality (§5.2.4).
func TestMaxAffordableSamplesGrowsInSketchMode(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMConfig{N: 2000, Communities: 8, PIn: 0.04, POut: 0.003, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(32)
	cfg.T = 5
	// Budget exactly what the sketch plan needs for half a million samples:
	// sketch mode then affords at least that many, while the rSVD plan —
	// strictly more bytes at every M — cannot reach it.
	const pivot = 500_000
	scfg := cfg
	scfg.StreamedSVD = true
	scfg.M = pivot
	at, err := EstimateMemory(g, scfg)
	if err != nil {
		t.Fatal(err)
	}
	budget := at.Total()
	mRef, err := MaxAffordableSamples(g, cfg, budget)
	if err != nil {
		t.Fatal(err)
	}
	scfg.M = 0
	mSketch, err := MaxAffordableSamples(g, scfg, budget)
	if err != nil {
		t.Fatal(err)
	}
	if mSketch < pivot {
		t.Fatalf("sketch mode affords %d samples, should cover the %d its own plan was budgeted for", mSketch, pivot)
	}
	if mSketch <= mRef {
		t.Fatalf("sketch mode affords %d samples, rSVD mode %d — expected strictly more", mSketch, mRef)
	}
}

// TestEstimateMemoryGaussianPricesHigherThanSign pins the honest accounting
// for the dense cross-check kind: Gaussian test matrices double the
// accumulator-width allocation, so the planner must charge the Gaussian
// sketch more than the sparse-sign default.
func TestEstimateMemoryGaussianPricesHigherThanSign(t *testing.T) {
	g, _, err := gen.SBM(gen.SBMConfig{N: 1500, Communities: 6, PIn: 0.05, POut: 0.003, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(32)
	cfg.T = 5
	cfg.StreamedSVD = true
	sign, err := EstimateMemory(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sketch = svd.SketchGaussian
	gauss, err := EstimateMemory(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gauss.DenseBytes <= sign.DenseBytes {
		t.Fatalf("gaussian dense %d should exceed sign dense %d", gauss.DenseBytes, sign.DenseBytes)
	}
}
