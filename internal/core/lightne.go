// Package core implements the LightNE pipeline (paper §3.2): Step 1 runs
// NetSMF with edge downsampling to factorize a sparse estimate of the NetMF
// matrix, and Step 2 enhances the resulting embedding with ProNE's spectral
// propagation. Per-stage wall-clock timing is recorded to reproduce the
// paper's running-time breakdown (Table 5).
package core

import (
	"fmt"
	"time"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/netsmf"
	"lightne/internal/prone"
	"lightne/internal/sampler"
	"lightne/internal/svd"
)

// Config controls a LightNE run.
type Config struct {
	// T is the context window size (paper default 10; the paper's
	// cross-validated choices are 5 for LiveJournal/Hyperlink-PLD, 1 for
	// Friendster, 2 for the 100B-edge graphs).
	T int
	// SampleMultiple sets M = SampleMultiple·T·m. The paper's presets are
	// 0.1 (LightNE-Small) and 20 (LightNE-Large). Ignored if M > 0.
	SampleMultiple float64
	// M optionally fixes the number of PathSampling trials directly.
	M int64
	// Dim is the embedding dimension d (paper: 128 for task graphs, 32 for
	// the 100B-edge graphs).
	Dim int
	// NegSamples is b (default 1).
	NegSamples float64
	// NoDownsample disables LightNE's edge downsampling (for ablations;
	// the zero value keeps downsampling on, as LightNE always runs with it).
	NoDownsample bool
	// C overrides the downsampling constant (<= 0 → log n).
	C float64
	// SkipPropagation omits Step 2, as the paper does for the very large
	// graphs (§5.3).
	SkipPropagation bool
	// Propagation parameterizes Step 2; zero value → ProNE defaults.
	Propagation prone.PropagationConfig
	// Seed fixes all randomness.
	Seed uint64
	// Oversample and PowerIters tune the randomized SVD (0,0 = paper).
	Oversample int
	PowerIters int
	// BatchedWalks selects the radix-batched walk schedule (paper §4.2
	// future work); weighted graphs walk natively via alias tables.
	BatchedWalks bool
	// WaveSize caps the in-flight heads per wave of the batched walker's
	// enumerate→walk→drain pipeline; <= 0 picks the maximum (2^22). Only
	// meaningful with BatchedWalks. The embedding is bit-identical for
	// every setting — the knob trades walk-state footprint against
	// pipeline overlap granularity.
	WaveSize int
	// Shards splits the sample-aggregation table across a power of two of
	// sub-tables routed by high hash bits; <= 1 keeps the single shared
	// table. The sparsifier (and hence the embedding) is bit-identical for
	// every setting — sharding only confines grow-lock stalls when the
	// capacity hint is wrong.
	Shards int
	// StreamedSVD factorizes with the single-pass sketch instead of the
	// multi-pass randomized SVD: the sparsifier streams out of the hash
	// table through the estimator scaling directly into sketch accumulators,
	// so the scaled matrix is never resident and the dense working set
	// shrinks (see EstimateMemory's sketch mode). PowerIters is ignored;
	// accuracy is bought with oversampling instead.
	StreamedSVD bool
	// Sketch picks the StreamedSVD test-matrix family (zero value:
	// svd.SketchSparseSign, the cheap default; svd.SketchGaussian is the
	// dense cross-check and costs more memory than the multi-pass path).
	Sketch svd.SketchKind
}

// DefaultConfig returns the paper's default configuration at dimension d:
// T = 10, M = 1·T·m, downsampling on, spectral propagation on.
func DefaultConfig(d int) Config {
	return Config{T: 10, SampleMultiple: 1, Dim: d, NegSamples: 1,
		Propagation: prone.DefaultPropagation()}
}

// SmallConfig is the paper's LightNE-Small preset (M = 0.1·T·m).
func SmallConfig(d int) Config {
	c := DefaultConfig(d)
	c.SampleMultiple = 0.1
	return c
}

// LargeConfig is the paper's LightNE-Large preset (M = 20·T·m).
func LargeConfig(d int) Config {
	c := DefaultConfig(d)
	c.SampleMultiple = 20
	return c
}

// Timing is the three-stage breakdown reported in Table 5.
type Timing struct {
	Sparsifier  time.Duration
	SVD         time.Duration
	Propagation time.Duration
}

// Total returns the end-to-end time.
func (t Timing) Total() time.Duration { return t.Sparsifier + t.SVD + t.Propagation }

// Result bundles the embedding with diagnostics.
type Result struct {
	// Embedding is the final n×d embedding.
	Embedding *dense.Matrix
	// Initial is the NetSMF embedding before spectral propagation (equal to
	// Embedding when propagation is skipped).
	Initial *dense.Matrix
	// Sigma holds the singular values of the factorized sparsifier.
	Sigma []float64
	// SparsifierNNZ counts nonzeros in the trunc-logged sparsifier.
	SparsifierNNZ int64
	// SampleStats reports the Step-1 sampling pass.
	SampleStats sampler.Stats
	// Timing is the per-stage breakdown.
	Timing Timing
}

// Embed runs LightNE on g.
func Embed(g *graph.Graph, cfg Config) (*Result, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("lightne: dimension must be positive, got %d", cfg.Dim)
	}
	if cfg.T <= 0 {
		return nil, fmt.Errorf("lightne: window size T must be positive, got %d", cfg.T)
	}
	m := cfg.M
	if m <= 0 {
		mult := cfg.SampleMultiple
		if mult <= 0 {
			mult = 1
		}
		m = netsmf.MFromMultiple(g, cfg.T, mult)
	}

	nres, err := netsmf.Run(g, netsmf.Config{
		T:            cfg.T,
		M:            m,
		Dim:          cfg.Dim,
		NegSamples:   cfg.NegSamples,
		Downsample:   !cfg.NoDownsample,
		C:            cfg.C,
		Seed:         cfg.Seed,
		Oversample:   cfg.Oversample,
		PowerIters:   cfg.PowerIters,
		BatchedWalks: cfg.BatchedWalks,
		WaveSize:     cfg.WaveSize,
		Shards:       cfg.Shards,
		StreamedSVD:  cfg.StreamedSVD,
		Sketch:       cfg.Sketch,
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Embedding:     nres.Embedding,
		Initial:       nres.Embedding,
		Sigma:         nres.Sigma,
		SparsifierNNZ: nres.SparsifierNNZ,
		SampleStats:   nres.SampleStats,
		Timing: Timing{
			Sparsifier: nres.Timing.Sparsifier,
			SVD:        nres.Timing.SVD,
		},
	}
	if cfg.SkipPropagation {
		return res, nil
	}

	prop := cfg.Propagation
	if prop.Order == 0 {
		prop = prone.DefaultPropagation()
	}
	start := time.Now()
	enhanced, err := prone.Propagate(g, nres.Embedding, prop)
	if err != nil {
		return nil, fmt.Errorf("lightne: propagation: %w", err)
	}
	res.Timing.Propagation = time.Since(start)
	res.Embedding = enhanced
	return res, nil
}
