package core

import (
	"math"
	"testing"

	"lightne/internal/eval"
	"lightne/internal/gen"
	"lightne/internal/graph"
	"lightne/internal/prone"
)

func sbm(t *testing.T) (*graph.Graph, *gen.Labels) {
	t.Helper()
	g, labels, err := gen.SBM(gen.SBMConfig{
		N: 1200, Communities: 6, PIn: 0.04, POut: 0.003, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, labels
}

func TestEmbedShapesAndTimings(t *testing.T) {
	g, _ := sbm(t)
	cfg := DefaultConfig(16)
	cfg.T = 5
	res, err := Embed(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding.Rows != g.NumVertices() || res.Embedding.Cols != 16 {
		t.Fatalf("shape %dx%d", res.Embedding.Rows, res.Embedding.Cols)
	}
	if res.Timing.Sparsifier <= 0 || res.Timing.SVD <= 0 || res.Timing.Propagation <= 0 {
		t.Fatalf("incomplete timing: %+v", res.Timing)
	}
	if res.Timing.Total() < res.Timing.SVD {
		t.Fatal("Total must cover all stages")
	}
	if res.Initial == res.Embedding {
		t.Fatal("propagated embedding should differ from initial")
	}
	for _, v := range res.Embedding.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("NaN/Inf in embedding")
		}
	}
}

func TestEmbedSkipPropagation(t *testing.T) {
	g, _ := sbm(t)
	cfg := SmallConfig(8)
	cfg.T = 3
	cfg.SkipPropagation = true
	res, err := Embed(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Propagation != 0 {
		t.Fatal("propagation timing should be zero when skipped")
	}
	if res.Initial != res.Embedding {
		t.Fatal("without propagation, Initial and Embedding must be identical")
	}
}

func TestEmbedClassificationQuality(t *testing.T) {
	// The headline integration check: LightNE embeddings classify the
	// planted SBM communities far above chance, and propagation does not
	// destroy the initial embedding's quality.
	g, labels := sbm(t)
	cfg := DefaultConfig(16)
	cfg.T = 5
	cfg.SampleMultiple = 2
	res, err := Embed(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	final, err := eval.NodeClassification(res.Embedding, labels.Of, labels.NumClasses, 0.3, 5, eval.DefaultTrain())
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / float64(labels.NumClasses)
	if final.MicroF1 < 3*chance {
		t.Fatalf("LightNE micro-F1 %.3f not well above chance %.3f", final.MicroF1, chance)
	}
}

func TestLightNEBeatsInitialNetSMFAtLowSamples(t *testing.T) {
	// The paper's core claim (§5.2.3): spectral propagation lifts a cheap
	// NetSMF embedding. At a very low sample budget the initial embedding
	// is noisy; propagation must improve classification.
	g, labels := sbm(t)
	cfg := SmallConfig(16)
	cfg.T = 5
	res, err := Embed(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := eval.NodeClassification(res.Initial, labels.Of, labels.NumClasses, 0.3, 5, eval.DefaultTrain())
	if err != nil {
		t.Fatal(err)
	}
	final, err := eval.NodeClassification(res.Embedding, labels.Of, labels.NumClasses, 0.3, 5, eval.DefaultTrain())
	if err != nil {
		t.Fatal(err)
	}
	if final.MicroF1 < initial.MicroF1-0.02 {
		t.Fatalf("propagation hurt quality: %.3f -> %.3f", initial.MicroF1, final.MicroF1)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	g, _ := sbm(t)
	cfg := SmallConfig(8)
	cfg.T = 3
	cfg.Seed = 42
	a, err := Embed(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Embed(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Embedding.Data {
		if a.Embedding.Data[i] != b.Embedding.Data[i] {
			t.Fatal("same seed produced different embeddings")
		}
	}
}

func TestEmbedErrors(t *testing.T) {
	g, _ := sbm(t)
	if _, err := Embed(g, Config{T: 5, Dim: 0}); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := Embed(g, Config{T: 0, Dim: 8}); err == nil {
		t.Fatal("expected T error")
	}
	empty, err := graph.FromEdges(5, nil, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Embed(empty, DefaultConfig(4)); err == nil {
		t.Fatal("expected empty-graph error")
	}
}

func TestConfigPresets(t *testing.T) {
	small, large := SmallConfig(32), LargeConfig(32)
	if small.SampleMultiple != 0.1 || large.SampleMultiple != 20 {
		t.Fatalf("presets wrong: %g %g", small.SampleMultiple, large.SampleMultiple)
	}
	def := DefaultConfig(32)
	if def.T != 10 || def.Dim != 32 {
		t.Fatalf("default config wrong: %+v", def)
	}
	if def.Propagation != prone.DefaultPropagation() {
		t.Fatal("default propagation mismatch")
	}
}

// TestEmbedStreamedSVD runs the full pipeline — sampling, streamed single-pass
// factorization, spectral propagation — through the public Config knob and
// checks the result is a usable embedding of the right shape whose community
// structure survives as well as the multi-pass path's.
func TestEmbedStreamedSVD(t *testing.T) {
	g, labels := sbm(t)
	cfg := DefaultConfig(16)
	cfg.T = 5
	cfg.StreamedSVD = true
	res, err := Embed(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding.Rows != g.NumVertices() || res.Embedding.Cols != 16 {
		t.Fatalf("shape %dx%d", res.Embedding.Rows, res.Embedding.Cols)
	}
	for _, v := range res.Embedding.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("NaN/Inf in streamed embedding")
		}
	}
	cls, err := eval.NodeClassification(res.Embedding, labels.Of, labels.NumClasses, 0.3, 5, eval.DefaultTrain())
	if err != nil {
		t.Fatal(err)
	}
	if chance := 1.0 / float64(labels.NumClasses); cls.MicroF1 < 3*chance {
		t.Fatalf("streamed embedding micro-F1 %.3f barely above chance %.3f", cls.MicroF1, chance)
	}
}
