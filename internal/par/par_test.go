package par

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 5000, 100001} {
		seen := make([]int32, n)
		For(n, 16, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForRangeDisjointCover(t *testing.T) {
	n := 123457
	seen := make([]int32, n)
	ForRange(n, 100, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestWorkerForWorkerIndexInRange(t *testing.T) {
	n := 50000
	p := Workers()
	var visited int64
	WorkerFor(n, 64, func(worker, lo, hi int) {
		if worker < 0 || worker >= p {
			t.Errorf("worker index %d out of [0,%d)", worker, p)
		}
		atomic.AddInt64(&visited, int64(hi-lo))
	})
	if visited != int64(n) {
		t.Fatalf("visited %d iterations, want %d", visited, n)
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Fatalf("got %d %d %d", a, b, c)
	}
	Do() // must not hang or panic
}

func TestReduceFloat64MatchesSequential(t *testing.T) {
	f := func(n uint16) bool {
		m := int(n%10000) + 1
		var want float64
		for i := 0; i < m; i++ {
			want += float64(i) * 0.5
		}
		got := ReduceFloat64(m, 32, func(i int) float64 { return float64(i) * 0.5 })
		return math.Abs(got-want) < 1e-6*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksCoverDisjoint(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 2048, 2049, 123457} {
		for _, grain := range []int{0, 1, 3, 100, 4096} {
			bounds := Blocks(n, grain)
			if bounds[0] != 0 || bounds[len(bounds)-1] != n {
				t.Fatalf("n=%d grain=%d: bad endpoints %v", n, grain, bounds)
			}
			for b := 1; b < len(bounds); b++ {
				if bounds[b] <= bounds[b-1] {
					t.Fatalf("n=%d grain=%d: non-increasing bounds %v", n, grain, bounds)
				}
			}
		}
	}
}

func TestForBlocksVisitsEachBlockOnce(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	n := 100003
	bounds := Blocks(n, 64)
	visits := make([]int32, len(bounds)-1)
	covered := make([]int32, n)
	ForBlocks(bounds, func(b, lo, hi int) {
		atomic.AddInt32(&visits[b], 1)
		if lo != bounds[b] || hi != bounds[b+1] {
			t.Errorf("block %d got [%d,%d) want [%d,%d)", b, lo, hi, bounds[b], bounds[b+1])
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for b, c := range visits {
		if c != 1 {
			t.Fatalf("block %d visited %d times", b, c)
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

// TestReduceFloat64ChunkGeometry is the regression test for the partial-sum
// indexing bug: ReduceFloat64 used to re-derive ForRange's chunk geometry and
// index partials by lo/size, silently corrupting sums whenever the two
// disagreed. Sweeping odd n/grain combinations with integer-valued terms
// makes any double count or dropped chunk an exact mismatch.
func TestReduceFloat64ChunkGeometry(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	for _, n := range []int{1, 2, 3, 7, 31, 33, 255, 257, 1023, 4097, 65537, 100003} {
		for _, grain := range []int{1, 2, 3, 5, 7, 13, 100, 1001, 4096} {
			want := float64(n) * float64(n-1) / 2
			got := ReduceFloat64(n, grain, func(i int) float64 { return float64(i) })
			if got != want {
				t.Fatalf("n=%d grain=%d: got %g want %g", n, grain, got, want)
			}
		}
	}
}

func TestReduceInt64(t *testing.T) {
	n := 100000
	got := ReduceInt64(n, 0, func(i int) int64 { return int64(i) })
	want := int64(n) * int64(n-1) / 2
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
	if ReduceInt64(0, 0, func(int) int64 { return 1 }) != 0 {
		t.Fatal("empty reduce should be 0")
	}
}

func TestMaxInt64(t *testing.T) {
	vals := []int64{3, 9, 1, 9, 2, 8, 7}
	got := MaxInt64(len(vals), 2, math.MinInt64, func(i int) int64 { return vals[i] })
	if got != 9 {
		t.Fatalf("got %d want 9", got)
	}
	if MaxInt64(0, 0, -5, nil) != -5 {
		t.Fatal("empty max should return identity")
	}
}

func TestExclusiveScan(t *testing.T) {
	counts := []int64{3, 0, 2, 5}
	total := ExclusiveScan(counts)
	if total != 10 {
		t.Fatalf("total=%d want 10", total)
	}
	want := []int64{0, 3, 3, 5}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts[%d]=%d want %d", i, counts[i], want[i])
		}
	}
	if ExclusiveScan(nil) != 0 {
		t.Fatal("empty scan should be 0")
	}
}

func TestExclusiveScanProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		orig := make([]int64, len(raw))
		var want int64
		for i, v := range raw {
			orig[i] = int64(v)
			want += int64(v)
		}
		scanned := append([]int64(nil), orig...)
		total := ExclusiveScan(scanned)
		if total != want {
			return false
		}
		var run int64
		for i := range orig {
			if scanned[i] != run {
				return false
			}
			run += orig[i]
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestExclusiveScanDifferential proves the parallel scan bit-identical to
// the sequential scan over randomized lengths and grains, including the
// degenerate geometries (n = 0, n = 1, n below the grain, n below the worker
// count, and n that forces many blocks).
func TestExclusiveScanDifferential(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	s := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	lengths := []int{0, 1, 2, 3, 7, 8, 100, 1000, 65537, 200000}
	for i := 0; i < 40; i++ {
		lengths = append(lengths, int(next()%300000))
	}
	grains := []int{1, 2, 7, 64, 1000, 200000, scanGrain, 0 /* default */}
	for _, n := range lengths {
		orig := make([]int64, n)
		for i := range orig {
			// Mix of zeros, small and large values, including negatives
			// (the scan is defined for any int64 summands).
			v := int64(next() % 1000)
			if v > 900 {
				v = -v
			}
			if v < 100 {
				v = 0
			}
			orig[i] = v
		}
		want := append([]int64(nil), orig...)
		wantTotal := exclusiveScanSeq(want)
		for _, grain := range grains {
			got := append([]int64(nil), orig...)
			gotTotal := exclusiveScan(got, grain)
			if gotTotal != wantTotal {
				t.Fatalf("n=%d grain=%d: total %d want %d", n, grain, gotTotal, wantTotal)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d grain=%d: scan[%d]=%d want %d", n, grain, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelPathsUnderRaisedGOMAXPROCS forces the multi-worker code paths
// even on single-CPU machines (GOMAXPROCS may exceed the core count).
func TestParallelPathsUnderRaisedGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	if Workers() != 8 {
		t.Fatalf("Workers()=%d want 8", Workers())
	}
	n := 100000
	seen := make([]int32, n)
	For(n, 16, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}

	var visited int64
	WorkerFor(n, 64, func(worker, lo, hi int) {
		if worker < 0 || worker >= 8 {
			t.Errorf("worker %d out of range", worker)
		}
		atomic.AddInt64(&visited, int64(hi-lo))
	})
	if visited != int64(n) {
		t.Fatalf("visited %d want %d", visited, n)
	}

	var want float64
	for i := 0; i < n; i++ {
		want += float64(i)
	}
	got := ReduceFloat64(n, 32, func(i int) float64 { return float64(i) })
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("parallel reduce %g want %g", got, want)
	}

	if s := ReduceInt64(n, 16, func(i int) int64 { return 1 }); s != int64(n) {
		t.Fatalf("parallel ReduceInt64 %d", s)
	}
	if m := MaxInt64(n, 16, math.MinInt64, func(i int) int64 { return int64(i) }); m != int64(n-1) {
		t.Fatalf("parallel MaxInt64 %d", m)
	}

	var a, b int32
	Do(func() { atomic.StoreInt32(&a, 1) }, func() { atomic.StoreInt32(&b, 1) })
	if a != 1 || b != 1 {
		t.Fatal("parallel Do incomplete")
	}
}

// TestMaxFloat64MatchesSequential: the parallel max must equal the serial
// fold exactly for every geometry — max is order-independent.
func TestMaxFloat64MatchesSequential(t *testing.T) {
	vals := make([]float64, 100001)
	x := 1.0
	for i := range vals {
		x = math.Mod(x*1.3+0.7, 1000) // deterministic, sign-varying
		vals[i] = x - 500
	}
	for _, n := range []int{0, 1, 7, 1000, len(vals)} {
		for _, grain := range []int{1, 64, 1 << 14} {
			for _, procs := range []int{1, 4} {
				prev := runtime.GOMAXPROCS(procs)
				want := math.Inf(-1)
				for i := 0; i < n; i++ {
					if vals[i] > want {
						want = vals[i]
					}
				}
				if n == 0 {
					want = math.Inf(-1)
				}
				got := MaxFloat64(n, grain, math.Inf(-1), func(i int) float64 { return vals[i] })
				runtime.GOMAXPROCS(prev)
				if got != want {
					t.Fatalf("n=%d grain=%d procs=%d: got %v want %v", n, grain, procs, got, want)
				}
			}
		}
	}
	// The identity floors the result for empty and all-smaller inputs.
	if got := MaxFloat64(0, 16, 42, func(int) float64 { return 0 }); got != 42 {
		t.Fatalf("empty: got %v want identity 42", got)
	}
	if got := MaxFloat64(10, 4, 42, func(i int) float64 { return float64(i) }); got != 42 {
		t.Fatalf("identity dominates: got %v want 42", got)
	}
}

func TestDetBoundsPureFunctionOfN(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 123457} {
		runtime.GOMAXPROCS(1)
		a := DetBounds(n)
		runtime.GOMAXPROCS(4)
		b := DetBounds(n)
		if len(a) != len(b) {
			t.Fatalf("n=%d: bounds depend on GOMAXPROCS", n)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: bounds depend on GOMAXPROCS at %d", n, i)
			}
		}
		// Cover and order.
		if a[0] != 0 || a[len(a)-1] != n && n > 0 {
			t.Fatalf("n=%d: bad endpoints %v", n, a)
		}
		for i := 1; i < len(a); i++ {
			if a[i] <= a[i-1] {
				t.Fatalf("n=%d: non-increasing bounds %v", n, a)
			}
		}
	}
}

func TestReduceFloat64DetBitIdenticalAcrossWorkers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, n := range []int{1, 63, 64, 65, 1000, 123457} {
		vals := make([]float64, n)
		s := uint64(12345)
		for i := range vals {
			s = s*6364136223846793005 + 1442695040888963407
			vals[i] = float64(int64(s>>20)) * 1e-9
		}
		var ref float64
		first := true
		for _, procs := range []int{1, 2, 4} {
			runtime.GOMAXPROCS(procs)
			got := ReduceFloat64Det(n, func(i int) float64 { return vals[i] })
			if first {
				ref = got
				first = false
				continue
			}
			if got != ref {
				t.Fatalf("n=%d procs=%d: %v != %v", n, procs, got, ref)
			}
		}
		// Sanity: close to the sequential sum.
		var seq float64
		for _, v := range vals {
			seq += v
		}
		if math.Abs(ref-seq) > 1e-6*math.Abs(seq)+1e-12 {
			t.Fatalf("n=%d: det sum %v far from sequential %v", n, ref, seq)
		}
	}
}
