// Package par provides lightweight data-parallel primitives used throughout
// the LightNE system: a grained parallel-for, parallel reductions, and
// prefix sums. It is the Go substitute for the bulk-parallel operations the
// paper obtains from GBBS/Ligra (fork-join with work stealing).
//
// All primitives degrade gracefully to sequential execution when
// GOMAXPROCS is 1 or the input is below the grain size, so small inputs pay
// no goroutine overhead.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the minimum number of loop iterations a single worker
// processes per chunk. Chosen so that per-chunk scheduling overhead is well
// under 1% for trivial loop bodies.
const DefaultGrain = 2048

// Workers returns the degree of parallelism primitives in this package use.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs body(i) for every i in [0, n) in parallel, splitting the index
// space into contiguous chunks of at least grain iterations. If grain <= 0,
// DefaultGrain is used. body must be safe to call concurrently for distinct
// indices.
func For(n, grain int, body func(i int)) {
	ForRange(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Blocks splits [0, n) into contiguous blocks and returns the boundary
// offsets: block b is [bounds[b], bounds[b+1]), bounds[0] == 0 and
// bounds[len(bounds)-1] == n. Every block except possibly the last holds at
// least grain iterations (DefaultGrain if grain <= 0), and the block count
// targets ~4 blocks per worker for load balance.
//
// Blocks is the single source of truth for this package's chunk geometry:
// two-pass algorithms (count / scan / fill, as in the hash-table drain) must
// compute bounds once and reuse them for both passes so per-block indices
// line up, rather than re-deriving the geometry.
func Blocks(n, grain int) []int {
	if n <= 0 {
		return []int{0}
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	p := Workers()
	chunks := p * 4
	if maxChunks := (n + grain - 1) / grain; chunks > maxChunks {
		chunks = maxChunks
	}
	if p == 1 || chunks <= 1 {
		return []int{0, n}
	}
	size := (n + chunks - 1) / chunks
	nb := (n + size - 1) / size
	bounds := make([]int, nb+1)
	for b := 1; b < nb; b++ {
		bounds[b] = b * size
	}
	bounds[nb] = n
	return bounds
}

// ForBlocks runs body(b, lo, hi) in parallel for every block of a boundary
// slice produced by Blocks. The dense block index b lets the body write into
// per-block scratch (counts, partial sums) without re-deriving the geometry.
func ForBlocks(bounds []int, body func(b, lo, hi int)) {
	nb := len(bounds) - 1
	if nb <= 0 {
		return
	}
	p := Workers()
	if p == 1 || nb == 1 {
		for b := 0; b < nb; b++ {
			body(b, bounds[b], bounds[b+1])
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	workers := p
	if workers > nb {
		workers = nb
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(atomic.AddInt64(&next, 1)) - 1
				if b >= nb {
					return
				}
				body(b, bounds[b], bounds[b+1])
			}
		}()
	}
	wg.Wait()
}

// ForRange runs body(lo, hi) over disjoint contiguous subranges covering
// [0, n). It is the chunked form of For: use it when the body can amortize
// per-chunk setup (e.g. a local RNG or buffer) across many iterations.
func ForRange(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if Workers() == 1 || n <= grain {
		body(0, n)
		return
	}
	bounds := Blocks(n, grain)
	if len(bounds) == 2 {
		body(0, n)
		return
	}
	ForBlocks(bounds, func(_, lo, hi int) { body(lo, hi) })
}

// WorkerFor runs body(worker, lo, hi) like ForRange but additionally passes
// a dense worker index in [0, Workers()) so the body can use per-worker
// scratch state (RNGs, buffers) without allocation or contention. Multiple
// chunks may be processed by the same worker index, but two chunks never run
// concurrently under the same worker index.
func WorkerFor(n, grain int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	p := Workers()
	if p == 1 || n <= grain {
		body(0, 0, n)
		return
	}
	chunks := p * 4
	if maxChunks := (n + grain - 1) / grain; chunks > maxChunks {
		chunks = maxChunks
	}
	if chunks <= 1 {
		body(0, 0, n)
		return
	}
	var next int64
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	workers := p
	if workers > chunks {
		workers = chunks
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				lo := c * size
				if lo >= n {
					return
				}
				hi := lo + size
				if hi > n {
					hi = n
				}
				body(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// Do runs the given functions concurrently and waits for all of them.
func Do(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if len(fns) == 1 || Workers() == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns) - 1)
	for _, fn := range fns[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}

// ReduceFloat64 computes the sum of f(i) for i in [0, n) in parallel.
// Summation order within a block is sequential and blocks are combined in
// block order, so the result is deterministic for a fixed n, grain and
// worker count. Per-block partials are indexed by the dense block index
// ForBlocks supplies, so the reduction cannot drift out of sync with the
// chunking policy.
func ReduceFloat64(n, grain int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if Workers() == 1 || n <= grain {
		var s float64
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	bounds := Blocks(n, grain)
	partial := make([]float64, len(bounds)-1)
	ForBlocks(bounds, func(b, lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[b] = s
	})
	var s float64
	for _, v := range partial {
		s += v
	}
	return s
}

// detBlocks is the fixed block count of the deterministic reduction. It is a
// constant — never derived from Workers() — so the block geometry, and with it
// every float rounding sequence, is a pure function of n.
const detBlocks = 64

// DetBounds returns the block boundaries of the deterministic reduction
// geometry for n items: at most detBlocks contiguous blocks of equal ceiling
// size. Unlike Blocks, the result depends only on n, never on GOMAXPROCS, so
// algorithms that accumulate floats per block and combine block partials in a
// fixed order produce bit-identical results for every worker count.
func DetBounds(n int) []int {
	if n <= 0 {
		return []int{0}
	}
	nb := detBlocks
	if nb > n {
		nb = n
	}
	size := (n + nb - 1) / nb
	nb = (n + size - 1) / size
	bounds := make([]int, nb+1)
	for b := 1; b < nb; b++ {
		bounds[b] = b * size
	}
	bounds[nb] = n
	return bounds
}

// ReduceFloat64Det computes the sum of f(i) for i in [0, n) with a result
// that is bit-identical for every GOMAXPROCS: blocks come from DetBounds
// (a pure function of n), each block sums sequentially, and the per-block
// partials combine in a fixed pairwise tree. Use it wherever a float total
// feeds a determinism contract — e.g. the weighted volume that scales the
// sparsifier — and ReduceFloat64 (whose geometry tracks the worker count)
// everywhere else.
func ReduceFloat64Det(n int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	bounds := DetBounds(n)
	nb := len(bounds) - 1
	partial := make([]float64, nb)
	ForBlocks(bounds, func(b, lo, hi int) {
		var s float64
		for i := lo; i < hi; i++ {
			s += f(i)
		}
		partial[b] = s
	})
	// Fixed pairwise tree: pairing depends only on nb (hence only on n).
	for stride := 1; stride < nb; stride *= 2 {
		for lo := 0; lo+stride < nb; lo += 2 * stride {
			partial[lo] += partial[lo+stride]
		}
	}
	return partial[0]
}

// ReduceInt64 computes the sum of f(i) for i in [0, n) in parallel.
func ReduceInt64(n, grain int, f func(i int) int64) int64 {
	if n <= 0 {
		return 0
	}
	var s int64
	ForRange(n, grain, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += f(i)
		}
		atomic.AddInt64(&s, local)
	})
	return s
}

// MaxInt64 computes the maximum of f(i) for i in [0, n) in parallel.
// It returns the provided identity when n <= 0.
func MaxInt64(n, grain int, identity int64, f func(i int) int64) int64 {
	if n <= 0 {
		return identity
	}
	var mu sync.Mutex
	best := identity
	ForRange(n, grain, func(lo, hi int) {
		local := identity
		for i := lo; i < hi; i++ {
			if v := f(i); v > local {
				local = v
			}
		}
		mu.Lock()
		if local > best {
			best = local
		}
		mu.Unlock()
	})
	return best
}

// MaxFloat64 computes the maximum of f(i) for i in [0, n) in parallel.
// It returns the provided identity when n <= 0. Max is order-independent,
// so the result is exact and schedule-independent (unlike float sums).
func MaxFloat64(n, grain int, identity float64, f func(i int) float64) float64 {
	if n <= 0 {
		return identity
	}
	var mu sync.Mutex
	best := identity
	ForRange(n, grain, func(lo, hi int) {
		local := identity
		for i := lo; i < hi; i++ {
			if v := f(i); v > local {
				local = v
			}
		}
		mu.Lock()
		if local > best {
			best = local
		}
		mu.Unlock()
	})
	return best
}

// scanGrain is the minimum per-block length for the parallel scan. Prefix
// sums are memory-bound, so blocks are kept larger than DefaultGrain to make
// the two passes worth their scheduling overhead.
const scanGrain = 4 * DefaultGrain

// ExclusiveScan replaces counts with its exclusive prefix sum and returns the
// total. counts[i] on return is the sum of the original counts[0:i].
//
// Large inputs scan in parallel with the standard two-pass scheme on the
// package's block geometry: per-block sums (ForBlocks), a sequential scan of
// the block sums, then per-block local scans seeded with the block offsets.
// Integer addition is associative, so the result is bit-identical to the
// sequential scan for every input, geometry and worker count — proven by the
// differential tests in par_test.go.
func ExclusiveScan(counts []int64) int64 {
	return exclusiveScan(counts, scanGrain)
}

// exclusiveScan is ExclusiveScan with an explicit grain, split out so tests
// can drive odd geometries (n < grain, n < workers, single block).
func exclusiveScan(counts []int64, grain int) int64 {
	n := len(counts)
	if grain <= 0 {
		grain = scanGrain
	}
	if Workers() == 1 || n <= grain {
		return exclusiveScanSeq(counts)
	}
	bounds := Blocks(n, grain)
	nb := len(bounds) - 1
	if nb <= 1 {
		return exclusiveScanSeq(counts)
	}
	sums := make([]int64, nb)
	ForBlocks(bounds, func(b, lo, hi int) {
		var s int64
		for i := lo; i < hi; i++ {
			s += counts[i]
		}
		sums[b] = s
	})
	total := exclusiveScanSeq(sums) // sums now holds per-block offsets
	ForBlocks(bounds, func(b, lo, hi int) {
		run := sums[b]
		for i := lo; i < hi; i++ {
			c := counts[i]
			counts[i] = run
			run += c
		}
	})
	return total
}

// exclusiveScanSeq is the sequential scan, used directly for small inputs and
// for the block-sum pass of the parallel scan.
func exclusiveScanSeq(counts []int64) int64 {
	var total int64
	for i, c := range counts {
		counts[i] = total
		total += c
	}
	return total
}
