package netsmf

import (
	"math"
	"testing"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/sampler"
)

// exactWeightedNetMF computes trunc_log(vol/(bT)·Σ(D⁻¹A)^r·D⁻¹) densely for
// a weighted graph (D = weighted degrees, vol = total weight).
func exactWeightedNetMF(g *graph.Graph, T int, b float64) *dense.Matrix {
	n := g.NumVertices()
	a := dense.NewMatrix(n, n)
	for u := 0; u < n; u++ {
		d := g.Degree(uint32(u))
		for i := 0; i < d; i++ {
			a.Set(u, int(g.Neighbor(uint32(u), i)), g.EdgeWeight(uint32(u), i))
		}
	}
	deg := g.Strengths()
	p := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if deg[i] > 0 {
				p.Set(i, j, a.At(i, j)/deg[i])
			}
		}
	}
	sum := dense.NewMatrix(n, n)
	cur := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cur.Set(i, i, 1)
	}
	for r := 1; r <= T; r++ {
		next := dense.NewMatrix(n, n)
		dense.MatMul(next, cur, p)
		cur = next
		for i := range sum.Data {
			sum.Data[i] += cur.Data[i]
		}
	}
	vol := g.Volume()
	out := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := vol / (b * float64(T)) * sum.At(i, j) / deg[j]
			if v > 1 {
				out.Set(i, j, math.Log(v))
			}
		}
	}
	return out
}

// weightedTestGraph builds an irregular weighted graph: a ring with
// heavy chords.
func weightedTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	n := 16
	var arcs []graph.WeightedEdge
	for i := 0; i < n; i++ {
		arcs = append(arcs, graph.WeightedEdge{U: uint32(i), V: uint32((i + 1) % n), W: 1})
	}
	for i := 0; i < n; i += 4 {
		arcs = append(arcs, graph.WeightedEdge{U: uint32(i), V: uint32((i + 5) % n), W: 3})
	}
	g, err := graph.FromWeightedEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWeightedSparsifierConvergesToWeightedNetMF(t *testing.T) {
	g := weightedTestGraph(t)
	T := 2
	want := exactWeightedNetMF(g, T, 1)
	table, stats, err := sampler.Sample(g, sampler.Config{T: T, M: 3_000_000, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	us, vs, ws := table.Drain()
	mat, err := BuildMatrix(g, us, vs, ws, 1, stats.Trials)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	var num, den float64
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		for p := mat.RowPtr[i]; p < mat.RowPtr[i+1]; p++ {
			row[mat.ColIdx[p]] = mat.Val[p]
		}
		for j := 0; j < n; j++ {
			d := row[j] - want.At(i, j)
			num += d * d
			den += want.At(i, j) * want.At(i, j)
		}
	}
	rel := math.Sqrt(num / den)
	if rel > 0.12 {
		t.Fatalf("weighted estimator relative error %.3f too high", rel)
	}
}

func TestWeightedDownsampledSparsifier(t *testing.T) {
	g := weightedTestGraph(t)
	T := 2
	want := exactWeightedNetMF(g, T, 1)
	table, stats, err := sampler.Sample(g, sampler.Config{T: T, M: 3_000_000, Downsample: true, C: 1, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	us, vs, ws := table.Drain()
	mat, err := BuildMatrix(g, us, vs, ws, 1, stats.Trials)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	var num, den float64
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		for p := mat.RowPtr[i]; p < mat.RowPtr[i+1]; p++ {
			row[mat.ColIdx[p]] = mat.Val[p]
		}
		for j := 0; j < n; j++ {
			d := row[j] - want.At(i, j)
			num += d * d
			den += want.At(i, j) * want.At(i, j)
		}
	}
	rel := math.Sqrt(num / den)
	if rel > 0.2 {
		t.Fatalf("weighted downsampled estimator relative error %.3f too high", rel)
	}
	if stats.Heads >= stats.Trials {
		t.Fatal("downsampling skipped nothing on a weighted graph with hubs")
	}
}

func TestWeightedRunEndToEnd(t *testing.T) {
	g := weightedTestGraph(t)
	res, err := Run(g, Config{T: 3, M: 100_000, Dim: 4, Downsample: true, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding.Rows != g.NumVertices() || res.Embedding.Cols != 4 {
		t.Fatal("bad shape")
	}
	for _, v := range res.Embedding.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("NaN/Inf in weighted embedding")
		}
	}
}

func TestIntegerWeightsMatchMultigraphEstimate(t *testing.T) {
	// A weight-2 edge must produce (in expectation) the same NetMF estimate
	// as two parallel unit edges: the dense targets coincide, so both
	// sampled estimates must converge to the same matrix.
	n := 8
	var warcs []graph.WeightedEdge
	for i := 0; i < n; i++ {
		warcs = append(warcs, graph.WeightedEdge{U: uint32(i), V: uint32((i + 1) % n), W: 2})
		warcs = append(warcs, graph.WeightedEdge{U: uint32(i), V: uint32((i + 2) % n), W: 1})
	}
	wg, err := graph.FromWeightedEdges(n, warcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := exactWeightedNetMF(wg, 2, 1)
	table, stats, err := sampler.Sample(wg, sampler.Config{T: 2, M: 2_000_000, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	us, vs, ws := table.Drain()
	mat, err := BuildMatrix(wg, us, vs, ws, 1, stats.Trials)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for p := mat.RowPtr[i]; p < mat.RowPtr[i+1]; p++ {
			j := mat.ColIdx[p]
			if math.Abs(mat.Val[p]-want.At(i, int(j))) > 0.15*math.Max(0.5, want.At(i, int(j))) {
				t.Fatalf("entry (%d,%d): %g vs exact %g", i, j, mat.Val[p], want.At(i, int(j)))
			}
		}
	}
}
