// Package netsmf implements the first stage of LightNE: NetSMF-style
// construction of a sparse, spectrally faithful approximation of the NetMF
// matrix (paper Eq. 1)
//
//	M = trunc_log( vol(G)/(bT) · Σ_{r=1..T} (D⁻¹A)^r D⁻¹ )
//
// via PathSampling with LightNE's edge downsampling, followed by randomized
// SVD to produce the embedding X = U·Σ^{1/2}.
//
// Estimator. For a sample of length r from arc (u,v) ending at (u',v'),
// reversibility of the walk gives
//
//	Pr[(u',v')] = d_{u'}·(P^r)_{u'v'} / vol(G)
//
// independent of the split point s, so the weighted sample counts W (each
// sample is inserted in both orientations, and downsampled heads carry
// weight 1/p_e) satisfy
//
//	E[W_{uv}] = 2·M̂/(T·vol) · d_u · Σ_r (P^r)_{uv},
//
// hence vol²·W / (2·b·M̂·d_u·d_v) is an unbiased estimate of the matrix
// inside trunc_log in Eq. 1 (the 1/T average is absorbed because r is drawn
// uniformly from [1, T]). Setting Downsample=false and letting M grow
// recovers the original NetSMF, which this package also serves as (it is
// the paper's NetSMF baseline).
package netsmf

import (
	"fmt"
	"math"
	"time"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/sampler"
	"lightne/internal/sparse"
	"lightne/internal/svd"
)

// Config controls a NetSMF factorization.
type Config struct {
	// T is the context window size (paper default 10).
	T int
	// M is the target number of PathSampling trials. The paper expresses it
	// as multiples of T·m; use MFromMultiple to derive it.
	M int64
	// Dim is the embedding dimension d.
	Dim int
	// NegSamples is b, the number of negative samples (paper default 1).
	NegSamples float64
	// Downsample enables LightNE's degree-based edge downsampling.
	Downsample bool
	// C overrides the downsampling constant (<= 0 → log n).
	C float64
	// Seed fixes all randomness.
	Seed uint64
	// Oversample and PowerIters tune the randomized SVD (0, 0 = paper).
	Oversample int
	PowerIters int
	// BatchedWalks selects the radix-batched walking schedule — the
	// locality optimization the paper names as future work (§4.2).
	// Weighted graphs walk natively via per-vertex alias tables resolved
	// from keyed-hash draws (see graph.AliasNeighbor).
	BatchedWalks bool
	// WaveSize caps the in-flight heads per wave of the batched walker's
	// pipeline; <= 0 picks the maximum (2^22). Only meaningful with
	// BatchedWalks; the sparsifier is bit-identical for every setting.
	WaveSize int
	// Shards splits the sample-aggregation table across a power of two of
	// sub-tables (see sampler.Config.Shards); <= 1 keeps one shared table.
	// The sparsifier is bit-identical for every setting.
	Shards int
	// StreamedSVD replaces the two-pass randomized SVD with the single-pass
	// sketched factorization: the drained sparsifier streams through the
	// estimator scaling and truncated logarithm in bounded chunks directly
	// into a sketch accumulator (svd.Sketch), so the scaled matrix — and in
	// rSVD mode also its transpose — is never resident. Costs accuracy on
	// slowly decaying spectra (no power iteration is possible in one pass;
	// oversampling compensates), buys a strictly lower memory peak.
	// PowerIters is ignored in this mode.
	StreamedSVD bool
	// Sketch selects the test-matrix family for StreamedSVD
	// (svd.SketchSparseSign, the default, or svd.SketchGaussian).
	Sketch svd.SketchKind
}

// MFromMultiple returns M = mult·T·m for a graph with m undirected edges
// (NumEdges()/2 arcs), the parameterization used throughout the paper's
// evaluation (e.g. LightNE-Small = 0.1·T·m, LightNE-Large = 20·T·m).
func MFromMultiple(g *graph.Graph, t int, mult float64) int64 {
	m := float64(g.NumEdges()) / 2
	v := mult * float64(t) * m
	if v < 1 {
		return 1
	}
	return int64(v)
}

// Timing is the per-stage wall-clock breakdown (paper Table 5 columns).
type Timing struct {
	Sparsifier time.Duration // parallel sparsifier construction
	SVD        time.Duration // randomized SVD
}

// Result bundles the embedding with diagnostics.
type Result struct {
	// Embedding is the n×d matrix X = U·Σ^{1/2}.
	Embedding *dense.Matrix
	// Sigma holds the singular values of the factorized matrix.
	Sigma []float64
	// SparsifierNNZ is the nonzero count of the matrix handed to the SVD
	// (after trunc_log pruning).
	SparsifierNNZ int64
	// SampleStats reports the sampling pass.
	SampleStats sampler.Stats
	// Timing is the stage breakdown.
	Timing Timing
}

// Sparsifier runs the sampling pass and the grouped parallel drain, returning
// the raw (unscaled) sparsifier as a CSR matrix: the table hands its entries
// over directly (rows grouped by radix pass, columns sorted), so no COO
// scatter or per-row sort runs between sampling and factorization.
//
// Because per-vertex RNG streams fix the sample multiset, fixed-point
// accumulation is exact and commutative, and the fully-sorted drain is a pure
// function of that multiset, the returned matrix is bit-identical for every
// Shards setting and worker count (locked down by the determinism test). The
// scaled matrix is bit-stable too: vol(G) is an exact integer for unweighted
// graphs and a fixed-geometry deterministic reduction (par.ReduceFloat64Det)
// for weighted ones, and the per-entry scaling and truncated logarithm are
// pure functions of (entry, vol, degrees).
func Sparsifier(g *graph.Graph, cfg Config) (*sparse.CSR, sampler.Stats, error) {
	table, stats, err := sampleTable(g, cfg)
	if err != nil {
		return nil, stats, err
	}
	n := g.NumVertices()
	rowPtr, cols, ws := table.DrainCSR(n)
	mat, err := sparse.FromCSRParts(n, n, rowPtr, cols, ws)
	if err != nil {
		return nil, stats, fmt.Errorf("netsmf: building sparsifier: %w", err)
	}
	return mat, stats, nil
}

// sampleTable runs the sampling pass and returns the aggregation sink, shared
// by the materializing (Sparsifier) and streaming (runStreamed) paths.
func sampleTable(g *graph.Graph, cfg Config) (sampler.Sink, sampler.Stats, error) {
	scfg := sampler.Config{
		T:          cfg.T,
		M:          cfg.M,
		Downsample: cfg.Downsample,
		C:          cfg.C,
		Seed:       cfg.Seed,
		Shards:     cfg.Shards,
	}
	var table sampler.Sink
	var stats sampler.Stats
	var err error
	if cfg.BatchedWalks {
		table, stats, err = sampler.SampleBatched(g, scfg, cfg.WaveSize)
	} else {
		table, stats, err = sampler.Sample(g, scfg)
	}
	if err != nil {
		return nil, stats, fmt.Errorf("netsmf: sampling: %w", err)
	}
	return table, stats, nil
}

// Run executes the NetSMF stage on g.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("netsmf: dimension must be positive, got %d", cfg.Dim)
	}
	b := cfg.NegSamples
	if b <= 0 {
		b = 1
	}
	if cfg.StreamedSVD {
		return runStreamed(g, cfg, b)
	}

	start := time.Now()
	raw, stats, err := Sparsifier(g, cfg)
	if err != nil {
		return nil, err
	}
	mat := scaleTruncLog(g, raw, b, stats.Trials)
	sparsifierTime := time.Since(start)

	start = time.Now()
	// The sparsifier is exactly symmetric bitwise — every sample inserts in
	// both orientations with the same fixed-point weight, and the estimator
	// scaling is symmetric in (i, j) — so the SVD can reuse the matrix as its
	// own transpose instead of materializing a second CSR.
	res, err := svd.RandomizedSVD(mat, cfg.Dim, svd.Options{
		Seed:       cfg.Seed + 1,
		Oversample: cfg.Oversample,
		PowerIters: cfg.PowerIters,
		Symmetric:  true,
	})
	if err != nil {
		return nil, fmt.Errorf("netsmf: svd: %w", err)
	}
	x := svd.EmbedFromSVD(res)
	svdTime := time.Since(start)

	return &Result{
		Embedding:     x,
		Sigma:         res.Sigma,
		SparsifierNNZ: mat.NNZ(),
		SampleStats:   stats,
		Timing:        Timing{Sparsifier: sparsifierTime, SVD: svdTime},
	}, nil
}

// streamChunkEntries caps the raw entries per streamed chunk: 2^20 entries is
// ~12 MiB of drained CSR per buffer, big enough to amortize the per-chunk
// sketch pass and small enough that the two in-flight transform buffers are
// noise next to the sketch itself. The value never affects results — chunk
// boundaries are whole rows (sampler.ChunkRows) and sketch absorption is
// chunk-order-independent — so it is a constant, not a Config knob.
const streamChunkEntries = 1 << 20

// runStreamed is the single-pass path of Run: sample, drain, and stream the
// rows through the estimator scaling and truncated logarithm straight into a
// sketch accumulator, then factorize the sketch. The scaled sparsifier is
// never materialized — the resident sparse state is the drained raw CSR plus
// two bounded chunk buffers — and the dense working set is the sketch's
// 3·n·k + Ω instead of the rSVD's 5·n·k.
//
// The transform of chunk c overlaps the sketch absorption of chunk c-1
// through a two-deep buffer ring and a consumer goroutine, mirroring the
// batched walker's wave pipeline. Determinism does not depend on that
// overlap: chunks cover disjoint whole rows, per-row accumulation into the
// sketch is sequential, and the chunk boundaries are a pure function of the
// (deterministic) drained row pointers — so the embedding is bit-identical
// across Shards, worker counts and wave sizes, locked down by the
// determinism tests.
func runStreamed(g *graph.Graph, cfg Config, b float64) (*Result, error) {
	start := time.Now()
	table, stats, err := sampleTable(g, cfg)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	sk, err := svd.NewSketch(n, cfg.Dim, svd.SketchOptions{
		Seed:       cfg.Seed + 1,
		Kind:       cfg.Sketch,
		Oversample: cfg.Oversample,
	})
	if err != nil {
		return nil, fmt.Errorf("netsmf: sketch: %w", err)
	}

	vol := g.Volume()
	deg := g.Strengths()
	scale := vol * vol / (2 * b * float64(stats.Trials))

	type chunkBuf struct {
		rowLo  int
		rowPtr []int64
		cols   []uint32
		vals   []float64
	}
	free := make(chan *chunkBuf, 2)
	free <- new(chunkBuf)
	free <- new(chunkBuf)
	work := make(chan *chunkBuf, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for cb := range work {
			sk.Absorb(svd.RowChunk{RowLo: cb.rowLo, RowPtr: cb.rowPtr, Cols: cb.cols, Vals: cb.vals})
			free <- cb
		}
	}()

	var kept int64
	sampler.StreamCSR(table, n, streamChunkEntries, func(lo, hi int, rowPtr []int64, cols []uint32, ws []float64) {
		cb := <-free
		rows := hi - lo
		if cap(cb.rowPtr) < rows+1 {
			cb.rowPtr = make([]int64, rows+1)
		}
		cb.rowPtr = cb.rowPtr[:rows+1]
		cb.cols = cb.cols[:0]
		cb.vals = cb.vals[:0]
		cb.rowLo = lo
		cb.rowPtr[0] = 0
		for r := lo; r < hi; r++ {
			dr := deg[r]
			for p := rowPtr[r]; p < rowPtr[r+1]; p++ {
				c := cols[p]
				// Unbiased estimator scaling followed by trunc_log: keep
				// log(x) iff x > 1, exactly as sparse.TruncLog prunes.
				if x := ws[p] * scale / (dr * deg[c]); x > 1 {
					cb.cols = append(cb.cols, c)
					cb.vals = append(cb.vals, math.Log(x))
				}
			}
			cb.rowPtr[r-lo+1] = int64(len(cb.cols))
		}
		kept += cb.rowPtr[rows]
		work <- cb
	})
	close(work)
	<-done
	sparsifierTime := time.Since(start)

	start = time.Now()
	res, err := sk.Factorize()
	if err != nil {
		return nil, fmt.Errorf("netsmf: sketch factorization: %w", err)
	}
	x := svd.EmbedFromSVD(res)
	svdTime := time.Since(start)

	return &Result{
		Embedding:     x,
		Sigma:         res.Sigma,
		SparsifierNNZ: kept,
		SampleStats:   stats,
		Timing:        Timing{Sparsifier: sparsifierTime, SVD: svdTime},
	}, nil
}

// BuildMatrix converts drained sampler output into the trunc-log NetMF
// matrix estimate. b is the negative-sample count and trials the realized
// sample count M̂ used in the unbiased scaling (see the package comment).
func BuildMatrix(g *graph.Graph, us, vs []uint32, ws []float64, b float64, trials int64) (*sparse.CSR, error) {
	n := g.NumVertices()
	mat, err := sparse.FromCOO(n, n, us, vs, ws)
	if err != nil {
		return nil, fmt.Errorf("netsmf: building sparsifier: %w", err)
	}
	return scaleTruncLog(g, mat, b, trials), nil
}

// BuildMatrixCSR is BuildMatrix for the grouped drain: it wraps the CSR
// arrays from hashtable.DrainCSR without copying or re-sorting, then applies
// the same unbiased scaling and truncated logarithm.
func BuildMatrixCSR(g *graph.Graph, rowPtr []int64, cols []uint32, ws []float64, b float64, trials int64) (*sparse.CSR, error) {
	n := g.NumVertices()
	mat, err := sparse.FromCSRParts(n, n, rowPtr, cols, ws)
	if err != nil {
		return nil, fmt.Errorf("netsmf: building sparsifier: %w", err)
	}
	return scaleTruncLog(g, mat, b, trials), nil
}

// BuildMatrixCSRGrouped is BuildMatrixCSR for partition-only drains
// (DrainCSRPartial): rows must be grouped but columns within a row may be in
// any order, and the resulting matrix is flagged unsorted. Only SpMM-style
// consumers (the randomized SVD) may use it — CSR.At falls back to a linear
// scan and the layout is not reproducible across runs.
func BuildMatrixCSRGrouped(g *graph.Graph, rowPtr []int64, cols []uint32, ws []float64, b float64, trials int64) (*sparse.CSR, error) {
	n := g.NumVertices()
	mat, err := sparse.FromCSRPartsGrouped(n, n, rowPtr, cols, ws)
	if err != nil {
		return nil, fmt.Errorf("netsmf: building sparsifier: %w", err)
	}
	return scaleTruncLog(g, mat, b, trials), nil
}

// scaleTruncLog applies the unbiased estimator scaling (package comment) and
// the truncated logarithm, shared by both sparsifier builders.
func scaleTruncLog(g *graph.Graph, mat *sparse.CSR, b float64, trials int64) *sparse.CSR {
	vol := g.Volume()
	deg := g.Strengths() // weighted degrees; equals Degrees for unweighted graphs
	scale := vol * vol / (2 * b * float64(trials))
	mat.Apply(func(i int, j uint32, v float64) float64 {
		return v * scale / (deg[i] * deg[j])
	})
	return mat.TruncLog()
}
