package netsmf

import (
	"math"
	"testing"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/rng"
	"lightne/internal/sampler"
)

// exactNetMF computes trunc_log(vol/(bT)·Σ_{r=1..T}(D⁻¹A)^r·D⁻¹) densely.
func exactNetMF(g *graph.Graph, T int, b float64) *dense.Matrix {
	n := g.NumVertices()
	a := dense.NewMatrix(n, n)
	g.MapEdges(func(u, v uint32) { a.Set(int(u), int(v), 1) })
	deg := g.Degrees()
	p := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if deg[i] > 0 {
				p.Set(i, j, a.At(i, j)/deg[i])
			}
		}
	}
	sum := dense.NewMatrix(n, n)
	cur := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cur.Set(i, i, 1)
	}
	for r := 1; r <= T; r++ {
		next := dense.NewMatrix(n, n)
		dense.MatMul(next, cur, p)
		cur = next
		for i := range sum.Data {
			sum.Data[i] += cur.Data[i]
		}
	}
	vol := g.Volume()
	out := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := vol / (b * float64(T)) * sum.At(i, j) / deg[j]
			if v > 1 {
				out.Set(i, j, math.Log(v))
			}
		}
	}
	return out
}

func karate(t *testing.T) *graph.Graph {
	t.Helper()
	// A connected, irregular 20-vertex test graph: a ring plus chords.
	var arcs []graph.Edge
	n := 20
	for i := 0; i < n; i++ {
		arcs = append(arcs, graph.Edge{U: uint32(i), V: uint32((i + 1) % n)})
	}
	for i := 0; i < n; i += 3 {
		arcs = append(arcs, graph.Edge{U: uint32(i), V: uint32((i + 7) % n)})
	}
	g, err := graph.FromEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSparsifierConvergesToNetMF(t *testing.T) {
	// With many samples and no downsampling, the estimate must converge to
	// the exact (trunc-logged) NetMF matrix in relative Frobenius norm.
	g := karate(t)
	for _, T := range []int{1, 3} {
		want := exactNetMF(g, T, 1)
		table, stats, err := sampler.Sample(g, sampler.Config{T: T, M: 3_000_000, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		us, vs, ws := table.Drain()
		mat, err := BuildMatrix(g, us, vs, ws, 1, stats.Trials)
		if err != nil {
			t.Fatal(err)
		}
		var num, den float64
		n := g.NumVertices()
		got := dense.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for p := mat.RowPtr[i]; p < mat.RowPtr[i+1]; p++ {
				got.Set(i, int(mat.ColIdx[p]), mat.Val[p])
			}
		}
		for i := range want.Data {
			d := got.Data[i] - want.Data[i]
			num += d * d
			den += want.Data[i] * want.Data[i]
		}
		rel := math.Sqrt(num / den)
		if rel > 0.12 {
			t.Fatalf("T=%d: relative error %.3f too high", T, rel)
		}
	}
}

func TestDownsamplingPreservesEstimate(t *testing.T) {
	// Downsampled estimate must agree with the exact matrix too (Theorem
	// 3.1 unbiasedness), within a looser tolerance since variance is higher.
	g := karate(t)
	T := 2
	want := exactNetMF(g, T, 1)
	table, stats, err := sampler.Sample(g, sampler.Config{T: T, M: 3_000_000, Downsample: true, C: 2, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	us, vs, ws := table.Drain()
	mat, err := BuildMatrix(g, us, vs, ws, 1, stats.Trials)
	if err != nil {
		t.Fatal(err)
	}
	var num, den float64
	n := g.NumVertices()
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		for p := mat.RowPtr[i]; p < mat.RowPtr[i+1]; p++ {
			row[mat.ColIdx[p]] = mat.Val[p]
		}
		for j := 0; j < n; j++ {
			d := row[j] - want.At(i, j)
			num += d * d
			den += want.At(i, j) * want.At(i, j)
		}
	}
	rel := math.Sqrt(num / den)
	if rel > 0.2 {
		t.Fatalf("relative error %.3f too high under downsampling", rel)
	}
}

func TestRunProducesEmbedding(t *testing.T) {
	g := karate(t)
	res, err := Run(g, Config{T: 3, M: 200_000, Dim: 8, Downsample: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding.Rows != g.NumVertices() || res.Embedding.Cols != 8 {
		t.Fatalf("embedding shape %dx%d", res.Embedding.Rows, res.Embedding.Cols)
	}
	if res.SparsifierNNZ == 0 {
		t.Fatal("sparsifier empty")
	}
	for _, v := range res.Embedding.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("embedding contains NaN/Inf")
		}
	}
	if res.Timing.Sparsifier <= 0 || res.Timing.SVD <= 0 {
		t.Fatal("timings not recorded")
	}
	for i := 1; i < len(res.Sigma); i++ {
		if res.Sigma[i] > res.Sigma[i-1]+1e-9 {
			t.Fatal("sigma not sorted")
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	g := karate(t)
	cfg := Config{T: 2, M: 50_000, Dim: 4, Seed: 9}
	a, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Embedding.Data {
		if a.Embedding.Data[i] != b.Embedding.Data[i] {
			t.Fatal("same config+seed produced different embeddings")
		}
	}
}

func TestMFromMultiple(t *testing.T) {
	g := karate(t)
	m := float64(g.NumEdges()) / 2
	if got := MFromMultiple(g, 10, 2); got != int64(2*10*m) {
		t.Fatalf("MFromMultiple=%d want %d", got, int64(2*10*m))
	}
	if got := MFromMultiple(g, 10, 0); got != 1 {
		t.Fatalf("zero multiple should clamp to 1, got %d", got)
	}
}

func TestRunErrors(t *testing.T) {
	g := karate(t)
	if _, err := Run(g, Config{T: 2, M: 100, Dim: 0}); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := Run(g, Config{T: 0, M: 100, Dim: 4}); err == nil {
		t.Fatal("expected T error")
	}
}

func TestEmbeddingSeparatesCommunities(t *testing.T) {
	// Two dense clusters with a single bridge: within-cluster embedding
	// similarity should exceed cross-cluster similarity on average.
	var arcs []graph.Edge
	s := rng.New(5, 0)
	half := 15
	for c := 0; c < 2; c++ {
		base := c * half
		for i := 0; i < half; i++ {
			for j := i + 1; j < half; j++ {
				if s.Float64() < 0.6 {
					arcs = append(arcs, graph.Edge{U: uint32(base + i), V: uint32(base + j)})
				}
			}
		}
	}
	arcs = append(arcs, graph.Edge{U: 0, V: uint32(half)})
	g, err := graph.FromEdges(2*half, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{T: 5, M: 500_000, Dim: 8, Downsample: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	x := res.Embedding
	dot := func(i, j int) float64 {
		var s float64
		for k := 0; k < x.Cols; k++ {
			s += x.At(i, k) * x.At(j, k)
		}
		return s
	}
	var within, across float64
	var nw, na int
	for i := 0; i < 2*half; i++ {
		for j := i + 1; j < 2*half; j++ {
			if (i < half) == (j < half) {
				within += dot(i, j)
				nw++
			} else {
				across += dot(i, j)
				na++
			}
		}
	}
	if within/float64(nw) <= across/float64(na) {
		t.Fatalf("within-cluster similarity %.3f not above cross %.3f",
			within/float64(nw), across/float64(na))
	}
}
