package netsmf

import (
	"fmt"
	"runtime"
	"testing"

	"lightne/internal/graph"
	"lightne/internal/rng"
	"lightne/internal/sampler"
	"lightne/internal/sparse"
)

// randGraph builds a connected-ish random graph: a cycle backbone plus
// extra random chords, deduplicated.
func randGraph(t *testing.T, n, extraPerVertex int, seed uint64) *graph.Graph {
	t.Helper()
	s := rng.New(seed, 0)
	seen := make(map[[2]uint32]bool)
	var arcs []graph.Edge
	add := func(u, v uint32) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]uint32{u, v}] {
			return
		}
		seen[[2]uint32{u, v}] = true
		arcs = append(arcs, graph.Edge{U: u, V: v})
	}
	for i := 0; i < n; i++ {
		add(uint32(i), uint32((i+1)%n))
		for k := 0; k < extraPerVertex; k++ {
			add(uint32(i), uint32(s.Intn(n)))
		}
	}
	g, err := graph.FromEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSparsifierGolden locks down the fast path's central guarantee: the raw
// sparsifier (rows, columns, weights) is bit-identical across aggregation
// shard counts AND worker counts. This holds because per-vertex RNG streams
// fix the sample multiset independent of schedule, fixed-point accumulation
// is exact and commutative, and the fully-sorted radix drain is a pure
// function of the accumulated multiset — shard routing and slot order are
// erased. Any nondeterminism introduced anywhere on the
// sampler→table→drain→CSR path breaks this test.
func TestSparsifierGolden(t *testing.T) {
	g := randGraph(t, 600, 3, 7)
	base := Config{T: 5, M: 400_000, Downsample: true, Seed: 99}

	build := func(shards, procs int) *sparse.CSR {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		cfg := base
		cfg.Shards = shards
		mat, stats, err := Sparsifier(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Trials == 0 || mat.NNZ() == 0 {
			t.Fatalf("degenerate run: %d trials, %d nnz", stats.Trials, mat.NNZ())
		}
		return mat
	}

	golden := build(1, 1)
	for _, shards := range []int{1, 4, 16} {
		for _, procs := range []int{1, 4} {
			if shards == 1 && procs == 1 {
				continue
			}
			t.Run(fmt.Sprintf("shards=%d/procs=%d", shards, procs), func(t *testing.T) {
				got := build(shards, procs)
				if got.NNZ() != golden.NNZ() {
					t.Fatalf("nnz %d, golden %d", got.NNZ(), golden.NNZ())
				}
				for i := range golden.RowPtr {
					if got.RowPtr[i] != golden.RowPtr[i] {
						t.Fatalf("rowPtr[%d] = %d, golden %d", i, got.RowPtr[i], golden.RowPtr[i])
					}
				}
				for i := range golden.ColIdx {
					if got.ColIdx[i] != golden.ColIdx[i] {
						t.Fatalf("colIdx[%d] = %d, golden %d", i, got.ColIdx[i], golden.ColIdx[i])
					}
					if got.Val[i] != golden.Val[i] {
						t.Fatalf("val[%d] = %v, golden %v (must be bit-identical)", i, got.Val[i], golden.Val[i])
					}
				}
			})
		}
	}
}

// TestBuildMatrixCSRGrouped checks the partial-drain fast path end to end:
// a sharded sink drained with DrainCSRPartial and built with the grouped
// builder must yield the same matrix as the fully-sorted drain + builder —
// flagged unsorted, equal entry for entry once canonicalized (Transpose
// sorts, so a double transpose re-sorts the layout).
func TestBuildMatrixCSRGrouped(t *testing.T) {
	g := randGraph(t, 300, 2, 3)
	scfg := sampler.Config{T: 4, M: 100_000, Downsample: true, Seed: 5, Shards: 4}
	table, stats, err := sampler.Sample(g, scfg)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()

	rowPtr, cols, ws := table.DrainCSR(n)
	sorted, err := BuildMatrixCSR(g, rowPtr, cols, ws, 1, stats.Trials)
	if err != nil {
		t.Fatal(err)
	}
	pRowPtr, pCols, pWs := table.DrainCSRPartial(n)
	grouped, err := BuildMatrixCSRGrouped(g, pRowPtr, pCols, pWs, 1, stats.Trials)
	if err != nil {
		t.Fatal(err)
	}
	if grouped.ColumnsSorted() {
		t.Fatal("grouped matrix claims sorted columns")
	}
	if sorted.NNZ() != grouped.NNZ() {
		t.Fatalf("nnz %d vs %d", sorted.NNZ(), grouped.NNZ())
	}
	canon := grouped.Transpose().Transpose()
	for i := range sorted.ColIdx {
		if canon.ColIdx[i] != sorted.ColIdx[i] || canon.Val[i] != sorted.Val[i] {
			t.Fatalf("entry %d: (%d,%v) vs (%d,%v)", i,
				canon.ColIdx[i], canon.Val[i], sorted.ColIdx[i], sorted.Val[i])
		}
	}
}
