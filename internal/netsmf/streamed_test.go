package netsmf

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"lightne/internal/eval"
	"lightne/internal/graph"
	"lightne/internal/rng"
	"lightne/internal/svd"
)

// TestStreamedNNZMatchesMaterialized pins the streamed transform against the
// materializing path entry-for-entry in aggregate: the streamed pass must
// keep exactly as many trunc-logged entries as scaleTruncLog does on the
// same drained sparsifier, since both apply the same scaling and prune rule.
func TestStreamedNNZMatchesMaterialized(t *testing.T) {
	g := randGraph(t, 400, 2, 11)
	cfg := Config{T: 4, M: 200_000, Downsample: true, Seed: 23, Dim: 8, Oversample: 8}

	raw, stats, err := Sparsifier(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := scaleTruncLog(g, raw, 1, stats.Trials).NNZ()

	cfg.StreamedSVD = true
	res, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SparsifierNNZ != want {
		t.Fatalf("streamed kept %d entries, materialized trunc-log kept %d", res.SparsifierNNZ, want)
	}
	if res.SampleStats.Trials != stats.Trials {
		t.Fatalf("trials diverged: %d vs %d", res.SampleStats.Trials, stats.Trials)
	}
}

// communityGraph plants link-prediction structure a purely random graph
// lacks: dense blocks joined by a thin ring, so held-out intra-block edges
// are predictable from the embedding and AUC is informative.
func communityGraph(t *testing.T, blocks, per, chords int, seed uint64) *graph.Graph {
	t.Helper()
	s := rng.New(seed, 0)
	n := blocks * per
	var arcs []graph.Edge
	for b := 0; b < blocks; b++ {
		base := b * per
		for i := 0; i < per; i++ {
			arcs = append(arcs, graph.Edge{U: uint32(base + i), V: uint32(base + (i+1)%per)})
			for k := 0; k < chords; k++ {
				arcs = append(arcs, graph.Edge{U: uint32(base + i), V: uint32(base + s.Intn(per))})
			}
		}
		arcs = append(arcs, graph.Edge{U: uint32(base), V: uint32((base + per) % n)})
	}
	g, err := graph.FromEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestStreamedMatchesRSVDQuality is the differential quality test of the
// tentpole: on the same graph and seed, the single-pass sketched
// factorization must recover singular values close to the two-pass rSVD's
// and produce embeddings of equivalent downstream link-prediction quality,
// for both sketch kinds.
func TestStreamedMatchesRSVDQuality(t *testing.T) {
	full := communityGraph(t, 6, 80, 6, 31)
	train, test, err := eval.SplitEdges(full, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{T: 4, M: 400_000, Downsample: true, Seed: 51, Dim: 16, Oversample: 16}

	ref, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refAUC := eval.AUC(ref.Embedding, test, 50, 9)
	if refAUC < 0.55 {
		t.Fatalf("rSVD baseline AUC degenerate: %g", refAUC)
	}

	for _, kind := range []struct {
		name string
		cfg  Config
	}{
		{"sign", cfg},
		{"gaussian", cfg},
	} {
		scfg := kind.cfg
		scfg.StreamedSVD = true
		if kind.name == "gaussian" {
			scfg.Sketch = svd.SketchGaussian
		}
		got, err := Run(train, scfg)
		if err != nil {
			t.Fatal(err)
		}
		// Leading singular values: same matrix, so the single-pass estimate
		// must track the two-pass one on the well-captured leading third.
		lead := len(ref.Sigma) / 3
		if lead < 2 {
			lead = 2
		}
		for j := 0; j < lead; j++ {
			if rel := math.Abs(got.Sigma[j]-ref.Sigma[j]) / ref.Sigma[0]; rel > 0.10 {
				t.Errorf("%s: sigma[%d] = %g vs rSVD %g (rel %g)", kind.name, j, got.Sigma[j], ref.Sigma[j], rel)
			}
		}
		auc := eval.AUC(got.Embedding, test, 50, 9)
		if math.Abs(auc-refAUC) > 0.08 {
			t.Errorf("%s: link-prediction AUC %g vs rSVD %g", kind.name, auc, refAUC)
		}
	}
}

// TestStreamedWeightedQuality runs the streamed path end to end on a weighted
// graph: weighted volume, strengths, and alias-walk sampling all feed the
// streamed transform, and the leading singular values must match the
// materializing path.
func TestStreamedWeightedQuality(t *testing.T) {
	g := weightedTestGraph(t)
	cfg := Config{T: 3, M: 500_000, Seed: 77, Dim: 4, Oversample: 12}

	ref, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StreamedSVD = true
	got, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if rel := math.Abs(got.Sigma[j]-ref.Sigma[j]) / ref.Sigma[0]; rel > 0.10 {
			t.Errorf("sigma[%d] = %g vs rSVD %g (rel %g)", j, got.Sigma[j], ref.Sigma[j], rel)
		}
	}
}

// TestStreamedGolden locks down the acceptance criterion of the tentpole:
// with a fixed seed the streamed embedding is bit-identical across worker
// counts, aggregation shard counts, and batched-walker wave sizes. The
// sparsifier multiset, the drain order, the chunk boundaries, the sketch
// accumulation, and every dense reduction in the factorization are all
// schedule-independent, so the full pipeline composes to a deterministic
// function of (graph, config).
func TestStreamedGolden(t *testing.T) {
	g := randGraph(t, 400, 2, 43)
	base := Config{
		T: 4, M: 150_000, Downsample: true, Seed: 13,
		Dim: 8, Oversample: 8, StreamedSVD: true, BatchedWalks: true,
	}

	build := func(shards, procs, wave int) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		cfg := base
		cfg.Shards = shards
		cfg.WaveSize = wave
		res, err := Run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.SparsifierNNZ == 0 {
			t.Fatal("degenerate run: empty trunc-logged sparsifier")
		}
		return res
	}

	golden := build(1, 1, 4096)
	for _, shards := range []int{1, 4} {
		for _, procs := range []int{1, 4} {
			for _, wave := range []int{4096, 0} {
				if shards == 1 && procs == 1 && wave == 4096 {
					continue
				}
				t.Run(fmt.Sprintf("shards=%d/procs=%d/wave=%d", shards, procs, wave), func(t *testing.T) {
					got := build(shards, procs, wave)
					if got.SparsifierNNZ != golden.SparsifierNNZ {
						t.Fatalf("nnz %d, golden %d", got.SparsifierNNZ, golden.SparsifierNNZ)
					}
					for i := range golden.Sigma {
						if got.Sigma[i] != golden.Sigma[i] {
							t.Fatalf("sigma[%d] = %v, golden %v (must be bit-identical)", i, got.Sigma[i], golden.Sigma[i])
						}
					}
					for i := range golden.Embedding.Data {
						if got.Embedding.Data[i] != golden.Embedding.Data[i] {
							t.Fatalf("embedding[%d] = %v, golden %v (must be bit-identical)",
								i, got.Embedding.Data[i], golden.Embedding.Data[i])
						}
					}
				})
			}
		}
	}
}

// TestStreamedWeightedGolden extends the bit-identity contract to weighted
// graphs, which is what the deterministic volume reduction
// (par.ReduceFloat64Det behind graph.TotalWeight) buys: the estimator scale
// is now the same float for every worker count.
func TestStreamedWeightedGolden(t *testing.T) {
	g := weightedTestGraph(t)
	cfg := Config{T: 3, M: 100_000, Seed: 19, Dim: 4, StreamedSVD: true, BatchedWalks: true}

	build := func(procs int) *Result {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		res, err := Run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	golden := build(1)
	got := build(4)
	for i := range golden.Embedding.Data {
		if got.Embedding.Data[i] != golden.Embedding.Data[i] {
			t.Fatalf("embedding[%d] differs across worker counts", i)
		}
	}
}
