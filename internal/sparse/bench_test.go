package sparse

import (
	"testing"

	"lightne/internal/dense"
	"lightne/internal/rng"
)

func benchSparse(b *testing.B, n, nnzPerRow, d int) {
	s := rng.New(1, 0)
	var us, vs []uint32
	var ws []float64
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow; k++ {
			us = append(us, uint32(i))
			vs = append(vs, uint32(s.Intn(n)))
			ws = append(ws, 1)
		}
	}
	m, err := FromCOO(n, n, us, vs, ws)
	if err != nil {
		b.Fatal(err)
	}
	x := dense.NewMatrix(n, d)
	x.FillGaussian(2)
	y := dense.NewMatrix(n, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpMM(y, m, x)
	}
	b.SetBytes(m.NNZ() * 8 * int64(d) / 4) // rough flop-proportional figure
}

func BenchmarkSpMM_n10k_nnz20_d32(b *testing.B)  { benchSparse(b, 10000, 20, 32) }
func BenchmarkSpMM_n10k_nnz20_d128(b *testing.B) { benchSparse(b, 10000, 20, 128) }

func BenchmarkTruncLog(b *testing.B) {
	s := rng.New(3, 0)
	n := 10000
	var us, vs []uint32
	var ws []float64
	for i := 0; i < n*20; i++ {
		us = append(us, uint32(s.Intn(n)))
		vs = append(vs, uint32(s.Intn(n)))
		ws = append(ws, s.Float64()*4)
	}
	m, err := FromCOO(n, n, us, vs, ws)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.TruncLog()
	}
}
