package sparse

import (
	"sort"
	"testing"

	"lightne/internal/dense"
	"lightne/internal/rng"
)

func benchSparse(b *testing.B, n, nnzPerRow, d int) {
	s := rng.New(1, 0)
	var us, vs []uint32
	var ws []float64
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow; k++ {
			us = append(us, uint32(i))
			vs = append(vs, uint32(s.Intn(n)))
			ws = append(ws, 1)
		}
	}
	m, err := FromCOO(n, n, us, vs, ws)
	if err != nil {
		b.Fatal(err)
	}
	x := dense.NewMatrix(n, d)
	x.FillGaussian(2)
	y := dense.NewMatrix(n, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpMM(y, m, x)
	}
	b.SetBytes(m.NNZ() * 8 * int64(d) / 4) // rough flop-proportional figure
}

func BenchmarkSpMM_n10k_nnz20_d32(b *testing.B)  { benchSparse(b, 10000, 20, 32) }
func BenchmarkSpMM_n10k_nnz20_d128(b *testing.B) { benchSparse(b, 10000, 20, 128) }

// fromCOOSortMerge is the pre-radix FromCOO kept for benchmark comparison:
// count/scan/scatter into rows, then per-row comparison sort plus in-place
// duplicate merge and a sequential compaction.
func fromCOOSortMerge(rows, cols int, us, vs []uint32, ws []float64) *CSR {
	counts := make([]int64, rows+1)
	for _, u := range us {
		counts[u+1]++
	}
	for r := 0; r < rows; r++ {
		counts[r+1] += counts[r]
	}
	colIdx := make([]uint32, len(us))
	val := make([]float64, len(us))
	next := make([]int64, rows)
	copy(next, counts[:rows])
	for i, u := range us {
		p := next[u]
		next[u]++
		colIdx[p] = vs[i]
		val[p] = ws[i]
	}
	outLens := make([]int64, rows)
	for r := 0; r < rows; r++ {
		lo, hi := counts[r], counts[r+1]
		rc, rv := colIdx[lo:hi], val[lo:hi]
		sort.Sort(&benchRowSorter{rc, rv})
		out := 0
		for i := 0; i < len(rc); i++ {
			if out > 0 && rc[out-1] == rc[i] {
				rv[out-1] += rv[i]
				continue
			}
			rc[out] = rc[i]
			rv[out] = rv[i]
			out++
		}
		outLens[r] = int64(out)
	}
	newPtr := make([]int64, rows+1)
	var w int64
	for r := 0; r < rows; r++ {
		copy(colIdx[w:w+outLens[r]], colIdx[counts[r]:counts[r]+outLens[r]])
		copy(val[w:w+outLens[r]], val[counts[r]:counts[r]+outLens[r]])
		w += outLens[r]
		newPtr[r+1] = w
	}
	return &CSR{NumRows: rows, NumCols: cols, RowPtr: newPtr, ColIdx: colIdx[:w], Val: val[:w]}
}

type benchRowSorter struct {
	cols []uint32
	vals []float64
}

func (s *benchRowSorter) Len() int           { return len(s.cols) }
func (s *benchRowSorter) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *benchRowSorter) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

func benchCOOInput(n, nnzPerRow int) (us, vs []uint32, ws []float64) {
	s := rng.New(7, 0)
	total := n * nnzPerRow
	us = make([]uint32, total)
	vs = make([]uint32, total)
	ws = make([]float64, total)
	for i := range us {
		us[i] = uint32(s.Intn(n))
		vs[i] = uint32(s.Intn(n))
		ws[i] = 1
	}
	return us, vs, ws
}

func benchFromCOO(b *testing.B, n, nnzPerRow int, build func(rows, cols int, us, vs []uint32, ws []float64) *CSR) {
	us, vs, ws := benchCOOInput(n, nnzPerRow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = build(n, n, us, vs, ws)
	}
	b.SetBytes(int64(len(us)) * 16)
}

func radixBuild(rows, cols int, us, vs []uint32, ws []float64) *CSR {
	m, err := FromCOO(rows, cols, us, vs, ws)
	if err != nil {
		panic(err)
	}
	return m
}

func BenchmarkFromCOO_n50k_nnz40(b *testing.B) { benchFromCOO(b, 50000, 40, radixBuild) }
func BenchmarkFromCOOSortMerge_n50k_nnz40(b *testing.B) {
	benchFromCOO(b, 50000, 40, fromCOOSortMerge)
}
func BenchmarkFromCOO_n5k_nnz400(b *testing.B) { benchFromCOO(b, 5000, 400, radixBuild) }
func BenchmarkFromCOOSortMerge_n5k_nnz400(b *testing.B) {
	benchFromCOO(b, 5000, 400, fromCOOSortMerge)
}

func BenchmarkTruncLog(b *testing.B) {
	s := rng.New(3, 0)
	n := 10000
	var us, vs []uint32
	var ws []float64
	for i := 0; i < n*20; i++ {
		us = append(us, uint32(s.Intn(n)))
		vs = append(vs, uint32(s.Intn(n)))
		ws = append(ws, s.Float64()*4)
	}
	m, err := FromCOO(n, n, us, vs, ws)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.TruncLog()
	}
}
