// Package sparse provides the sparse linear algebra LightNE obtains from
// MKL's Sparse BLAS in the paper (§4.3): a CSR matrix with parallel
// sparse-times-dense products (SPMM, the mkl_sparse_s_mm stand-in), builders
// from COO triples and from the sampler's hash table, diagonal scaling, and
// the entry-wise truncated logarithm that turns the sparsifier into the
// NetMF matrix.
package sparse

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"lightne/internal/dense"
	"lightne/internal/hashtable"
	"lightne/internal/par"
	"lightne/internal/radix"
)

// CSR is a compressed sparse row matrix.
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int64 // len NumRows+1
	ColIdx           []uint32
	Val              []float64
	// colsUnsorted marks matrices built by the partition-only (grouped, not
	// sorted) fast path: rows are grouped but columns within a row are in
	// arrival order. Streaming consumers (SpMM, Apply, TruncLog, Transpose)
	// don't care; At falls back to a linear scan. The zero value means
	// sorted, which every other builder guarantees.
	colsUnsorted bool
}

// ColumnsSorted reports whether every row's columns are strictly ascending
// (true for all builders except FromCSRPartsGrouped).
func (m *CSR) ColumnsSorted() bool { return !m.colsUnsorted }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int64 { return m.RowPtr[m.NumRows] }

// MemoryBytes returns the CSR storage footprint.
func (m *CSR) MemoryBytes() int64 {
	return int64(len(m.RowPtr))*8 + int64(len(m.ColIdx))*4 + int64(len(m.Val))*8
}

// FromCOO builds a CSR matrix from triples, summing duplicates. Triples may
// arrive in any order; the input slices are not modified.
//
// The build runs entirely on the radix machinery: triples pack into
// (row<<32|col) keys, one parallel stable LSD grouping sorts them into
// row-grouped column-sorted order (radix.GroupCSR — no interface-based
// per-row comparison sort), and a merge pass sums now-adjacent duplicates.
// Stability makes the result deterministic: duplicates are summed in input
// order, for any worker count.
func FromCOO(rows, cols int, us, vs []uint32, ws []float64) (*CSR, error) {
	if len(us) != len(vs) || len(us) != len(ws) {
		return nil, fmt.Errorf("sparse: COO slice lengths differ (%d, %d, %d)", len(us), len(vs), len(ws))
	}
	n := len(us)
	var bad int64 = -1
	par.For(n, 4096, func(i int) {
		if int(us[i]) >= rows || int(vs[i]) >= cols {
			atomic.StoreInt64(&bad, int64(i))
		}
	})
	if bad >= 0 {
		return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", us[bad], vs[bad], rows, cols)
	}
	keys := make([]uint64, n)
	vals := make([]float64, n)
	par.For(n, 4096, func(i int) {
		keys[i] = uint64(us[i])<<32 | uint64(vs[i])
		vals[i] = ws[i]
	})
	rawPtr := radix.GroupCSR(keys, vals, rows)
	// Merge duplicate keys (adjacent after the sort) into the head of each
	// row segment, then compact into exact-fit output arrays.
	outLens := make([]int64, rows)
	par.For(rows, 64, func(r int) {
		lo, hi := rawPtr[r], rawPtr[r+1]
		out := lo
		for i := lo; i < hi; i++ {
			if out > lo && keys[out-1] == keys[i] {
				vals[out-1] += vals[i]
				continue
			}
			keys[out] = keys[i]
			vals[out] = vals[i]
			out++
		}
		outLens[r] = out - lo
	})
	total := par.ExclusiveScan(outLens) // outLens now holds output offsets
	colIdx := make([]uint32, total)
	val := make([]float64, total)
	rowPtr := make([]int64, rows+1)
	par.For(rows, 64, func(r int) {
		w := outLens[r] // output offset of row r
		rowPtr[r] = w
		length := total - w
		if r+1 < rows {
			length = outLens[r+1] - w
		}
		lo := rawPtr[r]
		for i := lo; i < lo+length; i++ {
			colIdx[w] = uint32(keys[i])
			val[w] = vals[i]
			w++
		}
	})
	rowPtr[rows] = total
	return &CSR{NumRows: rows, NumCols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}, nil
}

// FromCSRParts wraps pre-built CSR arrays without copying. The arrays must
// already be in CSR form: rowPtr non-decreasing with rowPtr[0] == 0 and
// rowPtr[rows] == len(colIdx) == len(val), and each row's columns strictly
// ascending (grouped, sorted, duplicates merged) — exactly what
// hashtable.DrainCSR produces. All invariants are validated (in parallel),
// so a malformed hand-off fails loudly instead of corrupting the SVD input.
func FromCSRParts(rows, cols int, rowPtr []int64, colIdx []uint32, val []float64) (*CSR, error) {
	return fromCSRParts(rows, cols, rowPtr, colIdx, val, true)
}

// FromCSRPartsGrouped is FromCSRParts for the partition-only drain
// (hashtable DrainCSRPartial / radix.GroupCSRPartial): rows must be grouped
// and in-bounds, but columns within a row may be in any order. The resulting
// matrix reports ColumnsSorted() == false and At falls back to a linear row
// scan; every streaming consumer (SpMM, Apply, TruncLog, Transpose,
// Scale*) works unchanged. Use it only where the matrix feeds SpMM-style
// row streaming — never where binary-searched lookups or bit-reproducible
// layouts are required.
func FromCSRPartsGrouped(rows, cols int, rowPtr []int64, colIdx []uint32, val []float64) (*CSR, error) {
	return fromCSRParts(rows, cols, rowPtr, colIdx, val, false)
}

func fromCSRParts(rows, cols int, rowPtr []int64, colIdx []uint32, val []float64, sorted bool) (*CSR, error) {
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("sparse: rowPtr has %d entries, want %d", len(rowPtr), rows+1)
	}
	if len(colIdx) != len(val) {
		return nil, fmt.Errorf("sparse: colIdx/val lengths differ (%d, %d)", len(colIdx), len(val))
	}
	if rowPtr[0] != 0 || rowPtr[rows] != int64(len(colIdx)) {
		return nil, fmt.Errorf("sparse: rowPtr endpoints %d..%d, want 0..%d", rowPtr[0], rowPtr[rows], len(colIdx))
	}
	var bad int32
	par.For(rows, 256, func(r int) {
		lo, hi := rowPtr[r], rowPtr[r+1]
		if lo > hi || hi > int64(len(colIdx)) {
			atomic.StoreInt32(&bad, 1)
			return
		}
		for p := lo; p < hi; p++ {
			if int(colIdx[p]) >= cols || (sorted && p > lo && colIdx[p] <= colIdx[p-1]) {
				atomic.StoreInt32(&bad, 1)
				return
			}
		}
	})
	if bad != 0 {
		return nil, fmt.Errorf("sparse: CSR parts violate row/column invariants")
	}
	return &CSR{NumRows: rows, NumCols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val, colsUnsorted: !sorted}, nil
}

// FromTable builds an n×n CSR matrix from the sampler's hash table via the
// parallel grouped drain — no COO scatter, no per-row comparison sort.
func FromTable(n int, t *hashtable.Table) (*CSR, error) {
	rowPtr, cols, ws := t.DrainCSR(n)
	return FromCSRParts(n, n, rowPtr, cols, ws)
}

// At returns entry (i, j), zero if absent. O(log degree) binary search on
// sorted rows — the reason the fully-sorted builders exist; on a
// partition-only (grouped) matrix it degrades to a linear row scan.
// Intended for tests and spot checks, not inner loops.
func (m *CSR) At(i int, j uint32) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	cols := m.ColIdx[lo:hi]
	if m.colsUnsorted {
		for p, c := range cols {
			if c == j {
				return m.Val[lo+int64(p)]
			}
		}
		return 0
	}
	k := sort.Search(len(cols), func(p int) bool { return cols[p] >= j })
	if k < len(cols) && cols[k] == j {
		return m.Val[lo+int64(k)]
	}
	return 0
}

// SpMM computes Y = M·X for dense X, parallel over rows. Y must be
// preallocated with shape (NumRows × X.Cols) and is overwritten.
func SpMM(y *dense.Matrix, m *CSR, x *dense.Matrix) {
	if m.NumCols != x.Rows || y.Rows != m.NumRows || y.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: SpMM shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			m.NumRows, m.NumCols, x.Rows, x.Cols, y.Rows, y.Cols))
	}
	par.For(m.NumRows, 16, func(i int) {
		yi := y.Row(i)
		for j := range yi {
			yi[j] = 0
		}
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for p := lo; p < hi; p++ {
			a := m.Val[p]
			xr := x.Row(int(m.ColIdx[p]))
			for j, xv := range xr {
				yi[j] += a * xv
			}
		}
	})
}

// Transpose returns Mᵀ. The result is always column-sorted — the row-major
// scatter emits each transposed row in source-row order — even when the
// source rows were only grouped, so transposing "launders" a partial-sort
// matrix back into a fully-sorted one.
func (m *CSR) Transpose() *CSR {
	t := &CSR{NumRows: m.NumCols, NumCols: m.NumRows}
	t.RowPtr = make([]int64, m.NumCols+1)
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for r := 0; r < m.NumCols; r++ {
		t.RowPtr[r+1] += t.RowPtr[r]
	}
	t.ColIdx = make([]uint32, m.NNZ())
	t.Val = make([]float64, m.NNZ())
	next := make([]int64, m.NumCols)
	copy(next, t.RowPtr[:m.NumCols])
	for i := 0; i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			q := next[c]
			next[c]++
			t.ColIdx[q] = uint32(i)
			t.Val[q] = m.Val[p]
		}
	}
	return t
}

// ScaleRows multiplies row i by s[i] in place.
func (m *CSR) ScaleRows(s []float64) {
	par.For(m.NumRows, 64, func(i int) {
		f := s[i]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			m.Val[p] *= f
		}
	})
}

// ScaleCols multiplies column j by s[j] in place.
func (m *CSR) ScaleCols(s []float64) {
	par.For(int(m.NNZ()), 1<<14, func(p int) {
		m.Val[p] *= s[m.ColIdx[p]]
	})
}

// Scale multiplies every entry by f in place.
func (m *CSR) Scale(f float64) {
	par.For(int(m.NNZ()), 1<<14, func(p int) { m.Val[p] *= f })
}

// TruncLog applies trunc_log(x) = max(0, log x) entry-wise and drops entries
// that become zero (x <= 1), returning a new, typically sparser matrix.
// This is the step that makes the factorization equivalent to DeepWalk and
// that NPR-style shortcuts omit (paper §3.1).
func (m *CSR) TruncLog() *CSR {
	counts := make([]int64, m.NumRows+1)
	par.For(m.NumRows, 64, func(i int) {
		var c int64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.Val[p] > 1 {
				c++
			}
		}
		counts[i+1] = c
	})
	for r := 0; r < m.NumRows; r++ {
		counts[r+1] += counts[r]
	}
	out := &CSR{
		NumRows: m.NumRows,
		NumCols: m.NumCols,
		RowPtr:  counts,
		ColIdx:  make([]uint32, counts[m.NumRows]),
		Val:     make([]float64, counts[m.NumRows]),
		// Pruning preserves within-row order, so sortedness carries over.
		colsUnsorted: m.colsUnsorted,
	}
	par.For(m.NumRows, 64, func(i int) {
		w := out.RowPtr[i]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.Val[p] > 1 {
				out.ColIdx[w] = m.ColIdx[p]
				out.Val[w] = math.Log(m.Val[p])
				w++
			}
		}
	})
	return out
}

// Apply replaces every stored value v with fn(row, col, v) in place. Entries
// are not pruned even if fn returns zero.
func (m *CSR) Apply(fn func(i int, j uint32, v float64) float64) {
	par.For(m.NumRows, 64, func(i int) {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			m.Val[p] = fn(i, m.ColIdx[p], m.Val[p])
		}
	})
}

// RowSums returns the vector of row sums.
func (m *CSR) RowSums() []float64 {
	s := make([]float64, m.NumRows)
	par.For(m.NumRows, 64, func(i int) {
		var sum float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			sum += m.Val[p]
		}
		s[i] = sum
	})
	return s
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	m := &CSR{NumRows: n, NumCols: n,
		RowPtr: make([]int64, n+1),
		ColIdx: make([]uint32, n),
		Val:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = int64(i + 1)
		m.ColIdx[i] = uint32(i)
		m.Val[i] = 1
	}
	return m
}

// AddScaledIdentity returns M + c·I for a square matrix (new matrix; rows
// stay sorted).
func (m *CSR) AddScaledIdentity(c float64) *CSR {
	if m.NumRows != m.NumCols {
		panic("sparse: AddScaledIdentity requires a square matrix")
	}
	n := m.NumRows
	us := make([]uint32, 0, m.NNZ()+int64(n))
	vs := make([]uint32, 0, m.NNZ()+int64(n))
	ws := make([]float64, 0, m.NNZ()+int64(n))
	for i := 0; i < n; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			us = append(us, uint32(i))
			vs = append(vs, m.ColIdx[p])
			ws = append(ws, m.Val[p])
		}
		us = append(us, uint32(i))
		vs = append(vs, uint32(i))
		ws = append(ws, c)
	}
	out, err := FromCOO(n, n, us, vs, ws)
	if err != nil {
		panic(err)
	}
	return out
}
