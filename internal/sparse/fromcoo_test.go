package sparse

import (
	"encoding/binary"
	"sort"
	"testing"

	"lightne/internal/rng"
)

// naiveFromCOO is the reference build: a map accumulates duplicates in input
// order (matching the stable radix path bit for bit), then rows are emitted
// sorted. Deliberately simple — the oracle for the differential and fuzz
// tests.
func naiveFromCOO(rows, cols int, us, vs []uint32, ws []float64) (*CSR, bool) {
	acc := make(map[uint64]float64)
	var order []uint64
	for i := range us {
		if int(us[i]) >= rows || int(vs[i]) >= cols {
			return nil, false
		}
		k := uint64(us[i])<<32 | uint64(vs[i])
		if _, seen := acc[k]; !seen {
			order = append(order, k)
		}
		acc[k] += ws[i]
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	m := &CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int64, rows+1)}
	for _, k := range order {
		m.RowPtr[int(k>>32)+1]++
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	m.ColIdx = make([]uint32, len(order))
	m.Val = make([]float64, len(order))
	for i, k := range order {
		m.ColIdx[i] = uint32(k)
		m.Val[i] = acc[k]
	}
	return m, true
}

func assertCSREqual(t *testing.T, got, want *CSR) {
	t.Helper()
	if got.NumRows != want.NumRows || got.NumCols != want.NumCols {
		t.Fatalf("shape (%d,%d) want (%d,%d)", got.NumRows, got.NumCols, want.NumRows, want.NumCols)
	}
	if len(got.RowPtr) != len(want.RowPtr) {
		t.Fatalf("rowPtr len %d want %d", len(got.RowPtr), len(want.RowPtr))
	}
	for i := range want.RowPtr {
		if got.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("rowPtr[%d]=%d want %d", i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	if len(got.ColIdx) != len(want.ColIdx) {
		t.Fatalf("nnz %d want %d", len(got.ColIdx), len(want.ColIdx))
	}
	for i := range want.ColIdx {
		if got.ColIdx[i] != want.ColIdx[i] {
			t.Fatalf("col[%d]=%d want %d", i, got.ColIdx[i], want.ColIdx[i])
		}
		// Bit-identical: duplicates are summed in input order on both sides.
		if got.Val[i] != want.Val[i] {
			t.Fatalf("val[%d]=%g want %g", i, got.Val[i], want.Val[i])
		}
	}
}

// TestFromCOODifferential compares the radix build against the naive
// reference across the shapes the ISSUE calls out: duplicate entries,
// unsorted input, empty rows, single-row matrices, and empty input.
func TestFromCOODifferential(t *testing.T) {
	s := rng.New(41, 0)
	type tc struct {
		name       string
		rows, cols int
		n          int
		dupSpace   int // triples drawn from a space this small force dups
	}
	cases := []tc{
		{"empty", 5, 5, 0, 1},
		{"single", 7, 9, 1, 1},
		{"one-row", 1, 1000, 5000, 300},
		{"one-col", 1000, 1, 5000, 300},
		{"dense-dups", 20, 20, 20000, 0},
		{"sparse-empty-rows", 5000, 5000, 2000, 0},
		{"mid", 500, 700, 50000, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			us := make([]uint32, c.n)
			vs := make([]uint32, c.n)
			ws := make([]float64, c.n)
			for i := range us {
				if c.dupSpace > 0 {
					us[i] = uint32(s.Intn(c.rows))
					vs[i] = uint32(s.Intn(min(c.cols, c.dupSpace)))
				} else {
					us[i] = uint32(s.Intn(c.rows))
					vs[i] = uint32(s.Intn(c.cols))
				}
				ws[i] = float64(s.Intn(1000))/8 - 40 // includes negatives, zeros
			}
			want, _ := naiveFromCOO(c.rows, c.cols, us, vs, ws)
			got, err := FromCOO(c.rows, c.cols, us, vs, ws)
			if err != nil {
				t.Fatal(err)
			}
			assertCSREqual(t, got, want)
		})
	}
}

// TestFromCOORejectsOutOfRange: the bounds check must still fire.
func TestFromCOORejectsOutOfRange(t *testing.T) {
	if _, err := FromCOO(4, 4, []uint32{4}, []uint32{0}, []float64{1}); err == nil {
		t.Fatal("row out of range accepted")
	}
	if _, err := FromCOO(4, 4, []uint32{0}, []uint32{4}, []float64{1}); err == nil {
		t.Fatal("col out of range accepted")
	}
	if _, err := FromCOO(4, 4, []uint32{0, 1}, []uint32{0}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestFromCOODoesNotMutateInput: the radix build must sort scratch copies,
// never the caller's slices.
func TestFromCOODoesNotMutateInput(t *testing.T) {
	us := []uint32{3, 0, 3, 1}
	vs := []uint32{2, 9, 1, 0}
	ws := []float64{1, 2, 3, 4}
	usOrig := append([]uint32(nil), us...)
	vsOrig := append([]uint32(nil), vs...)
	wsOrig := append([]float64(nil), ws...)
	if _, err := FromCOO(4, 10, us, vs, ws); err != nil {
		t.Fatal(err)
	}
	for i := range us {
		if us[i] != usOrig[i] || vs[i] != vsOrig[i] || ws[i] != wsOrig[i] {
			t.Fatal("FromCOO mutated its input")
		}
	}
}

// FuzzFromCOO feeds arbitrary triple encodings through both builds and
// demands bit-identical CSR output (or matching rejection).
func FuzzFromCOO(f *testing.F) {
	f.Add([]byte{}, uint16(4), uint16(4))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1}, uint16(1), uint16(1))
	// A couple of duplicate-heavy seeds.
	f.Add([]byte{0, 1, 0, 2, 10, 0, 1, 0, 2, 20, 0, 1, 0, 2, 30}, uint16(3), uint16(3))
	f.Add([]byte{1, 0, 0, 3, 1, 0, 0, 0, 0, 2, 0, 0, 1, 0, 4}, uint16(2), uint16(5))
	f.Fuzz(func(t *testing.T, raw []byte, rows16, cols16 uint16) {
		rows := int(rows16%512) + 1
		cols := int(cols16%512) + 1
		// Decode 5-byte records: u(2) v(2) w(1).
		n := len(raw) / 5
		us := make([]uint32, n)
		vs := make([]uint32, n)
		ws := make([]float64, n)
		for i := 0; i < n; i++ {
			rec := raw[i*5:]
			us[i] = uint32(binary.LittleEndian.Uint16(rec[0:2]))
			vs[i] = uint32(binary.LittleEndian.Uint16(rec[2:4]))
			ws[i] = float64(int(rec[4])-128) / 4
		}
		want, ok := naiveFromCOO(rows, cols, us, vs, ws)
		got, err := FromCOO(rows, cols, us, vs, ws)
		if !ok {
			if err == nil {
				t.Fatal("out-of-range input accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("in-range input rejected: %v", err)
		}
		assertCSREqual(t, got, want)
	})
}

// TestFromCSRPartsGrouped: the grouped constructor must accept unsorted
// rows, flag them, answer At correctly via the linear fallback, and keep
// rejecting genuinely malformed parts. FromCSRParts must keep rejecting
// unsorted rows.
func TestFromCSRPartsGrouped(t *testing.T) {
	rowPtr := []int64{0, 3, 3, 5}
	colIdx := []uint32{7, 2, 4, 1, 0}
	val := []float64{1, 2, 3, 4, 5}
	if _, err := FromCSRParts(3, 8, rowPtr, colIdx, val); err == nil {
		t.Fatal("FromCSRParts accepted unsorted columns")
	}
	m, err := FromCSRPartsGrouped(3, 8, rowPtr, colIdx, val)
	if err != nil {
		t.Fatal(err)
	}
	if m.ColumnsSorted() {
		t.Fatal("grouped matrix claims sorted columns")
	}
	checks := map[[2]int]float64{
		{0, 7}: 1, {0, 2}: 2, {0, 4}: 3, {2, 1}: 4, {2, 0}: 5, {0, 3}: 0, {1, 0}: 0,
	}
	for k, want := range checks {
		if got := m.At(k[0], uint32(k[1])); got != want {
			t.Fatalf("At(%d,%d)=%g want %g", k[0], k[1], got, want)
		}
	}
	// Out-of-bounds columns still rejected.
	if _, err := FromCSRPartsGrouped(3, 8, rowPtr, []uint32{7, 2, 4, 1, 99}, val); err == nil {
		t.Fatal("grouped accepted out-of-range column")
	}
	// Bad endpoints still rejected.
	if _, err := FromCSRPartsGrouped(3, 8, []int64{0, 3, 3, 4}, colIdx, val); err == nil {
		t.Fatal("grouped accepted bad rowPtr endpoint")
	}
	// TruncLog must carry the flag; Transpose launders it away.
	if tl := m.TruncLog(); tl.ColumnsSorted() {
		t.Fatal("TruncLog dropped the unsorted flag")
	}
	tr := m.Transpose()
	if !tr.ColumnsSorted() {
		t.Fatal("Transpose output should be sorted")
	}
	for r := 0; r < tr.NumRows; r++ {
		for p := tr.RowPtr[r] + 1; p < tr.RowPtr[r+1]; p++ {
			if tr.ColIdx[p] <= tr.ColIdx[p-1] {
				t.Fatalf("transpose row %d not strictly ascending", r)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
