package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"lightne/internal/dense"
	"lightne/internal/hashtable"
	"lightne/internal/rng"
)

func mustCOO(t *testing.T, rows, cols int, us, vs []uint32, ws []float64) *CSR {
	t.Helper()
	m, err := FromCOO(rows, cols, us, vs, ws)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromCOOBasics(t *testing.T) {
	m := mustCOO(t, 3, 3,
		[]uint32{0, 1, 2, 0},
		[]uint32{1, 2, 0, 1},
		[]float64{1, 2, 3, 4})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ=%d want 3 (duplicate merged)", m.NNZ())
	}
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("At(0,1)=%g want 5", got)
	}
	if got := m.At(1, 2); got != 2 {
		t.Fatalf("At(1,2)=%g", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0)=%g want 0", got)
	}
}

func TestFromCOOOutOfRange(t *testing.T) {
	if _, err := FromCOO(2, 2, []uint32{5}, []uint32{0}, []float64{1}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := FromCOO(2, 2, []uint32{0}, []uint32{0, 1}, []float64{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestRowsSortedAfterBuild(t *testing.T) {
	s := rng.New(2, 0)
	var us, vs []uint32
	var ws []float64
	for i := 0; i < 5000; i++ {
		us = append(us, uint32(s.Intn(50)))
		vs = append(vs, uint32(s.Intn(50)))
		ws = append(ws, 1)
	}
	m := mustCOO(t, 50, 50, us, vs, ws)
	for i := 0; i < 50; i++ {
		for p := m.RowPtr[i] + 1; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p-1] >= m.ColIdx[p] {
				t.Fatalf("row %d unsorted or has duplicates", i)
			}
		}
	}
}

func TestSpMMMatchesDense(t *testing.T) {
	s := rng.New(8, 0)
	for trial := 0; trial < 10; trial++ {
		rows, cols, d := 1+s.Intn(40), 1+s.Intn(40), 1+s.Intn(10)
		nnz := s.Intn(rows * cols)
		var us, vs []uint32
		var ws []float64
		ad := dense.NewMatrix(rows, cols)
		for k := 0; k < nnz; k++ {
			i, j := s.Intn(rows), s.Intn(cols)
			w := s.NormFloat64()
			us = append(us, uint32(i))
			vs = append(vs, uint32(j))
			ws = append(ws, w)
			ad.Set(i, j, ad.At(i, j)+w)
		}
		m := mustCOO(t, rows, cols, us, vs, ws)
		x := dense.NewMatrix(cols, d)
		x.FillGaussian(uint64(trial))
		y := dense.NewMatrix(rows, d)
		SpMM(y, m, x)
		want := dense.NewMatrix(rows, d)
		dense.MatMul(want, ad, x)
		for i := range y.Data {
			if math.Abs(y.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("trial %d: SpMM mismatch at %d: %g vs %g", trial, i, y.Data[i], want.Data[i])
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := mustCOO(t, 3, 4,
		[]uint32{0, 1, 2, 2},
		[]uint32{3, 0, 1, 2},
		[]float64{1, 2, 3, 4})
	tt := m.Transpose().Transpose()
	if tt.NumRows != m.NumRows || tt.NumCols != m.NumCols || tt.NNZ() != m.NNZ() {
		t.Fatal("transpose changed shape or nnz")
	}
	for i := 0; i < m.NumRows; i++ {
		for j := uint32(0); int(j) < m.NumCols; j++ {
			if m.At(i, j) != tt.At(i, j) {
				t.Fatalf("(%d,%d): %g vs %g", i, j, m.At(i, j), tt.At(i, j))
			}
		}
	}
	mt := m.Transpose()
	if mt.At(3, 0) != 1 || mt.At(0, 1) != 2 {
		t.Fatal("transpose entries wrong")
	}
}

func TestScaleRowsColsScale(t *testing.T) {
	m := mustCOO(t, 2, 2, []uint32{0, 1}, []uint32{1, 0}, []float64{2, 3})
	m.ScaleRows([]float64{10, 100})
	if m.At(0, 1) != 20 || m.At(1, 0) != 300 {
		t.Fatalf("ScaleRows wrong: %g %g", m.At(0, 1), m.At(1, 0))
	}
	m.ScaleCols([]float64{0.5, 2})
	if m.At(0, 1) != 40 || m.At(1, 0) != 150 {
		t.Fatalf("ScaleCols wrong: %g %g", m.At(0, 1), m.At(1, 0))
	}
	m.Scale(2)
	if m.At(0, 1) != 80 || m.At(1, 0) != 300 {
		t.Fatalf("Scale wrong: %g %g", m.At(0, 1), m.At(1, 0))
	}
}

func TestTruncLog(t *testing.T) {
	m := mustCOO(t, 1, 4,
		[]uint32{0, 0, 0, 0},
		[]uint32{0, 1, 2, 3},
		[]float64{0.5, 1, math.E, math.E * math.E})
	l := m.TruncLog()
	if l.NNZ() != 2 {
		t.Fatalf("NNZ=%d want 2 (entries <= 1 dropped)", l.NNZ())
	}
	if math.Abs(l.At(0, 2)-1) > 1e-12 {
		t.Fatalf("At(0,2)=%g want 1", l.At(0, 2))
	}
	if math.Abs(l.At(0, 3)-2) > 1e-12 {
		t.Fatalf("At(0,3)=%g want 2", l.At(0, 3))
	}
}

func TestTruncLogProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) > 60 {
			raw = raw[:60]
		}
		var us, vs []uint32
		var ws []float64
		for i, w := range raw {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				continue
			}
			us = append(us, 0)
			vs = append(vs, uint32(i))
			ws = append(ws, math.Abs(w))
		}
		m, err := FromCOO(1, 64, us, vs, ws)
		if err != nil {
			return false
		}
		l := m.TruncLog()
		// Every surviving value is positive and equals log of source.
		for p := int64(0); p < l.NNZ(); p++ {
			if l.Val[p] <= 0 {
				return false
			}
		}
		// Count matches number of source entries > 1 after duplicate merge.
		var want int64
		for p := int64(0); p < m.NNZ(); p++ {
			if m.Val[p] > 1 {
				want++
			}
		}
		return l.NNZ() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromTable(t *testing.T) {
	tab := hashtable.New(16)
	tab.Add(0, 1, 2)
	tab.Add(1, 0, 2)
	tab.Add(2, 2, 5)
	m, err := FromTable(3, tab)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ=%d", m.NNZ())
	}
	if math.Abs(m.At(0, 1)-2) > 1e-5 || math.Abs(m.At(2, 2)-5) > 1e-5 {
		t.Fatal("FromTable entries wrong")
	}
}

func TestApplyAndRowSums(t *testing.T) {
	m := mustCOO(t, 2, 2, []uint32{0, 0, 1}, []uint32{0, 1, 1}, []float64{1, 2, 3})
	m.Apply(func(i int, j uint32, v float64) float64 { return v * 10 })
	sums := m.RowSums()
	if sums[0] != 30 || sums[1] != 30 {
		t.Fatalf("RowSums=%v", sums)
	}
}

func TestIdentityAndAddScaledIdentity(t *testing.T) {
	id := Identity(3)
	if id.NNZ() != 3 || id.At(1, 1) != 1 || id.At(0, 1) != 0 {
		t.Fatal("Identity wrong")
	}
	m := mustCOO(t, 2, 2, []uint32{0}, []uint32{1}, []float64{5})
	s := m.AddScaledIdentity(-2)
	if s.At(0, 0) != -2 || s.At(1, 1) != -2 || s.At(0, 1) != 5 {
		t.Fatalf("AddScaledIdentity entries: %g %g %g", s.At(0, 0), s.At(1, 1), s.At(0, 1))
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := mustCOO(t, 0, 0, nil, nil, nil)
	if m.NNZ() != 0 {
		t.Fatal("empty NNZ")
	}
	m2 := mustCOO(t, 3, 3, nil, nil, nil)
	x := dense.NewMatrix(3, 2)
	x.FillGaussian(1)
	y := dense.NewMatrix(3, 2)
	SpMM(y, m2, x)
	for _, v := range y.Data {
		if v != 0 {
			t.Fatal("SpMM with empty matrix should be zero")
		}
	}
}
