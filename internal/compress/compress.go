// Package compress implements the Ligra+ parallel-byte adjacency format used
// by GBBS and adopted by LightNE for storing very large graphs in memory
// (paper §4.1, "Compression").
//
// A vertex's sorted neighbor list is split into blocks of BlockSize
// neighbors. Within a block, the first neighbor is difference-encoded
// against the source vertex using a signed (zigzag) varint; subsequent
// neighbors are difference-encoded against their predecessor using unsigned
// varints. Because every block is decodable independently given the source,
// high-degree vertices decode in parallel, and fetching the i-th neighbor
// only requires decoding one block — the property LightNE's random walks
// depend on. Per-vertex data is laid out as:
//
//	[block offset table: (numBlocks-1) × uint32] [block 0][block 1]...
//
// where each offset is relative to the end of the offset table (block 0
// always starts at relative offset 0, so it is omitted).
package compress

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"lightne/internal/par"
)

// DefaultBlockSize is the neighbors-per-block setting. The paper selected 64
// after measuring the trade-off between compressed size and the latency of
// fetching an arbitrary incident edge (§4.2).
const DefaultBlockSize = 64

// Adjacency is a compressed adjacency structure for an n-vertex graph.
type Adjacency struct {
	degrees    []uint32
	vtxOffsets []uint64 // len n+1; byte offset of each vertex's region in data
	data       []byte
	blockSize  int
}

// zigzag encodes a signed difference as an unsigned value.
func zigzag(x int64) uint64 { return uint64(x<<1) ^ uint64(x>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// varintLen returns the encoded length in bytes of v as a LEB128 varint.
func varintLen(v uint64) int {
	if v == 0 {
		return 1
	}
	return (bits.Len64(v) + 6) / 7
}

// putVarint appends v to dst in LEB128 form and returns the extended slice
// position (number of bytes written).
func putVarint(dst []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		dst[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	dst[i] = byte(v)
	return i + 1
}

// getVarint decodes a LEB128 varint starting at data[pos] and returns the
// value and the new position.
func getVarint(data []byte, pos int) (uint64, int) {
	var v uint64
	var shift uint
	for {
		b := data[pos]
		pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, pos
		}
		shift += 7
	}
}

// encodedSize returns the number of bytes vertex u's sorted neighbor list
// occupies under the format, including its block offset table.
func encodedSize(u uint32, neighbors []uint32, blockSize int) int {
	d := len(neighbors)
	if d == 0 {
		return 0
	}
	numBlocks := (d + blockSize - 1) / blockSize
	size := 4 * (numBlocks - 1) // offset table
	for b := 0; b < numBlocks; b++ {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > d {
			hi = d
		}
		size += varintLen(zigzag(int64(neighbors[lo]) - int64(u)))
		for i := lo + 1; i < hi; i++ {
			size += varintLen(uint64(neighbors[i] - neighbors[i-1]))
		}
	}
	return size
}

// encodeInto writes vertex u's neighbor list into dst (which must have
// exactly encodedSize bytes) and returns the bytes written.
func encodeInto(dst []byte, u uint32, neighbors []uint32, blockSize int) int {
	d := len(neighbors)
	if d == 0 {
		return 0
	}
	numBlocks := (d + blockSize - 1) / blockSize
	tab := 4 * (numBlocks - 1)
	pos := tab
	for b := 0; b < numBlocks; b++ {
		if b > 0 {
			rel := uint32(pos - tab)
			dst[4*(b-1)] = byte(rel)
			dst[4*(b-1)+1] = byte(rel >> 8)
			dst[4*(b-1)+2] = byte(rel >> 16)
			dst[4*(b-1)+3] = byte(rel >> 24)
		}
		lo := b * blockSize
		hi := lo + blockSize
		if hi > d {
			hi = d
		}
		pos += putVarint(dst[pos:], zigzag(int64(neighbors[lo])-int64(u)))
		for i := lo + 1; i < hi; i++ {
			pos += putVarint(dst[pos:], uint64(neighbors[i]-neighbors[i-1]))
		}
	}
	return pos
}

// Build compresses a CSR graph given by offsets (len n+1) and edges, where
// each vertex's neighbor slice edges[offsets[u]:offsets[u+1]] must be sorted
// ascending. blockSize <= 0 selects DefaultBlockSize. Encoding runs in
// parallel over vertices (a size pass, a prefix scan, then an encode pass).
func Build(offsets []int64, edges []uint32, blockSize int) (*Adjacency, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	n := len(offsets) - 1
	if n < 0 {
		return nil, fmt.Errorf("compress: offsets must have at least one element")
	}
	a := &Adjacency{
		degrees:    make([]uint32, n),
		vtxOffsets: make([]uint64, n+1),
		blockSize:  blockSize,
	}
	sizes := make([]int64, n)
	// badVertex is a lock-free error slot: concurrent workers race to CAS the
	// first unsorted vertex they see (stored as u+1 so zero means "none"), and
	// every worker early-outs once any failure is published. A plain shared
	// error variable here was a data race when two chunks failed at once.
	var badVertex atomic.Int64
	par.For(n, 256, func(u int) {
		if badVertex.Load() != 0 {
			return
		}
		lo, hi := offsets[u], offsets[u+1]
		nbrs := edges[lo:hi]
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i] < nbrs[i-1] {
				badVertex.CompareAndSwap(0, int64(u)+1)
				return
			}
		}
		a.degrees[u] = uint32(hi - lo)
		sizes[u] = int64(encodedSize(uint32(u), nbrs, blockSize))
	})
	if bad := badVertex.Load(); bad != 0 {
		return nil, fmt.Errorf("compress: neighbors of vertex %d not sorted", bad-1)
	}
	total := par.ExclusiveScan(sizes)
	for u := 0; u < n; u++ {
		a.vtxOffsets[u] = uint64(sizes[u])
	}
	a.vtxOffsets[n] = uint64(total)
	a.data = make([]byte, total)
	par.For(n, 256, func(u int) {
		lo, hi := offsets[u], offsets[u+1]
		start, end := a.vtxOffsets[u], a.vtxOffsets[u+1]
		encodeInto(a.data[start:end], uint32(u), edges[lo:hi], blockSize)
	})
	return a, nil
}

// NumVertices returns the number of vertices.
func (a *Adjacency) NumVertices() int { return len(a.degrees) }

// Degree returns the out-degree of u.
func (a *Adjacency) Degree(u uint32) uint32 { return a.degrees[u] }

// SizeBytes returns the total compressed payload size (neighbor data plus
// per-vertex tables), used for compression-ratio reporting.
func (a *Adjacency) SizeBytes() int64 {
	return int64(len(a.data)) + int64(len(a.vtxOffsets))*8 + int64(len(a.degrees))*4
}

// BlockSize returns the configured neighbors-per-block.
func (a *Adjacency) BlockSize() int { return a.blockSize }

// region returns the encoded bytes and block-table length for vertex u,
// along with its degree. ok is false for degree-0 vertices.
func (a *Adjacency) region(u uint32) (data []byte, tab int, d int, ok bool) {
	d = int(a.degrees[u])
	if d == 0 {
		return nil, 0, 0, false
	}
	numBlocks := (d + a.blockSize - 1) / a.blockSize
	tab = 4 * (numBlocks - 1)
	return a.data[a.vtxOffsets[u]:a.vtxOffsets[u+1]], tab, d, true
}

// Decode calls fn for every neighbor of u in ascending order.
func (a *Adjacency) Decode(u uint32, fn func(v uint32)) {
	data, tab, d, ok := a.region(u)
	if !ok {
		return
	}
	pos := tab
	remaining := d
	for remaining > 0 {
		cnt := a.blockSize
		if cnt > remaining {
			cnt = remaining
		}
		raw, p := getVarint(data, pos)
		pos = p
		v := uint32(int64(u) + unzigzag(raw))
		fn(v)
		for i := 1; i < cnt; i++ {
			diff, p := getVarint(data, pos)
			pos = p
			v += uint32(diff)
			fn(v)
		}
		remaining -= cnt
	}
}

// Nth returns the i-th neighbor (0-based, ascending order) of u. It decodes
// only the block containing index i — the operation LightNE's random-walk
// step relies on (paper §4.2). Panics if i is out of range.
func (a *Adjacency) Nth(u uint32, i int) uint32 {
	data, tab, d, ok := a.region(u)
	if !ok || i < 0 || i >= d {
		panic(fmt.Sprintf("compress: neighbor index %d out of range for vertex %d (degree %d)", i, u, d))
	}
	block := i / a.blockSize
	pos := blockStart(data, tab, block)
	raw, p := getVarint(data, pos)
	pos = p
	v := uint32(int64(u) + unzigzag(raw))
	for k := block*a.blockSize + 1; k <= i; k++ {
		diff, p := getVarint(data, pos)
		pos = p
		v += uint32(diff)
	}
	return v
}

// Neighbors appends u's neighbors to dst and returns the extended slice.
func (a *Adjacency) Neighbors(u uint32, dst []uint32) []uint32 {
	a.Decode(u, func(v uint32) { dst = append(dst, v) })
	return dst
}
