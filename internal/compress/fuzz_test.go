package compress

import "testing"

// FuzzDecode drives the checked decode path over arbitrary single-vertex
// encodings: a fuzzer-controlled payload with a claimed degree and block
// size, exactly what an attacker controls in an mmap'd LNGC file. The
// checked path must never panic; when it accepts the bytes, the cursor,
// block and Nth decoders must all agree with the sequential decode (a nil
// DecodeChecked certifies the unchecked paths are in-bounds).
func FuzzDecode(f *testing.F) {
	// Seed with a real encoding and truncations of it at every length —
	// truncated varints, severed block tables, and short final blocks.
	adj := [][]uint32{{1, 3, 3, 7, 100, 2000, 2001, 2002, 70000}}
	offsets, edges := buildCSR(adj)
	for _, bs := range []int{1, 2, 4} {
		a, err := Build(offsets, edges, bs)
		if err != nil {
			f.Fatal(err)
		}
		_, _, data := a.Sections()
		for cut := 0; cut <= len(data); cut++ {
			f.Add(uint16(len(adj[0])), uint8(bs), data[:cut])
		}
	}
	f.Add(uint16(3), uint8(0), []byte{0x80, 0x80, 0x80})                                     // unterminated varint
	f.Add(uint16(200), uint8(1), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1}) // huge table

	f.Fuzz(func(t *testing.T, degree uint16, blockSize uint8, data []byte) {
		bs := int(blockSize)
		if bs == 0 {
			bs = DefaultBlockSize
		}
		a, err := FromSections(
			[]uint32{uint32(degree)},
			[]uint64{0, uint64(len(data))},
			data, bs)
		if err != nil {
			return
		}
		var seq []uint32
		if err := a.DecodeChecked(0, func(v uint32) { seq = append(seq, v) }); err != nil {
			// Rejected: the unchecked path may not be touched. NthChecked
			// must still fail cleanly rather than succeed on corrupt bytes
			// the sequential check refused... it may succeed for early
			// blocks (corruption can be later), so only require no panic.
			for i := 0; i < int(degree); i += 1 + int(degree)/8 {
				_, _ = a.NthChecked(0, i)
			}
			return
		}
		if len(seq) != int(degree) {
			t.Fatalf("accepted decode yielded %d neighbors for degree %d", len(seq), degree)
		}
		if degree == 0 {
			return
		}
		// Cross-validate every random-access decoder against the sequence.
		var blocks []uint32
		for b := 0; b < a.NumBlocks(0); b++ {
			blocks = a.DecodeBlock(0, b, blocks)
		}
		var cur Cursor
		cur.Begin(a, 0, 1) // lazy mode
		var full Cursor
		full.Begin(a, 0, int(degree)+1) // full-decode mode
		for i, want := range seq {
			if got, err := a.NthChecked(0, i); err != nil || got != want {
				t.Fatalf("NthChecked(0,%d)=(%d,%v) want %d", i, got, err, want)
			}
			if got := a.Nth(0, i); got != want {
				t.Fatalf("Nth(0,%d)=%d want %d", i, got, want)
			}
			if blocks[i] != want {
				t.Fatalf("DecodeBlock[%d]=%d want %d", i, blocks[i], want)
			}
			if got := cur.Nth(i); got != want {
				t.Fatalf("lazy cursor Nth(%d)=%d want %d", i, got, want)
			}
			if got := full.Nth(i); got != want {
				t.Fatalf("full cursor Nth(%d)=%d want %d", i, got, want)
			}
		}
	})
}
