package compress

import "fmt"

// Verbatim (de)serialization of an Adjacency, used by the LNGC on-disk
// format: the three backing arrays round-trip untouched, so a graph
// compressed once never needs re-encoding — and when the sections are views
// into an mmap'd file, loading performs no per-edge work at all.

// Sections exposes the backing arrays: per-vertex degrees (len n), byte
// offsets of each vertex's encoded region (len n+1), and the encoded
// payload. Callers must treat them as read-only.
func (a *Adjacency) Sections() (degrees []uint32, vtxOffsets []uint64, data []byte) {
	return a.degrees, a.vtxOffsets, a.data
}

// FromSections reassembles an Adjacency around existing backing arrays
// (typically views into an mmap'd LNGC file) without copying. Only O(1)
// structural facts are verified here, keeping cold starts constant-time;
// the per-vertex invariants that the unchecked decoders rely on (monotone
// vertex offsets, well-formed varints, consistent block tables) are
// certified by Validate, which untrusted files should be run through before
// the panicking fast paths touch them.
func FromSections(degrees []uint32, vtxOffsets []uint64, data []byte, blockSize int) (*Adjacency, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("compress: block size %d must be positive", blockSize)
	}
	if len(vtxOffsets) != len(degrees)+1 {
		return nil, fmt.Errorf("compress: %d vertex offsets for %d degrees (want n+1)", len(vtxOffsets), len(degrees))
	}
	if vtxOffsets[0] != 0 {
		return nil, fmt.Errorf("compress: first vertex offset is %d, want 0", vtxOffsets[0])
	}
	if last := vtxOffsets[len(vtxOffsets)-1]; last != uint64(len(data)) {
		return nil, fmt.Errorf("compress: vertex offsets end at %d but payload has %d bytes", last, len(data))
	}
	return &Adjacency{degrees: degrees, vtxOffsets: vtxOffsets, data: data, blockSize: blockSize}, nil
}

// Validate deep-checks the structure end to end: monotone vertex offsets,
// every region decodable with bounded reads, block tables consistent with
// sequential decoding, and region sizes exactly matching the declared
// degrees. Runs serially in O(data); a nil return certifies the unchecked
// Decode/Nth/DecodeBlock paths are in-bounds for every vertex.
func (a *Adjacency) Validate() error {
	for u := 0; u < len(a.degrees); u++ {
		if a.vtxOffsets[u] > a.vtxOffsets[u+1] {
			return fmt.Errorf("compress: vertex offsets decrease at vertex %d", u)
		}
		if a.degrees[u] == 0 && a.vtxOffsets[u] != a.vtxOffsets[u+1] {
			return fmt.Errorf("compress: isolated vertex %d has a non-empty region", u)
		}
		if err := a.DecodeChecked(uint32(u), func(uint32) {}); err != nil {
			return err
		}
	}
	return nil
}
