package compress

import "fmt"

// Checked decoding for untrusted bytes. The hot-path decoders (Decode, Nth,
// DecodeBlock) trust the encoding: on truncated or corrupt input they fail
// with a bare index-out-of-range panic, which is fine for adjacency this
// process built but not for bytes mmap'd from a file. The *Checked variants
// below bound every read and return errors instead, and are what
// graph.Validate and the fuzz harness drive over loaded graphs.

// maxVarintBytes caps a LEB128 varint at the ten bytes a uint64 can need; a
// longer run of continuation bits is corrupt, not just slow.
const maxVarintBytes = 10

// getVarintChecked decodes a varint with bounds checking.
func getVarintChecked(data []byte, pos int) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		if pos >= len(data) {
			return 0, 0, fmt.Errorf("compress: varint truncated at byte %d", pos)
		}
		if i == maxVarintBytes {
			return 0, 0, fmt.Errorf("compress: varint longer than %d bytes at byte %d", maxVarintBytes, pos-i)
		}
		b := data[pos]
		pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, pos, nil
		}
		shift += 7
	}
}

// regionChecked is region with the slicing bounds validated, so corrupt
// vertex offsets surface as errors rather than slice panics.
func (a *Adjacency) regionChecked(u uint32) (data []byte, tab, d int, err error) {
	if int(u) >= len(a.degrees) {
		return nil, 0, 0, fmt.Errorf("compress: vertex %d out of range (n=%d)", u, len(a.degrees))
	}
	d = int(a.degrees[u])
	if d == 0 {
		return nil, 0, 0, nil
	}
	start, end := a.vtxOffsets[u], a.vtxOffsets[u+1]
	if start > end || end > uint64(len(a.data)) {
		return nil, 0, 0, fmt.Errorf("compress: vertex %d region [%d,%d) exceeds %d data bytes", u, start, end, len(a.data))
	}
	numBlocks := (d + a.blockSize - 1) / a.blockSize
	tab = 4 * (numBlocks - 1)
	data = a.data[start:end]
	if tab > len(data) {
		return nil, 0, 0, fmt.Errorf("compress: vertex %d block table (%d bytes) exceeds its %d-byte region", u, tab, len(data))
	}
	return data, tab, d, nil
}

// DecodeChecked calls fn for every neighbor of u in encoding order,
// validating every read: region bounds, varint bounds and length, block
// boundaries against the block offset table, and that the region holds
// exactly the declared degree with no trailing bytes. A nil error therefore
// certifies that the unchecked Decode, Nth and DecodeBlock paths cannot
// read out of bounds for this vertex.
func (a *Adjacency) DecodeChecked(u uint32, fn func(v uint32)) error {
	data, tab, d, err := a.regionChecked(u)
	if err != nil || d == 0 {
		return err
	}
	pos := tab
	remaining := d
	block := 0
	for remaining > 0 {
		// Sequential decoding must land exactly where the offset table says
		// the block starts, or Nth's table-hopping would diverge.
		if want := blockStartChecked(data, tab, block); want < 0 {
			return fmt.Errorf("compress: vertex %d block %d offset entry out of table", u, block)
		} else if pos != want {
			return fmt.Errorf("compress: vertex %d block %d starts at %d but table says %d", u, block, pos, want)
		}
		cnt := a.blockSize
		if cnt > remaining {
			cnt = remaining
		}
		raw, p, err := getVarintChecked(data, pos)
		if err != nil {
			return fmt.Errorf("compress: vertex %d block %d: %w", u, block, err)
		}
		pos = p
		v := uint32(int64(u) + unzigzag(raw))
		fn(v)
		for i := 1; i < cnt; i++ {
			diff, p, err := getVarintChecked(data, pos)
			if err != nil {
				return fmt.Errorf("compress: vertex %d block %d: %w", u, block, err)
			}
			pos = p
			v += uint32(diff)
			fn(v)
		}
		remaining -= cnt
		block++
	}
	if pos != len(data) {
		return fmt.Errorf("compress: vertex %d has %d trailing bytes after its last block", u, len(data)-pos)
	}
	return nil
}

// blockStartChecked is blockStart with the table read bounds-checked;
// returns -1 when the table entry itself is out of range. (tab <= len(data)
// is established by regionChecked, so entries before block are readable.)
func blockStartChecked(data []byte, tab, block int) int {
	if block == 0 {
		return tab
	}
	if 4*block > tab {
		return -1
	}
	return blockStart(data, tab, block)
}

// NthChecked is Nth with every read bounded: out-of-range indices, corrupt
// block tables and truncated varints return errors instead of panicking.
func (a *Adjacency) NthChecked(u uint32, i int) (uint32, error) {
	data, tab, d, err := a.regionChecked(u)
	if err != nil {
		return 0, err
	}
	if i < 0 || i >= d {
		return 0, fmt.Errorf("compress: neighbor index %d out of range for vertex %d (degree %d)", i, u, d)
	}
	block := i / a.blockSize
	pos := blockStartChecked(data, tab, block)
	if pos < 0 {
		return 0, fmt.Errorf("compress: vertex %d block %d offset entry out of table", u, block)
	}
	if pos > len(data) {
		return 0, fmt.Errorf("compress: vertex %d block %d offset %d exceeds its %d-byte region", u, block, pos, len(data))
	}
	raw, p, err := getVarintChecked(data, pos)
	if err != nil {
		return 0, fmt.Errorf("compress: vertex %d block %d: %w", u, block, err)
	}
	pos = p
	v := uint32(int64(u) + unzigzag(raw))
	for k := block*a.blockSize + 1; k <= i; k++ {
		diff, p, err := getVarintChecked(data, pos)
		if err != nil {
			return 0, fmt.Errorf("compress: vertex %d block %d: %w", u, block, err)
		}
		pos = p
		v += uint32(diff)
	}
	return v, nil
}
