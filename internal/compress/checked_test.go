package compress

import (
	"math/rand"
	"testing"
)

func TestCheckedMatchesUncheckedOnValidInput(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	adj := randomAdj(r, 50, 200)
	a := mustBuild(t, adj, 7)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate on freshly built adjacency: %v", err)
	}
	for u, nbrs := range adj {
		var got []uint32
		if err := a.DecodeChecked(uint32(u), func(v uint32) { got = append(got, v) }); err != nil {
			t.Fatalf("DecodeChecked(%d): %v", u, err)
		}
		if len(got) != len(nbrs) {
			t.Fatalf("vertex %d: %d decoded, want %d", u, len(got), len(nbrs))
		}
		for i := range nbrs {
			if got[i] != nbrs[i] {
				t.Fatalf("vertex %d idx %d: %d want %d", u, i, got[i], nbrs[i])
			}
			nth, err := a.NthChecked(uint32(u), i)
			if err != nil {
				t.Fatalf("NthChecked(%d,%d): %v", u, i, err)
			}
			if nth != nbrs[i] {
				t.Fatalf("NthChecked(%d,%d)=%d want %d", u, i, nth, nbrs[i])
			}
		}
	}
}

func TestCheckedErrorsOnCorruptInput(t *testing.T) {
	adj := [][]uint32{{10, 20, 30, 40, 50}, {0}}
	a := mustBuild(t, adj, 2)
	degrees, vtxOffsets, data := a.Sections()

	// Truncate the payload at every length: the checked path must error
	// (never panic) everywhere except the full length.
	for cut := 0; cut < len(data); cut++ {
		offs := append([]uint64(nil), vtxOffsets...)
		for i := range offs {
			if offs[i] > uint64(cut) {
				offs[i] = uint64(cut)
			}
		}
		trunc, err := FromSections(degrees, offs, data[:cut], a.BlockSize())
		if err != nil {
			continue // structurally rejected: also fine
		}
		if err := trunc.Validate(); err == nil {
			t.Fatalf("cut=%d: truncated adjacency validated", cut)
		}
	}

	// Flip every payload byte: Validate must never panic and Decode output
	// must stay degree-bounded when it does pass (a flipped diff byte can
	// still be a well-formed encoding of different neighbors).
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		m, err := FromSections(degrees, vtxOffsets, mut, a.BlockSize())
		if err != nil {
			continue
		}
		if err := m.Validate(); err != nil {
			continue
		}
		n := 0
		if err := m.DecodeChecked(0, func(uint32) { n++ }); err == nil && n != int(degrees[0]) {
			t.Fatalf("byte %d: decode yielded %d neighbors, degree says %d", i, n, degrees[0])
		}
	}
}

func TestNthCheckedOutOfRange(t *testing.T) {
	a := mustBuild(t, [][]uint32{{1}, {0}}, 0)
	if _, err := a.NthChecked(0, 1); err == nil {
		t.Fatal("expected index error")
	}
	if _, err := a.NthChecked(0, -1); err == nil {
		t.Fatal("expected negative-index error")
	}
	if _, err := a.NthChecked(9, 0); err == nil {
		t.Fatal("expected vertex-range error")
	}
}

func TestFromSectionsStructuralErrors(t *testing.T) {
	if _, err := FromSections([]uint32{1}, []uint64{0}, nil, 64); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := FromSections([]uint32{1}, []uint64{0, 5}, []byte{1}, 64); err == nil {
		t.Fatal("expected payload-length error")
	}
	if _, err := FromSections([]uint32{1}, []uint64{1, 1}, []byte{1}, 64); err == nil {
		t.Fatal("expected nonzero-first-offset error")
	}
	if _, err := FromSections(nil, []uint64{0}, nil, 0); err == nil {
		t.Fatal("expected block-size error")
	}
	// Decreasing offsets pass the O(1) checks but must fail Validate.
	a, err := FromSections([]uint32{1, 1, 1}, []uint64{0, 2, 1, 2}, []byte{0, 0}, 64)
	if err != nil {
		t.Fatalf("FromSections: %v", err)
	}
	if err := a.Validate(); err == nil {
		t.Fatal("expected Validate to reject decreasing vertex offsets")
	}
	// A degree-1 vertex with an empty region is caught by the decode check.
	b, err := FromSections([]uint32{1, 1}, []uint64{0, 1, 1}, []byte{0}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err == nil {
		t.Fatal("expected Validate to reject vertex 1's empty region with degree 1")
	}
}

// TestSectionsRoundTrip certifies verbatim reassembly: FromSections over
// Sections yields an adjacency whose decode output is bit-identical.
func TestSectionsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	adj := randomAdj(r, 40, 90)
	a := mustBuild(t, adj, 5)
	degrees, vtxOffsets, data := a.Sections()
	b, err := FromSections(degrees, vtxOffsets, data, a.BlockSize())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := range adj {
		wa := a.Neighbors(uint32(u), nil)
		wb := b.Neighbors(uint32(u), nil)
		if len(wa) != len(wb) {
			t.Fatalf("vertex %d: %d vs %d neighbors", u, len(wa), len(wb))
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("vertex %d idx %d: %d vs %d", u, i, wa[i], wb[i])
			}
		}
	}
}
