package compress

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildCSR converts per-vertex neighbor slices into (offsets, edges).
func buildCSR(adj [][]uint32) ([]int64, []uint32) {
	offsets := make([]int64, len(adj)+1)
	var edges []uint32
	for u, nbrs := range adj {
		offsets[u+1] = offsets[u] + int64(len(nbrs))
		edges = append(edges, nbrs...)
	}
	return offsets, edges
}

func mustBuild(t *testing.T, adj [][]uint32, blockSize int) *Adjacency {
	t.Helper()
	offsets, edges := buildCSR(adj)
	a, err := Build(offsets, edges, blockSize)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return a
}

func TestRoundtripSmall(t *testing.T) {
	adj := [][]uint32{
		{1, 2, 3},
		{0, 2},
		{0, 1, 3},
		{0, 2},
		{}, // isolated vertex
	}
	a := mustBuild(t, adj, 2)
	if a.NumVertices() != 5 {
		t.Fatalf("NumVertices=%d", a.NumVertices())
	}
	for u, want := range adj {
		if int(a.Degree(uint32(u))) != len(want) {
			t.Fatalf("Degree(%d)=%d want %d", u, a.Degree(uint32(u)), len(want))
		}
		got := a.Neighbors(uint32(u), nil)
		if len(got) != len(want) {
			t.Fatalf("vertex %d: got %v want %v", u, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d: got %v want %v", u, got, want)
			}
			if nth := a.Nth(uint32(u), i); nth != want[i] {
				t.Fatalf("Nth(%d,%d)=%d want %d", u, i, nth, want[i])
			}
		}
	}
}

func TestRoundtripRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(300)
		blockSize := 1 + r.Intn(100)
		adj := make([][]uint32, n)
		for u := range adj {
			d := r.Intn(200)
			if d > n {
				d = n // cannot draw more distinct neighbors than vertices
			}
			set := map[uint32]bool{}
			for len(set) < d {
				set[uint32(r.Intn(n))] = true
			}
			for v := range set {
				adj[u] = append(adj[u], v)
			}
			sort.Slice(adj[u], func(i, j int) bool { return adj[u][i] < adj[u][j] })
		}
		a := mustBuild(t, adj, blockSize)
		for u, want := range adj {
			got := a.Neighbors(uint32(u), nil)
			if len(got) != len(want) {
				t.Fatalf("trial %d vertex %d: len %d want %d", trial, u, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d vertex %d idx %d: got %d want %d", trial, u, i, got[i], want[i])
				}
			}
			// Spot check Nth on a few random indices.
			for k := 0; k < 3 && len(want) > 0; k++ {
				i := r.Intn(len(want))
				if nth := a.Nth(uint32(u), i); nth != want[i] {
					t.Fatalf("trial %d Nth(%d,%d)=%d want %d", trial, u, i, nth, want[i])
				}
			}
		}
	}
}

func TestDuplicateNeighborsAllowed(t *testing.T) {
	// Multigraph edges (duplicates) encode as zero diffs and must roundtrip.
	adj := [][]uint32{{5, 5, 5, 7, 7}, {}, {}, {}, {}, {0}, {}, {0}}
	a := mustBuild(t, adj, 2)
	got := a.Neighbors(0, nil)
	want := []uint32{5, 5, 5, 7, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if a.Nth(0, 4) != 7 {
		t.Fatalf("Nth(0,4)=%d", a.Nth(0, 4))
	}
}

func TestUnsortedRejected(t *testing.T) {
	offsets := []int64{0, 2}
	edges := []uint32{3, 1}
	if _, err := Build(offsets, edges, 0); err == nil {
		t.Fatal("expected error for unsorted neighbors")
	}
}

func TestEmptyGraph(t *testing.T) {
	a, err := Build([]int64{0}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumVertices() != 0 {
		t.Fatalf("NumVertices=%d", a.NumVertices())
	}
}

func TestNthPanicsOutOfRange(t *testing.T) {
	a := mustBuild(t, [][]uint32{{1}, {0}}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Nth(0, 1)
}

func TestVarintRoundtripProperty(t *testing.T) {
	f := func(v uint64) bool {
		buf := make([]byte, 10)
		n := putVarint(buf, v)
		if n != varintLen(v) {
			return false
		}
		got, pos := getVarint(buf, 0)
		return got == v && pos == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZigzagRoundtripProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionShrinksCluteredNeighborhoods(t *testing.T) {
	// Neighbors close to the source compress to ~1 byte each vs 4 raw.
	n := 10000
	adj := make([][]uint32, n)
	for u := 0; u < n; u++ {
		for k := -8; k <= 8; k++ {
			v := u + k
			if v >= 0 && v < n && v != u {
				adj[u] = append(adj[u], uint32(v))
			}
		}
	}
	a := mustBuild(t, adj, 0)
	var rawBytes int64
	for _, nbrs := range adj {
		rawBytes += int64(4 * len(nbrs))
	}
	if int64(len(a.data)) >= rawBytes/2 {
		t.Fatalf("compressed payload %d not < half of raw %d", len(a.data), rawBytes)
	}
}
