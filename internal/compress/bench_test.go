package compress

import (
	"sort"
	"testing"

	"lightne/internal/rng"
)

func buildRandomCSR(n, deg int, seed uint64) ([]int64, []uint32) {
	s := rng.New(seed, 0)
	offsets := make([]int64, n+1)
	var edges []uint32
	for u := 0; u < n; u++ {
		set := map[uint32]bool{}
		for len(set) < deg {
			set[uint32(s.Intn(n))] = true
		}
		var nbrs []uint32
		for v := range set {
			nbrs = append(nbrs, v)
		}
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		edges = append(edges, nbrs...)
		offsets[u+1] = offsets[u] + int64(len(nbrs))
	}
	return offsets, edges
}

func BenchmarkBuild(b *testing.B) {
	offsets, edges := buildRandomCSR(20000, 20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(offsets, edges, 64); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(edges) * 4))
}

func BenchmarkDecodeAll(b *testing.B) {
	offsets, edges := buildRandomCSR(20000, 20, 2)
	adj, err := Build(offsets, edges, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		u := uint32(i % 20000)
		adj.Decode(u, func(v uint32) { sink ^= v })
	}
	_ = sink
}

func BenchmarkNth(b *testing.B) {
	offsets, edges := buildRandomCSR(20000, 64, 3)
	adj, err := Build(offsets, edges, 64)
	if err != nil {
		b.Fatal(err)
	}
	s := rng.New(5, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := uint32(s.Intn(20000))
		_ = adj.Nth(u, s.Intn(int(adj.Degree(u))))
	}
}
