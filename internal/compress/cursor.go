package compress

// Block-granular decoding for the batched walker (paper §4.2). The wave
// sampler radix-groups walk states by current vertex between steps, so all
// lookups against one vertex's adjacency arrive back to back. A Cursor
// exploits that: it decodes each block the group actually touches once into
// a caller-owned buffer and serves every subsequent lookup by indexing,
// replacing the per-lookup block re-decode Nth pays (O(blockSize) varint
// work per walk step).

// NumBlocks returns the number of encoded blocks of vertex u (0 for
// isolated vertices).
func (a *Adjacency) NumBlocks(u uint32) int {
	d := int(a.degrees[u])
	if d == 0 {
		return 0
	}
	return (d + a.blockSize - 1) / a.blockSize
}

// blockStart returns the position of the given block inside the vertex
// region (data), whose block table occupies the first tab bytes.
func blockStart(data []byte, tab, block int) int {
	if block == 0 {
		return tab
	}
	off := block - 1
	rel := uint32(data[4*off]) | uint32(data[4*off+1])<<8 | uint32(data[4*off+2])<<16 | uint32(data[4*off+3])<<24
	return tab + int(rel)
}

// DecodeBlock appends the neighbors of vertex u stored in the given block
// (full blocks hold BlockSize neighbors; the last may be short) to dst and
// returns the extended slice. Like Decode, it trusts the encoding; use the
// checked path for untrusted bytes. Panics if block is out of range.
func (a *Adjacency) DecodeBlock(u uint32, block int, dst []uint32) []uint32 {
	data, tab, d, ok := a.region(u)
	if !ok || block < 0 || block >= a.NumBlocks(u) {
		panic("compress: block index out of range")
	}
	lo := block * a.blockSize
	hi := lo + a.blockSize
	if hi > d {
		hi = d
	}
	pos := blockStart(data, tab, block)
	raw, p := getVarint(data, pos)
	pos = p
	v := uint32(int64(u) + unzigzag(raw))
	dst = append(dst, v)
	for i := lo + 1; i < hi; i++ {
		diff, p := getVarint(data, pos)
		pos = p
		v += uint32(diff)
		dst = append(dst, v)
	}
	return dst
}

// Cursor serves repeated Nth lookups against one vertex at a time, decoding
// each needed block at most once per Begin. It owns a reusable buffer, so a
// long-lived per-worker Cursor performs no steady-state allocation. The
// zero value is ready to use. Not safe for concurrent use.
type Cursor struct {
	a     *Adjacency
	u     uint32
	block int  // cached block index in lazy mode; -1 = none
	lazy  bool // buf caches one block on demand instead of the full list
	buf   []uint32
}

// Begin prepares the cursor to serve roughly k Nth lookups for vertex u.
// When k covers the vertex's blocks (k >= NumBlocks), the whole adjacency is
// decoded up front — every block is needed in expectation and decoding
// sequentially is cheaper than per-block table hops. For sparser groups the
// cursor stays lazy, decoding only the blocks lookups actually land in.
func (c *Cursor) Begin(a *Adjacency, u uint32, k int) {
	c.a, c.u = a, u
	nb := a.NumBlocks(u)
	if nb == 0 {
		c.lazy = false
		c.buf = c.buf[:0]
		return
	}
	if k >= nb {
		c.lazy = false
		c.buf = a.Neighbors(u, c.buf[:0])
		return
	}
	c.lazy = true
	c.block = -1
}

// Nth returns the i-th neighbor (0-based) of the vertex passed to Begin.
// Panics if i is out of range, like Adjacency.Nth.
func (c *Cursor) Nth(i int) uint32 {
	if !c.lazy {
		return c.buf[i]
	}
	b := i / c.a.blockSize
	if b != c.block {
		c.buf = c.a.DecodeBlock(c.u, b, c.buf[:0])
		c.block = b
	}
	return c.buf[i-b*c.a.blockSize]
}
