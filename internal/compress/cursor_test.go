package compress

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// randomAdj builds a sorted random adjacency for n vertices with degrees up
// to maxDeg (duplicates allowed — the format is a multigraph codec).
func randomAdj(r *rand.Rand, n, maxDeg int) [][]uint32 {
	adj := make([][]uint32, n)
	for u := range adj {
		d := r.Intn(maxDeg + 1)
		for i := 0; i < d; i++ {
			adj[u] = append(adj[u], uint32(r.Intn(n)))
		}
		sort.Slice(adj[u], func(i, j int) bool { return adj[u][i] < adj[u][j] })
	}
	return adj
}

func TestDecodeBlockMatchesDecode(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		blockSize := 1 + r.Intn(20)
		adj := randomAdj(r, 80, 150)
		a := mustBuild(t, adj, blockSize)
		for u, want := range adj {
			var got []uint32
			for b := 0; b < a.NumBlocks(uint32(u)); b++ {
				got = a.DecodeBlock(uint32(u), b, got)
			}
			if len(got) != len(want) {
				t.Fatalf("vertex %d: %d neighbors via blocks, want %d", u, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("vertex %d idx %d: block decode %d want %d", u, i, got[i], want[i])
				}
			}
		}
	}
}

func TestCursorMatchesNth(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	adj := randomAdj(r, 60, 300)
	for _, blockSize := range []int{1, 3, 16, 64} {
		a := mustBuild(t, adj, blockSize)
		var c Cursor
		for u, nbrs := range adj {
			if len(nbrs) == 0 {
				c.Begin(a, uint32(u), 1)
				continue
			}
			// Sweep group sizes across the lazy/full threshold (NumBlocks).
			for _, k := range []int{1, 2, a.NumBlocks(uint32(u)), 4 * a.NumBlocks(uint32(u))} {
				c.Begin(a, uint32(u), k)
				for rep := 0; rep < k; rep++ {
					i := r.Intn(len(nbrs))
					if got, want := c.Nth(i), nbrs[i]; got != want {
						t.Fatalf("blockSize=%d u=%d k=%d i=%d: cursor %d want %d", blockSize, u, k, i, got, want)
					}
				}
			}
		}
	}
}

func TestCursorReusedAcrossVertices(t *testing.T) {
	adj := [][]uint32{{1, 2, 3, 4, 5}, {0}, {0}, {0}, {0}, {0}}
	a := mustBuild(t, adj, 2)
	var c Cursor
	c.Begin(a, 0, 100) // full decode of vertex 0
	if c.Nth(4) != 5 {
		t.Fatal("full-mode lookup failed")
	}
	c.Begin(a, 1, 1) // switch vertex in lazy mode
	if c.Nth(0) != 0 {
		t.Fatal("cursor kept stale vertex data across Begin")
	}
	c.Begin(a, 0, 1) // back, lazy: block 2 holds index 4
	if c.Nth(4) != 5 || c.Nth(3) != 4 {
		t.Fatal("lazy-mode block hop failed after vertex switch")
	}
}

// TestBuildUnsortedRace feeds Build a CSR whose unsorted vertices land in
// different parallel chunks, so two workers detect failure concurrently.
// Under -race this certifies the error slot is synchronized (the original
// code assigned a shared error variable from both workers).
func TestBuildUnsortedRace(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	n := 1024 // four 256-vertex chunks
	offsets := make([]int64, n+1)
	var edges []uint32
	for u := 0; u < n; u++ {
		offsets[u] = int64(len(edges))
		if u == 3 || u == n-3 {
			edges = append(edges, 9, 1) // unsorted, one per extreme chunk
		} else {
			edges = append(edges, uint32(u%7), uint32(u%7)+1)
		}
	}
	offsets[n] = int64(len(edges))
	for i := 0; i < 20; i++ {
		if _, err := Build(offsets, edges, 4); err == nil {
			t.Fatal("expected unsorted-input error")
		}
	}
}
