// Package rng provides fast, seedable, allocation-free pseudo-random number
// generators used by the samplers and the randomized SVD. It replaces both
// the per-thread RNG state GBBS threads carry and Intel MKL's vsRngGaussian
// vector Gaussian generator.
//
// The core generator is xoshiro256++ seeded through SplitMix64, the standard
// pairing recommended by the xoshiro authors: SplitMix64 decorrelates
// low-entropy seeds, and xoshiro256++ passes BigCrush while costing a handful
// of ALU ops per draw. Each parallel worker derives an independent stream by
// seeding with (seed, streamID), so results are deterministic regardless of
// scheduling.
package rng

import "math"

// SplitMix64 advances the SplitMix64 state in *s and returns the next value.
// It is used for seeding and as a cheap standalone generator for hashing.
func SplitMix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 returns 64 uniform bits for a (seed, key) pair with a single
// SplitMix64 finalization — the same stream-decorrelation mix Seed uses,
// without constructing a full xoshiro state (four finalizations plus the
// zero-state check). Use it for *single* keyed draws, where seeding a whole
// stream per draw would dominate the work; draws that need more than 64
// bits must still build a Source.
//
// Distinct (seed, key) pairs give independent values with full avalanche
// (the finalizer is the murmur-style mixer SplitMix64 is built on), so a
// consumer keyed the same way as a Seed-per-draw stream keeps the same
// determinism guarantees: the value depends only on (seed, key), never on
// execution order.
func Hash64(seed, key uint64) uint64 {
	x := seed ^ key*0xda942042e4dd58b5
	return SplitMix64(&x)
}

// Source is a xoshiro256++ generator. The zero value is invalid; construct
// with New or Seed before use.
type Source struct {
	s0, s1, s2, s3 uint64
	// cached spare Gaussian from Box-Muller
	spare    float64
	hasSpare bool
}

// New returns a Source for the given seed and stream. Distinct (seed, stream)
// pairs yield decorrelated sequences.
func New(seed, stream uint64) *Source {
	var s Source
	s.Seed(seed, stream)
	return &s
}

// Seed (re)initializes the generator for a (seed, stream) pair.
func (s *Source) Seed(seed, stream uint64) {
	sm := seed ^ (stream * 0xda942042e4dd58b5)
	s.s0 = SplitMix64(&sm)
	s.s1 = SplitMix64(&sm)
	s.s2 = SplitMix64(&sm)
	s.s3 = SplitMix64(&sm)
	// xoshiro must not start in the all-zero state.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
	s.hasSpare = false
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s0+s.s3, 23) + s.s0
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Uint32 returns the next 32 uniformly random bits.
func (s *Source) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a uniformly random integer in [0, n). n must be > 0.
// It uses Lemire's multiply-shift rejection method, which avoids the modulo
// bias of the naive `rand % n` while costing one multiply in the common case.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	v := s.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	_ = lo
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a standard normal variate via the Box-Muller transform
// (the polar/rejection-free form), caching the spare draw. This is the
// stand-in for MKL's vsRngGaussian.
func (s *Source) NormFloat64() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	// Basic Box-Muller: u1 in (0,1], u2 in [0,1).
	u1 := 1.0 - s.Float64()
	u2 := s.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	s.spare = r * math.Sin(theta)
	s.hasSpare = true
	return r * math.Cos(theta)
}

// FillNorm fills dst with independent standard normal variates.
func (s *Source) FillNorm(dst []float64) {
	for i := range dst {
		dst[i] = s.NormFloat64()
	}
}
