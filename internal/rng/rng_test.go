package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed,stream) diverged at draw %d", i)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := New(42, 0)
	b := New(42, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 collided %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(1, 0)
	f := func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1, 0).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 8 buckets; threshold is the 99.9% quantile of
	// chi2 with 7 dof (~24.3), padded for safety.
	s := New(99, 3)
	const buckets, draws = 8, 80000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 30 {
		t.Fatalf("chi2=%.2f too high; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5, 0)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %.4f far from 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(7, 0)
	if s.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %.4f", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11, 0)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f far from 1", variance)
	}
}

func TestFillNorm(t *testing.T) {
	s := New(3, 0)
	buf := make([]float64, 4096)
	s.FillNorm(buf)
	allZero := true
	for _, v := range buf {
		if v != 0 {
			allZero = false
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("bad value %v", v)
		}
	}
	if allZero {
		t.Fatal("FillNorm produced all zeros")
	}
}

func TestSplitMix64NonZeroAvalanche(t *testing.T) {
	var s uint64
	a := SplitMix64(&s)
	b := SplitMix64(&s)
	if a == b {
		t.Fatal("consecutive SplitMix64 outputs equal")
	}
}

func TestSeedAllZeroGuard(t *testing.T) {
	// Whatever the seed, internal state must never be all zeros (a fixed
	// point of xoshiro). Exercise a bunch of adversarial seeds.
	for _, seed := range []uint64{0, ^uint64(0), 0x9e3779b97f4a7c15} {
		s := New(seed, 0)
		if s.s0|s.s1|s.s2|s.s3 == 0 {
			t.Fatalf("seed %x produced all-zero state", seed)
		}
		_ = s.Uint64()
	}
}
