package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed,stream) diverged at draw %d", i)
		}
	}
}

func TestStreamsDiffer(t *testing.T) {
	a := New(42, 0)
	b := New(42, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 collided %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(1, 0)
	f := func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1, 0).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 8 buckets; threshold is the 99.9% quantile of
	// chi2 with 7 dof (~24.3), padded for safety.
	s := New(99, 3)
	const buckets, draws = 8, 80000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 30 {
		t.Fatalf("chi2=%.2f too high; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5, 0)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %.4f far from 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(7, 0)
	if s.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %.4f", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11, 0)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f far from 1", variance)
	}
}

func TestFillNorm(t *testing.T) {
	s := New(3, 0)
	buf := make([]float64, 4096)
	s.FillNorm(buf)
	allZero := true
	for _, v := range buf {
		if v != 0 {
			allZero = false
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("bad value %v", v)
		}
	}
	if allZero {
		t.Fatal("FillNorm produced all zeros")
	}
}

func TestSplitMix64NonZeroAvalanche(t *testing.T) {
	var s uint64
	a := SplitMix64(&s)
	b := SplitMix64(&s)
	if a == b {
		t.Fatal("consecutive SplitMix64 outputs equal")
	}
}

func TestSeedAllZeroGuard(t *testing.T) {
	// Whatever the seed, internal state must never be all zeros (a fixed
	// point of xoshiro). Exercise a bunch of adversarial seeds.
	for _, seed := range []uint64{0, ^uint64(0), 0x9e3779b97f4a7c15} {
		s := New(seed, 0)
		if s.s0|s.s1|s.s2|s.s3 == 0 {
			t.Fatalf("seed %x produced all-zero state", seed)
		}
		_ = s.Uint64()
	}
}

// TestHash64Uniformity drives the keyed hash with the adversarial key shape
// the batched walker uses — densely packed sequential (head, step, side)
// triples — and checks the outputs look uniform: bucket occupancy close to
// expectation and every output bit unbiased.
func TestHash64Uniformity(t *testing.T) {
	const n = 1 << 16
	const buckets = 64
	var counts [buckets]int
	var bitOnes [64]int
	seen := make(map[uint64]bool, n)
	for head := 0; head < n/32; head++ {
		for step := 0; step < 16; step++ {
			for side := uint64(0); side < 2; side++ {
				key := uint64(head)<<10 | uint64(step)<<1 | side
				h := Hash64(12345, key)
				counts[h%buckets]++
				for b := 0; b < 64; b++ {
					bitOnes[b] += int(h >> b & 1)
				}
				seen[h] = true
			}
		}
	}
	total := (n / 32) * 16 * 2
	if len(seen) != total {
		t.Fatalf("collisions: %d distinct outputs for %d keys", len(seen), total)
	}
	want := float64(total) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Fatalf("bucket %d: %d hits, want ~%.0f", i, c, want)
		}
	}
	for b, ones := range bitOnes {
		frac := float64(ones) / float64(total)
		if frac < 0.45 || frac > 0.55 {
			t.Fatalf("output bit %d biased: %.3f ones", b, frac)
		}
	}
}

// TestHash64SeedSeparation checks distinct seeds decorrelate the same key.
func TestHash64SeedSeparation(t *testing.T) {
	for key := uint64(0); key < 1000; key++ {
		if Hash64(1, key) == Hash64(2, key) {
			t.Fatalf("key %d collides across seeds", key)
		}
	}
	if Hash64(7, 0) == Hash64(7, 1) {
		t.Fatal("adjacent keys collide")
	}
}
