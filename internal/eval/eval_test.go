package eval

import (
	"math"
	"testing"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/rng"
)

// separableFeatures builds a dataset whose classes are linearly separable:
// class c lives around the c-th axis direction.
func separableFeatures(n, classes, d int, seed uint64) (*dense.Matrix, [][]int) {
	src := rng.New(seed, 0)
	x := dense.NewMatrix(n, d)
	labels := make([][]int, n)
	for i := 0; i < n; i++ {
		c := src.Intn(classes)
		labels[i] = []int{c}
		for j := 0; j < d; j++ {
			x.Set(i, j, 0.3*src.NormFloat64())
		}
		x.Set(i, c%d, x.At(i, c%d)+3)
	}
	return x, labels
}

func TestTrainOneVsRestSeparable(t *testing.T) {
	x, labels := separableFeatures(400, 4, 8, 1)
	res, err := NodeClassification(x, labels, 4, 0.5, 7, DefaultTrain())
	if err != nil {
		t.Fatal(err)
	}
	if res.MicroF1 < 0.95 || res.MacroF1 < 0.95 {
		t.Fatalf("separable data should score near 1: micro=%.3f macro=%.3f", res.MicroF1, res.MacroF1)
	}
	if res.TrainSize+res.TestSize != 400 {
		t.Fatalf("split sizes %d+%d != 400", res.TrainSize, res.TestSize)
	}
}

func TestNodeClassificationRandomFeaturesNearChance(t *testing.T) {
	// Pure-noise features: micro-F1 should be near 1/classes.
	src := rng.New(3, 0)
	n, classes := 600, 5
	x := dense.NewMatrix(n, 8)
	x.FillGaussian(2)
	labels := make([][]int, n)
	for i := range labels {
		labels[i] = []int{src.Intn(classes)}
	}
	res, err := NodeClassification(x, labels, classes, 0.5, 11, DefaultTrain())
	if err != nil {
		t.Fatal(err)
	}
	if res.MicroF1 > 0.35 {
		t.Fatalf("random features scored %.3f, suspiciously high", res.MicroF1)
	}
}

func TestF1ScoresHandComputed(t *testing.T) {
	truth := [][]int{{0}, {1}, {0, 1}}
	pred := [][]int{{0}, {0}, {0, 1}}
	micro, macro := F1Scores(pred, truth, 2)
	// tp0=2 (rows 0,2), fp0=1 (row 1), fn0=0; tp1=1 (row 2), fp1=0, fn1=1.
	// micro = 2*3/(2*3+1+1) = 6/8 = 0.75
	if math.Abs(micro-0.75) > 1e-12 {
		t.Fatalf("micro=%g want 0.75", micro)
	}
	// f1_0 = 4/5, f1_1 = 2/3 → macro = (0.8+0.6667)/2
	want := (0.8 + 2.0/3.0) / 2
	if math.Abs(macro-want) > 1e-12 {
		t.Fatalf("macro=%g want %g", macro, want)
	}
}

func TestF1PerfectAndZero(t *testing.T) {
	truth := [][]int{{0}, {1}}
	micro, macro := F1Scores(truth, truth, 2)
	if micro != 1 || macro != 1 {
		t.Fatalf("perfect prediction: micro=%g macro=%g", micro, macro)
	}
	pred := [][]int{{1}, {0}}
	micro, macro = F1Scores(pred, truth, 2)
	if micro != 0 || macro != 0 {
		t.Fatalf("inverted prediction: micro=%g macro=%g", micro, macro)
	}
}

func TestPredictTopK(t *testing.T) {
	x, labels := separableFeatures(200, 3, 6, 5)
	rows := make([]int, 100)
	lab := make([][]int, 100)
	for i := range rows {
		rows[i] = i
		lab[i] = labels[i]
	}
	clf, err := TrainOneVsRest(x, rows, lab, 3, DefaultTrain())
	if err != nil {
		t.Fatal(err)
	}
	p := clf.PredictTopK(x, 150, 2)
	if len(p) != 2 {
		t.Fatalf("PredictTopK returned %d labels", len(p))
	}
	if p[0] == p[1] {
		t.Fatal("duplicate predicted labels")
	}
	// k larger than classes clamps.
	p = clf.PredictTopK(x, 150, 10)
	if len(p) != 3 {
		t.Fatalf("clamped k: got %d", len(p))
	}
}

func TestTrainErrors(t *testing.T) {
	x := dense.NewMatrix(4, 2)
	if _, err := TrainOneVsRest(x, nil, nil, 2, DefaultTrain()); err == nil {
		t.Fatal("expected empty-train error")
	}
	if _, err := TrainOneVsRest(x, []int{0}, [][]int{{5}}, 2, DefaultTrain()); err == nil {
		t.Fatal("expected out-of-range label error")
	}
	labels := [][]int{{0}, {1}, {0}, {1}}
	if _, err := NodeClassification(x, labels, 2, 0, 1, DefaultTrain()); err == nil {
		t.Fatal("expected ratio error")
	}
	if _, err := NodeClassification(x, [][]int{nil, nil, nil, nil}, 2, 0.5, 1, DefaultTrain()); err == nil {
		t.Fatal("expected too-few-labeled error")
	}
}

func ringGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	arcs := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		arcs[i] = graph.Edge{U: uint32(i), V: uint32((i + 1) % n)}
	}
	g, err := graph.FromEdges(n, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSplitEdges(t *testing.T) {
	g := ringGraph(t, 100)
	train, test, err := SplitEdges(g, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(test) != 10 {
		t.Fatalf("test size %d want 10", len(test))
	}
	if train.NumEdges() != g.NumEdges()-2*int64(len(test)) {
		t.Fatalf("train arcs %d want %d", train.NumEdges(), g.NumEdges()-20)
	}
	// Test edges must not appear in the training graph.
	for _, e := range test {
		for _, nb := range train.Neighbors(e.U, nil) {
			if nb == e.V {
				t.Fatalf("test edge (%d,%d) leaked into training graph", e.U, e.V)
			}
		}
	}
	if _, _, err := SplitEdges(g, 1.5, 1); err == nil {
		t.Fatal("expected fraction error")
	}
}

func TestAUCOnPlantedEmbedding(t *testing.T) {
	// Embedding where linked pairs share a latent direction → near-1 AUC.
	n, d := 200, 8
	src := rng.New(9, 0)
	x := dense.NewMatrix(n, d)
	group := make([]int, n)
	for i := 0; i < n; i++ {
		group[i] = i % 4
		for j := 0; j < d; j++ {
			x.Set(i, j, 0.1*src.NormFloat64())
		}
		x.Set(i, group[i], x.At(i, group[i])+2)
	}
	var test []graph.Edge
	for i := 0; i < n; i += 2 {
		j := (i + 4) % n // same group
		test = append(test, graph.Edge{U: uint32(i), V: uint32(j)})
	}
	// Random negatives share a group ~1/4 of the time and then score as
	// high as positives, so the ideal AUC here is ≈ 1 - 0.25/2 ≈ 0.88.
	auc := AUC(x, test, 50, 13)
	if auc < 0.82 {
		t.Fatalf("planted AUC %.3f too low", auc)
	}
	// Random embedding → AUC near 0.5.
	x2 := dense.NewMatrix(n, d)
	x2.FillGaussian(4)
	auc = AUC(x2, test, 50, 13)
	if math.Abs(auc-0.5) > 0.12 {
		t.Fatalf("random AUC %.3f not near 0.5", auc)
	}
	if AUC(x, nil, 10, 1) != 0 {
		t.Fatal("empty test should return 0")
	}
}

func TestRankingPerfectEmbedding(t *testing.T) {
	// Make each positive pair share a coordinate unique to it, so the true
	// target out-scores every corrupted target: rank must be exactly 1.
	n := 60
	pairs := 10
	d := pairs + 1
	x := dense.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
	}
	var test []graph.Edge
	for i := 0; i < pairs; i++ {
		u, v := uint32(2*i), uint32(2*i+1)
		x.Set(int(u), 1+i, 100)
		x.Set(int(v), 1+i, 100)
		test = append(test, graph.Edge{U: u, V: v})
	}
	res := Ranking(x, test, 50, []int{1, 10}, 5)
	if res.MR != 1 {
		t.Fatalf("MR=%.2f want exactly 1 for uniquely planted pairs", res.MR)
	}
	if res.MRR != 1 {
		t.Fatalf("MRR=%.3f want 1", res.MRR)
	}
	if res.Hits[10] < res.Hits[1] {
		t.Fatal("HITS@10 must be >= HITS@1")
	}
	if res.Tests != len(test) {
		t.Fatalf("Tests=%d", res.Tests)
	}
}

func TestRankingRandomNearUniform(t *testing.T) {
	n := 200
	x := dense.NewMatrix(n, 8)
	x.FillGaussian(77)
	var test []graph.Edge
	src := rng.New(3, 1)
	for i := 0; i < 60; i++ {
		test = append(test, graph.Edge{U: uint32(src.Intn(n)), V: uint32(src.Intn(n))})
	}
	res := Ranking(x, test, 99, []int{1, 10, 50}, 9)
	// Uniform ranks over 1..100 → MR ≈ 50.
	if res.MR < 25 || res.MR > 75 {
		t.Fatalf("random MR=%.1f outside [25,75]", res.MR)
	}
	if res.Hits[50] < res.Hits[10] || res.Hits[10] < res.Hits[1] {
		t.Fatal("HITS@K must be monotone in K")
	}
}

func TestExactRankingAgainstSampled(t *testing.T) {
	// With negatives ≫ n, sampled Ranking must approach ExactRanking.
	n := 80
	x := dense.NewMatrix(n, 6)
	x.FillGaussian(21)
	var test []graph.Edge
	src := rng.New(5, 2)
	for i := 0; i < 30; i++ {
		test = append(test, graph.Edge{U: uint32(src.Intn(n)), V: uint32(src.Intn(n))})
	}
	exact := ExactRanking(x, test, []int{1, 10}, nil)
	sampled := Ranking(x, test, 5000, []int{1, 10}, 9)
	// Sampled ranks are scaled by the candidate-pool ratio; compare via the
	// normalized rank (rank / pool size).
	exactNorm := exact.MR / float64(n)
	sampledNorm := sampled.MR / 5000
	if math.Abs(exactNorm-sampledNorm) > 0.08 {
		t.Fatalf("normalized MR: exact %.3f vs sampled %.3f", exactNorm, sampledNorm)
	}
	if exact.Tests != len(test) {
		t.Fatal("test count wrong")
	}
}

func TestExactRankingPlantedPair(t *testing.T) {
	n := 40
	x := dense.NewMatrix(n, 4)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
	}
	x.Set(3, 1, 100)
	x.Set(7, 1, 100)
	res := ExactRanking(x, []graph.Edge{{U: 3, V: 7}}, []int{1}, nil)
	if res.MR != 1 || res.Hits[1] != 1 {
		t.Fatalf("planted pair should rank 1: MR=%.1f", res.MR)
	}
	// Exclusion callback removes competitors.
	x.Set(9, 1, 200) // stronger competitor
	res = ExactRanking(x, []graph.Edge{{U: 3, V: 7}}, []int{1}, func(u, v uint32) bool { return v == 9 })
	if res.MR != 1 {
		t.Fatalf("exclusion not applied: MR=%.1f", res.MR)
	}
	if got := ExactRanking(x, nil, []int{1}, nil); got.Tests != 0 {
		t.Fatal("empty test set should be empty result")
	}
}
