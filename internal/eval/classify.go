// Package eval implements the paper's downstream evaluation protocols
// (§5.1): multi-label node classification with one-vs-rest logistic
// regression scored by Micro/Macro-F1, and link prediction scored by AUC
// and by ranking metrics (MR, MRR, HITS@K) in the PyTorch-BigGraph style.
//
// The classification protocol follows the standard network-embedding
// methodology (DeepWalk/NetMF/LightNE evaluation scripts): train a binary
// logistic regression per class on a random labeled subset, and at test
// time predict, for each vertex, its top-k scoring labels where k is the
// vertex's true label count.
package eval

import (
	"fmt"
	"math"
	"sort"

	"lightne/internal/dense"
	"lightne/internal/par"
	"lightne/internal/rng"
)

// TrainConfig controls logistic-regression training.
type TrainConfig struct {
	// Epochs of full-batch Adam (default 100).
	Epochs int
	// LearningRate for Adam (default 0.1).
	LearningRate float64
	// L2 regularization strength (default 1e-4).
	L2 float64
}

// DefaultTrain returns the defaults used throughout the benchmarks.
func DefaultTrain() TrainConfig {
	return TrainConfig{Epochs: 100, LearningRate: 0.1, L2: 1e-4}
}

// Classifier is a set of one-vs-rest binary logistic regressions.
type Classifier struct {
	// W is (numClasses × d+1); the last column is the bias.
	W          *dense.Matrix
	NumClasses int
}

// TrainOneVsRest fits a classifier on the given feature rows. features is
// n×d; labels[i] lists the classes of trainRows[i]'s vertex; numClasses is
// the label-space size.
func TrainOneVsRest(features *dense.Matrix, trainRows []int, labels [][]int, numClasses int, cfg TrainConfig) (*Classifier, error) {
	if len(trainRows) == 0 {
		return nil, fmt.Errorf("eval: empty training set")
	}
	if len(trainRows) != len(labels) {
		return nil, fmt.Errorf("eval: %d rows but %d label sets", len(trainRows), len(labels))
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 100
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	d := features.Cols
	nt := len(trainRows)

	// Copy training features once (adding the bias feature).
	xt := dense.NewMatrix(nt, d+1)
	for i, row := range trainRows {
		copy(xt.Row(i), features.Row(row))
		xt.Set(i, d, 1)
	}
	// Binary target matrix, one column per class.
	y := make([][]float64, numClasses)
	for c := range y {
		y[c] = make([]float64, nt)
	}
	for i, ls := range labels {
		for _, c := range ls {
			if c < 0 || c >= numClasses {
				return nil, fmt.Errorf("eval: label %d out of range [0,%d)", c, numClasses)
			}
			y[c][i] = 1
		}
	}

	w := dense.NewMatrix(numClasses, d+1)
	// Train classes independently in parallel: full-batch Adam.
	par.For(numClasses, 1, func(c int) {
		wc := w.Row(c)
		mAdam := make([]float64, d+1)
		vAdam := make([]float64, d+1)
		grad := make([]float64, d+1)
		const beta1, beta2, eps = 0.9, 0.999, 1e-8
		for epoch := 1; epoch <= cfg.Epochs; epoch++ {
			for j := range grad {
				grad[j] = cfg.L2 * wc[j]
			}
			for i := 0; i < nt; i++ {
				xi := xt.Row(i)
				var z float64
				for j, v := range xi {
					z += v * wc[j]
				}
				p := sigmoid(z)
				diff := (p - y[c][i]) / float64(nt)
				for j, v := range xi {
					grad[j] += diff * v
				}
			}
			b1t := 1 - math.Pow(beta1, float64(epoch))
			b2t := 1 - math.Pow(beta2, float64(epoch))
			for j := range wc {
				mAdam[j] = beta1*mAdam[j] + (1-beta1)*grad[j]
				vAdam[j] = beta2*vAdam[j] + (1-beta2)*grad[j]*grad[j]
				wc[j] -= cfg.LearningRate * (mAdam[j] / b1t) / (math.Sqrt(vAdam[j]/b2t) + eps)
			}
		}
	})
	return &Classifier{W: w, NumClasses: numClasses}, nil
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Scores returns the per-class decision values for one feature row.
func (c *Classifier) Scores(features *dense.Matrix, row int, out []float64) []float64 {
	if out == nil {
		out = make([]float64, c.NumClasses)
	}
	x := features.Row(row)
	d := len(x)
	for k := 0; k < c.NumClasses; k++ {
		wc := c.W.Row(k)
		z := wc[d] // bias
		for j, v := range x {
			z += v * wc[j]
		}
		out[k] = z
	}
	return out
}

// PredictTopK returns the k highest-scoring classes for a row (the
// standard multi-label protocol with k = the true label count).
func (c *Classifier) PredictTopK(features *dense.Matrix, row, k int) []int {
	scores := c.Scores(features, row, nil)
	idx := make([]int, c.NumClasses)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := append([]int(nil), idx[:k]...)
	sort.Ints(out)
	return out
}

// F1Scores computes Micro- and Macro-F1 between predicted and true label
// sets over the same vertices. Classes absent from both prediction and
// truth contribute F1 = 0 to the macro average (sklearn convention).
func F1Scores(pred, truth [][]int, numClasses int) (micro, macro float64) {
	tp := make([]float64, numClasses)
	fp := make([]float64, numClasses)
	fn := make([]float64, numClasses)
	for i := range truth {
		tset := map[int]bool{}
		for _, c := range truth[i] {
			tset[c] = true
		}
		pset := map[int]bool{}
		for _, c := range pred[i] {
			pset[c] = true
			if tset[c] {
				tp[c]++
			} else {
				fp[c]++
			}
		}
		for _, c := range truth[i] {
			if !pset[c] {
				fn[c]++
			}
		}
	}
	var sumTP, sumFP, sumFN float64
	var macroSum float64
	for c := 0; c < numClasses; c++ {
		sumTP += tp[c]
		sumFP += fp[c]
		sumFN += fn[c]
		denom := 2*tp[c] + fp[c] + fn[c]
		if denom > 0 {
			macroSum += 2 * tp[c] / denom
		}
	}
	if d := 2*sumTP + sumFP + sumFN; d > 0 {
		micro = 2 * sumTP / d
	}
	if numClasses > 0 {
		macro = macroSum / float64(numClasses)
	}
	return micro, macro
}

// ClassificationResult reports a node-classification evaluation.
type ClassificationResult struct {
	MicroF1, MacroF1 float64
	TrainSize        int
	TestSize         int
}

// NodeClassification runs the full protocol: split labeled vertices into a
// trainRatio training fraction and the rest for testing, fit one-vs-rest
// logistic regression on the embedding, and score Micro/Macro-F1 with the
// top-k prediction rule. Vertices without labels are excluded, matching the
// paper's benchmarks.
func NodeClassification(features *dense.Matrix, labels [][]int, numClasses int, trainRatio float64, seed uint64, cfg TrainConfig) (ClassificationResult, error) {
	if trainRatio <= 0 || trainRatio >= 1 {
		return ClassificationResult{}, fmt.Errorf("eval: train ratio must be in (0,1), got %g", trainRatio)
	}
	var labeled []int
	for v, ls := range labels {
		if len(ls) > 0 {
			labeled = append(labeled, v)
		}
	}
	if len(labeled) < 2 {
		return ClassificationResult{}, fmt.Errorf("eval: need at least 2 labeled vertices, have %d", len(labeled))
	}
	src := rng.New(seed, 5)
	shuffle(labeled, src)
	nTrain := int(math.Round(trainRatio * float64(len(labeled))))
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain >= len(labeled) {
		nTrain = len(labeled) - 1
	}
	trainRows := labeled[:nTrain]
	testRows := labeled[nTrain:]

	trainLabels := make([][]int, len(trainRows))
	for i, v := range trainRows {
		trainLabels[i] = labels[v]
	}
	clf, err := TrainOneVsRest(features, trainRows, trainLabels, numClasses, cfg)
	if err != nil {
		return ClassificationResult{}, err
	}

	pred := make([][]int, len(testRows))
	truth := make([][]int, len(testRows))
	par.For(len(testRows), 8, func(i int) {
		v := testRows[i]
		truth[i] = labels[v]
		pred[i] = clf.PredictTopK(features, v, len(labels[v]))
	})
	micro, macro := F1Scores(pred, truth, numClasses)
	return ClassificationResult{
		MicroF1:   micro,
		MacroF1:   macro,
		TrainSize: len(trainRows),
		TestSize:  len(testRows),
	}, nil
}

// shuffle is a Fisher-Yates shuffle driven by our deterministic RNG.
func shuffle(a []int, src *rng.Source) {
	for i := len(a) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		a[i], a[j] = a[j], a[i]
	}
}
