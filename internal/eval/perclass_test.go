package eval

import (
	"math"
	"testing"
)

func TestPerClassF1HandComputed(t *testing.T) {
	truth := [][]int{{0}, {1}, {0, 1}, {1}}
	pred := [][]int{{0}, {0}, {0, 1}, {1}}
	reps, err := PerClassF1(pred, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Class 0: tp=2 (rows 0,2), fp=1 (row 1), fn=0 → P=2/3, R=1, F1=0.8.
	if math.Abs(reps[0].Precision-2.0/3) > 1e-12 || reps[0].Recall != 1 {
		t.Fatalf("class 0: %+v", reps[0])
	}
	if math.Abs(reps[0].F1-0.8) > 1e-12 {
		t.Fatalf("class 0 F1 %g", reps[0].F1)
	}
	// Class 1: tp=2 (rows 2,3), fp=0, fn=1 (row 1) → P=1, R=2/3, F1=0.8.
	if reps[1].Precision != 1 || math.Abs(reps[1].Recall-2.0/3) > 1e-12 {
		t.Fatalf("class 1: %+v", reps[1])
	}
	if reps[0].Support != 2 || reps[1].Support != 3 {
		t.Fatalf("supports: %d %d", reps[0].Support, reps[1].Support)
	}
}

func TestPerClassF1ConsistentWithMacro(t *testing.T) {
	truth := [][]int{{0}, {1}, {2}, {0, 2}, {1}}
	pred := [][]int{{0}, {2}, {2}, {0, 1}, {1}}
	reps, err := PerClassF1(pred, truth, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range reps {
		sum += r.F1
	}
	_, macro := F1Scores(pred, truth, 3)
	if math.Abs(sum/3-macro) > 1e-12 {
		t.Fatalf("per-class mean %.6f != macro %.6f", sum/3, macro)
	}
}

func TestPerClassF1Errors(t *testing.T) {
	if _, err := PerClassF1([][]int{{0}}, [][]int{{0}, {1}}, 2); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := PerClassF1([][]int{{5}}, [][]int{{0}}, 2); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := PerClassF1([][]int{{0}}, [][]int{{9}}, 2); err == nil {
		t.Fatal("expected truth out-of-range error")
	}
}

func TestPerClassF1EmptyClass(t *testing.T) {
	reps, err := PerClassF1([][]int{{0}}, [][]int{{0}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if reps[2].F1 != 0 || reps[2].Support != 0 {
		t.Fatalf("empty class should be zero: %+v", reps[2])
	}
}
