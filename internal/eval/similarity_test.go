package eval

import (
	"math"
	"testing"

	"lightne/internal/dense"
	"lightne/internal/rng"
)

func TestNearestNeighbors(t *testing.T) {
	// 6 vertices in 2D: 0,1,2 point along x; 3,4,5 along y; within groups
	// slightly perturbed magnitudes (cosine ignores magnitude).
	x := dense.FromSlice(6, 2, []float64{
		1, 0,
		2, 0.1,
		3, -0.1,
		0, 1,
		0.1, 2,
		-0.1, 3,
	})
	nbrs, err := NearestNeighbors(x, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 2 {
		t.Fatalf("got %d neighbors", len(nbrs))
	}
	for _, nb := range nbrs {
		if nb.Vertex != 1 && nb.Vertex != 2 {
			t.Fatalf("vertex 0's neighbors should be 1,2; got %d", nb.Vertex)
		}
		if nb.Cosine < 0.9 {
			t.Fatalf("same-direction cosine %.3f too low", nb.Cosine)
		}
	}
	// Self excluded, k clamped.
	nbrs, err = NearestNeighbors(x, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 5 {
		t.Fatalf("clamped k: got %d", len(nbrs))
	}
	for _, nb := range nbrs {
		if nb.Vertex == 0 {
			t.Fatal("query vertex returned as its own neighbor")
		}
	}
}

func TestNearestNeighborsErrors(t *testing.T) {
	x := dense.NewMatrix(3, 2)
	if _, err := NearestNeighbors(x, 9, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := NearestNeighbors(x, -1, 1); err == nil {
		t.Fatal("expected negative-vertex error")
	}
	if _, err := NearestNeighbors(x, 0, 0); err == nil {
		t.Fatal("expected k error")
	}
}

func TestNearestNeighborsZeroRows(t *testing.T) {
	x := dense.NewMatrix(4, 3)
	x.Set(0, 0, 1)
	x.Set(1, 0, 1)
	// Vertices 2,3 are zero rows: never returned.
	nbrs, err := NearestNeighbors(x, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range nbrs {
		if nb.Vertex == 2 || nb.Vertex == 3 {
			t.Fatal("zero rows must be excluded")
		}
	}
}

func TestProcrustesIdenticalAndRotated(t *testing.T) {
	a := dense.NewMatrix(50, 4)
	a.FillGaussian(3)
	d, err := ProcrustesDistance(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-10 {
		t.Fatalf("identical embeddings distance %g", d)
	}
	// Rotate a by an arbitrary orthogonal matrix: distance must stay ~0.
	q := dense.NewMatrix(4, 4)
	q.FillGaussian(7)
	q = dense.Orthonormalize(q)
	b := dense.NewMatrix(50, 4)
	dense.MatMul(b, a, q)
	d, err = ProcrustesDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Fatalf("rotated embedding distance %g, want ~0", d)
	}
}

func TestProcrustesUnrelated(t *testing.T) {
	a := dense.NewMatrix(200, 8)
	a.FillGaussian(1)
	b := dense.NewMatrix(200, 8)
	b.FillGaussian(2)
	d, err := ProcrustesDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.8 {
		t.Fatalf("unrelated embeddings distance %g suspiciously low", d)
	}
	if _, err := ProcrustesDistance(a, dense.NewMatrix(3, 8)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestProcrustesNoisyCopy(t *testing.T) {
	src := rng.New(11, 0)
	a := dense.NewMatrix(100, 6)
	a.FillGaussian(4)
	b := a.Clone()
	for i := range b.Data {
		b.Data[i] += 0.01 * src.NormFloat64()
	}
	d, err := ProcrustesDistance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.05 {
		t.Fatalf("slightly perturbed copy distance %g too high", d)
	}
	if math.IsNaN(d) {
		t.Fatal("NaN distance")
	}
}
