package eval

import (
	"fmt"
	"math"
	"sort"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/par"
	"lightne/internal/rng"
)

// SplitEdges removes a random fraction of undirected edges from g for link
// prediction, returning the training graph and the held-out test edges
// (each reported once, with U < V). Mirrors the PBG protocol the paper
// follows (§5.3: "randomly exclude … edges from the training graph").
func SplitEdges(g *graph.Graph, testFrac float64, seed uint64) (*graph.Graph, []graph.Edge, error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("eval: test fraction must be in (0,1), got %g", testFrac)
	}
	var all []graph.Edge
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		d := g.Degree(uint32(u))
		for i := 0; i < d; i++ {
			v := g.Neighbor(uint32(u), i)
			if uint32(u) < v {
				all = append(all, graph.Edge{U: uint32(u), V: v})
			}
		}
	}
	if len(all) < 2 {
		return nil, nil, fmt.Errorf("eval: too few edges to split")
	}
	src := rng.New(seed, 6)
	for i := len(all) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		all[i], all[j] = all[j], all[i]
	}
	nTest := int(math.Round(testFrac * float64(len(all))))
	if nTest < 1 {
		nTest = 1
	}
	if nTest >= len(all) {
		nTest = len(all) - 1
	}
	test := append([]graph.Edge(nil), all[:nTest]...)
	train, err := graph.FromEdges(n, all[nTest:], graph.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

// dot computes the inner product of two embedding rows.
func dot(x *dense.Matrix, u, v uint32) float64 {
	a, b := x.Row(int(u)), x.Row(int(v))
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AUC estimates the link-prediction ROC-AUC: the probability that a held-out
// positive edge scores above a uniformly random non-edge, using negatives
// random vertex pairs per positive.
func AUC(x *dense.Matrix, test []graph.Edge, negatives int, seed uint64) float64 {
	if len(test) == 0 || negatives <= 0 {
		return 0
	}
	n := uint32(x.Rows)
	wins := make([]float64, len(test))
	par.ForRange(len(test), 16, func(lo, hi int) {
		var src rng.Source
		for i := lo; i < hi; i++ {
			src.Seed(seed, uint64(i))
			pos := dot(x, test[i].U, test[i].V)
			var w float64
			for k := 0; k < negatives; k++ {
				nu := uint32(src.Intn(int(n)))
				nv := uint32(src.Intn(int(n)))
				neg := dot(x, nu, nv)
				switch {
				case pos > neg:
					w += 1
				case pos == neg:
					w += 0.5
				}
			}
			wins[i] = w / float64(negatives)
		}
	})
	var s float64
	for _, w := range wins {
		s += w
	}
	return s / float64(len(test))
}

// RankingResult holds PBG-style ranking metrics over held-out edges.
type RankingResult struct {
	MR    float64         // mean rank (1 is best)
	MRR   float64         // mean reciprocal rank
	Hits  map[int]float64 // HITS@K for the requested cutoffs
	Tests int
}

// Ranking ranks each held-out edge (u,v) against `negatives` corrupted
// edges (u,v′) with v′ uniform, by embedding dot product, and aggregates
// MR, MRR and HITS@K — the protocol of the paper's PBG comparison (§5.2.1)
// and very-large-graph experiments (Figure 3).
func Ranking(x *dense.Matrix, test []graph.Edge, negatives int, ks []int, seed uint64) RankingResult {
	if len(test) == 0 || negatives <= 0 {
		return RankingResult{Hits: map[int]float64{}}
	}
	n := x.Rows
	type acc struct {
		sumRank float64
		sumRR   float64
		hits    []float64
	}
	sort.Ints(ks)
	accs := make([]acc, len(test))
	par.ForRange(len(test), 8, func(lo, hi int) {
		var src rng.Source
		for i := lo; i < hi; i++ {
			src.Seed(seed^0xabcdef, uint64(i))
			u, v := test[i].U, test[i].V
			pos := dot(x, u, v)
			rank := 1
			for k := 0; k < negatives; k++ {
				vp := uint32(src.Intn(n))
				if vp == u || vp == v {
					continue // filtered ranking: never count the true pair
				}
				if dot(x, u, vp) >= pos {
					rank++
				}
			}
			a := &accs[i]
			a.sumRank = float64(rank)
			a.sumRR = 1 / float64(rank)
			a.hits = make([]float64, len(ks))
			for j, kk := range ks {
				if rank <= kk {
					a.hits[j] = 1
				}
			}
		}
	})
	res := RankingResult{Hits: map[int]float64{}, Tests: len(test)}
	hitSums := make([]float64, len(ks))
	for i := range accs {
		res.MR += accs[i].sumRank
		res.MRR += accs[i].sumRR
		for j := range ks {
			hitSums[j] += accs[i].hits[j]
		}
	}
	res.MR /= float64(len(test))
	res.MRR /= float64(len(test))
	for j, kk := range ks {
		res.Hits[kk] = hitSums[j] / float64(len(test))
	}
	return res
}

// ExactRanking ranks each held-out edge (u, v) against every vertex of the
// graph (filtered: the true pair itself is excluded), rather than a sampled
// candidate set. O(n·d) per test edge — exact MR/MRR/HITS@K for small
// graphs, useful for validating the sampled Ranking estimates.
func ExactRanking(x *dense.Matrix, test []graph.Edge, ks []int, exclude func(u, v uint32) bool) RankingResult {
	if len(test) == 0 {
		return RankingResult{Hits: map[int]float64{}}
	}
	n := x.Rows
	sort.Ints(ks)
	type acc struct {
		rank int
	}
	accs := make([]acc, len(test))
	par.For(len(test), 4, func(i int) {
		u, v := test[i].U, test[i].V
		pos := dot(x, u, v)
		rank := 1
		for w := 0; w < n; w++ {
			vp := uint32(w)
			if vp == u || vp == v {
				continue
			}
			if exclude != nil && exclude(u, vp) {
				continue
			}
			if dot(x, u, vp) >= pos {
				rank++
			}
		}
		accs[i] = acc{rank}
	})
	res := RankingResult{Hits: map[int]float64{}, Tests: len(test)}
	hitSums := make([]float64, len(ks))
	for _, a := range accs {
		res.MR += float64(a.rank)
		res.MRR += 1 / float64(a.rank)
		for j, kk := range ks {
			if a.rank <= kk {
				hitSums[j]++
			}
		}
	}
	res.MR /= float64(len(test))
	res.MRR /= float64(len(test))
	for j, kk := range ks {
		res.Hits[kk] = hitSums[j] / float64(len(test))
	}
	return res
}
