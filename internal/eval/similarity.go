package eval

import (
	"fmt"
	"math"
	"sort"

	"lightne/internal/dense"
	"lightne/internal/par"
)

// Neighbor is one nearest-neighbor query result.
type Neighbor struct {
	Vertex int
	Cosine float64
}

// NearestNeighbors returns the k vertices most cosine-similar to vertex v
// in embedding x (excluding v itself), sorted by decreasing similarity —
// the item-recommendation query the paper's §1 deployments serve from
// embeddings. Brute force O(n·d); ties break toward lower vertex IDs.
func NearestNeighbors(x *dense.Matrix, v, k int) ([]Neighbor, error) {
	n := x.Rows
	if v < 0 || v >= n {
		return nil, fmt.Errorf("eval: vertex %d outside embedding with %d rows", v, n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("eval: k must be positive, got %d", k)
	}
	norms := make([]float64, n)
	par.For(n, 1024, func(i int) {
		var s float64
		for _, val := range x.Row(i) {
			s += val * val
		}
		norms[i] = math.Sqrt(s)
	})
	sims := make([]float64, n)
	qv := x.Row(v)
	qn := norms[v]
	par.For(n, 256, func(i int) {
		if i == v || norms[i] == 0 || qn == 0 {
			sims[i] = math.Inf(-1)
			return
		}
		var s float64
		for j, val := range x.Row(i) {
			s += val * qv[j]
		}
		sims[i] = s / (norms[i] * qn)
	})
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if sims[idx[a]] != sims[idx[b]] {
			return sims[idx[a]] > sims[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > n-1 {
		k = n - 1
	}
	out := make([]Neighbor, 0, k)
	for _, i := range idx {
		if i == v || math.IsInf(sims[i], -1) {
			continue
		}
		out = append(out, Neighbor{Vertex: i, Cosine: sims[i]})
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// ProcrustesDistance measures how similar two embeddings of the same
// vertex set are, up to the orthogonal rotation SVD-based methods are only
// defined modulo: it solves the orthogonal Procrustes problem
// min_R ‖A·R − B‖_F over rotations R (via the SVD of AᵀB) and returns the
// residual normalized by ‖B‖_F. 0 means identical up to rotation; values
// near √2 mean unrelated. Used to quantify drift between incremental and
// fully rebuilt embeddings.
func ProcrustesDistance(a, b *dense.Matrix) (float64, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, fmt.Errorf("eval: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	d := a.Cols
	m := dense.NewMatrix(d, d)
	dense.MatMulATB(m, a, b)
	u, _, v := dense.SVD(m)
	// R = U·Vᵀ.
	r := dense.NewMatrix(d, d)
	dense.MatMul(r, u, v.Transpose())
	rotated := dense.NewMatrix(a.Rows, d)
	dense.MatMul(rotated, a, r)
	var num, den float64
	for i := range rotated.Data {
		diff := rotated.Data[i] - b.Data[i]
		num += diff * diff
		den += b.Data[i] * b.Data[i]
	}
	if den == 0 {
		if num == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return math.Sqrt(num / den), nil
}
