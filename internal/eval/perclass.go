package eval

import "fmt"

// ClassReport holds per-class precision/recall/F1 for error analysis.
type ClassReport struct {
	Class     int
	Support   int // number of test vertices carrying the class
	Precision float64
	Recall    float64
	F1        float64
}

// PerClassF1 computes a per-class breakdown of a prediction, in class
// order. Classes with no support and no predictions report zeros.
func PerClassF1(pred, truth [][]int, numClasses int) ([]ClassReport, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("eval: %d predictions but %d truths", len(pred), len(truth))
	}
	tp := make([]float64, numClasses)
	fp := make([]float64, numClasses)
	fn := make([]float64, numClasses)
	support := make([]int, numClasses)
	for i := range truth {
		tset := map[int]bool{}
		for _, c := range truth[i] {
			if c < 0 || c >= numClasses {
				return nil, fmt.Errorf("eval: label %d out of range", c)
			}
			tset[c] = true
			support[c]++
		}
		pset := map[int]bool{}
		for _, c := range pred[i] {
			if c < 0 || c >= numClasses {
				return nil, fmt.Errorf("eval: prediction %d out of range", c)
			}
			pset[c] = true
			if tset[c] {
				tp[c]++
			} else {
				fp[c]++
			}
		}
		for _, c := range truth[i] {
			if !pset[c] {
				fn[c]++
			}
		}
	}
	out := make([]ClassReport, numClasses)
	for c := 0; c < numClasses; c++ {
		r := ClassReport{Class: c, Support: support[c]}
		if tp[c]+fp[c] > 0 {
			r.Precision = tp[c] / (tp[c] + fp[c])
		}
		if tp[c]+fn[c] > 0 {
			r.Recall = tp[c] / (tp[c] + fn[c])
		}
		if d := 2*tp[c] + fp[c] + fn[c]; d > 0 {
			r.F1 = 2 * tp[c] / d
		}
		out[c] = r
	}
	return out, nil
}
