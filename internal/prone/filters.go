package prone

import (
	"fmt"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/sparse"
)

// Filter selects the spectral modulator g(λ) applied by Propagate. The
// ProNE paper frames propagation as a general band-pass graph filter and
// evaluates a Chebyshev-expanded Gaussian; heat-kernel and personalized-
// PageRank filters are the other two standard members of that family, and
// LightNE inherits the choice. All filters share the final dense
// re-orthogonalization.
type Filter int

const (
	// FilterChebyshevGaussian is the ProNE band-pass filter (default).
	FilterChebyshevGaussian Filter = iota
	// FilterHeatKernel applies e^{-θ·L} via a truncated Taylor series:
	// a low-pass smoother that emphasizes local neighborhoods.
	FilterHeatKernel
	// FilterPPR applies the personalized-PageRank kernel
	// α·Σ_k (1-α)^k·(D⁻¹A)^k with α = 1 - Mu (Mu acts as the damping
	// factor), another standard low-pass choice.
	FilterPPR
)

// String names the filter.
func (f Filter) String() string {
	switch f {
	case FilterChebyshevGaussian:
		return "chebyshev-gaussian"
	case FilterHeatKernel:
		return "heat-kernel"
	case FilterPPR:
		return "ppr"
	}
	return fmt.Sprintf("filter(%d)", int(f))
}

// heatPropagate computes Σ_{k=0..order-1} (-θ·L)^k/k! · X, the truncated
// Taylor expansion of e^{-θL}X, on the self-loop-augmented normalized
// Laplacian.
func heatPropagate(g *graph.Graph, x *dense.Matrix, cfg PropagationConfig) *dense.Matrix {
	n, d := x.Rows, x.Cols
	adj := adjacencyWithSelfLoops(g)
	da := cloneCSR(adj)
	normalizeRowsCSR(da)
	// L = I - DA.
	lap := negate(da).AddScaledIdentity(1)

	theta := cfg.Theta
	if theta <= 0 {
		theta = 0.5
	}
	sum := x.Clone()
	term := x.Clone()
	tmp := dense.NewMatrix(n, d)
	for k := 1; k < cfg.Order; k++ {
		sparse.SpMM(tmp, lap, term)
		coef := -theta / float64(k)
		for i := range term.Data {
			term.Data[i] = coef * tmp.Data[i]
		}
		addScaled(sum, term, 1)
	}
	return sum
}

// pprPropagate computes α·Σ_{k=0..order-1} (1-α)^k·(DA)^k·X with DA the
// row-normalized self-loop-augmented adjacency and α = 1 - Mu.
func pprPropagate(g *graph.Graph, x *dense.Matrix, cfg PropagationConfig) *dense.Matrix {
	n, d := x.Rows, x.Cols
	adj := adjacencyWithSelfLoops(g)
	normalizeRowsCSR(adj)
	alpha := 1 - cfg.Mu
	if alpha <= 0 || alpha > 1 {
		alpha = 0.85
	}
	damp := 1 - alpha
	sum := x.Clone()
	sum.Scale(alpha)
	term := x.Clone()
	tmp := dense.NewMatrix(n, d)
	scale := alpha
	for k := 1; k < cfg.Order; k++ {
		sparse.SpMM(tmp, adj, term)
		term, tmp = tmp, term
		scale *= damp
		addScaled(sum, term, scale) // = alpha·damp^k
	}
	return sum
}

// normalizeRowsCSR rescales each row of m to sum to 1 (rows summing to 0
// are left untouched).
func normalizeRowsCSR(m *sparse.CSR) {
	sums := m.RowSums()
	inv := make([]float64, len(sums))
	for i, s := range sums {
		if s != 0 {
			inv[i] = 1 / s
		}
	}
	m.ScaleRows(inv)
}
