// Package prone implements ProNE (Zhang et al., IJCAI'19) on top of
// LightNE's optimized kernels — the paper's "ProNE+" re-implementation
// (§5.2.3) — and the spectral propagation step LightNE applies to the
// NetSMF embedding (paper §3.2, Step 2).
//
// Factorization: ProNE performs a truncated SVD of the modulated, normalized
// graph matrix with entries (paper §3.1)
//
//	M_uv = log( (A_uv / D_u) · Σ_j t_j^α / (b · t_v^α) ),  t_v = Σ_i A_iv/D_i,
//
// with b = 1 and α = 0.75 by default; entries whose argument is ≤ 1 are
// truncated away (trunc_log), keeping the matrix as sparse as A.
//
// Propagation: the embedding is passed through a low-degree Chebyshev
// polynomial in the normalized Laplacian — the Chebyshev-Gaussian band-pass
// filter of the ProNE paper with order k ≈ 10, modulation μ and scale θ —
// followed by a dense re-orthogonalization (QR + small SVD).
package prone

import (
	"fmt"
	"math"
	"time"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/par"
	"lightne/internal/sparse"
	"lightne/internal/svd"
)

// PropagationConfig parameterizes the spectral filter.
type PropagationConfig struct {
	// Order is the polynomial degree k (paper: "k is set to around 10").
	Order int
	// Mu modulates the Laplacian spectrum (ProNE default 0.2). For the PPR
	// filter it doubles as the damping complement (α = 1 - Mu).
	Mu float64
	// Theta is the Gaussian filter scale (ProNE default 0.5); the heat
	// kernel reuses it as the diffusion time.
	Theta float64
	// NormalizeRows L2-normalizes embedding rows at the end (ProNE default).
	NormalizeRows bool
	// Kind selects the filter family (Chebyshev-Gaussian by default).
	Kind Filter
}

// DefaultPropagation returns the ProNE defaults used by the paper.
func DefaultPropagation() PropagationConfig {
	return PropagationConfig{Order: 10, Mu: 0.2, Theta: 0.5, NormalizeRows: true}
}

// Config controls a full ProNE run (factorization + propagation).
type Config struct {
	// Dim is the embedding dimension.
	Dim int
	// Alpha is the modulation exponent (default 0.75).
	Alpha float64
	// NegSamples is b (default 1).
	NegSamples float64
	// Seed fixes the randomized SVD.
	Seed uint64
	// Oversample/PowerIters tune the randomized SVD.
	Oversample int
	PowerIters int
	// Propagation parameterizes the spectral filter.
	Propagation PropagationConfig
}

// DefaultConfig returns ProNE's published defaults for dimension d.
func DefaultConfig(d int) Config {
	return Config{Dim: d, Alpha: 0.75, NegSamples: 1, Propagation: DefaultPropagation()}
}

// Timing is the per-stage breakdown (paper Table 5: ProNE+ has no
// sparsifier stage).
type Timing struct {
	SVD         time.Duration
	Propagation time.Duration
}

// Result bundles ProNE's outputs.
type Result struct {
	// Embedding is the final n×d embedding (after propagation).
	Embedding *dense.Matrix
	// Initial is the factorization embedding before propagation.
	Initial *dense.Matrix
	// MatrixNNZ is the nonzero count of the factorized matrix.
	MatrixNNZ int64
	// Timing is the stage breakdown.
	Timing Timing
}

// FactorizationMatrix builds ProNE's trunc-logged modulated matrix from g.
func FactorizationMatrix(g *graph.Graph, alpha, b float64) (*sparse.CSR, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("prone: empty graph")
	}
	deg := g.Strengths() // weighted degrees; equals Degrees when unweighted
	// t_v = Σ_i A_iv/d_i. For an undirected graph, iterate arcs (v, i).
	tv := make([]float64, n)
	par.For(n, 64, func(vi int) {
		v := uint32(vi)
		d := g.Degree(v)
		var s float64
		for k := 0; k < d; k++ {
			s += g.EdgeWeight(v, k) / deg[g.Neighbor(v, k)]
		}
		tv[vi] = s
	})
	var z float64
	talpha := make([]float64, n)
	for v := 0; v < n; v++ {
		if tv[v] > 0 {
			talpha[v] = math.Pow(tv[v], alpha)
			z += talpha[v]
		}
	}
	// Entries live exactly on the edges of A.
	counts := make([]int64, n+1)
	for v := 0; v < n; v++ {
		counts[v+1] = counts[v] + int64(g.Degree(uint32(v)))
	}
	mat := &sparse.CSR{
		NumRows: n, NumCols: n,
		RowPtr: counts,
		ColIdx: make([]uint32, counts[n]),
		Val:    make([]float64, counts[n]),
	}
	par.For(n, 64, func(ui int) {
		u := uint32(ui)
		d := g.Degree(u)
		w := mat.RowPtr[ui]
		for k := 0; k < d; k++ {
			v := g.Neighbor(u, k)
			mat.ColIdx[w] = v
			mat.Val[w] = (g.EdgeWeight(u, k) / deg[ui]) * z / (b * talpha[v])
			w++
		}
	})
	return mat.TruncLog(), nil
}

// Factorize computes the initial ProNE embedding X = U·Σ^{1/2}.
func Factorize(g *graph.Graph, cfg Config) (*dense.Matrix, int64, error) {
	if cfg.Dim <= 0 {
		return nil, 0, fmt.Errorf("prone: dimension must be positive, got %d", cfg.Dim)
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = 0.75
	}
	b := cfg.NegSamples
	if b <= 0 {
		b = 1
	}
	mat, err := FactorizationMatrix(g, alpha, b)
	if err != nil {
		return nil, 0, err
	}
	res, err := svd.RandomizedSVD(mat, cfg.Dim, svd.Options{
		Seed:       cfg.Seed,
		Oversample: cfg.Oversample,
		PowerIters: cfg.PowerIters,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("prone: svd: %w", err)
	}
	return svd.EmbedFromSVD(res), mat.NNZ(), nil
}

// Propagate applies the Chebyshev-Gaussian spectral filter to embedding x
// over graph g and returns the enhanced embedding. x is not modified.
func Propagate(g *graph.Graph, x *dense.Matrix, cfg PropagationConfig) (*dense.Matrix, error) {
	n := g.NumVertices()
	if x.Rows != n {
		return nil, fmt.Errorf("prone: embedding has %d rows, graph has %d vertices", x.Rows, n)
	}
	if cfg.Order <= 1 {
		return x.Clone(), nil
	}
	switch cfg.Kind {
	case FilterHeatKernel:
		return finishPropagation(heatPropagate(g, x, cfg), cfg), nil
	case FilterPPR:
		return finishPropagation(pprPropagate(g, x, cfg), cfg), nil
	}

	// Ã = A + I; DA = row-normalized Ã; M = (I - DA) - μI.
	adj := adjacencyWithSelfLoops(g)
	rowSums := adj.RowSums()
	da := cloneCSR(adj)
	inv := make([]float64, n)
	for i, s := range rowSums {
		if s > 0 {
			inv[i] = 1 / s
		}
	}
	da.ScaleRows(inv)
	mmat := negate(da).AddScaledIdentity(1 - cfg.Mu)

	d := x.Cols
	lx0 := x.Clone()
	lx1 := dense.NewMatrix(n, d)
	sparse.SpMM(lx1, mmat, x)
	tmp := dense.NewMatrix(n, d)
	sparse.SpMM(tmp, mmat, lx1)
	// Lx1 = 0.5·M·Lx1 - X
	for i := range lx1.Data {
		lx1.Data[i] = 0.5*tmp.Data[i] - x.Data[i]
	}

	conv := lx0.Clone()
	conv.Scale(besselI(0, cfg.Theta))
	addScaled(conv, lx1, -2*besselI(1, cfg.Theta))

	for i := 2; i < cfg.Order; i++ {
		lx2 := dense.NewMatrix(n, d)
		sparse.SpMM(lx2, mmat, lx1)
		sparse.SpMM(tmp, mmat, lx2)
		// Lx2 = (M·Lx2 - 2·Lx1) - Lx0   (Chebyshev three-term recurrence)
		for k := range lx2.Data {
			lx2.Data[k] = tmp.Data[k] - 2*lx1.Data[k] - lx0.Data[k]
		}
		coeff := 2 * besselI(i, cfg.Theta)
		if i%2 == 1 {
			coeff = -coeff
		}
		addScaled(conv, lx2, coeff)
		lx0, lx1 = lx1, lx2
	}

	// mm = Ã·(X - conv), then re-orthogonalize densely.
	diff := x.Clone()
	addScaled(diff, conv, -1)
	mm := dense.NewMatrix(n, d)
	sparse.SpMM(mm, adj, diff)
	return finishPropagation(mm, cfg), nil
}

// finishPropagation applies the shared tail of every filter: dense
// re-orthogonalization and optional row normalization.
func finishPropagation(mm *dense.Matrix, cfg PropagationConfig) *dense.Matrix {
	emb := redecompose(mm)
	if cfg.NormalizeRows {
		normalizeRows(emb)
	}
	return emb
}

// Run executes ProNE end to end: factorize, then propagate.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	start := time.Now()
	initial, nnz, err := Factorize(g, cfg)
	if err != nil {
		return nil, err
	}
	svdTime := time.Since(start)

	start = time.Now()
	final, err := Propagate(g, initial, cfg.Propagation)
	if err != nil {
		return nil, err
	}
	propTime := time.Since(start)

	return &Result{
		Embedding: final,
		Initial:   initial,
		MatrixNNZ: nnz,
		Timing:    Timing{SVD: svdTime, Propagation: propTime},
	}, nil
}

// adjacencyWithSelfLoops returns A + I as CSR.
func adjacencyWithSelfLoops(g *graph.Graph) *sparse.CSR {
	n := g.NumVertices()
	counts := make([]int64, n+1)
	for v := 0; v < n; v++ {
		counts[v+1] = counts[v] + int64(g.Degree(uint32(v))) + 1
	}
	m := &sparse.CSR{
		NumRows: n, NumCols: n,
		RowPtr: counts,
		ColIdx: make([]uint32, counts[n]),
		Val:    make([]float64, counts[n]),
	}
	par.For(n, 64, func(ui int) {
		u := uint32(ui)
		w := m.RowPtr[ui]
		placedSelf := false
		d := g.Degree(u)
		for k := 0; k < d; k++ {
			v := g.Neighbor(u, k)
			if !placedSelf && v > u {
				m.ColIdx[w] = u
				m.Val[w] = 1
				w++
				placedSelf = true
			}
			m.ColIdx[w] = v
			m.Val[w] = g.EdgeWeight(u, k)
			w++
		}
		if !placedSelf {
			m.ColIdx[w] = u
			m.Val[w] = 1
		}
	})
	return m
}

func cloneCSR(m *sparse.CSR) *sparse.CSR {
	return &sparse.CSR{
		NumRows: m.NumRows, NumCols: m.NumCols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]uint32(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
}

func negate(m *sparse.CSR) *sparse.CSR {
	out := cloneCSR(m)
	out.Scale(-1)
	return out
}

// addScaled computes dst += c·src element-wise.
func addScaled(dst, src *dense.Matrix, c float64) {
	for i := range dst.Data {
		dst.Data[i] += c * src.Data[i]
	}
}

// redecompose orthogonalizes a propagated n×d matrix: QR, SVD of R, and
// U·Σ^{1/2} — the dense analogue of ProNE's get_embedding_dense.
func redecompose(m *dense.Matrix) *dense.Matrix {
	q, r := dense.QR(m)
	ur, sigma, _ := dense.SVD(r)
	u := dense.NewMatrix(m.Rows, m.Cols)
	dense.MatMul(u, q, ur)
	for j, s := range sigma {
		root := math.Sqrt(s)
		for i := 0; i < u.Rows; i++ {
			u.Set(i, j, u.At(i, j)*root)
		}
	}
	return u
}

// normalizeRows L2-normalizes each row in place (zero rows stay zero).
func normalizeRows(m *dense.Matrix) {
	par.For(m.Rows, 256, func(i int) {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v * v
		}
		if s > 0 {
			inv := 1 / math.Sqrt(s)
			for j := range row {
				row[j] *= inv
			}
		}
	})
}
