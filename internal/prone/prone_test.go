package prone

import (
	"math"
	"testing"

	"lightne/internal/dense"
	"lightne/internal/graph"
	"lightne/internal/rng"
)

func TestBesselIKnownValues(t *testing.T) {
	// Reference values (Abramowitz & Stegun / SciPy iv):
	cases := []struct {
		n    int
		x    float64
		want float64
	}{
		{0, 0.5, 1.0634833707413236},
		{1, 0.5, 0.25789430539089324},
		{2, 0.5, 0.031906149177738254},
		{3, 0.5, 0.0026451119689902845}, // cross-checked via I_1 - (4/x)·I_2
		{0, 1.0, 1.2660658777520084},
		{1, 1.0, 0.5651591039924851},
		{5, 0.5, 8.223171313109261e-06}, // series: 0.25^5/120·(1 + 0.0625/6 + …)
	}
	for _, c := range cases {
		got := besselI(c.n, c.x)
		if math.Abs(got-c.want) > 1e-12*math.Max(1, math.Abs(c.want)) {
			t.Fatalf("I_%d(%g)=%.16g want %.16g", c.n, c.x, got, c.want)
		}
	}
	if besselI(-2, 0.5) != besselI(2, 0.5) {
		t.Fatal("I_{-n} should equal I_n")
	}
}

// twoBlocks builds two dense 12-vertex clusters joined by one edge.
func twoBlocks(t *testing.T) *graph.Graph {
	t.Helper()
	var arcs []graph.Edge
	s := rng.New(3, 0)
	half := 12
	for c := 0; c < 2; c++ {
		base := c * half
		for i := 0; i < half; i++ {
			for j := i + 1; j < half; j++ {
				if s.Float64() < 0.7 {
					arcs = append(arcs, graph.Edge{U: uint32(base + i), V: uint32(base + j)})
				}
			}
		}
	}
	arcs = append(arcs, graph.Edge{U: 0, V: uint32(half)})
	g, err := graph.FromEdges(2*half, arcs, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFactorizationMatrixStructure(t *testing.T) {
	g := twoBlocks(t)
	mat, err := FactorizationMatrix(g, 0.75, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mat.NumRows != g.NumVertices() {
		t.Fatalf("rows=%d", mat.NumRows)
	}
	// Entries live only on edges, so NNZ <= directed arc count.
	if mat.NNZ() > g.NumEdges() {
		t.Fatalf("NNZ=%d exceeds arcs=%d", mat.NNZ(), g.NumEdges())
	}
	for p := int64(0); p < mat.NNZ(); p++ {
		if mat.Val[p] <= 0 {
			t.Fatal("trunc-logged entries must be positive")
		}
	}
}

func TestFactorizeShapeAndFiniteness(t *testing.T) {
	g := twoBlocks(t)
	x, nnz, err := Factorize(g, DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != g.NumVertices() || x.Cols != 6 {
		t.Fatalf("shape %dx%d", x.Rows, x.Cols)
	}
	if nnz == 0 {
		t.Fatal("factorization matrix empty")
	}
	for _, v := range x.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("NaN/Inf in embedding")
		}
	}
}

func TestPropagateShapesAndOrderOne(t *testing.T) {
	g := twoBlocks(t)
	x := dense.NewMatrix(g.NumVertices(), 4)
	x.FillGaussian(1)
	// Order <= 1 is identity (per ProNE reference implementation).
	y, err := Propagate(g, x, PropagationConfig{Order: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("order-1 propagation must be identity")
		}
	}
	y, err = Propagate(g, x, DefaultPropagation())
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows != x.Rows || y.Cols != x.Cols {
		t.Fatalf("shape changed: %dx%d", y.Rows, y.Cols)
	}
}

func TestPropagateRowsNormalized(t *testing.T) {
	g := twoBlocks(t)
	x, _, err := Factorize(g, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	y, err := Propagate(g, x, DefaultPropagation())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < y.Rows; i++ {
		var s float64
		for _, v := range y.Row(i) {
			s += v * v
		}
		if math.Abs(s-1) > 1e-9 && s != 0 {
			t.Fatalf("row %d norm² = %g, want 1", i, s)
		}
	}
}

func TestPropagateMismatchedRows(t *testing.T) {
	g := twoBlocks(t)
	x := dense.NewMatrix(3, 4)
	if _, err := Propagate(g, x, DefaultPropagation()); err == nil {
		t.Fatal("expected rows/vertices mismatch error")
	}
}

func TestRunEndToEnd(t *testing.T) {
	g := twoBlocks(t)
	res, err := Run(g, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding.Rows != g.NumVertices() || res.Embedding.Cols != 8 {
		t.Fatal("bad embedding shape")
	}
	if res.Timing.SVD <= 0 || res.Timing.Propagation <= 0 {
		t.Fatal("timings missing")
	}
	// Propagated embedding separates the two clusters.
	x := res.Embedding
	dot := func(i, j int) float64 {
		var s float64
		for k := 0; k < x.Cols; k++ {
			s += x.At(i, k) * x.At(j, k)
		}
		return s
	}
	half := g.NumVertices() / 2
	var within, across float64
	var nw, na int
	for i := 0; i < g.NumVertices(); i++ {
		for j := i + 1; j < g.NumVertices(); j++ {
			if (i < half) == (j < half) {
				within += dot(i, j)
				nw++
			} else {
				across += dot(i, j)
				na++
			}
		}
	}
	if within/float64(nw) <= across/float64(na) {
		t.Fatalf("within %.3f not above across %.3f", within/float64(nw), across/float64(na))
	}
}

func TestRunErrors(t *testing.T) {
	g := twoBlocks(t)
	bad := DefaultConfig(0)
	if _, err := Run(g, bad); err == nil {
		t.Fatal("expected dimension error")
	}
	empty, err := graph.FromEdges(0, nil, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(empty, DefaultConfig(4)); err == nil {
		t.Fatal("expected empty graph error")
	}
}

func TestAdjacencyWithSelfLoops(t *testing.T) {
	g := twoBlocks(t)
	m := adjacencyWithSelfLoops(g)
	n := g.NumVertices()
	if m.NNZ() != g.NumEdges()+int64(n) {
		t.Fatalf("NNZ=%d want %d", m.NNZ(), g.NumEdges()+int64(n))
	}
	for i := 0; i < n; i++ {
		if m.At(i, uint32(i)) != 1 {
			t.Fatalf("missing self loop at %d", i)
		}
		// Row sorted.
		for p := m.RowPtr[i] + 1; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p-1] > m.ColIdx[p] {
				t.Fatalf("row %d unsorted after self-loop insertion", i)
			}
		}
	}
}
