package prone

import (
	"math"
	"testing"

	"lightne/internal/dense"
	"lightne/internal/eval"
	"lightne/internal/gen"
)

func TestFilterString(t *testing.T) {
	if FilterChebyshevGaussian.String() != "chebyshev-gaussian" ||
		FilterHeatKernel.String() != "heat-kernel" ||
		FilterPPR.String() != "ppr" {
		t.Fatal("filter names wrong")
	}
	if Filter(99).String() == "" {
		t.Fatal("unknown filter should still stringify")
	}
}

func TestAllFiltersProduceValidEmbeddings(t *testing.T) {
	g := twoBlocks(t)
	x, _, err := Factorize(g, DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Filter{FilterChebyshevGaussian, FilterHeatKernel, FilterPPR} {
		cfg := DefaultPropagation()
		cfg.Kind = kind
		y, err := Propagate(g, x, cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if y.Rows != x.Rows || y.Cols != x.Cols {
			t.Fatalf("%v: shape changed", kind)
		}
		for _, v := range y.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v: NaN/Inf", kind)
			}
		}
		// Rows normalized.
		for i := 0; i < y.Rows; i++ {
			var s float64
			for _, v := range y.Row(i) {
				s += v * v
			}
			if s != 0 && math.Abs(s-1) > 1e-9 {
				t.Fatalf("%v: row %d norm² %g", kind, i, s)
			}
		}
	}
}

func TestFiltersDiffer(t *testing.T) {
	g := twoBlocks(t)
	x := dense.NewMatrix(g.NumVertices(), 4)
	x.FillGaussian(3)
	outs := map[Filter]*dense.Matrix{}
	for _, kind := range []Filter{FilterChebyshevGaussian, FilterHeatKernel, FilterPPR} {
		cfg := DefaultPropagation()
		cfg.Kind = kind
		y, err := Propagate(g, x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		outs[kind] = y
	}
	diff := func(a, b *dense.Matrix) float64 {
		var d float64
		for i := range a.Data {
			d += math.Abs(a.Data[i] - b.Data[i])
		}
		return d
	}
	if diff(outs[FilterChebyshevGaussian], outs[FilterHeatKernel]) < 1e-6 {
		t.Fatal("chebyshev and heat produced identical output")
	}
	if diff(outs[FilterHeatKernel], outs[FilterPPR]) < 1e-6 {
		t.Fatal("heat and ppr produced identical output")
	}
}

func TestAllFiltersPreserveCommunitySignal(t *testing.T) {
	// Each filter must leave a classifiable embedding on a labeled SBM.
	g, labels, err := gen.SBM(gen.SBMConfig{N: 600, Communities: 3, PIn: 0.1, POut: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	x, _, err := Factorize(g, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Filter{FilterChebyshevGaussian, FilterHeatKernel, FilterPPR} {
		cfg := DefaultPropagation()
		cfg.Kind = kind
		y, err := Propagate(g, x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := eval.NodeClassification(y, labels.Of, labels.NumClasses, 0.3, 5, eval.DefaultTrain())
		if err != nil {
			t.Fatal(err)
		}
		if cr.MicroF1 < 0.8 {
			t.Fatalf("%v: micro-F1 %.3f too low on an easy SBM", kind, cr.MicroF1)
		}
	}
}

func TestHeatKernelOrderOneIsIdentityLike(t *testing.T) {
	// With Order=1 Propagate short-circuits for every filter.
	g := twoBlocks(t)
	x := dense.NewMatrix(g.NumVertices(), 3)
	x.FillGaussian(9)
	cfg := PropagationConfig{Order: 1, Kind: FilterHeatKernel}
	y, err := Propagate(g, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("order-1 must be identity")
		}
	}
}
