package prone

import "math"

// besselI computes the modified Bessel function of the first kind I_n(x)
// for integer order n >= 0 via its power series
//
//	I_n(x) = Σ_{k≥0} (x/2)^{2k+n} / (k!·(k+n)!)
//
// The Chebyshev-Gaussian filter evaluates it at small x (θ = 0.5 by
// default), where the series converges in a handful of terms; the loop
// still guards with a relative-tolerance stop for larger arguments.
func besselI(n int, x float64) float64 {
	if n < 0 {
		n = -n // I_{-n}(x) = I_n(x) for integer order
	}
	half := x / 2
	// term_0 = (x/2)^n / n!
	term := 1.0
	for i := 1; i <= n; i++ {
		term *= half / float64(i)
	}
	sum := term
	for k := 1; k < 200; k++ {
		term *= half * half / (float64(k) * float64(k+n))
		sum += term
		if math.Abs(term) < 1e-18*math.Abs(sum) {
			break
		}
	}
	return sum
}
