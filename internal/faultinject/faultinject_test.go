package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNopAndNilAreSilent(t *testing.T) {
	if err := Nop.Fire(IngestApply); err != nil {
		t.Fatalf("Nop fired %v", err)
	}
	if h := OrNop(nil); h != Nop {
		t.Fatal("OrNop(nil) must be Nop")
	}
	inj := New()
	if OrNop(inj) != Hooks(inj) {
		t.Fatal("OrNop must pass a non-nil Hooks through")
	}
}

func TestFailNThenSucceed(t *testing.T) {
	inj := New()
	inj.FailN(IngestApply, 3, nil)
	for i := 1; i <= 3; i++ {
		if err := inj.Fire(IngestApply); !errors.Is(err, Err) {
			t.Fatalf("call %d: want Err, got %v", i, err)
		}
	}
	for i := 4; i <= 6; i++ {
		if err := inj.Fire(IngestApply); err != nil {
			t.Fatalf("call %d: want nil, got %v", i, err)
		}
	}
	if c := inj.Calls(IngestApply); c != 6 {
		t.Fatalf("calls = %d", c)
	}
	// Other points are unaffected.
	if err := inj.Fire(IngestPublish); err != nil {
		t.Fatalf("unrelated point fired %v", err)
	}
}

func TestFailAtAndCustomError(t *testing.T) {
	boom := fmt.Errorf("boom")
	inj := New()
	inj.FailAt(CheckpointData, 2, boom)
	if err := inj.Fire(CheckpointData); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	if err := inj.Fire(CheckpointData); !errors.Is(err, boom) {
		t.Fatalf("call 2: want boom, got %v", err)
	}
	if err := inj.Fire(CheckpointData); err != nil {
		t.Fatalf("call 3: %v", err)
	}
}

func TestFailAlways(t *testing.T) {
	inj := New()
	inj.FailAlways(IngestRefresh, nil)
	for i := 0; i < 50; i++ {
		if err := inj.Fire(IngestRefresh); !errors.Is(err, Err) {
			t.Fatalf("call %d succeeded", i+1)
		}
	}
}

func TestDelayN(t *testing.T) {
	inj := New()
	inj.DelayN(IngestPublish, 1, 30*time.Millisecond)
	t0 := time.Now()
	if err := inj.Fire(IngestPublish); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("first call returned after %v, want >= 30ms", d)
	}
	t0 = time.Now()
	if err := inj.Fire(IngestPublish); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 20*time.Millisecond {
		t.Fatalf("second call delayed %v, want fast", d)
	}
}

func TestDelayComposesWithError(t *testing.T) {
	inj := New()
	inj.DelayN(IngestApply, 1, 20*time.Millisecond)
	inj.FailN(IngestApply, 1, nil)
	t0 := time.Now()
	err := inj.Fire(IngestApply)
	if !errors.Is(err, Err) || time.Since(t0) < 20*time.Millisecond {
		t.Fatalf("want delayed error, got %v after %v", err, time.Since(t0))
	}
}

func TestPanicAt(t *testing.T) {
	inj := New()
	inj.PanicAt(IngestApply, 2, "kaboom")
	if err := inj.Fire(IngestApply); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v", r)
		}
	}()
	_ = inj.Fire(IngestApply)
	t.Fatal("second call must panic")
}

// TestConcurrentFireIsDeterministicInAggregate: under concurrent firing the
// set of outcomes is exactly {n failures, rest successes} for FailN — call
// numbering is atomic, so no failure is lost or doubled. Run with -race.
func TestConcurrentFireIsDeterministicInAggregate(t *testing.T) {
	const workers, perWorker, failN = 8, 50, 13
	inj := New()
	inj.FailN(IngestApply, failN, nil)
	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < perWorker; i++ {
				if inj.Fire(IngestApply) != nil {
					local++
				}
			}
			mu.Lock()
			failures += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if failures != failN {
		t.Fatalf("observed %d failures, want %d", failures, failN)
	}
	if c := inj.Calls(IngestApply); c != workers*perWorker {
		t.Fatalf("calls = %d", c)
	}
}
