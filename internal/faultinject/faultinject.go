// Package faultinject provides deterministic fault injection for the
// failure-hardening tests of the serving and checkpoint layers. Production
// code threads a Hooks value through its failure-prone steps and fires a
// named Point at each one; tests install an Injector that makes chosen
// calls fail, stall, or panic on a deterministic schedule, so recovery
// paths (supervisor restarts, degraded mode, checkpoint CRC fallback) can
// be exercised exactly, including under -race.
//
// Production builds pass Nop (or nil, which every call site treats as
// Nop): Fire then compiles down to a nil-check and costs nothing on the
// hot path.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Point names one instrumented step. The constants below are the points
// the repository's production code fires; tests may invent ad-hoc points.
type Point string

// Instrumented points in the serving and checkpoint layers.
const (
	// IngestApply fires before the ingester applies an edge batch to the
	// dynamic embedder.
	IngestApply Point = "ingest.apply"
	// IngestRefresh fires before the ingester's full Refresh rebuild.
	IngestRefresh Point = "ingest.refresh"
	// IngestPublish fires before the ingester publishes a snapshot.
	IngestPublish Point = "ingest.publish"
	// CheckpointData fires mid-way through writing checkpoint data (after
	// the header and roughly half the payload) — an error here abandons a
	// partially written temp file, simulating a crash mid-write.
	CheckpointData Point = "checkpoint.data"
	// CheckpointSync fires before the checkpoint file is fsynced.
	CheckpointSync Point = "checkpoint.sync"
	// CheckpointRename fires before the temp file is atomically renamed
	// over the checkpoint path.
	CheckpointRename Point = "checkpoint.rename"
	// ReplicaMeta fires before a follower polls the leader's snapshot
	// metadata endpoint.
	ReplicaMeta Point = "replica.meta"
	// ReplicaFetch fires on every read of a shipped snapshot's body — an
	// error at call k aborts the transfer after k-1 successful reads,
	// simulating a follower killed (or a connection cut) mid-ship.
	ReplicaFetch Point = "replica.fetch"
	// ReplicaApply fires after a shipped snapshot is fetched and decoded,
	// before the follower hot-swaps it live.
	ReplicaApply Point = "replica.apply"
)

// Hooks is the interface production code fires points against.
type Hooks interface {
	// Fire reports an injected error for this call of the point, or nil.
	// Implementations may also sleep (latency injection) or panic.
	Fire(p Point) error
}

// Err is the sentinel returned by injected failures that don't specify
// their own error.
var Err = errors.New("faultinject: injected error")

// Nop ignores every point; it is the production default.
var Nop Hooks = nop{}

type nop struct{}

func (nop) Fire(Point) error { return nil }

// OrNop returns h, or Nop when h is nil, so call sites can fire without a
// nil check.
func OrNop(h Hooks) Hooks {
	if h == nil {
		return Nop
	}
	return h
}

// rule is one scheduled behavior for a point: it applies to calls numbered
// from..to (1-based, inclusive).
type rule struct {
	from, to int
	delay    time.Duration
	err      error
	panicMsg string
}

func (r rule) matches(call int) bool { return call >= r.from && call <= r.to }

// Injector is a deterministic Hooks implementation: each point carries an
// ordered rule list keyed by call number, so the k-th Fire of a point
// always behaves the same regardless of goroutine interleaving. Safe for
// concurrent use.
type Injector struct {
	mu    sync.Mutex
	rules map[Point][]rule
	calls map[Point]int
}

// New returns an empty injector (all points succeed).
func New() *Injector {
	return &Injector{rules: make(map[Point][]rule), calls: make(map[Point]int)}
}

func (in *Injector) add(p Point, r rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[p] = append(in.rules[p], r)
}

// FailN makes the first n calls of p return err (Err when err is nil).
// Calls after the n-th succeed — the canonical transient fault.
func (in *Injector) FailN(p Point, n int, err error) {
	if err == nil {
		err = Err
	}
	in.add(p, rule{from: 1, to: n, err: err})
}

// FailAt makes exactly the call-th (1-based) call of p return err (Err
// when err is nil).
func (in *Injector) FailAt(p Point, call int, err error) {
	if err == nil {
		err = Err
	}
	in.add(p, rule{from: call, to: call, err: err})
}

// FailAlways makes every call of p return err (Err when err is nil) — the
// canonical persistent fault that drives a supervisor into degraded mode.
func (in *Injector) FailAlways(p Point, err error) {
	if err == nil {
		err = Err
	}
	in.add(p, rule{from: 1, to: int(^uint(0) >> 1), err: err})
}

// DelayN injects d of latency into the first n calls of p (before any
// error from other rules is reported).
func (in *Injector) DelayN(p Point, n int, d time.Duration) {
	in.add(p, rule{from: 1, to: n, delay: d})
}

// PanicAt makes exactly the call-th (1-based) call of p panic with msg.
func (in *Injector) PanicAt(p Point, call int, msg string) {
	if msg == "" {
		msg = fmt.Sprintf("faultinject: injected panic at %s call %d", p, call)
	}
	in.add(p, rule{from: call, to: call, panicMsg: msg})
}

// Calls returns how many times p has fired.
func (in *Injector) Calls(p Point) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[p]
}

// Fire implements Hooks: it numbers the call, applies every matching
// delay, then reports the first matching panic or error.
func (in *Injector) Fire(p Point) error {
	in.mu.Lock()
	in.calls[p]++
	call := in.calls[p]
	var delay time.Duration
	var err error
	var panicMsg string
	for _, r := range in.rules[p] {
		if !r.matches(call) {
			continue
		}
		delay += r.delay
		if panicMsg == "" {
			panicMsg = r.panicMsg
		}
		if err == nil {
			err = r.err
		}
	}
	in.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if panicMsg != "" {
		panic(panicMsg)
	}
	return err
}
