package sampler

import (
	"fmt"
	"sort"

	"lightne/internal/graph"
	"lightne/internal/hashtable"
	"lightne/internal/par"
	"lightne/internal/rng"
)

// Uniform-arc sampling strategies. The paper's §4.2 describes the
// "natural idea" of repeatedly calling PathSampling on a uniformly random
// edge, and the two straightforward ways to draw that edge:
//
//   - store all edges in a flat array for O(1) access ("would require a
//     prohibitive amount of memory for our largest networks") —
//     ArrayArcSampler;
//   - binary-search the prefix sums of vertex degrees ("extra O(log n)
//     time for each sample") — SearchArcSampler.
//
// LightNE instead reorganizes the process per edge (Algorithm 2, the
// Sample function). These samplers implement the rejected designs so the
// trade-off is measurable (see the benchmarks) and so the per-edge
// schedule can be validated against the textbook process (SampleUniform
// produces the same distribution).

// ArcSampler draws uniformly random directed arcs.
type ArcSampler interface {
	// Arc returns a uniformly random directed arc.
	Arc(src *rng.Source) (u, v uint32)
	// MemoryBytes reports the sampler's extra memory.
	MemoryBytes() int64
}

// ArrayArcSampler materializes every arc: O(1) draws, O(m) extra memory.
type ArrayArcSampler struct {
	us, vs []uint32
}

// NewArrayArcSampler builds the flat arc array.
func NewArrayArcSampler(g *graph.Graph) *ArrayArcSampler {
	m := g.NumEdges()
	s := &ArrayArcSampler{
		us: make([]uint32, 0, m),
		vs: make([]uint32, 0, m),
	}
	for u := 0; u < g.NumVertices(); u++ {
		d := g.Degree(uint32(u))
		for i := 0; i < d; i++ {
			s.us = append(s.us, uint32(u))
			s.vs = append(s.vs, g.Neighbor(uint32(u), i))
		}
	}
	return s
}

// Arc draws in O(1).
func (s *ArrayArcSampler) Arc(src *rng.Source) (uint32, uint32) {
	i := src.Intn(len(s.us))
	return s.us[i], s.vs[i]
}

// MemoryBytes is 8 bytes per arc.
func (s *ArrayArcSampler) MemoryBytes() int64 { return int64(len(s.us)) * 8 }

// SearchArcSampler binary-searches the degree prefix sums: O(log n) draws,
// no extra memory beyond the graph's own offsets.
type SearchArcSampler struct {
	g *graph.Graph
}

// NewSearchArcSampler wraps a graph.
func NewSearchArcSampler(g *graph.Graph) *SearchArcSampler {
	return &SearchArcSampler{g: g}
}

// Arc draws by picking a uniform arc index and locating its source vertex
// with binary search over the CSR offsets.
func (s *SearchArcSampler) Arc(src *rng.Source) (uint32, uint32) {
	g := s.g
	k := int64(src.Intn(int(g.NumEdges())))
	// Find u with offsets[u] <= k < offsets[u+1].
	n := g.NumVertices()
	u := sort.Search(n, func(i int) bool { return g.OffsetOf(i+1) > k }) // first i whose range contains k
	return uint32(u), g.Neighbor(uint32(u), int(k-g.OffsetOf(u)))
}

// MemoryBytes is zero: the graph's CSR offsets are reused.
func (s *SearchArcSampler) MemoryBytes() int64 { return 0 }

// SampleUniform runs the textbook NetSMF process — each trial draws a
// uniformly random arc via the provided strategy, then PathSamples — with
// LightNE's downsampling applied per trial. It produces aggregates from the
// same distribution as Sample (which the tests verify), at the cost the
// paper describes. Weighted graphs are rejected: uniform-arc sampling is
// only equivalent for unit weights.
func SampleUniform(g *graph.Graph, cfg Config, arcs ArcSampler) (Sink, Stats, error) {
	if cfg.T <= 0 {
		return nil, Stats{}, fmt.Errorf("sampler: T must be positive, got %d", cfg.T)
	}
	if cfg.M <= 0 {
		return nil, Stats{}, fmt.Errorf("sampler: M must be positive, got %d", cfg.M)
	}
	if g.NumEdges() == 0 {
		return nil, Stats{}, fmt.Errorf("sampler: graph has no edges")
	}
	if g.Weighted() {
		return nil, Stats{}, fmt.Errorf("sampler: uniform-arc sampling requires an unweighted graph")
	}
	c := downsampleConstant(g, cfg)
	hint := cfg.TableSizeHint
	if hint <= 0 {
		hint = int(2*cfg.M) + 1024
	}
	table := NewSink(hint, cfg.Shards)
	var trials, heads int64
	par.ForRange(int(cfg.M), 1<<12, func(lo, hi int) {
		var src rng.Source
		src.Seed(cfg.Seed^0xedce, uint64(lo))
		var localTrials, localHeads int64
		for i := lo; i < hi; i++ {
			u, v := arcs.Arc(&src)
			localTrials++
			pe := 1.0
			if cfg.Downsample {
				pe = Prob(c, g.Degree(u), g.Degree(v))
			}
			if pe < 1 && !src.Bernoulli(pe) {
				continue
			}
			localHeads++
			r := 1 + src.Intn(cfg.T)
			ue, ve := PathSample(g, u, v, r, &src)
			fixed := hashtable.ToFixed(1 / pe)
			table.AddFixed(hashtable.Key(ue, ve), fixed)
			table.AddFixed(hashtable.Key(ve, ue), fixed)
		}
		atomicAdd(&trials, localTrials)
		atomicAdd(&heads, localHeads)
	})
	return table, Stats{
		Trials:          trials,
		Heads:           heads,
		DistinctEntries: table.Len(),
		TableBytes:      table.MemoryBytes(),
		PeakTableBytes:  table.PeakMemoryBytes(),
	}, nil
}

// downsampleConstant resolves the effective C for a config.
func downsampleConstant(g *graph.Graph, cfg Config) float64 {
	if !cfg.Downsample {
		return 0
	}
	if cfg.C > 0 {
		return cfg.C
	}
	c := logN(g.NumVertices())
	return c
}
